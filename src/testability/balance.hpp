// Controllability/observability balance allocation (paper §3).
//
// "The basic idea is to fold nodes with good controllability and bad
// observability to nodes with good observability and bad controllability
// ... the new node will inherit the good controllability from one of the
// old nodes and the good observability from the other."
//
// This file ranks all feasible merger pairs (module-module and
// register-register) by a balance score and returns the best k candidates
// for Algorithm 1's cost evaluation.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "etpn/etpn.hpp"
#include "testability/testability.hpp"

namespace hlts::testability {

/// One candidate merger pair.
struct MergeCandidate {
  enum class Kind { Modules, Registers } kind = Kind::Modules;
  etpn::ModuleId module_a, module_b;  ///< valid when kind == Modules
  etpn::RegId reg_a, reg_b;           ///< valid when kind == Registers
  /// Balance score: resulting min(controllability, observability) of the
  /// merged node, plus a complementarity bonus, minus a self-loop penalty.
  double score = 0.0;
  /// True when the merger would create a register<->module self-loop.
  bool creates_self_loop = false;

  // Kind dispatch, in one place.  Cache keying, trial evaluation and commit
  // descriptions all used to switch on `kind` by hand; these helpers are the
  // single source of truth for "which two binding groups does this candidate
  // name and how is the merger applied".
  [[nodiscard]] bool is_modules() const { return kind == Kind::Modules; }
  /// The raw ids of the two binding groups (module or register ids).
  [[nodiscard]] std::pair<std::uint32_t, std::uint32_t> group_ids() const {
    return is_modules() ? std::pair{module_a.value(), module_b.value()}
                        : std::pair{reg_a.value(), reg_b.value()};
  }
  /// Applies the merger to `b` (merge_modules or merge_regs; the first
  /// group survives).
  void apply(const dfg::Dfg& g, etpn::Binding& b) const;
  /// Data-path nodes of the two groups under `e`'s node maps
  /// {survivor, merged-away}.
  [[nodiscard]] std::pair<etpn::DpNodeId, etpn::DpNodeId> nodes(
      const etpn::Etpn& e) const;
  /// "merge modules [(+): N1 | (+): N2]" -- the trajectory notation.
  [[nodiscard]] std::string description(const dfg::Dfg& g,
                                        const etpn::Binding& b) const;
  /// Post-merge label of the surviving group (what a fresh build would name
  /// the merged data-path node); `b` must already reflect the merger.
  [[nodiscard]] std::string merged_label(const dfg::Dfg& g,
                                         const etpn::Binding& b) const;
};

struct BalanceOptions {
  /// Weight of the complementarity bonus (folding C-good/O-bad onto
  /// O-good/C-bad).
  double complementarity_weight = 0.5;
  /// Score penalty for creating a self-loop (self-loops are the hardest
  /// structures to test).
  double self_loop_penalty = 0.4;
  /// Scalarization lambda for Measure::scalar.
  double lambda = 0.3;
};

/// Ranks every feasible merger pair and returns the top `k` by score.
///
/// Feasibility filters applied here (cheap, structural):
///  - module pairs must host compatible operation kinds;
///  - register pairs are rejected when some operation reads both registers'
///    variables (the paper's case (2): lifetimes can never be disjoint);
///  - register pairs are rejected when one register holds a variable
///    defined by an op whose output feeds the other and vice versa (the
///    paper's case (1): ordering arcs in both directions).
/// Schedulability (no constraint cycle) is checked later by the trial
/// rescheduling in Algorithm 1.
[[nodiscard]] std::vector<MergeCandidate> select_balance_candidates(
    const dfg::Dfg& g, const etpn::Binding& b, const etpn::Etpn& e,
    const TestabilityAnalysis& analysis, int k,
    const BalanceOptions& options = {});

/// Answers "is merging registers ra/rb structurally impossible" for many
/// pairs against one (graph, binding) snapshot.
///
/// The naive per-pair check rebuilds the op-level reachability closure
/// (O(ops^2/64 * arcs)) and scans every operation for each query; across the
/// O(regs^2) pairs of one candidate-selection pass that dominated synthesis
/// on large graphs.  The oracle hoists both invariants out: reachability is
/// computed once, and the paper's case (2) -- some op reads variables of
/// both registers -- is precomputed into a forbidden-pair set in one O(ops)
/// sweep.  Queries then cost only the case-(1) lifetime test.  Answers are
/// identical to register_merge_impossible.
///
/// The oracle borrows `g` and `b`; it must not outlive them, and `b`'s
/// register assignment must not change between construction and the last
/// query.
class RegMergeOracle {
 public:
  RegMergeOracle(const dfg::Dfg& g, const etpn::Binding& b);
  ~RegMergeOracle();
  RegMergeOracle(const RegMergeOracle&) = delete;
  RegMergeOracle& operator=(const RegMergeOracle&) = delete;

  /// Same answer as register_merge_impossible(g, b, ra, rb).
  [[nodiscard]] bool impossible(etpn::RegId ra, etpn::RegId rb) const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// True when merging the two registers is structurally impossible: an
/// operation consumes variables of both registers, or data dependences force
/// their lifetimes to overlap in both directions.  One-shot convenience
/// wrapper over RegMergeOracle; build the oracle yourself when checking many
/// pairs of the same binding.
[[nodiscard]] bool register_merge_impossible(const dfg::Dfg& g,
                                             const etpn::Binding& b,
                                             etpn::RegId ra, etpn::RegId rb);

}  // namespace hlts::testability
