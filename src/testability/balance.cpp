#include "testability/balance.hpp"

#include <algorithm>
#include <set>
#include <unordered_set>

namespace hlts::testability {

namespace {

/// Op-level reachability over data dependences: reach[a] contains b when
/// there is a path of >= 1 arc from a to b.
class Reachability {
 public:
  explicit Reachability(const dfg::Dfg& g)
      : words_((g.num_ops() + 63) / 64), bits_(g.num_ops()) {
    for (auto& row : bits_) row.assign(words_, 0);
    std::vector<dfg::OpId> order = g.topo_order();
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      for (dfg::OpId s : g.succs(*it)) {
        set(*it, s);
        for (std::size_t w = 0; w < words_; ++w) {
          bits_[it->index()][w] |= bits_[s.index()][w];
        }
      }
    }
  }

  [[nodiscard]] bool reaches(dfg::OpId a, dfg::OpId b) const {
    return (bits_[a.index()][b.index() / 64] >> (b.index() % 64)) & 1u;
  }

 private:
  void set(dfg::OpId a, dfg::OpId b) {
    bits_[a.index()][b.index() / 64] |= (std::uint64_t{1} << (b.index() % 64));
  }
  std::size_t words_;
  std::vector<std::vector<std::uint64_t>> bits_;
};

/// Ops that determine the lifetime of `v`: its definition and all uses.
std::vector<dfg::OpId> lifetime_ops(const dfg::Dfg& g, dfg::VarId v) {
  std::vector<dfg::OpId> out;
  const dfg::Variable& var = g.var(v);
  if (var.def.valid()) out.push_back(var.def);
  for (dfg::OpId u : var.uses) out.push_back(u);
  return out;
}

/// Registers read (port side) and written (result side) by a module node.
void module_reg_sets(const etpn::DataPath& dp, etpn::DpNodeId m,
                     std::set<std::uint32_t>& reads,
                     std::set<std::uint32_t>& writes) {
  for (etpn::DpArcId a : dp.in_arcs(m)) {
    if (dp.node(dp.arc(a).from).kind == etpn::DpNodeKind::Register) {
      reads.insert(dp.arc(a).from.value());
    }
  }
  for (etpn::DpArcId a : dp.out_arcs(m)) {
    if (dp.node(dp.arc(a).to).kind == etpn::DpNodeKind::Register) {
      writes.insert(dp.arc(a).to.value());
    }
  }
}

bool intersects(const std::set<std::uint32_t>& a,
                const std::set<std::uint32_t>& b) {
  return std::any_of(a.begin(), a.end(),
                     [&](std::uint32_t x) { return b.count(x) != 0; });
}

}  // namespace

void MergeCandidate::apply(const dfg::Dfg& g, etpn::Binding& b) const {
  if (is_modules()) {
    b.merge_modules(g, module_a, module_b);
  } else {
    b.merge_regs(reg_a, reg_b);
  }
}

std::pair<etpn::DpNodeId, etpn::DpNodeId> MergeCandidate::nodes(
    const etpn::Etpn& e) const {
  return is_modules()
             ? std::pair{e.module_node[module_a], e.module_node[module_b]}
             : std::pair{e.reg_node[reg_a], e.reg_node[reg_b]};
}

std::string MergeCandidate::description(const dfg::Dfg& g,
                                        const etpn::Binding& b) const {
  if (is_modules()) {
    return "merge modules [" + b.module_label(g, module_a) + " | " +
           b.module_label(g, module_b) + "]";
  }
  return "merge registers [" + b.reg_label(g, reg_a) + " | " +
         b.reg_label(g, reg_b) + "]";
}

std::string MergeCandidate::merged_label(const dfg::Dfg& g,
                                         const etpn::Binding& b) const {
  return is_modules() ? b.module_label(g, module_a) : b.reg_label(g, reg_a);
}

struct RegMergeOracle::Impl {
  const dfg::Dfg& g;
  const etpn::Binding& b;
  Reachability reach;
  /// Case (2) pairs, keyed (min_reg << 32) | max_reg.
  std::unordered_set<std::uint64_t> op_conflicts;

  Impl(const dfg::Dfg& g_in, const etpn::Binding& b_in)
      : g(g_in), b(b_in), reach(g_in) {
    // Case (2) in one sweep: every op that reads variables of two distinct
    // registers forbids exactly that pair.
    for (dfg::OpId op : g.op_ids()) {
      const auto& ins = g.op(op).inputs;
      for (std::size_t i = 0; i < ins.size(); ++i) {
        const etpn::RegId ri = b.reg_of(ins[i]);
        for (std::size_t j = i + 1; j < ins.size(); ++j) {
          const etpn::RegId rj = b.reg_of(ins[j]);
          if (ri == rj) continue;
          const std::uint64_t lo = std::min(ri.value(), rj.value());
          const std::uint64_t hi = std::max(ri.value(), rj.value());
          op_conflicts.insert((lo << 32) | hi);
        }
      }
    }
  }
};

RegMergeOracle::RegMergeOracle(const dfg::Dfg& g, const etpn::Binding& b)
    : impl_(std::make_unique<Impl>(g, b)) {}

RegMergeOracle::~RegMergeOracle() = default;

bool RegMergeOracle::impossible(etpn::RegId ra, etpn::RegId rb) const {
  const dfg::Dfg& g = impl_->g;
  const etpn::Binding& b = impl_->b;

  // Case (2): an operation uses variables of both registers as inputs.
  const std::uint64_t lo = std::min(ra.value(), rb.value());
  const std::uint64_t hi = std::max(ra.value(), rb.value());
  if (impl_->op_conflicts.count((lo << 32) | hi) != 0) return true;

  // Case (1): for some variable pair, data dependences force an ordering
  // arc in each direction, so the lifetimes can never be made disjoint.
  auto dir_blocked = [&](dfg::VarId before, dfg::VarId after) {
    // "before expires before after is created" is infeasible when the
    // definition of `after` strictly precedes some lifetime op of `before`.
    const dfg::Variable& va = g.var(after);
    if (!va.def.valid()) return true;  // primary input: born at step 0
    for (dfg::OpId u : lifetime_ops(g, before)) {
      if (impl_->reach.reaches(va.def, u)) return true;
    }
    return false;
  };
  for (dfg::VarId v1 : b.reg_vars(ra)) {
    for (dfg::VarId v2 : b.reg_vars(rb)) {
      if (dir_blocked(v1, v2) && dir_blocked(v2, v1)) return true;
    }
  }
  return false;
}

bool register_merge_impossible(const dfg::Dfg& g, const etpn::Binding& b,
                               etpn::RegId ra, etpn::RegId rb) {
  return RegMergeOracle(g, b).impossible(ra, rb);
}

std::vector<MergeCandidate> select_balance_candidates(
    const dfg::Dfg& g, const etpn::Binding& b, const etpn::Etpn& e,
    const TestabilityAnalysis& analysis, int k, const BalanceOptions& options) {
  std::vector<MergeCandidate> candidates;
  const etpn::DataPath& dp = e.data_path;

  auto score_pair = [&](etpn::DpNodeId n1, etpn::DpNodeId n2,
                        bool self_loop) -> double {
    const double c1 = analysis.node_controllability(n1).scalar(options.lambda);
    const double o1 = analysis.node_observability(n1).scalar(options.lambda);
    const double c2 = analysis.node_controllability(n2).scalar(options.lambda);
    const double o2 = analysis.node_observability(n2).scalar(options.lambda);
    const double merged_c = std::max(c1, c2);
    const double merged_o = std::max(o1, o2);
    // Complementarity: one node contributes controllability it has in
    // excess of its observability, the other the reverse.
    const double compl_bonus =
        std::max(0.0, c1 - o1) * std::max(0.0, o2 - c2) +
        std::max(0.0, c2 - o2) * std::max(0.0, o1 - c1);
    double score = std::min(merged_c, merged_o) +
                   options.complementarity_weight * compl_bonus;
    if (self_loop) score -= options.self_loop_penalty;
    return score;
  };

  // Module pairs.  The read/write register sets of a module are invariant
  // over the pair loop; computing them per pair made selection quadratic in
  // set-building work on large graphs.
  std::vector<etpn::ModuleId> modules = b.alive_modules();
  std::vector<std::set<std::uint32_t>> mod_reads(modules.size());
  std::vector<std::set<std::uint32_t>> mod_writes(modules.size());
  for (std::size_t i = 0; i < modules.size(); ++i) {
    module_reg_sets(dp, e.module_node[modules[i]], mod_reads[i], mod_writes[i]);
  }
  for (std::size_t i = 0; i < modules.size(); ++i) {
    for (std::size_t j = i + 1; j < modules.size(); ++j) {
      if (!b.can_merge_modules(g, modules[i], modules[j])) continue;
      etpn::DpNodeId n1 = e.module_node[modules[i]];
      etpn::DpNodeId n2 = e.module_node[modules[j]];
      // (reads_i u reads_j) intersects (writes_i u writes_j)?
      const bool self_loop = intersects(mod_reads[i], mod_writes[i]) ||
                             intersects(mod_reads[i], mod_writes[j]) ||
                             intersects(mod_reads[j], mod_writes[i]) ||
                             intersects(mod_reads[j], mod_writes[j]);
      MergeCandidate c;
      c.kind = MergeCandidate::Kind::Modules;
      c.module_a = modules[i];
      c.module_b = modules[j];
      c.creates_self_loop = self_loop;
      c.score = score_pair(n1, n2, self_loop);
      candidates.push_back(c);
    }
  }

  // Register pairs.  A merged register self-loops when some module reads
  // one register of the pair and writes the other (or reads and writes the
  // same one); precompute every module's (read register, written register)
  // pairs once so the per-pair check is four set probes instead of a walk
  // over the whole data path.
  std::unordered_set<std::uint64_t> rw_pairs;
  for (std::size_t i = 0; i < modules.size(); ++i) {
    for (std::uint32_t r : mod_reads[i]) {
      for (std::uint32_t w : mod_writes[i]) {
        rw_pairs.insert((std::uint64_t{r} << 32) | w);
      }
    }
  }
  auto has_rw = [&](etpn::DpNodeId r, etpn::DpNodeId w) {
    return rw_pairs.count((std::uint64_t{r.value()} << 32) | w.value()) != 0;
  };
  const RegMergeOracle oracle(g, b);
  std::vector<etpn::RegId> regs = b.alive_regs();
  for (std::size_t i = 0; i < regs.size(); ++i) {
    for (std::size_t j = i + 1; j < regs.size(); ++j) {
      if (!b.can_merge_regs(regs[i], regs[j])) continue;
      if (oracle.impossible(regs[i], regs[j])) continue;
      etpn::DpNodeId n1 = e.reg_node[regs[i]];
      etpn::DpNodeId n2 = e.reg_node[regs[j]];
      const bool self_loop = has_rw(n1, n1) || has_rw(n1, n2) ||
                             has_rw(n2, n1) || has_rw(n2, n2);
      MergeCandidate c;
      c.kind = MergeCandidate::Kind::Registers;
      c.reg_a = regs[i];
      c.reg_b = regs[j];
      c.creates_self_loop = self_loop;
      c.score = score_pair(n1, n2, self_loop);
      candidates.push_back(c);
    }
  }

  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const MergeCandidate& a, const MergeCandidate& b2) {
                     return a.score > b2.score;
                   });
  if (static_cast<int>(candidates.size()) > k) candidates.resize(k);
  return candidates;
}

}  // namespace hlts::testability
