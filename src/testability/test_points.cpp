#include "testability/test_points.hpp"

#include <algorithm>

namespace hlts::testability {

std::vector<TestPointSuggestion> suggest_test_points(
    const etpn::Etpn& e, const TestabilityAnalysis& analysis, int max_points) {
  std::vector<TestPointSuggestion> suggestions;
  for (etpn::DpNodeId n : e.data_path.node_ids()) {
    const etpn::DpNode& node = e.data_path.node(n);
    if (node.kind != etpn::DpNodeKind::Register) continue;
    const double c = analysis.node_controllability(n).scalar();
    const double o = analysis.node_observability(n).scalar();
    TestPointSuggestion s;
    s.reg = node.reg;
    s.kind = o < c ? TestPointKind::Observe : TestPointKind::Control;
    s.balance = std::min(c, o);
    suggestions.push_back(s);
  }
  std::stable_sort(suggestions.begin(), suggestions.end(),
                   [](const TestPointSuggestion& a,
                      const TestPointSuggestion& b) {
                     return a.balance < b.balance;
                   });
  if (static_cast<int>(suggestions.size()) > max_points) {
    suggestions.resize(max_points);
  }
  return suggestions;
}

}  // namespace hlts::testability
