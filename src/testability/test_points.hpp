// Test-point suggestion: the "improvement" half of the paper's testability
// reference (Gu, Kuchcinski & Peng, "Testability analysis and improvement
// from VHDL behavioral specifications").
//
// After analysis, the registers with the worst controllability/observability
// balance are candidates for DFT hardware: an *observation point* (tap the
// register to an extra output pin) where observability is the weak side, a
// *control point* (a test-mode multiplexer feeding the register from a test
// input) where controllability is.  rtl::elaborate can realize both.
#pragma once

#include <vector>

#include "etpn/etpn.hpp"
#include "testability/testability.hpp"

namespace hlts::testability {

enum class TestPointKind { Observe, Control };

struct TestPointSuggestion {
  etpn::RegId reg;
  TestPointKind kind = TestPointKind::Observe;
  /// min(C, O) scalar of the node: lower = more urgent.
  double balance = 0.0;
};

/// Ranks registers by ascending min(controllability, observability) and
/// returns up to `max_points` suggestions, each tagged with the weaker side.
[[nodiscard]] std::vector<TestPointSuggestion> suggest_test_points(
    const etpn::Etpn& e, const TestabilityAnalysis& analysis, int max_points);

}  // namespace hlts::testability
