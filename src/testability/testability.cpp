#include "testability/testability.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/trace.hpp"

namespace hlts::testability {

namespace {
constexpr double kEps = 1e-9;
constexpr int kMaxRounds = 256;
}  // namespace

bool Measure::better_than(const Measure& o) const {
  if (comb > o.comb + kEps) return true;
  if (comb < o.comb - kEps) return false;
  return seq < o.seq - kEps;
}

namespace {

/// Propagation update rule: should `v` replace the stored value `s`?
///
/// `better_than` alone is eps-tolerant, so inside an eps-plateau (values
/// equal to within kEps, e.g. two loop unrollings whose rounded products
/// differ in the last ulp) the stored value would be whichever candidate
/// happened to arrive first -- a *history-dependent* fixpoint.  The
/// incremental update (TestabilityAnalysis::update) replays a different
/// history than the from-scratch propagation, so plateau ties must be
/// broken deterministically: within a plateau the exact lexicographic
/// maximum (bitwise larger comb, then bitwise smaller seq) wins, making
/// the converged value a canonical function of the graph alone.
bool should_replace(const Measure& v, const Measure& s) {
  if (v.better_than(s)) return true;
  if (s.better_than(v)) return false;
  return v.comb > s.comb || (v.comb == s.comb && v.seq < s.seq);
}

}  // namespace

double Measure::scalar(double lambda) const {
  return comb / (1.0 + lambda * seq);
}

double controllability_transfer(dfg::OpKind kind) {
  using dfg::OpKind;
  switch (kind) {
    case OpKind::Add:
    case OpKind::Sub:
      return 0.95;
    case OpKind::Mul:
      return 0.65;  // many input pairs map to the same product
    case OpKind::Div:
      return 0.60;
    case OpKind::Less:
    case OpKind::Greater:
    case OpKind::Equal:
      return 0.80;  // the 1-bit output itself is easy to set either way
    case OpKind::And:
    case OpKind::Or:
    case OpKind::Xor:
    case OpKind::Not:
      return 0.90;
    case OpKind::ShiftLeft:
    case OpKind::ShiftRight:
      return 0.85;
    case OpKind::Move:
      return 1.0;
  }
  return 0.5;
}

double observability_transfer(dfg::OpKind kind) {
  using dfg::OpKind;
  switch (kind) {
    case OpKind::Add:
    case OpKind::Sub:
      return 0.95;
    case OpKind::Mul:
      return 0.55;
    case OpKind::Div:
      return 0.50;
    case OpKind::Less:
    case OpKind::Greater:
    case OpKind::Equal:
      return 0.30;  // wide operands funnel into one bit
    case OpKind::And:
    case OpKind::Or:
      return 0.75;  // a side input can mask the fault
    case OpKind::Xor:
    case OpKind::Not:
      return 0.95;  // xor/not never mask
    case OpKind::ShiftLeft:
    case OpKind::ShiftRight:
      return 0.85;
    case OpKind::Move:
      return 1.0;
  }
  return 0.5;
}

TestabilityAnalysis::TestabilityAnalysis(const etpn::DataPath& dp) : dp_(dp) {
  cc_.assign(dp.num_arcs(), Measure{});
  co_.assign(dp.num_arcs(), Measure{});
  cc_hist_.assign(dp.num_arcs(), {});
  co_hist_.assign(dp.num_arcs(), {});
  hist_pool_.reserve(dp.num_arcs() * 4);
  propagate_controllability();
  propagate_observability();
}

Measure TestabilityAnalysis::history_at(const HistRef& h, int round) const {
  Measure v{};
  for (std::int32_t i = h.head; i >= 0;) {
    const HistEntry& e = hist_pool_[static_cast<std::size_t>(i)];
    if (e.round > round) break;
    v = e.m;
    i = e.next;
  }
  return v;
}

void TestabilityAnalysis::hist_push(HistRef& h, int round, const Measure& m) {
  const std::int32_t idx = static_cast<std::int32_t>(hist_pool_.size());
  hist_pool_.push_back(HistEntry{round, m, -1});
  if (h.tail >= 0) {
    hist_pool_[static_cast<std::size_t>(h.tail)].next = idx;
  } else {
    h.head = idx;
  }
  h.tail = idx;
  ++h.len;
}

void TestabilityAnalysis::hist_clear(HistRef& h) {
  hist_dead_ += h.len;
  h = HistRef{};
}

void TestabilityAnalysis::maybe_compact_histories() {
  if (hist_dead_ * 2 <= static_cast<std::int64_t>(hist_pool_.size())) return;
  hist_scratch_.clear();
  hist_scratch_.reserve(hist_pool_.size());
  auto rebuild = [&](HistRef& h) {
    HistRef out;
    for (std::int32_t i = h.head; i >= 0;) {
      const HistEntry& e = hist_pool_[static_cast<std::size_t>(i)];
      const std::int32_t idx = static_cast<std::int32_t>(hist_scratch_.size());
      hist_scratch_.push_back(HistEntry{e.round, e.m, -1});
      if (out.tail >= 0) {
        hist_scratch_[static_cast<std::size_t>(out.tail)].next = idx;
      } else {
        out.head = idx;
      }
      out.tail = idx;
      ++out.len;
      i = e.next;
    }
    h = out;
  };
  for (etpn::DpArcId a : dp_.arc_ids()) {
    rebuild(cc_hist_[a]);
    rebuild(co_hist_[a]);
  }
  hist_pool_.swap(hist_scratch_);
  hist_dead_ = 0;
}

namespace {

/// Best measure over a set of arcs; `def` when the set is empty.
template <typename Arcs, typename Table>
Measure best_over(const Arcs& arcs, const Table& table, Measure def) {
  bool any = false;
  Measure best;
  for (auto a : arcs) {
    if (!any || table[a].better_than(best)) {
      best = table[a];
      any = true;
    }
  }
  return any ? best : def;
}

}  // namespace

Measure TestabilityAnalysis::controllability_of(etpn::DpNodeId n) const {
  using etpn::DpArcId;
  using etpn::DpNodeKind;
  const etpn::DpNode& node = dp_.node(n);
  switch (node.kind) {
    case DpNodeKind::InPort:
      return {1.0, 0.0};
    case DpNodeKind::Register: {
      // Load through the best input line; one more clocked stage.
      Measure best = best_over(dp_.in_arcs(n), cc_, Measure{});
      return {best.comb, best.seq + 1.0};
    }
    case DpNodeKind::Module: {
      // Both operand ports must be justified simultaneously.
      const int arity = dp_.num_ports(n);
      double comb = controllability_transfer(node.op_class);
      double seq = 0;
      for (int port = 0; port < arity; ++port) {
        Measure best{};
        bool any = false;
        for (DpArcId a : dp_.in_arcs(n)) {
          if (dp_.arc(a).to_port != port) continue;
          if (!any || cc_[a].better_than(best)) {
            best = cc_[a];
            any = true;
          }
        }
        if (!any) best = Measure{};
        comb *= best.comb;
        seq = std::max(seq, best.seq);
      }
      return {comb, seq};
    }
    case DpNodeKind::OutPort:
      break;  // no output lines; value unused
  }
  return {};
}

Measure TestabilityAnalysis::observability_of(etpn::DpNodeId n,
                                              etpn::DpArcId in) const {
  using etpn::DpArcId;
  using etpn::DpNodeKind;
  const etpn::DpNode& node = dp_.node(n);
  switch (node.kind) {
    case DpNodeKind::OutPort:
      return {1.0, 0.0};
    case DpNodeKind::Register: {
      Measure best = best_over(dp_.out_arcs(n), co_, Measure{});
      return {best.comb, best.seq + 1.0};
    }
    case DpNodeKind::Module: {
      // Observe through the best output line; the other operand must
      // be set to a non-masking value, so its controllability scales
      // the result.
      Measure out_best = best_over(dp_.out_arcs(n), co_, Measure{});
      double side = 1.0;
      const int arity = dp_.num_ports(n);
      if (arity > 1) {
        const int other = 1 - dp_.arc(in).to_port;
        Measure best{};
        bool any = false;
        for (DpArcId a : dp_.in_arcs(n)) {
          if (dp_.arc(a).to_port != other) continue;
          if (!any || cc_[a].better_than(best)) {
            best = cc_[a];
            any = true;
          }
        }
        side = any ? best.comb : 0.0;
      }
      return {observability_transfer(node.op_class) * out_best.comb * side,
              out_best.seq};
    }
    case DpNodeKind::InPort:
      break;  // no input lines; value unused
  }
  return {};
}

void TestabilityAnalysis::propagate_controllability() {
  using etpn::DpArcId;
  using etpn::DpNodeId;
  using etpn::DpNodeKind;

  std::int64_t visits = 0;
  for (int round = 0; round < kMaxRounds; ++round) {
    bool changed = false;
    for (DpNodeId n : dp_.node_ids()) {
      if (!dp_.alive(n)) continue;
      const etpn::DpNode& node = dp_.node(n);
      if (node.kind == DpNodeKind::OutPort) continue;  // no output lines
      ++visits;
      const Measure out = controllability_of(n);
      for (DpArcId a : dp_.out_arcs(n)) {
        // Monotone update: only improve, so the fixpoint is reached from
        // below and loops cannot oscillate.
        if (should_replace(out, cc_[a])) {
          cc_[a] = out;
          hist_push(cc_hist_[a], round, out);
          changed = true;
        }
      }
    }
    if (!changed) break;
  }
  util::count("testability.node_visits", visits);
}

void TestabilityAnalysis::propagate_observability() {
  using etpn::DpArcId;
  using etpn::DpNodeId;
  using etpn::DpNodeKind;

  std::int64_t visits = 0;
  for (int round = 0; round < kMaxRounds; ++round) {
    bool changed = false;
    for (DpNodeId n : dp_.node_ids()) {
      if (!dp_.alive(n)) continue;
      const etpn::DpNode& node = dp_.node(n);
      if (node.kind == DpNodeKind::InPort) continue;  // no input lines
      ++visits;
      // Compute the observability each *input line* of `n` inherits.
      for (DpArcId in : dp_.in_arcs(n)) {
        const Measure val = observability_of(n, in);
        if (should_replace(val, co_[in])) {
          co_[in] = val;
          hist_push(co_hist_[in], round, val);
          changed = true;
        }
      }
    }
    if (!changed) break;
  }
  util::count("testability.node_visits", visits);
}

TestabilityAnalysis::UpdateStats TestabilityAnalysis::update(
    const std::vector<etpn::DpNodeId>& changed_nodes) {
  using etpn::DpArcId;
  using etpn::DpNodeId;
  using etpn::DpNodeKind;

  UpdateStats stats;
  maybe_compact_histories();
  cc_dirty_.assign(dp_.num_arcs(), 0);
  in_cone_.assign(dp_.num_nodes(), 0);

  // Forward cone: every out-arc of a changed node is dirty; a node with a
  // dirty in-arc has dirty out-arcs, transitively (loops close the cone).
  worklist_.clear();
  auto enqueue = [&](DpNodeId n, std::vector<std::uint8_t>& seen) {
    if (seen[n.index()]) return;
    seen[n.index()] = 1;
    worklist_.push_back(n);
  };
  for (DpNodeId n : changed_nodes) {
    if (dp_.alive(n)) enqueue(n, in_cone_);
  }
  cc_nodes_.clear();
  while (!worklist_.empty()) {
    DpNodeId n = worklist_.back();
    worklist_.pop_back();
    cc_nodes_.push_back(n);
    for (DpArcId a : dp_.out_arcs(n)) {
      if (!cc_dirty_[a.index()]) {
        cc_dirty_[a.index()] = 1;
        ++stats.cc_dirty_arcs;
      }
      enqueue(dp_.arc(a).to, in_cone_);
    }
  }
  std::sort(cc_nodes_.begin(), cc_nodes_.end());
  for (DpArcId a : dp_.arc_ids()) {
    if (cc_dirty_[a.index()]) {
      cc_[a] = Measure{};
      hist_clear(cc_hist_[a]);
    }
  }
  // Exact replay of the from-scratch iteration, restricted to the cone:
  // cone nodes are visited in the same ascending-id order as the full
  // propagation, and every frontier (non-dirty) operand is read at the
  // value the scratch run would show at this exact (round, node) position
  // -- its recorded history entry, shifted by one round when the writer
  // node comes later in the visit order.  Frontier trajectories are
  // unchanged by the patch (they form a closed subsystem), so every
  // transfer evaluation sees bit-identical operands and the cone converges
  // to the bit-identical fixpoint.
  int cc_frontier_rounds = 0;
  for (DpNodeId n : cc_nodes_) {
    for (DpArcId a : dp_.in_arcs(n)) {
      if (!cc_dirty_[a.index()] && !hist_empty(cc_hist_[a])) {
        cc_frontier_rounds =
            std::max(cc_frontier_rounds, hist_last_round(cc_hist_[a]));
      }
    }
  }
  for (int round = 0; round < kMaxRounds; ++round) {
    bool changed = false;
    for (DpNodeId n : cc_nodes_) {
      const etpn::DpNode& node = dp_.node(n);
      if (node.kind == DpNodeKind::OutPort) continue;
      ++stats.node_visits;
      for (DpArcId a : dp_.in_arcs(n)) {
        if (cc_dirty_[a.index()]) continue;  // live Gauss-Seidel value
        const int eff = dp_.arc(a).from < n ? round : round - 1;
        cc_[a] = history_at(cc_hist_[a], eff);
      }
      const Measure out = controllability_of(n);
      for (DpArcId a : dp_.out_arcs(n)) {
        if (should_replace(out, cc_[a])) {
          cc_[a] = out;
          hist_push(cc_hist_[a], round, out);
          changed = true;
        }
      }
    }
    // A frontier arc written at round r by a later-id node only becomes
    // visible to earlier-id cone readers at round r + 1 (the writer shift),
    // so quiescence can only be trusted strictly past the frontier bound.
    if (!changed && round > cc_frontier_rounds) break;
  }
  // Restore the materialized frontier arcs to their converged values.
  for (DpNodeId n : cc_nodes_) {
    for (DpArcId a : dp_.in_arcs(n)) {
      if (!cc_dirty_[a.index()]) cc_[a] = history_at(cc_hist_[a], kMaxRounds);
    }
  }

  // Backward cone: seeded from the changed nodes and from the destination of
  // every cc-dirty arc (module input-line observability reads sibling-port
  // controllability).  Every in-arc of a cone node is dirty; its source
  // joins the cone, transitively.
  co_dirty_.assign(dp_.num_arcs(), 0);
  in_bcone_.assign(dp_.num_nodes(), 0);
  for (DpNodeId n : changed_nodes) {
    if (dp_.alive(n)) enqueue(n, in_bcone_);
  }
  for (DpArcId a : dp_.arc_ids()) {
    if (cc_dirty_[a.index()] && dp_.alive(a)) enqueue(dp_.arc(a).to, in_bcone_);
  }
  co_nodes_.clear();
  while (!worklist_.empty()) {
    DpNodeId n = worklist_.back();
    worklist_.pop_back();
    co_nodes_.push_back(n);
    for (DpArcId a : dp_.in_arcs(n)) {
      if (!co_dirty_[a.index()]) {
        co_dirty_[a.index()] = 1;
        ++stats.co_dirty_arcs;
      }
      enqueue(dp_.arc(a).from, in_bcone_);
    }
  }
  std::sort(co_nodes_.begin(), co_nodes_.end());
  for (DpArcId a : dp_.arc_ids()) {
    if (co_dirty_[a.index()]) {
      co_[a] = Measure{};
      hist_clear(co_hist_[a]);
    }
  }
  // Exact replay, as above.  A co arc is written when its *destination*
  // node is visited, so the frontier shift keys on arc.to; sibling-port cc
  // reads see final controllability in the scratch run too (observability
  // propagates only after controllability has fully converged).
  int co_frontier_rounds = 0;
  for (DpNodeId n : co_nodes_) {
    for (DpArcId a : dp_.out_arcs(n)) {
      if (!co_dirty_[a.index()] && !hist_empty(co_hist_[a])) {
        co_frontier_rounds =
            std::max(co_frontier_rounds, hist_last_round(co_hist_[a]));
      }
    }
  }
  for (int round = 0; round < kMaxRounds; ++round) {
    bool changed = false;
    for (DpNodeId n : co_nodes_) {
      const etpn::DpNode& node = dp_.node(n);
      if (node.kind == DpNodeKind::InPort) continue;
      ++stats.node_visits;
      for (DpArcId a : dp_.out_arcs(n)) {
        if (co_dirty_[a.index()]) continue;  // live Gauss-Seidel value
        const int eff = dp_.arc(a).to < n ? round : round - 1;
        co_[a] = history_at(co_hist_[a], eff);
      }
      for (DpArcId in : dp_.in_arcs(n)) {
        const Measure val = observability_of(n, in);
        if (should_replace(val, co_[in])) {
          co_[in] = val;
          hist_push(co_hist_[in], round, val);
          changed = true;
        }
      }
    }
    if (!changed && round > co_frontier_rounds) break;
  }
  for (DpNodeId n : co_nodes_) {
    for (DpArcId a : dp_.out_arcs(n)) {
      if (!co_dirty_[a.index()]) co_[a] = history_at(co_hist_[a], kMaxRounds);
    }
  }

  util::count("testability.node_visits", stats.node_visits);
  util::count("testability.incremental_updates");
  return stats;
}

Measure TestabilityAnalysis::node_controllability(etpn::DpNodeId n) const {
  if (dp_.node(n).kind == etpn::DpNodeKind::InPort) return {1.0, 0.0};
  return best_over(dp_.in_arcs(n), cc_, Measure{});
}

Measure TestabilityAnalysis::node_observability(etpn::DpNodeId n) const {
  if (dp_.node(n).kind == etpn::DpNodeKind::OutPort) return {1.0, 0.0};
  return best_over(dp_.out_arcs(n), co_, Measure{});
}

double TestabilityAnalysis::balance_index() const {
  double sum = 0;
  int count = 0;
  for (etpn::DpNodeId n : dp_.node_ids()) {
    if (!dp_.alive(n)) continue;
    const auto kind = dp_.node(n).kind;
    if (kind != etpn::DpNodeKind::Register && kind != etpn::DpNodeKind::Module) {
      continue;
    }
    sum += std::min(node_controllability(n).scalar(),
                    node_observability(n).scalar());
    ++count;
  }
  return count ? sum / count : 0.0;
}

}  // namespace hlts::testability
