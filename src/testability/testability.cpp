#include "testability/testability.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/trace.hpp"

namespace hlts::testability {

namespace {
constexpr double kEps = 1e-9;
constexpr int kMaxRounds = 256;
}  // namespace

bool Measure::better_than(const Measure& o) const {
  if (comb > o.comb + kEps) return true;
  if (comb < o.comb - kEps) return false;
  return seq < o.seq - kEps;
}

namespace {

/// Propagation update rule: should `v` replace the stored value `s`?
///
/// `better_than` alone is eps-tolerant, so inside an eps-plateau (values
/// equal to within kEps, e.g. two loop unrollings whose rounded products
/// differ in the last ulp) the stored value would be whichever candidate
/// happened to arrive first -- a *history-dependent* fixpoint.  The
/// incremental update (TestabilityAnalysis::update) replays a different
/// history than the from-scratch propagation, so plateau ties must be
/// broken deterministically: within a plateau the exact lexicographic
/// maximum (bitwise larger comb, then bitwise smaller seq) wins, making
/// the converged value a canonical function of the graph alone.
bool should_replace(const Measure& v, const Measure& s) {
  if (v.better_than(s)) return true;
  if (s.better_than(v)) return false;
  return v.comb > s.comb || (v.comb == s.comb && v.seq < s.seq);
}

}  // namespace

double Measure::scalar(double lambda) const {
  return comb / (1.0 + lambda * seq);
}

double controllability_transfer(dfg::OpKind kind) {
  using dfg::OpKind;
  switch (kind) {
    case OpKind::Add:
    case OpKind::Sub:
      return 0.95;
    case OpKind::Mul:
      return 0.65;  // many input pairs map to the same product
    case OpKind::Div:
      return 0.60;
    case OpKind::Less:
    case OpKind::Greater:
    case OpKind::Equal:
      return 0.80;  // the 1-bit output itself is easy to set either way
    case OpKind::And:
    case OpKind::Or:
    case OpKind::Xor:
    case OpKind::Not:
      return 0.90;
    case OpKind::ShiftLeft:
    case OpKind::ShiftRight:
      return 0.85;
    case OpKind::Move:
      return 1.0;
  }
  return 0.5;
}

double observability_transfer(dfg::OpKind kind) {
  using dfg::OpKind;
  switch (kind) {
    case OpKind::Add:
    case OpKind::Sub:
      return 0.95;
    case OpKind::Mul:
      return 0.55;
    case OpKind::Div:
      return 0.50;
    case OpKind::Less:
    case OpKind::Greater:
    case OpKind::Equal:
      return 0.30;  // wide operands funnel into one bit
    case OpKind::And:
    case OpKind::Or:
      return 0.75;  // a side input can mask the fault
    case OpKind::Xor:
    case OpKind::Not:
      return 0.95;  // xor/not never mask
    case OpKind::ShiftLeft:
    case OpKind::ShiftRight:
      return 0.85;
    case OpKind::Move:
      return 1.0;
  }
  return 0.5;
}

TestabilityAnalysis::TestabilityAnalysis(const etpn::DataPath& dp) : dp_(dp) {
  cc_.assign(dp.num_arcs(), Measure{});
  co_.assign(dp.num_arcs(), Measure{});
  cc_hist_.assign(dp.num_arcs(), {});
  co_hist_.assign(dp.num_arcs(), {});
  propagate_controllability();
  propagate_observability();
}

Measure TestabilityAnalysis::history_at(const History& h, int round) {
  Measure v{};
  for (const auto& [r, m] : h) {
    if (r > round) break;
    v = m;
  }
  return v;
}

namespace {

/// Best measure over a set of arcs; `def` when the set is empty.
template <typename Arcs, typename Table>
Measure best_over(const Arcs& arcs, const Table& table, Measure def) {
  bool any = false;
  Measure best;
  for (auto a : arcs) {
    if (!any || table[a].better_than(best)) {
      best = table[a];
      any = true;
    }
  }
  return any ? best : def;
}

}  // namespace

Measure TestabilityAnalysis::controllability_of(etpn::DpNodeId n) const {
  using etpn::DpArcId;
  using etpn::DpNodeKind;
  const etpn::DpNode& node = dp_.node(n);
  switch (node.kind) {
    case DpNodeKind::InPort:
      return {1.0, 0.0};
    case DpNodeKind::Register: {
      // Load through the best input line; one more clocked stage.
      Measure best = best_over(node.in_arcs, cc_, Measure{});
      return {best.comb, best.seq + 1.0};
    }
    case DpNodeKind::Module: {
      // Both operand ports must be justified simultaneously.
      const int arity = dp_.num_ports(n);
      double comb = controllability_transfer(node.op_class);
      double seq = 0;
      for (int port = 0; port < arity; ++port) {
        Measure best{};
        bool any = false;
        for (DpArcId a : node.in_arcs) {
          if (dp_.arc(a).to_port != port) continue;
          if (!any || cc_[a].better_than(best)) {
            best = cc_[a];
            any = true;
          }
        }
        if (!any) best = Measure{};
        comb *= best.comb;
        seq = std::max(seq, best.seq);
      }
      return {comb, seq};
    }
    case DpNodeKind::OutPort:
      break;  // no output lines; value unused
  }
  return {};
}

Measure TestabilityAnalysis::observability_of(etpn::DpNodeId n,
                                              etpn::DpArcId in) const {
  using etpn::DpArcId;
  using etpn::DpNodeKind;
  const etpn::DpNode& node = dp_.node(n);
  switch (node.kind) {
    case DpNodeKind::OutPort:
      return {1.0, 0.0};
    case DpNodeKind::Register: {
      Measure best = best_over(node.out_arcs, co_, Measure{});
      return {best.comb, best.seq + 1.0};
    }
    case DpNodeKind::Module: {
      // Observe through the best output line; the other operand must
      // be set to a non-masking value, so its controllability scales
      // the result.
      Measure out_best = best_over(node.out_arcs, co_, Measure{});
      double side = 1.0;
      const int arity = dp_.num_ports(n);
      if (arity > 1) {
        const int other = 1 - dp_.arc(in).to_port;
        Measure best{};
        bool any = false;
        for (DpArcId a : node.in_arcs) {
          if (dp_.arc(a).to_port != other) continue;
          if (!any || cc_[a].better_than(best)) {
            best = cc_[a];
            any = true;
          }
        }
        side = any ? best.comb : 0.0;
      }
      return {observability_transfer(node.op_class) * out_best.comb * side,
              out_best.seq};
    }
    case DpNodeKind::InPort:
      break;  // no input lines; value unused
  }
  return {};
}

void TestabilityAnalysis::propagate_controllability() {
  using etpn::DpArcId;
  using etpn::DpNodeId;
  using etpn::DpNodeKind;

  std::int64_t visits = 0;
  for (int round = 0; round < kMaxRounds; ++round) {
    bool changed = false;
    for (DpNodeId n : dp_.node_ids()) {
      if (!dp_.alive(n)) continue;
      const etpn::DpNode& node = dp_.node(n);
      if (node.kind == DpNodeKind::OutPort) continue;  // no output lines
      ++visits;
      const Measure out = controllability_of(n);
      for (DpArcId a : node.out_arcs) {
        // Monotone update: only improve, so the fixpoint is reached from
        // below and loops cannot oscillate.
        if (should_replace(out, cc_[a])) {
          cc_[a] = out;
          cc_hist_[a].push_back({round, out});
          changed = true;
        }
      }
    }
    if (!changed) break;
  }
  util::count("testability.node_visits", visits);
}

void TestabilityAnalysis::propagate_observability() {
  using etpn::DpArcId;
  using etpn::DpNodeId;
  using etpn::DpNodeKind;

  std::int64_t visits = 0;
  for (int round = 0; round < kMaxRounds; ++round) {
    bool changed = false;
    for (DpNodeId n : dp_.node_ids()) {
      if (!dp_.alive(n)) continue;
      const etpn::DpNode& node = dp_.node(n);
      if (node.kind == DpNodeKind::InPort) continue;  // no input lines
      ++visits;
      // Compute the observability each *input line* of `n` inherits.
      for (DpArcId in : node.in_arcs) {
        const Measure val = observability_of(n, in);
        if (should_replace(val, co_[in])) {
          co_[in] = val;
          co_hist_[in].push_back({round, val});
          changed = true;
        }
      }
    }
    if (!changed) break;
  }
  util::count("testability.node_visits", visits);
}

TestabilityAnalysis::UpdateStats TestabilityAnalysis::update(
    const std::vector<etpn::DpNodeId>& changed_nodes) {
  using etpn::DpArcId;
  using etpn::DpNodeId;
  using etpn::DpNodeKind;

  UpdateStats stats;
  std::vector<bool> cc_dirty(dp_.num_arcs(), false);
  std::vector<bool> in_cone(dp_.num_nodes(), false);

  // Forward cone: every out-arc of a changed node is dirty; a node with a
  // dirty in-arc has dirty out-arcs, transitively (loops close the cone).
  std::vector<DpNodeId> worklist;
  auto enqueue = [&](DpNodeId n, std::vector<bool>& seen) {
    if (seen[n.index()]) return;
    seen[n.index()] = true;
    worklist.push_back(n);
  };
  for (DpNodeId n : changed_nodes) {
    if (dp_.alive(n)) enqueue(n, in_cone);
  }
  std::vector<DpNodeId> cc_nodes;
  while (!worklist.empty()) {
    DpNodeId n = worklist.back();
    worklist.pop_back();
    cc_nodes.push_back(n);
    for (DpArcId a : dp_.node(n).out_arcs) {
      if (!cc_dirty[a.index()]) {
        cc_dirty[a.index()] = true;
        ++stats.cc_dirty_arcs;
      }
      enqueue(dp_.arc(a).to, in_cone);
    }
  }
  std::sort(cc_nodes.begin(), cc_nodes.end());
  for (DpArcId a : dp_.arc_ids()) {
    if (cc_dirty[a.index()]) {
      cc_[a] = Measure{};
      cc_hist_[a].clear();
    }
  }
  // Exact replay of the from-scratch iteration, restricted to the cone:
  // cone nodes are visited in the same ascending-id order as the full
  // propagation, and every frontier (non-dirty) operand is read at the
  // value the scratch run would show at this exact (round, node) position
  // -- its recorded history entry, shifted by one round when the writer
  // node comes later in the visit order.  Frontier trajectories are
  // unchanged by the patch (they form a closed subsystem), so every
  // transfer evaluation sees bit-identical operands and the cone converges
  // to the bit-identical fixpoint.
  int cc_frontier_rounds = 0;
  for (DpNodeId n : cc_nodes) {
    for (DpArcId a : dp_.node(n).in_arcs) {
      if (!cc_dirty[a.index()] && !cc_hist_[a].empty()) {
        cc_frontier_rounds =
            std::max(cc_frontier_rounds, cc_hist_[a].back().first);
      }
    }
  }
  for (int round = 0; round < kMaxRounds; ++round) {
    bool changed = false;
    for (DpNodeId n : cc_nodes) {
      const etpn::DpNode& node = dp_.node(n);
      if (node.kind == DpNodeKind::OutPort) continue;
      ++stats.node_visits;
      for (DpArcId a : node.in_arcs) {
        if (cc_dirty[a.index()]) continue;  // live Gauss-Seidel value
        const int eff = dp_.arc(a).from < n ? round : round - 1;
        cc_[a] = history_at(cc_hist_[a], eff);
      }
      const Measure out = controllability_of(n);
      for (DpArcId a : node.out_arcs) {
        if (should_replace(out, cc_[a])) {
          cc_[a] = out;
          cc_hist_[a].push_back({round, out});
          changed = true;
        }
      }
    }
    // A frontier arc written at round r by a later-id node only becomes
    // visible to earlier-id cone readers at round r + 1 (the writer shift),
    // so quiescence can only be trusted strictly past the frontier bound.
    if (!changed && round > cc_frontier_rounds) break;
  }
  // Restore the materialized frontier arcs to their converged values.
  for (DpNodeId n : cc_nodes) {
    for (DpArcId a : dp_.node(n).in_arcs) {
      if (!cc_dirty[a.index()]) cc_[a] = history_at(cc_hist_[a], kMaxRounds);
    }
  }

  // Backward cone: seeded from the changed nodes and from the destination of
  // every cc-dirty arc (module input-line observability reads sibling-port
  // controllability).  Every in-arc of a cone node is dirty; its source
  // joins the cone, transitively.
  std::vector<bool> co_dirty(dp_.num_arcs(), false);
  std::vector<bool> in_bcone(dp_.num_nodes(), false);
  for (DpNodeId n : changed_nodes) {
    if (dp_.alive(n)) enqueue(n, in_bcone);
  }
  for (DpArcId a : dp_.arc_ids()) {
    if (cc_dirty[a.index()] && dp_.alive(a)) enqueue(dp_.arc(a).to, in_bcone);
  }
  std::vector<DpNodeId> co_nodes;
  while (!worklist.empty()) {
    DpNodeId n = worklist.back();
    worklist.pop_back();
    co_nodes.push_back(n);
    for (DpArcId a : dp_.node(n).in_arcs) {
      if (!co_dirty[a.index()]) {
        co_dirty[a.index()] = true;
        ++stats.co_dirty_arcs;
      }
      enqueue(dp_.arc(a).from, in_bcone);
    }
  }
  std::sort(co_nodes.begin(), co_nodes.end());
  for (DpArcId a : dp_.arc_ids()) {
    if (co_dirty[a.index()]) {
      co_[a] = Measure{};
      co_hist_[a].clear();
    }
  }
  // Exact replay, as above.  A co arc is written when its *destination*
  // node is visited, so the frontier shift keys on arc.to; sibling-port cc
  // reads see final controllability in the scratch run too (observability
  // propagates only after controllability has fully converged).
  int co_frontier_rounds = 0;
  for (DpNodeId n : co_nodes) {
    for (DpArcId a : dp_.node(n).out_arcs) {
      if (!co_dirty[a.index()] && !co_hist_[a].empty()) {
        co_frontier_rounds =
            std::max(co_frontier_rounds, co_hist_[a].back().first);
      }
    }
  }
  for (int round = 0; round < kMaxRounds; ++round) {
    bool changed = false;
    for (DpNodeId n : co_nodes) {
      const etpn::DpNode& node = dp_.node(n);
      if (node.kind == DpNodeKind::InPort) continue;
      ++stats.node_visits;
      for (DpArcId a : node.out_arcs) {
        if (co_dirty[a.index()]) continue;  // live Gauss-Seidel value
        const int eff = dp_.arc(a).to < n ? round : round - 1;
        co_[a] = history_at(co_hist_[a], eff);
      }
      for (DpArcId in : node.in_arcs) {
        const Measure val = observability_of(n, in);
        if (should_replace(val, co_[in])) {
          co_[in] = val;
          co_hist_[in].push_back({round, val});
          changed = true;
        }
      }
    }
    if (!changed && round > co_frontier_rounds) break;
  }
  for (DpNodeId n : co_nodes) {
    for (DpArcId a : dp_.node(n).out_arcs) {
      if (!co_dirty[a.index()]) co_[a] = history_at(co_hist_[a], kMaxRounds);
    }
  }

  util::count("testability.node_visits", stats.node_visits);
  util::count("testability.incremental_updates");
  return stats;
}

Measure TestabilityAnalysis::node_controllability(etpn::DpNodeId n) const {
  const etpn::DpNode& node = dp_.node(n);
  if (node.kind == etpn::DpNodeKind::InPort) return {1.0, 0.0};
  return best_over(node.in_arcs, cc_, Measure{});
}

Measure TestabilityAnalysis::node_observability(etpn::DpNodeId n) const {
  const etpn::DpNode& node = dp_.node(n);
  if (node.kind == etpn::DpNodeKind::OutPort) return {1.0, 0.0};
  return best_over(node.out_arcs, co_, Measure{});
}

double TestabilityAnalysis::balance_index() const {
  double sum = 0;
  int count = 0;
  for (etpn::DpNodeId n : dp_.node_ids()) {
    if (!dp_.alive(n)) continue;
    const auto kind = dp_.node(n).kind;
    if (kind != etpn::DpNodeKind::Register && kind != etpn::DpNodeKind::Module) {
      continue;
    }
    sum += std::min(node_controllability(n).scalar(),
                    node_observability(n).scalar());
    ++count;
  }
  return count ? sum / count : 0.0;
}

}  // namespace hlts::testability
