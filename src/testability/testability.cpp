#include "testability/testability.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace hlts::testability {

namespace {
constexpr double kEps = 1e-9;
constexpr int kMaxRounds = 256;
}  // namespace

bool Measure::better_than(const Measure& o) const {
  if (comb > o.comb + kEps) return true;
  if (comb < o.comb - kEps) return false;
  return seq < o.seq - kEps;
}

double Measure::scalar(double lambda) const {
  return comb / (1.0 + lambda * seq);
}

double controllability_transfer(dfg::OpKind kind) {
  using dfg::OpKind;
  switch (kind) {
    case OpKind::Add:
    case OpKind::Sub:
      return 0.95;
    case OpKind::Mul:
      return 0.65;  // many input pairs map to the same product
    case OpKind::Div:
      return 0.60;
    case OpKind::Less:
    case OpKind::Greater:
    case OpKind::Equal:
      return 0.80;  // the 1-bit output itself is easy to set either way
    case OpKind::And:
    case OpKind::Or:
    case OpKind::Xor:
    case OpKind::Not:
      return 0.90;
    case OpKind::ShiftLeft:
    case OpKind::ShiftRight:
      return 0.85;
    case OpKind::Move:
      return 1.0;
  }
  return 0.5;
}

double observability_transfer(dfg::OpKind kind) {
  using dfg::OpKind;
  switch (kind) {
    case OpKind::Add:
    case OpKind::Sub:
      return 0.95;
    case OpKind::Mul:
      return 0.55;
    case OpKind::Div:
      return 0.50;
    case OpKind::Less:
    case OpKind::Greater:
    case OpKind::Equal:
      return 0.30;  // wide operands funnel into one bit
    case OpKind::And:
    case OpKind::Or:
      return 0.75;  // a side input can mask the fault
    case OpKind::Xor:
    case OpKind::Not:
      return 0.95;  // xor/not never mask
    case OpKind::ShiftLeft:
    case OpKind::ShiftRight:
      return 0.85;
    case OpKind::Move:
      return 1.0;
  }
  return 0.5;
}

TestabilityAnalysis::TestabilityAnalysis(const etpn::DataPath& dp) : dp_(dp) {
  cc_.assign(dp.num_arcs(), Measure{});
  co_.assign(dp.num_arcs(), Measure{});
  propagate_controllability();
  propagate_observability();
}

namespace {

/// Best measure over a set of arcs; `def` when the set is empty.
template <typename Arcs, typename Table>
Measure best_over(const Arcs& arcs, const Table& table, Measure def) {
  bool any = false;
  Measure best;
  for (auto a : arcs) {
    if (!any || table[a].better_than(best)) {
      best = table[a];
      any = true;
    }
  }
  return any ? best : def;
}

}  // namespace

void TestabilityAnalysis::propagate_controllability() {
  using etpn::DpArcId;
  using etpn::DpNodeId;
  using etpn::DpNodeKind;

  for (int round = 0; round < kMaxRounds; ++round) {
    bool changed = false;
    for (DpNodeId n : dp_.node_ids()) {
      const etpn::DpNode& node = dp_.node(n);
      Measure out;
      switch (node.kind) {
        case DpNodeKind::InPort:
          out = {1.0, 0.0};
          break;
        case DpNodeKind::Register: {
          // Load through the best input line; one more clocked stage.
          Measure best = best_over(node.in_arcs, cc_, Measure{});
          out = {best.comb, best.seq + 1.0};
          break;
        }
        case DpNodeKind::Module: {
          // Both operand ports must be justified simultaneously.
          const int arity = dp_.num_ports(n);
          double comb = controllability_transfer(node.op_class);
          double seq = 0;
          for (int port = 0; port < arity; ++port) {
            Measure best{};
            bool any = false;
            for (DpArcId a : node.in_arcs) {
              if (dp_.arc(a).to_port != port) continue;
              if (!any || cc_[a].better_than(best)) {
                best = cc_[a];
                any = true;
              }
            }
            if (!any) best = Measure{};
            comb *= best.comb;
            seq = std::max(seq, best.seq);
          }
          out = {comb, seq};
          break;
        }
        case DpNodeKind::OutPort:
          continue;  // no output lines
      }
      for (DpArcId a : node.out_arcs) {
        if (std::abs(cc_[a].comb - out.comb) > kEps ||
            std::abs(cc_[a].seq - out.seq) > kEps) {
          // Monotone update: only improve, so the fixpoint is reached from
          // below and loops cannot oscillate.
          if (out.better_than(cc_[a])) {
            cc_[a] = out;
            changed = true;
          }
        }
      }
    }
    if (!changed) return;
  }
}

void TestabilityAnalysis::propagate_observability() {
  using etpn::DpArcId;
  using etpn::DpNodeId;
  using etpn::DpNodeKind;

  for (int round = 0; round < kMaxRounds; ++round) {
    bool changed = false;
    for (DpNodeId n : dp_.node_ids()) {
      const etpn::DpNode& node = dp_.node(n);
      // Compute the observability each *input line* of `n` inherits.
      for (DpArcId in : node.in_arcs) {
        Measure val{};
        switch (node.kind) {
          case DpNodeKind::OutPort:
            val = {1.0, 0.0};
            break;
          case DpNodeKind::Register: {
            Measure best = best_over(node.out_arcs, co_, Measure{});
            val = {best.comb, best.seq + 1.0};
            break;
          }
          case DpNodeKind::Module: {
            // Observe through the best output line; the other operand must
            // be set to a non-masking value, so its controllability scales
            // the result.
            Measure out_best = best_over(node.out_arcs, co_, Measure{});
            double side = 1.0;
            const int arity = dp_.num_ports(n);
            if (arity > 1) {
              const int other = 1 - dp_.arc(in).to_port;
              Measure best{};
              bool any = false;
              for (DpArcId a : node.in_arcs) {
                if (dp_.arc(a).to_port != other) continue;
                if (!any || cc_[a].better_than(best)) {
                  best = cc_[a];
                  any = true;
                }
              }
              side = any ? best.comb : 0.0;
            }
            val = {observability_transfer(node.op_class) * out_best.comb * side,
                   out_best.seq};
            break;
          }
          case DpNodeKind::InPort:
            continue;  // no input lines
        }
        if (val.better_than(co_[in])) {
          co_[in] = val;
          changed = true;
        }
      }
    }
    if (!changed) return;
  }
}

Measure TestabilityAnalysis::node_controllability(etpn::DpNodeId n) const {
  const etpn::DpNode& node = dp_.node(n);
  if (node.kind == etpn::DpNodeKind::InPort) return {1.0, 0.0};
  return best_over(node.in_arcs, cc_, Measure{});
}

Measure TestabilityAnalysis::node_observability(etpn::DpNodeId n) const {
  const etpn::DpNode& node = dp_.node(n);
  if (node.kind == etpn::DpNodeKind::OutPort) return {1.0, 0.0};
  return best_over(node.out_arcs, co_, Measure{});
}

double TestabilityAnalysis::balance_index() const {
  double sum = 0;
  int count = 0;
  for (etpn::DpNodeId n : dp_.node_ids()) {
    const auto kind = dp_.node(n).kind;
    if (kind != etpn::DpNodeKind::Register && kind != etpn::DpNodeKind::Module) {
      continue;
    }
    sum += std::min(node_controllability(n).scalar(),
                    node_observability(n).scalar());
    ++count;
  }
  return count ? sum / count : 0.0;
}

}  // namespace hlts::testability
