// Register-transfer-level testability analysis (after Gu, Kuchcinski & Peng,
// EURO-DAC'94), operating on the ETPN data path.
//
// Four measures per data-path line:
//   CC -- combinational controllability in (0, 1]: cost of setting a value
//         on the line (1 = as easy as a primary input),
//   SC -- sequential controllability >= 0: number of clocked stages a
//         justification sequence must traverse,
//   CO / SO -- the dual observability measures.
//
// The algorithm "assigns first ones to CCs and zeros to SCs for all primary
// inputs ... these values will then be propagated ... until the primary
// outputs are reached.  A similar approach can be used for calculating
// observability in the reverse direction."  Loops in the data path make the
// propagation a fixpoint iteration: all transfer functions are monotone and
// bounded, so Kleene iteration converges.
#pragma once

#include <vector>

#include "etpn/etpn.hpp"
#include "util/ids.hpp"

namespace hlts::testability {

/// Controllability (or observability) of a line: a combinational factor in
/// [0,1] and a sequential depth.
struct Measure {
  double comb = 0.0;
  double seq = 0.0;

  /// Lexicographic quality: higher comb wins; ties broken by lower seq.
  [[nodiscard]] bool better_than(const Measure& o) const;

  /// Collapses the pair into one scalar in [0,1] for ranking decisions:
  /// comb / (1 + lambda * seq).
  [[nodiscard]] double scalar(double lambda = 0.3) const;
};

/// Combinational controllability transfer factor of an operation class: how
/// much of the input controllability survives to the output.
[[nodiscard]] double controllability_transfer(dfg::OpKind kind);
/// Observability transfer factor: how transparently a fault on one operand
/// propagates through the module to its output.
[[nodiscard]] double observability_transfer(dfg::OpKind kind);

/// Per-line and per-node testability of a data path.
class TestabilityAnalysis {
 public:
  /// Runs the forward (controllability) and backward (observability)
  /// propagations to fixpoint.
  explicit TestabilityAnalysis(const etpn::DataPath& dp);

  /// Line measures (lines are identified with data path arcs).
  [[nodiscard]] Measure line_controllability(etpn::DpArcId a) const {
    return cc_[a];
  }
  [[nodiscard]] Measure line_observability(etpn::DpArcId a) const {
    return co_[a];
  }

  /// "The controllability of a node is defined as the best controllability
  /// of any of its input lines, while the observability of a node is the
  /// best observability of any of its output lines."
  [[nodiscard]] Measure node_controllability(etpn::DpNodeId n) const;
  [[nodiscard]] Measure node_observability(etpn::DpNodeId n) const;

  /// Design-level summary used by benches and the ablation study: the mean,
  /// over register and module nodes, of min(C.scalar, O.scalar) -- high when
  /// every node is both controllable and observable.
  [[nodiscard]] double balance_index() const;

  [[nodiscard]] const etpn::DataPath& data_path() const { return dp_; }

 private:
  void propagate_controllability();
  void propagate_observability();

  const etpn::DataPath& dp_;
  IndexVec<etpn::DpArcId, Measure> cc_;
  IndexVec<etpn::DpArcId, Measure> co_;
};

}  // namespace hlts::testability
