// Register-transfer-level testability analysis (after Gu, Kuchcinski & Peng,
// EURO-DAC'94), operating on the ETPN data path.
//
// Four measures per data-path line:
//   CC -- combinational controllability in (0, 1]: cost of setting a value
//         on the line (1 = as easy as a primary input),
//   SC -- sequential controllability >= 0: number of clocked stages a
//         justification sequence must traverse,
//   CO / SO -- the dual observability measures.
//
// The algorithm "assigns first ones to CCs and zeros to SCs for all primary
// inputs ... these values will then be propagated ... until the primary
// outputs are reached.  A similar approach can be used for calculating
// observability in the reverse direction."  Loops in the data path make the
// propagation a fixpoint iteration: all transfer functions are monotone and
// bounded, so Kleene iteration converges.
#pragma once

#include <cstdint>
#include <vector>

#include "etpn/etpn.hpp"
#include "util/ids.hpp"

namespace hlts::testability {

/// Controllability (or observability) of a line: a combinational factor in
/// [0,1] and a sequential depth.
struct Measure {
  double comb = 0.0;
  double seq = 0.0;

  /// Lexicographic quality: higher comb wins; ties broken by lower seq.
  [[nodiscard]] bool better_than(const Measure& o) const;

  /// Collapses the pair into one scalar in [0,1] for ranking decisions:
  /// comb / (1 + lambda * seq).
  [[nodiscard]] double scalar(double lambda = 0.3) const;
};

/// Combinational controllability transfer factor of an operation class: how
/// much of the input controllability survives to the output.
[[nodiscard]] double controllability_transfer(dfg::OpKind kind);
/// Observability transfer factor: how transparently a fault on one operand
/// propagates through the module to its output.
[[nodiscard]] double observability_transfer(dfg::OpKind kind);

/// Per-line and per-node testability of a data path.
class TestabilityAnalysis {
 public:
  /// Runs the forward (controllability) and backward (observability)
  /// propagations to fixpoint.
  explicit TestabilityAnalysis(const etpn::DataPath& dp);

  /// Work done by one update() call, for bench accounting.
  struct UpdateStats {
    std::int64_t cc_dirty_arcs = 0;
    std::int64_t co_dirty_arcs = 0;
    std::int64_t node_visits = 0;
  };

  /// Incrementally re-runs the fixed point after an in-place merge patch
  /// (etpn::apply_merge_patch) changed the structure around `changed_nodes`.
  ///
  /// Dirty-set semantics: controllability can only change on the *forward
  /// cone* of a changed node (its out-arcs, then the out-arcs of any node
  /// with a dirty in-arc, transitively -- loops close the cone).
  /// Observability can change on the *backward cone* seeded from the
  /// changed nodes and from the destination of every dirty-controllability
  /// arc (a module's input-line observability reads the sibling port's
  /// controllability, so cc dirt leaks into co).  Dirty arcs are reset to
  /// bottom and re-converged by an *exact replay* of the full propagation
  /// restricted to the cone: cone nodes are visited in the same ascending
  /// node-id order, and frontier (non-dirty) operands are read at their
  /// recorded per-round trajectory values rather than their converged
  /// values -- eps-tolerant plateau ties on data-path cycles are history
  /// dependent, so reading the frontier mid-flight is what makes the
  /// result *bit-identical* to a from-scratch analysis of the patched
  /// graph.  Arcs outside the cones keep values (and trajectories) that
  /// are already at the from-scratch fixpoint (their inputs are
  /// untouched).
  UpdateStats update(const std::vector<etpn::DpNodeId>& changed_nodes);

  /// Line measures (lines are identified with data path arcs).
  [[nodiscard]] Measure line_controllability(etpn::DpArcId a) const {
    return cc_[a];
  }
  [[nodiscard]] Measure line_observability(etpn::DpArcId a) const {
    return co_[a];
  }

  /// "The controllability of a node is defined as the best controllability
  /// of any of its input lines, while the observability of a node is the
  /// best observability of any of its output lines."
  [[nodiscard]] Measure node_controllability(etpn::DpNodeId n) const;
  [[nodiscard]] Measure node_observability(etpn::DpNodeId n) const;

  /// Design-level summary used by benches and the ablation study: the mean,
  /// over register and module nodes, of min(C.scalar, O.scalar) -- high when
  /// every node is both controllable and observable.
  [[nodiscard]] double balance_index() const;

  [[nodiscard]] const etpn::DataPath& data_path() const { return dp_; }

 private:
  /// The (round, value) assignments the canonical from-scratch propagation
  /// makes to one arc, in round order.  The incremental update replays the
  /// scratch iteration over the dirty cone, and a cone node must read each
  /// frontier (non-dirty) operand at the value the scratch run would show
  /// at that exact (round, node) position -- not at its converged value --
  /// or eps-plateau ties on data-path cycles resolve differently and the
  /// fixpoints drift apart in the last ulp.  Histories are tiny (an arc
  /// typically improves one to three times before converging).
  ///
  /// Storage: linked entries in one shared pool (hist_pool_) headed by a
  /// per-arc HistRef instead of one heap vector per arc.  Appends are pool
  /// push_backs, clears are O(1) dead-marking, and the pool compacts itself
  /// once mostly dead, so a steady-state update() call performs no heap
  /// allocations (bench/micro_perf counts this).
  struct HistEntry {
    int round;
    Measure m;
    std::int32_t next;  ///< pool index of the next entry; -1 terminates
  };
  struct HistRef {
    std::int32_t head = -1;
    std::int32_t tail = -1;
    std::int32_t len = 0;
  };
  /// Value an arc with history `h` holds at the end of `round` (bottom
  /// before its first assignment; negative rounds yield bottom).
  [[nodiscard]] Measure history_at(const HistRef& h, int round) const;
  void hist_push(HistRef& h, int round, const Measure& m);
  void hist_clear(HistRef& h);
  [[nodiscard]] bool hist_empty(const HistRef& h) const { return h.head < 0; }
  /// Round of the last entry; `h` must be non-empty.
  [[nodiscard]] int hist_last_round(const HistRef& h) const {
    return hist_pool_[static_cast<std::size_t>(h.tail)].round;
  }
  /// Rebuilds the pool dense (dropping dead entries) when they dominate.
  void maybe_compact_histories();

  void propagate_controllability();
  void propagate_observability();
  /// One controllability evaluation of `n` (reads in-arc cc); returns the
  /// measure its output lines carry.
  [[nodiscard]] Measure controllability_of(etpn::DpNodeId n) const;
  /// One observability evaluation of input line `in` of `n` (reads out-arc
  /// co and, for modules, sibling-port cc).
  [[nodiscard]] Measure observability_of(etpn::DpNodeId n, etpn::DpArcId in) const;

  const etpn::DataPath& dp_;
  IndexVec<etpn::DpArcId, Measure> cc_;
  IndexVec<etpn::DpArcId, Measure> co_;
  IndexVec<etpn::DpArcId, HistRef> cc_hist_;
  IndexVec<etpn::DpArcId, HistRef> co_hist_;
  std::vector<HistEntry> hist_pool_;
  std::vector<HistEntry> hist_scratch_;  ///< compaction buffer, reused
  std::int64_t hist_dead_ = 0;           ///< dead entries in hist_pool_

  // update() scratch, reused across calls so the steady state allocates
  // nothing (uint8_t, not vector<bool>, for memset-able assigns).
  std::vector<std::uint8_t> cc_dirty_;
  std::vector<std::uint8_t> co_dirty_;
  std::vector<std::uint8_t> in_cone_;
  std::vector<std::uint8_t> in_bcone_;
  std::vector<etpn::DpNodeId> worklist_;
  std::vector<etpn::DpNodeId> cc_nodes_;
  std::vector<etpn::DpNodeId> co_nodes_;
};

}  // namespace hlts::testability
