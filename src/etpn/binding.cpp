#include "etpn/binding.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/failpoint.hpp"
#include "util/strings.hpp"

namespace hlts::etpn {

Binding Binding::default_binding(const dfg::Dfg& g, ModuleCompat compat) {
  Binding b;
  b.compat_ = compat;
  b.op_to_module_.resize(g.num_ops());
  for (dfg::OpId op : g.op_ids()) {
    ModuleId m = b.module_ops_.push_back({op});
    b.module_alive_.push_back(true);
    b.op_to_module_[op] = m;
  }
  b.var_to_reg_.resize(g.num_vars());
  for (dfg::VarId v : g.var_ids()) {
    if (!g.needs_register(v)) {
      b.var_to_reg_[v] = RegId::invalid();
      continue;
    }
    RegId r = b.reg_vars_.push_back({v});
    b.reg_alive_.push_back(true);
    b.var_to_reg_[v] = r;
  }
  return b;
}

Binding Binding::from_groups(const dfg::Dfg& g, ModuleCompat compat,
                             const std::vector<std::vector<dfg::OpId>>& module_groups,
                             const std::vector<bool>& module_alive,
                             const std::vector<std::vector<dfg::VarId>>& reg_groups,
                             const std::vector<bool>& reg_alive) {
  HLTS_REQUIRE_INPUT(module_groups.size() == module_alive.size(),
                     "binding state: module table sizes disagree");
  HLTS_REQUIRE_INPUT(reg_groups.size() == reg_alive.size(),
                     "binding state: register table sizes disagree");
  Binding b;
  b.compat_ = compat;
  b.op_to_module_.resize(g.num_ops());
  for (std::size_t i = 0; i < module_groups.size(); ++i) {
    const ModuleId m{static_cast<ModuleId::underlying_type>(i)};
    b.module_ops_.push_back(module_groups[i]);
    b.module_alive_.push_back(module_alive[i]);
    for (dfg::OpId op : module_groups[i]) {
      HLTS_REQUIRE_INPUT(op.valid() && op.index() < g.num_ops(),
                         "binding state: module op id out of range");
      HLTS_REQUIRE_INPUT(!b.op_to_module_[op].valid(),
                         "binding state: op listed in two modules");
      b.op_to_module_[op] = m;
    }
  }
  b.var_to_reg_.resize(g.num_vars());
  for (dfg::VarId v : g.var_ids()) b.var_to_reg_[v] = RegId::invalid();
  for (std::size_t i = 0; i < reg_groups.size(); ++i) {
    const RegId r{static_cast<RegId::underlying_type>(i)};
    b.reg_vars_.push_back(reg_groups[i]);
    b.reg_alive_.push_back(reg_alive[i]);
    for (dfg::VarId v : reg_groups[i]) {
      HLTS_REQUIRE_INPUT(v.valid() && v.index() < g.num_vars(),
                         "binding state: register var id out of range");
      HLTS_REQUIRE_INPUT(!b.var_to_reg_[v].valid(),
                         "binding state: variable listed in two registers");
      b.var_to_reg_[v] = r;
    }
  }
  // The structural validator catches everything else (ops bound to dead
  // modules, unassigned register-resident variables, kind mismatches), but
  // it reports via HLTS_REQUIRE (Internal); re-tag as Input -- this state
  // came from a file, not from the pipeline.
  try {
    b.validate(g);
  } catch (const Error& e) {
    throw Error(std::string("binding state invalid: ") + e.what(),
                ErrorKind::Input);
  }
  return b;
}

dfg::OpKind Binding::module_kind(const dfg::Dfg& g, ModuleId m) const {
  HLTS_REQUIRE(module_alive_[m] && !module_ops_[m].empty(),
               "module_kind on dead/empty module");
  return g.op(module_ops_[m].front()).kind;
}

std::vector<ModuleId> Binding::alive_modules() const {
  std::vector<ModuleId> out;
  for (ModuleId m : id_range<ModuleId>(module_ops_.size())) {
    if (module_alive_[m]) out.push_back(m);
  }
  return out;
}

int Binding::num_alive_modules() const {
  return static_cast<int>(alive_modules().size());
}

bool Binding::can_merge_modules(const dfg::Dfg& g, ModuleId a, ModuleId b) const {
  if (a == b) return false;
  if (!module_alive_[a] || !module_alive_[b]) return false;
  const dfg::OpKind ka = module_kind(g, a);
  const dfg::OpKind kb = module_kind(g, b);
  if (compat_ == ModuleCompat::ExactKind) return ka == kb;
  return dfg::ops_module_compatible(ka, kb);
}

void Binding::merge_modules(const dfg::Dfg& g, ModuleId into, ModuleId from) {
  HLTS_FAILPOINT("alloc.merge");  // before any mutation: a throw leaves `this` intact
  HLTS_REQUIRE(can_merge_modules(g, into, from), "illegal module merger");
  for (dfg::OpId op : module_ops_[from]) {
    op_to_module_[op] = into;
    module_ops_[into].push_back(op);
  }
  module_ops_[from].clear();
  module_alive_[from] = false;
}

void Binding::undo_merge_modules(ModuleId into, ModuleId from,
                                 std::size_t into_old_size) {
  HLTS_REQUIRE(module_alive_[into] && !module_alive_[from],
               "undo_merge_modules: bad tombstone state");
  auto& ops = module_ops_[into];
  HLTS_REQUIRE(into_old_size <= ops.size(), "undo_merge_modules: bad size");
  auto& from_ops = module_ops_[from];
  from_ops.assign(ops.begin() + static_cast<std::ptrdiff_t>(into_old_size),
                  ops.end());
  ops.resize(into_old_size);
  for (dfg::OpId op : from_ops) op_to_module_[op] = from;
  module_alive_[from] = true;
}

std::vector<RegId> Binding::alive_regs() const {
  std::vector<RegId> out;
  for (RegId r : id_range<RegId>(reg_vars_.size())) {
    if (reg_alive_[r]) out.push_back(r);
  }
  return out;
}

int Binding::num_alive_regs() const {
  return static_cast<int>(alive_regs().size());
}

bool Binding::can_merge_regs(RegId a, RegId b) const {
  return a != b && reg_alive_[a] && reg_alive_[b];
}

void Binding::merge_regs(RegId into, RegId from) {
  HLTS_FAILPOINT("alloc.merge");  // before any mutation: a throw leaves `this` intact
  HLTS_REQUIRE(can_merge_regs(into, from), "illegal register merger");
  for (dfg::VarId v : reg_vars_[from]) {
    var_to_reg_[v] = into;
    reg_vars_[into].push_back(v);
  }
  reg_vars_[from].clear();
  reg_alive_[from] = false;
}

void Binding::undo_merge_regs(RegId into, RegId from, std::size_t into_old_size) {
  HLTS_REQUIRE(reg_alive_[into] && !reg_alive_[from],
               "undo_merge_regs: bad tombstone state");
  auto& vars = reg_vars_[into];
  HLTS_REQUIRE(into_old_size <= vars.size(), "undo_merge_regs: bad size");
  auto& from_vars = reg_vars_[from];
  from_vars.assign(vars.begin() + static_cast<std::ptrdiff_t>(into_old_size),
                   vars.end());
  vars.resize(into_old_size);
  for (dfg::VarId v : from_vars) var_to_reg_[v] = from;
  reg_alive_[from] = true;
}

std::string Binding::module_label(const dfg::Dfg& g, ModuleId m) const {
  std::vector<std::string> names;
  bool mixed = false;
  for (dfg::OpId op : module_ops_[m]) {
    names.push_back(g.op(op).name);
    if (g.op(op).kind != module_kind(g, m)) mixed = true;
  }
  // Mixed add/sub(/compare) modules print as the combined ALU "(+-)",
  // matching the paper's notation for CAMAD allocations.
  std::string sym = mixed ? "+-" : dfg::op_symbol(module_kind(g, m));
  return "(" + sym + "): " + join(names, ", ");
}

std::string Binding::reg_label(const dfg::Dfg& g, RegId r) const {
  std::vector<std::string> names;
  for (dfg::VarId v : reg_vars_[r]) names.push_back(g.var(v).name);
  return "R: " + join(names, ", ");
}

void Binding::validate(const dfg::Dfg& g) const {
  HLTS_REQUIRE(op_to_module_.size() == g.num_ops(), "binding: op table size");
  HLTS_REQUIRE(var_to_reg_.size() == g.num_vars(), "binding: var table size");
  for (dfg::OpId op : g.op_ids()) {
    ModuleId m = op_to_module_[op];
    HLTS_REQUIRE(module_alive_[m], "op bound to dead module");
    const auto& ops = module_ops_[m];
    HLTS_REQUIRE(std::find(ops.begin(), ops.end(), op) != ops.end(),
                 "op missing from its module's list");
  }
  for (ModuleId m : id_range<ModuleId>(module_ops_.size())) {
    if (!module_alive_[m]) {
      HLTS_REQUIRE(module_ops_[m].empty(), "tombstone module not empty");
      continue;
    }
    HLTS_REQUIRE(!module_ops_[m].empty(), "alive module with no ops");
    for (dfg::OpId op : module_ops_[m]) {
      HLTS_REQUIRE(
          dfg::ops_module_compatible(g.op(op).kind, module_kind(g, m)),
          "module hosts incompatible operation kinds");
      HLTS_REQUIRE(op_to_module_[op] == m, "module op back-link broken");
    }
  }
  for (dfg::VarId v : g.var_ids()) {
    RegId r = var_to_reg_[v];
    if (!g.needs_register(v)) {
      HLTS_REQUIRE(!r.valid(), "port-direct variable bound to a register");
      continue;
    }
    HLTS_REQUIRE(r.valid() && reg_alive_[r], "variable bound to dead register");
    const auto& vars = reg_vars_[r];
    HLTS_REQUIRE(std::find(vars.begin(), vars.end(), v) != vars.end(),
                 "variable missing from its register's list");
  }
  for (RegId r : id_range<RegId>(reg_vars_.size())) {
    if (!reg_alive_[r]) {
      HLTS_REQUIRE(reg_vars_[r].empty(), "tombstone register not empty");
    } else {
      HLTS_REQUIRE(!reg_vars_[r].empty(), "alive register with no variables");
    }
  }
}

}  // namespace hlts::etpn
