// In-place merge patching of the data path graph.
//
// A merger transformation (two modules or two registers fused) perturbs only
// the immediate neighbourhood of the two nodes, so instead of rebuilding the
// whole ETPN per trial, `apply_merge_patch` redirects the doomed node's arcs
// to the survivor and retires the node as a tombstone.  The returned
// `MergePatch` is an exact undo log: `revert_merge_patch` restores the graph
// bit-for-bit, which is what lets one shared graph serve many trial
// evaluations.
//
// Undo-log mechanics under the pooled (SoA) DataPath layout: the patcher
// records the two pool high-water marks, saves only POD state -- per-arc
// {endpoints, aliveness, step PoolSpan} and per-node {in/out PoolSpan} for
// the touched neighbourhood -- into arena-carved arrays, then rewrites every
// changed list/step-set as a fresh span at the pool tail.  Data below the
// marks is never overwritten, so revert = restore the saved descriptors and
// truncate the pools back to the marks.  With a warmed arena and pool slack,
// an apply/revert cycle performs zero heap allocations (bench/micro_perf
// counts this).  Stacked patches revert in LIFO order: an outer patch's
// saved spans all point below an inner patch's marks.
//
// Bit-identity contract (relied on by cost estimation and testability):
// a patched graph is *indistinguishable by iteration order* from a graph
// freshly built for the merged binding.  Three invariants make this hold:
//
//  1. Fresh builds assign arc ids in emission order, and every node's arc
//     lists are ascending in arc id.  The patcher preserves the sorted-list
//     invariant by re-sorting the survivor's lists after splicing.
//  2. When a redirected arc collides with an existing arc (same from, to and
//     port), the arc with the *smaller* id survives and absorbs the loser's
//     step set.  A fresh build of the merged binding would emit the combined
//     arc at the first position either original arc was emitted, so min-id
//     survival keeps "alive arcs in ascending id order" equal to the fresh
//     build's emission order -- inductively, across any number of mergers.
//  3. Dead arcs are detached from both endpoints' lists and dead nodes keep
//     empty lists, so consumers that walk lists or skip tombstones visit
//     exactly the fresh build's elements, in the fresh build's order.
#pragma once

#include <string>

#include "etpn/etpn.hpp"
#include "util/arena.hpp"

namespace hlts::etpn {

/// Exact undo log for one in-place merger; see revert_merge_patch.  Holds
/// only POD descriptors in arena storage -- the arena (and thus the patch's
/// memory) must outlive the patch and not be reset before its revert.
struct MergePatch {
  DpNodeId into;
  DpNodeId from;
  /// Survivor's pre-patch name; saved only when the patch renamed it.
  std::string old_into_name;
  bool renamed = false;

  struct ArcState {
    DpArcId id;
    DpNodeId from;
    DpNodeId to;
    PoolSpan steps;
    bool alive = true;
  };
  struct NodeState {
    DpNodeId id;
    PoolSpan in;
    PoolSpan out;
  };
  util::PodVec<ArcState> saved_arcs;
  /// Pre-patch adjacency spans of every node in the merger's neighbourhood.
  util::PodVec<NodeState> saved_nodes;
  /// Pool sizes at apply time; revert truncates back to these.
  std::size_t arc_pool_mark = 0;
  std::size_t step_pool_mark = 0;

  /// Number of arcs killed by duplicate-collapse (the mux savings of the
  /// merger); alive arc count drops by exactly this much.
  int arcs_deduped = 0;

  /// Rough transient footprint of this patch (saved descriptors + the pool
  /// tail it grew), used by the memory-budget accounting in core/synthesis.
  [[nodiscard]] std::size_t approx_bytes() const;
};

/// Fuses data-path node `from` into `into` in place (both must be alive and
/// of the same kind: two Modules or two Registers).  `arena` backs the undo
/// log and the patcher's internal worklists; reset it only after the patch
/// is reverted or abandoned.  `new_into_name`, when non-null, renames the
/// survivor to the merged binding's label so the patched graph matches a
/// fresh build's node names.
MergePatch apply_merge_patch(DataPath& dp, util::Arena& arena, DpNodeId into,
                             DpNodeId from,
                             const std::string* new_into_name = nullptr);

/// Restores the graph to its exact pre-patch state.  Patches must be
/// reverted in LIFO order when stacked.
void revert_merge_patch(DataPath& dp, const MergePatch& patch);

/// Recomputes every alive arc's step annotations for a (new) schedule and
/// rebuilds the control chain, replaying the same emission scan as
/// build_etpn.  Used after a committed merger is rescheduled: the arc
/// *structure* of the ETPN is schedule-independent, only the step sets and
/// the control part change.
void refresh_etpn_steps(Etpn& e, const dfg::Dfg& g, const sched::Schedule& s,
                        const Binding& b, const EtpnOptions& options = {});

}  // namespace hlts::etpn
