#include "etpn/datapath.hpp"

#include <algorithm>
#include <cstring>
#include <deque>
#include <sstream>

#include "util/error.hpp"

namespace hlts::etpn {

DpNodeId DataPath::add_node(DpNode node) {
  node_alive_.push_back(true);
  in_span_.push_back(PoolSpan{});
  out_span_.push_back(PoolSpan{});
  ++alive_nodes_;
  return nodes_.push_back(std::move(node));
}

void DataPath::set_alive(DpNodeId n, bool alive) {
  if (node_alive_[n] == alive) return;
  node_alive_[n] = alive;
  alive ? ++alive_nodes_ : --alive_nodes_;
}

void DataPath::set_alive(DpArcId a, bool alive) {
  if (arc_alive_[a] == alive) return;
  arc_alive_[a] = alive;
  alive ? ++alive_arcs_ : --alive_arcs_;
}

void DataPath::list_append(PoolSpan& s, DpArcId v) {
  if (s.len < s.cap) {
    arc_pool_[s.off + s.len++] = v;
    return;
  }
  const std::uint32_t cap = s.cap == 0 ? 2 : s.cap * 2;
  const std::uint32_t off = static_cast<std::uint32_t>(arc_pool_.size());
  arc_pool_.resize(arc_pool_.size() + cap);
  if (s.len != 0) {
    std::memcpy(arc_pool_.data() + off, arc_pool_.data() + s.off,
                s.len * sizeof(DpArcId));
  }
  s.off = off;
  s.cap = cap;
  arc_pool_[s.off + s.len++] = v;
}

PoolSpan DataPath::tail_copy(std::vector<DpArcId>& pool, const DpArcId* data,
                             std::uint32_t len) {
  PoolSpan s;
  s.off = static_cast<std::uint32_t>(pool.size());
  s.len = s.cap = len;
  pool.resize(pool.size() + len);
  if (len != 0) std::memcpy(pool.data() + s.off, data, len * sizeof(DpArcId));
  return s;
}

void DataPath::rewrite_in_list(DpNodeId n, const DpArcId* data,
                               std::uint32_t len) {
  in_span_[n] = tail_copy(arc_pool_, data, len);
}

void DataPath::rewrite_out_list(DpNodeId n, const DpArcId* data,
                                std::uint32_t len) {
  out_span_[n] = tail_copy(arc_pool_, data, len);
}

void DataPath::rewrite_steps(DpArcId a, const int* data, std::uint32_t len) {
  PoolSpan s;
  s.off = static_cast<std::uint32_t>(step_pool_.size());
  s.len = s.cap = len;
  step_pool_.resize(step_pool_.size() + len);
  if (len != 0) std::memcpy(step_pool_.data() + s.off, data, len * sizeof(int));
  step_span_[a] = s;
}

void DataPath::insert_step(DpArcId a, int step) {
  PoolSpan& s = step_span_[a];
  int* base = step_pool_.data() + s.off;
  const std::size_t lo = std::lower_bound(base, base + s.len, step) - base;
  if (lo < s.len && base[lo] == step) return;
  if (s.len < s.cap) {
    std::memmove(base + lo + 1, base + lo, (s.len - lo) * sizeof(int));
    base[lo] = step;
    ++s.len;
    return;
  }
  // Relocate to the tail with slack, inserting on the way.
  const std::uint32_t cap = s.cap == 0 ? 2 : s.cap * 2;
  const std::uint32_t off = static_cast<std::uint32_t>(step_pool_.size());
  step_pool_.resize(step_pool_.size() + cap);
  base = step_pool_.data() + s.off;  // resize may have moved the pool
  int* dst = step_pool_.data() + off;
  if (lo != 0) std::memcpy(dst, base, lo * sizeof(int));
  dst[lo] = step;
  if (lo != s.len) {
    std::memcpy(dst + lo + 1, base + lo, (s.len - lo) * sizeof(int));
  }
  s.off = off;
  s.cap = cap;
  ++s.len;
}

DpArcId DataPath::add_transfer(DpNodeId from, DpNodeId to, int to_port,
                               int step) {
  HLTS_REQUIRE(nodes_.contains(from) && nodes_.contains(to),
               "add_transfer: bad node id");
  HLTS_REQUIRE(node_alive_[from] && node_alive_[to],
               "add_transfer: dead node");
  HLTS_REQUIRE(step >= 0, "add_transfer: negative step");
  for (DpArcId a : out_arcs(from)) {
    const DpArc& arc = arcs_[a];
    if (arc.to == to && arc.to_port == to_port) {
      insert_step(a, step);
      return a;
    }
  }
  DpArc arc;
  arc.from = from;
  arc.to = to;
  arc.to_port = to_port;
  arc_alive_.push_back(true);
  ++alive_arcs_;
  DpArcId id = arcs_.push_back(arc);
  step_span_.push_back(PoolSpan{});
  insert_step(id, step);
  list_append(out_span_[from], id);
  list_append(in_span_[to], id);
  return id;
}

void DataPath::compact_pools() {
  std::vector<DpArcId> arcs;
  arcs.reserve(arc_pool_.size());
  for (DpNodeId n : node_ids()) {
    PoolSpan s = in_span_[n];
    const std::uint32_t off = static_cast<std::uint32_t>(arcs.size());
    arcs.insert(arcs.end(), arc_pool_.begin() + s.off,
                arc_pool_.begin() + s.off + s.len);
    in_span_[n] = PoolSpan{off, s.len, s.len};
    s = out_span_[n];
    const std::uint32_t off2 = static_cast<std::uint32_t>(arcs.size());
    arcs.insert(arcs.end(), arc_pool_.begin() + s.off,
                arc_pool_.begin() + s.off + s.len);
    out_span_[n] = PoolSpan{off2, s.len, s.len};
  }
  arc_pool_ = std::move(arcs);

  std::vector<int> steps;
  steps.reserve(step_pool_.size());
  for (DpArcId a : arc_ids()) {
    const PoolSpan s = step_span_[a];
    const std::uint32_t off = static_cast<std::uint32_t>(steps.size());
    steps.insert(steps.end(), step_pool_.begin() + s.off,
                 step_pool_.begin() + s.off + s.len);
    step_span_[a] = PoolSpan{off, s.len, s.len};
  }
  step_pool_ = std::move(steps);
}

std::size_t DataPath::pool_slack_bytes() const {
  std::size_t live = 0;
  for (DpNodeId n : node_ids()) live += in_span_[n].len + out_span_[n].len;
  std::size_t bytes = (arc_pool_.size() - live) * sizeof(DpArcId);
  live = 0;
  for (DpArcId a : arc_ids()) live += step_span_[a].len;
  bytes += (step_pool_.size() - live) * sizeof(int);
  return bytes;
}

std::vector<DpNodeId> DataPath::port_sources(DpNodeId n, int port) const {
  std::vector<DpNodeId> out;
  for (DpArcId a : in_arcs(n)) {
    const DpArc& arc = arcs_[a];
    if (arc.to_port != port) continue;
    if (std::find(out.begin(), out.end(), arc.from) == out.end()) {
      out.push_back(arc.from);
    }
  }
  return out;
}

int DataPath::num_port_sources(DpNodeId n, int port) const {
  // Quadratic in the port's in-degree, which is tiny (a handful of distinct
  // sources per multiplexer); avoids the per-call vector of port_sources().
  const util::Span<DpArcId> in = in_arcs(n);
  int distinct = 0;
  for (std::size_t i = 0; i < in.size(); ++i) {
    const DpArc& arc = arcs_[in[i]];
    if (arc.to_port != port) continue;
    bool seen = false;
    for (std::size_t j = 0; j < i; ++j) {
      const DpArc& prev = arcs_[in[j]];
      if (prev.to_port == port && prev.from == arc.from) {
        seen = true;
        break;
      }
    }
    if (!seen) ++distinct;
  }
  return distinct;
}

int DataPath::num_ports(DpNodeId n) const {
  const DpNode& node = nodes_[n];
  if (node.kind == DpNodeKind::Module) {
    return dfg::op_arity(node.op_class);
  }
  return 1;
}

int DataPath::mux_count() const {
  int muxes = 0;
  for (DpNodeId n : node_ids()) {
    if (!node_alive_[n]) continue;
    for (int port = 0; port < num_ports(n); ++port) {
      if (num_port_sources(n, port) >= 2) ++muxes;
    }
  }
  return muxes;
}

int DataPath::self_loop_count() const {
  int loops = 0;
  for (DpNodeId n : node_ids()) {
    if (!node_alive_[n] || nodes_[n].kind != DpNodeKind::Register) continue;
    // Register -> module -> same register, or register -> itself.
    for (DpArcId a : out_arcs(n)) {
      const DpArc& arc = arcs_[a];
      if (arc.to == n) {
        ++loops;
        break;
      }
      if (nodes_[arc.to].kind != DpNodeKind::Module) continue;
      bool closes = false;
      for (DpArcId b : out_arcs(arc.to)) {
        if (arcs_[b].to == n) {
          closes = true;
          break;
        }
      }
      if (closes) {
        ++loops;
        break;
      }
    }
  }
  return loops;
}

DataPath::SeqDepthStats DataPath::sequential_depth() const {
  const RegisterDistances dist = register_distances();
  SeqDepthStats stats;
  for (DpNodeId n : node_ids()) {
    if (!node_alive_[n] || nodes_[n].kind != DpNodeKind::Register) continue;
    const int in = dist.d_in[n.index()];
    const int out = dist.d_out[n.index()];
    if (in < 0 || out < 0) {
      ++stats.unreachable;
      continue;
    }
    stats.max_depth = std::max(stats.max_depth, in + out);
    stats.total_depth += in + out;
  }
  return stats;
}

DataPath::RegisterDistances DataPath::register_distances() const {
  // Register hop graph: r1 -> r2 when r1 reaches r2 through at most one
  // module (one clocked stage).
  std::vector<std::vector<std::uint32_t>> fwd(nodes_.size());
  std::vector<std::vector<std::uint32_t>> bwd(nodes_.size());
  std::vector<std::uint32_t> regs;
  std::vector<int> d_in(nodes_.size(), -1);
  std::vector<int> d_out(nodes_.size(), -1);

  auto reg_targets_of = [&](DpNodeId n, auto&& self, bool through_module,
                            std::vector<std::uint32_t>& out) -> void {
    for (DpArcId a : out_arcs(n)) {
      const DpNode& to = nodes_[arcs_[a].to];
      if (to.kind == DpNodeKind::Register) {
        out.push_back(arcs_[a].to.value());
      } else if (to.kind == DpNodeKind::Module && !through_module) {
        self(arcs_[a].to, self, true, out);
      }
    }
  };

  for (DpNodeId n : node_ids()) {
    if (!node_alive_[n] || nodes_[n].kind != DpNodeKind::Register) continue;
    regs.push_back(n.value());
    std::vector<std::uint32_t> targets;
    reg_targets_of(n, reg_targets_of, false, targets);
    for (std::uint32_t t : targets) {
      fwd[n.index()].push_back(t);
      bwd[t].push_back(n.value());
    }
    // Controllable seed: loaded directly from an input port.
    for (DpArcId a : in_arcs(n)) {
      if (nodes_[arcs_[a].from].kind == DpNodeKind::InPort) d_in[n.index()] = 0;
    }
    // Observable seed: feeds an output port directly or through one module.
    for (DpArcId a : out_arcs(n)) {
      const DpNode& to = nodes_[arcs_[a].to];
      if (to.kind == DpNodeKind::OutPort) d_out[n.index()] = 0;
      if (to.kind == DpNodeKind::Module) {
        for (DpArcId b : out_arcs(arcs_[a].to)) {
          if (nodes_[arcs_[b].to].kind == DpNodeKind::OutPort) {
            d_out[n.index()] = 0;
          }
        }
      }
    }
  }

  auto bfs = [&](std::vector<int>& dist, const std::vector<std::vector<std::uint32_t>>& adj) {
    std::deque<std::uint32_t> q;
    for (std::uint32_t r : regs) {
      if (dist[r] == 0) q.push_back(r);
    }
    while (!q.empty()) {
      std::uint32_t u = q.front();
      q.pop_front();
      for (std::uint32_t v : adj[u]) {
        if (dist[v] < 0) {
          dist[v] = dist[u] + 1;
          q.push_back(v);
        }
      }
    }
  };
  bfs(d_in, fwd);
  bfs(d_out, bwd);

  RegisterDistances dist;
  dist.d_in = std::move(d_in);
  dist.d_out = std::move(d_out);
  return dist;
}

std::string DataPath::to_dot() const {
  std::ostringstream os;
  os << "digraph datapath {\n  rankdir=TB;\n";
  for (DpNodeId n : node_ids()) {
    if (!node_alive_[n]) continue;
    const DpNode& node = nodes_[n];
    const char* shape = "box";
    switch (node.kind) {
      case DpNodeKind::InPort: shape = "invtriangle"; break;
      case DpNodeKind::OutPort: shape = "triangle"; break;
      case DpNodeKind::Register: shape = "box"; break;
      case DpNodeKind::Module: shape = "oval"; break;
    }
    os << "  n" << n.value() << " [label=\"" << node.name << "\" shape=" << shape
       << "];\n";
  }
  for (DpArcId a : arc_ids()) {
    if (!arc_alive_[a]) continue;
    const DpArc& arc = arcs_[a];
    os << "  n" << arc.from.value() << " -> n" << arc.to.value() << " [label=\"";
    const util::Span<int> st = steps(a);
    for (std::size_t i = 0; i < st.size(); ++i) {
      if (i) os << ",";
      os << "S" << st[i];
    }
    os << "\"];\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace hlts::etpn
