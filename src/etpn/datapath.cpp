#include "etpn/datapath.hpp"

#include <algorithm>
#include <deque>
#include <sstream>

#include "util/error.hpp"

namespace hlts::etpn {

DpNodeId DataPath::add_node(DpNode node) {
  node_alive_.push_back(true);
  ++alive_nodes_;
  return nodes_.push_back(std::move(node));
}

void DataPath::set_alive(DpNodeId n, bool alive) {
  if (node_alive_[n] == alive) return;
  node_alive_[n] = alive;
  alive ? ++alive_nodes_ : --alive_nodes_;
}

void DataPath::set_alive(DpArcId a, bool alive) {
  if (arc_alive_[a] == alive) return;
  arc_alive_[a] = alive;
  alive ? ++alive_arcs_ : --alive_arcs_;
}

DpArcId DataPath::add_transfer(DpNodeId from, DpNodeId to, int to_port, int step) {
  HLTS_REQUIRE(nodes_.contains(from) && nodes_.contains(to),
               "add_transfer: bad node id");
  HLTS_REQUIRE(node_alive_[from] && node_alive_[to],
               "add_transfer: dead node");
  HLTS_REQUIRE(step >= 0, "add_transfer: negative step");
  for (DpArcId a : nodes_[from].out_arcs) {
    DpArc& arc = arcs_[a];
    if (arc.to == to && arc.to_port == to_port) {
      if (!std::binary_search(arc.steps.begin(), arc.steps.end(), step)) {
        arc.steps.insert(
            std::upper_bound(arc.steps.begin(), arc.steps.end(), step), step);
      }
      return a;
    }
  }
  DpArc arc;
  arc.from = from;
  arc.to = to;
  arc.to_port = to_port;
  arc.steps = {step};
  arc_alive_.push_back(true);
  ++alive_arcs_;
  DpArcId id = arcs_.push_back(std::move(arc));
  nodes_[from].out_arcs.push_back(id);
  nodes_[to].in_arcs.push_back(id);
  return id;
}

std::vector<DpNodeId> DataPath::port_sources(DpNodeId n, int port) const {
  std::vector<DpNodeId> out;
  for (DpArcId a : nodes_[n].in_arcs) {
    const DpArc& arc = arcs_[a];
    if (arc.to_port != port) continue;
    if (std::find(out.begin(), out.end(), arc.from) == out.end()) {
      out.push_back(arc.from);
    }
  }
  return out;
}

int DataPath::num_ports(DpNodeId n) const {
  const DpNode& node = nodes_[n];
  if (node.kind == DpNodeKind::Module) {
    return dfg::op_arity(node.op_class);
  }
  return 1;
}

int DataPath::mux_count() const {
  int muxes = 0;
  for (DpNodeId n : node_ids()) {
    if (!node_alive_[n]) continue;
    for (int port = 0; port < num_ports(n); ++port) {
      if (port_sources(n, port).size() >= 2) ++muxes;
    }
  }
  return muxes;
}

int DataPath::self_loop_count() const {
  int loops = 0;
  for (DpNodeId n : node_ids()) {
    if (!node_alive_[n] || nodes_[n].kind != DpNodeKind::Register) continue;
    // Register -> module -> same register, or register -> itself.
    for (DpArcId a : nodes_[n].out_arcs) {
      const DpArc& arc = arcs_[a];
      if (arc.to == n) {
        ++loops;
        break;
      }
      if (nodes_[arc.to].kind != DpNodeKind::Module) continue;
      bool closes = false;
      for (DpArcId b : nodes_[arc.to].out_arcs) {
        if (arcs_[b].to == n) {
          closes = true;
          break;
        }
      }
      if (closes) {
        ++loops;
        break;
      }
    }
  }
  return loops;
}

DataPath::SeqDepthStats DataPath::sequential_depth() const {
  const RegisterDistances dist = register_distances();
  SeqDepthStats stats;
  for (DpNodeId n : node_ids()) {
    if (!node_alive_[n] || nodes_[n].kind != DpNodeKind::Register) continue;
    const int in = dist.d_in[n.index()];
    const int out = dist.d_out[n.index()];
    if (in < 0 || out < 0) {
      ++stats.unreachable;
      continue;
    }
    stats.max_depth = std::max(stats.max_depth, in + out);
    stats.total_depth += in + out;
  }
  return stats;
}

DataPath::RegisterDistances DataPath::register_distances() const {
  // Register hop graph: r1 -> r2 when r1 reaches r2 through at most one
  // module (one clocked stage).
  std::vector<std::vector<std::uint32_t>> fwd(nodes_.size());
  std::vector<std::vector<std::uint32_t>> bwd(nodes_.size());
  std::vector<std::uint32_t> regs;
  std::vector<int> d_in(nodes_.size(), -1);
  std::vector<int> d_out(nodes_.size(), -1);

  auto reg_targets_of = [&](DpNodeId n, auto&& self, bool through_module,
                            std::vector<std::uint32_t>& out) -> void {
    for (DpArcId a : nodes_[n].out_arcs) {
      const DpNode& to = nodes_[arcs_[a].to];
      if (to.kind == DpNodeKind::Register) {
        out.push_back(arcs_[a].to.value());
      } else if (to.kind == DpNodeKind::Module && !through_module) {
        self(arcs_[a].to, self, true, out);
      }
    }
  };

  for (DpNodeId n : node_ids()) {
    if (!node_alive_[n] || nodes_[n].kind != DpNodeKind::Register) continue;
    regs.push_back(n.value());
    std::vector<std::uint32_t> targets;
    reg_targets_of(n, reg_targets_of, false, targets);
    for (std::uint32_t t : targets) {
      fwd[n.index()].push_back(t);
      bwd[t].push_back(n.value());
    }
    // Controllable seed: loaded directly from an input port.
    for (DpArcId a : nodes_[n].in_arcs) {
      if (nodes_[arcs_[a].from].kind == DpNodeKind::InPort) d_in[n.index()] = 0;
    }
    // Observable seed: feeds an output port directly or through one module.
    for (DpArcId a : nodes_[n].out_arcs) {
      const DpNode& to = nodes_[arcs_[a].to];
      if (to.kind == DpNodeKind::OutPort) d_out[n.index()] = 0;
      if (to.kind == DpNodeKind::Module) {
        for (DpArcId b : nodes_[arcs_[a].to].out_arcs) {
          if (nodes_[arcs_[b].to].kind == DpNodeKind::OutPort) {
            d_out[n.index()] = 0;
          }
        }
      }
    }
  }

  auto bfs = [&](std::vector<int>& dist, const std::vector<std::vector<std::uint32_t>>& adj) {
    std::deque<std::uint32_t> q;
    for (std::uint32_t r : regs) {
      if (dist[r] == 0) q.push_back(r);
    }
    while (!q.empty()) {
      std::uint32_t u = q.front();
      q.pop_front();
      for (std::uint32_t v : adj[u]) {
        if (dist[v] < 0) {
          dist[v] = dist[u] + 1;
          q.push_back(v);
        }
      }
    }
  };
  bfs(d_in, fwd);
  bfs(d_out, bwd);

  RegisterDistances dist;
  dist.d_in = std::move(d_in);
  dist.d_out = std::move(d_out);
  return dist;
}

std::string DataPath::to_dot() const {
  std::ostringstream os;
  os << "digraph datapath {\n  rankdir=TB;\n";
  for (DpNodeId n : node_ids()) {
    if (!node_alive_[n]) continue;
    const DpNode& node = nodes_[n];
    const char* shape = "box";
    switch (node.kind) {
      case DpNodeKind::InPort: shape = "invtriangle"; break;
      case DpNodeKind::OutPort: shape = "triangle"; break;
      case DpNodeKind::Register: shape = "box"; break;
      case DpNodeKind::Module: shape = "oval"; break;
    }
    os << "  n" << n.value() << " [label=\"" << node.name << "\" shape=" << shape
       << "];\n";
  }
  for (DpArcId a : arc_ids()) {
    if (!arc_alive_[a]) continue;
    const DpArc& arc = arcs_[a];
    os << "  n" << arc.from.value() << " -> n" << arc.to.value() << " [label=\"";
    for (std::size_t i = 0; i < arc.steps.size(); ++i) {
      if (i) os << ",";
      os << "S" << arc.steps[i];
    }
    os << "\"];\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace hlts::etpn
