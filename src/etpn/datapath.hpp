// ETPN data path: a directed graph whose nodes represent storage
// (registers), manipulation of data (functional modules) and the interface
// (input/output ports), and whose arcs represent guarded data transfers.
//
// Each arc records the control steps in which its transfer is active -- the
// link between the data path and the control Petri net ("control states in
// the control part controlling the data transfers in the data path").
#pragma once

#include <string>
#include <vector>

#include "dfg/dfg.hpp"
#include "etpn/binding.hpp"
#include "util/ids.hpp"

namespace hlts::etpn {

struct DpNodeTag {};
struct DpArcTag {};
using DpNodeId = Id<DpNodeTag>;
using DpArcId = Id<DpArcTag>;

enum class DpNodeKind {
  InPort,    ///< primary data input
  OutPort,   ///< primary data output (incl. condition signals to the controller)
  Register,  ///< storage node
  Module,    ///< functional module (ALU / multiplier / ...)
};

struct DpNode {
  DpNodeKind kind = DpNodeKind::Register;
  std::string name;
  /// Valid when kind == Module.
  ModuleId module;
  /// Valid when kind == Register.
  RegId reg;
  /// Valid when kind == InPort/OutPort: the variable carried.
  dfg::VarId port_var;
  /// Valid when kind == Module: the operation class implemented.
  dfg::OpKind op_class = dfg::OpKind::Add;
  std::vector<DpArcId> in_arcs;
  std::vector<DpArcId> out_arcs;
};

struct DpArc {
  DpNodeId from;
  DpNodeId to;
  /// Input port index at the destination (0/1 for module operand ports; 0
  /// for registers and out-ports).
  int to_port = 0;
  /// Control steps in which this transfer is active (sorted, unique).
  /// Step 0 is the primary-input load step.
  std::vector<int> steps;
};

class DataPath {
 public:
  DpNodeId add_node(DpNode node);
  /// Adds an arc, or extends the step set of an existing identical arc.
  DpArcId add_transfer(DpNodeId from, DpNodeId to, int to_port, int step);

  [[nodiscard]] std::size_t num_nodes() const { return nodes_.size(); }
  [[nodiscard]] std::size_t num_arcs() const { return arcs_.size(); }

  /// --- aliveness -----------------------------------------------------------
  // In-place transformation passes (etpn/patch) retire merged-away nodes and
  // deduplicated arcs as *tombstones* instead of erasing them, so ids held by
  // analysis tables (testability CC/CO vectors, Etpn node maps) stay stable
  // across a synthesis run.  Dead arcs are removed from their endpoints' arc
  // lists; dead nodes keep empty lists.  Every structural query and every
  // consumer pass skips tombstones, which keeps all derived quantities equal
  // to those of a freshly built compact graph.
  [[nodiscard]] bool alive(DpNodeId n) const { return node_alive_[n]; }
  [[nodiscard]] bool alive(DpArcId a) const { return arc_alive_[a]; }
  [[nodiscard]] std::size_t num_alive_nodes() const { return alive_nodes_; }
  [[nodiscard]] std::size_t num_alive_arcs() const { return alive_arcs_; }
  [[nodiscard]] const DpNode& node(DpNodeId n) const { return nodes_[n]; }
  [[nodiscard]] const DpArc& arc(DpArcId a) const { return arcs_[a]; }
  /// Mutable node/arc access for transformation passes and corruption tests.
  /// Editing arc lists can break the back-link invariant; the
  /// core/validate auditor exists to catch exactly that.
  [[nodiscard]] DpNode& node(DpNodeId n) { return nodes_[n]; }
  [[nodiscard]] DpArc& arc(DpArcId a) { return arcs_[a]; }
  /// Flips an aliveness flag, maintaining the alive counts.  List surgery
  /// (detaching a dead arc from its endpoints) is the caller's job; see
  /// etpn/patch for the invariant-preserving merge patcher.
  void set_alive(DpNodeId n, bool alive);
  void set_alive(DpArcId a, bool alive);
  [[nodiscard]] IdRange<DpNodeId> node_ids() const {
    return id_range<DpNodeId>(nodes_.size());
  }
  [[nodiscard]] IdRange<DpArcId> arc_ids() const {
    return id_range<DpArcId>(arcs_.size());
  }

  /// Distinct sources feeding input port `port` of `n`.
  [[nodiscard]] std::vector<DpNodeId> port_sources(DpNodeId n, int port) const;
  /// Number of input ports of `n` (2 for two-operand modules, else 1).
  [[nodiscard]] int num_ports(DpNodeId n) const;

  /// Number of multiplexers: input ports fed by two or more distinct
  /// sources (each such port needs one multiplexer in front of it).
  [[nodiscard]] int mux_count() const;

  /// Number of self-loops: registers that feed a module which feeds the
  /// same register back.  Self-loops are the structures BIST-oriented work
  /// (Papachristou, Mujumdar) tries hardest to avoid.
  [[nodiscard]] int self_loop_count() const;

  /// Structural sequential depth: for each register, the number of
  /// register-to-register stages on the shortest path from a primary-input-
  /// loaded register to it plus from it to a primary-output-observed
  /// register; returns {max, sum} over registers.  This is the quantity
  /// rule SR1 ("reduce the sequential depth from a controllable register to
  /// an observable register") minimizes.
  struct SeqDepthStats {
    int max_depth = 0;
    int total_depth = 0;
    int unreachable = 0;  ///< registers with no PI->reg->PO path at all
  };
  [[nodiscard]] SeqDepthStats sequential_depth() const;

  /// Per-node register distances: d_in = register hops from the nearest
  /// primary-input-loaded register (0 = loaded from a port), d_out =
  /// register hops to the nearest observation point.  -1 where unreachable
  /// or not a register.  sequential_depth() is a summary of these.
  struct RegisterDistances {
    std::vector<int> d_in;
    std::vector<int> d_out;
  };
  [[nodiscard]] RegisterDistances register_distances() const;

  [[nodiscard]] std::string to_dot() const;

 private:
  IndexVec<DpNodeId, DpNode> nodes_;
  IndexVec<DpArcId, DpArc> arcs_;
  IndexVec<DpNodeId, bool> node_alive_;
  IndexVec<DpArcId, bool> arc_alive_;
  std::size_t alive_nodes_ = 0;
  std::size_t alive_arcs_ = 0;
};

}  // namespace hlts::etpn
