// ETPN data path: a directed graph whose nodes represent storage
// (registers), manipulation of data (functional modules) and the interface
// (input/output ports), and whose arcs represent guarded data transfers.
//
// Each arc records the control steps in which its transfer is active -- the
// link between the data path and the control Petri net ("control states in
// the control part controlling the data transfers in the data path").
//
// Storage layout (structure-of-arrays): adjacency lists and step sets are
// *spans into two shared pools* (arc_pool_ / step_pool_) instead of one
// heap vector per node/arc.  Copying a DataPath is a handful of flat
// memcpy-able vectors (the per-trial workspace refresh), and the merge
// patcher rewrites lists by appending fresh spans at the pool tail and
// truncating back on revert -- the pool tail acts as the trial arena, so a
// steady-state apply/revert cycle performs zero heap allocations.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dfg/dfg.hpp"
#include "etpn/binding.hpp"
#include "util/ids.hpp"
#include "util/span.hpp"

namespace hlts::etpn {

struct DpNodeTag {};
struct DpArcTag {};
using DpNodeId = Id<DpNodeTag>;
using DpArcId = Id<DpArcTag>;

enum class DpNodeKind {
  InPort,    ///< primary data input
  OutPort,   ///< primary data output (incl. condition signals to the controller)
  Register,  ///< storage node
  Module,    ///< functional module (ALU / multiplier / ...)
};

struct DpNode {
  DpNodeKind kind = DpNodeKind::Register;
  std::string name;
  /// Valid when kind == Module.
  ModuleId module;
  /// Valid when kind == Register.
  RegId reg;
  /// Valid when kind == InPort/OutPort: the variable carried.
  dfg::VarId port_var;
  /// Valid when kind == Module: the operation class implemented.
  dfg::OpKind op_class = dfg::OpKind::Add;
};

struct DpArc {
  DpNodeId from;
  DpNodeId to;
  /// Input port index at the destination (0/1 for module operand ports; 0
  /// for registers and out-ports).
  int to_port = 0;
};

/// A [off, off+len) window (with slack up to cap) into one of the shared
/// pools.  POD on purpose: the merge patcher saves and restores these by
/// value as its undo log.
struct PoolSpan {
  std::uint32_t off = 0;
  std::uint32_t len = 0;
  std::uint32_t cap = 0;

  friend bool operator==(const PoolSpan&, const PoolSpan&) = default;
};

class DataPath {
 public:
  DpNodeId add_node(DpNode node);
  /// Adds an arc, or extends the step set of an existing identical arc.
  DpArcId add_transfer(DpNodeId from, DpNodeId to, int to_port, int step);

  [[nodiscard]] std::size_t num_nodes() const { return nodes_.size(); }
  [[nodiscard]] std::size_t num_arcs() const { return arcs_.size(); }

  /// --- aliveness -----------------------------------------------------------
  // In-place transformation passes (etpn/patch) retire merged-away nodes and
  // deduplicated arcs as *tombstones* instead of erasing them, so ids held by
  // analysis tables (testability CC/CO vectors, Etpn node maps) stay stable
  // across a synthesis run.  Dead arcs are removed from their endpoints' arc
  // lists; dead nodes keep empty lists.  Every structural query and every
  // consumer pass skips tombstones, which keeps all derived quantities equal
  // to those of a freshly built compact graph.
  [[nodiscard]] bool alive(DpNodeId n) const { return node_alive_[n]; }
  [[nodiscard]] bool alive(DpArcId a) const { return arc_alive_[a]; }
  [[nodiscard]] std::size_t num_alive_nodes() const { return alive_nodes_; }
  [[nodiscard]] std::size_t num_alive_arcs() const { return alive_arcs_; }
  [[nodiscard]] const DpNode& node(DpNodeId n) const { return nodes_[n]; }
  [[nodiscard]] const DpArc& arc(DpArcId a) const { return arcs_[a]; }
  /// Mutable node/arc access for transformation passes and corruption tests.
  [[nodiscard]] DpNode& node(DpNodeId n) { return nodes_[n]; }
  [[nodiscard]] DpArc& arc(DpArcId a) { return arcs_[a]; }

  /// --- adjacency and step sets (span views into the pools) -----------------
  // Views are valid until the next structural mutation of the graph (a pool
  // relocation moves data); take them fresh per use, never store them.
  [[nodiscard]] util::Span<DpArcId> in_arcs(DpNodeId n) const {
    return view(arc_pool_, in_span_[n]);
  }
  [[nodiscard]] util::Span<DpArcId> out_arcs(DpNodeId n) const {
    return view(arc_pool_, out_span_[n]);
  }
  [[nodiscard]] std::size_t in_degree(DpNodeId n) const {
    return in_span_[n].len;
  }
  [[nodiscard]] std::size_t out_degree(DpNodeId n) const {
    return out_span_[n].len;
  }
  /// Control steps in which this arc's transfer is active (sorted, unique).
  /// Step 0 is the primary-input load step.
  [[nodiscard]] util::Span<int> steps(DpArcId a) const {
    return view(step_pool_, step_span_[a]);
  }

  /// Flips an aliveness flag, maintaining the alive counts.  List surgery
  /// (detaching a dead arc from its endpoints) is the caller's job; see
  /// etpn/patch for the invariant-preserving merge patcher.
  void set_alive(DpNodeId n, bool alive);
  void set_alive(DpArcId a, bool alive);
  [[nodiscard]] IdRange<DpNodeId> node_ids() const {
    return id_range<DpNodeId>(nodes_.size());
  }
  [[nodiscard]] IdRange<DpArcId> arc_ids() const {
    return id_range<DpArcId>(arcs_.size());
  }

  /// --- layout surgery (etpn/patch, corruption tests) -----------------------
  // The patcher's protocol: record the pool marks, save the PoolSpan of
  // every touched node/arc, rewrite lists as fresh spans at the pool tail,
  // and on revert restore the saved spans and truncate the pools back to
  // the marks.  All rewritten data lives above the marks, all saved spans
  // point below them, so the truncation exactly reclaims the patch.
  [[nodiscard]] PoolSpan in_list_span(DpNodeId n) const { return in_span_[n]; }
  [[nodiscard]] PoolSpan out_list_span(DpNodeId n) const {
    return out_span_[n];
  }
  [[nodiscard]] PoolSpan step_list_span(DpArcId a) const {
    return step_span_[a];
  }
  void set_in_list_span(DpNodeId n, PoolSpan s) { in_span_[n] = s; }
  void set_out_list_span(DpNodeId n, PoolSpan s) { out_span_[n] = s; }
  void set_step_list_span(DpArcId a, PoolSpan s) { step_span_[a] = s; }
  [[nodiscard]] std::size_t arc_pool_size() const { return arc_pool_.size(); }
  [[nodiscard]] std::size_t step_pool_size() const { return step_pool_.size(); }
  void truncate_arc_pool(std::size_t mark) { arc_pool_.resize(mark); }
  void truncate_step_pool(std::size_t mark) { step_pool_.resize(mark); }
  /// Retargets `n`'s in/out list to a fresh tight span at the pool tail
  /// holding `data[0..len)`.
  void rewrite_in_list(DpNodeId n, const DpArcId* data, std::uint32_t len);
  void rewrite_out_list(DpNodeId n, const DpArcId* data, std::uint32_t len);
  /// Retargets `a`'s step set to a fresh tight span at the pool tail.
  void rewrite_steps(DpArcId a, const int* data, std::uint32_t len);
  /// Inserts `step` into `a`'s sorted step set (no-op when present),
  /// growing in place when slack allows, else relocating to the tail.
  void insert_step(DpArcId a, int step);
  /// Empties `a`'s step set, keeping its pool window as slack for
  /// insert_step (refresh_etpn_steps re-stamps every alive arc in place).
  void clear_steps(DpArcId a) { step_span_[a].len = 0; }

  /// Squeezes relocation slack out of the pools and re-lays lists in id
  /// order (fresh-build layout).  Call after a build or a committed patch;
  /// never with an outstanding un-reverted MergePatch, whose saved spans
  /// would be invalidated.
  void compact_pools();
  /// Bytes wasted by relocation holes, for the compaction heuristic.
  [[nodiscard]] std::size_t pool_slack_bytes() const;

  /// Distinct sources feeding input port `port` of `n`.
  [[nodiscard]] std::vector<DpNodeId> port_sources(DpNodeId n, int port) const;
  /// Number of distinct sources feeding input port `port` of `n`, without
  /// materializing them (allocation-free; in-degrees are small).
  [[nodiscard]] int num_port_sources(DpNodeId n, int port) const;
  /// Number of input ports of `n` (2 for two-operand modules, else 1).
  [[nodiscard]] int num_ports(DpNodeId n) const;

  /// Number of multiplexers: input ports fed by two or more distinct
  /// sources (each such port needs one multiplexer in front of it).
  [[nodiscard]] int mux_count() const;

  /// Number of self-loops: registers that feed a module which feeds the
  /// same register back.  Self-loops are the structures BIST-oriented work
  /// (Papachristou, Mujumdar) tries hardest to avoid.
  [[nodiscard]] int self_loop_count() const;

  /// Structural sequential depth: for each register, the number of
  /// register-to-register stages on the shortest path from a primary-input-
  /// loaded register to it plus from it to a primary-output-observed
  /// register; returns {max, sum} over registers.  This is the quantity
  /// rule SR1 ("reduce the sequential depth from a controllable register to
  /// an observable register") minimizes.
  struct SeqDepthStats {
    int max_depth = 0;
    int total_depth = 0;
    int unreachable = 0;  ///< registers with no PI->reg->PO path at all
  };
  [[nodiscard]] SeqDepthStats sequential_depth() const;

  /// Per-node register distances: d_in = register hops from the nearest
  /// primary-input-loaded register (0 = loaded from a port), d_out =
  /// register hops to the nearest observation point.  -1 where unreachable
  /// or not a register.  sequential_depth() is a summary of these.
  struct RegisterDistances {
    std::vector<int> d_in;
    std::vector<int> d_out;
  };
  [[nodiscard]] RegisterDistances register_distances() const;

  [[nodiscard]] std::string to_dot() const;

 private:
  template <typename T>
  [[nodiscard]] static util::Span<T> view(const std::vector<T>& pool,
                                          PoolSpan s) {
    return util::Span<T>(pool.data() + s.off, s.len);
  }
  void list_append(PoolSpan& s, DpArcId v);
  PoolSpan tail_copy(std::vector<DpArcId>& pool, const DpArcId* data,
                     std::uint32_t len);

  IndexVec<DpNodeId, DpNode> nodes_;
  IndexVec<DpArcId, DpArc> arcs_;
  IndexVec<DpNodeId, bool> node_alive_;
  IndexVec<DpArcId, bool> arc_alive_;
  IndexVec<DpNodeId, PoolSpan> in_span_;
  IndexVec<DpNodeId, PoolSpan> out_span_;
  IndexVec<DpArcId, PoolSpan> step_span_;
  std::vector<DpArcId> arc_pool_;
  std::vector<int> step_pool_;
  std::size_t alive_nodes_ = 0;
  std::size_t alive_arcs_ = 0;
};

}  // namespace hlts::etpn
