#include "etpn/etpn.hpp"

#include <algorithm>

#include "etpn/patch.hpp"
#include "util/error.hpp"

namespace hlts::etpn {

int Etpn::execution_time() const { return petri::critical_path(control).length; }

namespace {

/// Replays the canonical data-transfer emission scan: PI loads (step 0) in
/// variable order, then per operation in op-id order its operand fetches,
/// result store, and output-port connection.  Shared by build_etpn (which
/// materializes arcs) and refresh_etpn_steps (which re-stamps step sets on
/// an already-patched structure), so the two can never drift apart.
template <typename Emit>
void for_each_transfer(const dfg::Dfg& g, const sched::Schedule& s,
                       const Binding& b, const Etpn& e, Emit&& emit) {
  const int length = s.length();
  for (dfg::VarId v : g.var_ids()) {
    if (!g.var(v).is_primary_input) continue;
    emit(e.inport_node[v], e.reg_node[b.reg_of(v)], 0, 0);
  }
  for (dfg::OpId op : g.op_ids()) {
    const dfg::Operation& o = g.op(op);
    const int step = s.step(op);
    DpNodeId mod = e.module_node[b.module_of(op)];
    for (std::size_t i = 0; i < o.inputs.size(); ++i) {
      RegId src = b.reg_of(o.inputs[i]);
      HLTS_REQUIRE(src.valid(), "operand variable is not register-resident");
      emit(e.reg_node[src], mod, static_cast<int>(i), step);
    }
    const dfg::Variable& out = g.var(o.output);
    RegId dst = b.reg_of(o.output);
    if (dst.valid()) {
      emit(mod, e.reg_node[dst], 0, step);
      if (out.is_primary_output) {
        // Registered PO: the held value is presented at the port after the
        // last step.
        emit(e.reg_node[dst], e.outport_node[o.output], 0, length + 1);
      }
    } else {
      HLTS_REQUIRE(out.is_primary_output,
                   "unregistered variable must be a primary output");
      emit(mod, e.outport_node[o.output], 0, step);
    }
  }
}

/// Builds the control part: a chain of control places S0 (load) .. SL, plus
/// optionally a guarded loop back to S1 and a guarded exit to a final place.
void build_control(Etpn& e, const dfg::Dfg& g, int length,
                   const EtpnOptions& options) {
  e.control = petri::PetriNet{};
  e.step_place.assign(length + 1, petri::PlaceId::invalid());
  e.step_place[0] = e.control.add_place("S0", /*delay=*/0, /*marked=*/true);
  for (int step = 1; step <= length; ++step) {
    e.step_place[step] =
        e.control.add_place("S" + std::to_string(step), /*delay=*/1);
  }
  for (int step = 0; step < length; ++step) {
    e.control.add_transition("t" + std::to_string(step) + "_" +
                                 std::to_string(step + 1),
                             {e.step_place[step]}, {e.step_place[step + 1]});
  }

  // Condition output: a port-direct comparison result.
  dfg::VarId cond = dfg::VarId::invalid();
  for (dfg::VarId v : g.var_ids()) {
    const dfg::Variable& var = g.var(v);
    if (var.is_primary_output && !g.needs_register(v) && var.def.valid() &&
        dfg::op_is_comparison(g.op(var.def).kind)) {
      cond = v;
      break;
    }
  }

  if (options.loop_on_condition && cond.valid() && length >= 1) {
    petri::PlaceId done = e.control.add_place("done", /*delay=*/0);
    e.control.add_transition("t_loop", {e.step_place[length]},
                             {e.step_place[1]}, /*guard_group=*/1,
                             /*polarity=*/true);
    e.control.add_transition("t_exit", {e.step_place[length]}, {done},
                             /*guard_group=*/1, /*polarity=*/false);
  }

  e.control.validate();
}

}  // namespace

Etpn build_etpn(const dfg::Dfg& g, const sched::Schedule& s, const Binding& b,
                const EtpnOptions& options) {
  HLTS_REQUIRE(s.num_ops() == g.num_ops(), "schedule does not match DFG");
  b.validate(g);

  Etpn e;
  DataPath& dp = e.data_path;

  // --- data path nodes ------------------------------------------------------
  e.module_node.resize(b.num_module_slots());
  e.reg_node.resize(b.num_reg_slots());
  e.inport_node.resize(g.num_vars());
  e.outport_node.resize(g.num_vars());

  for (RegId r : b.alive_regs()) {
    DpNode node;
    node.kind = DpNodeKind::Register;
    node.name = b.reg_label(g, r);
    node.reg = r;
    e.reg_node[r] = dp.add_node(std::move(node));
  }
  for (ModuleId m : b.alive_modules()) {
    DpNode node;
    node.kind = DpNodeKind::Module;
    node.name = b.module_label(g, m);
    node.module = m;
    node.op_class = b.module_kind(g, m);
    e.module_node[m] = dp.add_node(std::move(node));
  }
  for (dfg::VarId v : g.var_ids()) {
    const dfg::Variable& var = g.var(v);
    if (var.is_primary_input) {
      DpNode node;
      node.kind = DpNodeKind::InPort;
      node.name = "in:" + var.name;
      node.port_var = v;
      e.inport_node[v] = dp.add_node(std::move(node));
    }
    if (var.is_primary_output) {
      DpNode node;
      node.kind = DpNodeKind::OutPort;
      node.name = "out:" + var.name;
      node.port_var = v;
      e.outport_node[v] = dp.add_node(std::move(node));
    }
  }

  // --- data path arcs -------------------------------------------------------
  for_each_transfer(g, s, b, e, [&](DpNodeId from, DpNodeId to, int port, int step) {
    dp.add_transfer(from, to, port, step);
  });
  // Squeeze incremental-growth slack out of the pools so a fresh build's
  // layout is the canonical dense one (spans in id order, cap == len).
  dp.compact_pools();

  // --- control part ---------------------------------------------------------
  build_control(e, g, s.length(), options);
  return e;
}

void refresh_etpn_steps(Etpn& e, const dfg::Dfg& g, const sched::Schedule& s,
                        const Binding& b, const EtpnOptions& options) {
  HLTS_REQUIRE(s.num_ops() == g.num_ops(), "schedule does not match DFG");
  DataPath& dp = e.data_path;
  for (DpArcId a : dp.arc_ids()) {
    if (dp.alive(a)) dp.clear_steps(a);
  }
  for_each_transfer(g, s, b, e, [&](DpNodeId from, DpNodeId to, int port, int step) {
    for (DpArcId a : dp.out_arcs(from)) {
      const DpArc& arc = dp.arc(a);
      if (arc.to == to && arc.to_port == port) {
        dp.insert_step(a, step);
        return;
      }
    }
    HLTS_REQUIRE(false, "refresh_etpn_steps: transfer has no arc");
  });
  // Re-stamping can relocate step spans to the tail; restore the dense
  // canonical layout (this is the commit path, never the trial hot path).
  dp.compact_pools();
  build_control(e, g, s.length(), options);
}

}  // namespace hlts::etpn
