// ETPN: the Extended Timed Petri Net design representation.
//
// Combines the data path graph with the timed Petri net control part; the
// two are related through the control places gating data transfers and the
// condition signals feeding guarded transitions.  In this implementation
// the ETPN is *derived*: the synthesis algorithms maintain (DFG, schedule,
// binding) and materialize the ETPN view whenever testability analysis or
// cost estimation needs it.
#pragma once

#include <vector>

#include "dfg/dfg.hpp"
#include "etpn/binding.hpp"
#include "etpn/datapath.hpp"
#include "petri/petri.hpp"
#include "sched/schedule.hpp"
#include "util/ids.hpp"

namespace hlts::etpn {

struct EtpnOptions {
  /// When true and the DFG produces a comparison condition output, the
  /// control part loops back to the first step under a guarded transition
  /// (modelling e.g. Diffeq's `while (x < a)` iteration) with a guarded
  /// exit to a final place.
  bool loop_on_condition = false;
};

/// The materialized design representation.
struct Etpn {
  DataPath data_path;
  petri::PetriNet control;

  /// Control place of each step (index = step; step 0 is the PI load step).
  std::vector<petri::PlaceId> step_place;

  /// Data path node of each alive module / register / port.
  IndexVec<ModuleId, DpNodeId> module_node;
  IndexVec<RegId, DpNodeId> reg_node;
  IndexVec<dfg::VarId, DpNodeId> inport_node;   // valid for PIs
  IndexVec<dfg::VarId, DpNodeId> outport_node;  // valid for POs

  /// Execution time: the control part's critical path length (equals the
  /// schedule length for chain-structured control).
  [[nodiscard]] int execution_time() const;
};

/// Builds the ETPN for a scheduled, bound design.
///
/// Data path construction: one InPort per primary input (feeding its
/// register in step 0), one node per alive module and register, arcs for
/// every operand fetch (register -> module port, active in the op's step),
/// every result store (module -> register), and the output-port connections
/// (register -> OutPort for registered POs, module -> OutPort for
/// port-direct POs such as condition signals).
[[nodiscard]] Etpn build_etpn(const dfg::Dfg& g, const sched::Schedule& s,
                              const Binding& b, const EtpnOptions& options = {});

}  // namespace hlts::etpn
