#include "etpn/patch.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace hlts::etpn {

namespace {

/// Sorted-unique union of two sorted-unique step sets -- exactly the result
/// a fresh build's repeated add_transfer insertions would accumulate.
/// Writes into an arena-backed buffer (cleared first).
void union_steps(util::Span<int> a, util::Span<int> b,
                 util::PodVec<int>& out) {
  out.clear();
  out.reserve(a.size() + b.size());
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      out.push_back(a[i++]);
    } else if (b[j] < a[i]) {
      out.push_back(b[j++]);
    } else {
      out.push_back(a[i++]);
      ++j;
    }
  }
  while (i < a.size()) out.push_back(a[i++]);
  while (j < b.size()) out.push_back(b[j++]);
}

}  // namespace

std::size_t MergePatch::approx_bytes() const {
  std::size_t bytes = sizeof(MergePatch);
  bytes += saved_arcs.size() * sizeof(ArcState);
  bytes += saved_nodes.size() * sizeof(NodeState);
  // The saved spans pin their pool windows (and the rewritten tail mirrors
  // them), so count the spanned payload too.
  for (const ArcState& st : saved_arcs) bytes += st.steps.len * sizeof(int);
  for (const NodeState& st : saved_nodes) {
    bytes += (st.in.len + st.out.len) * sizeof(DpArcId);
  }
  return bytes;
}

MergePatch apply_merge_patch(DataPath& dp, util::Arena& arena, DpNodeId into,
                             DpNodeId from, const std::string* new_into_name) {
  HLTS_REQUIRE(into != from, "merge patch: self-merge");
  HLTS_REQUIRE(dp.alive(into) && dp.alive(from), "merge patch: dead endpoint");
  HLTS_REQUIRE(dp.node(into).kind == dp.node(from).kind,
               "merge patch: kind mismatch");
  HLTS_REQUIRE(dp.node(into).kind == DpNodeKind::Module ||
                   dp.node(into).kind == DpNodeKind::Register,
               "merge patch: only modules and registers merge");

  MergePatch patch;
  patch.into = into;
  patch.from = from;
  patch.saved_arcs.bind(arena);
  patch.saved_nodes.bind(arena);
  patch.arc_pool_mark = dp.arc_pool_size();
  patch.step_pool_mark = dp.step_pool_size();
  if (new_into_name != nullptr) {
    patch.old_into_name = dp.node(into).name;
    patch.renamed = true;
  }

  // The touched neighbourhood: every arc incident to either endpoint (any of
  // them can be redirected, absorb steps, or be killed by duplicate
  // collapse), and every node incident to one of those arcs (its adjacency
  // list can lose a dead arc).
  util::PodVec<DpArcId> touched_arcs(arena);
  auto collect = [&](DpNodeId n) {
    const util::Span<DpArcId> in = dp.in_arcs(n);
    const util::Span<DpArcId> out = dp.out_arcs(n);
    touched_arcs.append(in.data(), in.size());
    touched_arcs.append(out.data(), out.size());
  };
  collect(into);
  collect(from);
  std::sort(touched_arcs.begin(), touched_arcs.end());
  touched_arcs.resize_down(
      std::unique(touched_arcs.begin(), touched_arcs.end()) -
      touched_arcs.begin());

  util::PodVec<DpNodeId> touched_nodes(arena);
  touched_nodes.push_back(into);
  touched_nodes.push_back(from);
  for (DpArcId a : touched_arcs) {
    touched_nodes.push_back(dp.arc(a).from);
    touched_nodes.push_back(dp.arc(a).to);
  }
  std::sort(touched_nodes.begin(), touched_nodes.end());
  touched_nodes.resize_down(
      std::unique(touched_nodes.begin(), touched_nodes.end()) -
      touched_nodes.begin());

  patch.saved_arcs.reserve(touched_arcs.size());
  for (DpArcId a : touched_arcs) {
    const DpArc& arc = dp.arc(a);
    patch.saved_arcs.push_back(
        {a, arc.from, arc.to, dp.step_list_span(a), dp.alive(a)});
  }
  patch.saved_nodes.reserve(touched_nodes.size());
  for (DpNodeId n : touched_nodes) {
    patch.saved_nodes.push_back({n, dp.in_list_span(n), dp.out_list_span(n)});
  }

  // --- mutate ---------------------------------------------------------------
  // Snapshots above are complete and every mutation below either edits POD
  // fields captured in them or appends above the pool marks, so any failure
  // can roll the graph back to its pre-call state (set_alive is idempotent;
  // revert restores the saved descriptors and truncates the pools), giving
  // the strong exception guarantee.
  try {
    // 1. Redirect every arc of `from` to `into` (field edits; no pool moves).
    for (DpArcId a : dp.in_arcs(from)) dp.arc(a).to = into;
    for (DpArcId a : dp.out_arcs(from)) dp.arc(a).from = into;

    // 2. Splice both endpoints' lists into scratch and restore the
    // ascending-id invariant.  `from` keeps empty lists from here on.
    util::PodVec<DpArcId> merged_in(arena);
    util::PodVec<DpArcId> merged_out(arena);
    auto splice = [](util::PodVec<DpArcId>& dst, util::Span<DpArcId> a,
                     util::Span<DpArcId> b) {
      dst.reserve(a.size() + b.size());
      dst.append(a.data(), a.size());
      dst.append(b.data(), b.size());
      std::sort(dst.begin(), dst.end());
    };
    splice(merged_in, dp.in_arcs(into), dp.in_arcs(from));
    splice(merged_out, dp.out_arcs(into), dp.out_arcs(from));
    dp.set_in_list_span(from, PoolSpan{});
    dp.set_out_list_span(from, PoolSpan{});

    // 3. Collapse duplicates.  Lists are ascending, so the first arc seen
    // for a (peer, port) key is the min-id survivor; a later collision
    // absorbs its steps into the survivor and dies.  (No module-module or
    // register-register arcs exist, so a merger never creates self-arcs, and
    // duplicates only ever pair one redirected arc with one pre-existing
    // arc.)
    util::PodVec<DpArcId> kept(arena);
    util::PodVec<int> union_buf(arena);
    util::PodVec<DpArcId> peer_buf(arena);
    auto dedup = [&](util::PodVec<DpArcId>& list, bool incoming) {
      kept.clear();
      for (std::size_t idx = 0; idx < list.size(); ++idx) {
        const DpArcId a = list[idx];
        const DpArc arc = dp.arc(a);
        const DpNodeId peer = incoming ? arc.from : arc.to;
        DpArcId winner = DpArcId::invalid();
        for (DpArcId k : kept) {
          const DpArc& karc = dp.arc(k);
          if ((incoming ? karc.from : karc.to) == peer &&
              karc.to_port == arc.to_port) {
            winner = k;
            break;
          }
        }
        if (!winner.valid()) {
          kept.push_back(a);
          continue;
        }
        union_steps(dp.steps(winner), dp.steps(a), union_buf);
        dp.rewrite_steps(winner, union_buf.data(),
                         static_cast<std::uint32_t>(union_buf.size()));
        dp.set_alive(a, false);
        // Detach the loser from its *other* endpoint's list; the survivor's
        // own list is rewritten from `kept` after the pass.
        peer_buf.clear();
        const util::Span<DpArcId> plist =
            incoming ? dp.out_arcs(peer) : dp.in_arcs(peer);
        for (DpArcId id : plist) {
          if (id != a) peer_buf.push_back(id);
        }
        HLTS_REQUIRE(peer_buf.size() + 1 == plist.size(),
                     "merge patch: arc missing from endpoint list");
        const std::uint32_t len = static_cast<std::uint32_t>(peer_buf.size());
        if (incoming) {
          dp.rewrite_out_list(peer, peer_buf.data(), len);
        } else {
          dp.rewrite_in_list(peer, peer_buf.data(), len);
        }
        ++patch.arcs_deduped;
      }
    };
    dedup(merged_in, /*incoming=*/true);
    dp.rewrite_in_list(into, kept.data(),
                       static_cast<std::uint32_t>(kept.size()));
    dedup(merged_out, /*incoming=*/false);
    dp.rewrite_out_list(into, kept.data(),
                        static_cast<std::uint32_t>(kept.size()));

    // 4. Retire `from` and take over the merged label.
    dp.set_alive(from, false);
    if (new_into_name != nullptr) dp.node(into).name = *new_into_name;
  } catch (...) {
    revert_merge_patch(dp, patch);
    throw;
  }
  return patch;
}

void revert_merge_patch(DataPath& dp, const MergePatch& patch) {
  if (patch.renamed) dp.node(patch.into).name = patch.old_into_name;
  for (const MergePatch::ArcState& st : patch.saved_arcs) {
    DpArc& arc = dp.arc(st.id);
    arc.from = st.from;
    arc.to = st.to;
    dp.set_step_list_span(st.id, st.steps);
    dp.set_alive(st.id, st.alive);
  }
  for (const MergePatch::NodeState& st : patch.saved_nodes) {
    dp.set_in_list_span(st.id, st.in);
    dp.set_out_list_span(st.id, st.out);
  }
  dp.truncate_arc_pool(patch.arc_pool_mark);
  dp.truncate_step_pool(patch.step_pool_mark);
  dp.set_alive(patch.from, true);
}

}  // namespace hlts::etpn
