#include "etpn/patch.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace hlts::etpn {

namespace {

/// Sorted-unique union of two sorted-unique step sets -- exactly the result
/// a fresh build's repeated add_transfer insertions would accumulate.
std::vector<int> union_steps(const std::vector<int>& a, const std::vector<int>& b) {
  std::vector<int> out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out));
  return out;
}

void erase_arc(std::vector<DpArcId>& list, DpArcId a) {
  auto it = std::find(list.begin(), list.end(), a);
  HLTS_REQUIRE(it != list.end(), "merge patch: arc missing from endpoint list");
  list.erase(it);
}

}  // namespace

std::size_t MergePatch::approx_bytes() const {
  std::size_t bytes = sizeof(MergePatch);
  bytes += saved_arcs.size() * (sizeof(ArcState) + 4 * sizeof(int));
  for (const auto& [node, list] : saved_in_lists) bytes += list.size() * sizeof(DpArcId);
  for (const auto& [node, list] : saved_out_lists) bytes += list.size() * sizeof(DpArcId);
  return bytes;
}

MergePatch apply_merge_patch(DataPath& dp, DpNodeId into, DpNodeId from,
                             const std::string* new_into_name) {
  HLTS_REQUIRE(into != from, "merge patch: self-merge");
  HLTS_REQUIRE(dp.alive(into) && dp.alive(from), "merge patch: dead endpoint");
  HLTS_REQUIRE(dp.node(into).kind == dp.node(from).kind,
               "merge patch: kind mismatch");
  HLTS_REQUIRE(dp.node(into).kind == DpNodeKind::Module ||
                   dp.node(into).kind == DpNodeKind::Register,
               "merge patch: only modules and registers merge");

  MergePatch patch;
  patch.into = into;
  patch.from = from;
  patch.old_into_name = dp.node(into).name;

  // The touched neighbourhood: every arc incident to either endpoint (any of
  // them can be redirected, absorb steps, or be killed by duplicate
  // collapse), and every node incident to one of those arcs (its adjacency
  // list can lose a dead arc).
  std::vector<DpArcId> touched_arcs;
  auto collect = [&](DpNodeId n) {
    const DpNode& node = dp.node(n);
    touched_arcs.insert(touched_arcs.end(), node.in_arcs.begin(), node.in_arcs.end());
    touched_arcs.insert(touched_arcs.end(), node.out_arcs.begin(), node.out_arcs.end());
  };
  collect(into);
  collect(from);
  std::sort(touched_arcs.begin(), touched_arcs.end());
  touched_arcs.erase(std::unique(touched_arcs.begin(), touched_arcs.end()),
                     touched_arcs.end());

  std::vector<DpNodeId> touched_nodes{into, from};
  for (DpArcId a : touched_arcs) {
    touched_nodes.push_back(dp.arc(a).from);
    touched_nodes.push_back(dp.arc(a).to);
  }
  std::sort(touched_nodes.begin(), touched_nodes.end());
  touched_nodes.erase(std::unique(touched_nodes.begin(), touched_nodes.end()),
                      touched_nodes.end());

  patch.saved_arcs.reserve(touched_arcs.size());
  for (DpArcId a : touched_arcs) {
    const DpArc& arc = dp.arc(a);
    patch.saved_arcs.push_back({a, arc.from, arc.to, arc.steps, dp.alive(a)});
  }
  patch.saved_in_lists.reserve(touched_nodes.size());
  patch.saved_out_lists.reserve(touched_nodes.size());
  for (DpNodeId n : touched_nodes) {
    patch.saved_in_lists.emplace_back(n, dp.node(n).in_arcs);
    patch.saved_out_lists.emplace_back(n, dp.node(n).out_arcs);
  }

  // --- mutate ---------------------------------------------------------------
  // Snapshots above are complete, so any failure below can roll the graph
  // back to its pre-call state (set_alive is idempotent; revert restores the
  // saved lists verbatim), giving the strong exception guarantee.
  try {
  // 1. Redirect every arc of `from` to `into`.
  DpNode& from_node = dp.node(from);
  DpNode& into_node = dp.node(into);
  for (DpArcId a : from_node.in_arcs) dp.arc(a).to = into;
  for (DpArcId a : from_node.out_arcs) dp.arc(a).from = into;

  // 2. Splice the lists and restore the ascending-id invariant.
  into_node.in_arcs.insert(into_node.in_arcs.end(), from_node.in_arcs.begin(),
                           from_node.in_arcs.end());
  into_node.out_arcs.insert(into_node.out_arcs.end(), from_node.out_arcs.begin(),
                            from_node.out_arcs.end());
  from_node.in_arcs.clear();
  from_node.out_arcs.clear();
  std::sort(into_node.in_arcs.begin(), into_node.in_arcs.end());
  std::sort(into_node.out_arcs.begin(), into_node.out_arcs.end());

  // 3. Collapse duplicates.  Lists are ascending, so the first arc seen for
  // a (peer, port) key is the min-id survivor; a later collision absorbs its
  // steps into the survivor and dies.  (No module-module or register-
  // register arcs exist, so a merger never creates self-arcs, and duplicates
  // only ever pair one redirected arc with one pre-existing arc.)
  auto dedup = [&](std::vector<DpArcId>& list, bool incoming) {
    std::vector<DpArcId> kept;
    kept.reserve(list.size());
    for (DpArcId a : list) {
      DpArc& arc = dp.arc(a);
      const DpNodeId peer = incoming ? arc.from : arc.to;
      DpArcId winner = DpArcId::invalid();
      for (DpArcId k : kept) {
        const DpArc& karc = dp.arc(k);
        if ((incoming ? karc.from : karc.to) == peer && karc.to_port == arc.to_port) {
          winner = k;
          break;
        }
      }
      if (!winner.valid()) {
        kept.push_back(a);
        continue;
      }
      DpArc& warc = dp.arc(winner);
      warc.steps = union_steps(warc.steps, arc.steps);
      dp.set_alive(a, false);
      // Detach the loser from its *other* endpoint's list; `list` itself is
      // replaced by `kept` below.
      erase_arc(incoming ? dp.node(peer).out_arcs : dp.node(peer).in_arcs, a);
      ++patch.arcs_deduped;
    }
    list = std::move(kept);
  };
  dedup(into_node.in_arcs, /*incoming=*/true);
  dedup(into_node.out_arcs, /*incoming=*/false);

  // 4. Retire `from` and take over the merged label.
  dp.set_alive(from, false);
  if (new_into_name != nullptr) into_node.name = *new_into_name;
  } catch (...) {
    revert_merge_patch(dp, patch);
    throw;
  }
  return patch;
}

void revert_merge_patch(DataPath& dp, const MergePatch& patch) {
  dp.node(patch.into).name = patch.old_into_name;
  for (const MergePatch::ArcState& st : patch.saved_arcs) {
    DpArc& arc = dp.arc(st.id);
    arc.from = st.from;
    arc.to = st.to;
    arc.steps = st.steps;
    dp.set_alive(st.id, st.alive);
  }
  for (const auto& [n, list] : patch.saved_in_lists) dp.node(n).in_arcs = list;
  for (const auto& [n, list] : patch.saved_out_lists) dp.node(n).out_arcs = list;
  dp.set_alive(patch.from, true);
}

}  // namespace hlts::etpn
