// Seeded random-DFG generator for workload synthesis.
//
// The six paper benchmarks (src/benchmarks) top out at 34 operations --
// plenty for correctness but useless for soaking the serving stack, whose
// overload behaviour only shows up when jobs are big enough to queue.  This
// generator manufactures behavioral DFGs of arbitrary size with the same
// structural vocabulary the benchmarks use, shaped by a small set of knobs:
//
//   depth            -- operations are laid out in layers; each layer
//                       consumes values from earlier layers, so depth bounds
//                       the critical path from below (like EWF's long adder
//                       chains vs DCT's shallow butterflies);
//   fanout           -- how far back an operation may reach for operands:
//                       small fanout makes narrow chained graphs, large
//                       fanout makes wide shareable ones;
//   loop_density     -- fraction of operations that are loop-state updates:
//                       a state primary input `sK` whose update writes the
//                       registered primary output `sK_n` (the Diffeq
//                       u/u1-x/x1-y/y1 pattern -- loop-carried values that
//                       must hold a register across the whole schedule);
//   self_loop_density-- of those updates, the fraction reading their own
//                       state variable directly (a structural self-loop
//                       candidate once sK and sK_n share a register);
//   arithmetic mix   -- mul/div/cmp/logic fractions, remainder add/sub
//                       (what the module library can and cannot share);
//   memories / ports -- a memory-node class: every access to memory M port P
//                       threads a port token variable through the access
//                       operation, so accesses on one port serialize into a
//                       dependence chain no scheduler can overlap -- the
//                       DFG-level rendering of a port conflict.
//
// Determinism is the whole point: generate(seed, shape) is a pure function.
// The same (seed, shape) produces a bit-identical DFG -- same names, same
// ids, same edge lists -- on every platform, thread count and SIMD width
// (the generator is single-threaded by construction and draws every random
// choice from one hlts::Rng stream in program order).  tokens() serializes
// a DFG to its canonical JSON form so tests can compare graphs by string
// equality.
#pragma once

#include <cstdint>
#include <string>

#include "dfg/dfg.hpp"

namespace hlts::workload {

/// Shape knobs for one generated DFG.  Defaults make a mid-size mixed
/// kernel (64 ops, 8 layers) with no loops and no memory class.
struct DfgShape {
  int ops = 64;    ///< total operation count (>= 1)
  int depth = 8;   ///< layer count; critical path grows with it (>= 1)
  int fanout = 3;  ///< operand reach in layers (>= 1)
  int inputs = 8;  ///< primary inputs (>= 1)
  double loop_density = 0.0;       ///< ops that are loop-state updates [0,1]
  double self_loop_density = 0.0;  ///< of those, direct self-reads [0,1]
  double mul_fraction = 0.25;      ///< multiplications [0,1]
  double div_fraction = 0.0;       ///< divisions [0,1]
  double cmp_fraction = 0.05;      ///< comparisons (<, >, ==) [0,1]
  double logic_fraction = 0.10;    ///< and/or/xor/not [0,1]
  int memories = 0;      ///< memory nodes (0 = no memory class)
  int memory_ports = 1;  ///< ports per memory; accesses serialize per port
  double memory_access_density = 0.0;  ///< ops that access a memory [0,1]
};

/// Builds a DFG from `seed` and `shape`.  Deterministic (see file comment);
/// the result always passes dfg::Dfg::validate().  The graph is named
/// "gen-<seed>-<ops>".  Throws hlts::Error(Input) for out-of-range knobs.
[[nodiscard]] dfg::Dfg generate(std::uint64_t seed, const DfgShape& shape);

/// Canonical serialization for equality checks: the core checkpoint JSON
/// form, dumped without whitespace.  Two DFGs are structurally identical
/// iff their token strings compare equal.
[[nodiscard]] std::string tokens(const dfg::Dfg& g);

}  // namespace hlts::workload
