// Traffic-pattern schedules for the serving soak grid.
//
// A soak run is a matrix: `conns` client connections (rows) injecting jobs
// over `phases` consecutive time slots (columns).  The pattern names --
// borrowed from the interconnect-traffic literature, where the same four
// shapes stress routers from "perfectly balanced" to "everyone hammers one
// hotspot" -- pick how the per-phase job budget spreads over the
// connections:
//
//   uniform        every connection injects equally in every phase -- the
//                  balanced baseline;
//   diagonal       each phase is owned by the connections on its diagonal;
//                  everyone else is silent, so load sweeps across the
//                  connection set one hotspot at a time;
//   quasi-diagonal the diagonal plus its immediate (cyclic) neighbours at
//                  half weight -- a moving hotspot with shoulders;
//   log-diagonal   weight halves with each step of (cyclic) distance from
//                  the diagonal -- concentrated but never silent, the
//                  heavy-tailed middle ground.
//
// Everything here is a pure function of (pattern, conns, phases): no clock,
// no randomness, no state.  apportion() uses largest-remainder rounding
// with index-ordered tie breaks, so a job budget always splits the same way
// -- the soak grid's BENCH numbers are reproducible run over run.
#pragma once

#include <string>
#include <vector>

namespace hlts::workload {

enum class Pattern { Uniform, Diagonal, QuasiDiagonal, LogDiagonal };

/// "uniform" / "diagonal" / "quasi-diagonal" / "log-diagonal".
[[nodiscard]] const char* pattern_name(Pattern p);

/// Inverse of pattern_name; throws hlts::Error(Input) for unknown tokens.
[[nodiscard]] Pattern pattern_from_token(const std::string& token);

/// All four patterns in grid order.
[[nodiscard]] std::vector<Pattern> all_patterns();

/// Injection weight of connection `conn` during phase `phase` (>= 0; not
/// normalized).  `conns` and `phases` must be >= 1, the indices in range.
[[nodiscard]] double pattern_weight(Pattern p, int conns, int phases,
                                    int conn, int phase);

/// Splits `jobs` across the connections for one phase, proportionally to
/// pattern_weight and summing exactly to `jobs` (largest-remainder method,
/// ties to the lower connection index).  A phase whose weights are all zero
/// (a diagonal nobody sits on) falls back to uniform.
[[nodiscard]] std::vector<int> apportion(Pattern p, int conns, int phases,
                                         int phase, int jobs);

}  // namespace hlts::workload
