#include "workload/traffic.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/error.hpp"

namespace hlts::workload {

const char* pattern_name(Pattern p) {
  switch (p) {
    case Pattern::Uniform: return "uniform";
    case Pattern::Diagonal: return "diagonal";
    case Pattern::QuasiDiagonal: return "quasi-diagonal";
    case Pattern::LogDiagonal: return "log-diagonal";
  }
  return "?";
}

Pattern pattern_from_token(const std::string& token) {
  if (token == "uniform") return Pattern::Uniform;
  if (token == "diagonal") return Pattern::Diagonal;
  if (token == "quasi-diagonal") return Pattern::QuasiDiagonal;
  if (token == "log-diagonal") return Pattern::LogDiagonal;
  throw Error("unknown traffic pattern '" + token +
                  "' (uniform / diagonal / quasi-diagonal / log-diagonal)",
              ErrorKind::Input);
}

std::vector<Pattern> all_patterns() {
  return {Pattern::Uniform, Pattern::Diagonal, Pattern::QuasiDiagonal,
          Pattern::LogDiagonal};
}

namespace {

/// Cyclic distance (in phase slots) between `phase` and the diagonal slot
/// of `conn` -- connections map onto the phase axis proportionally, so the
/// shapes survive conns != phases.
int diagonal_distance(int conns, int phases, int conn, int phase) {
  const int diag = (conn * phases) / conns;
  const int d = std::abs(phase - diag);
  return std::min(d, phases - d);
}

}  // namespace

double pattern_weight(Pattern p, int conns, int phases, int conn, int phase) {
  HLTS_REQUIRE_INPUT(conns >= 1 && phases >= 1, "traffic: empty matrix");
  HLTS_REQUIRE_INPUT(conn >= 0 && conn < conns && phase >= 0 && phase < phases,
                     "traffic: index out of range");
  const int d = diagonal_distance(conns, phases, conn, phase);
  switch (p) {
    case Pattern::Uniform:
      return 1.0;
    case Pattern::Diagonal:
      return d == 0 ? 1.0 : 0.0;
    case Pattern::QuasiDiagonal:
      if (d == 0) return 1.0;
      return d == 1 ? 0.5 : 0.0;
    case Pattern::LogDiagonal:
      return std::ldexp(1.0, -d);  // 2^-d
  }
  return 0.0;
}

std::vector<int> apportion(Pattern p, int conns, int phases, int phase,
                           int jobs) {
  HLTS_REQUIRE_INPUT(jobs >= 0, "traffic: negative job budget");
  std::vector<double> weights(static_cast<std::size_t>(conns));
  for (int c = 0; c < conns; ++c) {
    weights[static_cast<std::size_t>(c)] =
        pattern_weight(p, conns, phases, c, phase);
  }
  double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  if (total <= 0.0) {
    std::fill(weights.begin(), weights.end(), 1.0);
    total = static_cast<double>(conns);
  }

  // Largest-remainder: floor the exact shares, then hand the leftover jobs
  // to the largest fractional parts (ties to the lower index).
  std::vector<int> out(static_cast<std::size_t>(conns), 0);
  std::vector<std::pair<double, int>> remainders;
  remainders.reserve(static_cast<std::size_t>(conns));
  int assigned = 0;
  for (int c = 0; c < conns; ++c) {
    const double share = static_cast<double>(jobs) *
                         weights[static_cast<std::size_t>(c)] / total;
    const int base = static_cast<int>(std::floor(share));
    out[static_cast<std::size_t>(c)] = base;
    assigned += base;
    remainders.emplace_back(share - static_cast<double>(base), c);
  }
  std::sort(remainders.begin(), remainders.end(),
            [](const std::pair<double, int>& a, const std::pair<double, int>& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;
            });
  for (int left = jobs - assigned; left > 0; --left) {
    const int c = remainders[static_cast<std::size_t>(jobs - assigned - left)]
                      .second;
    ++out[static_cast<std::size_t>(c)];
  }
  return out;
}

}  // namespace hlts::workload
