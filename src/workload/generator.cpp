#include "workload/generator.hpp"

#include <cmath>
#include <utility>
#include <vector>

#include "core/checkpoint.hpp"
#include "util/error.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace hlts::workload {

using dfg::Dfg;
using dfg::OpKind;
using dfg::VarId;

namespace {

/// Rounds a density against a population, clamped to it.
int scaled_count(double density, int population) {
  const int n = static_cast<int>(
      std::llround(density * static_cast<double>(population)));
  if (n < 0) return 0;
  return n > population ? population : n;
}

void check_fraction(double f, const char* what) {
  HLTS_REQUIRE_INPUT(f >= 0.0 && f <= 1.0,
                     std::string("workload shape: ") + what +
                         " must be in [0, 1]");
}

}  // namespace

dfg::Dfg generate(std::uint64_t seed, const DfgShape& shape) {
  HLTS_REQUIRE_INPUT(shape.ops >= 1, "workload shape: ops must be >= 1");
  HLTS_REQUIRE_INPUT(shape.depth >= 1, "workload shape: depth must be >= 1");
  HLTS_REQUIRE_INPUT(shape.fanout >= 1, "workload shape: fanout must be >= 1");
  HLTS_REQUIRE_INPUT(shape.inputs >= 1, "workload shape: inputs must be >= 1");
  check_fraction(shape.loop_density, "loop_density");
  check_fraction(shape.self_loop_density, "self_loop_density");
  check_fraction(shape.mul_fraction, "mul_fraction");
  check_fraction(shape.div_fraction, "div_fraction");
  check_fraction(shape.cmp_fraction, "cmp_fraction");
  check_fraction(shape.logic_fraction, "logic_fraction");
  check_fraction(shape.memory_access_density, "memory_access_density");
  HLTS_REQUIRE_INPUT(shape.mul_fraction + shape.div_fraction +
                             shape.cmp_fraction + shape.logic_fraction <=
                         1.0,
                     "workload shape: arithmetic-mix fractions must sum"
                     " to at most 1");
  HLTS_REQUIRE_INPUT(shape.memories >= 0,
                     "workload shape: memories must be >= 0");
  HLTS_REQUIRE_INPUT(shape.memories == 0 || shape.memory_ports >= 1,
                     "workload shape: memory_ports must be >= 1");

  Rng rng(seed);
  Dfg g("gen-" + std::to_string(seed) + "-" + std::to_string(shape.ops));

  // Loop-state updates are carved out of the op budget; the rest is the
  // layered body.
  const int num_states = scaled_count(shape.loop_density, shape.ops);
  const int num_self = scaled_count(shape.self_loop_density, num_states);
  const int body_ops = shape.ops - num_states;

  // Primary inputs first (data, then loop state, then memory-port tokens)
  // so every id is a pure function of the shape.
  std::vector<VarId> data_inputs;
  data_inputs.reserve(static_cast<std::size_t>(shape.inputs));
  for (int i = 0; i < shape.inputs; ++i) {
    data_inputs.push_back(g.add_input("in" + std::to_string(i)));
  }
  std::vector<VarId> state_inputs;
  state_inputs.reserve(static_cast<std::size_t>(num_states));
  for (int k = 0; k < num_states; ++k) {
    state_inputs.push_back(g.add_input("s" + std::to_string(k)));
  }
  // port_token[m][p]: the variable the *next* access to memory m, port p
  // must consume -- initially the memory's port input, afterwards the
  // output of the previous access.  Threading it serializes the port.
  std::vector<std::vector<VarId>> port_token(
      static_cast<std::size_t>(shape.memories));
  for (int m = 0; m < shape.memories; ++m) {
    for (int p = 0; p < shape.memory_ports; ++p) {
      port_token[static_cast<std::size_t>(m)].push_back(g.add_input(
          "m" + std::to_string(m) + "p" + std::to_string(p)));
    }
  }

  // Operand pool: data/state inputs are always eligible; body outputs are
  // eligible for `fanout` layers after their own.
  std::vector<std::vector<VarId>> layer_vars(
      static_cast<std::size_t>(shape.depth));
  std::vector<VarId> pi_pool = data_inputs;
  pi_pool.insert(pi_pool.end(), state_inputs.begin(), state_inputs.end());

  auto pick_operand = [&](int layer) -> VarId {
    const int first = layer - shape.fanout < 0 ? 0 : layer - shape.fanout;
    std::size_t count = pi_pool.size();
    for (int l = first; l < layer; ++l) {
      count += layer_vars[static_cast<std::size_t>(l)].size();
    }
    std::uint64_t idx = rng.next_below(count);
    if (idx < pi_pool.size()) return pi_pool[idx];
    idx -= pi_pool.size();
    for (int l = first; l < layer; ++l) {
      const auto& lv = layer_vars[static_cast<std::size_t>(l)];
      if (idx < lv.size()) return lv[idx];
      idx -= lv.size();
    }
    return pi_pool.back();  // unreachable
  };

  auto pick_kind = [&]() -> OpKind {
    const double r = rng.next_double();
    double edge = shape.mul_fraction;
    if (r < edge) return OpKind::Mul;
    edge += shape.div_fraction;
    if (r < edge) return OpKind::Div;
    edge += shape.cmp_fraction;
    if (r < edge) {
      static constexpr OpKind kCmp[] = {OpKind::Less, OpKind::Greater,
                                        OpKind::Equal};
      return kCmp[rng.next_below(3)];
    }
    edge += shape.logic_fraction;
    if (r < edge) {
      static constexpr OpKind kLogic[] = {OpKind::And, OpKind::Or,
                                          OpKind::Xor, OpKind::Not};
      return kLogic[rng.next_below(4)];
    }
    return rng.next_bool() ? OpKind::Add : OpKind::Sub;
  };

  // The layered body.  Ops spread evenly over the layers (earlier layers
  // absorb the remainder); the first op of every populated layer consumes
  // the previous layer's first-op output (`chain`), so the critical path
  // tracks the number of populated layers.  A random previous-layer var is
  // NOT enough: layers are emission batches, not depth levels, and a random
  // pick usually lands on a shallow var, collapsing the critical path into
  // a random walk.
  int emitted = 0;
  VarId chain{};
  for (int layer = 0; layer < shape.depth; ++layer) {
    int quota = body_ops / shape.depth;
    if (layer < body_ops % shape.depth) ++quota;
    for (int slot = 0; slot < quota; ++slot) {
      OpKind kind = pick_kind();
      std::vector<VarId> ins;
      bool is_access = false;
      int mem = 0;
      int port = 0;
      if (shape.memories > 0 && shape.memory_access_density > 0.0 &&
          rng.next_bool(shape.memory_access_density)) {
        // A memory access consumes the port token, so it needs two
        // operands; unary kinds widen to an add.
        is_access = true;
        if (dfg::op_arity(kind) == 1) kind = OpKind::Add;
        mem = static_cast<int>(rng.next_below(
            static_cast<std::uint64_t>(shape.memories)));
        port = static_cast<int>(rng.next_below(
            static_cast<std::uint64_t>(shape.memory_ports)));
        ins.push_back(port_token[static_cast<std::size_t>(mem)]
                                [static_cast<std::size_t>(port)]);
        if (slot == 0 && chain.valid()) ins.push_back(chain);
      } else if (slot == 0 && chain.valid()) {
        // The depth-chaining edge.
        ins.push_back(chain);
      } else {
        ins.push_back(pick_operand(layer));
      }
      while (static_cast<int>(ins.size()) < dfg::op_arity(kind)) {
        ins.push_back(pick_operand(layer));
      }
      if (dfg::op_arity(kind) == 1) ins.resize(1);
      const std::string idx = std::to_string(emitted);
      g.add_op_new_var("n" + idx, kind, ins, "v" + idx);
      const VarId out = *g.find_var("v" + idx);
      layer_vars[static_cast<std::size_t>(layer)].push_back(out);
      if (is_access) {
        port_token[static_cast<std::size_t>(mem)]
                  [static_cast<std::size_t>(port)] = out;
      }
      if (slot == 0) chain = out;
      ++emitted;
    }
  }

  // Loop-state updates: sK -> sK_n, registered primary outputs (the
  // Diffeq u/u1 pattern).  The first `num_self` read their own state
  // directly; the rest read a body value, so the loop threads through the
  // graph before closing.
  for (int k = 0; k < num_states; ++k) {
    const OpKind kind = rng.next_bool() ? OpKind::Add : OpKind::Sub;
    std::vector<VarId> ins;
    if (k < num_self || body_ops == 0) {
      ins.push_back(state_inputs[static_cast<std::size_t>(k)]);
    } else {
      ins.push_back(pick_operand(shape.depth));
    }
    ins.push_back(pick_operand(shape.depth));
    const std::string name = "s" + std::to_string(k) + "_n";
    g.add_op_new_var("u" + std::to_string(k), kind, ins, name);
    g.mark_output(*g.find_var(name), /*registered=*/true);
  }

  // Every dangling value streams to an output port (unregistered), so the
  // graph computes everything it builds.
  for (const VarId v : g.var_ids()) {
    const dfg::Variable& var = g.var(v);
    if (!var.is_primary_input && !var.is_primary_output && var.uses.empty() &&
        var.def.valid()) {
      g.mark_output(v, /*registered=*/false);
    }
  }

  g.validate();
  return g;
}

std::string tokens(const dfg::Dfg& g) {
  return util::json_dump(core::dfg_to_json(g));
}

}  // namespace hlts::workload
