#include "frontend/parser.hpp"

#include <map>
#include <optional>

#include "frontend/lexer.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"
#include "util/trace.hpp"

namespace hlts::frontend {

namespace {

/// Compiler temporaries use a '$' prefix, which the lexer cannot produce,
/// so they can never collide with user names.
bool is_temp(const std::string& name) { return !name.empty() && name[0] == '$'; }

class Parser {
 public:
  explicit Parser(const std::string& source) : tokens_(tokenize(source)) {}

  dfg::Dfg run() {
    expect(TokenKind::KwDesign);
    const std::string name = expect(TokenKind::Identifier).text;
    graph_.emplace(name);
    expect(TokenKind::LBrace);
    while (at(TokenKind::KwInput) || at(TokenKind::KwOutput)) {
      declaration();
    }
    while (!at(TokenKind::RBrace)) {
      statement();
    }
    expect(TokenKind::RBrace);
    expect(TokenKind::End);
    return finish();
  }

 private:
  [[noreturn]] void fail(const std::string& message) {
    const Token& t = peek();
    throw ParseError("parse", message, t.line, t.column);
  }

  const Token& peek() const { return tokens_[pos_]; }
  bool at(TokenKind kind) const { return peek().kind == kind; }
  Token advance() { return tokens_[pos_++]; }
  Token expect(TokenKind kind) {
    if (!at(kind)) {
      fail(std::string("expected ") + token_kind_name(kind) + ", found " +
           token_kind_name(peek().kind) +
           (peek().text.empty() ? "" : " '" + peek().text + "'"));
    }
    return advance();
  }
  bool accept(TokenKind kind) {
    if (at(kind)) {
      ++pos_;
      return true;
    }
    return false;
  }

  /// Resolves a user-visible name: rename targets first, then plain
  /// variables (inputs, literals).
  std::optional<dfg::VarId> lookup(const std::string& name) const {
    auto it = named_.find(name);
    if (it != named_.end()) return it->second;
    auto var = graph_->find_var(name);
    if (var && !is_temp(graph_->var(*var).name)) return var;
    return std::nullopt;
  }

  void declaration() {
    if (accept(TokenKind::KwInput)) {
      do {
        const std::string name = expect(TokenKind::Identifier).text;
        if (lookup(name)) fail("'" + name + "' declared twice");
        graph_->add_input(name);
      } while (accept(TokenKind::Comma));
      expect(TokenKind::Semicolon);
      return;
    }
    expect(TokenKind::KwOutput);
    const bool registered = accept(TokenKind::KwRegister);
    do {
      const std::string name = expect(TokenKind::Identifier).text;
      if (!outputs_.emplace(name, registered).second) {
        fail("output '" + name + "' declared twice");
      }
    } while (accept(TokenKind::Comma));
    expect(TokenKind::Semicolon);
  }

  void statement() {
    const Token target = expect(TokenKind::Identifier);
    expect(TokenKind::Assign);
    const dfg::VarId value = expression();
    expect(TokenKind::Semicolon);
    // Reassignment creates a new value version (the DFG is SSA; lifetime
    // analysis later decides whether versions can share one register, just
    // as the paper's VHDL compiler does for reused variables).  Primary
    // inputs cannot be driven.
    if (auto existing = graph_->find_var(target.text);
        existing && graph_->var(*existing).is_primary_input &&
        !named_.count(target.text)) {
      fail("cannot assign to input '" + target.text + "'");
    }
    const dfg::Variable& v = graph_->var(value);
    dfg::VarId result;
    if (v.def.valid() && is_temp(v.name) && !base_of_.count(v.name)) {
      // The expression's final operation defines a fresh temp: it becomes
      // this version of the target.
      result = value;
    } else {
      // Bare alias ("out = in;") or reuse of an already-named value:
      // materialize as an explicit move so the version has a defining op.
      result = graph_->add_variable("$m" + std::to_string(++move_counter_));
      graph_->add_op(fresh_op_name(), dfg::OpKind::Move, {value}, result);
    }
    base_of_[graph_->var(result).name] = target.text;
    versions_[target.text].push_back(result);
    named_[target.text] = result;
  }

  dfg::VarId expression() { return logic(); }

  dfg::VarId logic() {
    dfg::VarId lhs = comparison();
    while (at(TokenKind::Amp) || at(TokenKind::Pipe) || at(TokenKind::Caret)) {
      const TokenKind op = advance().kind;
      dfg::VarId rhs = comparison();
      lhs = emit(op == TokenKind::Amp    ? dfg::OpKind::And
                 : op == TokenKind::Pipe ? dfg::OpKind::Or
                                         : dfg::OpKind::Xor,
                 {lhs, rhs});
    }
    return lhs;
  }

  dfg::VarId comparison() {
    dfg::VarId lhs = sum();
    while (at(TokenKind::Less) || at(TokenKind::Greater) ||
           at(TokenKind::EqualEqual)) {
      const TokenKind op = advance().kind;
      dfg::VarId rhs = sum();
      lhs = emit(op == TokenKind::Less      ? dfg::OpKind::Less
                 : op == TokenKind::Greater ? dfg::OpKind::Greater
                                            : dfg::OpKind::Equal,
                 {lhs, rhs});
    }
    return lhs;
  }

  dfg::VarId sum() {
    dfg::VarId lhs = term();
    while (at(TokenKind::Plus) || at(TokenKind::Minus)) {
      const TokenKind op = advance().kind;
      dfg::VarId rhs = term();
      lhs = emit(op == TokenKind::Plus ? dfg::OpKind::Add : dfg::OpKind::Sub,
                 {lhs, rhs});
    }
    return lhs;
  }

  dfg::VarId term() {
    dfg::VarId lhs = factor();
    while (at(TokenKind::Star) || at(TokenKind::Slash)) {
      const TokenKind op = advance().kind;
      dfg::VarId rhs = factor();
      lhs = emit(op == TokenKind::Star ? dfg::OpKind::Mul : dfg::OpKind::Div,
                 {lhs, rhs});
    }
    return lhs;
  }

  dfg::VarId factor() {
    // Nesting cap: every level of expression nesting (parens, unary chains)
    // passes through factor(), so bounding it here bounds the recursion of
    // the whole descent.  Without it, adversarial input like 100k '(' or
    // '~' bytes overflows the C++ stack before any diagnostic is produced
    // -- a crash, not a ParseError.  512 is far beyond any real design
    // (the paper's benchmarks nest < 10 deep).
    if (depth_ >= kMaxNesting) {
      fail("expression nested deeper than " + std::to_string(kMaxNesting) +
           " levels");
    }
    const DepthGuard guard(depth_);
    if (accept(TokenKind::Tilde)) {
      return emit(dfg::OpKind::Not, {factor()});
    }
    if (accept(TokenKind::LParen)) {
      dfg::VarId inner = expression();
      expect(TokenKind::RParen);
      return inner;
    }
    if (at(TokenKind::Number)) {
      const std::string literal = advance().text;
      // Literals become implicit constant input ports (named after the
      // value, as the paper's Diffeq does with its literal 3).
      if (auto existing = graph_->find_var(literal)) return *existing;
      return graph_->add_input(literal);
    }
    const Token id = expect(TokenKind::Identifier);
    auto var = lookup(id.text);
    if (!var) {
      fail("use of undefined variable '" + id.text + "'");
    }
    return *var;
  }

  dfg::VarId emit(dfg::OpKind kind, const std::vector<dfg::VarId>& inputs) {
    const std::string tmp = "$t" + std::to_string(++temp_counter_);
    dfg::OpId op = graph_->add_op_new_var(fresh_op_name(), kind, inputs, tmp);
    return graph_->op(op).output;
  }

  std::string fresh_op_name() { return "N" + std::to_string(++op_counter_); }

  /// Rebuilds the graph with final names (the Dfg API has no rename) and
  /// applies the output declarations.
  dfg::Dfg finish() {
    // Final display names: the last version of each target carries the bare
    // name; earlier versions get '#k' suffixes (VHDL-style value versions).
    std::map<std::string, std::string> display;
    for (const auto& [base, vars] : versions_) {
      for (std::size_t i = 0; i < vars.size(); ++i) {
        const std::string& internal = graph_->var(vars[i]).name;
        display[internal] = i + 1 == vars.size()
                                ? base
                                : base + "#" + std::to_string(i + 1);
      }
    }
    dfg::Dfg out(graph_->name());
    IndexVec<dfg::VarId, dfg::VarId> map(graph_->num_vars());
    auto final_name = [&](dfg::VarId v) {
      const std::string& n = graph_->var(v).name;
      auto it = display.find(n);
      if (it != display.end()) return it->second;
      if (is_temp(n)) {
        // Leftover intermediate: pretty name if free.
        std::string pretty = n.substr(1);
        return graph_->find_var(pretty) ? n : pretty;
      }
      return n;
    };
    for (dfg::VarId v : graph_->var_ids()) {
      const dfg::Variable& var = graph_->var(v);
      map[v] = var.is_primary_input ? out.add_input(final_name(v))
                                    : out.add_variable(final_name(v));
    }
    for (dfg::OpId op : graph_->topo_order()) {
      const dfg::Operation& o = graph_->op(op);
      std::vector<dfg::VarId> ins;
      for (dfg::VarId in : o.inputs) ins.push_back(map[in]);
      out.add_op(o.name, o.kind, ins, map[o.output]);
    }
    for (const auto& [name, registered] : outputs_) {
      auto v = out.find_var(name);
      if (!v || (!out.var(*v).def.valid() && !out.var(*v).is_primary_input)) {
        throw Error("output '" + name + "' is never assigned",
                    ErrorKind::Input);
      }
      out.mark_output(*v, registered);
    }
    out.validate();
    return out;
  }

  static constexpr int kMaxNesting = 512;
  struct DepthGuard {
    int& depth;
    explicit DepthGuard(int& d) : depth(d) { ++depth; }
    ~DepthGuard() { --depth; }
  };

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  int depth_ = 0;
  std::optional<dfg::Dfg> graph_;
  std::map<std::string, bool> outputs_;         // name -> registered
  std::map<std::string, dfg::VarId> named_;     // target name -> latest version
  std::map<std::string, std::string> base_of_;  // internal var -> target name
  std::map<std::string, std::vector<dfg::VarId>> versions_;
  int temp_counter_ = 0;
  int move_counter_ = 0;
  int op_counter_ = 0;
};

}  // namespace

dfg::Dfg compile(const std::string& source) {
  HLTS_SPAN("frontend.compile");
  HLTS_FAILPOINT("frontend.parse");
  return Parser(source).run();
}

CompileResult compile_or_error(const std::string& source) {
  HLTS_SPAN("frontend.compile");
  CompileResult r;
  try {
    HLTS_FAILPOINT("frontend.parse");
    r.dfg = Parser(source).run();
  } catch (const ParseError& e) {
    r.error = {e.what(), e.line(), e.column()};
  } catch (const Error& e) {
    // Only user-input errors become diagnostics ("output never assigned");
    // Transient (injected) and Internal errors propagate to the caller's
    // retry / failure handling.
    if (e.kind() != ErrorKind::Input) throw;
    r.error = {e.what(), 0, 0};
  }
  return r;
}

}  // namespace hlts::frontend
