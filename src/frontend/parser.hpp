// Recursive-descent compiler: behavioral DSL -> DFG with default allocation
// (one data path node per operation instance).
//
// Grammar:
//   design      := 'design' ident '{' decl* stmt* '}'
//   decl        := 'input' ident (',' ident)* ';'
//                | 'output' ['register'] ident (',' ident)* ';'
//   stmt        := ident '=' expr ';'
//   expr        := cmp (('&' | '|' | '^') cmp)*
//   cmp         := sum (('<' | '>' | '==') sum)*
//   sum         := term (('+' | '-') term)*
//   term        := factor (('*' | '/') factor)*
//   factor      := ident | number | '~' factor | '(' expr ')'
//
// Numbers become implicit constant input ports (the paper's Diffeq keeps
// the literal 3 in a register fed from outside, matching its Table 3
// register allocations).  Nested expressions introduce compiler temporaries
// t1, t2, ...; each operator application becomes one operation N1, N2, ...
#pragma once

#include <string>

#include "dfg/dfg.hpp"

namespace hlts::frontend {

/// Compiles a behavioral specification into a DFG; throws hlts::Error with
/// positions on syntax or semantic errors (undefined variable, redefined
/// variable, undeclared output, output never assigned).
[[nodiscard]] dfg::Dfg compile(const std::string& source);

}  // namespace hlts::frontend
