// Recursive-descent compiler: behavioral DSL -> DFG with default allocation
// (one data path node per operation instance).
//
// Grammar:
//   design      := 'design' ident '{' decl* stmt* '}'
//   decl        := 'input' ident (',' ident)* ';'
//                | 'output' ['register'] ident (',' ident)* ';'
//   stmt        := ident '=' expr ';'
//   expr        := cmp (('&' | '|' | '^') cmp)*
//   cmp         := sum (('<' | '>' | '==') sum)*
//   sum         := term (('+' | '-') term)*
//   term        := factor (('*' | '/') factor)*
//   factor      := ident | number | '~' factor | '(' expr ')'
//
// Numbers become implicit constant input ports (the paper's Diffeq keeps
// the literal 3 in a register fed from outside, matching its Table 3
// register allocations).  Nested expressions introduce compiler temporaries
// t1, t2, ...; each operator application becomes one operation N1, N2, ...
#pragma once

#include <optional>
#include <string>

#include "dfg/dfg.hpp"

namespace hlts::frontend {

/// Compiles a behavioral specification into a DFG; throws hlts::Error with
/// positions on syntax or semantic errors (undefined variable, redefined
/// variable, undeclared output, output never assigned).
[[nodiscard]] dfg::Dfg compile(const std::string& source);

/// A compilation diagnostic: the full human-readable message plus the
/// 1-based source position.  line/column are 0 when the error has no
/// position (e.g. "output never assigned", reported at design level).
struct Diagnostic {
  std::string message;
  int line = 0;
  int column = 0;
};

/// Result-or-diagnostic of compile_or_error: the DFG on success, the
/// diagnostic otherwise.
struct CompileResult {
  std::optional<dfg::Dfg> dfg;
  Diagnostic error;  ///< meaningful only when !ok()

  [[nodiscard]] bool ok() const { return dfg.has_value(); }
  explicit operator bool() const { return ok(); }
};

/// Non-throwing alternative to compile(): malformed input becomes a
/// Diagnostic instead of an exception, so batch callers (the job engine)
/// can report per-job parse failures without exceptions crossing thread
/// boundaries.
[[nodiscard]] CompileResult compile_or_error(const std::string& source);

}  // namespace hlts::frontend
