// Lexer for the behavioral specification DSL.
//
// The paper's system consumes VHDL behavioral specifications; the full VHDL
// surface is irrelevant to every experiment (DESIGN.md §2), so the repo
// ships a small behavioral language with the same compilation contract:
// every operation instance in the source becomes one data path node
// ("default allocation").
//
//   design diffeq {
//     input x, y, u, dx, a;
//     output register u1, x1, y1;
//     output cond;
//     u1 = u - 3 * x * u * dx - 3 * y * dx;
//     x1 = x + dx;
//     y1 = y + u * dx;
//     cond = x1 < a;
//   }
#pragma once

#include <string>
#include <vector>

#include "util/error.hpp"

namespace hlts::frontend {

/// Thrown by the lexer and parser on malformed input.  An hlts::Error (so
/// existing catch sites keep working) that additionally carries the bare
/// message and the 1-based source position, for callers that report
/// diagnostics structurally (frontend::compile_or_error).
class ParseError : public Error {
 public:
  /// `phase` is "lex" or "parse"; what() is formatted exactly as before:
  /// "<phase> error at <line>:<column>: <message>".
  ParseError(const std::string& phase, std::string message, int line,
             int column)
      : Error(phase + " error at " + std::to_string(line) + ":" +
                  std::to_string(column) + ": " + message,
              ErrorKind::Input),
        message_(std::move(message)),
        line_(line),
        column_(column) {}

  [[nodiscard]] const std::string& message() const { return message_; }
  [[nodiscard]] int line() const { return line_; }
  [[nodiscard]] int column() const { return column_; }

 private:
  std::string message_;
  int line_;
  int column_;
};

enum class TokenKind {
  Identifier,
  Number,
  KwDesign,
  KwInput,
  KwOutput,
  KwRegister,
  LBrace,
  RBrace,
  Semicolon,
  Comma,
  Assign,   // =
  Plus,
  Minus,
  Star,
  Slash,
  Less,
  Greater,
  EqualEqual,
  Amp,
  Pipe,
  Caret,
  Tilde,
  LParen,
  RParen,
  End,
};

struct Token {
  TokenKind kind = TokenKind::End;
  std::string text;
  int line = 1;
  int column = 1;
};

[[nodiscard]] const char* token_kind_name(TokenKind kind);

/// Tokenizes `source`; throws hlts::Error with line/column on bad input.
/// Comments run from "--" or "//" to end of line.
[[nodiscard]] std::vector<Token> tokenize(const std::string& source);

}  // namespace hlts::frontend
