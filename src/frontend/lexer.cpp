#include "frontend/lexer.hpp"

#include <cctype>

#include "util/error.hpp"

namespace hlts::frontend {

const char* token_kind_name(TokenKind kind) {
  switch (kind) {
    case TokenKind::Identifier: return "identifier";
    case TokenKind::Number: return "number";
    case TokenKind::KwDesign: return "'design'";
    case TokenKind::KwInput: return "'input'";
    case TokenKind::KwOutput: return "'output'";
    case TokenKind::KwRegister: return "'register'";
    case TokenKind::LBrace: return "'{'";
    case TokenKind::RBrace: return "'}'";
    case TokenKind::Semicolon: return "';'";
    case TokenKind::Comma: return "','";
    case TokenKind::Assign: return "'='";
    case TokenKind::Plus: return "'+'";
    case TokenKind::Minus: return "'-'";
    case TokenKind::Star: return "'*'";
    case TokenKind::Slash: return "'/'";
    case TokenKind::Less: return "'<'";
    case TokenKind::Greater: return "'>'";
    case TokenKind::EqualEqual: return "'=='";
    case TokenKind::Amp: return "'&'";
    case TokenKind::Pipe: return "'|'";
    case TokenKind::Caret: return "'^'";
    case TokenKind::Tilde: return "'~'";
    case TokenKind::LParen: return "'('";
    case TokenKind::RParen: return "')'";
    case TokenKind::End: return "end of input";
  }
  return "?";
}

std::vector<Token> tokenize(const std::string& source) {
  std::vector<Token> tokens;
  int line = 1;
  int column = 1;
  std::size_t i = 0;

  auto fail = [&](const std::string& message) {
    throw ParseError("lex", message, line, column);
  };
  auto push = [&](TokenKind kind, std::string text) {
    tokens.push_back({kind, std::move(text), line, column});
  };

  while (i < source.size()) {
    const char c = source[i];
    if (c == '\n') {
      ++line;
      column = 1;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++column;
      ++i;
      continue;
    }
    // Comments: "--" (VHDL flavour) or "//".
    if ((c == '-' && i + 1 < source.size() && source[i + 1] == '-') ||
        (c == '/' && i + 1 < source.size() && source[i + 1] == '/')) {
      while (i < source.size() && source[i] != '\n') ++i;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t start = i;
      while (i < source.size() &&
             (std::isalnum(static_cast<unsigned char>(source[i])) ||
              source[i] == '_')) {
        ++i;
      }
      std::string word = source.substr(start, i - start);
      TokenKind kind = TokenKind::Identifier;
      if (word == "design") kind = TokenKind::KwDesign;
      else if (word == "input") kind = TokenKind::KwInput;
      else if (word == "output") kind = TokenKind::KwOutput;
      else if (word == "register") kind = TokenKind::KwRegister;
      push(kind, std::move(word));
      column += static_cast<int>(i - start);
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t start = i;
      while (i < source.size() &&
             std::isdigit(static_cast<unsigned char>(source[i]))) {
        ++i;
      }
      push(TokenKind::Number, source.substr(start, i - start));
      column += static_cast<int>(i - start);
      continue;
    }
    switch (c) {
      case '{': push(TokenKind::LBrace, "{"); break;
      case '}': push(TokenKind::RBrace, "}"); break;
      case ';': push(TokenKind::Semicolon, ";"); break;
      case ',': push(TokenKind::Comma, ","); break;
      case '+': push(TokenKind::Plus, "+"); break;
      case '-': push(TokenKind::Minus, "-"); break;
      case '*': push(TokenKind::Star, "*"); break;
      case '/': push(TokenKind::Slash, "/"); break;
      case '<': push(TokenKind::Less, "<"); break;
      case '>': push(TokenKind::Greater, ">"); break;
      case '&': push(TokenKind::Amp, "&"); break;
      case '|': push(TokenKind::Pipe, "|"); break;
      case '^': push(TokenKind::Caret, "^"); break;
      case '~': push(TokenKind::Tilde, "~"); break;
      case '(': push(TokenKind::LParen, "("); break;
      case ')': push(TokenKind::RParen, ")"); break;
      case '=':
        if (i + 1 < source.size() && source[i + 1] == '=') {
          push(TokenKind::EqualEqual, "==");
          ++i;
          ++column;
        } else {
          push(TokenKind::Assign, "=");
        }
        break;
      default:
        fail(std::string("unexpected character '") + c + "'");
    }
    ++i;
    ++column;
  }
  push(TokenKind::End, "");
  return tokens;
}

}  // namespace hlts::frontend
