#include "util/trace.hpp"

#include "util/json.hpp"

namespace hlts::util {

namespace {

thread_local Trace* t_current = nullptr;

}  // namespace

Trace::Trace() : epoch_(std::chrono::steady_clock::now()) {}

void Trace::add_span(std::string name, std::uint64_t start_us,
                     std::uint64_t dur_us) {
  std::lock_guard<std::mutex> lock(mutex_);
  spans_.push_back({std::move(name), start_us, dur_us});
}

void Trace::add_counter(const std::string& name, std::int64_t delta) {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_[name] += delta;
}

TraceSnapshot Trace::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {spans_, counters_};
}

std::uint64_t Trace::now_us() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

Trace* Trace::current() { return t_current; }

Trace::Scope::Scope(Trace* trace) : prev_(t_current) { t_current = trace; }

Trace::Scope::~Scope() { t_current = prev_; }

ScopedSpan::ScopedSpan(const char* name) : trace_(t_current), name_(name) {
  if (trace_) start_us_ = trace_->now_us();
}

ScopedSpan::~ScopedSpan() {
  if (trace_) trace_->add_span(name_, start_us_, trace_->now_us() - start_us_);
}

void count(const char* name, std::int64_t delta) {
  if (t_current) t_current->add_counter(name, delta);
}

std::string TraceSnapshot::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("spans").begin_array();
  for (const SpanRecord& s : spans) {
    w.begin_object();
    w.key("name").value(s.name);
    w.key("start_us").value(static_cast<std::int64_t>(s.start_us));
    w.key("dur_us").value(static_cast<std::int64_t>(s.dur_us));
    w.end_object();
  }
  w.end_array();
  w.key("counters").begin_object();
  for (const auto& [name, value] : counters) {
    w.key(name).value(value);
  }
  w.end_object();
  w.end_object();
  return w.str();
}

}  // namespace hlts::util
