// A small in-repo CDCL SAT solver, in the MiniSat lineage.
//
// The SAT deterministic-ATPG backend (src/atpg/sat_backend) encodes
// k-timeframe stuck-at miters of the gate netlist as CNF (src/gates/cnf)
// and needs a solver that is (a) deterministic -- same formula, same
// assumptions, same budget, same answer and same model, bit for bit, on
// every platform -- and (b) incremental: the unrolled good-machine netlist
// is encoded once and shared across hundreds of target faults, each fault
// adding its miter cone under a fresh activation literal and solving under
// that assumption.
//
// The implementation is the classic conflict-driven core:
//   - two-watched-literal propagation (clauses are only touched when one of
//     their two watchers is falsified);
//   - VSIDS decision heuristic (exponentially-decayed activity bumping on
//     conflict participation) with phase saving;
//   - first-UIP conflict analysis producing one learned clause per conflict,
//     with recursive self-subsumption minimization;
//   - Luby-sequence restarts;
//   - assumption-based solving: solve({a1..an}) answers "satisfiable with
//     a1..an forced true?"; on Unsat, failed_assumptions() returns the
//     subset of assumptions the final conflict depends on (an unsat core
//     over the assumptions, not guaranteed minimal);
//   - a per-call conflict budget: exceeding it returns Status::Unknown,
//     the bounded-effort "abort" the ATPG orchestrator expects.
//
// Determinism: there is no randomness anywhere (ties in VSIDS break by
// variable index through the activity heap's ordering), no pointers are
// compared, and no wall-clock input exists; the solver is a pure function
// of the clause/assumption/budget history.
#pragma once

#include <cstdint>
#include <vector>

namespace hlts::util::cdcl {

/// Variables are 0-based dense indices; literals are 2*var + (negated?1:0),
/// MiniSat-style, so ~lit flips the low bit.
using Var = int;

struct Lit {
  int x = -2;  ///< 2*var + sign; -2 = undefined

  Lit() = default;
  constexpr Lit(Var v, bool negated) : x(2 * v + (negated ? 1 : 0)) {}

  [[nodiscard]] constexpr Var var() const { return x >> 1; }
  [[nodiscard]] constexpr bool sign() const { return (x & 1) != 0; }
  constexpr Lit operator~() const {
    Lit q;
    q.x = x ^ 1;
    return q;
  }
  friend constexpr bool operator==(Lit a, Lit b) { return a.x == b.x; }
  friend constexpr bool operator!=(Lit a, Lit b) { return a.x != b.x; }
};

/// Positive literal of `v`.
[[nodiscard]] constexpr Lit mk_lit(Var v, bool negated = false) {
  return Lit(v, negated);
}

enum class Status {
  Sat,      ///< a model exists (read it via value())
  Unsat,    ///< no model under the given assumptions
  Unknown,  ///< conflict budget exhausted before an answer
};

enum class Value : std::uint8_t { False = 0, True = 1, Undef = 2 };

struct Stats {
  std::uint64_t conflicts = 0;
  std::uint64_t decisions = 0;
  std::uint64_t propagations = 0;
  std::uint64_t restarts = 0;
  std::uint64_t learned = 0;
  std::uint64_t learned_literals = 0;
  std::uint64_t minimized_literals = 0;  ///< removed by clause minimization
};

class Solver {
 public:
  Solver();

  /// Allocates a fresh variable and returns it.
  Var new_var();
  [[nodiscard]] int num_vars() const { return static_cast<int>(assign_.size()); }

  /// Adds a clause over existing variables.  Tautologies are dropped and
  /// duplicate literals merged.  Adding the empty clause (or a unit that
  /// contradicts a previous unit) makes the solver permanently Unsat.
  /// Returns false when the solver is already known Unsat.
  bool add_clause(const std::vector<Lit>& lits);
  bool add_clause(Lit a) { return add_clause(std::vector<Lit>{a}); }
  bool add_clause(Lit a, Lit b) { return add_clause(std::vector<Lit>{a, b}); }
  bool add_clause(Lit a, Lit b, Lit c) {
    return add_clause(std::vector<Lit>{a, b, c});
  }

  /// Solves under `assumptions` (each forced true for this call only).
  /// `conflict_budget` bounds the search; <= 0 means unbounded.
  Status solve(const std::vector<Lit>& assumptions = {},
               std::int64_t conflict_budget = 0);

  /// Model access, valid after solve() returned Sat.  Variables never
  /// touched by the search read as False (a complete model is produced for
  /// all variables that existed at solve time).
  [[nodiscard]] Value value(Var v) const;
  [[nodiscard]] bool model_true(Lit l) const {
    const Value v = value(l.var());
    return l.sign() ? v == Value::False : v == Value::True;
  }

  /// After solve() returned Unsat under assumptions: the subset of the
  /// assumptions the refutation used (in the order given to solve()).
  /// Empty when the formula is Unsat regardless of assumptions.
  [[nodiscard]] const std::vector<Lit>& failed_assumptions() const {
    return conflict_core_;
  }

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] bool inconsistent() const { return !ok_; }
  [[nodiscard]] std::size_t num_clauses() const { return num_problem_clauses_; }

  /// Visits every stored problem clause (learnt clauses excluded) as
  /// f(codes, size) where codes[i] is a Lit::x value.  Clauses are stored
  /// post-simplification: unit clauses and clauses satisfied at the root
  /// level live on the root trail instead -- dump them via root_literals().
  template <typename F>
  void for_each_problem_clause(F&& f) const {
    for (const ClauseRef c : clauses_) f(clause_codes(c), clause_size(c));
  }

  /// The decision-level-0 assignments (added units plus their propagated
  /// consequences).  Only meaningful between solves (the solver always
  /// returns at level 0).
  [[nodiscard]] const std::vector<Lit>& root_literals() const {
    return trail_;
  }

 private:
  // Clauses live in one flat int arena: [size, learnt, lit0, lit1, ...].
  // A ClauseRef is the arena offset of its size word; watchers store refs.
  using ClauseRef = std::uint32_t;
  static constexpr ClauseRef kNoClause = 0xFFFFFFFFu;

  [[nodiscard]] int clause_size(ClauseRef c) const { return arena_[c]; }
  [[nodiscard]] bool clause_learnt(ClauseRef c) const {
    return arena_[c + 1] != 0;
  }
  // Literal codes (Lit::x) stored directly as ints in the arena.
  [[nodiscard]] int* clause_codes(ClauseRef c) { return &arena_[c + 2]; }
  [[nodiscard]] const int* clause_codes(ClauseRef c) const {
    return &arena_[c + 2];
  }
  [[nodiscard]] Lit clause_lit(ClauseRef c, int i) const {
    Lit l;
    l.x = arena_[c + 2 + i];
    return l;
  }

  ClauseRef alloc_clause(const std::vector<Lit>& lits, bool learnt);
  void watch_clause(ClauseRef c);

  [[nodiscard]] Value lit_value(Lit l) const;
  void enqueue(Lit l, ClauseRef reason);
  /// BCP over the watch lists; returns the conflicting clause or kNoClause.
  ClauseRef propagate();
  void analyze(ClauseRef conflict, std::vector<Lit>& learnt, int& bt_level);
  void analyze_final(Lit failed);  ///< fills conflict_core_ from a failed enqueue
  [[nodiscard]] bool lit_redundant(Lit l, std::uint32_t abstract_levels);
  void backtrack(int level);
  void var_bump(Var v);
  void var_decay();
  [[nodiscard]] Lit pick_branch();

  // Indexed max-heap over var activity (ties -> smaller index), the
  // deterministic VSIDS order.
  void heap_insert(Var v);
  void heap_update(Var v);
  Var heap_pop();
  [[nodiscard]] bool heap_less(Var a, Var b) const;
  void heap_sift_up(int i);
  void heap_sift_down(int i);

  [[nodiscard]] int level_of(Var v) const { return level_[v]; }
  [[nodiscard]] static std::uint64_t luby(std::uint64_t i);

  bool ok_ = true;
  std::vector<int> arena_;
  std::vector<ClauseRef> clauses_;          ///< problem clauses
  std::vector<ClauseRef> learnts_;          ///< learned clauses
  std::size_t num_problem_clauses_ = 0;

  std::vector<Value> assign_;               ///< per var
  std::vector<std::uint8_t> phase_;         ///< saved phase per var
  std::vector<int> level_;                  ///< decision level per var
  std::vector<ClauseRef> reason_;           ///< implying clause per var
  std::vector<double> activity_;            ///< VSIDS activity per var
  double activity_inc_ = 1.0;

  std::vector<std::vector<ClauseRef>> watches_;  ///< per literal index
  std::vector<Lit> trail_;
  std::vector<int> trail_lim_;              ///< trail index per decision level
  std::size_t qhead_ = 0;

  std::vector<int> heap_;                   ///< heap of vars
  std::vector<int> heap_pos_;               ///< var -> heap index, -1 if absent

  std::vector<Lit> assumptions_;
  std::vector<Lit> conflict_core_;
  std::vector<Value> model_;  ///< snapshot of the last Sat assignment

  // analyze() scratch.
  std::vector<std::uint8_t> seen_;
  std::vector<Lit> analyze_stack_;
  std::vector<Lit> analyze_clear_;

  Stats stats_;
};

}  // namespace hlts::util::cdcl
