// Minimal leveled logger.
//
// Benches and examples raise the level to Info to narrate the synthesis
// trajectory; tests leave it at Warn so output stays clean.
#pragma once

#include <sstream>
#include <string>

namespace hlts {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Off = 3 };

/// Global log threshold; messages below it are discarded.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

/// Writes one line to stderr if `level` passes the threshold.
void log_line(LogLevel level, const std::string& message);

}  // namespace hlts

#define HLTS_LOG(level, expr)                                        \
  do {                                                               \
    if (static_cast<int>(level) >= static_cast<int>(::hlts::log_level())) { \
      std::ostringstream hlts_log_os;                                \
      hlts_log_os << expr;                                           \
      ::hlts::log_line(level, hlts_log_os.str());                    \
    }                                                                \
  } while (false)

#define HLTS_DEBUG(expr) HLTS_LOG(::hlts::LogLevel::Debug, expr)
#define HLTS_INFO(expr) HLTS_LOG(::hlts::LogLevel::Info, expr)
#define HLTS_WARN(expr) HLTS_LOG(::hlts::LogLevel::Warn, expr)
