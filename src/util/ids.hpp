// Strong identifier types and typed index containers.
//
// Every graph in this project (DFG, ETPN data path, Petri net, RTL netlist,
// gate netlist) is stored as vectors indexed by dense integer ids.  Using a
// distinct C++ type per id family turns the classic EDA bug -- indexing a
// place table with a transition id -- into a compile error.
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <utility>
#include <vector>

namespace hlts {

/// A strongly typed dense identifier.  `Tag` is an empty struct that names
/// the id family; `Id<Tag>` is a thin wrapper over a 32-bit index.
template <typename Tag>
class Id {
 public:
  using underlying_type = std::uint32_t;

  /// Constructs an invalid id (`!valid()`).
  constexpr Id() = default;
  constexpr explicit Id(underlying_type v) : value_(v) {}

  [[nodiscard]] constexpr underlying_type value() const { return value_; }
  [[nodiscard]] constexpr std::size_t index() const { return value_; }
  [[nodiscard]] constexpr bool valid() const { return value_ != kInvalid; }

  friend constexpr auto operator<=>(Id, Id) = default;

  /// Sentinel value used by the default constructor.
  static constexpr underlying_type kInvalid =
      std::numeric_limits<underlying_type>::max();

  /// Named constructor for the invalid sentinel, for readability at call
  /// sites: `return OpId::invalid();`.
  [[nodiscard]] static constexpr Id invalid() { return Id{}; }

 private:
  underlying_type value_ = kInvalid;
};

/// A vector indexed by a strong id.  Only the matching id type can index it.
template <typename IdT, typename T>
class IndexVec {
 public:
  IndexVec() = default;
  explicit IndexVec(std::size_t n) : data_(n) {}
  IndexVec(std::size_t n, const T& init) : data_(n, init) {}

  // decltype(auto) so the std::vector<bool> proxy reference works too.
  [[nodiscard]] decltype(auto) operator[](IdT id) { return data_[id.index()]; }
  [[nodiscard]] decltype(auto) operator[](IdT id) const {
    return data_[id.index()];
  }

  /// Appends `value` and returns the id of the new slot.
  IdT push_back(T value) {
    data_.push_back(std::move(value));
    return IdT{static_cast<typename IdT::underlying_type>(data_.size() - 1)};
  }

  template <typename... Args>
  IdT emplace_back(Args&&... args) {
    data_.emplace_back(std::forward<Args>(args)...);
    return IdT{static_cast<typename IdT::underlying_type>(data_.size() - 1)};
  }

  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] bool empty() const { return data_.empty(); }
  [[nodiscard]] bool contains(IdT id) const {
    return id.valid() && id.index() < data_.size();
  }
  void clear() { data_.clear(); }
  void resize(std::size_t n) { data_.resize(n); }
  void resize(std::size_t n, const T& init) { data_.resize(n, init); }
  void assign(std::size_t n, const T& init) { data_.assign(n, init); }
  void reserve(std::size_t n) { data_.reserve(n); }

  auto begin() { return data_.begin(); }
  auto end() { return data_.end(); }
  auto begin() const { return data_.begin(); }
  auto end() const { return data_.end(); }

  [[nodiscard]] std::vector<T>& raw() { return data_; }
  [[nodiscard]] const std::vector<T>& raw() const { return data_; }

  friend bool operator==(const IndexVec&, const IndexVec&) = default;

 private:
  std::vector<T> data_;
};

/// Iterates all ids `[0, count)` of a family: `for (OpId op : id_range<OpId>(n))`.
template <typename IdT>
class IdRange {
 public:
  class iterator {
   public:
    constexpr explicit iterator(typename IdT::underlying_type v) : v_(v) {}
    constexpr IdT operator*() const { return IdT{v_}; }
    constexpr iterator& operator++() {
      ++v_;
      return *this;
    }
    constexpr bool operator!=(const iterator& o) const { return v_ != o.v_; }

   private:
    typename IdT::underlying_type v_;
  };

  constexpr explicit IdRange(std::size_t count)
      : count_(static_cast<typename IdT::underlying_type>(count)) {}
  [[nodiscard]] constexpr iterator begin() const { return iterator{0}; }
  [[nodiscard]] constexpr iterator end() const { return iterator{count_}; }

 private:
  typename IdT::underlying_type count_;
};

template <typename IdT>
[[nodiscard]] constexpr IdRange<IdT> id_range(std::size_t count) {
  return IdRange<IdT>{count};
}

}  // namespace hlts

template <typename Tag>
struct std::hash<hlts::Id<Tag>> {
  std::size_t operator()(hlts::Id<Tag> id) const noexcept {
    return std::hash<typename hlts::Id<Tag>::underlying_type>{}(id.value());
  }
};
