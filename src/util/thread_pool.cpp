#include "util/thread_pool.hpp"

#include <cstdlib>
#include <limits>

#include "util/failpoint.hpp"
#include "util/knobs.hpp"

namespace hlts::util {

namespace {

/// Set while a thread is executing pool tasks, so a nested parallel_for
/// from inside a task runs inline instead of deadlocking on submit_mutex_.
thread_local const ThreadPool* t_current_pool = nullptr;

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = default_threads();
  workers_.reserve(threads - 1);
  for (std::size_t i = 0; i + 1 < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

std::size_t ThreadPool::default_threads() {
  // Registry-audited read; malformed or < 1 values fall back to the
  // hardware default (the knob's documented Ignore policy).
  if (const std::optional<long long> v = knobs::read_int("HLTS_THREADS");
      v && *v >= 1) {
    return static_cast<std::size_t>(*v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(default_threads());
  return pool;
}

void ThreadPool::run_indices(const std::function<void(std::size_t)>& fn,
                             std::size_t n) {
  std::size_t completed = 0;
  for (;;) {
    const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= n) break;
    try {
      HLTS_FAILPOINT("pool.task");
      fn(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!error_ || i < error_index_) {
        error_ = std::current_exception();
        error_index_ = i;
      }
    }
    ++completed;
  }
  if (completed > 0) {
    std::lock_guard<std::mutex> lock(mutex_);
    done_ += completed;
    if (done_ == n) done_cv_.notify_all();
  }
}

void ThreadPool::worker_loop() {
  t_current_pool = this;
  std::unique_lock<std::mutex> lock(mutex_);
  std::uint64_t seen = 0;
  for (;;) {
    work_cv_.wait(lock, [&] {
      return stop_ || (job_ != nullptr && generation_ != seen);
    });
    if (stop_) return;
    seen = generation_;
    const std::function<void(std::size_t)>* fn = job_;
    const std::size_t n = job_n_;
    ++active_workers_;
    lock.unlock();
    run_indices(*fn, n);
    lock.lock();
    if (--active_workers_ == 0) done_cv_.notify_all();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  // Inline when there is nothing to fan out to, or when called from inside
  // one of this pool's own tasks (nested use).
  if (workers_.empty() || n == 1 || t_current_pool == this) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  std::lock_guard<std::mutex> submit(submit_mutex_);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = &fn;
    job_n_ = n;
    done_ = 0;
    error_ = nullptr;
    error_index_ = std::numeric_limits<std::size_t>::max();
    next_.store(0, std::memory_order_relaxed);
    ++generation_;
  }
  work_cv_.notify_all();
  {
    // Mark the caller as inside the pool while it participates, so a
    // nested parallel_for from one of its own tasks runs inline instead of
    // re-locking submit_mutex_.
    const ThreadPool* prev = t_current_pool;
    t_current_pool = this;
    run_indices(fn, n);
    t_current_pool = prev;
  }

  std::exception_ptr err;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    // Wait for every index to finish *and* every worker to leave
    // run_indices, so no stale worker can touch the next job's cursor.
    done_cv_.wait(lock, [&] { return done_ == n && active_workers_ == 0; });
    job_ = nullptr;
    err = error_;
    error_ = nullptr;
  }
  if (err) std::rethrow_exception(err);
}

}  // namespace hlts::util
