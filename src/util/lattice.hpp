// Coordination-free monotonic merge lattices for cross-shard aggregation.
//
// The serving layer (src/serve) aggregates per-shard EngineHealth snapshots
// into one cluster view without any cross-process coordination: each shard's
// counters only ever grow, so a supervisor that merges snapshots -- in any
// order, any number of times, including replays of stale ones -- converges
// to the same cluster totals.  The algebra that guarantees this is the
// bounded join-semilattice: merge must be associative, commutative and
// idempotent, which makes delivery order, duplication and retries all
// harmless (the CvRDT argument).
//
// The CRTP mixin mirrors the tiered-storage lattice library's shape: a
// derived lattice supplies `do_merge` (the join) and the mixin provides the
// uniform merge/reveal surface.  Four concrete lattices cover the health
// aggregation:
//
//   BoolLattice      -- join is OR ("any shard is journaling / unhealthy")
//   MaxLattice<T>    -- join is max (monotone per-shard counters, high-water
//                       gauges)
//   MinLattice<T>    -- join is min (first-seen timestamps, tightest caps)
//   MapLattice<K,L>  -- pointwise join of per-key lattices.  This is how a
//                       cluster-wide *sum* of monotone counters stays
//                       idempotent: keep MaxLattice per shard id and sum the
//                       revealed per-shard maxima.  Re-merging an old
//                       snapshot can never double-count.
//
// Everything is header-only and allocation-free except MapLattice's map.
#pragma once

#include <cstdint>
#include <limits>
#include <map>

namespace hlts::util {

/// CRTP base: `Derived` supplies `do_merge(const Element&)` (the join) and
/// exposes its element type; the mixin provides the uniform API.  A lattice
/// default-constructs to its bottom element, so merging into a fresh
/// instance is the identity.
template <class Derived>
class LatticeMixin {
 public:
  /// Joins `e` into this lattice (monotone: reveal() never moves down).
  template <class Element>
  void merge(const Element& e) {
    self().do_merge(e);
  }
  /// Joins another instance of the same lattice.
  void merge_in(const Derived& other) { self().do_merge(other.reveal()); }

 private:
  Derived& self() { return static_cast<Derived&>(*this); }
};

/// Join = logical OR; bottom = false.
class BoolLattice : public LatticeMixin<BoolLattice> {
 public:
  BoolLattice() = default;
  explicit BoolLattice(bool e) : element_(e) {}
  void do_merge(bool e) { element_ = element_ || e; }
  [[nodiscard]] bool reveal() const { return element_; }

 private:
  bool element_ = false;
};

/// Join = max; bottom = the type's lowest value (0 for the unsigned counters
/// the health snapshot uses).
template <class T>
class MaxLattice : public LatticeMixin<MaxLattice<T>> {
 public:
  MaxLattice() = default;
  explicit MaxLattice(T e) : element_(e) {}
  void do_merge(const T& e) {
    if (element_ < e) element_ = e;
  }
  [[nodiscard]] const T& reveal() const { return element_; }

 private:
  T element_ = std::numeric_limits<T>::lowest();
};

/// Join = min; bottom = the type's highest value.
template <class T>
class MinLattice : public LatticeMixin<MinLattice<T>> {
 public:
  MinLattice() = default;
  explicit MinLattice(T e) : element_(e) {}
  void do_merge(const T& e) {
    if (e < element_) element_ = e;
  }
  [[nodiscard]] const T& reveal() const { return element_; }

 private:
  T element_ = std::numeric_limits<T>::max();
};

/// Pointwise join of per-key inner lattices; bottom = the empty map.
/// Merging {k -> e} joins e into the lattice at k (default-constructing the
/// bottom inner lattice on first sight of k).
template <class K, class Inner>
class MapLattice : public LatticeMixin<MapLattice<K, Inner>> {
 public:
  using Map = std::map<K, Inner>;

  void do_merge(const Map& other) {
    for (const auto& [k, inner] : other) map_[k].merge_in(inner);
  }
  /// Joins one element into the inner lattice at `k`.
  template <class Element>
  void merge_at(const K& k, const Element& e) {
    map_[k].merge(e);
  }
  [[nodiscard]] const Map& reveal() const { return map_; }

  /// Sum of the revealed inner values -- the idempotent cluster-wide total
  /// when the inner lattice is a per-shard MaxLattice of a monotone counter.
  [[nodiscard]] auto sum() const {
    decltype(map_.begin()->second.reveal() + 0) total{};
    for (const auto& [k, inner] : map_) total += inner.reveal();
    return total;
  }

 private:
  Map map_;
};

/// Per-shard monotone counter: the standard composition for "sum a counter
/// across shards, tolerating re-delivered snapshots".
using ShardCounterLattice = MapLattice<int, MaxLattice<std::uint64_t>>;

}  // namespace hlts::util
