// Injectable network faults: the wire half of the chaos harness.
//
// The socket layer exposes chaos-aware variants of its primitives
// (connect_local with chaos enabled, write_all's chaos flag, LineReader::
// enable_chaos); this module decides *when* those variants misbehave and
// *how*.  Enabling is per call site, never ambient: a process that arms
// HLTS_NET_FAULTS only perturbs the connections that opted in (the serve
// client), so a supervisor's worker socketpairs in the same process stay
// deterministic.
//
// Configuration: the HLTS_NET_FAULTS environment variable (read once at
// process start) or net_chaos::configure(), a comma-separated list of
//
//   op:mode:probability:seed[:param]
//
//   op           connect | read | write
//   mode         reset    -- the peer "resets": connect/write throw a
//                            Transient error, a read sees EOF; param caps
//                            triggers (0 = unlimited)
//                truncate -- deliver/send only `param` bytes (default 1)
//                            of the chunk, then the stream ends: the torn
//                            line / slow-loris partial-frame case
//                stall    -- sleep `param` ms (default 50) before the
//                            operation: a stalled or drip-feeding peer;
//                            timeouts are what make this survivable
//   probability  0..1, deterministic counter-hash stream seeded by `seed`
//
// e.g. HLTS_NET_FAULTS=read:stall:0.2:3:200,read:reset:0.05:9,connect:reset:0.1:5
//
// Same spec grammar, probability stream and armed() fast path as
// util/failpoint and util/io_faults.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace hlts::util::net_chaos {

enum class Op { Connect, Read, Write };
enum class Mode { Reset, Truncate, Stall };

[[nodiscard]] const char* op_name(Op op);
[[nodiscard]] const char* mode_name(Mode mode);

/// Parsed form of one op:mode:probability:seed[:param] spec.
struct Spec {
  Op op = Op::Read;
  Mode mode = Mode::Reset;
  double probability = 1.0;
  std::uint64_t seed = 0;
  /// reset: max triggers (0 = unlimited); truncate: bytes delivered
  /// (default 1); stall: sleep milliseconds (default 50).
  std::int64_t param = 0;
};

struct OpStats {
  std::string op;
  std::int64_t hits = 0;
  std::int64_t triggers = 0;
};

/// Replaces the active configuration (HLTS_NET_FAULTS grammar).  Returns
/// false and fills `*error` on a malformed spec, leaving the previous
/// configuration untouched.  An empty list disarms everything.
bool configure(const std::string& spec_list, std::string* error = nullptr);

/// Disarms all injections and resets statistics.
void clear();

[[nodiscard]] std::vector<Spec> active();
[[nodiscard]] std::vector<OpStats> stats();

namespace detail {
extern std::atomic<bool> g_armed;
}  // namespace detail

/// True when any injection is configured -- the only fast-path check.
[[nodiscard]] inline bool armed() {
  return detail::g_armed.load(std::memory_order_relaxed);
}

/// The fault to inject right now for one `op`, or nullopt to proceed
/// normally.  Stall sleeps are performed by the caller (so it can sleep
/// outside its locks); only call when armed().
struct Injected {
  Mode mode = Mode::Reset;
  std::int64_t param = 0;  ///< resolved param (defaults applied)
};
[[nodiscard]] std::optional<Injected> consult(Op op);

}  // namespace hlts::util::net_chaos
