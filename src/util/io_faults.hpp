// Injectable filesystem faults: the disk half of the chaos harness.
//
// util::fs routes every syscall that matters for durability (open, write,
// fsync, rename) through this shim, so tests and the chaos grid can make
// the "disk" fail the way real disks fail -- short writes that tear a file,
// ENOSPC, EIO, a rename or fsync that never lands -- without mocking the
// filesystem or patching the binary.
//
// Relationship to util/failpoint: failpoints are *named code sites*
// ("journal.commit") that fire an action; io_faults are *operation types*
// that fire wherever util::fs performs that operation.  The spec grammar,
// the deterministic counter-hash probability stream and the armed()
// fast-path are deliberately the same idiom.
//
// Configuration: the HLTS_IO_FAULTS environment variable (read once at
// process start) or io_faults::configure(), a comma-separated list of
//
//   op:mode:probability:seed[:param]
//
//   op           open | write | fsync | rename
//   mode         short  -- (write only) persist a prefix of the chunk, then
//                          fail: the torn-file case
//                enospc -- fail with a disk-full error (surfaced distinctly
//                          in the Error message)
//                eio    -- fail with a generic I/O error
//   probability  0..1, deterministic counter-hash stream seeded by `seed`
//   param        maximum number of triggers, 0 = unlimited
//
// e.g. HLTS_IO_FAULTS=write:short:0.05:7,fsync:eio:0.1:11,rename:enospc:0.02:13
//
// All injected failures surface as hlts::Error(ErrorKind::Transient), like
// their real counterparts: the engine's retry/refuse machinery owns them.
// Cost when not configured: one relaxed atomic load per fs operation.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace hlts::util::io_faults {

enum class Op { Open, Write, Fsync, Rename };
enum class Mode { Short, Enospc, Eio };

[[nodiscard]] const char* op_name(Op op);
[[nodiscard]] const char* mode_name(Mode mode);

/// Parsed form of one op:mode:probability:seed[:param] spec.
struct Spec {
  Op op = Op::Write;
  Mode mode = Mode::Eio;
  double probability = 1.0;
  std::uint64_t seed = 0;
  std::int64_t param = 0;  ///< max triggers, 0 = unlimited
};

/// Per-op observability for tests and the chaos-grid report.
struct OpStats {
  std::string op;
  std::int64_t hits = 0;      ///< operations evaluated while armed
  std::int64_t triggers = 0;  ///< faults actually injected
};

/// Replaces the active configuration (HLTS_IO_FAULTS grammar).  Returns
/// false and fills `*error` on a malformed spec, leaving the previous
/// configuration untouched.  An empty list disarms everything.
bool configure(const std::string& spec_list, std::string* error = nullptr);

/// Disarms all injections and resets statistics.
void clear();

[[nodiscard]] std::vector<Spec> active();
[[nodiscard]] std::vector<OpStats> stats();

namespace detail {
extern std::atomic<bool> g_armed;
}  // namespace detail

/// True when any injection is configured -- the only fast-path check.
[[nodiscard]] inline bool armed() {
  return detail::g_armed.load(std::memory_order_relaxed);
}

/// The fault to inject right now for one `op`, or nullopt to proceed
/// normally.  Draws from the deterministic per-spec stream; only call when
/// armed().  The *caller* (util::fs) performs the fault so it can model it
/// faithfully (a short write really leaves a prefix on disk).
struct Injected {
  Mode mode = Mode::Eio;
};
[[nodiscard]] std::optional<Injected> consult(Op op);

}  // namespace hlts::util::io_faults
