// Lightweight tracing/metrics: named wall-clock spans plus monotonic
// counters, collected per Trace object and exported as JSON.
//
// The synthesis pipeline (frontend -> scheduling -> Algorithm-1 iterations
// -> ETPN rebuild -> cost -> ATPG) is instrumented with HLTS_SPAN /
// util::count calls that record into the *calling thread's current* Trace.
// With no trace installed every instrumentation point is a single
// thread-local pointer test, so standalone runs pay nothing; the batch
// engine installs one Trace per job for the job's lifetime and aggregates
// the snapshots into its report.
//
// Concurrency contract: one Trace may be written from several threads
// (Algorithm 1's trial workers increment counters); add_span/add_counter
// are mutex-guarded.  The thread-local `current` pointer is installed per
// thread with Trace::Scope, so traces of concurrently running jobs never
// mix.  Span/counter *contents* are deterministic for a deterministic run;
// span wall-clock fields and the interleaving order of worker-thread spans
// are not.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace hlts::util {

/// One closed span: a named region of wall-clock time.
struct SpanRecord {
  std::string name;
  std::uint64_t start_us = 0;  ///< offset from the owning trace's epoch
  std::uint64_t dur_us = 0;
};

/// Immutable copy of a trace's contents, detached from any locking.
struct TraceSnapshot {
  std::vector<SpanRecord> spans;
  std::map<std::string, std::int64_t> counters;

  /// {"spans": [{"name": ..., "start_us": ..., "dur_us": ...}, ...],
  ///  "counters": {"name": value, ...}}
  [[nodiscard]] std::string to_json() const;
};

class Trace {
 public:
  Trace();

  void add_span(std::string name, std::uint64_t start_us, std::uint64_t dur_us);
  void add_counter(const std::string& name, std::int64_t delta = 1);

  [[nodiscard]] TraceSnapshot snapshot() const;

  /// Microseconds elapsed since this trace was constructed (span timebase).
  [[nodiscard]] std::uint64_t now_us() const;

  /// The calling thread's installed trace, or nullptr.
  [[nodiscard]] static Trace* current();

  /// Installs a trace as the calling thread's current one for the scope's
  /// lifetime (restores the previous trace on destruction).
  class Scope {
   public:
    explicit Scope(Trace* trace);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    Trace* prev_;
  };

 private:
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mutex_;
  std::vector<SpanRecord> spans_;
  std::map<std::string, std::int64_t> counters_;
};

/// RAII span recorded into the current trace; no-op when none is installed.
/// The name must outlive the span (string literals in practice).
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  Trace* trace_;  ///< captured at construction: scope moves are impossible
  const char* name_;
  std::uint64_t start_us_ = 0;
};

/// Bumps a counter on the current trace; no-op when none is installed.
void count(const char* name, std::int64_t delta = 1);

}  // namespace hlts::util

/// Names a span covering the rest of the enclosing block.
#define HLTS_SPAN_CONCAT2(a, b) a##b
#define HLTS_SPAN_CONCAT(a, b) HLTS_SPAN_CONCAT2(a, b)
#define HLTS_SPAN(name) \
  ::hlts::util::ScopedSpan HLTS_SPAN_CONCAT(hlts_span_, __LINE__)(name)
