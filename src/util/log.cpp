#include "util/log.hpp"

#include <iostream>

namespace hlts {
namespace {

LogLevel g_level = LogLevel::Warn;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::Debug:
      return "debug";
    case LogLevel::Info:
      return "info ";
    case LogLevel::Warn:
      return "warn ";
    case LogLevel::Off:
      return "off  ";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level = level; }

LogLevel log_level() { return g_level; }

void log_line(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(g_level)) return;
  std::cerr << "[hlts:" << level_tag(level) << "] " << message << '\n';
}

}  // namespace hlts
