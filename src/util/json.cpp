#include "util/json.hpp"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace hlts::util {

namespace {

void append_u16_escape(std::string& out, unsigned code) {
  char buf[8];
  std::snprintf(buf, sizeof buf, "\\u%04x", code & 0xFFFFu);
  out += buf;
}

/// Decodes one UTF-8 sequence starting at s[i]; advances i past it and
/// returns the code point, or nullopt (i advanced by one byte) when the
/// bytes are not valid UTF-8.
std::optional<std::uint32_t> decode_utf8(const std::string& s,
                                         std::size_t& i) {
  const auto byte = [&](std::size_t k) {
    return static_cast<unsigned char>(s[k]);
  };
  const unsigned char b0 = byte(i);
  std::size_t len = 0;
  std::uint32_t code = 0;
  if (b0 < 0x80) {
    ++i;
    return b0;
  }
  if ((b0 & 0xE0) == 0xC0) {
    len = 2;
    code = b0 & 0x1Fu;
  } else if ((b0 & 0xF0) == 0xE0) {
    len = 3;
    code = b0 & 0x0Fu;
  } else if ((b0 & 0xF8) == 0xF0) {
    len = 4;
    code = b0 & 0x07u;
  } else {
    ++i;
    return std::nullopt;
  }
  if (i + len > s.size()) {
    ++i;
    return std::nullopt;
  }
  for (std::size_t k = 1; k < len; ++k) {
    const unsigned char b = byte(i + k);
    if ((b & 0xC0) != 0x80) {
      ++i;
      return std::nullopt;
    }
    code = (code << 6) | (b & 0x3Fu);
  }
  // Reject overlong encodings, surrogates and out-of-range code points --
  // they must not round-trip as if they were the short form.
  static constexpr std::uint32_t kMin[] = {0, 0, 0x80, 0x800, 0x10000};
  if (code < kMin[len] || code > 0x10FFFF ||
      (code >= 0xD800 && code <= 0xDFFF)) {
    ++i;
    return std::nullopt;
  }
  i += len;
  return code;
}

}  // namespace

std::string json_escape(const std::string& s) {
  // Wire-hardened escaping: the output is pure ASCII.  Control bytes use
  // the RFC 8259 escapes, non-ASCII text is \u-escaped by decoded code
  // point (surrogate pairs above the BMP), and bytes that are not valid
  // UTF-8 become U+FFFD -- a malformed name can then never smuggle raw
  // bytes into a journal record or across the wire protocol.
  std::string out;
  out.reserve(s.size());
  std::size_t i = 0;
  while (i < s.size()) {
    const char c = s[i];
    switch (c) {
      case '"': out += "\\\""; ++i; continue;
      case '\\': out += "\\\\"; ++i; continue;
      case '\b': out += "\\b"; ++i; continue;
      case '\f': out += "\\f"; ++i; continue;
      case '\n': out += "\\n"; ++i; continue;
      case '\r': out += "\\r"; ++i; continue;
      case '\t': out += "\\t"; ++i; continue;
      default: break;
    }
    const unsigned char u = static_cast<unsigned char>(c);
    if (u >= 0x20 && u < 0x7F) {  // printable ASCII passes through
      out += c;
      ++i;
      continue;
    }
    if (u < 0x20 || u == 0x7F) {  // control bytes, including DEL
      append_u16_escape(out, u);
      ++i;
      continue;
    }
    const std::uint32_t code = decode_utf8(s, i).value_or(0xFFFD);
    if (code < 0x10000) {
      append_u16_escape(out, code);
    } else {  // astral plane: UTF-16 surrogate pair
      const std::uint32_t v = code - 0x10000;
      append_u16_escape(out, 0xD800 + (v >> 10));
      append_u16_escape(out, 0xDC00 + (v & 0x3FF));
    }
  }
  return out;
}

void JsonWriter::element() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!has_elements_.empty()) {
    if (has_elements_.back()) out_ += ',';
    has_elements_.back() = true;
  }
}

JsonWriter& JsonWriter::begin_object() {
  element();
  out_ += '{';
  has_elements_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  has_elements_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  element();
  out_ += '[';
  has_elements_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  has_elements_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& k) {
  element();
  out_ += '"';
  out_ += json_escape(k);
  out_ += "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  element();
  out_ += '"';
  out_ += json_escape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) { return value(std::string(v)); }

JsonWriter& JsonWriter::value(double v) {
  element();
  if (!std::isfinite(v)) {
    out_ += "null";  // JSON has no NaN/Inf
    return *this;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  element();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(int v) { return value(static_cast<std::int64_t>(v)); }

JsonWriter& JsonWriter::value(bool v) {
  element();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::raw_value(const std::string& json) {
  element();
  out_ += json;
  return *this;
}

JsonWriter& JsonWriter::null_value() {
  element();
  out_ += "null";
  return *this;
}

namespace {

void dump_into(JsonWriter& w, const JsonValue& v) {
  switch (v.type()) {
    case JsonValue::Type::Null: w.null_value(); break;
    case JsonValue::Type::Bool: w.value(v.as_bool()); break;
    case JsonValue::Type::Number:
      if (v.is_int()) {
        w.value(v.as_int());
      } else {
        w.value(v.as_double());
      }
      break;
    case JsonValue::Type::String: w.value(v.as_string()); break;
    case JsonValue::Type::Array:
      w.begin_array();
      for (const JsonValue& e : v.as_array()) dump_into(w, e);
      w.end_array();
      break;
    case JsonValue::Type::Object:
      w.begin_object();
      for (const auto& [k, e] : v.as_object()) {
        w.key(k);
        dump_into(w, e);
      }
      w.end_object();
      break;
  }
}

}  // namespace

std::string json_dump(const JsonValue& v) {
  JsonWriter w;
  dump_into(w, v);
  return w.str();
}

// --- JsonValue -------------------------------------------------------------

const JsonValue* JsonValue::find(const std::string& key) const {
  if (type_ != Type::Object) return nullptr;
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::int64_t JsonValue::get_int(const std::string& key,
                                std::int64_t fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->is_number() ? v->as_int() : fallback;
}

double JsonValue::get_double(const std::string& key, double fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->is_number() ? v->as_double() : fallback;
}

bool JsonValue::get_bool(const std::string& key, bool fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->is_bool() ? v->as_bool() : fallback;
}

std::string JsonValue::get_string(const std::string& key,
                                  const std::string& fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->is_string() ? v->as_string() : fallback;
}

JsonValue JsonValue::make_null() { return JsonValue{}; }

JsonValue JsonValue::make_bool(bool v) {
  JsonValue out;
  out.type_ = Type::Bool;
  out.bool_ = v;
  return out;
}

JsonValue JsonValue::make_number(double v) {
  JsonValue out;
  out.type_ = Type::Number;
  out.num_ = v;
  out.int_ = static_cast<std::int64_t>(v);
  out.exact_int_ =
      std::isfinite(v) && static_cast<double>(out.int_) == v;
  return out;
}

JsonValue JsonValue::make_int(std::int64_t v) {
  JsonValue out;
  out.type_ = Type::Number;
  out.int_ = v;
  out.num_ = static_cast<double>(v);
  out.exact_int_ = true;
  return out;
}

JsonValue JsonValue::make_string(std::string v) {
  JsonValue out;
  out.type_ = Type::String;
  out.str_ = std::move(v);
  return out;
}

JsonValue JsonValue::make_array(Array v) {
  JsonValue out;
  out.type_ = Type::Array;
  out.arr_ = std::move(v);
  return out;
}

JsonValue JsonValue::make_object(Object v) {
  JsonValue out;
  out.type_ = Type::Object;
  out.obj_ = std::move(v);
  return out;
}

// --- json_parse ------------------------------------------------------------

namespace {

/// Recursive-descent RFC 8259 parser.  Every path either produces a value
/// or sets a byte-offset-tagged error; no exception escapes for any input
/// (torn journal files are a normal, expected case for the recovery scan).
class JsonParser {
 public:
  JsonParser(const std::string& text, int max_depth)
      : text_(text), max_depth_(max_depth) {}

  std::optional<JsonValue> run(std::string* error) {
    JsonValue v;
    if (!parse_value(&v, 0)) {
      if (error != nullptr) *error = error_;
      return std::nullopt;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      if (error != nullptr) *error = at("trailing characters after document");
      return std::nullopt;
    }
    return v;
  }

 private:
  std::string at(const std::string& message) const {
    return "json at byte " + std::to_string(pos_) + ": " + message;
  }

  bool fail(const std::string& message) {
    if (error_.empty()) error_ = at(message);
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool literal(const char* word) {
    const std::size_t n = std::strlen(word);
    if (text_.compare(pos_, n, word) != 0) return fail("invalid literal");
    pos_ += n;
    return true;
  }

  /// Consumes exactly four hex digits into `*code`.
  bool parse_hex4(unsigned* code) {
    if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
    *code = 0;
    for (int i = 0; i < 4; ++i) {
      const char h = text_[pos_ + static_cast<std::size_t>(i)];
      *code <<= 4;
      if (h >= '0' && h <= '9') {
        *code |= static_cast<unsigned>(h - '0');
      } else if (h >= 'a' && h <= 'f') {
        *code |= static_cast<unsigned>(h - 'a' + 10);
      } else if (h >= 'A' && h <= 'F') {
        *code |= static_cast<unsigned>(h - 'A' + 10);
      } else {
        return fail("malformed \\u escape");
      }
    }
    pos_ += 4;
    return true;
  }

  bool parse_string(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (true) {
      if (pos_ >= text_.size()) return fail("unterminated string");
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c < 0x20) return fail("unescaped control character in string");
      if (c != '\\') {
        out->push_back(static_cast<char>(c));
        ++pos_;
        continue;
      }
      if (pos_ + 1 >= text_.size()) return fail("unterminated escape");
      const char e = text_[pos_ + 1];
      pos_ += 2;
      switch (e) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          unsigned code = 0;
          if (!parse_hex4(&code)) return false;
          // UTF-8 encode the escaped code point.  The writer escapes all
          // non-ASCII text, so the full UTF-16 repertoire must decode:
          // a high surrogate combines with the following \uDC00-\uDFFF low
          // surrogate into one astral code point; lone surrogates stay
          // malformed input.
          std::uint32_t cp = code;
          if (code >= 0xD800 && code <= 0xDBFF) {
            if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return fail("high surrogate without low surrogate");
            }
            pos_ += 2;
            unsigned low = 0;
            if (!parse_hex4(&low)) return false;
            if (low < 0xDC00 || low > 0xDFFF) {
              return fail("high surrogate followed by non-low surrogate");
            }
            cp = 0x10000 + ((static_cast<std::uint32_t>(code) - 0xD800) << 10) +
                 (low - 0xDC00);
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            return fail("lone low surrogate");
          }
          if (cp < 0x80) {
            out->push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          } else if (cp < 0x10000) {
            out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
            out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          }
          break;
        }
        default: return fail("unknown escape character");
      }
    }
  }

  bool parse_number(JsonValue* out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      return fail("malformed number");
    }
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    bool integral = true;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      integral = false;
      ++pos_;
      if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return fail("malformed number");
      }
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return fail("malformed number");
      }
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    const std::string token = text_.substr(start, pos_ - start);
    if (integral) {
      errno = 0;
      char* end = nullptr;
      const long long v = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end != nullptr && *end == '\0') {
        *out = JsonValue::make_int(static_cast<std::int64_t>(v));
        return true;
      }
      // Out of int64 range: fall through to the double representation.
    }
    errno = 0;
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return fail("malformed number");
    *out = JsonValue::make_number(d);
    return true;
  }

  bool parse_value(JsonValue* out, int depth) {
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case 'n':
        if (!literal("null")) return false;
        *out = JsonValue::make_null();
        return true;
      case 't':
        if (!literal("true")) return false;
        *out = JsonValue::make_bool(true);
        return true;
      case 'f':
        if (!literal("false")) return false;
        *out = JsonValue::make_bool(false);
        return true;
      case '"': {
        std::string s;
        if (!parse_string(&s)) return false;
        *out = JsonValue::make_string(std::move(s));
        return true;
      }
      case '[': {
        if (depth >= max_depth_) return fail("nesting too deep");
        ++pos_;
        JsonValue::Array arr;
        skip_ws();
        if (pos_ < text_.size() && text_[pos_] == ']') {
          ++pos_;
          *out = JsonValue::make_array(std::move(arr));
          return true;
        }
        while (true) {
          JsonValue element;
          if (!parse_value(&element, depth + 1)) return false;
          arr.push_back(std::move(element));
          skip_ws();
          if (pos_ >= text_.size()) return fail("unterminated array");
          if (text_[pos_] == ',') {
            ++pos_;
            continue;
          }
          if (text_[pos_] == ']') {
            ++pos_;
            *out = JsonValue::make_array(std::move(arr));
            return true;
          }
          return fail("expected ',' or ']' in array");
        }
      }
      case '{': {
        if (depth >= max_depth_) return fail("nesting too deep");
        ++pos_;
        JsonValue::Object obj;
        skip_ws();
        if (pos_ < text_.size() && text_[pos_] == '}') {
          ++pos_;
          *out = JsonValue::make_object(std::move(obj));
          return true;
        }
        while (true) {
          skip_ws();
          if (pos_ >= text_.size() || text_[pos_] != '"') {
            return fail("expected string key in object");
          }
          std::string key;
          if (!parse_string(&key)) return false;
          skip_ws();
          if (pos_ >= text_.size() || text_[pos_] != ':') {
            return fail("expected ':' after object key");
          }
          ++pos_;
          JsonValue member;
          if (!parse_value(&member, depth + 1)) return false;
          obj.emplace_back(std::move(key), std::move(member));
          skip_ws();
          if (pos_ >= text_.size()) return fail("unterminated object");
          if (text_[pos_] == ',') {
            ++pos_;
            continue;
          }
          if (text_[pos_] == '}') {
            ++pos_;
            *out = JsonValue::make_object(std::move(obj));
            return true;
          }
          return fail("expected ',' or '}' in object");
        }
      }
      default:
        return parse_number(out);
    }
  }

  const std::string& text_;
  const int max_depth_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

std::optional<JsonValue> json_parse(const std::string& text, std::string* error,
                                    int max_depth) {
  return JsonParser(text, max_depth).run(error);
}

}  // namespace hlts::util
