#include "util/json.hpp"

#include <cmath>
#include <cstdio>

namespace hlts::util {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::element() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!has_elements_.empty()) {
    if (has_elements_.back()) out_ += ',';
    has_elements_.back() = true;
  }
}

JsonWriter& JsonWriter::begin_object() {
  element();
  out_ += '{';
  has_elements_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  has_elements_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  element();
  out_ += '[';
  has_elements_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  has_elements_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& k) {
  element();
  out_ += '"';
  out_ += json_escape(k);
  out_ += "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  element();
  out_ += '"';
  out_ += json_escape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) { return value(std::string(v)); }

JsonWriter& JsonWriter::value(double v) {
  element();
  if (!std::isfinite(v)) {
    out_ += "null";  // JSON has no NaN/Inf
    return *this;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  element();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(int v) { return value(static_cast<std::int64_t>(v)); }

JsonWriter& JsonWriter::value(bool v) {
  element();
  out_ += v ? "true" : "false";
  return *this;
}

}  // namespace hlts::util
