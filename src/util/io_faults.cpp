#include "util/io_faults.hpp"

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <stdexcept>

#include "util/knobs.hpp"

namespace hlts::util::io_faults {

namespace {

struct SpecState {
  Spec spec;
  std::int64_t hits = 0;
  std::int64_t triggers = 0;
};

std::mutex g_mutex;
std::vector<SpecState>& states() {
  static std::vector<SpecState> s;
  return s;
}

/// splitmix64 -- same mixer as util/failpoint, so one (seed, counter) pair
/// produces one trigger sequence regardless of wall clock or thread timing.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double uniform01(std::uint64_t seed, std::uint64_t n) {
  return static_cast<double>(mix64(seed ^ mix64(n)) >> 11) * 0x1.0p-53;
}

bool parse_op(const std::string& text, Op* out) {
  if (text == "open") { *out = Op::Open; return true; }
  if (text == "write") { *out = Op::Write; return true; }
  if (text == "fsync") { *out = Op::Fsync; return true; }
  if (text == "rename") { *out = Op::Rename; return true; }
  return false;
}

bool parse_mode(const std::string& text, Mode* out) {
  if (text == "short") { *out = Mode::Short; return true; }
  if (text == "enospc") { *out = Mode::Enospc; return true; }
  if (text == "eio") { *out = Mode::Eio; return true; }
  return false;
}

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (;;) {
    const std::size_t end = text.find(sep, start);
    out.push_back(text.substr(start, end - start));
    if (end == std::string::npos) break;
    start = end + 1;
  }
  return out;
}

bool parse_spec(const std::string& text, Spec* out, std::string* error) {
  const std::vector<std::string> fields = split(text, ':');
  if (fields.size() < 4 || fields.size() > 5) {
    *error = "io-fault spec '" + text +
             "': expected op:mode:probability:seed[:param]";
    return false;
  }
  Spec spec;
  if (!parse_op(fields[0], &spec.op)) {
    *error = "io-fault spec '" + text + "': unknown op '" + fields[0] +
             "' (expected open|write|fsync|rename)";
    return false;
  }
  if (!parse_mode(fields[1], &spec.mode)) {
    *error = "io-fault spec '" + text + "': unknown mode '" + fields[1] +
             "' (expected short|enospc|eio)";
    return false;
  }
  if (spec.mode == Mode::Short && spec.op != Op::Write) {
    *error = "io-fault spec '" + text + "': mode 'short' applies to op "
             "'write' only";
    return false;
  }
  try {
    std::size_t pos = 0;
    spec.probability = std::stod(fields[2], &pos);
    if (pos != fields[2].size()) throw std::invalid_argument(fields[2]);
    spec.seed = std::stoull(fields[3], &pos);
    if (pos != fields[3].size()) throw std::invalid_argument(fields[3]);
    if (fields.size() == 5) {
      spec.param = std::stoll(fields[4], &pos);
      if (pos != fields[4].size()) throw std::invalid_argument(fields[4]);
    }
  } catch (const std::exception&) {
    *error = "io-fault spec '" + text + "': malformed number";
    return false;
  }
  if (spec.probability < 0 || spec.probability > 1) {
    *error = "io-fault spec '" + text + "': probability must be in [0, 1]";
    return false;
  }
  if (spec.param < 0) {
    *error = "io-fault spec '" + text + "': param must be >= 0";
    return false;
  }
  *out = spec;
  return true;
}

/// Arms from HLTS_IO_FAULTS once, before main().  A malformed value aborts
/// rather than running a chaos soak that silently injects nothing.
struct EnvInit {
  EnvInit() {
    const std::optional<std::string> env =
        knobs::read_string("HLTS_IO_FAULTS");
    if (!env) return;
    std::string error;
    if (!configure(*env, &error)) {
      std::fprintf(stderr, "HLTS_IO_FAULTS: %s\n", error.c_str());
      std::abort();
    }
  }
};
const EnvInit g_env_init;

}  // namespace

namespace detail {
std::atomic<bool> g_armed{false};
}  // namespace detail

const char* op_name(Op op) {
  switch (op) {
    case Op::Open: return "open";
    case Op::Write: return "write";
    case Op::Fsync: return "fsync";
    case Op::Rename: return "rename";
  }
  return "?";
}

const char* mode_name(Mode mode) {
  switch (mode) {
    case Mode::Short: return "short";
    case Mode::Enospc: return "enospc";
    case Mode::Eio: return "eio";
  }
  return "?";
}

bool configure(const std::string& spec_list, std::string* error) {
  std::vector<SpecState> parsed;
  if (!spec_list.empty()) {
    for (const std::string& text : split(spec_list, ',')) {
      Spec spec;
      std::string local_error;
      if (!parse_spec(text, &spec, &local_error)) {
        if (error != nullptr) *error = local_error;
        return false;
      }
      parsed.push_back(SpecState{spec, 0, 0});
    }
  }
  std::lock_guard<std::mutex> lock(g_mutex);
  states() = std::move(parsed);
  detail::g_armed.store(!states().empty(), std::memory_order_relaxed);
  return true;
}

void clear() {
  std::lock_guard<std::mutex> lock(g_mutex);
  states().clear();
  detail::g_armed.store(false, std::memory_order_relaxed);
}

std::vector<Spec> active() {
  std::lock_guard<std::mutex> lock(g_mutex);
  std::vector<Spec> out;
  for (const SpecState& s : states()) out.push_back(s.spec);
  return out;
}

std::vector<OpStats> stats() {
  std::lock_guard<std::mutex> lock(g_mutex);
  std::vector<OpStats> out;
  for (const SpecState& s : states()) {
    out.push_back(OpStats{op_name(s.spec.op), s.hits, s.triggers});
  }
  return out;
}

std::optional<Injected> consult(Op op) {
  std::lock_guard<std::mutex> lock(g_mutex);
  for (SpecState& s : states()) {
    if (s.spec.op != op) continue;
    const std::uint64_t draw = static_cast<std::uint64_t>(s.hits);
    ++s.hits;
    if (uniform01(s.spec.seed, draw) >= s.spec.probability) continue;
    if (s.spec.param > 0 && s.triggers >= s.spec.param) continue;
    ++s.triggers;
    return Injected{s.spec.mode};
  }
  return std::nullopt;
}

}  // namespace hlts::util::io_faults
