// Filesystem helpers for the durability layer (engine journal/checkpoints).
//
// The one primitive that matters is the atomic commit: journal records and
// checkpoints are written to `<path>.tmp`, fsync(2)ed, rename(2)d into
// place, and the parent directory is fsynced -- so a reader never observes
// a half-written final file (a crash mid-write leaves at most a torn
// `.tmp` the recovery scan ignores) and a *completed* rename survives
// power loss (the directory entry itself is durable, not just the data
// blocks).  Two failpoint sites bracket the commit:
//
//   journal.write   -- after the temp file holds only a prefix of the
//                      content (a kill here models a torn write),
//   journal.commit  -- after the temp file is complete but before the
//                      rename (a kill here models a crash between write
//                      and commit).
//
// Every durability syscall (open/write/fsync/rename) additionally consults
// util/io_faults, the injectable disk-fault shim: HLTS_IO_FAULTS can make
// any of them fail with ENOSPC/EIO or tear the write short, which is how
// the chaos grid proves the journal protocol survives a misbehaving disk.
//
// All functions report failure via hlts::Error(ErrorKind::Transient) --
// disk-full and permission hiccups are environmental, and the engine's
// retry/degrade machinery owns them -- except where noted.  ENOSPC is
// called out distinctly in the message ("disk full: ENOSPC") so operators
// can tell out-of-space from a failing device.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace hlts::util::fs {

/// Suffix of in-flight temp files; readers (list_files, recovery) skip it.
inline constexpr const char* kTempSuffix = ".tmp";

/// Creates `dir` (and parents).  No-op when it already exists.
void create_directories(const std::string& dir);

/// True when `path` names an existing regular file.
[[nodiscard]] bool file_exists(const std::string& path);

/// Whole-file read; nullopt when the file does not exist or is unreadable
/// (a torn or missing journal entry is a normal recovery-time case, not an
/// error).
[[nodiscard]] std::optional<std::string> read_file(const std::string& path);

/// Atomic durable whole-file write: content goes to `path + ".tmp"`, is
/// fsynced, renamed over `path`, and the parent directory is fsynced so
/// the commit survives power loss.  Either the old content or the new
/// content is visible, never a mixture.  Hits the `journal.write`
/// failpoint mid-write and `journal.commit` before the rename, and
/// consults util/io_faults at every syscall.
void write_file_atomic(const std::string& path, const std::string& content);

/// Deletes `path` if it exists; missing files are not an error.
void remove_file(const std::string& path);

/// rename(2)s `from` over `to` (same filesystem); throws Error(Transient)
/// on failure.  Used by the journal scrubber to quarantine corrupt files.
void rename_file(const std::string& from, const std::string& to);

/// Sorted names (not paths) of regular files directly inside `dir`,
/// excluding in-flight `.tmp` files.  Empty when the directory is missing.
[[nodiscard]] std::vector<std::string> list_files(const std::string& dir);

/// Like list_files but *including* `.tmp` leftovers -- the scrubber's view:
/// a stray temp file is evidence of an interrupted commit worth reporting.
[[nodiscard]] std::vector<std::string> list_all_files(const std::string& dir);

/// Replaces every character that is unsafe in a filename with '_' (path
/// separators, control bytes, shell-hostile punctuation).  Used to derive
/// journal filenames from job names like "ex/Ours".
[[nodiscard]] std::string sanitize_filename(const std::string& name);

}  // namespace hlts::util::fs
