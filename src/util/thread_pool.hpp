// Fixed-size reusable thread pool with a parallel_for/parallel_map API.
//
// Built for Algorithm 1's trial fan-out and the fault simulator's batch
// fan-out: many short-to-medium independent tasks, issued by one caller
// that blocks until all of them finish.  No work stealing -- workers pull
// indices from a shared atomic cursor, which is enough when tasks are
// coarse and their count is small.
//
// Concurrency contract:
//  - `parallel_for(n, fn)` runs fn(0..n-1) exactly once each and returns
//    after all calls finished.  The calling thread participates, so a pool
//    constructed with `threads = t` spawns t-1 workers and `threads = 1`
//    spawns none (the loop then runs inline, bit-identical to a plain for).
//  - Exceptions thrown by fn are caught and the one from the *lowest* index
//    is rethrown in the caller once the job drains, so error reporting does
//    not depend on thread scheduling.
//  - Calls are serialized: concurrent parallel_for calls from different
//    threads queue behind each other; a nested call from inside a worker
//    task of the same pool runs inline (no deadlock).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hlts::util {

class ThreadPool {
 public:
  /// `threads` is the total concurrency including the calling thread;
  /// 0 means default_threads().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total concurrency (workers + the participating caller).
  [[nodiscard]] std::size_t size() const { return workers_.size() + 1; }

  /// Runs fn(i) for every i in [0, n), blocking until all complete.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// parallel_for that collects fn(i) into a vector, in index order.
  template <typename T, typename F>
  [[nodiscard]] std::vector<T> parallel_map(std::size_t n, F&& fn) {
    std::vector<T> out(n);
    parallel_for(n, [&](std::size_t i) { out[i] = fn(i); });
    return out;
  }

  /// Thread count used when a caller asks for "auto": the HLTS_THREADS
  /// environment variable when set to a positive integer, otherwise
  /// std::thread::hardware_concurrency(), never less than 1.
  [[nodiscard]] static std::size_t default_threads();

  /// Process-wide shared pool sized default_threads().
  [[nodiscard]] static ThreadPool& global();

 private:
  void worker_loop();
  /// Pulls indices from next_ and executes them; used by workers and the
  /// caller alike.  Returns the number of indices executed.
  void run_indices(const std::function<void(std::size_t)>& fn, std::size_t n);

  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable work_cv_;  // workers wait here for a job
  std::condition_variable done_cv_;  // the caller waits here for completion

  // Current job, guarded by mutex_ (next_ is the lock-free cursor).
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::size_t job_n_ = 0;
  std::uint64_t generation_ = 0;
  std::atomic<std::size_t> next_{0};
  std::size_t done_ = 0;            // indices finished
  std::size_t active_workers_ = 0;  // workers inside run_indices
  std::exception_ptr error_;
  std::size_t error_index_ = 0;
  bool stop_ = false;

  // Serializes whole jobs so the pool can be shared between callers.
  std::mutex submit_mutex_;
};

}  // namespace hlts::util
