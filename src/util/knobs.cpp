#include "util/knobs.hpp"

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "util/error.hpp"

namespace hlts::util::knobs {

namespace {

const Knob kRegistry[] = {
    {"HLTS_THREADS", Kind::Int, OnMalformed::Ignore, "hardware concurrency",
     "util::ThreadPool::default_threads",
     "trial-evaluation worker count; values < 1 fall back to the default"},
    {"HLTS_INCREMENTAL", Kind::Flag, OnMalformed::Ignore, "1",
     "core::incremental_default",
     "0/false/off disables the incremental analysis layer (bit-identical "
     "either way)"},
    {"HLTS_SIMD_WIDTH", Kind::Int, OnMalformed::Ignore, "256",
     "atpg::resolve_simd_width",
     "fault-simulation packet width in lanes (64, 256 or 512); other values "
     "fall back to the default"},
    {"HLTS_FAILPOINTS", Kind::String, OnMalformed::Throw, "unset",
     "util::failpoint (static init)",
     "arms fault-injection sites, grammar site:mode:prob:seed[:param]; a "
     "malformed spec aborts the process before main"},
    {"HLTS_IO_FAULTS", Kind::String, OnMalformed::Throw, "unset",
     "util::io_faults (static init)",
     "injects disk faults into util/fs, grammar op:mode:prob:seed[:param] "
     "with ops open|write|fsync|rename and modes short|enospc|eio; a "
     "malformed spec aborts the process before main"},
    {"HLTS_NET_FAULTS", Kind::String, OnMalformed::Throw, "unset",
     "util::net_chaos (static init)",
     "injects network faults into chaos-enabled sockets, grammar "
     "op:mode:prob:seed[:param] with ops connect|read|write and modes "
     "reset|truncate|stall; a malformed spec aborts the process before main"},
    {"HLTS_CLIENT_CONNECT_TIMEOUT_MS", Kind::Int, OnMalformed::Throw, "10000",
     "serve::ClientOptions::from_env",
     "serve client connect timeout in ms; 0 blocks indefinitely"},
    {"HLTS_CLIENT_READ_TIMEOUT_MS", Kind::Int, OnMalformed::Throw,
     "0 (no timeout)", "serve::ClientOptions::from_env",
     "serve client per-response read timeout in ms; 0 waits forever "
     "(synthesis jobs can legitimately run long)"},
    {"HLTS_CLIENT_WRITE_TIMEOUT_MS", Kind::Int, OnMalformed::Throw, "10000",
     "serve::ClientOptions::from_env",
     "serve client send timeout in ms; 0 blocks indefinitely"},
    {"HLTS_CLIENT_RETRIES", Kind::Int, OnMalformed::Throw, "0",
     "serve::ClientOptions::from_env",
     "extra reconnect-and-resubmit attempts by serve::RetryClient after a "
     "transport failure; safe because retries reuse the request's "
     "flow_token and the supervisor deduplicates"},
    {"HLTS_SANITIZE", Kind::ConfigTime, OnMalformed::Throw, "unset",
     "CMakeLists.txt",
     "configure-time: 'thread' or 'address' builds the tree under TSan / "
     "ASan+UBSan"},
    {"HLTS_PODEM_DEBUG", Kind::Flag, OnMalformed::Ignore, "0",
     "atpg::podem",
     "verbose PODEM search tracing (0/false/off quiet, anything else "
     "verbose)"},
    {"HLTS_ATPG_BACKEND", Kind::String, OnMalformed::Ignore, "timeframe",
     "atpg::run_atpg (AtpgOptions::backend)",
     "deterministic ATPG mode: timeframe (random phase + time-frame PODEM), "
     "sat (SAT on the whole fault universe, no random phase), or hybrid "
     "(random phase + SAT on the survivors)"},
    {"HLTS_SAT_FRAMES", Kind::Int, OnMalformed::Ignore,
     "0 (two controller periods)", "atpg::run_atpg (AtpgOptions::sat_frames)",
     "time frames the SAT backend unrolls the netlist over; values < 1 fall "
     "back to the default"},
    {"HLTS_SAT_CONFLICT_BUDGET", Kind::Int, OnMalformed::Ignore, "20000",
     "atpg::run_atpg (AtpgOptions::sat_conflict_budget)",
     "per-fault CDCL conflict budget before the SAT backend aborts a "
     "target; values < 1 fall back to the default"},
    {"HLTS_JOURNAL_DIR", Kind::String, OnMalformed::Throw, "unset",
     "engine::EngineOptions::from_env",
     "write-ahead job journal + checkpoint directory for the batch engine"},
    {"HLTS_QUEUE_CAP", Kind::Size, OnMalformed::Throw, "unbounded",
     "engine::EngineOptions::from_env",
     "admission-control bound on the engine's pending queue"},
    {"HLTS_MEM_BUDGET", Kind::Size, OnMalformed::Throw, "0 (unlimited)",
     "engine::EngineOptions::from_env",
     "default per-job working-set budget in bytes"},
    {"HLTS_SERVE_SHARDS", Kind::Int, OnMalformed::Throw, "4",
     "serve::ServeOptions::from_env",
     "worker processes forked by hlts_serve, one engine + journal dir each"},
    {"HLTS_SERVE_PORT", Kind::Int, OnMalformed::Throw, "0 (ephemeral)",
     "serve::ServeOptions::from_env",
     "TCP port hlts_serve listens on; 0 lets the kernel pick"},
    {"HLTS_SERVE_MAX_REQUEST_BYTES", Kind::Size, OnMalformed::Throw,
     "4194304", "serve::ServeOptions::from_env",
     "upper bound on one wire-protocol request line; longer requests are "
     "rejected before parsing"},
    {"HLTS_CODEL_TARGET_MS", Kind::Int, OnMalformed::Throw, "0 (off)",
     "engine::EngineOptions::from_env",
     "CoDel adaptive shedding: acceptable dispatch-time sojourn in ms; jobs "
     "are shed once sojourn stays above this for a full interval, and the "
     "shed rate returns to zero on recovery"},
    {"HLTS_CODEL_INTERVAL_MS", Kind::Int, OnMalformed::Throw, "100",
     "engine::EngineOptions::from_env",
     "CoDel persistence window and control-law base period in ms"},
    {"HLTS_SERVE_RESPAWN", Kind::Flag, OnMalformed::Ignore, "0",
     "serve::ServeOptions::from_env",
     "self-healing shard lifecycle: respawn dead workers with capped "
     "exponential backoff, recover their journals and rejoin the ring; "
     "crash-looping shards are quarantined"},
    {"HLTS_SERVE_BREAKER_FAILURES", Kind::Int, OnMalformed::Throw, "3",
     "serve::ServeOptions::from_env",
     "consecutive per-shard failures that trip the circuit breaker open; "
     "routing avoids open shards until a half-open probe succeeds"},
    {"HLTS_SERVE_HEDGE", Kind::Flag, OnMalformed::Ignore, "0",
     "serve::ServeOptions::from_env",
     "hedged requests: a submit stuck past a p99-derived delay is re-issued "
     "to a second shard, first result wins, the loser is cancelled"},
};

const char* kind_name(Kind k) {
  switch (k) {
    case Kind::Int: return "int";
    case Kind::Size: return "size";
    case Kind::Flag: return "flag";
    case Kind::String: return "string";
    case Kind::ConfigTime: return "configure-time";
  }
  return "?";
}

/// Registered row of `name`, with the kind the caller expects; refusing
/// unregistered reads is the audit that keeps the table complete.
const Knob& checked(const char* name, Kind kind) {
  const Knob* k = find(name);
  HLTS_REQUIRE(k != nullptr,
               std::string("knob '") + name + "' read without a registry row");
  HLTS_REQUIRE(k->kind == kind,
               std::string("knob '") + name + "' is registered as " +
                   kind_name(k->kind) + ", read as " + kind_name(kind));
  return *k;
}

/// Raw environment value; nullopt when unset or empty (empty has always
/// meant "unset" for every knob in the tree).
std::optional<std::string> raw(const char* name) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return std::nullopt;
  return std::string(v);
}

std::optional<long long> parse_ll(const Knob& knob, const std::string& text) {
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(text.c_str(), &end, 10);
  if (errno != 0 || end == nullptr || *end != '\0' || end == text.c_str()) {
    if (knob.on_malformed == OnMalformed::Throw) {
      throw Error(std::string(knob.name) + " is not an integer: '" + text + "'",
                  ErrorKind::Input);
    }
    return std::nullopt;
  }
  return v;
}

}  // namespace

const std::vector<Knob>& registry() {
  static const std::vector<Knob> table(std::begin(kRegistry),
                                       std::end(kRegistry));
  return table;
}

const Knob* find(const std::string& name) {
  for (const Knob& k : registry()) {
    if (name == k.name) return &k;
  }
  return nullptr;
}

std::optional<long long> read_int(const char* name) {
  const Knob& knob = checked(name, Kind::Int);
  const std::optional<std::string> text = raw(name);
  if (!text) return std::nullopt;
  return parse_ll(knob, *text);
}

std::optional<std::size_t> read_size(const char* name) {
  const Knob& knob = checked(name, Kind::Size);
  const std::optional<std::string> text = raw(name);
  if (!text) return std::nullopt;
  const std::optional<long long> v = parse_ll(knob, *text);
  if (!v) return std::nullopt;
  if (*v < 0) {
    if (knob.on_malformed == OnMalformed::Throw) {
      throw Error(std::string(knob.name) + " must be >= 0", ErrorKind::Input);
    }
    return std::nullopt;
  }
  return static_cast<std::size_t>(*v);
}

std::optional<bool> read_flag(const char* name) {
  checked(name, Kind::Flag);
  const std::optional<std::string> text = raw(name);
  if (!text) return std::nullopt;
  return !(*text == "0" || *text == "false" || *text == "off");
}

std::optional<std::string> read_string(const char* name) {
  checked(name, Kind::String);
  return raw(name);
}

JsonValue to_json() {
  JsonValue::Array knobs;
  for (const Knob& k : registry()) {
    JsonValue::Object o{
        {"name", JsonValue::make_string(k.name)},
        {"kind", JsonValue::make_string(kind_name(k.kind))},
        {"on_malformed",
         JsonValue::make_string(k.on_malformed == OnMalformed::Throw
                                    ? "throw"
                                    : "ignore")},
        {"default", JsonValue::make_string(k.default_str)},
        {"consumer", JsonValue::make_string(k.consumer)},
        {"summary", JsonValue::make_string(k.summary)},
    };
    const std::optional<std::string> value = raw(k.name);
    o.emplace_back("value", value ? JsonValue::make_string(*value)
                                  : JsonValue::make_null());
    knobs.push_back(JsonValue::make_object(std::move(o)));
  }
  return JsonValue::make_object({
      {"knobs", JsonValue::make_array(std::move(knobs))},
  });
}

}  // namespace hlts::util::knobs
