// Bump-pointer arena for trial-scoped POD state.
//
// The per-trial hot path (etpn::apply_merge_patch's undo log, its internal
// worklists, the rewritten adjacency spans) used to allocate dozens of
// small node-level vectors per candidate merger.  An Arena turns all of
// that into pointer bumps over a handful of retained blocks: reset() at a
// trial boundary rewinds the pointers without freeing, so the steady-state
// heap-allocation count of a trial is zero (bench/micro_perf counts it).
//
// Alignment contract: every carve is aligned to the requested alignment
// (at least alignof(std::max_align_t) never exceeded -- allocate() rejects
// stricter requests), and block bases come from operator new, so
// arena-carved SoA blocks satisfy alignof(T) for every POD T stored in
// them.  tests/test_layout.cpp audits this with alignof over the carve
// types used by the patch path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <vector>

#include "util/error.hpp"

namespace hlts::util {

class Arena {
 public:
  explicit Arena(std::size_t first_block_bytes = 16 * 1024)
      : first_block_bytes_(first_block_bytes < 64 ? 64 : first_block_bytes) {}
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  Arena(Arena&&) = default;
  Arena& operator=(Arena&&) = default;

  /// Carves `bytes` aligned to `align` (a power of two, at most
  /// alignof(std::max_align_t)).  Memory is uninitialized and valid until
  /// the next reset().
  void* allocate(std::size_t bytes, std::size_t align) {
    HLTS_REQUIRE(align != 0 && (align & (align - 1)) == 0 &&
                     align <= alignof(std::max_align_t),
                 "arena: unsupported alignment");
    if (bytes == 0) bytes = 1;
    while (current_ < blocks_.size()) {
      Block& b = blocks_[current_];
      const std::size_t base =
          (b.used + align - 1) & ~static_cast<std::size_t>(align - 1);
      if (base + bytes <= b.size) {
        b.used = base + bytes;
        return b.data.get() + base;
      }
      // This block is full for a request of this size; later allocations
      // may still be served by fresh blocks (never rewind past reset()).
      ++current_;
    }
    const std::size_t last = blocks_.empty() ? first_block_bytes_ / 2
                                             : blocks_.back().size;
    std::size_t size = last * 2;
    if (size < bytes + align) size = bytes + align;
    blocks_.push_back(Block{std::make_unique<std::byte[]>(size), size, 0});
    current_ = blocks_.size() - 1;
    Block& b = blocks_.back();
    b.used = bytes;
    return b.data.get();
  }

  template <typename T>
  [[nodiscard]] T* alloc_array(std::size_t n) {
    static_assert(std::is_trivially_copyable_v<T> &&
                      std::is_trivially_destructible_v<T>,
                  "arena only stores PODs");
    return static_cast<T*>(allocate(n * sizeof(T), alignof(T)));
  }

  /// Rewinds every block; capacity is retained for the next generation.
  /// All previously carved memory is invalidated.
  void reset() {
    for (Block& b : blocks_) b.used = 0;
    current_ = 0;
  }

  [[nodiscard]] std::size_t bytes_used() const {
    std::size_t n = 0;
    for (const Block& b : blocks_) n += b.used;
    return n;
  }
  [[nodiscard]] std::size_t bytes_reserved() const {
    std::size_t n = 0;
    for (const Block& b : blocks_) n += b.size;
    return n;
  }
  [[nodiscard]] std::size_t num_blocks() const { return blocks_.size(); }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
    std::size_t used = 0;
  };
  std::size_t first_block_bytes_;
  std::vector<Block> blocks_;
  std::size_t current_ = 0;
};

/// Minimal growable POD array carved from an Arena.  Growth relocates into
/// a fresh carve (the old region is wasted until the arena resets), which
/// is fine for trial-scoped scratch whose lifetime is one arena generation.
/// Not owning: the arena must outlive the vector, and reset() invalidates
/// its contents.
template <typename T>
class PodVec {
  static_assert(std::is_trivially_copyable_v<T> &&
                std::is_trivially_destructible_v<T>);

 public:
  PodVec() = default;
  explicit PodVec(Arena& arena) : arena_(&arena) {}
  PodVec(const PodVec&) = delete;
  PodVec& operator=(const PodVec&) = delete;
  PodVec(PodVec&& o) noexcept { *this = static_cast<PodVec&&>(o); }
  PodVec& operator=(PodVec&& o) noexcept {
    arena_ = o.arena_;
    data_ = o.data_;
    size_ = o.size_;
    cap_ = o.cap_;
    o.data_ = nullptr;
    o.size_ = o.cap_ = 0;
    return *this;
  }

  void bind(Arena& arena) { arena_ = &arena; }

  void push_back(const T& v) {
    if (size_ == cap_) grow(size_ + 1);
    data_[size_++] = v;
  }
  void append(const T* src, std::size_t n) {
    if (size_ + n > cap_) grow(size_ + n);
    if (n != 0) std::memcpy(data_ + size_, src, n * sizeof(T));
    size_ += n;
  }
  void reserve(std::size_t n) {
    if (n > cap_) grow(n);
  }
  void clear() { size_ = 0; }
  void resize_down(std::size_t n) {
    HLTS_REQUIRE(n <= size_, "PodVec: resize_down grows");
    size_ = n;
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] T* data() { return data_; }
  [[nodiscard]] const T* data() const { return data_; }
  [[nodiscard]] T& operator[](std::size_t i) { return data_[i]; }
  [[nodiscard]] const T& operator[](std::size_t i) const { return data_[i]; }
  [[nodiscard]] T* begin() { return data_; }
  [[nodiscard]] T* end() { return data_ + size_; }
  [[nodiscard]] const T* begin() const { return data_; }
  [[nodiscard]] const T* end() const { return data_ + size_; }
  [[nodiscard]] T& back() { return data_[size_ - 1]; }

 private:
  void grow(std::size_t need) {
    HLTS_REQUIRE(arena_ != nullptr, "PodVec: not bound to an arena");
    std::size_t cap = cap_ == 0 ? 8 : cap_ * 2;
    if (cap < need) cap = need;
    T* next = arena_->alloc_array<T>(cap);
    if (size_ != 0) std::memcpy(next, data_, size_ * sizeof(T));
    data_ = next;
    cap_ = cap;
  }

  Arena* arena_ = nullptr;
  T* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t cap_ = 0;
};

}  // namespace hlts::util
