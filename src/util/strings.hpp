// Small string helpers shared across modules.
#pragma once

#include <string>
#include <vector>

namespace hlts {

/// Joins `parts` with `sep`: join({"a","b"}, ", ") == "a, b".
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               const std::string& sep);

/// Formats `value` with `digits` digits after the decimal point.
[[nodiscard]] std::string format_fixed(double value, int digits);

/// Formats a fraction as a percentage string, e.g. 0.9066 -> "90.66%".
[[nodiscard]] std::string format_percent(double fraction, int digits = 2);

/// True if `s` starts with `prefix`.
[[nodiscard]] bool starts_with(const std::string& s, const std::string& prefix);

/// Left-pads or truncates `s` to exactly `width` characters.
[[nodiscard]] std::string pad_right(const std::string& s, std::size_t width);
[[nodiscard]] std::string pad_left(const std::string& s, std::size_t width);

}  // namespace hlts
