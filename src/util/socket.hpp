// Thin POSIX TCP/socketpair wrappers for the serving layer (src/serve).
//
// Deliberately minimal and dependency-free: blocking file descriptors, RAII
// ownership, EINTR-restarting read/write loops, and a size-capped line
// reader -- everything the line-protocol server needs and nothing more.
// Failures report as hlts::Error(ErrorKind::Transient): network and peer
// hiccups are environmental, and the caller owns the retry policy.
//
// The same Fd/line primitives serve both transports: TCP sockets between
// clients and the hlts_serve supervisor, and AF_UNIX socketpairs between
// the supervisor and its forked shard workers.
//
// Two opt-in extensions added for the chaos harness:
//   - timeouts: connect_local takes a timeout, LineReader takes a read
//     timeout and write_all honors a send timeout set via
//     set_send_timeout_ms -- a stalled peer becomes a Transient error
//     instead of a forever-block;
//   - chaos: connect_local/write_all take a `chaos` flag and LineReader
//     has enable_chaos(); enabled paths consult util/net_chaos
//     (HLTS_NET_FAULTS) and can see injected resets, truncations and
//     stalls.  Chaos is strictly per call site: the supervisor<->worker
//     socketpairs in the same process never opt in, so arming the shim in
//     a test process only perturbs the client connections under test.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <utility>

namespace hlts::util::net {

/// Owning file descriptor.  Movable, closes on destruction; -1 = empty.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { close(); }
  Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  [[nodiscard]] int get() const { return fd_; }
  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  /// Releases ownership (caller closes).
  [[nodiscard]] int release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void close();

 private:
  int fd_ = -1;
};

/// Listening IPv4 TCP socket bound to 127.0.0.1:`port` (0 = kernel-chosen
/// ephemeral port; `port()` reports the actual one).  SO_REUSEADDR is set so
/// test servers can rebind promptly.
class Listener {
 public:
  explicit Listener(int port);

  [[nodiscard]] int port() const { return port_; }
  /// Blocks for one connection; empty Fd when the listener was shut down
  /// (close_now from another thread) rather than on transient errors.
  [[nodiscard]] Fd accept();
  /// Closes the fd outright.  Only safe when no thread is blocked in
  /// accept() (e.g. a forked child dropping its inherited copy) -- close()
  /// does NOT wake a blocked accept() on Linux, and the fd number could be
  /// reused under the accepting thread.
  void close_now();
  /// ::shutdown()s the listening socket, waking a blocked accept() in
  /// another thread (it returns an empty Fd).  The fd itself stays open
  /// until destruction, so there is no fd-reuse race.  NOT for forked
  /// children: shutdown() acts on the shared socket object and would kill
  /// the parent's listener too.
  void shutdown_now();

 private:
  Fd fd_;
  int port_ = 0;
};

/// Connect to 127.0.0.1:`port`; throws Error(Transient) on refusal.
/// `timeout_ms` > 0 bounds the connect (non-blocking + poll; expiry throws
/// Error(Transient) mentioning "timeout"); 0 blocks indefinitely.  With
/// `chaos`, consults util/net_chaos: an injected connect reset throws, a
/// stall sleeps first.
[[nodiscard]] Fd connect_local(int port, int timeout_ms = 0,
                               bool chaos = false);

/// AF_UNIX stream socketpair (supervisor <-> forked worker transport).
[[nodiscard]] std::pair<Fd, Fd> socket_pair();

/// Sends one byte of `payload` plus the file descriptor `fd_to_send` over
/// an AF_UNIX socket (SCM_RIGHTS ancillary data).  The spawner/zygote
/// transport: a single-threaded child forks new shard workers and hands
/// the supervisor end of each worker socketpair back to the multithreaded
/// parent, which could not fork safely itself.  Throws Error(Transient)
/// when the peer is gone.
void send_fd(int sock, int fd_to_send, char payload);

/// Receives one byte + one descriptor sent by send_fd.  Returns nullopt on
/// orderly EOF; throws Error(Transient) on a malformed message (no
/// descriptor attached) or a socket error.
[[nodiscard]] std::optional<std::pair<Fd, char>> recv_fd(int sock);

/// Writes all of `data`, restarting on EINTR; throws Error(Transient) when
/// the peer is gone or a send timeout (set_send_timeout_ms) expires.
/// SIGPIPE is suppressed (MSG_NOSIGNAL / signal mask).  With `chaos`, an
/// injected write reset throws, a truncation sends a prefix and then
/// throws (the peer sees a torn frame), a stall sleeps first.
void write_all(int fd, const std::string& data, bool chaos = false);

/// Kernel-level send timeout (SO_SNDTIMEO); 0 disables.  An expired send
/// surfaces from write_all as Error(Transient) mentioning "timeout".
void set_send_timeout_ms(int fd, int timeout_ms);

/// ::shutdown(fd, SHUT_RDWR) -- unblocks a reader in another thread without
/// racing fd reuse the way close() would.  Safe on an already-shut-down fd.
void shutdown_fd(int fd);

/// Buffered, size-capped line reader: framing for the NDJSON wire protocol.
/// One LineReader per fd; lines are returned without the trailing '\n'.
class LineReader {
 public:
  explicit LineReader(int fd, std::size_t max_line_bytes)
      : fd_(fd), max_line_(max_line_bytes) {}

  /// A read blocked longer than this throws Error(Transient) mentioning
  /// "timeout"; 0 (default) waits forever.  Buffered complete lines are
  /// still returned without touching the socket.
  void set_read_timeout_ms(int timeout_ms) { read_timeout_ms_ = timeout_ms; }

  /// Routes reads through util/net_chaos (HLTS_NET_FAULTS): injected
  /// resets end the stream, truncations deliver a partial frame and then
  /// EOF, stalls sleep (slow-loris when probabilistic).
  void enable_chaos() { chaos_ = true; }

  /// Next line, or nullopt on orderly EOF / peer reset.  A line longer than
  /// the cap throws Error(Input) -- the serving layer's document-size guard:
  /// oversized requests are refused before any JSON parsing.
  [[nodiscard]] std::optional<std::string> read_line();

 private:
  int fd_;
  std::size_t max_line_;
  std::string buffer_;
  std::size_t scanned_ = 0;  ///< prefix of buffer_ known to hold no '\n'
  int read_timeout_ms_ = 0;
  bool chaos_ = false;
  bool chaos_eof_ = false;  ///< an injected truncation ended the stream
};

}  // namespace hlts::util::net
