// Minimal JSON emission and parsing (trace exports, hlts_batch, the engine
// journal).
//
// JsonWriter tracks nesting and comma placement; values are escaped per
// RFC 8259, doubles printed round-trippably.  The writer side predates the
// parser: reports were consumed by external tooling only.  The durability
// layer (engine journal + checkpoint recovery) made the repo its own JSON
// consumer, so json_parse() implements the matching reader -- a strict
// recursive-descent RFC 8259 parser with a nesting-depth cap, built to be
// fed adversarial bytes (truncated/torn journal files) and always return a
// diagnostic instead of throwing or overflowing the stack.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace hlts::util {

/// Escapes `s` for inclusion inside a JSON string literal (no quotes
/// added).  Wire-hardened: the output is pure ASCII -- control bytes and
/// DEL use \u00xx escapes, valid UTF-8 is \u-escaped by code point
/// (surrogate pairs above the BMP), and invalid UTF-8 bytes become U+FFFD.
[[nodiscard]] std::string json_escape(const std::string& s);

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();
  /// Object member key; must be followed by a value or begin_*.
  JsonWriter& key(const std::string& k);
  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v);
  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v);
  JsonWriter& value(bool v);
  /// Splices pre-serialized JSON in as one value (caller guarantees it is a
  /// complete, valid document fragment -- e.g. json_dump output).
  JsonWriter& raw_value(const std::string& json);
  JsonWriter& null_value();

  [[nodiscard]] const std::string& str() const { return out_; }

 private:
  /// Emits the separating comma when a container already has an element.
  void element();

  std::string out_;
  std::vector<bool> has_elements_;  // per open container
  bool after_key_ = false;
};

/// A parsed JSON document node.  Numbers keep both representations: the
/// journal stores iteration counts, byte budgets and id arrays that must
/// round-trip exactly through std::int64_t, while metrics are doubles.
class JsonValue {
 public:
  enum class Type { Null, Bool, Number, String, Array, Object };

  using Array = std::vector<JsonValue>;
  /// Members in document order (journal records are small; linear lookup
  /// beats a map and keeps the order stable for tests).
  using Object = std::vector<std::pair<std::string, JsonValue>>;

  JsonValue() = default;

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool is_null() const { return type_ == Type::Null; }
  [[nodiscard]] bool is_bool() const { return type_ == Type::Bool; }
  [[nodiscard]] bool is_number() const { return type_ == Type::Number; }
  [[nodiscard]] bool is_string() const { return type_ == Type::String; }
  [[nodiscard]] bool is_array() const { return type_ == Type::Array; }
  [[nodiscard]] bool is_object() const { return type_ == Type::Object; }

  [[nodiscard]] bool as_bool() const { return bool_; }
  [[nodiscard]] double as_double() const { return num_; }
  /// Exact when the literal was integral and in range; otherwise the
  /// truncated double (callers validate with is_int()).
  [[nodiscard]] std::int64_t as_int() const { return int_; }
  [[nodiscard]] bool is_int() const { return type_ == Type::Number && exact_int_; }
  [[nodiscard]] const std::string& as_string() const { return str_; }
  [[nodiscard]] const Array& as_array() const { return arr_; }
  [[nodiscard]] const Object& as_object() const { return obj_; }

  /// First member named `key`, or nullptr.
  [[nodiscard]] const JsonValue* find(const std::string& key) const;

  /// Typed member lookups for record readers: return the fallback when the
  /// member is absent or of the wrong type (readers that must *distinguish*
  /// absence use find()).
  [[nodiscard]] std::int64_t get_int(const std::string& key,
                                     std::int64_t fallback = 0) const;
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback = 0) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback = false) const;
  [[nodiscard]] std::string get_string(const std::string& key,
                                       const std::string& fallback = "") const;

  static JsonValue make_null();
  static JsonValue make_bool(bool v);
  static JsonValue make_number(double v);
  static JsonValue make_int(std::int64_t v);
  static JsonValue make_string(std::string v);
  static JsonValue make_array(Array v);
  static JsonValue make_object(Object v);

 private:
  Type type_ = Type::Null;
  bool bool_ = false;
  double num_ = 0;
  std::int64_t int_ = 0;
  bool exact_int_ = false;
  std::string str_;
  Array arr_;
  Object obj_;
};

/// Strict RFC 8259 parse of a complete document (one value plus trailing
/// whitespace).  Returns nullopt and fills `*error` with a position-tagged
/// message on malformed input; never throws on bad bytes.  `max_depth`
/// bounds container nesting so adversarial input cannot overflow the stack.
[[nodiscard]] std::optional<JsonValue> json_parse(const std::string& text,
                                                  std::string* error = nullptr,
                                                  int max_depth = 64);

/// Serializes a document tree back to compact text.  Exact round-trip with
/// json_parse: integral numbers re-emit as int64 literals, doubles with 17
/// significant digits.
[[nodiscard]] std::string json_dump(const JsonValue& v);

}  // namespace hlts::util
