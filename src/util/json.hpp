// Minimal JSON emission for reports (trace exports, hlts_batch).
//
// Writer-only: the repo consumes JSON with external tooling, never parses
// it back.  JsonWriter tracks nesting and comma placement; values are
// escaped per RFC 8259, doubles printed round-trippably.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hlts::util {

/// Escapes `s` for inclusion inside a JSON string literal (no quotes added).
[[nodiscard]] std::string json_escape(const std::string& s);

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();
  /// Object member key; must be followed by a value or begin_*.
  JsonWriter& key(const std::string& k);
  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v);
  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v);
  JsonWriter& value(bool v);

  [[nodiscard]] const std::string& str() const { return out_; }

 private:
  /// Emits the separating comma when a container already has an element.
  void element();

  std::string out_;
  std::vector<bool> has_elements_;  // per open container
  bool after_key_ = false;
};

}  // namespace hlts::util
