#include "util/error.hpp"

#include <new>
#include <sstream>

namespace hlts {

const char* error_kind_name(ErrorKind kind) {
  switch (kind) {
    case ErrorKind::Transient: return "transient";
    case ErrorKind::Input: return "input";
    case ErrorKind::Internal: return "internal";
  }
  return "?";
}

ErrorKind classify_exception(const std::exception& e) {
  if (const auto* err = dynamic_cast<const Error*>(&e)) return err->kind();
  if (dynamic_cast<const std::bad_alloc*>(&e) != nullptr) {
    return ErrorKind::Transient;
  }
  return ErrorKind::Internal;
}

void throw_error(const char* file, int line, const std::string& message,
                 ErrorKind kind) {
  std::ostringstream os;
  os << message << " (" << file << ":" << line << ")";
  throw Error(os.str(), kind);
}

}  // namespace hlts
