#include "util/error.hpp"

#include <sstream>

namespace hlts {

void throw_error(const char* file, int line, const std::string& message) {
  std::ostringstream os;
  os << message << " (" << file << ":" << line << ")";
  throw Error(os.str());
}

}  // namespace hlts
