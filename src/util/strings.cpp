#include "util/strings.hpp"

#include <cmath>
#include <cstdio>

namespace hlts {

std::string join(const std::vector<std::string>& parts, const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string format_fixed(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, value);
  return buf;
}

std::string format_percent(double fraction, int digits) {
  return format_fixed(fraction * 100.0, digits) + "%";
}

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

std::string pad_right(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s.substr(0, width);
  return s + std::string(width - s.size(), ' ');
}

std::string pad_left(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s.substr(0, width);
  return std::string(width - s.size(), ' ') + s;
}

}  // namespace hlts
