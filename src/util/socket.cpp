#include "util/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "util/error.hpp"
#include "util/net_chaos.hpp"

namespace hlts::util::net {

namespace {

[[noreturn]] void sys_fail(const std::string& what) {
  throw Error(what + ": " + std::strerror(errno), ErrorKind::Transient);
}

void chaos_sleep(std::int64_t ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

void set_nonblocking(int fd, bool on) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) sys_fail("fcntl(F_GETFL)");
  const int want = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(fd, F_SETFL, want) < 0) sys_fail("fcntl(F_SETFL)");
}

}  // namespace

void Fd::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Listener::Listener(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) sys_fail("socket");
  fd_ = Fd(fd);
  const int one = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    sys_fail("bind 127.0.0.1:" + std::to_string(port));
  }
  if (::listen(fd, 128) != 0) sys_fail("listen");
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    sys_fail("getsockname");
  }
  port_ = static_cast<int>(ntohs(addr.sin_port));
}

Fd Listener::accept() {
  while (true) {
    const int fd = ::accept(fd_.get(), nullptr, nullptr);
    if (fd >= 0) return Fd(fd);
    if (errno == EINTR) continue;
    // EBADF/EINVAL after close_now() is the orderly-shutdown signal; any
    // other failure on a loopback listener is equally terminal for the
    // accept loop.
    return Fd();
  }
}

void Listener::close_now() { fd_.close(); }

void Listener::shutdown_now() { shutdown_fd(fd_.get()); }

Fd connect_local(int port, int timeout_ms, bool chaos) {
  if (chaos && net_chaos::armed()) {
    if (const auto fault = net_chaos::consult(net_chaos::Op::Connect)) {
      if (fault->mode == net_chaos::Mode::Stall) {
        chaos_sleep(fault->param);
      } else {
        throw Error("connect 127.0.0.1:" + std::to_string(port) +
                        ": injected connection reset",
                    ErrorKind::Transient);
      }
    }
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) sys_fail("socket");
  Fd out(fd);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (timeout_ms <= 0) {
    while (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
           0) {
      if (errno == EINTR) continue;
      sys_fail("connect 127.0.0.1:" + std::to_string(port));
    }
    return out;
  }
  // Bounded connect: non-blocking + poll for writability, then read the
  // final status from SO_ERROR.
  set_nonblocking(fd, true);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    if (errno != EINPROGRESS && errno != EINTR) {
      sys_fail("connect 127.0.0.1:" + std::to_string(port));
    }
    pollfd pfd{fd, POLLOUT, 0};
    while (true) {
      const int rc = ::poll(&pfd, 1, timeout_ms);
      if (rc > 0) break;
      if (rc == 0) {
        throw Error("connect 127.0.0.1:" + std::to_string(port) +
                        ": timeout after " + std::to_string(timeout_ms) + "ms",
                    ErrorKind::Transient);
      }
      if (errno != EINTR) sys_fail("poll(connect)");
    }
    int err = 0;
    socklen_t len = sizeof err;
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0) {
      sys_fail("getsockopt(SO_ERROR)");
    }
    if (err != 0) {
      throw Error("connect 127.0.0.1:" + std::to_string(port) + ": " +
                      std::strerror(err),
                  ErrorKind::Transient);
    }
  }
  set_nonblocking(fd, false);
  return out;
}

std::pair<Fd, Fd> socket_pair() {
  int fds[2] = {-1, -1};
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) sys_fail("socketpair");
  return {Fd(fds[0]), Fd(fds[1])};
}

void send_fd(int sock, int fd_to_send, char payload) {
  msghdr msg{};
  iovec iov{};
  iov.iov_base = &payload;
  iov.iov_len = 1;
  msg.msg_iov = &iov;
  msg.msg_iovlen = 1;
  alignas(cmsghdr) char control[CMSG_SPACE(sizeof(int))] = {};
  msg.msg_control = control;
  msg.msg_controllen = sizeof control;
  cmsghdr* cmsg = CMSG_FIRSTHDR(&msg);
  cmsg->cmsg_level = SOL_SOCKET;
  cmsg->cmsg_type = SCM_RIGHTS;
  cmsg->cmsg_len = CMSG_LEN(sizeof(int));
  std::memcpy(CMSG_DATA(cmsg), &fd_to_send, sizeof(int));
  while (::sendmsg(sock, &msg, MSG_NOSIGNAL) < 0) {
    if (errno != EINTR) sys_fail("sendmsg(SCM_RIGHTS)");
  }
}

std::optional<std::pair<Fd, char>> recv_fd(int sock) {
  msghdr msg{};
  char payload = 0;
  iovec iov{};
  iov.iov_base = &payload;
  iov.iov_len = 1;
  msg.msg_iov = &iov;
  msg.msg_iovlen = 1;
  alignas(cmsghdr) char control[CMSG_SPACE(sizeof(int))] = {};
  msg.msg_control = control;
  msg.msg_controllen = sizeof control;
  ssize_t n;
  while ((n = ::recvmsg(sock, &msg, 0)) < 0) {
    if (errno != EINTR) sys_fail("recvmsg(SCM_RIGHTS)");
  }
  if (n == 0) return std::nullopt;  // peer closed: orderly EOF
  for (cmsghdr* cmsg = CMSG_FIRSTHDR(&msg); cmsg != nullptr;
       cmsg = CMSG_NXTHDR(&msg, cmsg)) {
    if (cmsg->cmsg_level == SOL_SOCKET && cmsg->cmsg_type == SCM_RIGHTS &&
        cmsg->cmsg_len == CMSG_LEN(sizeof(int))) {
      int fd = -1;
      std::memcpy(&fd, CMSG_DATA(cmsg), sizeof(int));
      return std::make_pair(Fd(fd), payload);
    }
  }
  throw Error("recvmsg: message carried no descriptor", ErrorKind::Transient);
}

void set_send_timeout_ms(int fd, int timeout_ms) {
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  if (::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv) != 0) {
    sys_fail("setsockopt(SO_SNDTIMEO)");
  }
}

void write_all(int fd, const std::string& data, bool chaos) {
  std::size_t limit = data.size();
  bool injected_truncate = false;
  if (chaos && net_chaos::armed()) {
    if (const auto fault = net_chaos::consult(net_chaos::Op::Write)) {
      switch (fault->mode) {
        case net_chaos::Mode::Stall:
          chaos_sleep(fault->param);
          break;
        case net_chaos::Mode::Reset:
          throw Error("write: injected connection reset",
                      ErrorKind::Transient);
        case net_chaos::Mode::Truncate:
          limit = std::min(limit, static_cast<std::size_t>(fault->param));
          injected_truncate = true;
          break;
      }
    }
  }
  std::size_t off = 0;
  while (off < limit) {
#ifdef MSG_NOSIGNAL
    const ssize_t n =
        ::send(fd, data.data() + off, limit - off, MSG_NOSIGNAL);
#else
    const ssize_t n = ::write(fd, data.data() + off, limit - off);
#endif
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      throw Error("write: send timeout", ErrorKind::Transient);
    }
    sys_fail("write");
  }
  if (injected_truncate) {
    // The peer got a torn frame; tell it so (and the caller too).
    (void)::shutdown(fd, SHUT_WR);
    throw Error("write: injected truncation after " + std::to_string(limit) +
                    " bytes",
                ErrorKind::Transient);
  }
}

void shutdown_fd(int fd) {
  if (fd >= 0) (void)::shutdown(fd, SHUT_RDWR);
}

std::optional<std::string> LineReader::read_line() {
  while (true) {
    // Scan only bytes not examined before (scanned_ is monotone).
    const std::size_t nl = buffer_.find('\n', scanned_);
    if (nl != std::string::npos) {
      std::string line = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      scanned_ = 0;
      return line;
    }
    scanned_ = buffer_.size();
    if (buffer_.size() > max_line_) {
      throw Error("wire: request line exceeds " + std::to_string(max_line_) +
                      " bytes",
                  ErrorKind::Input);
    }
    // An injected truncation earlier delivered a partial frame; the rest
    // of the stream is gone, like a peer that died mid-send.
    if (chaos_eof_) return std::nullopt;
    std::size_t keep = 4096;
    if (chaos_ && net_chaos::armed()) {
      if (const auto fault = net_chaos::consult(net_chaos::Op::Read)) {
        switch (fault->mode) {
          case net_chaos::Mode::Stall:
            chaos_sleep(fault->param);
            break;
          case net_chaos::Mode::Reset:
            return std::nullopt;  // the peer "reset" us mid-stream
          case net_chaos::Mode::Truncate:
            keep = static_cast<std::size_t>(fault->param);
            chaos_eof_ = true;
            break;
        }
      }
    }
    if (read_timeout_ms_ > 0) {
      pollfd pfd{fd_, POLLIN, 0};
      while (true) {
        const int rc = ::poll(&pfd, 1, read_timeout_ms_);
        if (rc > 0) break;
        if (rc == 0) {
          throw Error("read: timeout after " +
                          std::to_string(read_timeout_ms_) + "ms",
                      ErrorKind::Transient);
        }
        if (errno != EINTR) sys_fail("poll(read)");
      }
    }
    char chunk[4096];
    const ssize_t n = ::read(fd_, chunk, sizeof chunk);
    if (n > 0) {
      buffer_.append(chunk, std::min(static_cast<std::size_t>(n), keep));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      throw Error("read: timeout", ErrorKind::Transient);
    }
    // EOF or reset: a half-line at EOF is discarded (torn trailing write).
    return std::nullopt;
  }
}

}  // namespace hlts::util::net
