#include "util/socket.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/error.hpp"

namespace hlts::util::net {

namespace {

[[noreturn]] void sys_fail(const std::string& what) {
  throw Error(what + ": " + std::strerror(errno), ErrorKind::Transient);
}

}  // namespace

void Fd::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Listener::Listener(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) sys_fail("socket");
  fd_ = Fd(fd);
  const int one = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    sys_fail("bind 127.0.0.1:" + std::to_string(port));
  }
  if (::listen(fd, 128) != 0) sys_fail("listen");
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    sys_fail("getsockname");
  }
  port_ = static_cast<int>(ntohs(addr.sin_port));
}

Fd Listener::accept() {
  while (true) {
    const int fd = ::accept(fd_.get(), nullptr, nullptr);
    if (fd >= 0) return Fd(fd);
    if (errno == EINTR) continue;
    // EBADF/EINVAL after close_now() is the orderly-shutdown signal; any
    // other failure on a loopback listener is equally terminal for the
    // accept loop.
    return Fd();
  }
}

void Listener::close_now() { fd_.close(); }

void Listener::shutdown_now() { shutdown_fd(fd_.get()); }

Fd connect_local(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) sys_fail("socket");
  Fd out(fd);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  while (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    if (errno == EINTR) continue;
    sys_fail("connect 127.0.0.1:" + std::to_string(port));
  }
  return out;
}

std::pair<Fd, Fd> socket_pair() {
  int fds[2] = {-1, -1};
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) sys_fail("socketpair");
  return {Fd(fds[0]), Fd(fds[1])};
}

void write_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
#ifdef MSG_NOSIGNAL
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
#else
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
#endif
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    sys_fail("write");
  }
}

void shutdown_fd(int fd) {
  if (fd >= 0) (void)::shutdown(fd, SHUT_RDWR);
}

std::optional<std::string> LineReader::read_line() {
  while (true) {
    // Scan only bytes not examined before (scanned_ is monotone).
    const std::size_t nl = buffer_.find('\n', scanned_);
    if (nl != std::string::npos) {
      std::string line = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      scanned_ = 0;
      return line;
    }
    scanned_ = buffer_.size();
    if (buffer_.size() > max_line_) {
      throw Error("wire: request line exceeds " + std::to_string(max_line_) +
                      " bytes",
                  ErrorKind::Input);
    }
    char chunk[4096];
    const ssize_t n = ::read(fd_, chunk, sizeof chunk);
    if (n > 0) {
      buffer_.append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    // EOF or reset: a half-line at EOF is discarded (torn trailing write).
    return std::nullopt;
  }
}

}  // namespace hlts::util::net
