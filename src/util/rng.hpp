// Deterministic pseudo-random number generation (xoshiro256**).
//
// All stochastic components (random-phase ATPG, randomized property tests)
// take an explicit seed so that every run of every bench is bit-identical.
#pragma once

#include <array>
#include <cstdint>

namespace hlts {

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference algorithm).
/// Fast, high-quality, and -- unlike std::mt19937 -- guaranteed to produce
/// the same stream on every platform and standard library.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Next 64 uniformly distributed bits.
  std::uint64_t next_u64();

  /// Uniform integer in [0, bound).  `bound` must be nonzero.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double next_double();

  /// Bernoulli trial with probability `p`.
  bool next_bool(double p = 0.5);

  /// The full 256-bit generator state, for durable checkpoints: a journal
  /// can persist a mid-stream generator and set_state() resumes the exact
  /// sequence (state()/set_state() round-trip is bit-identical).
  [[nodiscard]] std::array<std::uint64_t, 4> state() const;
  void set_state(const std::array<std::uint64_t, 4>& state);

 private:
  std::uint64_t s_[4];
};

}  // namespace hlts
