// Failpoints: named fault-injection sites compiled into the pipeline.
//
// A failpoint is a place where the code asks "should this step fail right
// now?".  The engine's failure paths (retry, graceful Partial completion,
// watchdog, per-job isolation) are only trustworthy if they are *exercised*;
// failpoints let tests and the hlts_batch soak inject faults exactly where
// real ones would occur, deterministically.
//
// Sites (one literal name per injection point):
//
//   frontend.parse    -- entry of the DSL compiler
//   sched.reschedule  -- entry of core::reschedule (every trial evaluation)
//   alloc.merge       -- etpn::Binding::merge_modules / merge_regs
//   atpg.fault_sim    -- entry of a fault-simulation batch
//   engine.worker     -- start of every engine job attempt
//   pool.task         -- before every util::ThreadPool task body
//   journal.write     -- mid-write of a journal/checkpoint temp file (a
//                        kill here leaves a torn `.tmp`)
//   journal.commit    -- after the temp file is complete, before the
//                        atomic rename
//   journal.checkpoint-- entry of a checkpoint persistence
//   journal.done      -- entry of a job's terminal journal record
//
// Configuration: the HLTS_FAILPOINTS environment variable (read once at
// process start) or failpoint::configure(), both taking a comma-separated
// list of
//
//   site:mode:probability:seed[:param]
//
//   mode         error    -- throw hlts::Error with ErrorKind::Transient
//                badalloc -- throw std::bad_alloc
//                delay    -- sleep `param` milliseconds (default 50)
//                kill     -- _exit(137) the whole process on the param-th
//                            trigger (param <= 1: the first), simulating a
//                            crash / OOM kill for the recovery soak
//   probability  0..1, evaluated with a deterministic counter-hash stream
//                seeded by `seed` (same hit sequence => same triggers)
//   param        error/badalloc: maximum number of triggers, 0 = unlimited
//                delay: sleep duration in ms
//                kill: which trigger kills (1st, 2nd, ...)
//
// e.g. HLTS_FAILPOINTS=sched.reschedule:error:0.1:42,engine.worker:delay:1:0:20
//
// Cost when not configured: HLTS_FAILPOINT(site) is one relaxed atomic bool
// load and a never-taken branch -- nothing is looked up, formatted, or
// locked.  The whole framework is inert unless a spec arms it.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace hlts::util::failpoint {

enum class Mode { Error, BadAlloc, Delay, Kill };

/// One configured injection: parsed form of site:mode:probability:seed[:param].
struct Spec {
  std::string site;
  Mode mode = Mode::Error;
  double probability = 1.0;
  std::uint64_t seed = 0;
  /// error/badalloc: max triggers (0 = unlimited); delay: milliseconds;
  /// kill: which trigger kills the process (<= 1: the first).
  std::int64_t param = 0;
};

/// Per-site observability for tests and the soak report.
struct SiteStats {
  std::string site;
  std::int64_t hits = 0;      ///< times the site was evaluated while armed
  std::int64_t triggers = 0;  ///< times a fault actually fired
};

/// The closed set of site names compiled into the code; configure() rejects
/// anything else so a typo in a spec fails fast instead of silently never
/// firing.
[[nodiscard]] const std::vector<std::string>& known_sites();

/// Replaces the active configuration with the parsed `spec_list` (the
/// HLTS_FAILPOINTS syntax above).  Returns false and fills `*error` on a
/// malformed spec or unknown site, leaving the previous configuration
/// untouched.  An empty list disarms everything (same as clear()).
bool configure(const std::string& spec_list, std::string* error = nullptr);

/// Disarms all failpoints and resets statistics.
void clear();

/// Parsed view of the active configuration.
[[nodiscard]] std::vector<Spec> active();

/// Statistics for every site touched since the last configure()/clear().
[[nodiscard]] std::vector<SiteStats> stats();

namespace detail {
extern std::atomic<bool> g_armed;
}  // namespace detail

/// True when any failpoint is configured.  This is the only check on the
/// fast path; keep it a single relaxed load.
[[nodiscard]] inline bool armed() {
  return detail::g_armed.load(std::memory_order_relaxed);
}

/// Slow path: evaluates the site against the active configuration and
/// performs the configured action (throw / sleep).  Only call when armed().
void hit(const char* site);

}  // namespace hlts::util::failpoint

/// Marks one injection site.  Disarmed cost: one relaxed atomic load.
#define HLTS_FAILPOINT(site)                              \
  do {                                                    \
    if (::hlts::util::failpoint::armed()) [[unlikely]] {  \
      ::hlts::util::failpoint::hit(site);                 \
    }                                                     \
  } while (false)
