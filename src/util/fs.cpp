#include "util/fs.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <system_error>

#include "util/error.hpp"
#include "util/failpoint.hpp"

namespace hlts::util::fs {

namespace stdfs = std::filesystem;

void create_directories(const std::string& dir) {
  std::error_code ec;
  stdfs::create_directories(dir, ec);
  if (ec && !stdfs::is_directory(dir)) {
    throw Error("cannot create directory '" + dir + "': " + ec.message(),
                ErrorKind::Transient);
  }
}

bool file_exists(const std::string& path) {
  std::error_code ec;
  return stdfs::is_regular_file(path, ec);
}

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  if (in.bad()) return std::nullopt;
  return content;
}

void write_file_atomic(const std::string& path, const std::string& content) {
  const std::string tmp = path + kTempSuffix;
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw Error("cannot open '" + tmp + "' for writing", ErrorKind::Transient);
    }
    // Two-part write with the torn-write failpoint in between: a kill (or
    // injected error) at `journal.write` leaves a temp file holding only a
    // prefix -- exactly what a real crash mid-write produces.
    const std::size_t half = content.size() / 2;
    out.write(content.data(), static_cast<std::streamsize>(half));
    out.flush();
    HLTS_FAILPOINT("journal.write");
    out.write(content.data() + half,
              static_cast<std::streamsize>(content.size() - half));
    out.flush();
    if (!out) {
      throw Error("short write to '" + tmp + "'", ErrorKind::Transient);
    }
  }
  HLTS_FAILPOINT("journal.commit");
  std::error_code ec;
  stdfs::rename(tmp, path, ec);
  if (ec) {
    throw Error("cannot rename '" + tmp + "' to '" + path + "': " + ec.message(),
                ErrorKind::Transient);
  }
}

void remove_file(const std::string& path) {
  std::error_code ec;
  stdfs::remove(path, ec);  // missing file: remove() returns false, no error
}

std::vector<std::string> list_files(const std::string& dir) {
  std::vector<std::string> out;
  std::error_code ec;
  stdfs::directory_iterator it(dir, ec);
  if (ec) return out;
  for (const stdfs::directory_entry& entry : it) {
    std::error_code entry_ec;
    if (!entry.is_regular_file(entry_ec)) continue;
    std::string name = entry.path().filename().string();
    if (name.size() >= 4 && name.ends_with(kTempSuffix)) continue;
    out.push_back(std::move(name));
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::string sanitize_filename(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool safe = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '-' || c == '.' || c == '_';
    out.push_back(safe ? c : '_');
  }
  if (out.empty()) out = "_";
  return out;
}

}  // namespace hlts::util::fs
