#include "util/fs.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <system_error>

#include "util/error.hpp"
#include "util/failpoint.hpp"
#include "util/io_faults.hpp"

namespace hlts::util::fs {

namespace stdfs = std::filesystem;

namespace {

/// Error text for a failed syscall; disk-full surfaces distinctly so an
/// operator (or a log grep) can tell "out of space" from "bad disk".
std::string sys_detail(int err) {
  std::string detail = std::strerror(err);
  if (err == ENOSPC) detail += " (disk full: ENOSPC)";
  return detail;
}

[[noreturn]] void injected_fail(const char* what, const std::string& path,
                                io_faults::Mode mode) {
  const int err = mode == io_faults::Mode::Enospc ? ENOSPC : EIO;
  throw Error(std::string(what) + " '" + path +
                  "': injected fault: " + sys_detail(err),
              ErrorKind::Transient);
}

/// Closes `fd` on scope exit unless release()d.
struct FdGuard {
  int fd = -1;
  ~FdGuard() {
    if (fd >= 0) ::close(fd);
  }
  void release() { fd = -1; }
};

/// Full write of `data[0, len)` with EINTR restart.  A `write:short`
/// injection persists a prefix for real and then fails -- exactly the torn
/// file a crashed or full disk leaves behind.
void write_span(int fd, const char* data, std::size_t len,
                const std::string& path) {
  if (len == 0) return;
  std::size_t limit = len;
  bool injected_short = false;
  if (io_faults::armed()) {
    if (const auto fault = io_faults::consult(io_faults::Op::Write)) {
      if (fault->mode == io_faults::Mode::Short) {
        limit = len / 2;
        injected_short = true;
      } else {
        injected_fail("write", path, fault->mode);
      }
    }
  }
  std::size_t off = 0;
  while (off < limit) {
    const ssize_t n = ::write(fd, data + off, limit - off);
    if (n >= 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    throw Error("write '" + path + "': " + sys_detail(errno),
                ErrorKind::Transient);
  }
  if (injected_short) {
    throw Error("short write to '" + path + "': injected fault: only " +
                    std::to_string(limit) + " of " + std::to_string(len) +
                    " bytes persisted",
                ErrorKind::Transient);
  }
}

void fsync_fd(int fd, const std::string& path) {
  if (io_faults::armed()) {
    if (const auto fault = io_faults::consult(io_faults::Op::Fsync)) {
      injected_fail("fsync", path, fault->mode);
    }
  }
  if (::fsync(fd) != 0) {
    throw Error("fsync '" + path + "': " + sys_detail(errno),
                ErrorKind::Transient);
  }
}

/// fsyncs the directory containing `path`, making a completed rename
/// durable: without this, a power failure after rename can forget the
/// directory entry even though the data blocks are on disk.
void fsync_parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? std::string(".")
                                                     : path.substr(0, slash);
  FdGuard guard{::open(dir.c_str(), O_RDONLY | O_DIRECTORY)};
  if (guard.fd < 0) {
    throw Error("open dir '" + dir + "': " + sys_detail(errno),
                ErrorKind::Transient);
  }
  fsync_fd(guard.fd, dir);
}

std::vector<std::string> list_dir(const std::string& dir, bool include_temps) {
  std::vector<std::string> out;
  std::error_code ec;
  stdfs::directory_iterator it(dir, ec);
  if (ec) return out;
  for (const stdfs::directory_entry& entry : it) {
    std::error_code entry_ec;
    if (!entry.is_regular_file(entry_ec)) continue;
    std::string name = entry.path().filename().string();
    if (!include_temps && name.size() >= 4 && name.ends_with(kTempSuffix)) {
      continue;
    }
    out.push_back(std::move(name));
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

void create_directories(const std::string& dir) {
  std::error_code ec;
  stdfs::create_directories(dir, ec);
  if (ec && !stdfs::is_directory(dir)) {
    throw Error("cannot create directory '" + dir + "': " + ec.message(),
                ErrorKind::Transient);
  }
}

bool file_exists(const std::string& path) {
  std::error_code ec;
  return stdfs::is_regular_file(path, ec);
}

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  if (in.bad()) return std::nullopt;
  return content;
}

void write_file_atomic(const std::string& path, const std::string& content) {
  const std::string tmp = path + kTempSuffix;
  if (io_faults::armed()) {
    if (const auto fault = io_faults::consult(io_faults::Op::Open)) {
      injected_fail("open", tmp, fault->mode);
    }
  }
  FdGuard file{::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644)};
  if (file.fd < 0) {
    throw Error("cannot open '" + tmp + "' for writing: " + sys_detail(errno),
                ErrorKind::Transient);
  }
  // Two-part write with the torn-write failpoint in between: a kill (or
  // injected error) at `journal.write` leaves a temp file holding only a
  // prefix -- exactly what a real crash mid-write produces.
  const std::size_t half = content.size() / 2;
  write_span(file.fd, content.data(), half, tmp);
  HLTS_FAILPOINT("journal.write");
  write_span(file.fd, content.data() + half, content.size() - half, tmp);
  // Data must be durable before the rename publishes it; otherwise a power
  // failure could commit the name to a file whose bytes never landed.
  fsync_fd(file.fd, tmp);
  if (::close(file.fd) != 0) {
    file.release();
    throw Error("close '" + tmp + "': " + sys_detail(errno),
                ErrorKind::Transient);
  }
  file.release();
  HLTS_FAILPOINT("journal.commit");
  if (io_faults::armed()) {
    if (const auto fault = io_faults::consult(io_faults::Op::Rename)) {
      injected_fail("rename", tmp, fault->mode);
    }
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    throw Error("cannot rename '" + tmp + "' to '" + path +
                    "': " + sys_detail(errno),
                ErrorKind::Transient);
  }
  // The rename itself lives in the directory entry: fsync the parent so
  // the commit survives power loss, completing the atomic-commit protocol.
  fsync_parent_dir(path);
}

void remove_file(const std::string& path) {
  std::error_code ec;
  stdfs::remove(path, ec);  // missing file: remove() returns false, no error
}

void rename_file(const std::string& from, const std::string& to) {
  std::error_code ec;
  stdfs::rename(from, to, ec);
  if (ec) {
    throw Error("cannot rename '" + from + "' to '" + to +
                    "': " + ec.message(),
                ErrorKind::Transient);
  }
}

std::vector<std::string> list_files(const std::string& dir) {
  return list_dir(dir, /*include_temps=*/false);
}

std::vector<std::string> list_all_files(const std::string& dir) {
  return list_dir(dir, /*include_temps=*/true);
}

std::string sanitize_filename(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool safe = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '-' || c == '.' || c == '_';
    out.push_back(safe ? c : '_');
  }
  if (out.empty()) out = "_";
  return out;
}

}  // namespace hlts::util::fs
