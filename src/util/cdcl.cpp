#include "util/cdcl.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace hlts::util::cdcl {

namespace {

// VSIDS decay per conflict (activity_inc_ grows by 1/kVarDecay) and the
// rescale threshold that keeps activities finite.
constexpr double kVarDecay = 0.95;
constexpr double kActivityRescale = 1e100;

// Conflicts in the first Luby restart slice; slice i allows
// luby(i) * kRestartBase conflicts before restarting.
constexpr std::uint64_t kRestartBase = 100;

}  // namespace

Solver::Solver() = default;

Var Solver::new_var() {
  HLTS_REQUIRE(trail_lim_.empty(), "cdcl: new_var only at decision level 0");
  const Var v = num_vars();
  assign_.push_back(Value::Undef);
  phase_.push_back(0);
  level_.push_back(0);
  reason_.push_back(kNoClause);
  activity_.push_back(0.0);
  seen_.push_back(0);
  watches_.emplace_back();
  watches_.emplace_back();
  heap_pos_.push_back(-1);
  model_.push_back(Value::False);
  heap_insert(v);
  return v;
}

Value Solver::lit_value(Lit l) const {
  const Value v = assign_[static_cast<std::size_t>(l.var())];
  if (v == Value::Undef) return Value::Undef;
  const bool b = (v == Value::True) != l.sign();
  return b ? Value::True : Value::False;
}

Value Solver::value(Var v) const {
  HLTS_REQUIRE(v >= 0 && v < num_vars(), "cdcl: value() var out of range");
  return model_[static_cast<std::size_t>(v)];
}

Solver::ClauseRef Solver::alloc_clause(const std::vector<Lit>& lits,
                                       bool learnt) {
  const auto ref = static_cast<ClauseRef>(arena_.size());
  arena_.push_back(static_cast<int>(lits.size()));
  arena_.push_back(learnt ? 1 : 0);
  for (const Lit l : lits) arena_.push_back(l.x);
  return ref;
}

void Solver::watch_clause(ClauseRef c) {
  // A clause watches its first two literals: it is registered under the
  // *negations*, so enqueueing p true visits exactly the clauses in which
  // p's negation is watched (i.e. just became false).
  const Lit l0 = clause_lit(c, 0);
  const Lit l1 = clause_lit(c, 1);
  watches_[static_cast<std::size_t>((~l0).x)].push_back(c);
  watches_[static_cast<std::size_t>((~l1).x)].push_back(c);
}

bool Solver::add_clause(const std::vector<Lit>& lits) {
  HLTS_REQUIRE(trail_lim_.empty(), "cdcl: add_clause only at decision level 0");
  if (!ok_) return false;

  // Normalize: sort by code, merge duplicates, drop tautologies and
  // literals already false at the root level; a literal true at the root
  // satisfies the clause outright.
  std::vector<Lit> c(lits);
  std::sort(c.begin(), c.end(),
            [](Lit a, Lit b) { return a.x < b.x; });
  std::vector<Lit> out;
  out.reserve(c.size());
  for (std::size_t i = 0; i < c.size(); ++i) {
    const Lit l = c[i];
    HLTS_REQUIRE(l.var() >= 0 && l.var() < num_vars(),
                 "cdcl: clause literal over unknown variable");
    if (!out.empty() && out.back() == l) continue;      // duplicate
    if (!out.empty() && out.back() == ~l) return true;  // tautology
    const Value v = lit_value(l);
    if (v == Value::True) return true;   // satisfied at root
    if (v == Value::False) continue;     // falsified at root: drop literal
    out.push_back(l);
  }

  if (out.empty()) {
    ok_ = false;
    return false;
  }
  if (out.size() == 1) {
    enqueue(out[0], kNoClause);
    if (propagate() != kNoClause) ok_ = false;
    return ok_;
  }
  const ClauseRef ref = alloc_clause(out, /*learnt=*/false);
  clauses_.push_back(ref);
  ++num_problem_clauses_;
  watch_clause(ref);
  return true;
}

void Solver::enqueue(Lit l, ClauseRef reason) {
  const auto v = static_cast<std::size_t>(l.var());
  HLTS_REQUIRE(assign_[v] == Value::Undef, "cdcl: enqueue on assigned var");
  assign_[v] = l.sign() ? Value::False : Value::True;
  phase_[v] = static_cast<std::uint8_t>(l.sign() ? 0 : 1);
  level_[v] = static_cast<int>(trail_lim_.size());
  reason_[v] = reason;
  trail_.push_back(l);
}

Solver::ClauseRef Solver::propagate() {
  while (qhead_ < trail_.size()) {
    const Lit p = trail_[qhead_++];
    ++stats_.propagations;
    std::vector<ClauseRef>& ws = watches_[static_cast<std::size_t>(p.x)];
    std::size_t keep = 0;
    for (std::size_t i = 0; i < ws.size(); ++i) {
      const ClauseRef c = ws[i];
      int* codes = clause_codes(c);
      const int size = clause_size(c);
      // Normalize so the falsified watcher (~p) sits in slot 1.
      const Lit not_p = ~p;
      if (codes[0] == not_p.x) std::swap(codes[0], codes[1]);
      Lit first;
      first.x = codes[0];
      if (lit_value(first) == Value::True) {
        ws[keep++] = c;  // satisfied; keep the watch as-is
        continue;
      }
      // Look for a non-false literal to take over the watch.
      bool moved = false;
      for (int k = 2; k < size; ++k) {
        Lit cand;
        cand.x = codes[k];
        if (lit_value(cand) != Value::False) {
          std::swap(codes[1], codes[k]);
          watches_[static_cast<std::size_t>((~cand).x)].push_back(c);
          moved = true;
          break;
        }
      }
      if (moved) continue;  // watch migrated; drop from this list
      // No replacement: clause is unit (propagate first) or conflicting.
      ws[keep++] = c;
      if (lit_value(first) == Value::False) {
        // Conflict: keep the remaining watchers, restore queue consistency.
        for (std::size_t j = i + 1; j < ws.size(); ++j) ws[keep++] = ws[j];
        ws.resize(keep);
        qhead_ = trail_.size();
        return c;
      }
      enqueue(first, c);
    }
    ws.resize(keep);
  }
  return kNoClause;
}

void Solver::var_bump(Var v) {
  const auto i = static_cast<std::size_t>(v);
  activity_[i] += activity_inc_;
  if (activity_[i] > kActivityRescale) {
    for (double& a : activity_) a *= 1.0 / kActivityRescale;
    activity_inc_ *= 1.0 / kActivityRescale;
  }
  if (heap_pos_[i] >= 0) heap_sift_up(heap_pos_[i]);
}

void Solver::var_decay() { activity_inc_ *= 1.0 / kVarDecay; }

namespace {
// Bitmask abstraction of a decision level, used by clause minimization to
// prune the redundancy search cheaply.
[[nodiscard]] std::uint32_t abstract_level(int level) {
  return 1u << (static_cast<unsigned>(level) & 31u);
}
}  // namespace

bool Solver::lit_redundant(Lit l, std::uint32_t abstract_levels) {
  // A literal is redundant in the learnt clause when every path from it back
  // through reasons bottoms out in literals already in the clause (seen) or
  // at the root level.  Iterative DFS with rollback on failure.
  analyze_stack_.clear();
  analyze_stack_.push_back(l);
  const std::size_t undo_from = analyze_clear_.size();
  while (!analyze_stack_.empty()) {
    const Lit q = analyze_stack_.back();
    analyze_stack_.pop_back();
    const auto qv = static_cast<std::size_t>(q.var());
    const ClauseRef reason = reason_[qv];
    HLTS_REQUIRE(reason != kNoClause, "cdcl: redundancy walk hit a decision");
    const int size = clause_size(reason);
    for (int k = 1; k < size; ++k) {
      const Lit r = clause_lit(reason, k);
      const auto rv = static_cast<std::size_t>(r.var());
      if (seen_[rv] != 0 || level_[rv] == 0) continue;
      if (reason_[rv] == kNoClause ||
          (abstract_level(level_[rv]) & abstract_levels) == 0) {
        // Decision var, or a level no clause literal lives on: not redundant.
        for (std::size_t j = undo_from; j < analyze_clear_.size(); ++j) {
          seen_[static_cast<std::size_t>(analyze_clear_[j].var())] = 0;
        }
        analyze_clear_.resize(undo_from);
        return false;
      }
      seen_[rv] = 1;
      analyze_clear_.push_back(r);
      analyze_stack_.push_back(r);
    }
  }
  return true;
}

void Solver::analyze(ClauseRef conflict, std::vector<Lit>& learnt,
                     int& bt_level) {
  // First-UIP scheme: walk the trail backwards from the conflict, resolving
  // on current-level literals until exactly one (the UIP) remains; literals
  // from lower levels become the learnt clause body.
  learnt.clear();
  learnt.push_back(Lit());  // slot 0: the asserting literal, filled below
  const int current_level = static_cast<int>(trail_lim_.size());
  int path_count = 0;
  Lit p;  // undefined marker on the first iteration
  auto index = static_cast<std::ptrdiff_t>(trail_.size()) - 1;
  ClauseRef reason = conflict;

  for (;;) {
    HLTS_REQUIRE(reason != kNoClause, "cdcl: analyze missing reason");
    const int size = clause_size(reason);
    for (int k = (p.x == -2 ? 0 : 1); k < size; ++k) {
      const Lit q = clause_lit(reason, k);
      const auto qv = static_cast<std::size_t>(q.var());
      if (seen_[qv] != 0 || level_[qv] == 0) continue;
      seen_[qv] = 1;
      analyze_clear_.push_back(q);
      var_bump(q.var());
      if (level_[qv] >= current_level) {
        ++path_count;
      } else {
        learnt.push_back(q);
      }
    }
    // Next current-level literal to resolve on.
    while (seen_[static_cast<std::size_t>(trail_[static_cast<std::size_t>(
               index)].var())] == 0) {
      --index;
    }
    p = trail_[static_cast<std::size_t>(index)];
    --index;
    seen_[static_cast<std::size_t>(p.var())] = 0;
    --path_count;
    if (path_count <= 0) break;
    reason = reason_[static_cast<std::size_t>(p.var())];
  }
  learnt[0] = ~p;

  // Recursive minimization: drop body literals implied by the rest.
  std::uint32_t abstract_levels = 0;
  for (std::size_t i = 1; i < learnt.size(); ++i) {
    abstract_levels |=
        abstract_level(level_[static_cast<std::size_t>(learnt[i].var())]);
  }
  std::size_t kept = 1;
  for (std::size_t i = 1; i < learnt.size(); ++i) {
    const auto v = static_cast<std::size_t>(learnt[i].var());
    if (reason_[v] == kNoClause || !lit_redundant(learnt[i], abstract_levels)) {
      learnt[kept++] = learnt[i];
    } else {
      ++stats_.minimized_literals;
    }
  }
  learnt.resize(kept);

  // Backtrack to the second-highest level and put its literal in slot 1 so
  // the learnt clause is watched correctly and asserts on arrival.
  if (learnt.size() == 1) {
    bt_level = 0;
  } else {
    std::size_t max_i = 1;
    for (std::size_t i = 2; i < learnt.size(); ++i) {
      if (level_[static_cast<std::size_t>(learnt[i].var())] >
          level_[static_cast<std::size_t>(learnt[max_i].var())]) {
        max_i = i;
      }
    }
    std::swap(learnt[1], learnt[max_i]);
    bt_level = level_[static_cast<std::size_t>(learnt[1].var())];
  }

  for (const Lit q : analyze_clear_) {
    seen_[static_cast<std::size_t>(q.var())] = 0;
  }
  analyze_clear_.clear();
}

void Solver::analyze_final(Lit failed) {
  // The failed assumption's negation is implied by root clauses plus some
  // subset of the other assumptions; walk reasons back to decisions (which
  // are all assumptions at this point in the decision loop) to collect it.
  conflict_core_.clear();
  std::vector<std::uint8_t> in_core(assign_.size(), 0);
  in_core[static_cast<std::size_t>(failed.var())] = 1;
  const auto fv = static_cast<std::size_t>(failed.var());
  seen_[fv] = 1;
  if (!trail_lim_.empty()) {
    for (auto i = static_cast<std::ptrdiff_t>(trail_.size()) - 1;
         i >= static_cast<std::ptrdiff_t>(trail_lim_[0]); --i) {
      const Lit t = trail_[static_cast<std::size_t>(i)];
      const auto v = static_cast<std::size_t>(t.var());
      if (seen_[v] == 0) continue;
      if (reason_[v] == kNoClause) {
        in_core[v] = 1;  // a decision == an assumption
      } else {
        const ClauseRef c = reason_[v];
        const int size = clause_size(c);
        for (int k = 1; k < size; ++k) {
          const Lit q = clause_lit(c, k);
          const auto qv = static_cast<std::size_t>(q.var());
          if (level_[qv] > 0) seen_[qv] = 1;
        }
      }
      seen_[v] = 0;
    }
  }
  seen_[fv] = 0;
  for (const Lit a : assumptions_) {
    if (in_core[static_cast<std::size_t>(a.var())] != 0) {
      conflict_core_.push_back(a);
    }
  }
}

void Solver::backtrack(int target) {
  if (static_cast<int>(trail_lim_.size()) <= target) return;
  const auto bound = static_cast<std::size_t>(trail_lim_[
      static_cast<std::size_t>(target)]);
  for (std::size_t i = trail_.size(); i-- > bound;) {
    const auto v = static_cast<std::size_t>(trail_[i].var());
    assign_[v] = Value::Undef;
    reason_[v] = kNoClause;
    if (heap_pos_[v] < 0) heap_insert(static_cast<Var>(v));
  }
  trail_.resize(bound);
  trail_lim_.resize(static_cast<std::size_t>(target));
  qhead_ = trail_.size();
}

Lit Solver::pick_branch() {
  while (!heap_.empty()) {
    const Var v = heap_pop();
    if (assign_[static_cast<std::size_t>(v)] == Value::Undef) {
      return Lit(v, phase_[static_cast<std::size_t>(v)] == 0);
    }
  }
  return Lit();  // all assigned
}

Status Solver::solve(const std::vector<Lit>& assumptions,
                     std::int64_t conflict_budget) {
  conflict_core_.clear();
  if (!ok_) return Status::Unsat;  // root-level inconsistency, empty core
  assumptions_ = assumptions;

  backtrack(0);
  std::uint64_t conflicts_this_call = 0;
  std::uint64_t restart_index = 1;
  std::uint64_t restart_limit = luby(restart_index) * kRestartBase;
  std::uint64_t conflicts_since_restart = 0;
  std::vector<Lit> learnt;

  const auto finish = [this](Status s) {
    backtrack(0);
    return s;
  };

  for (;;) {
    const ClauseRef conflict = propagate();
    if (conflict != kNoClause) {
      ++stats_.conflicts;
      ++conflicts_this_call;
      ++conflicts_since_restart;
      if (trail_lim_.empty()) {
        ok_ = false;  // conflict with no decisions: formula itself is Unsat
        return finish(Status::Unsat);
      }
      int bt_level = 0;
      analyze(conflict, learnt, bt_level);
      backtrack(bt_level);
      if (learnt.size() == 1) {
        enqueue(learnt[0], kNoClause);
      } else {
        const ClauseRef ref = alloc_clause(learnt, /*learnt=*/true);
        learnts_.push_back(ref);
        watch_clause(ref);
        enqueue(learnt[0], ref);
      }
      ++stats_.learned;
      stats_.learned_literals += learnt.size();
      var_decay();
      continue;
    }

    if (conflict_budget > 0 &&
        conflicts_this_call >= static_cast<std::uint64_t>(conflict_budget)) {
      return finish(Status::Unknown);
    }
    if (conflicts_since_restart >= restart_limit) {
      ++stats_.restarts;
      ++restart_index;
      restart_limit = luby(restart_index) * kRestartBase;
      conflicts_since_restart = 0;
      backtrack(0);
      continue;
    }

    // Place pending assumptions as decisions before any free decision.
    Lit next;
    while (trail_lim_.size() < assumptions_.size()) {
      const Lit a = assumptions_[trail_lim_.size()];
      const Value v = lit_value(a);
      if (v == Value::True) {
        // Already implied: open an empty decision level for it.
        trail_lim_.push_back(static_cast<int>(trail_.size()));
      } else if (v == Value::False) {
        analyze_final(a);
        return finish(Status::Unsat);
      } else {
        next = a;
        break;
      }
    }
    if (next.x == -2) {
      next = pick_branch();
      if (next.x == -2) {
        // Complete assignment: snapshot the model before unwinding.
        for (std::size_t v = 0; v < assign_.size(); ++v) {
          model_[v] = assign_[v] == Value::Undef ? Value::False : assign_[v];
        }
        return finish(Status::Sat);
      }
      ++stats_.decisions;
    }
    trail_lim_.push_back(static_cast<int>(trail_.size()));
    enqueue(next, kNoClause);
  }
}

// ---- activity heap (max-heap; ties break toward the smaller index) ------

bool Solver::heap_less(Var a, Var b) const {
  const double aa = activity_[static_cast<std::size_t>(a)];
  const double ab = activity_[static_cast<std::size_t>(b)];
  if (aa != ab) return aa > ab;
  return a < b;
}

void Solver::heap_insert(Var v) {
  HLTS_REQUIRE(heap_pos_[static_cast<std::size_t>(v)] < 0,
               "cdcl: heap double insert");
  heap_pos_[static_cast<std::size_t>(v)] = static_cast<int>(heap_.size());
  heap_.push_back(v);
  heap_sift_up(static_cast<int>(heap_.size()) - 1);
}

void Solver::heap_update(Var v) {
  const int i = heap_pos_[static_cast<std::size_t>(v)];
  if (i < 0) return;
  heap_sift_up(i);
  heap_sift_down(heap_pos_[static_cast<std::size_t>(v)]);
}

Var Solver::heap_pop() {
  HLTS_REQUIRE(!heap_.empty(), "cdcl: pop from empty heap");
  const Var top = heap_[0];
  heap_pos_[static_cast<std::size_t>(top)] = -1;
  const Var last = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    heap_[0] = last;
    heap_pos_[static_cast<std::size_t>(last)] = 0;
    heap_sift_down(0);
  }
  return top;
}

void Solver::heap_sift_up(int i) {
  const Var v = heap_[static_cast<std::size_t>(i)];
  while (i > 0) {
    const int parent = (i - 1) / 2;
    const Var pv = heap_[static_cast<std::size_t>(parent)];
    if (!heap_less(v, pv)) break;
    heap_[static_cast<std::size_t>(i)] = pv;
    heap_pos_[static_cast<std::size_t>(pv)] = i;
    i = parent;
  }
  heap_[static_cast<std::size_t>(i)] = v;
  heap_pos_[static_cast<std::size_t>(v)] = i;
}

void Solver::heap_sift_down(int i) {
  const Var v = heap_[static_cast<std::size_t>(i)];
  const int n = static_cast<int>(heap_.size());
  for (;;) {
    int child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n &&
        heap_less(heap_[static_cast<std::size_t>(child + 1)],
                  heap_[static_cast<std::size_t>(child)])) {
      ++child;
    }
    const Var cv = heap_[static_cast<std::size_t>(child)];
    if (!heap_less(cv, v)) break;
    heap_[static_cast<std::size_t>(i)] = cv;
    heap_pos_[static_cast<std::size_t>(cv)] = i;
    i = child;
  }
  heap_[static_cast<std::size_t>(i)] = v;
  heap_pos_[static_cast<std::size_t>(v)] = i;
}

std::uint64_t Solver::luby(std::uint64_t i) {
  // Luby sequence 1,1,2,1,1,2,4,... (1-indexed): if i is 2^k - 1 the value
  // is 2^(k-1); otherwise recurse into the subsequence i falls in.
  for (;;) {
    std::uint64_t k = 1;
    while (((std::uint64_t{1} << k) - 1) < i) ++k;
    if (i == (std::uint64_t{1} << k) - 1) return std::uint64_t{1} << (k - 1);
    i -= (std::uint64_t{1} << (k - 1)) - 1;
  }
}

}  // namespace hlts::util::cdcl
