// CRC-32C (Castagnoli, polynomial 0x1EDC6F41) over raw bytes.
//
// The journal's integrity check: every version-3 record, checkpoint and
// done marker carries the CRC of its payload bytes, so the scrubber and the
// recovery scan can tell a bit-flipped or truncated file from a valid one
// without trusting the JSON parser to notice.  Castagnoli rather than the
// zlib polynomial because its error-detection properties for short
// JSON-sized messages are strictly better and it is what modern storage
// stacks (iSCSI, ext4, Btrfs) standardized on.
//
// Plain table-driven software implementation (no SSE4.2 dependency): one
// 256-entry table built at first use, ~1 byte/cycle -- far faster than the
// disk writes the checksums protect.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace hlts::util {

namespace detail {

inline const std::array<std::uint32_t, 256>& crc32c_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        // Reflected polynomial of 0x1EDC6F41.
        crc = (crc >> 1) ^ ((crc & 1u) ? 0x82F63B78u : 0u);
      }
      t[i] = crc;
    }
    return t;
  }();
  return table;
}

}  // namespace detail

/// CRC-32C of `data` (standard reflected form, init/final-xor 0xFFFFFFFF).
[[nodiscard]] inline std::uint32_t crc32c(std::string_view data) {
  const auto& table = detail::crc32c_table();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const char c : data) {
    crc = (crc >> 8) ^ table[(crc ^ static_cast<unsigned char>(c)) & 0xFFu];
  }
  return crc ^ 0xFFFFFFFFu;
}

/// Fixed-width lowercase hex of a CRC (8 characters, zero padded) -- the
/// wire/disk spelling used by journal v3 documents.
[[nodiscard]] inline std::string crc32c_hex(std::uint32_t crc) {
  static const char* digits = "0123456789abcdef";
  std::string out(8, '0');
  for (int i = 7; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[crc & 0xFu];
    crc >>= 4;
  }
  return out;
}

}  // namespace hlts::util
