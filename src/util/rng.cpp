#include "util/rng.hpp"

namespace hlts {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// splitmix64: expands the single seed word into the four xoshiro state words.
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) {
    word = splitmix64(sm);
  }
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  // Lemire's nearly-divisionless bounded sampling; bias is negligible for
  // the bounds used here and determinism is what we actually need.
  return static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(next_u64()) * bound) >> 64);
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::next_bool(double p) { return next_double() < p; }

std::array<std::uint64_t, 4> Rng::state() const {
  return {s_[0], s_[1], s_[2], s_[3]};
}

void Rng::set_state(const std::array<std::uint64_t, 4>& state) {
  for (int i = 0; i < 4; ++i) s_[i] = state[static_cast<std::size_t>(i)];
}

}  // namespace hlts
