// Minimal contiguous views over pooled SoA storage.
//
// The data-path graph and the testability tables store per-node and
// per-arc variable-length data (adjacency lists, step sets, trajectory
// histories) as spans into shared flat pools instead of one heap vector
// per element.  Consumers iterate a Span exactly like they iterated the
// old vectors; the pool owner hands spans out by value, so a pool
// reallocation never leaves a dangling long-lived reference (spans are
// taken fresh per use and not stored).
#pragma once

#include <cstddef>

namespace hlts::util {

template <typename T>
class Span {
 public:
  constexpr Span() = default;
  constexpr Span(const T* data, std::size_t size) : data_(data), size_(size) {}

  [[nodiscard]] constexpr const T* begin() const { return data_; }
  [[nodiscard]] constexpr const T* end() const { return data_ + size_; }
  [[nodiscard]] constexpr const T* data() const { return data_; }
  [[nodiscard]] constexpr std::size_t size() const { return size_; }
  [[nodiscard]] constexpr bool empty() const { return size_ == 0; }
  [[nodiscard]] constexpr const T& operator[](std::size_t i) const {
    return data_[i];
  }
  [[nodiscard]] constexpr const T& front() const { return data_[0]; }
  [[nodiscard]] constexpr const T& back() const { return data_[size_ - 1]; }

 private:
  const T* data_ = nullptr;
  std::size_t size_ = 0;
};

template <typename T>
class MutSpan {
 public:
  constexpr MutSpan() = default;
  constexpr MutSpan(T* data, std::size_t size) : data_(data), size_(size) {}

  [[nodiscard]] constexpr T* begin() const { return data_; }
  [[nodiscard]] constexpr T* end() const { return data_ + size_; }
  [[nodiscard]] constexpr T* data() const { return data_; }
  [[nodiscard]] constexpr std::size_t size() const { return size_; }
  [[nodiscard]] constexpr bool empty() const { return size_ == 0; }
  [[nodiscard]] constexpr T& operator[](std::size_t i) const {
    return data_[i];
  }
  constexpr operator Span<T>() const { return Span<T>(data_, size_); }

 private:
  T* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace hlts::util
