#include "util/net_chaos.hpp"

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <stdexcept>

#include "util/knobs.hpp"

namespace hlts::util::net_chaos {

namespace {

struct SpecState {
  Spec spec;
  std::int64_t hits = 0;
  std::int64_t triggers = 0;
};

std::mutex g_mutex;
std::vector<SpecState>& states() {
  static std::vector<SpecState> s;
  return s;
}

/// splitmix64 -- same deterministic stream as util/failpoint.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double uniform01(std::uint64_t seed, std::uint64_t n) {
  return static_cast<double>(mix64(seed ^ mix64(n)) >> 11) * 0x1.0p-53;
}

bool parse_op(const std::string& text, Op* out) {
  if (text == "connect") { *out = Op::Connect; return true; }
  if (text == "read") { *out = Op::Read; return true; }
  if (text == "write") { *out = Op::Write; return true; }
  return false;
}

bool parse_mode(const std::string& text, Mode* out) {
  if (text == "reset") { *out = Mode::Reset; return true; }
  if (text == "truncate") { *out = Mode::Truncate; return true; }
  if (text == "stall") { *out = Mode::Stall; return true; }
  return false;
}

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (;;) {
    const std::size_t end = text.find(sep, start);
    out.push_back(text.substr(start, end - start));
    if (end == std::string::npos) break;
    start = end + 1;
  }
  return out;
}

bool parse_spec(const std::string& text, Spec* out, std::string* error) {
  const std::vector<std::string> fields = split(text, ':');
  if (fields.size() < 4 || fields.size() > 5) {
    *error = "net-fault spec '" + text +
             "': expected op:mode:probability:seed[:param]";
    return false;
  }
  Spec spec;
  if (!parse_op(fields[0], &spec.op)) {
    *error = "net-fault spec '" + text + "': unknown op '" + fields[0] +
             "' (expected connect|read|write)";
    return false;
  }
  if (!parse_mode(fields[1], &spec.mode)) {
    *error = "net-fault spec '" + text + "': unknown mode '" + fields[1] +
             "' (expected reset|truncate|stall)";
    return false;
  }
  if (spec.mode == Mode::Truncate && spec.op == Op::Connect) {
    *error = "net-fault spec '" + text + "': mode 'truncate' applies to "
             "read/write only";
    return false;
  }
  try {
    std::size_t pos = 0;
    spec.probability = std::stod(fields[2], &pos);
    if (pos != fields[2].size()) throw std::invalid_argument(fields[2]);
    spec.seed = std::stoull(fields[3], &pos);
    if (pos != fields[3].size()) throw std::invalid_argument(fields[3]);
    if (fields.size() == 5) {
      spec.param = std::stoll(fields[4], &pos);
      if (pos != fields[4].size()) throw std::invalid_argument(fields[4]);
    } else if (spec.mode == Mode::Truncate) {
      spec.param = 1;  // default: deliver a single byte of the frame
    } else if (spec.mode == Mode::Stall) {
      spec.param = 50;  // default sleep ms
    }
  } catch (const std::exception&) {
    *error = "net-fault spec '" + text + "': malformed number";
    return false;
  }
  if (spec.probability < 0 || spec.probability > 1) {
    *error = "net-fault spec '" + text + "': probability must be in [0, 1]";
    return false;
  }
  if (spec.param < 0) {
    *error = "net-fault spec '" + text + "': param must be >= 0";
    return false;
  }
  *out = spec;
  return true;
}

/// Arms from HLTS_NET_FAULTS once, before main().  Malformed values abort:
/// a chaos soak that silently injects nothing is worse than no soak.
struct EnvInit {
  EnvInit() {
    const std::optional<std::string> env =
        knobs::read_string("HLTS_NET_FAULTS");
    if (!env) return;
    std::string error;
    if (!configure(*env, &error)) {
      std::fprintf(stderr, "HLTS_NET_FAULTS: %s\n", error.c_str());
      std::abort();
    }
  }
};
const EnvInit g_env_init;

}  // namespace

namespace detail {
std::atomic<bool> g_armed{false};
}  // namespace detail

const char* op_name(Op op) {
  switch (op) {
    case Op::Connect: return "connect";
    case Op::Read: return "read";
    case Op::Write: return "write";
  }
  return "?";
}

const char* mode_name(Mode mode) {
  switch (mode) {
    case Mode::Reset: return "reset";
    case Mode::Truncate: return "truncate";
    case Mode::Stall: return "stall";
  }
  return "?";
}

bool configure(const std::string& spec_list, std::string* error) {
  std::vector<SpecState> parsed;
  if (!spec_list.empty()) {
    for (const std::string& text : split(spec_list, ',')) {
      Spec spec;
      std::string local_error;
      if (!parse_spec(text, &spec, &local_error)) {
        if (error != nullptr) *error = local_error;
        return false;
      }
      parsed.push_back(SpecState{spec, 0, 0});
    }
  }
  std::lock_guard<std::mutex> lock(g_mutex);
  states() = std::move(parsed);
  detail::g_armed.store(!states().empty(), std::memory_order_relaxed);
  return true;
}

void clear() {
  std::lock_guard<std::mutex> lock(g_mutex);
  states().clear();
  detail::g_armed.store(false, std::memory_order_relaxed);
}

std::vector<Spec> active() {
  std::lock_guard<std::mutex> lock(g_mutex);
  std::vector<Spec> out;
  for (const SpecState& s : states()) out.push_back(s.spec);
  return out;
}

std::vector<OpStats> stats() {
  std::lock_guard<std::mutex> lock(g_mutex);
  std::vector<OpStats> out;
  for (const SpecState& s : states()) {
    out.push_back(OpStats{op_name(s.spec.op), s.hits, s.triggers});
  }
  return out;
}

std::optional<Injected> consult(Op op) {
  std::lock_guard<std::mutex> lock(g_mutex);
  for (SpecState& s : states()) {
    if (s.spec.op != op) continue;
    const std::uint64_t draw = static_cast<std::uint64_t>(s.hits);
    ++s.hits;
    if (uniform01(s.spec.seed, draw) >= s.spec.probability) continue;
    if (s.spec.mode == Mode::Reset && s.spec.param > 0 &&
        s.triggers >= s.spec.param) {
      continue;  // trigger budget exhausted
    }
    ++s.triggers;
    return Injected{s.spec.mode, s.spec.param};
  }
  return std::nullopt;
}

}  // namespace hlts::util::net_chaos
