// Error handling: contract checks throw hlts::Error.
//
// The synthesis pipeline is a chain of graph transformations; a silently
// corrupted graph is far worse than an exception, so structural invariants
// are checked eagerly in both build types.
//
// Every Error carries an ErrorKind so callers that supervise work (the batch
// engine, hlts_batch) can decide what a failure *means* without parsing
// message strings:
//
//   Transient -- the computation itself is fine but this attempt was hit by
//                an environmental fault (injected failpoint, resource
//                exhaustion).  Retrying the same work may succeed; the
//                engine retries these with exponential backoff.
//   Input     -- the caller's input or parameters are malformed (parse
//                error, unknown benchmark, k = 0).  Retrying is pointless;
//                the error is reported to whoever supplied the input.
//   Internal  -- a structural invariant of the pipeline itself broke.  This
//                is a bug (or injected corruption the invariant auditor
//                caught); it must fail loudly and is never retried.
//
// std::bad_alloc classifies as Transient: memory pressure is an attribute
// of the moment, not of the input, and the anytime synthesis loop degrades
// to its best-so-far checkpoint instead of propagating the OOM.
#pragma once

#include <exception>
#include <stdexcept>
#include <string>

namespace hlts {

enum class ErrorKind {
  Transient,  ///< environmental; retry may succeed
  Input,      ///< malformed input/parameters; retry is pointless
  Internal,   ///< broken pipeline invariant; a bug, never retried
};

/// "transient" / "input" / "internal".
[[nodiscard]] const char* error_kind_name(ErrorKind kind);

/// Exception thrown on contract violations and malformed inputs.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what, ErrorKind kind = ErrorKind::Internal)
      : std::runtime_error(what), kind_(kind) {}

  [[nodiscard]] ErrorKind kind() const { return kind_; }

 private:
  ErrorKind kind_;
};

/// Maps any caught exception onto the taxonomy: hlts::Error reports its own
/// kind, std::bad_alloc is Transient, everything else is Internal.
[[nodiscard]] ErrorKind classify_exception(const std::exception& e);

[[noreturn]] void throw_error(const char* file, int line,
                              const std::string& message,
                              ErrorKind kind = ErrorKind::Internal);

}  // namespace hlts

/// Checks an internal precondition / invariant; throws hlts::Error
/// (ErrorKind::Internal) with location info.
#define HLTS_REQUIRE(cond, message)                         \
  do {                                                      \
    if (!(cond)) {                                          \
      ::hlts::throw_error(__FILE__, __LINE__, (message));   \
    }                                                       \
  } while (false)

/// Checks a condition on caller-supplied input; throws hlts::Error with
/// ErrorKind::Input, so supervisors know not to retry.
#define HLTS_REQUIRE_INPUT(cond, message)                   \
  do {                                                      \
    if (!(cond)) {                                          \
      ::hlts::throw_error(__FILE__, __LINE__, (message),    \
                          ::hlts::ErrorKind::Input);        \
    }                                                       \
  } while (false)
