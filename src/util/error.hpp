// Error handling: contract checks throw hlts::Error.
//
// The synthesis pipeline is a chain of graph transformations; a silently
// corrupted graph is far worse than an exception, so structural invariants
// are checked eagerly in both build types.
#pragma once

#include <stdexcept>
#include <string>

namespace hlts {

/// Exception thrown on contract violations and malformed inputs.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

[[noreturn]] void throw_error(const char* file, int line, const std::string& message);

}  // namespace hlts

/// Checks a precondition / invariant; throws hlts::Error with location info.
#define HLTS_REQUIRE(cond, message)                         \
  do {                                                      \
    if (!(cond)) {                                          \
      ::hlts::throw_error(__FILE__, __LINE__, (message));   \
    }                                                       \
  } while (false)
