#include "util/failpoint.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <new>
#include <stdexcept>
#include <thread>

#include "util/error.hpp"
#include "util/knobs.hpp"

namespace hlts::util::failpoint {

namespace {

/// Runtime state of one configured site: the spec plus its hit counters.
/// The draw counter drives the deterministic pseudo-random stream, so one
/// configuration produces one trigger sequence regardless of wall clock.
struct SiteState {
  Spec spec;
  std::int64_t hits = 0;
  std::int64_t triggers = 0;
};

std::mutex g_mutex;
std::vector<SiteState>& states() {
  static std::vector<SiteState> s;
  return s;
}

/// splitmix64: a full-period mixer, enough to turn (seed, draw index) into
/// an i.i.d.-looking uniform stream.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double uniform01(std::uint64_t seed, std::uint64_t n) {
  // 53 mantissa bits -> [0, 1).
  return static_cast<double>(mix64(seed ^ mix64(n)) >> 11) * 0x1.0p-53;
}

bool parse_mode(const std::string& text, Mode* out) {
  if (text == "error") { *out = Mode::Error; return true; }
  if (text == "badalloc") { *out = Mode::BadAlloc; return true; }
  if (text == "delay") { *out = Mode::Delay; return true; }
  if (text == "kill") { *out = Mode::Kill; return true; }
  return false;
}

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (;;) {
    const std::size_t end = text.find(sep, start);
    out.push_back(text.substr(start, end - start));
    if (end == std::string::npos) break;
    start = end + 1;
  }
  return out;
}

bool parse_spec(const std::string& text, Spec* out, std::string* error) {
  const std::vector<std::string> fields = split(text, ':');
  if (fields.size() < 4 || fields.size() > 5) {
    *error = "failpoint spec '" + text +
             "': expected site:mode:probability:seed[:param]";
    return false;
  }
  Spec spec;
  spec.site = fields[0];
  const std::vector<std::string>& sites = known_sites();
  if (std::find(sites.begin(), sites.end(), spec.site) == sites.end()) {
    *error = "failpoint spec '" + text + "': unknown site '" + spec.site + "'";
    return false;
  }
  if (!parse_mode(fields[1], &spec.mode)) {
    *error = "failpoint spec '" + text + "': unknown mode '" + fields[1] +
             "' (expected error|badalloc|delay|kill)";
    return false;
  }
  try {
    std::size_t pos = 0;
    spec.probability = std::stod(fields[2], &pos);
    if (pos != fields[2].size()) throw std::invalid_argument(fields[2]);
    spec.seed = std::stoull(fields[3], &pos);
    if (pos != fields[3].size()) throw std::invalid_argument(fields[3]);
    if (fields.size() == 5) {
      spec.param = std::stoll(fields[4], &pos);
      if (pos != fields[4].size()) throw std::invalid_argument(fields[4]);
    } else if (spec.mode == Mode::Delay) {
      spec.param = 50;  // default sleep ms
    }
  } catch (const std::exception&) {
    *error = "failpoint spec '" + text + "': malformed number";
    return false;
  }
  if (spec.probability < 0 || spec.probability > 1) {
    *error = "failpoint spec '" + text + "': probability must be in [0, 1]";
    return false;
  }
  if (spec.param < 0) {
    *error = "failpoint spec '" + text + "': param must be >= 0";
    return false;
  }
  *out = spec;
  return true;
}

/// Arms from HLTS_FAILPOINTS once, before main() runs.  A malformed value
/// is a hard configuration error: better to refuse the whole process than
/// to run a "fault-injection soak" that silently injects nothing.
struct EnvInit {
  EnvInit() {
    const std::optional<std::string> env =
        knobs::read_string("HLTS_FAILPOINTS");
    if (!env) return;
    std::string error;
    if (!configure(*env, &error)) {
      std::fprintf(stderr, "HLTS_FAILPOINTS: %s\n", error.c_str());
      std::abort();
    }
  }
};
const EnvInit g_env_init;

}  // namespace

namespace detail {
std::atomic<bool> g_armed{false};
}  // namespace detail

const std::vector<std::string>& known_sites() {
  static const std::vector<std::string> sites = {
      "frontend.parse", "sched.reschedule",  "alloc.merge",
      "atpg.fault_sim", "engine.worker",     "pool.task",
      "journal.write",  "journal.commit",    "journal.checkpoint",
      "journal.done",
  };
  return sites;
}

bool configure(const std::string& spec_list, std::string* error) {
  std::vector<SiteState> parsed;
  if (!spec_list.empty()) {
    for (const std::string& text : split(spec_list, ',')) {
      Spec spec;
      std::string local_error;
      if (!parse_spec(text, &spec, &local_error)) {
        if (error != nullptr) *error = local_error;
        return false;
      }
      parsed.push_back(SiteState{spec, 0, 0});
    }
  }
  std::lock_guard<std::mutex> lock(g_mutex);
  states() = std::move(parsed);
  detail::g_armed.store(!states().empty(), std::memory_order_relaxed);
  return true;
}

void clear() {
  std::lock_guard<std::mutex> lock(g_mutex);
  states().clear();
  detail::g_armed.store(false, std::memory_order_relaxed);
}

std::vector<Spec> active() {
  std::lock_guard<std::mutex> lock(g_mutex);
  std::vector<Spec> out;
  for (const SiteState& s : states()) out.push_back(s.spec);
  return out;
}

std::vector<SiteStats> stats() {
  std::lock_guard<std::mutex> lock(g_mutex);
  std::vector<SiteStats> out;
  for (const SiteState& s : states()) {
    out.push_back(SiteStats{s.spec.site, s.hits, s.triggers});
  }
  return out;
}

void hit(const char* site) {
  Mode mode = Mode::Error;
  std::int64_t delay_ms = 0;
  std::string site_name;
  bool fire = false;
  {
    std::lock_guard<std::mutex> lock(g_mutex);
    for (SiteState& s : states()) {
      if (s.spec.site != site) continue;
      const std::uint64_t draw = static_cast<std::uint64_t>(s.hits);
      ++s.hits;
      if (uniform01(s.spec.seed, draw) >= s.spec.probability) continue;
      if (s.spec.mode == Mode::Kill) {
        // param selects *which* trigger kills (1st, 2nd, ...): the recovery
        // soak uses this to crash at successively later journal writes.
        ++s.triggers;
        if (s.triggers < std::max<std::int64_t>(1, s.spec.param)) continue;
      } else {
        const bool counted = s.spec.mode != Mode::Delay;
        if (counted && s.spec.param > 0 && s.triggers >= s.spec.param) {
          continue;  // trigger budget exhausted: site stays passive
        }
        ++s.triggers;
      }
      fire = true;
      mode = s.spec.mode;
      delay_ms = s.spec.param;
      site_name = s.spec.site;
      break;
    }
  }
  if (!fire) return;
  switch (mode) {
    case Mode::Error:
      throw Error("failpoint '" + site_name + "' injected error",
                  ErrorKind::Transient);
    case Mode::BadAlloc:
      throw std::bad_alloc();
    case Mode::Delay:
      std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
      return;
    case Mode::Kill:
      // Immediate death, no unwinding, no atexit: the closest in-process
      // stand-in for a crash or OOM kill.  137 = 128 + SIGKILL.
      std::_Exit(137);
  }
}

}  // namespace hlts::util::failpoint
