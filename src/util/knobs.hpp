// The audited registry of every HLTS_* environment knob.
//
// Before this registry, each subsystem parsed its own environment variables
// with its own ad-hoc rules (ThreadPool strtol'd HLTS_THREADS, the engine
// strtoll'd HLTS_QUEUE_CAP, the fault simulator had a third copy, ...), and
// nothing guaranteed the README's knob table matched what the code actually
// read.  Now there is exactly one name -> metadata table; every environment
// read in the tree goes through read_int/read_size/read_flag/read_string,
// which refuse names that are not registered -- a knob cannot exist without
// a registry row, and the tests assert the README table matches the
// registry (tests/test_serve.cpp).
//
// Per-knob malformed-value policy, preserved from the original consumers:
//   Throw  -- a malformed value is a configuration error
//             (hlts::Error(ErrorKind::Input)); used by the engine and the
//             serving layer, where silently ignoring a typo'd limit would
//             run unprotected.
//   Ignore -- a malformed value reads as "unset" and the consumer's default
//             applies; used by the performance knobs (HLTS_THREADS,
//             HLTS_SIMD_WIDTH), which predate the registry with that
//             contract and where the safe fallback is the tuned default.
//
// Range/validity checks beyond integer syntax (e.g. HLTS_SIMD_WIDTH in
// {64,256,512}) stay with the consumer: the registry audits *names and
// parsing*, the consumer owns semantics.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "util/json.hpp"

namespace hlts::util::knobs {

enum class Kind {
  Int,         ///< integer via read_int
  Size,        ///< non-negative integer via read_size
  Flag,        ///< "0"/"false"/"off" -> false, anything else -> true
  String,      ///< uninterpreted text via read_string
  ConfigTime,  ///< consumed by CMake at configure time, never read at runtime
};

enum class OnMalformed { Throw, Ignore };

struct Knob {
  const char* name;          ///< environment variable, e.g. "HLTS_THREADS"
  Kind kind;
  OnMalformed on_malformed;
  const char* default_str;   ///< human-readable default for docs/JSON
  const char* consumer;      ///< the code that applies it
  const char* summary;       ///< one-line effect description
};

/// The full table, one row per knob, stable order.
[[nodiscard]] const std::vector<Knob>& registry();

/// Registry row for `name`, or nullptr when no such knob exists.
[[nodiscard]] const Knob* find(const std::string& name);

/// Environment reads.  Every accessor fails a contract check when `name` is
/// not registered with the matching kind (so a new env read cannot bypass
/// the registry), returns nullopt when the variable is unset or empty, and
/// applies the knob's OnMalformed policy to bad values.
[[nodiscard]] std::optional<long long> read_int(const char* name);
[[nodiscard]] std::optional<std::size_t> read_size(const char* name);
[[nodiscard]] std::optional<bool> read_flag(const char* name);
[[nodiscard]] std::optional<std::string> read_string(const char* name);

/// JSON snapshot of the registry: one entry per knob with its metadata and
/// the raw value currently in the environment (null when unset).  The
/// round-trip test sets a value, reads it through the consuming option
/// struct, and checks this snapshot agrees.
[[nodiscard]] JsonValue to_json();

}  // namespace hlts::util::knobs
