#include "dfg/dfg.hpp"

#include <algorithm>
#include <queue>
#include <sstream>
#include <unordered_set>

namespace hlts::dfg {

const char* op_symbol(OpKind kind) {
  switch (kind) {
    case OpKind::Add: return "+";
    case OpKind::Sub: return "-";
    case OpKind::Mul: return "*";
    case OpKind::Div: return "/";
    case OpKind::Less: return "<";
    case OpKind::Greater: return ">";
    case OpKind::Equal: return "==";
    case OpKind::And: return "&";
    case OpKind::Or: return "|";
    case OpKind::Xor: return "^";
    case OpKind::Not: return "~";
    case OpKind::ShiftLeft: return "<<";
    case OpKind::ShiftRight: return ">>";
    case OpKind::Move: return "=";
  }
  return "?";
}

const char* op_name(OpKind kind) {
  switch (kind) {
    case OpKind::Add: return "add";
    case OpKind::Sub: return "sub";
    case OpKind::Mul: return "mul";
    case OpKind::Div: return "div";
    case OpKind::Less: return "less";
    case OpKind::Greater: return "greater";
    case OpKind::Equal: return "equal";
    case OpKind::And: return "and";
    case OpKind::Or: return "or";
    case OpKind::Xor: return "xor";
    case OpKind::Not: return "not";
    case OpKind::ShiftLeft: return "shl";
    case OpKind::ShiftRight: return "shr";
    case OpKind::Move: return "move";
  }
  return "?";
}

int op_arity(OpKind kind) {
  switch (kind) {
    case OpKind::Not:
    case OpKind::Move:
      return 1;
    default:
      return 2;
  }
}

bool op_is_comparison(OpKind kind) {
  return kind == OpKind::Less || kind == OpKind::Greater || kind == OpKind::Equal;
}

bool ops_module_compatible(OpKind a, OpKind b) {
  if (a == b) return true;
  // Classify into module-library classes: multiplier, divider, logic unit,
  // shifter, and the arithmetic ALU (add/sub/compare share an adder core, as
  // in the paper's Ex table where (+) and (-) ALUs absorb comparisons).
  auto cls = [](OpKind k) {
    switch (k) {
      case OpKind::Mul: return 0;
      case OpKind::Div: return 1;
      case OpKind::Add:
      case OpKind::Sub:
      case OpKind::Less:
      case OpKind::Greater:
      case OpKind::Equal:
        return 2;
      case OpKind::And:
      case OpKind::Or:
      case OpKind::Xor:
      case OpKind::Not:
        return 3;
      case OpKind::ShiftLeft:
      case OpKind::ShiftRight:
        return 4;
      case OpKind::Move:
        return 5;
    }
    return -1;
  };
  return cls(a) == cls(b);
}

VarId Dfg::add_input(const std::string& name) {
  HLTS_REQUIRE_INPUT(!find_var(name), "duplicate variable name: " + name);
  Variable v;
  v.name = name;
  v.is_primary_input = true;
  return vars_.push_back(std::move(v));
}

VarId Dfg::add_variable(const std::string& name) {
  HLTS_REQUIRE_INPUT(!find_var(name), "duplicate variable name: " + name);
  Variable v;
  v.name = name;
  return vars_.push_back(std::move(v));
}

void Dfg::mark_output(VarId var, bool registered) {
  HLTS_REQUIRE_INPUT(vars_.contains(var), "mark_output: bad variable id");
  vars_[var].is_primary_output = true;
  vars_[var].po_registered = registered;
}

bool Dfg::needs_register(VarId var) const {
  const Variable& v = vars_[var];
  if (v.is_primary_input) return true;
  if (!v.uses.empty()) return true;
  return v.is_primary_output && v.po_registered;
}

OpId Dfg::add_op(const std::string& name, OpKind kind,
                 const std::vector<VarId>& inputs, VarId output) {
  HLTS_REQUIRE_INPUT(!find_op(name), "duplicate operation name: " + name);
  HLTS_REQUIRE_INPUT(static_cast<int>(inputs.size()) == op_arity(kind),
                     "operation " + name + ": arity mismatch");
  HLTS_REQUIRE_INPUT(vars_.contains(output),
                     "operation " + name + ": bad output var");
  HLTS_REQUIRE_INPUT(!vars_[output].def.valid() && !vars_[output].is_primary_input,
                     "operation " + name + ": output already defined");
  for (VarId in : inputs) {
    HLTS_REQUIRE_INPUT(vars_.contains(in), "operation " + name + ": bad input var");
  }
  Operation op;
  op.name = name;
  op.kind = kind;
  op.inputs = inputs;
  op.output = output;
  OpId id = ops_.push_back(std::move(op));
  vars_[output].def = id;
  for (VarId in : inputs) {
    vars_[in].uses.push_back(id);
  }
  return id;
}

OpId Dfg::add_op_new_var(const std::string& op_name, OpKind kind,
                         const std::vector<VarId>& inputs,
                         const std::string& out_var_name) {
  VarId out = add_variable(out_var_name);
  return add_op(op_name, kind, inputs, out);
}

std::optional<VarId> Dfg::find_var(const std::string& name) const {
  for (VarId id : var_ids()) {
    if (vars_[id].name == name) return id;
  }
  return std::nullopt;
}

std::optional<OpId> Dfg::find_op(const std::string& name) const {
  for (OpId id : op_ids()) {
    if (ops_[id].name == name) return id;
  }
  return std::nullopt;
}

std::vector<OpId> Dfg::preds(OpId op) const {
  std::vector<OpId> out;
  for (VarId in : ops_[op].inputs) {
    OpId def = vars_[in].def;
    if (def.valid() && std::find(out.begin(), out.end(), def) == out.end()) {
      out.push_back(def);
    }
  }
  return out;
}

std::vector<OpId> Dfg::succs(OpId op) const {
  std::vector<OpId> out;
  for (OpId user : vars_[ops_[op].output].uses) {
    if (std::find(out.begin(), out.end(), user) == out.end()) {
      out.push_back(user);
    }
  }
  return out;
}

std::vector<VarId> Dfg::primary_inputs() const {
  std::vector<VarId> out;
  for (VarId id : var_ids()) {
    if (vars_[id].is_primary_input) out.push_back(id);
  }
  return out;
}

std::vector<VarId> Dfg::primary_outputs() const {
  std::vector<VarId> out;
  for (VarId id : var_ids()) {
    if (vars_[id].is_primary_output) out.push_back(id);
  }
  return out;
}

std::vector<OpId> Dfg::topo_order() const {
  IndexVec<OpId, int> indegree(ops_.size(), 0);
  for (OpId id : op_ids()) {
    indegree[id] = static_cast<int>(preds(id).size());
  }
  // Min-id queue keeps the order deterministic and stable across runs.
  std::priority_queue<std::uint32_t, std::vector<std::uint32_t>,
                      std::greater<>> ready;
  for (OpId id : op_ids()) {
    if (indegree[id] == 0) ready.push(id.value());
  }
  std::vector<OpId> order;
  order.reserve(ops_.size());
  while (!ready.empty()) {
    OpId id{ready.top()};
    ready.pop();
    order.push_back(id);
    for (OpId s : succs(id)) {
      if (--indegree[s] == 0) ready.push(s.value());
    }
  }
  HLTS_REQUIRE(order.size() == ops_.size(),
               "DFG '" + name_ + "' has a data-dependence cycle");
  return order;
}

int Dfg::critical_path_ops() const {
  IndexVec<OpId, int> depth(ops_.size(), 1);
  int best = 0;
  for (OpId id : topo_order()) {
    for (OpId p : preds(id)) {
      depth[id] = std::max(depth[id], depth[p] + 1);
    }
    best = std::max(best, depth[id]);
  }
  return best;
}

void Dfg::validate() const {
  for (OpId id : op_ids()) {
    const Operation& op = ops_[id];
    HLTS_REQUIRE(static_cast<int>(op.inputs.size()) == op_arity(op.kind),
                 "op " + op.name + ": arity mismatch");
    HLTS_REQUIRE(vars_[op.output].def == id,
                 "op " + op.name + ": output back-link broken");
  }
  for (VarId id : var_ids()) {
    const Variable& v = vars_[id];
    if (!v.is_primary_input && (v.is_primary_output || !v.uses.empty())) {
      HLTS_REQUIRE(v.def.valid(), "variable " + v.name + " is used but never defined");
    }
    HLTS_REQUIRE(!(v.is_primary_input && v.def.valid()),
                 "variable " + v.name + " is a primary input with a definition");
  }
  (void)topo_order();  // throws on cycles
}

std::string Dfg::to_dot() const {
  std::ostringstream os;
  os << "digraph \"" << name_ << "\" {\n  rankdir=TB;\n";
  for (VarId id : var_ids()) {
    const Variable& v = vars_[id];
    const char* shape = v.is_primary_input    ? "invtriangle"
                        : v.is_primary_output ? "triangle"
                                              : "ellipse";
    os << "  v" << id.value() << " [label=\"" << v.name << "\" shape=" << shape
       << "];\n";
  }
  for (OpId id : op_ids()) {
    const Operation& op = ops_[id];
    os << "  o" << id.value() << " [label=\"" << op.name << "\\n"
       << op_symbol(op.kind) << "\" shape=box];\n";
    for (VarId in : op.inputs) {
      os << "  v" << in.value() << " -> o" << id.value() << ";\n";
    }
    os << "  o" << id.value() << " -> v" << op.output.value() << ";\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace hlts::dfg
