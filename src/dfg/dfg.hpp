// Behavioral data-flow graph (DFG).
//
// This is the output of the behavioral front end (the paper's "VHDL compiler
// default allocation"): one operation node per operation *instance* in the
// source, connected through named variables.  Every synthesis flow in the
// repo -- CAMAD-style, Approach 1 (FDS), Approach 2 (mobility-path) and the
// paper's integrated Algorithm 1 -- starts from this representation.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "util/error.hpp"
#include "util/ids.hpp"

namespace hlts::dfg {

struct OpTag {};
struct VarTag {};

/// Identifies an operation instance (the paper's N21, N22, ...).
using OpId = Id<OpTag>;
/// Identifies a variable (the paper's a, b, ..., z, p1, ..., q4).
using VarId = Id<VarTag>;

/// Operation kinds supported by the module library.  The paper's benchmarks
/// use *, +, -, < (and CAMAD's tables additionally mark +/- ALUs).
enum class OpKind {
  Add,
  Sub,
  Mul,
  Div,
  Less,
  Greater,
  Equal,
  And,
  Or,
  Xor,
  Not,
  ShiftLeft,
  ShiftRight,
  Move,  // register-to-register copy (identity)
};

/// Returns the conventional symbol: Add -> "+", Mul -> "*", ...
[[nodiscard]] const char* op_symbol(OpKind kind);
/// Returns a lowercase name: Add -> "add", ...
[[nodiscard]] const char* op_name(OpKind kind);
/// Number of data inputs the kind consumes (1 for Not/Move, else 2).
[[nodiscard]] int op_arity(OpKind kind);
/// True when both ALU kinds can share one functional module in the default
/// module library (e.g. Add/Sub share an adder-subtracter ALU; comparisons
/// share the subtracter as well).  Mul and Div each need a dedicated module.
[[nodiscard]] bool ops_module_compatible(OpKind a, OpKind b);
/// True for Less/Greater/Equal.
[[nodiscard]] bool op_is_comparison(OpKind kind);

/// A variable: produced by at most one operation (or a primary input) and
/// consumed by any number of operations (and possibly a primary output).
struct Variable {
  std::string name;
  bool is_primary_input = false;
  bool is_primary_output = false;
  /// For primary outputs: true when the value must be held in a register
  /// (loop state such as Diffeq's u1/x1/y1); false when it streams straight
  /// to an output port (Dct's s0..s5, which Table 2 leaves unregistered).
  bool po_registered = false;
  OpId def;                 ///< defining operation; invalid for primary inputs
  std::vector<OpId> uses;   ///< operations reading this variable
};

/// An operation instance.
struct Operation {
  std::string name;             ///< e.g. "N21"
  OpKind kind = OpKind::Add;
  std::vector<VarId> inputs;    ///< size == op_arity(kind)
  VarId output;                 ///< the variable this op defines
};

/// The data-flow graph.  Acyclic over data dependences (a basic block /
/// unrolled loop body, as in all six benchmarks).
class Dfg {
 public:
  explicit Dfg(std::string name = "dfg") : name_(std::move(name)) {}

  /// --- construction -------------------------------------------------------

  /// Declares a primary-input variable.
  VarId add_input(const std::string& name);
  /// Declares an internal variable that some operation will later define.
  VarId add_variable(const std::string& name);
  /// Marks an existing variable as a primary output.  `registered` selects
  /// whether the value occupies a register (state variable) or feeds an
  /// output port directly.
  void mark_output(VarId var, bool registered = false);

  /// True when the variable occupies a register in the data path: primary
  /// inputs, variables with at least one consuming operation, and registered
  /// primary outputs.
  [[nodiscard]] bool needs_register(VarId var) const;
  /// Adds an operation defining `output` from `inputs`.  `output` must not
  /// already have a definition.
  OpId add_op(const std::string& name, OpKind kind,
              const std::vector<VarId>& inputs, VarId output);
  /// Convenience: creates the output variable and the operation in one call.
  OpId add_op_new_var(const std::string& op_name, OpKind kind,
                      const std::vector<VarId>& inputs,
                      const std::string& out_var_name);

  /// --- queries ------------------------------------------------------------

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::size_t num_ops() const { return ops_.size(); }
  [[nodiscard]] std::size_t num_vars() const { return vars_.size(); }
  [[nodiscard]] const Operation& op(OpId id) const { return ops_[id]; }
  [[nodiscard]] const Variable& var(VarId id) const { return vars_[id]; }
  [[nodiscard]] IdRange<OpId> op_ids() const { return id_range<OpId>(ops_.size()); }
  [[nodiscard]] IdRange<VarId> var_ids() const {
    return id_range<VarId>(vars_.size());
  }

  /// Looks a variable up by name; nullopt if absent.
  [[nodiscard]] std::optional<VarId> find_var(const std::string& name) const;
  /// Looks an operation up by name; nullopt if absent.
  [[nodiscard]] std::optional<OpId> find_op(const std::string& name) const;

  /// Data predecessors of `op`: the defining ops of its non-PI inputs.
  [[nodiscard]] std::vector<OpId> preds(OpId op) const;
  /// Data successors of `op`: all ops using its output variable.
  [[nodiscard]] std::vector<OpId> succs(OpId op) const;

  [[nodiscard]] std::vector<VarId> primary_inputs() const;
  [[nodiscard]] std::vector<VarId> primary_outputs() const;

  /// Topological order of operations over data dependences.
  /// Throws hlts::Error if the graph has a dependence cycle.
  [[nodiscard]] std::vector<OpId> topo_order() const;

  /// Length (in operations) of the longest dependence chain; the lower bound
  /// on schedule length when each op takes one control step.
  [[nodiscard]] int critical_path_ops() const;

  /// Structural validation: arities match, every non-PI variable consumed by
  /// an op or marked output has a definition, graph is acyclic.
  void validate() const;

  /// Graphviz dump for debugging / documentation.
  [[nodiscard]] std::string to_dot() const;

 private:
  std::string name_;
  IndexVec<OpId, Operation> ops_;
  IndexVec<VarId, Variable> vars_;
};

}  // namespace hlts::dfg
