#include "core/synthesis.hpp"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <optional>
#include <tuple>
#include <unordered_map>

#include "analysis/incremental.hpp"
#include "core/checkpoint.hpp"
#include "core/validate.hpp"
#include "sched/schedule.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/thread_pool.hpp"
#include "util/trace.hpp"

namespace hlts::core {

namespace {

/// Sorted, deduplicated source/destination node ids of a data-path node
/// (ignoring ports' step labels).  Sorted vectors instead of std::set: the
/// closeness score runs O(modules^2 + regs^2) times per iteration, and a
/// linear merge over two small sorted vectors beats four heap-allocated
/// sets per pair.
struct NeighbourLists {
  std::vector<std::uint32_t> sources, dests;
};

NeighbourLists neighbour_lists(const etpn::DataPath& dp, etpn::DpNodeId n) {
  NeighbourLists out;
  out.sources.reserve(dp.in_degree(n));
  out.dests.reserve(dp.out_degree(n));
  for (etpn::DpArcId a : dp.in_arcs(n)) {
    out.sources.push_back(dp.arc(a).from.value());
  }
  for (etpn::DpArcId a : dp.out_arcs(n)) {
    out.dests.push_back(dp.arc(a).to.value());
  }
  for (auto* v : {&out.sources, &out.dests}) {
    std::sort(v->begin(), v->end());
    v->erase(std::unique(v->begin(), v->end()), v->end());
  }
  return out;
}

int shared_count(const std::vector<std::uint32_t>& a,
                 const std::vector<std::uint32_t>& b) {
  int n = 0;
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      ++n;
      ++ia;
      ++ib;
    }
  }
  return n;
}

bool sorted_contains(const std::vector<std::uint32_t>& v, std::uint32_t x) {
  return std::binary_search(v.begin(), v.end(), x);
}

int closeness(const NeighbourLists& n1, etpn::DpNodeId id1,
              const NeighbourLists& n2, etpn::DpNodeId id2) {
  // Shared sources/destinations save multiplexer inputs and wires; a
  // direct connection between the two nodes is "closeness" as well.
  int score = shared_count(n1.sources, n2.sources) +
              shared_count(n1.dests, n2.dests);
  if (sorted_contains(n1.dests, id2.value()) ||
      sorted_contains(n2.dests, id1.value())) {
    ++score;
  }
  return score;
}

/// Canonical cache key of one candidate pair: kind plus the two binding
/// group ids in ascending order.  Group ids are stable across mergers
/// (merged-away groups become tombstones), so a key keeps naming the same
/// two groups until one of them is committed into a merger -- which is
/// exactly when the entry is invalidated.
struct TrialKey {
  testability::MergeCandidate::Kind kind =
      testability::MergeCandidate::Kind::Modules;
  std::uint32_t a = 0, b = 0;

  friend bool operator==(const TrialKey&, const TrialKey&) = default;
};

TrialKey make_key(const testability::MergeCandidate& c) {
  TrialKey key;
  key.kind = c.kind;
  std::tie(key.a, key.b) = c.group_ids();
  if (key.a > key.b) std::swap(key.a, key.b);
  return key;
}

struct TrialKeyHash {
  std::size_t operator()(const TrialKey& k) const noexcept {
    std::uint64_t h = (std::uint64_t{k.a} << 33) ^ (std::uint64_t{k.b} << 1) ^
                      static_cast<std::uint64_t>(k.kind);
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    return static_cast<std::size_t>(h);
  }
};

/// Cached outcome of one trial: feasibility and the dE/dH measured against
/// the baseline that was current when the trial ran.  dE/dH of a merger are
/// (to first order) properties of the pair itself, so they stay accurate
/// for pairs the committed merger did not touch.
struct CachedTrial {
  bool feasible = false;
  double delta_e = 0;
  double delta_h = 0;
};

using TrialCache = std::unordered_map<TrialKey, CachedTrial, TrialKeyHash>;

/// One fully evaluated trial: merged binding -> reschedule -> hardware cost
/// of the merged data path.  The from-scratch path copies the binding and
/// rebuilds the ETPN per trial; the incremental path leaves `binding` empty
/// (the winner's merge is re-applied at commit time).
struct TrialEval {
  bool feasible = false;
  etpn::Binding binding;
  sched::Schedule schedule;
  int exec_time = 0;
  double hw_cost = 0;
};

/// The from-scratch trial (the HLTS_INCREMENTAL=0 reference): binding copy
/// -> reschedule -> full ETPN rebuild -> floorplan cost estimate.
TrialEval evaluate_trial_full(const dfg::Dfg& g, const SynthesisParams& p,
                              const etpn::Binding& base,
                              const sched::Schedule& hint,
                              const testability::MergeCandidate& cand,
                              int max_latency) {
  TrialEval t;
  t.binding = base;
  cand.apply(g, t.binding);
  ReschedOutcome r = reschedule(g, t.binding, hint, p.order);
  if (!r.feasible || r.schedule.length() > max_latency) return t;
  t.feasible = true;
  t.schedule = std::move(r.schedule);
  t.exec_time = t.schedule.length();
  etpn::Etpn trial_etpn = etpn::build_etpn(g, t.schedule, t.binding);
  t.hw_cost =
      cost::estimate_cost(trial_etpn.data_path, p.library, p.bits).total();
  return t;
}

/// The incremental trial: a DesignDelta patches a checked-out workspace in
/// place (merge patch, no rebuild), the rescheduler reuses the patched
/// graph for its register distances, and the cost estimate runs over the
/// tombstoned data path -- bit-identical numbers to evaluate_trial_full.
TrialEval evaluate_trial_incremental(const dfg::Dfg& g,
                                     const SynthesisParams& p,
                                     analysis::IncrementalContext& ctx,
                                     const sched::Schedule& hint,
                                     const testability::MergeCandidate& cand,
                                     int max_latency) {
  TrialEval t;
  std::unique_ptr<analysis::TrialWorkspace> ws = ctx.checkout();
  {
    analysis::DesignDelta delta(g, *ws, cand);
    ReschedOutcome r = reschedule(g, ws->binding, hint, p.order, &ws->etpn);
    if (r.feasible && r.schedule.length() <= max_latency) {
      t.feasible = true;
      t.schedule = std::move(r.schedule);
      t.exec_time = t.schedule.length();
      t.hw_cost =
          cost::estimate_cost(ws->etpn.data_path, p.library, p.bits, ws->cost)
              .total();
    }
  }
  ctx.checkin(std::move(ws));
  return t;
}

/// Per-candidate knowledge within one iteration.
struct Outcome {
  enum class State { Unknown, Cached, Fresh } state = State::Unknown;
  bool feasible = false;
  double delta_e = 0, delta_h = 0, delta_c = 0;
  TrialEval eval;  ///< populated when state == Fresh and feasible
};

/// Approximate heap bytes held by one evaluated trial, used to honour
/// AlgorithmOptions::memory_budget_bytes without instrumenting the
/// allocator.  Deliberately generous (vector headers included) so the
/// budget errs on stopping early rather than OOMing.
///
/// From-scratch trials hold a binding copy plus a schedule, but their peak
/// also includes the transient ETPN rebuild (nodes, adjacency lists, arc
/// step sets, the control net) that lives while the cost estimate runs --
/// roughly 192 bytes per op/var on top of the 48 the retained state costs.
/// Incremental trials patch a shared workspace in place: the per-trial
/// footprint is one merge patch over the two merged nodes' neighbourhoods
/// (bounded by the average node degree) plus the schedule.
std::size_t approx_trial_bytes(const dfg::Dfg& g, bool incremental) {
  const std::size_t schedule_bytes = g.num_ops() * sizeof(int) + 64;
  if (incremental) {
    // ~3 arcs per op (two operand fetches + result store) spread over
    // ~(ops + vars) nodes; a patch snapshots both endpoints' incident arcs
    // and adjacency lists at ~96 bytes per saved arc.
    const std::size_t arcs = 3 * g.num_ops() + g.num_vars();
    const std::size_t degree =
        arcs / std::max<std::size_t>(1, g.num_ops() + g.num_vars()) + 2;
    return schedule_bytes + 2 * degree * 96 + 256;
  }
  return (g.num_ops() + g.num_vars()) * (48 + 192) + schedule_bytes + 1024;
}

}  // namespace

std::vector<testability::MergeCandidate> select_connectivity_candidates(
    const dfg::Dfg& g, const etpn::Binding& b, const etpn::Etpn& e, int k) {
  std::vector<testability::MergeCandidate> candidates;
  const etpn::DataPath& dp = e.data_path;

  std::vector<etpn::ModuleId> modules = b.alive_modules();
  std::vector<NeighbourLists> mod_nb(modules.size());
  for (std::size_t i = 0; i < modules.size(); ++i) {
    mod_nb[i] = neighbour_lists(dp, e.module_node[modules[i]]);
  }
  for (std::size_t i = 0; i < modules.size(); ++i) {
    for (std::size_t j = i + 1; j < modules.size(); ++j) {
      if (!b.can_merge_modules(g, modules[i], modules[j])) continue;
      testability::MergeCandidate c;
      c.kind = testability::MergeCandidate::Kind::Modules;
      c.module_a = modules[i];
      c.module_b = modules[j];
      c.score = closeness(mod_nb[i], e.module_node[modules[i]], mod_nb[j],
                          e.module_node[modules[j]]);
      candidates.push_back(c);
    }
  }
  std::vector<etpn::RegId> regs = b.alive_regs();
  std::vector<NeighbourLists> reg_nb(regs.size());
  for (std::size_t i = 0; i < regs.size(); ++i) {
    reg_nb[i] = neighbour_lists(dp, e.reg_node[regs[i]]);
  }
  const testability::RegMergeOracle oracle(g, b);
  for (std::size_t i = 0; i < regs.size(); ++i) {
    for (std::size_t j = i + 1; j < regs.size(); ++j) {
      if (!b.can_merge_regs(regs[i], regs[j])) continue;
      if (oracle.impossible(regs[i], regs[j])) continue;
      testability::MergeCandidate c;
      c.kind = testability::MergeCandidate::Kind::Registers;
      c.reg_a = regs[i];
      c.reg_b = regs[j];
      c.score = closeness(reg_nb[i], e.reg_node[regs[i]], reg_nb[j],
                          e.reg_node[regs[j]]);
      candidates.push_back(c);
    }
  }
  // A closeness-driven allocator only considers pairs that actually share
  // interconnect; merging unrelated nodes brings it no wiring benefit.
  std::erase_if(candidates,
                [](const testability::MergeCandidate& c) { return c.score <= 0; });
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const auto& a, const auto& c) { return a.score > c.score; });
  if (static_cast<int>(candidates.size()) > k) candidates.resize(k);
  return candidates;
}

SynthesisResult integrated_synthesis(const dfg::Dfg& g,
                                     const SynthesisParams& p) {
  HLTS_REQUIRE_INPUT(p.k >= 1, "synthesis: k must be >= 1");
  HLTS_REQUIRE_INPUT(p.num_threads >= 0, "synthesis: num_threads must be >= 0");
  HLTS_REQUIRE_INPUT(p.max_iterations >= 0,
                     "synthesis: max_iterations must be >= 0");
  HLTS_REQUIRE_INPUT(p.checkpoint_every >= 0,
                     "synthesis: checkpoint_every must be >= 0");
  g.validate();

  // Crash recovery: a checkpoint is the loop's complete state (see
  // core/checkpoint.hpp), so resuming means seeding schedule + binding from
  // it and starting the iteration counter where it left off.  trial_cache
  // must be off -- its cross-iteration memory is not part of a checkpoint,
  // and resuming without it could rank a near-tie differently.
  const Checkpoint* resume = p.resume_from;
  if (resume != nullptr) {
    HLTS_REQUIRE_INPUT(!p.trial_cache,
                       "synthesis: resume_from requires trial_cache off");
    HLTS_REQUIRE_INPUT(resume->iteration >= 0 &&
                           resume->iteration <= p.max_iterations,
                       "synthesis: resume iteration out of range");
    HLTS_REQUIRE_INPUT(resume->schedule.num_ops() == g.num_ops(),
                       "synthesis: resume schedule does not match the graph");
    HLTS_REQUIRE_INPUT(resume->binding.module_compat() == p.compat,
                       "synthesis: resume binding compat mismatch");
    HLTS_REQUIRE_INPUT(resume->schedule.respects_data_deps(g),
                       "synthesis: resume schedule violates data dependences");
    HLTS_REQUIRE_INPUT(
        schedule_respects_binding(g, resume->binding, resume->schedule),
        "synthesis: resume schedule conflicts with resume binding");
  }
  const int start_iteration = resume != nullptr ? resume->iteration : 0;

  SynthesisResult result;
  result.schedule = resume != nullptr ? resume->schedule : sched::asap(g);
  result.binding = resume != nullptr
                       ? resume->binding
                       : etpn::Binding::default_binding(g, p.compat);
  const int max_latency =
      p.max_latency > 0 ? p.max_latency : g.critical_path_ops() + 1;

  // The committed design's analysis state.  Incremental mode keeps it in
  // an analysis::IncrementalContext (persistent tombstoned ETPN, cone-
  // updated testability fixpoint, cached critical path, workspace pool);
  // the from-scratch reference path (HLTS_INCREMENTAL=0) rebuilds `e` and
  // a fresh TestabilityAnalysis every iteration, exactly as before.
  const bool incremental = p.incremental;
  std::optional<analysis::IncrementalContext> ctx;
  etpn::Etpn e;
  if (incremental) {
    ctx.emplace(g, p.library, p.bits);
    ctx->attach(result.schedule, result.binding);
  } else {
    e = etpn::build_etpn(g, result.schedule, result.binding);
  }
  const auto current_etpn = [&]() -> const etpn::Etpn& {
    return incremental ? ctx->etpn() : e;
  };
  result.exec_time = result.schedule.length();
  result.cost =
      cost::estimate_cost(current_etpn().data_path, p.library, p.bits);

  // One pool for the whole run, reused across iterations.  Everything that
  // follows is bit-identical for any thread count: trials are evaluated
  // independently, wave boundaries depend only on the (deterministic)
  // ranking and cache state, and the reduction walks candidates in rank
  // order with the same comparison the serial loop uses.
  const std::size_t threads = p.num_threads > 0
                                  ? static_cast<std::size_t>(p.num_threads)
                                  : util::ThreadPool::default_threads();
  std::optional<util::ThreadPool> pool;
  if (threads > 1) pool.emplace(threads);

  TrialCache cache;
  // Trial evaluation fans out to pool workers, which do not inherit the
  // caller's thread-local trace; counters go through this captured pointer
  // (Trace is thread-safe) so worker-side work is still accounted.
  util::Trace* trace = util::Trace::current();

  if (p.audit) {
    enforce_audit(audit_design(g, result.schedule, result.binding),
                  "initial schedule/allocation");
    enforce_audit(audit_etpn(g, current_etpn(), result.binding),
                  "initial ETPN");
  }

  // Anytime bookkeeping.  `result` only ever holds a fully committed,
  // consistent design: each iteration stages its entire new state in locals
  // and commits by move, so a fault anywhere in an iteration leaves the
  // previous checkpoint intact.  The flags record which exit the loop took.
  bool cancelled = false;
  bool converged = false;
  bool memory_stop = false;
  std::string degraded;  // transient fault absorbed at an iteration boundary

  for (int iter = start_iteration; iter < p.max_iterations; ++iter) {
    // Cooperative cancellation, checked once per iteration: together with
    // the on_iteration hook below this bounds a caller's cancel latency to
    // one Algorithm-1 iteration.
    if (p.cancel && p.cancel->load(std::memory_order_relaxed)) {
      util::count("synth.cancelled");
      cancelled = true;
      break;
    }
    try {
    HLTS_SPAN("synth.iteration");
    // Steps 4-6: testability analysis, then candidate pairs ranked by the
    // policy.  "Select k pairs of mergable nodes": we walk the ranking in
    // order and keep the first k pairs that survive trial rescheduling, so
    // a small k concentrates the choice on the testability-best mergers
    // (the paper: "a small value of k means that more emphasis is placed on
    // improving the testability measure").
    std::vector<testability::MergeCandidate> ranking;
    {
      HLTS_SPAN("synth.candidates");
      const etpn::Etpn& ce = current_etpn();
      if (incremental) {
        // The context's fixpoint was cone-updated at the last commit and
        // equals a from-scratch analysis; the candidate cap counts alive
        // nodes only (tombstones stay in the id space).  Both caps exceed
        // the pair count, so the ranking is unaffected either way.
        const int all = static_cast<int>(ce.data_path.num_alive_nodes() *
                                         ce.data_path.num_alive_nodes());
        ranking = p.policy == SelectionPolicy::BalanceTestability
                      ? testability::select_balance_candidates(
                            g, result.binding, ce, ctx->analysis(), all,
                            p.balance)
                      : select_connectivity_candidates(g, result.binding, ce,
                                                       all);
      } else {
        testability::TestabilityAnalysis analysis(ce.data_path);
        const int all = static_cast<int>(ce.data_path.num_nodes() *
                                         ce.data_path.num_nodes());
        ranking = p.policy == SelectionPolicy::BalanceTestability
                      ? testability::select_balance_candidates(
                            g, result.binding, ce, analysis, all, p.balance)
                      : select_connectivity_candidates(g, result.binding, ce,
                                                       all);
      }
    }
    if (ranking.empty()) {
      converged = true;
      break;
    }

    // Memory budget: the coming wave may hold one evaluated trial (binding
    // copy + schedule) per ranked candidate.  Stopping here -- before
    // anything is allocated or mutated -- keeps the current checkpoint
    // exact, so the degraded run equals a run capped at this iteration.
    if (p.memory_budget_bytes != 0 &&
        ranking.size() * approx_trial_bytes(g, incremental) >
            p.memory_budget_bytes) {
      util::count("synth.memory_budget_stops");
      memory_stop = true;
      break;
    }

    const double base_exec = static_cast<double>(result.exec_time);
    const double base_hw = result.cost.total();

    std::vector<Outcome> outcomes(ranking.size());
    if (p.trial_cache) {
      for (std::size_t i = 0; i < ranking.size(); ++i) {
        auto it = cache.find(make_key(ranking[i]));
        if (it == cache.end()) continue;
        if (trace) trace->add_counter("synth.cache_hits");
        Outcome& o = outcomes[i];
        o.state = Outcome::State::Cached;
        o.feasible = it->second.feasible;
        o.delta_e = it->second.delta_e;
        o.delta_h = it->second.delta_h;
        o.delta_c = p.alpha * o.delta_e + p.beta * o.delta_h;
      }
    }

    // Evaluates ranking[i] for real and records it in outcomes + cache.
    auto evaluate_at = [&](std::size_t i) {
      if (trace) trace->add_counter("synth.trials_evaluated");
      Outcome& o = outcomes[i];
      o.eval = incremental
                   ? evaluate_trial_incremental(g, p, *ctx, result.schedule,
                                                ranking[i], max_latency)
                   : evaluate_trial_full(g, p, result.binding, result.schedule,
                                         ranking[i], max_latency);
      o.state = Outcome::State::Fresh;
      o.feasible = o.eval.feasible;
      if (o.feasible) {
        o.delta_e = static_cast<double>(o.eval.exec_time) - base_exec;
        o.delta_h = (o.eval.hw_cost - base_hw) / kAreaUnit;
        o.delta_c = p.alpha * o.delta_e + p.beta * o.delta_h;
      }
    };
    auto remember = [&](std::size_t i) {
      if (!p.trial_cache) return;
      const Outcome& o = outcomes[i];
      cache[make_key(ranking[i])] =
          CachedTrial{o.feasible, o.delta_e, o.delta_h};
    };

    // Steps 7-11: resolve the first k feasible candidates in rank order,
    // fanning unresolved trials out across the pool, then pick the smallest
    // dC.  Cached outcomes only rank; a cached winner is re-evaluated fresh
    // before commitment (and the selection re-run on its exact numbers), so
    // the committed schedule/binding always reflects the current state.
    std::optional<std::size_t> winner;
    const std::uint64_t trials_start = trace ? trace->now_us() : 0;
    for (;;) {
      std::vector<std::size_t> chosen;
      std::vector<std::size_t> wave;
      for (std::size_t i = 0;
           i < ranking.size() && chosen.size() < static_cast<std::size_t>(p.k);
           ++i) {
        const Outcome& o = outcomes[i];
        if (o.state == Outcome::State::Unknown) {
          wave.push_back(i);
          // Enough unresolved trials that, were they all feasible, the
          // prefix would fill k: evaluate before scanning further.
          if (chosen.size() + wave.size() >= static_cast<std::size_t>(p.k)) {
            break;
          }
        } else if (o.feasible) {
          chosen.push_back(i);
        }
      }
      if (!wave.empty()) {
        if (pool) {
          pool->parallel_for(wave.size(),
                             [&](std::size_t w) { evaluate_at(wave[w]); });
        } else {
          for (std::size_t w = 0; w < wave.size(); ++w) evaluate_at(wave[w]);
        }
        for (std::size_t i : wave) remember(i);
        continue;  // re-scan with the new knowledge
      }

      if (chosen.empty()) break;  // no feasible merger at all
      std::size_t best = chosen.front();
      for (std::size_t i : chosen) {
        if (outcomes[i].delta_c < outcomes[best].delta_c - 1e-12) best = i;
      }
      if (outcomes[best].state == Outcome::State::Fresh) {
        winner = best;
        break;
      }
      // Cached winner: replace the estimate with a fresh evaluation and
      // re-run the selection on exact numbers.
      evaluate_at(best);
      remember(best);
    }
    if (trace) {
      trace->add_span("synth.trials", trials_start,
                      trace->now_us() - trials_start);
    }

    // Step 15: "until no merger exists".  dC selects *which* merger to
    // commit this iteration; termination happens only when no pair can be
    // merged at all within the latency budget (mergers monotonically shrink
    // the candidate space, so this always terminates).  The cost-driven
    // variant additionally stops when the best candidate no longer pays.
    if (!winner) {
      converged = true;
      break;
    }
    Outcome& win = outcomes[*winner];
    if (p.require_improvement && win.delta_c >= -1e-12) {
      converged = true;
      break;
    }

    // Steps 12-14: commit the merger.  Everything that can fail (ETPN
    // rebuild, cost estimate, testability analysis) is computed into locals
    // *before* the first mutation of `result`, and the mutations themselves
    // are moves: the commit is exception-atomic, which is what makes the
    // catch below safe to resume from.
    HLTS_SPAN("synth.commit");
    const testability::MergeCandidate& cand = ranking[*winner];
    IterationRecord rec;
    rec.description = cand.description(g, result.binding);
    rec.delta_e = win.delta_e;
    rec.delta_h = win.delta_h;
    rec.delta_c = win.delta_c;
    rec.exec_time = win.eval.exec_time;

    if (incremental) {
      // The winner's trial ran on a throwaway workspace; re-apply its
      // merger onto a copy of the committed binding, patch the context's
      // persistent state (ETPN, critical path, testability cone, cost),
      // and only then move the staged state into `result` -- the commit
      // stays exception-atomic with respect to `result`, and a throw in
      // ctx->commit poisons the context, which the catch below turns into
      // a degraded (previous-checkpoint) return.
      etpn::Binding next_b = result.binding;
      cand.apply(g, next_b);
      const analysis::IncrementalContext::CommitResult cres =
          ctx->commit(cand, next_b, win.eval.schedule);
      rec.hw_cost = cres.cost.total();
      rec.registers = next_b.num_alive_regs();
      rec.modules = next_b.num_alive_modules();
      rec.balance_index = ctx->analysis().balance_index();
      if (p.trial_cache) {
        const TrialKey committed = make_key(cand);
        std::erase_if(cache, [&](const auto& kv) {
          const TrialKey& k = kv.first;
          return k.kind == committed.kind &&
                 (k.a == committed.a || k.a == committed.b ||
                  k.b == committed.a || k.b == committed.b);
        });
      }
      result.binding = std::move(next_b);
      result.schedule = std::move(win.eval.schedule);
      result.exec_time = rec.exec_time;
      result.cost = cres.cost;
    } else {
      etpn::Etpn next_e =
          etpn::build_etpn(g, win.eval.schedule, win.eval.binding);
      const cost::HardwareCost next_cost =
          cost::estimate_cost(next_e.data_path, p.library, p.bits);
      testability::TestabilityAnalysis post(next_e.data_path);
      rec.hw_cost = next_cost.total();
      rec.registers = win.eval.binding.num_alive_regs();
      rec.modules = win.eval.binding.num_alive_modules();
      rec.balance_index = post.balance_index();

      if (p.trial_cache) {
        // Drop every cached trial that touches one of the committed pair's
        // binding groups: the surviving group changed content and the other
        // became a tombstone.  Disjoint pairs keep their dE/dH.
        const TrialKey committed = make_key(cand);
        std::erase_if(cache, [&](const auto& kv) {
          const TrialKey& k = kv.first;
          return k.kind == committed.kind &&
                 (k.a == committed.a || k.a == committed.b ||
                  k.b == committed.a || k.b == committed.b);
        });
      }
      result.binding = std::move(win.eval.binding);
      result.schedule = std::move(win.eval.schedule);
      result.exec_time = rec.exec_time;
      result.cost = next_cost;
      e = std::move(next_e);
    }
    HLTS_DEBUG("iter " << iter << ": " << rec.description << " dC=" << rec.delta_c
                       << " E=" << rec.exec_time << " H=" << rec.hw_cost);
    result.trajectory.push_back(std::move(rec));
    util::count("synth.mergers");
    util::count("synth.checkpoints");
    if (p.audit) {
      enforce_audit(audit_design(g, result.schedule, result.binding),
                    "iteration commit");
      enforce_audit(audit_etpn(g, current_etpn(), result.binding),
                    "iteration commit");
    }
    if (p.on_iteration) p.on_iteration(result.trajectory.back());
    // Checkpoint cadence, counted in absolute iterations so resumed and
    // uninterrupted runs hit the same boundaries.  `iter + 1` committed
    // mergers are baked into the design at this point.  A throwing hook
    // (e.g. a journal write hitting a fault) lands in the catch below: the
    // just-committed design is complete, so degrading here is safe.
    if (p.on_checkpoint && p.checkpoint_every > 0 &&
        (iter + 1) % p.checkpoint_every == 0) {
      util::count("synth.checkpoint_emits");
      p.on_checkpoint(Checkpoint{iter + 1, result.schedule, result.binding});
    }
    } catch (const std::exception& ex) {
      // Anytime degradation: a *transient* fault (injected failpoint,
      // allocation failure under memory pressure) anywhere in the iteration
      // is absorbed at this boundary -- `result` still holds the previous
      // checkpoint, which is returned as a Partial result.  Input and
      // Internal errors (contract violations, audit failures) stay fatal:
      // corruption must escape loudly, never as a "valid" partial design.
      if (classify_exception(ex) != ErrorKind::Transient) throw;
      degraded = ex.what();
      util::count("synth.degraded");
      break;
    }
  }

  // Absolute count: a resumed run reports the same iteration number the
  // uninterrupted run would (its trajectory only holds the mergers committed
  // *after* the checkpoint -- the earlier ones are baked into the seed).
  result.iterations =
      start_iteration + static_cast<int>(result.trajectory.size());
  if (cancelled) {
    result.completeness = Completeness::Partial;
    result.stop_reason = "cancelled";
  } else if (!degraded.empty()) {
    result.completeness = Completeness::Partial;
    result.stop_reason = "degraded: " + degraded;
  } else if (memory_stop) {
    result.completeness = Completeness::Partial;
    result.stop_reason = "memory_budget";
  } else if (converged) {
    result.completeness = Completeness::Full;
    result.stop_reason = "converged";
  } else {
    result.completeness = Completeness::Partial;
    result.stop_reason = "iteration_budget";
  }

  result.binding.validate(g);
  HLTS_REQUIRE(schedule_respects_binding(g, result.binding, result.schedule),
               "synthesis result violates its own binding");
  return result;
}

}  // namespace hlts::core
