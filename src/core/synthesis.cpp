#include "core/synthesis.hpp"

#include <algorithm>
#include <set>

#include "sched/schedule.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace hlts::core {

namespace {

/// Sources/destinations of a data-path node (ignoring ports' step labels).
void neighbour_sets(const etpn::DataPath& dp, etpn::DpNodeId n,
                    std::set<std::uint32_t>& sources,
                    std::set<std::uint32_t>& dests) {
  for (etpn::DpArcId a : dp.node(n).in_arcs) {
    sources.insert(dp.arc(a).from.value());
  }
  for (etpn::DpArcId a : dp.node(n).out_arcs) {
    dests.insert(dp.arc(a).to.value());
  }
}

int shared_count(const std::set<std::uint32_t>& a,
                 const std::set<std::uint32_t>& b) {
  int n = 0;
  for (std::uint32_t x : a) n += b.count(x) ? 1 : 0;
  return n;
}

}  // namespace

std::vector<testability::MergeCandidate> select_connectivity_candidates(
    const dfg::Dfg& g, const etpn::Binding& b, const etpn::Etpn& e, int k) {
  std::vector<testability::MergeCandidate> candidates;
  const etpn::DataPath& dp = e.data_path;

  auto closeness = [&](etpn::DpNodeId n1, etpn::DpNodeId n2) {
    std::set<std::uint32_t> s1, d1, s2, d2;
    neighbour_sets(dp, n1, s1, d1);
    neighbour_sets(dp, n2, s2, d2);
    // Shared sources/destinations save multiplexer inputs and wires; a
    // direct connection between the two nodes is "closeness" as well.
    int score = shared_count(s1, s2) + shared_count(d1, d2);
    if (d1.count(n2.value()) || d2.count(n1.value())) ++score;
    return score;
  };

  std::vector<etpn::ModuleId> modules = b.alive_modules();
  for (std::size_t i = 0; i < modules.size(); ++i) {
    for (std::size_t j = i + 1; j < modules.size(); ++j) {
      if (!b.can_merge_modules(g, modules[i], modules[j])) continue;
      testability::MergeCandidate c;
      c.kind = testability::MergeCandidate::Kind::Modules;
      c.module_a = modules[i];
      c.module_b = modules[j];
      c.score = closeness(e.module_node[modules[i]], e.module_node[modules[j]]);
      candidates.push_back(c);
    }
  }
  std::vector<etpn::RegId> regs = b.alive_regs();
  for (std::size_t i = 0; i < regs.size(); ++i) {
    for (std::size_t j = i + 1; j < regs.size(); ++j) {
      if (!b.can_merge_regs(regs[i], regs[j])) continue;
      if (testability::register_merge_impossible(g, b, regs[i], regs[j])) {
        continue;
      }
      testability::MergeCandidate c;
      c.kind = testability::MergeCandidate::Kind::Registers;
      c.reg_a = regs[i];
      c.reg_b = regs[j];
      c.score = closeness(e.reg_node[regs[i]], e.reg_node[regs[j]]);
      candidates.push_back(c);
    }
  }
  // A closeness-driven allocator only considers pairs that actually share
  // interconnect; merging unrelated nodes brings it no wiring benefit.
  std::erase_if(candidates,
                [](const testability::MergeCandidate& c) { return c.score <= 0; });
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const auto& a, const auto& c) { return a.score > c.score; });
  if (static_cast<int>(candidates.size()) > k) candidates.resize(k);
  return candidates;
}

SynthesisResult integrated_synthesis(const dfg::Dfg& g,
                                     const SynthesisParams& p) {
  HLTS_REQUIRE(p.k >= 1, "synthesis: k must be >= 1");
  g.validate();

  SynthesisResult result;
  result.schedule = sched::asap(g);
  result.binding = etpn::Binding::default_binding(g, p.compat);
  const int max_latency =
      p.max_latency > 0 ? p.max_latency : g.critical_path_ops() + 1;

  etpn::Etpn e = etpn::build_etpn(g, result.schedule, result.binding);
  result.exec_time = result.schedule.length();
  result.cost = cost::estimate_cost(e.data_path, p.library, p.bits);

  for (int iter = 0; iter < p.max_iterations; ++iter) {
    // Steps 4-6: testability analysis, then candidate pairs ranked by the
    // policy.  "Select k pairs of mergable nodes": we walk the ranking in
    // order and keep the first k pairs that survive trial rescheduling, so
    // a small k concentrates the choice on the testability-best mergers
    // (the paper: "a small value of k means that more emphasis is placed on
    // improving the testability measure").
    testability::TestabilityAnalysis analysis(e.data_path);
    const int all = static_cast<int>(e.data_path.num_nodes() *
                                     e.data_path.num_nodes());
    std::vector<testability::MergeCandidate> ranking =
        p.policy == SelectionPolicy::BalanceTestability
            ? testability::select_balance_candidates(g, result.binding, e,
                                                     analysis, all, p.balance)
            : select_connectivity_candidates(g, result.binding, e, all);
    if (ranking.empty()) break;

    // Steps 7-11: estimate dE/dH for the k feasible pairs, pick smallest dC.
    struct Trial {
      etpn::Binding binding;
      sched::Schedule schedule;
      double delta_e = 0, delta_h = 0, delta_c = 0;
      int exec_time = 0;
      double hw_cost = 0;
      std::string description;
    };
    std::optional<Trial> best;
    int feasible_seen = 0;
    for (const auto& cand : ranking) {
      if (feasible_seen >= p.k) break;
      Trial t;
      t.binding = result.binding;
      if (cand.kind == testability::MergeCandidate::Kind::Modules) {
        t.description = "merge modules [" +
                        t.binding.module_label(g, cand.module_a) + " | " +
                        t.binding.module_label(g, cand.module_b) + "]";
        t.binding.merge_modules(g, cand.module_a, cand.module_b);
      } else {
        t.description = "merge registers [" +
                        t.binding.reg_label(g, cand.reg_a) + " | " +
                        t.binding.reg_label(g, cand.reg_b) + "]";
        t.binding.merge_regs(cand.reg_a, cand.reg_b);
      }
      ReschedOutcome r = reschedule(g, t.binding, result.schedule, p.order);
      if (!r.feasible || r.schedule.length() > max_latency) continue;
      ++feasible_seen;
      t.schedule = r.schedule;
      t.exec_time = t.schedule.length();
      etpn::Etpn trial_etpn = etpn::build_etpn(g, t.schedule, t.binding);
      t.hw_cost =
          cost::estimate_cost(trial_etpn.data_path, p.library, p.bits).total();
      t.delta_e = static_cast<double>(t.exec_time - result.exec_time);
      t.delta_h = (t.hw_cost - result.cost.total()) / kAreaUnit;
      t.delta_c = p.alpha * t.delta_e + p.beta * t.delta_h;
      if (!best || t.delta_c < best->delta_c - 1e-12) best = std::move(t);
    }

    // Step 15: "until no merger exists".  dC selects *which* merger to
    // commit this iteration; termination happens only when no pair can be
    // merged at all within the latency budget (mergers monotonically shrink
    // the candidate space, so this always terminates).  The cost-driven
    // variant additionally stops when the best candidate no longer pays.
    if (!best) break;
    if (p.require_improvement && best->delta_c >= -1e-12) break;

    // Steps 12-14: commit the merger.
    result.binding = std::move(best->binding);
    result.schedule = std::move(best->schedule);
    result.exec_time = best->exec_time;
    e = etpn::build_etpn(g, result.schedule, result.binding);
    result.cost = cost::estimate_cost(e.data_path, p.library, p.bits);
    testability::TestabilityAnalysis post(e.data_path);
    IterationRecord rec;
    rec.description = best->description;
    rec.delta_e = best->delta_e;
    rec.delta_h = best->delta_h;
    rec.delta_c = best->delta_c;
    rec.exec_time = result.exec_time;
    rec.hw_cost = result.cost.total();
    rec.registers = result.binding.num_alive_regs();
    rec.modules = result.binding.num_alive_modules();
    rec.balance_index = post.balance_index();
    HLTS_DEBUG("iter " << iter << ": " << rec.description << " dC=" << rec.delta_c
                       << " E=" << rec.exec_time << " H=" << rec.hw_cost);
    result.trajectory.push_back(std::move(rec));
  }

  result.binding.validate(g);
  HLTS_REQUIRE(schedule_respects_binding(g, result.binding, result.schedule),
               "synthesis result violates its own binding");
  return result;
}

}  // namespace hlts::core
