#include "core/checkpoint.hpp"

#include <cstdint>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "core/resched.hpp"
#include "util/error.hpp"

namespace hlts::core {

namespace {

using util::JsonValue;

/// Input-kind failure with a uniform prefix, so journal readers can report
/// "which file" + "what was wrong with it".
[[noreturn]] void bad(const std::string& what) {
  throw Error("checkpoint document: " + what, ErrorKind::Input);
}

const JsonValue& member(const JsonValue& v, const char* key) {
  if (!v.is_object()) bad(std::string("expected object holding '") + key + "'");
  const JsonValue* m = v.find(key);
  if (m == nullptr) bad(std::string("missing member '") + key + "'");
  return *m;
}

std::int64_t member_int(const JsonValue& v, const char* key) {
  const JsonValue& m = member(v, key);
  if (!m.is_int()) bad(std::string("member '") + key + "' must be an integer");
  return m.as_int();
}

bool member_bool(const JsonValue& v, const char* key) {
  const JsonValue& m = member(v, key);
  if (!m.is_bool()) bad(std::string("member '") + key + "' must be a bool");
  return m.as_bool();
}

std::string member_string(const JsonValue& v, const char* key) {
  const JsonValue& m = member(v, key);
  if (!m.is_string()) bad(std::string("member '") + key + "' must be a string");
  return m.as_string();
}

const JsonValue::Array& member_array(const JsonValue& v, const char* key) {
  const JsonValue& m = member(v, key);
  if (!m.is_array()) bad(std::string("member '") + key + "' must be an array");
  return m.as_array();
}

/// Ids serialized as their dense indices; `limit` is the table size they
/// must index into.
template <typename IdT>
std::vector<IdT> id_array(const JsonValue& v, const char* key,
                          std::size_t limit) {
  std::vector<IdT> out;
  for (const JsonValue& e : member_array(v, key)) {
    if (!e.is_int() || e.as_int() < 0 ||
        static_cast<std::uint64_t>(e.as_int()) >= limit) {
      bad(std::string("member '") + key + "' holds an out-of-range id");
    }
    out.push_back(IdT{static_cast<typename IdT::underlying_type>(e.as_int())});
  }
  return out;
}

JsonValue int_array(const std::vector<std::int64_t>& xs) {
  JsonValue::Array a;
  a.reserve(xs.size());
  for (std::int64_t x : xs) a.push_back(JsonValue::make_int(x));
  return JsonValue::make_array(std::move(a));
}

dfg::OpKind op_kind_from_name(const std::string& name) {
  using dfg::OpKind;
  for (OpKind k :
       {OpKind::Add, OpKind::Sub, OpKind::Mul, OpKind::Div, OpKind::Less,
        OpKind::Greater, OpKind::Equal, OpKind::And, OpKind::Or, OpKind::Xor,
        OpKind::Not, OpKind::ShiftLeft, OpKind::ShiftRight, OpKind::Move}) {
    if (name == dfg::op_name(k)) return k;
  }
  bad("unknown operation kind '" + name + "'");
}

}  // namespace

// --- DFG --------------------------------------------------------------------

util::JsonValue dfg_to_json(const dfg::Dfg& g) {
  JsonValue::Array vars;
  for (dfg::VarId v : g.var_ids()) {
    const dfg::Variable& var = g.var(v);
    vars.push_back(JsonValue::make_object({
        {"name", JsonValue::make_string(var.name)},
        {"pi", JsonValue::make_bool(var.is_primary_input)},
        {"po", JsonValue::make_bool(var.is_primary_output)},
        {"po_reg", JsonValue::make_bool(var.po_registered)},
    }));
  }
  JsonValue::Array ops;
  for (dfg::OpId op : g.op_ids()) {
    const dfg::Operation& o = g.op(op);
    std::vector<std::int64_t> inputs;
    for (dfg::VarId in : o.inputs) inputs.push_back(in.index());
    ops.push_back(JsonValue::make_object({
        {"name", JsonValue::make_string(o.name)},
        {"kind", JsonValue::make_string(dfg::op_name(o.kind))},
        {"inputs", int_array(inputs)},
        {"output", JsonValue::make_int(o.output.index())},
    }));
  }
  return JsonValue::make_object({
      {"name", JsonValue::make_string(g.name())},
      {"vars", JsonValue::make_array(std::move(vars))},
      {"ops", JsonValue::make_array(std::move(ops))},
  });
}

dfg::Dfg dfg_from_json(const util::JsonValue& v) {
  dfg::Dfg g(member_string(v, "name"));
  const JsonValue::Array& vars = member_array(v, "vars");
  for (const JsonValue& var : vars) {
    const std::string name = member_string(var, "name");
    if (member_bool(var, "pi")) {
      g.add_input(name);
    } else {
      g.add_variable(name);
    }
  }
  for (const JsonValue& op : member_array(v, "ops")) {
    const dfg::OpKind kind = op_kind_from_name(member_string(op, "kind"));
    const std::vector<dfg::VarId> inputs =
        id_array<dfg::VarId>(op, "inputs", g.num_vars());
    const std::int64_t out = member_int(op, "output");
    if (out < 0 || static_cast<std::size_t>(out) >= g.num_vars()) {
      bad("op output id out of range");
    }
    try {
      g.add_op(member_string(op, "name"), kind, inputs,
               dfg::VarId{static_cast<dfg::VarId::underlying_type>(out)});
    } catch (const Error& e) {
      bad(std::string("inconsistent op: ") + e.what());
    }
  }
  for (std::size_t i = 0; i < vars.size(); ++i) {
    if (member_bool(vars[i], "po")) {
      g.mark_output(dfg::VarId{static_cast<dfg::VarId::underlying_type>(i)},
                    member_bool(vars[i], "po_reg"));
    }
  }
  try {
    g.validate();
  } catch (const Error& e) {
    bad(std::string("graph invalid: ") + e.what());
  }
  return g;
}

// --- AlgorithmOptions --------------------------------------------------------

util::JsonValue params_to_json(const AlgorithmOptions& p) {
  return JsonValue::make_object({
      {"bits", JsonValue::make_int(p.bits)},
      {"k", JsonValue::make_int(p.k)},
      {"alpha", JsonValue::make_number(p.alpha)},
      {"beta", JsonValue::make_number(p.beta)},
      {"max_latency", JsonValue::make_int(p.max_latency)},
      {"num_threads", JsonValue::make_int(p.num_threads)},
      {"trial_cache", JsonValue::make_bool(p.trial_cache)},
      {"max_iterations", JsonValue::make_int(p.max_iterations)},
      {"memory_budget_bytes",
       JsonValue::make_int(static_cast<std::int64_t>(p.memory_budget_bytes))},
      {"audit", JsonValue::make_bool(p.audit)},
      {"incremental", JsonValue::make_bool(p.incremental)},
      {"atpg_backend", JsonValue::make_string(p.atpg_backend)},
      {"sat_frames", JsonValue::make_int(p.sat_frames)},
      {"sat_conflict_budget", JsonValue::make_int(p.sat_conflict_budget)},
  });
}

AlgorithmOptions params_from_json(const util::JsonValue& v) {
  AlgorithmOptions p;
  const std::int64_t bits = member_int(v, "bits");
  const std::int64_t k = member_int(v, "k");
  const std::int64_t max_iter = member_int(v, "max_iterations");
  const std::int64_t mem = member_int(v, "memory_budget_bytes");
  if (bits <= 0 || bits > 1 << 16) bad("bits out of range");
  if (k < 1) bad("k out of range");
  if (max_iter < 0) bad("max_iterations out of range");
  if (mem < 0) bad("memory_budget_bytes negative");
  const JsonValue& alpha = member(v, "alpha");
  const JsonValue& beta = member(v, "beta");
  if (!alpha.is_number() || !beta.is_number()) bad("alpha/beta must be numbers");
  p.bits = static_cast<int>(bits);
  p.k = static_cast<int>(k);
  p.alpha = alpha.as_double();
  p.beta = beta.as_double();
  p.max_latency = static_cast<int>(member_int(v, "max_latency"));
  p.num_threads = static_cast<int>(member_int(v, "num_threads"));
  if (p.max_latency < 0) bad("max_latency negative");
  if (p.num_threads < 0) bad("num_threads negative");
  p.trial_cache = member_bool(v, "trial_cache");
  p.max_iterations = static_cast<int>(max_iter);
  p.memory_budget_bytes = static_cast<std::size_t>(mem);
  p.audit = member_bool(v, "audit");
  p.incremental = member_bool(v, "incremental");
  // ATPG backend knobs postdate the journal format; absent members keep
  // their defaults so pre-existing journals stay readable.
  if (const JsonValue* m = v.find("atpg_backend")) {
    if (!m->is_string()) bad("member 'atpg_backend' must be a string");
    p.atpg_backend = m->as_string();
  }
  if (const JsonValue* m = v.find("sat_frames")) {
    if (!m->is_int()) bad("member 'sat_frames' must be an integer");
    if (m->as_int() < 0) bad("sat_frames negative");
    p.sat_frames = static_cast<int>(m->as_int());
  }
  if (const JsonValue* m = v.find("sat_conflict_budget")) {
    if (!m->is_int()) bad("member 'sat_conflict_budget' must be an integer");
    if (m->as_int() < 0) bad("sat_conflict_budget negative");
    p.sat_conflict_budget = m->as_int();
  }
  return p;
}

// --- Checkpoint --------------------------------------------------------------

util::JsonValue checkpoint_to_json(const Checkpoint& c) {
  std::vector<std::int64_t> steps;
  steps.reserve(c.schedule.num_ops());
  for (dfg::OpId op : id_range<dfg::OpId>(c.schedule.num_ops())) {
    steps.push_back(c.schedule.step(op));
  }
  const etpn::Binding& b = c.binding;
  JsonValue::Array modules;
  for (etpn::ModuleId m : id_range<etpn::ModuleId>(b.num_module_slots())) {
    std::vector<std::int64_t> ops;
    for (dfg::OpId op : b.module_ops(m)) ops.push_back(op.index());
    modules.push_back(JsonValue::make_object({
        {"alive", JsonValue::make_bool(b.module_alive(m))},
        {"ops", int_array(ops)},
    }));
  }
  JsonValue::Array regs;
  for (etpn::RegId r : id_range<etpn::RegId>(b.num_reg_slots())) {
    std::vector<std::int64_t> vars;
    for (dfg::VarId var : b.reg_vars(r)) vars.push_back(var.index());
    regs.push_back(JsonValue::make_object({
        {"alive", JsonValue::make_bool(b.reg_alive(r))},
        {"vars", int_array(vars)},
    }));
  }
  return JsonValue::make_object({
      {"iteration", JsonValue::make_int(c.iteration)},
      {"compat",
       JsonValue::make_string(b.module_compat() == etpn::ModuleCompat::AluClass
                                  ? "alu"
                                  : "exact")},
      {"schedule", int_array(steps)},
      {"modules", JsonValue::make_array(std::move(modules))},
      {"regs", JsonValue::make_array(std::move(regs))},
  });
}

Checkpoint checkpoint_from_json(const util::JsonValue& v, const dfg::Dfg& g) {
  Checkpoint c;
  const std::int64_t iteration = member_int(v, "iteration");
  if (iteration < 0 || iteration > std::numeric_limits<int>::max()) {
    bad("iteration out of range");
  }
  c.iteration = static_cast<int>(iteration);

  const std::string compat_name = member_string(v, "compat");
  etpn::ModuleCompat compat;
  if (compat_name == "exact") {
    compat = etpn::ModuleCompat::ExactKind;
  } else if (compat_name == "alu") {
    compat = etpn::ModuleCompat::AluClass;
  } else {
    bad("unknown module compat '" + compat_name + "'");
  }

  const JsonValue::Array& steps = member_array(v, "schedule");
  if (steps.size() != g.num_ops()) bad("schedule length != number of ops");
  c.schedule = sched::Schedule(g.num_ops());
  for (std::size_t i = 0; i < steps.size(); ++i) {
    if (!steps[i].is_int() || steps[i].as_int() < 1 ||
        steps[i].as_int() > std::numeric_limits<int>::max()) {
      bad("schedule step out of range");
    }
    c.schedule.set_step(dfg::OpId{static_cast<dfg::OpId::underlying_type>(i)},
                        static_cast<int>(steps[i].as_int()));
  }
  if (!c.schedule.respects_data_deps(g)) {
    bad("schedule violates data dependences");
  }

  const JsonValue::Array& modules = member_array(v, "modules");
  std::vector<std::vector<dfg::OpId>> module_groups;
  std::vector<bool> module_alive;
  for (const JsonValue& m : modules) {
    module_groups.push_back(id_array<dfg::OpId>(m, "ops", g.num_ops()));
    module_alive.push_back(member_bool(m, "alive"));
  }
  const JsonValue::Array& regs = member_array(v, "regs");
  std::vector<std::vector<dfg::VarId>> reg_groups;
  std::vector<bool> reg_alive;
  for (const JsonValue& r : regs) {
    reg_groups.push_back(id_array<dfg::VarId>(r, "vars", g.num_vars()));
    reg_alive.push_back(member_bool(r, "alive"));
  }
  // from_groups validates the full binding invariant set and throws
  // Error(Input) itself on inconsistent state.
  c.binding = etpn::Binding::from_groups(g, compat, module_groups, module_alive,
                                         reg_groups, reg_alive);
  if (!schedule_respects_binding(g, c.binding, c.schedule)) {
    bad("schedule shares a module/register within one control step");
  }
  return c;
}

}  // namespace hlts::core
