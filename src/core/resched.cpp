#include "core/resched.hpp"

#include <algorithm>
#include <climits>
#include <vector>

#include "sched/constraint_graph.hpp"
#include "sched/lifetime.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"

namespace hlts::core {

namespace {

using ModuleChains = std::vector<std::vector<dfg::OpId>>;
using RegChains = std::vector<std::vector<dfg::VarId>>;

/// Builds the constraint graph for the given execution/lifetime orders and
/// solves it.
std::optional<sched::Schedule> solve_orders(const dfg::Dfg& g,
                                            const ModuleChains& module_chains,
                                            const RegChains& reg_chains) {
  sched::ConstraintGraph cg(g);
  for (const auto& chain : module_chains) {
    for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
      cg.add_arc(chain[i], chain[i + 1], 1);
    }
  }
  for (const auto& chain : reg_chains) {
    for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
      const dfg::Variable& earlier = g.var(chain[i]);
      const dfg::Variable& later = g.var(chain[i + 1]);
      if (!later.def.valid()) return std::nullopt;  // PI not first: impossible
      // The later variable may be written at the clock edge ending the step
      // in which the earlier one is last read (weight-0 arcs).
      if (earlier.uses.empty()) {
        if (earlier.def.valid()) cg.add_arc(earlier.def, later.def, 0);
      } else {
        for (dfg::OpId use : earlier.uses) {
          cg.add_arc(use, later.def, 0);
        }
      }
    }
  }
  return cg.solve();
}

/// Lifetime-order sort key: primary inputs first (born at load time),
/// registered primary outputs last (held to the end), otherwise previous
/// birth step.
int var_order_key(const dfg::Dfg& g, const sched::Schedule& hint,
                  dfg::VarId v) {
  const dfg::Variable& var = g.var(v);
  if (var.is_primary_input) return -1;
  if (var.is_primary_output && var.po_registered) return INT_MAX;
  return hint.step(var.def);
}

/// Structural feasibility of one register's variable set: at most one
/// primary input (all PIs are born simultaneously) and at most one
/// registered primary output (all are held to the end).
bool reg_set_feasible(const dfg::Dfg& g, const std::vector<dfg::VarId>& vars) {
  int pis = 0;
  int pos = 0;
  for (dfg::VarId v : vars) {
    const dfg::Variable& var = g.var(v);
    if (var.is_primary_input) ++pis;
    if (var.is_primary_output && var.po_registered) ++pos;
  }
  return pis <= 1 && pos <= 1;
}

}  // namespace

bool schedule_respects_binding(const dfg::Dfg& g, const etpn::Binding& b,
                               const sched::Schedule& s) {
  if (!s.respects_data_deps(g)) return false;
  for (etpn::ModuleId m : b.alive_modules()) {
    const auto& ops = b.module_ops(m);
    for (std::size_t i = 0; i < ops.size(); ++i) {
      for (std::size_t j = i + 1; j < ops.size(); ++j) {
        if (s.step(ops[i]) == s.step(ops[j])) return false;
      }
    }
  }
  const sched::LifetimeTable lifetimes = sched::LifetimeTable::compute(g, s);
  for (etpn::RegId r : b.alive_regs()) {
    const auto& vars = b.reg_vars(r);
    for (std::size_t i = 0; i < vars.size(); ++i) {
      for (std::size_t j = i + 1; j < vars.size(); ++j) {
        if (!lifetimes.disjoint(vars[i], vars[j])) return false;
      }
    }
  }
  return true;
}

ReschedOutcome reschedule(const dfg::Dfg& g, const etpn::Binding& b,
                          const sched::Schedule& hint,
                          OrderStrategy strategy,
                          const etpn::Etpn* premerged) {
  HLTS_FAILPOINT("sched.reschedule");
  ReschedOutcome out;

  // --- derive initial chains from the previous schedule ---------------------
  ModuleChains module_chains;
  for (etpn::ModuleId m : b.alive_modules()) {
    std::vector<dfg::OpId> chain = b.module_ops(m);
    std::stable_sort(chain.begin(), chain.end(), [&](dfg::OpId a, dfg::OpId c) {
      return hint.step(a) < hint.step(c);
    });
    module_chains.push_back(std::move(chain));
  }
  RegChains reg_chains;
  for (etpn::RegId r : b.alive_regs()) {
    std::vector<dfg::VarId> chain = b.reg_vars(r);
    if (!reg_set_feasible(g, chain)) return out;
    std::stable_sort(chain.begin(), chain.end(), [&](dfg::VarId a, dfg::VarId c) {
      return var_order_key(g, hint, a) < var_order_key(g, hint, c);
    });
    reg_chains.push_back(std::move(chain));
  }

  auto solution = solve_orders(g, module_chains, reg_chains);

  // --- SR1/SR2 ordering refinement at conflict points ------------------------
  // Conflict points are adjacent chain elements that previously shared a
  // control step (modules) or a birth step (registers): exactly the places
  // where the merger forces a new ordering decision.  Each is resolved by
  // comparing the two orders; the testability strategy prefers executing
  // first the operation whose operand registers are nearest to primary
  // inputs (SR2 supports SR1: the controllable value is consumed at once
  // and its result heads toward an observable register one step sooner),
  // falling back to the smallest critical-path increase.  The plain
  // strategy swaps only when forced or when it shortens the schedule.
  // Register distances are a pure BFS over the alive data-path topology --
  // step annotations never enter -- so a caller-supplied merge-patched graph
  // (structurally identical, stale steps) yields the same distances as the
  // fresh build and therefore the identical schedule.
  std::optional<etpn::Etpn> local_e;
  if (premerged == nullptr) {
    local_e.emplace(etpn::build_etpn(g, hint, b));
    premerged = &*local_e;
  }
  const etpn::Etpn& e = *premerged;
  const etpn::DataPath::RegisterDistances dist =
      e.data_path.register_distances();
  auto op_controllability_key = [&](dfg::OpId op) {
    // Smaller = operands closer to primary inputs.
    int best = INT_MAX;
    for (dfg::VarId in : g.op(op).inputs) {
      etpn::RegId r = b.reg_of(in);
      if (!r.valid()) continue;
      const int d = dist.d_in[e.reg_node[r].index()];
      if (d >= 0) best = std::min(best, d);
    }
    return best;
  };

  auto evaluate = [&](const ModuleChains& mc, const RegChains& rc)
      -> std::optional<int> {
    auto s = solve_orders(g, mc, rc);
    if (!s) return std::nullopt;
    return s->length();
  };

  for (auto& chain : module_chains) {
    for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
      const bool tied = hint.step(chain[i]) == hint.step(chain[i + 1]);
      // Candidate orders: as-is and swapped.  Non-tied pairs keep the
      // incumbent order unless it is infeasible (the paper's two
      // "possibilities" are explored only where the merger created a new
      // ordering decision).
      auto len_asis = evaluate(module_chains, reg_chains);
      if (!tied && len_asis) continue;  // keep incumbent order
      std::swap(chain[i], chain[i + 1]);
      auto len_swap = evaluate(module_chains, reg_chains);

      bool keep_swap = false;
      if (!len_asis) {
        keep_swap = len_swap.has_value();  // only the swap is feasible
      } else if (len_swap) {
        if (strategy == OrderStrategy::Testability) {
          const int ka = op_controllability_key(chain[i + 1]);  // swapped
          const int kb = op_controllability_key(chain[i]);
          if (ka != kb) {
            keep_swap = kb < ka;  // SR2: more controllable operands go first
          } else {
            keep_swap = *len_swap < *len_asis;  // critical-path fallback
          }
        } else {
          keep_swap = *len_swap < *len_asis;
        }
      }
      if (!keep_swap) std::swap(chain[i], chain[i + 1]);  // undo
    }
  }

  for (auto& chain : reg_chains) {
    for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
      // Primary inputs are born at load time and must stay first; registered
      // primary outputs are held to the end and must stay last.  The
      // constraint graph cannot express these (they are not op-to-op arcs),
      // so such pairs are never reordered.
      const dfg::Variable& vi = g.var(chain[i]);
      const dfg::Variable& vj = g.var(chain[i + 1]);
      if (vi.is_primary_input || (vj.is_primary_output && vj.po_registered)) {
        continue;
      }
      const bool tied = var_order_key(g, hint, chain[i]) ==
                        var_order_key(g, hint, chain[i + 1]);
      auto len_asis = evaluate(module_chains, reg_chains);
      if (!tied && len_asis) continue;
      std::swap(chain[i], chain[i + 1]);
      auto len_swap = evaluate(module_chains, reg_chains);

      bool keep_swap = false;
      if (!len_asis) {
        keep_swap = len_swap.has_value();
      } else if (len_swap) {
        if (strategy == OrderStrategy::Testability) {
          // SR1 at the variable level: let the variable whose defining op
          // has the more controllable operands expire first.
          const dfg::Variable& va = g.var(chain[i + 1]);  // swapped
          const dfg::Variable& vb = g.var(chain[i]);
          const int ka = va.def.valid() ? op_controllability_key(va.def) : -1;
          const int kb = vb.def.valid() ? op_controllability_key(vb.def) : -1;
          if (ka != kb) {
            keep_swap = kb < ka;
          } else {
            keep_swap = *len_swap < *len_asis;
          }
        } else {
          keep_swap = *len_swap < *len_asis;
        }
      }
      if (!keep_swap) std::swap(chain[i], chain[i + 1]);
    }
  }

  solution = solve_orders(g, module_chains, reg_chains);
  if (!solution) return out;

  out.feasible = true;
  out.schedule = *solution;
  HLTS_REQUIRE(schedule_respects_binding(g, b, out.schedule),
               "rescheduler produced a schedule violating the binding");
  return out;
}

}  // namespace hlts::core
