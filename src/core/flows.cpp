#include "core/flows.hpp"

#include <cstdlib>
#include <string>

#include "alloc/alloc.hpp"
#include "core/validate.hpp"
#include "sched/fds.hpp"
#include "sched/mobility_path.hpp"
#include "util/error.hpp"
#include "util/knobs.hpp"
#include "util/trace.hpp"

namespace hlts::core {

const char* flow_name(FlowKind kind) {
  switch (kind) {
    case FlowKind::Camad: return "CAMAD";
    case FlowKind::Approach1: return "Approach 1";
    case FlowKind::Approach2: return "Approach 2";
    case FlowKind::Ours: return "Ours";
  }
  return "?";
}

const char* completeness_name(Completeness c) {
  switch (c) {
    case Completeness::Full: return "full";
    case Completeness::Partial: return "partial";
  }
  return "?";
}

bool incremental_default() {
  return util::knobs::read_flag("HLTS_INCREMENTAL").value_or(true);
}

namespace {

FlowResult finalize(FlowKind kind, const dfg::Dfg& g, sched::Schedule schedule,
                    etpn::Binding binding, const FlowParams& params,
                    Completeness completeness = Completeness::Full,
                    int iterations = 0, std::string stop_reason = "complete") {
  HLTS_SPAN("flow.finalize");  // ETPN rebuild + cost + testability metrics
  FlowResult r;
  r.kind = kind;
  r.name = flow_name(kind);
  r.schedule = std::move(schedule);
  r.binding = std::move(binding);
  r.completeness = completeness;
  r.iterations = iterations;
  r.stop_reason = std::move(stop_reason);
  r.exec_time = r.schedule.length();
  r.registers = r.binding.num_alive_regs();
  r.modules = r.binding.num_alive_modules();

  etpn::Etpn e = etpn::build_etpn(g, r.schedule, r.binding);
  r.muxes = e.data_path.mux_count();
  r.self_loops = e.data_path.self_loop_count();
  r.cost = cost::estimate_cost(e.data_path, params.library, params.bits);
  testability::TestabilityAnalysis analysis(e.data_path);
  r.balance_index = analysis.balance_index();
  const auto depth = e.data_path.sequential_depth();
  r.seq_depth_max = depth.max_depth;
  r.seq_depth_total = depth.total_depth;

  for (etpn::ModuleId m : r.binding.alive_modules()) {
    r.module_allocation.push_back(r.binding.module_label(g, m));
  }
  for (etpn::RegId reg : r.binding.alive_regs()) {
    r.register_allocation.push_back(r.binding.reg_label(g, reg));
  }
  if (params.audit) {
    enforce_audit(audit_design(g, r.schedule, r.binding), "flow.finalize");
    enforce_audit(audit_etpn(g, e, r.binding), "flow.finalize.etpn");
  }
  return r;
}

}  // namespace

FlowResult run_flow(FlowKind kind, const dfg::Dfg& g, const FlowParams& params) {
  util::ScopedSpan flow_span(flow_name(kind));
  switch (kind) {
    case FlowKind::Camad: {
      SynthesisParams p;
      static_cast<AlgorithmOptions&>(p) = params;
      p.policy = SelectionPolicy::Connectivity;
      p.order = OrderStrategy::Plain;
      p.compat = etpn::ModuleCompat::AluClass;  // CAMAD's combined (+-) ALUs
      p.require_improvement = true;  // conventional cost-driven termination
      SynthesisResult s = integrated_synthesis(g, p);
      return finalize(kind, g, std::move(s.schedule), std::move(s.binding),
                      params, s.completeness, s.iterations,
                      std::move(s.stop_reason));
    }
    case FlowKind::Approach1: {
      const int latency = params.max_latency > 0 ? params.max_latency
                                                 : g.critical_path_ops() + 1;
      sched::Schedule s;
      {
        HLTS_SPAN("schedule.fds");
        s = sched::force_directed_schedule(g, {.latency = latency});
      }
      etpn::Binding b = alloc::allocate(g, s, {.lee_rules = false});
      return finalize(kind, g, std::move(s), std::move(b), params);
    }
    case FlowKind::Approach2: {
      const int latency = params.max_latency > 0 ? params.max_latency
                                                 : g.critical_path_ops() + 1;
      sched::Schedule s;
      {
        HLTS_SPAN("schedule.mobility_path");
        s = sched::mobility_path_schedule(g, {.latency = latency});
      }
      etpn::Binding b = alloc::allocate(g, s, {.lee_rules = true});
      return finalize(kind, g, std::move(s), std::move(b), params);
    }
    case FlowKind::Ours: {
      SynthesisParams p;
      static_cast<AlgorithmOptions&>(p) = params;
      p.policy = SelectionPolicy::BalanceTestability;
      p.order = OrderStrategy::Testability;
      SynthesisResult s = integrated_synthesis(g, p);
      return finalize(kind, g, std::move(s.schedule), std::move(s.binding),
                      params, s.completeness, s.iterations,
                      std::move(s.stop_reason));
    }
  }
  throw Error("unknown flow kind", ErrorKind::Input);
}

std::vector<FlowResult> run_all_flows(const dfg::Dfg& g,
                                      const FlowParams& params) {
  std::vector<FlowResult> out;
  for (FlowKind kind : {FlowKind::Camad, FlowKind::Approach1,
                        FlowKind::Approach2, FlowKind::Ours}) {
    out.push_back(run_flow(kind, g, params));
  }
  return out;
}

}  // namespace hlts::core
