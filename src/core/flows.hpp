// The four synthesis flows compared in the paper's §5.
//
//   CAMAD      -- transformational synthesis without testability: the same
//                 merger loop driven by connectivity/closeness;
//   Approach 1 -- force-directed scheduling (FDS) followed by left-edge
//                 allocation, no testability consideration in scheduling;
//   Approach 2 -- Lee's mobility-path scheduling followed by the modified
//                 left-edge allocation with testability rules;
//   Ours       -- Algorithm 1: integrated scheduling/allocation with the
//                 C/O balance principle and SR1/SR2 rescheduling.
#pragma once

#include <string>
#include <vector>

#include "core/synthesis.hpp"

namespace hlts::core {

enum class FlowKind { Camad, Approach1, Approach2, Ours };

[[nodiscard]] const char* flow_name(FlowKind kind);

// FlowParams is the shared AlgorithmOptions knob set (see core/options.hpp);
// SynthesisParams embeds the same struct, so the two APIs can no longer
// drift apart.

/// The uniform result record the benches print.
struct FlowResult {
  FlowKind kind = FlowKind::Ours;
  std::string name;
  sched::Schedule schedule;
  etpn::Binding binding;
  int exec_time = 0;        ///< control steps
  int registers = 0;
  int modules = 0;
  int muxes = 0;
  int self_loops = 0;
  cost::HardwareCost cost;
  double balance_index = 0;        ///< mean min(C, O) over data path nodes
  int seq_depth_max = 0;           ///< SR1 metric
  int seq_depth_total = 0;
  /// Table-style allocation strings ("(*): N21, N24" / "R: a, c, x").
  std::vector<std::string> module_allocation;
  std::vector<std::string> register_allocation;

  // --- anytime bookkeeping (see core/options.hpp) ---------------------------
  /// Full for a naturally terminated run; Partial when the Algorithm-1 loop
  /// stopped early (cancel, timeout, budget, graceful degradation).  The
  /// non-iterative flows (Approach 1/2) are always Full.
  Completeness completeness = Completeness::Full;
  /// Committed Algorithm-1 mergers behind this result (0 for Approach 1/2).
  int iterations = 0;
  /// Why the run stopped: "converged" / "cancelled" / "iteration_budget" /
  /// "memory_budget" / "degraded: ..." for Camad/Ours, "complete" for the
  /// one-shot flows.
  std::string stop_reason = "complete";
};

/// Runs one flow end to end on a DFG.
[[nodiscard]] FlowResult run_flow(FlowKind kind, const dfg::Dfg& g,
                                  const FlowParams& params = {});

/// Runs all four flows (the order used in the paper's tables).
[[nodiscard]] std::vector<FlowResult> run_all_flows(const dfg::Dfg& g,
                                                    const FlowParams& params = {});

}  // namespace hlts::core
