// Rescheduling imposed by data path synthesis (paper §4.3).
//
// Merging two modules forces their operations into distinct control steps;
// merging two registers forces their variables' lifetimes to be disjoint.
// Both are realized here by deriving, for every alive module, a total
// execution order of its operations (the "merge-sort" of the two previously
// ordered sequences) and, for every alive register, a total lifetime order
// of its variables -- then solving the resulting scheduling-constraint
// graph with a constrained-ASAP longest path.
//
// Order decisions at conflict points use the controllability/observability
// enhancement strategy:
//   SR1: reduce the sequential depth from a controllable register to an
//        observable register;
//   SR2: schedule operations to support the application of SR1.
// When the strategy does not discriminate, the order with the smallest
// increase in critical path length is chosen (paper: "If these two rules
// can not be applied, we will select the pair which results in the smallest
// increase in the length of the critical path").
#pragma once

#include <optional>

#include "etpn/binding.hpp"
#include "etpn/etpn.hpp"
#include "sched/schedule.hpp"

namespace hlts::core {

/// How to resolve operation order at conflict points.
enum class OrderStrategy {
  /// SR1/SR2: prefer executing first the operation whose operand registers
  /// are closest to primary inputs (most controllable), with critical-path
  /// increase as the fallback discriminator.
  Testability,
  /// Baseline (CAMAD-style) ordering: keep the incumbent order; swap only
  /// if that is the only feasible choice or it shortens the schedule.
  Plain,
};

struct ReschedOutcome {
  bool feasible = false;
  sched::Schedule schedule;
};

/// Derives a feasible schedule for the (possibly just-merged) binding `b`,
/// staying close to the previous schedule `hint`.  Returns infeasible when
/// the binding's constraints are cyclic (the attempted merger must then be
/// rejected).
///
/// The SR1/SR2 ordering refinement needs the register-distance profile of
/// `b`'s data path.  By default an ETPN for `b` is built internally just for
/// that; callers that already hold a materialized (e.g. merge-patched) ETPN
/// of `b` pass it as `premerged` to skip the rebuild -- register distances
/// ignore step annotations, so a structurally up-to-date graph with stale
/// steps yields the identical schedule.
[[nodiscard]] ReschedOutcome reschedule(const dfg::Dfg& g,
                                        const etpn::Binding& b,
                                        const sched::Schedule& hint,
                                        OrderStrategy strategy,
                                        const etpn::Etpn* premerged = nullptr);

/// Validation helper: true when `s` is consistent with `b` -- no two ops of
/// one module share a step, and all variables of one register have pairwise
/// disjoint lifetimes.
[[nodiscard]] bool schedule_respects_binding(const dfg::Dfg& g,
                                             const etpn::Binding& b,
                                             const sched::Schedule& s);

}  // namespace hlts::core
