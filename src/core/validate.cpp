#include "core/validate.hpp"

#include <algorithm>

#include "sched/lifetime.hpp"
#include "util/error.hpp"

namespace hlts::core {

namespace {

void add(AuditReport& report, std::string message) {
  report.violations.push_back(std::move(message));
}

}  // namespace

std::string AuditReport::summary() const {
  if (violations.empty()) return "ok";
  std::string out;
  for (const std::string& v : violations) {
    if (!out.empty()) out += "; ";
    out += v;
  }
  return out;
}

AuditReport audit_design(const dfg::Dfg& g, const sched::Schedule& s,
                         const etpn::Binding& b) {
  AuditReport report;

  try {
    g.validate();
  } catch (const std::exception& ex) {
    add(report, std::string("dfg: ") + ex.what());
  }

  if (s.num_ops() != g.num_ops()) {
    add(report, "schedule: op count " + std::to_string(s.num_ops()) +
                    " does not match DFG op count " +
                    std::to_string(g.num_ops()));
    return report;  // step-based checks below would index out of range
  }

  // Precedence: every operation strictly after all of its data
  // predecessors, in a positive control step (step 0 is the PI load step).
  for (dfg::OpId op : g.op_ids()) {
    const int step = s.step(op);
    if (step < 1) {
      add(report, "schedule: op " + g.op(op).name + " in non-positive step " +
                      std::to_string(step));
      continue;
    }
    for (dfg::VarId in : g.op(op).inputs) {
      const dfg::OpId def = g.var(in).def;
      if (!def.valid()) continue;  // primary input, loaded in step 0
      if (s.step(def) >= step) {
        add(report, "schedule: precedence violation, op " + g.op(op).name +
                        " (step " + std::to_string(step) + ") reads " +
                        g.var(in).name + " defined by " + g.op(def).name +
                        " (step " + std::to_string(s.step(def)) + ")");
      }
    }
  }

  try {
    b.validate(g);
  } catch (const std::exception& ex) {
    add(report, std::string("binding: ") + ex.what());
    return report;  // module/register walks below assume a sane binding
  }

  // Module conflicts: no two operations of one module in the same step.
  for (etpn::ModuleId m : b.alive_modules()) {
    const std::vector<dfg::OpId>& ops = b.module_ops(m);
    for (std::size_t i = 0; i < ops.size(); ++i) {
      for (std::size_t j = i + 1; j < ops.size(); ++j) {
        if (s.step(ops[i]) == s.step(ops[j])) {
          add(report, "binding: module conflict, ops " + g.op(ops[i]).name +
                          " and " + g.op(ops[j]).name +
                          " share a module in step " +
                          std::to_string(s.step(ops[i])));
        }
      }
    }
  }

  // Register lifetime overlaps within every register group.
  const sched::LifetimeTable lifetimes = sched::LifetimeTable::compute(g, s);
  for (etpn::RegId r : b.alive_regs()) {
    const std::vector<dfg::VarId>& vars = b.reg_vars(r);
    for (std::size_t i = 0; i < vars.size(); ++i) {
      for (std::size_t j = i + 1; j < vars.size(); ++j) {
        if (!lifetimes.disjoint(vars[i], vars[j])) {
          add(report, "binding: register lifetime overlap, variables " +
                          g.var(vars[i]).name + " and " + g.var(vars[j]).name +
                          " share a register with overlapping lifetimes");
        }
      }
    }
  }

  return report;
}

AuditReport audit_etpn(const dfg::Dfg& g, const etpn::Etpn& e,
                       const etpn::Binding& b) {
  AuditReport report;
  const etpn::DataPath& dp = e.data_path;

  // Arc anchoring.  A merge-patched graph carries tombstones: dead arcs
  // must be detached from every adjacency list, alive arcs must join two
  // alive nodes and appear in both endpoints' lists.
  for (etpn::DpArcId a : dp.arc_ids()) {
    const etpn::DpArc& arc = dp.arc(a);
    const bool from_ok = arc.from.valid() && arc.from.index() < dp.num_nodes();
    const bool to_ok = arc.to.valid() && arc.to.index() < dp.num_nodes();
    if (!from_ok || !to_ok) {
      add(report, "etpn: dangling arc " + std::to_string(a.value()) +
                      " (endpoint out of range)");
      continue;
    }
    const util::Span<etpn::DpArcId> outs = dp.out_arcs(arc.from);
    const util::Span<etpn::DpArcId> ins = dp.in_arcs(arc.to);
    const bool in_outs = std::find(outs.begin(), outs.end(), a) != outs.end();
    const bool in_ins = std::find(ins.begin(), ins.end(), a) != ins.end();
    if (!dp.alive(a)) {
      if (in_outs || in_ins) {
        add(report, "etpn: dead arc " + std::to_string(a.value()) +
                        " still listed by an endpoint");
      }
      continue;  // step annotations of tombstones are irrelevant
    }
    if (!dp.alive(arc.from) || !dp.alive(arc.to)) {
      add(report, "etpn: alive arc " + std::to_string(a.value()) +
                      " touches a dead node");
    }
    if (!in_outs) {
      add(report, "etpn: arc " + std::to_string(a.value()) +
                      " missing from its source's out_arcs (" +
                      dp.node(arc.from).name + ")");
    }
    if (!in_ins) {
      add(report, "etpn: arc " + std::to_string(a.value()) +
                      " missing from its destination's in_arcs (" +
                      dp.node(arc.to).name + ")");
    }
    const util::Span<int> steps = dp.steps(a);
    if (!std::is_sorted(steps.begin(), steps.end()) ||
        std::adjacent_find(steps.begin(), steps.end()) != steps.end()) {
      add(report, "etpn: arc " + std::to_string(a.value()) +
                      " has unsorted or duplicate step annotations");
    }
    if (!steps.empty() && steps.front() < 0) {
      add(report, "etpn: arc " + std::to_string(a.value()) +
                      " active in a negative step");
    }
  }

  // Every node's arc lists must reference real, alive arcs anchored at that
  // node; dead nodes must be fully detached.
  for (etpn::DpNodeId n : dp.node_ids()) {
    const etpn::DpNode& node = dp.node(n);
    if (!dp.alive(n) && !(dp.in_arcs(n).empty() && dp.out_arcs(n).empty())) {
      add(report, "etpn: dead node " + node.name + " still lists arcs");
      continue;
    }
    for (etpn::DpArcId a : dp.out_arcs(n)) {
      if (!a.valid() || a.index() >= dp.num_arcs() || dp.arc(a).from != n ||
          !dp.alive(a)) {
        add(report, "etpn: node " + node.name + " lists a bad out-arc");
      }
    }
    for (etpn::DpArcId a : dp.in_arcs(n)) {
      if (!a.valid() || a.index() >= dp.num_arcs() || dp.arc(a).to != n ||
          !dp.alive(a)) {
        add(report, "etpn: node " + node.name + " lists a bad in-arc");
      }
    }
  }

  // Alive binding groups must be materialized as alive nodes of the right
  // kind (merged-away groups become tombstoned nodes).
  for (etpn::ModuleId m : b.alive_modules()) {
    const etpn::DpNodeId n =
        e.module_node.contains(m) ? e.module_node[m] : etpn::DpNodeId::invalid();
    if (!n.valid() || n.index() >= dp.num_nodes() || !dp.alive(n) ||
        dp.node(n).kind != etpn::DpNodeKind::Module) {
      add(report, "etpn: alive module " + b.module_label(g, m) +
                      " has no alive Module data-path node");
    }
  }
  for (etpn::RegId r : b.alive_regs()) {
    const etpn::DpNodeId n =
        e.reg_node.contains(r) ? e.reg_node[r] : etpn::DpNodeId::invalid();
    if (!n.valid() || n.index() >= dp.num_nodes() || !dp.alive(n) ||
        dp.node(n).kind != etpn::DpNodeKind::Register) {
      add(report, "etpn: alive register " + b.reg_label(g, r) +
                      " has no alive Register data-path node");
    }
  }

  return report;
}

void enforce_audit(const AuditReport& report, const char* where) {
  if (report.ok()) return;
  throw Error(std::string("audit failed at ") + where + ": " +
                  report.summary(),
              ErrorKind::Internal);
}

}  // namespace hlts::core
