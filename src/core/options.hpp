// The single declaration of the Algorithm-1 knob set.
//
// `core::FlowParams` (the flow-level API) and `core::SynthesisParams` (the
// algorithm-level API) used to declare k/alpha/beta/bits/max_latency/
// num_threads/trial_cache/library twice and copy them by hand in flows.cpp;
// AlgorithmOptions is the one shared struct both now embed.  FlowParams is
// an alias of it (it carried exactly these fields), which keeps designated
// initializers like `run_flow(kind, g, {.bits = 4})` working; SynthesisParams
// inherits it, so `p.k = ...` member access is unchanged and run_flow copies
// the whole knob set with one slice assignment.  The engine's FlowRequest
// carries a FlowParams, so every entry point shares this declaration.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

#include "cost/module_library.hpp"

namespace hlts::core {

/// One committed merger of Algorithm 1's trajectory.
struct IterationRecord {
  std::string description;  ///< e.g. "merge modules (*: N21 | *: N24)"
  double delta_e = 0;       ///< relative execution-time change
  double delta_h = 0;       ///< relative hardware-cost change
  double delta_c = 0;       ///< alpha*dE + beta*dH
  int exec_time = 0;        ///< schedule length after the merger
  double hw_cost = 0;       ///< hardware cost after the merger
  int registers = 0;
  int modules = 0;
  double balance_index = 0;  ///< testability balance after the merger
};

/// How much of the requested computation a result represents.
///
/// Algorithm 1 is an *anytime* algorithm: every committed merger leaves a
/// complete, valid schedule + allocation, so a run stopped early --
/// cancellation, timeout, iteration/memory budget, or graceful degradation
/// after a transient fault -- still returns the best design it had, tagged
/// Partial.  A Partial result at iteration k is bit-identical to a run
/// capped at max_iterations = k.
enum class Completeness {
  Full,     ///< the algorithm ran to its natural termination
  Partial,  ///< stopped early; the result is the last committed checkpoint
};

/// "full" / "partial".
[[nodiscard]] const char* completeness_name(Completeness c);

/// A resumable Algorithm-1 state: the committed design after `iteration`
/// mergers.  Defined in core/checkpoint.hpp (it carries a full schedule +
/// binding); options only ever point at one.
struct Checkpoint;

/// Default of AlgorithmOptions::incremental: the HLTS_INCREMENTAL
/// environment variable ("0"/"false"/"off" disable), else on.
[[nodiscard]] bool incremental_default();

/// Knobs shared by all synthesis entry points (the Algorithm-1 parameters
/// apply to the Camad/Ours flows; bits/max_latency/library to all four).
struct AlgorithmOptions {
  int bits = 8;        ///< data path width for the cost model
  int k = 5;           ///< candidate pairs evaluated per iteration
  double alpha = 2.0;  ///< weight of dE (control steps)
  double beta = 1.0;   ///< weight of dH (units of 0.01 mm^2)
  /// Latency budget: a merger whose rescheduled length exceeds this is
  /// infeasible.  0 means "critical path + 1" (one control step of slack
  /// for sharing, which is what the paper's schedules in Figs. 2-3 use).
  int max_latency = 0;
  /// Concurrency of the per-iteration trial evaluation (binding copy ->
  /// reschedule -> ETPN rebuild -> cost estimate): 0 means
  /// util::ThreadPool::default_threads() (the HLTS_THREADS environment
  /// variable, else std::thread::hardware_concurrency()); 1 forces the
  /// serial path.  The result is bit-identical for every value -- trials
  /// are independent and the reduction is deterministic (smallest dC, ties
  /// broken by candidate rank).
  int num_threads = 0;
  /// Cross-iteration trial cache: candidate pairs untouched by the
  /// committed merger keep their estimated dE/dH for the next iteration
  /// instead of paying a fresh reschedule + cost estimate (1.7-2x on EWF).
  /// Cached values only *rank* candidates; the winning merger is always
  /// re-evaluated fresh before it is committed, so every committed
  /// schedule/binding is exact.  Off by default: the stale dE/dH ranking
  /// can pick a different (near-tie) merger than exact Algorithm 1, and
  /// the default must reproduce the paper's tables.
  bool trial_cache = false;
  /// Iteration budget for the merger loop.  A run that exhausts it returns
  /// its current design tagged Completeness::Partial -- the anytime
  /// contract's "capped run", and the reference a cancelled run at the same
  /// iteration count is bit-identical to.
  int max_iterations = 10000;
  /// Approximate working-set budget in bytes for one iteration's trial
  /// evaluations (the dominant allocation: up to one binding + schedule
  /// copy per ranked candidate).  When the estimate for the coming
  /// iteration exceeds the budget, the loop stops gracefully with a
  /// Partial result instead of risking an OOM kill.  0 = unlimited.
  std::size_t memory_budget_bytes = 0;
  /// Runs the core/validate invariant auditor (DFG/schedule/binding/ETPN
  /// structural checks) on the initial state and after every committed
  /// merger; a violation throws hlts::Error(ErrorKind::Internal).  Off by
  /// default: auditing is for tests, fault-injection soaks, and debugging.
  bool audit = false;
  /// Incremental analysis layer (src/analysis): trials run as merge
  /// patches over per-worker workspaces instead of full binding copies +
  /// ETPN rebuilds, and the committed design's testability / critical-path
  /// / cost state is updated over the merger's dirty cone at each commit.
  /// Bit-identical to the from-scratch pipeline for every design, flow and
  /// thread count; the escape hatch HLTS_INCREMENTAL=0 (the default of
  /// this knob) keeps the old path selectable as the reference.
  bool incremental = incremental_default();
  /// Deterministic-ATPG orchestration mode for the flow's testability
  /// evaluation: "timeframe", "sat" or "hybrid" (atpg/atpg.hpp documents
  /// the escalation order).  Empty resolves the HLTS_ATPG_BACKEND
  /// environment knob, then falls back to "timeframe".  Journaled, so a
  /// replayed run re-evaluates testability under the same backend.
  std::string atpg_backend = {};
  /// Time frames the SAT backend unrolls the netlist over; 0 resolves
  /// HLTS_SAT_FRAMES, then two controller periods.
  int sat_frames = 0;
  /// Per-fault CDCL conflict budget for the SAT backend; 0 resolves
  /// HLTS_SAT_CONFLICT_BUDGET, then 20000.
  std::int64_t sat_conflict_budget = 0;
  cost::ModuleLibrary library = cost::ModuleLibrary::standard();

  // --- run hooks (never influence the synthesized result) -----------------
  /// Cooperative cancellation: when set and the pointee becomes true, the
  /// Algorithm-1 merger loop stops at the next iteration boundary and the
  /// partial (but fully consistent) design is returned.  The pointee may be
  /// flipped from any thread.
  const std::atomic<bool>* cancel = nullptr;
  /// Progress streaming: called on the synthesizing thread after each
  /// committed merger, with the iteration's record.  Combined with `cancel`
  /// this bounds cancellation latency to one Algorithm-1 iteration.
  std::function<void(const IterationRecord&)> on_iteration = nullptr;

  // --- durability hooks (never influence the synthesized result) ----------
  /// Checkpoint cadence: with on_checkpoint set, the loop hands out a
  /// Checkpoint of the committed design every `checkpoint_every` committed
  /// mergers (counted in *absolute* iterations, so a resumed run writes
  /// checkpoints at the same boundaries an uninterrupted run would).
  /// 0 disables checkpoint streaming.
  int checkpoint_every = 0;
  /// Called on the synthesizing thread with the best-so-far design.  The
  /// engine's journal persists it; any callback must treat the state as
  /// read-only.
  std::function<void(const Checkpoint&)> on_checkpoint = nullptr;
  /// Resume point: instead of the default ASAP schedule + identity binding,
  /// the merger loop starts from this previously committed checkpoint.
  /// Because the loop's entire state is (schedule, binding) -- everything
  /// else is deterministically rederived -- the continuation is
  /// bit-identical to the uninterrupted run from iteration
  /// `resume_from->iteration` on (trial_cache must be off: the cache's
  /// cross-iteration memory is not part of a checkpoint).  The pointee must
  /// outlive the run.  Ignored by the non-iterative flows (Approach 1/2).
  const Checkpoint* resume_from = nullptr;
};

/// Flow-level parameter set: exactly the shared knob set.  An alias rather
/// than a wrapper so aggregate/designated initialization keeps working.
using FlowParams = AlgorithmOptions;

}  // namespace hlts::core
