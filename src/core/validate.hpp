// Invariant auditor: structural checks over the (DFG, schedule, binding)
// triple and the materialized ETPN.
//
// The synthesis loop maintains one consistency contract -- operations
// scheduled after their operands, no two operations of a module in the same
// step, variables of a register with pairwise-disjoint lifetimes, every arc
// of the data path anchored at both ends -- and each individual structure
// already has throwing validate() methods.  The auditor is different in two
// ways: it checks the *cross-structure* invariants those methods cannot see
// from inside one object, and it reports every violation it finds instead
// of throwing at the first, so a corrupted design produces an actionable
// list rather than a single opaque message.
//
// Run it at every Algorithm-1 iteration boundary with
// AlgorithmOptions::audit = true (zero cost when false: one branch).  The
// fault-injection tests use it to prove that no failure mode -- injected
// exception, bad_alloc, cancellation -- ever lets a structurally invalid
// design escape as a "valid" result.
#pragma once

#include <string>
#include <vector>

#include "dfg/dfg.hpp"
#include "etpn/binding.hpp"
#include "etpn/etpn.hpp"
#include "sched/schedule.hpp"

namespace hlts::core {

/// Outcome of one audit pass: empty means every invariant held.
struct AuditReport {
  std::vector<std::string> violations;

  [[nodiscard]] bool ok() const { return violations.empty(); }
  /// "ok" or the violations joined with "; ".
  [[nodiscard]] std::string summary() const;
};

/// Audits a scheduled, bound design:
///   - the DFG's own structural validity (wrapped, non-throwing),
///   - every operation scheduled in a positive step strictly after all of
///     its data predecessors (precedence violations),
///   - the binding's own validity (wrapped, non-throwing),
///   - no two operations of one module in the same control step,
///   - pairwise-disjoint register lifetimes within every register group.
[[nodiscard]] AuditReport audit_design(const dfg::Dfg& g,
                                       const sched::Schedule& s,
                                       const etpn::Binding& b);

/// Audits a materialized ETPN against its binding:
///   - every arc's endpoints are valid nodes and back-linked from both
///     (no dangling arcs),
///   - arc step annotations are sorted, unique and non-negative,
///   - every alive module/register has a data-path node of the right kind.
[[nodiscard]] AuditReport audit_etpn(const dfg::Dfg& g, const etpn::Etpn& e,
                                     const etpn::Binding& b);

/// Throws hlts::Error(ErrorKind::Internal) listing every violation when the
/// report is not ok; `where` names the checkpoint for the message.
void enforce_audit(const AuditReport& report, const char* where);

}  // namespace hlts::core
