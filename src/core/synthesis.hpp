// Algorithm 1: the integrated scheduling/allocation test synthesis loop.
//
//   1  perform a simple default scheduling/allocation
//   2  repeat
//   4    run the testability analysis algorithm
//   6    select k pairs of mergable nodes (C/O balance principle)
//   8-9  estimate dE and dH for each pair
//  11    select the pair with smallest dC = alpha*dE + beta*dH
//  12    merge it and modify the data path
//  13-14 lifetime analysis + rescheduling (merge-sort, C/O enhancement)
//  15  until no merger exists
//
// "No merger exists" is interpreted as "no feasible merger improves the
// cost function": mergers strictly reduce hardware but may lengthen the
// schedule, so the loop stops at the (alpha, beta)-weighted sweet spot.
// The same loop with a connectivity-based pair selection and plain ordering
// reproduces the CAMAD baseline (conventional closeness-driven allocation).
#pragma once

#include <string>
#include <vector>

#include "cost/cost.hpp"
#include "core/resched.hpp"
#include "etpn/etpn.hpp"
#include "testability/balance.hpp"

namespace hlts::core {

/// How merger candidates are ranked.
enum class SelectionPolicy {
  /// Controllability/observability balance (paper §3) -- "ours".
  BalanceTestability,
  /// Shared-neighbour connectivity ("closeness") -- the conventional
  /// allocation the paper contrasts with (CAMAD baseline).
  Connectivity,
};

struct SynthesisParams {
  int k = 3;           ///< candidate pairs evaluated per iteration
  double alpha = 2.0;  ///< weight of dE (control steps)
  double beta = 1.0;   ///< weight of dH (units of 0.01 mm^2)
  int bits = 8;        ///< data path width for the cost model
  /// Latency budget: a merger whose rescheduled length exceeds this is
  /// infeasible.  0 means "critical path + 1" (one control step of slack
  /// for sharing, which is what the paper's schedules in Figs. 2-3 use).
  int max_latency = 0;
  SelectionPolicy policy = SelectionPolicy::BalanceTestability;
  OrderStrategy order = OrderStrategy::Testability;
  /// Module sharing rule: CAMAD merges add/sub/compare into combined (+-)
  /// ALUs; the Lee-style flows and ours keep kinds separate.
  etpn::ModuleCompat compat = etpn::ModuleCompat::ExactKind;
  cost::ModuleLibrary library = cost::ModuleLibrary::standard();
  testability::BalanceOptions balance;
  int max_iterations = 10000;
  /// When true, the loop additionally stops as soon as no candidate
  /// *improves* dC (conventional cost-driven synthesis, i.e. the CAMAD
  /// baseline).  When false -- the paper's Algorithm 1 -- merging continues
  /// until no feasible merger exists, with dC only ranking the candidates.
  bool require_improvement = false;
  /// Concurrency of the per-iteration trial evaluation (binding copy ->
  /// reschedule -> ETPN rebuild -> cost estimate): 0 means
  /// util::ThreadPool::default_threads() (the HLTS_THREADS environment
  /// variable, else std::thread::hardware_concurrency()); 1 forces the
  /// serial path.  The result is bit-identical for every value -- trials
  /// are independent and the reduction is deterministic (smallest dC, ties
  /// broken by candidate rank).
  int num_threads = 0;
  /// Cross-iteration trial cache: candidate pairs untouched by the
  /// committed merger keep their estimated dE/dH for the next iteration
  /// instead of paying a fresh reschedule + cost estimate (1.7-2x on EWF).
  /// Cached values only *rank* candidates; the winning merger is always
  /// re-evaluated fresh before it is committed, so every committed
  /// schedule/binding is exact.  Invalidation is by binding-group
  /// intersection with the committed pair.  Off by default: the stale
  /// dE/dH ranking can pick a different (near-tie) merger than exact
  /// Algorithm 1, and the default must reproduce the paper's tables.
  bool trial_cache = false;
};

/// Scale of the dH term: hardware cost differences are expressed in units
/// of this many mm^2, so that alpha and beta trade off one control step
/// against one small-module-sized piece of area.
inline constexpr double kAreaUnit = 0.01;

/// One committed merger.
struct IterationRecord {
  std::string description;  ///< e.g. "merge modules (*: N21 | *: N24)"
  double delta_e = 0;       ///< relative execution-time change
  double delta_h = 0;       ///< relative hardware-cost change
  double delta_c = 0;       ///< alpha*dE + beta*dH
  int exec_time = 0;        ///< schedule length after the merger
  double hw_cost = 0;       ///< hardware cost after the merger
  int registers = 0;
  int modules = 0;
  double balance_index = 0;  ///< testability balance after the merger
};

struct SynthesisResult {
  sched::Schedule schedule;
  etpn::Binding binding;
  int exec_time = 0;
  cost::HardwareCost cost;
  std::vector<IterationRecord> trajectory;
};

/// Runs the iterative synthesis.  The initial "simple default
/// scheduling/allocation" is ASAP with the identity binding.
[[nodiscard]] SynthesisResult integrated_synthesis(const dfg::Dfg& g,
                                                   const SynthesisParams& p);

/// Connectivity-based candidate ranking used by the CAMAD baseline: pairs
/// sharing many sources/destinations score high (merging them minimizes
/// interconnect), ignoring testability entirely.
[[nodiscard]] std::vector<testability::MergeCandidate>
select_connectivity_candidates(const dfg::Dfg& g, const etpn::Binding& b,
                               const etpn::Etpn& e, int k);

}  // namespace hlts::core
