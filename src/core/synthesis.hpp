// Algorithm 1: the integrated scheduling/allocation test synthesis loop.
//
//   1  perform a simple default scheduling/allocation
//   2  repeat
//   4    run the testability analysis algorithm
//   6    select k pairs of mergable nodes (C/O balance principle)
//   8-9  estimate dE and dH for each pair
//  11    select the pair with smallest dC = alpha*dE + beta*dH
//  12    merge it and modify the data path
//  13-14 lifetime analysis + rescheduling (merge-sort, C/O enhancement)
//  15  until no merger exists
//
// "No merger exists" is interpreted as "no feasible merger improves the
// cost function": mergers strictly reduce hardware but may lengthen the
// schedule, so the loop stops at the (alpha, beta)-weighted sweet spot.
// The same loop with a connectivity-based pair selection and plain ordering
// reproduces the CAMAD baseline (conventional closeness-driven allocation).
#pragma once

#include <string>
#include <vector>

#include "cost/cost.hpp"
#include "core/options.hpp"
#include "core/resched.hpp"
#include "etpn/etpn.hpp"
#include "testability/balance.hpp"

namespace hlts::core {

/// How merger candidates are ranked.
enum class SelectionPolicy {
  /// Controllability/observability balance (paper §3) -- "ours".
  BalanceTestability,
  /// Shared-neighbour connectivity ("closeness") -- the conventional
  /// allocation the paper contrasts with (CAMAD baseline).
  Connectivity,
};

/// Algorithm-level parameter set: the shared knob set (see options.hpp for
/// its documentation) plus the policy switches that distinguish the paper's
/// Algorithm 1 from the CAMAD baseline.
struct SynthesisParams : AlgorithmOptions {
  /// Direct algorithm-level runs default to a narrower candidate beam
  /// (k = 3, the paper's §5 setting) than the flow-level default.
  SynthesisParams() { k = 3; }

  SelectionPolicy policy = SelectionPolicy::BalanceTestability;
  OrderStrategy order = OrderStrategy::Testability;
  /// Module sharing rule: CAMAD merges add/sub/compare into combined (+-)
  /// ALUs; the Lee-style flows and ours keep kinds separate.
  etpn::ModuleCompat compat = etpn::ModuleCompat::ExactKind;
  testability::BalanceOptions balance;
  // max_iterations lives in the shared AlgorithmOptions knob set.
  /// When true, the loop additionally stops as soon as no candidate
  /// *improves* dC (conventional cost-driven synthesis, i.e. the CAMAD
  /// baseline).  When false -- the paper's Algorithm 1 -- merging continues
  /// until no feasible merger exists, with dC only ranking the candidates.
  bool require_improvement = false;
};

/// Scale of the dH term: hardware cost differences are expressed in units
/// of this many mm^2, so that alpha and beta trade off one control step
/// against one small-module-sized piece of area.
inline constexpr double kAreaUnit = 0.01;

struct SynthesisResult {
  sched::Schedule schedule;
  etpn::Binding binding;
  int exec_time = 0;
  cost::HardwareCost cost;
  std::vector<IterationRecord> trajectory;

  // --- anytime bookkeeping --------------------------------------------------
  /// Full when the merger loop reached natural termination ("no merger
  /// exists"); Partial when it stopped early.  Either way schedule/binding
  /// are a complete, validated design.
  Completeness completeness = Completeness::Full;
  /// Committed mergers behind this result; the checkpoint it represents.
  /// Equals trajectory.size() for a from-scratch run; a run resumed from a
  /// checkpoint counts its starting iterations too (resume_from->iteration
  /// + trajectory.size()), so the total matches the uninterrupted run.  A
  /// Partial result at iteration k is bit-identical to a run with
  /// max_iterations = k.
  int iterations = 0;
  /// Why the loop stopped: "converged", "cancelled", "iteration_budget",
  /// "memory_budget", or "degraded: <message>" when a transient fault
  /// (injected failpoint, allocation failure) was absorbed at an iteration
  /// boundary.
  std::string stop_reason = "converged";
};

/// Runs the iterative synthesis.  The initial "simple default
/// scheduling/allocation" is ASAP with the identity binding.
[[nodiscard]] SynthesisResult integrated_synthesis(const dfg::Dfg& g,
                                                   const SynthesisParams& p);

/// Connectivity-based candidate ranking used by the CAMAD baseline: pairs
/// sharing many sources/destinations score high (merging them minimizes
/// interconnect), ignoring testability entirely.
[[nodiscard]] std::vector<testability::MergeCandidate>
select_connectivity_candidates(const dfg::Dfg& g, const etpn::Binding& b,
                               const etpn::Etpn& e, int k);

}  // namespace hlts::core
