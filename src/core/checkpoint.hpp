// Durable Algorithm-1 state and its JSON round-trip.
//
// Algorithm 1's merger loop carries exactly two pieces of mutable state: the
// committed schedule and the committed binding.  Everything else it consults
// -- the ETPN, the testability fixpoint, the cost estimate, the critical
// path -- is deterministically rederived from (dfg, params, schedule,
// binding) at the top of each iteration.  A Checkpoint therefore captures
// the complete resumable state of a run after `iteration` committed
// mergers, and a run resumed from it (AlgorithmOptions::resume_from) is
// bit-identical to the uninterrupted run from that point on.
//
// The (de)serializers here are the engine journal's payload format: plain
// util::JsonValue trees so the journal can compose them into its own
// records, with every count/id round-tripping exactly through int64.  All
// *_from_json readers treat their input as untrusted bytes off disk (a torn
// or hand-edited journal) and throw hlts::Error(ErrorKind::Input) with a
// descriptive message on any structural problem; they never crash on
// malformed documents.
//
// The module library is deliberately NOT serialized: every entry point in
// the repo uses cost::ModuleLibrary::standard(), and the paper's tables are
// defined against it.  A journal is only replayable under the library the
// binary bakes in, which params_from_json re-installs.
#pragma once

#include "core/options.hpp"
#include "dfg/dfg.hpp"
#include "etpn/binding.hpp"
#include "sched/schedule.hpp"
#include "util/json.hpp"

namespace hlts::core {

/// The committed design after `iteration` mergers of Algorithm 1 -- the
/// unit of crash recovery.  See AlgorithmOptions::resume_from /
/// on_checkpoint for the producing and consuming hooks.
struct Checkpoint {
  int iteration = 0;  ///< committed mergers baked into schedule/binding
  sched::Schedule schedule;
  etpn::Binding binding;
};

/// --- DFG ------------------------------------------------------------------
/// Variables and operations in id order (ids are dense insertion order, so
/// the reader reconstructs through the public construction API and gets the
/// same ids back).
[[nodiscard]] util::JsonValue dfg_to_json(const dfg::Dfg& g);
/// Rebuilds the graph and validates it; throws Error(Input) on malformed or
/// structurally inconsistent documents.
[[nodiscard]] dfg::Dfg dfg_from_json(const util::JsonValue& v);

/// --- AlgorithmOptions -----------------------------------------------------
/// The numeric/boolean knob set only: run hooks (cancel/on_iteration/
/// on_checkpoint/resume_from) are process-local and the library is the
/// baked-in standard one (see file comment).
[[nodiscard]] util::JsonValue params_to_json(const AlgorithmOptions& p);
[[nodiscard]] AlgorithmOptions params_from_json(const util::JsonValue& v);

/// --- Checkpoint -----------------------------------------------------------
/// Schedule as one step per op in id order; binding as per-slot member
/// lists *including* tombstone slots (empty, dead), so group ids -- which
/// candidate descriptions and the trial cache key on -- survive the
/// round-trip unchanged.
[[nodiscard]] util::JsonValue checkpoint_to_json(const Checkpoint& c);
/// Rebuilds and fully validates the checkpoint against `g` (binding
/// invariants, schedule/binding consistency, data dependences); throws
/// Error(Input) if the document does not describe a valid design for `g`.
[[nodiscard]] Checkpoint checkpoint_from_json(const util::JsonValue& v,
                                              const dfg::Dfg& g);

}  // namespace hlts::core
