#include "alloc/alloc.hpp"

#include <algorithm>
#include <vector>

#include "util/error.hpp"

namespace hlts::alloc {

using etpn::Binding;
using etpn::ModuleId;
using etpn::RegId;

void bind_modules_first_fit(const dfg::Dfg& g, const sched::Schedule& s,
                            Binding& b) {
  // Ops in step order; each is merged into the first existing merged module
  // of a compatible class with no step conflict.
  std::vector<dfg::OpId> order(g.topo_order());
  std::stable_sort(order.begin(), order.end(), [&](dfg::OpId a, dfg::OpId b2) {
    return s.step(a) < s.step(b2);
  });

  // Track the merged module each "bin" maps to, per class.
  std::vector<ModuleId> bins;
  for (dfg::OpId op : order) {
    ModuleId own = b.module_of(op);
    bool placed = false;
    for (ModuleId bin : bins) {
      if (bin == own || !b.module_alive(bin)) continue;
      if (!b.can_merge_modules(g, bin, own)) continue;
      const bool conflict =
          std::any_of(b.module_ops(bin).begin(), b.module_ops(bin).end(),
                      [&](dfg::OpId other) { return s.step(other) == s.step(op); });
      if (conflict) continue;
      b.merge_modules(g, bin, own);
      placed = true;
      break;
    }
    if (!placed) bins.push_back(own);
  }
}

void allocate_registers_left_edge(const dfg::Dfg& g, const sched::Schedule& s,
                                  Binding& b, bool lee_rules) {
  const sched::LifetimeTable lifetimes = sched::LifetimeTable::compute(g, s);

  std::vector<dfg::VarId> vars;
  for (dfg::VarId v : g.var_ids()) {
    if (g.needs_register(v)) vars.push_back(v);
  }
  // Left edge: sort by birth time (ties by longer lifetime first, then id).
  std::stable_sort(vars.begin(), vars.end(), [&](dfg::VarId a, dfg::VarId c) {
    const auto la = lifetimes.lifetime(a);
    const auto lc = lifetimes.lifetime(c);
    if (la.birth != lc.birth) return la.birth < lc.birth;
    return la.death > lc.death;
  });

  std::vector<RegId> bins;
  for (dfg::VarId v : vars) {
    RegId own = b.reg_of(v);
    // Candidate bins whose variables all have disjoint lifetimes with v.
    std::vector<RegId> fits;
    for (RegId bin : bins) {
      if (bin == own || !b.reg_alive(bin)) continue;
      const bool ok = std::all_of(
          b.reg_vars(bin).begin(), b.reg_vars(bin).end(),
          [&](dfg::VarId other) { return lifetimes.disjoint(v, other); });
      if (ok) fits.push_back(bin);
    }
    if (fits.empty()) {
      bins.push_back(own);
      continue;
    }
    RegId chosen = fits.front();
    if (lee_rules) {
      // Rule 1: prefer a bin already holding a primary input or primary
      // output variable, so shared registers stay directly controllable/
      // observable.  Among those, prefer the fullest bin (rule 2 proxy:
      // fewer registers means shorter register-to-register chains).
      auto quality = [&](RegId bin) {
        int has_pio = 0;
        for (dfg::VarId other : b.reg_vars(bin)) {
          const dfg::Variable& var = g.var(other);
          if (var.is_primary_input || var.is_primary_output) has_pio = 1;
        }
        return std::pair<int, int>(has_pio,
                                   static_cast<int>(b.reg_vars(bin).size()));
      };
      chosen = *std::max_element(fits.begin(), fits.end(),
                                 [&](RegId a, RegId c) {
                                   return quality(a) < quality(c);
                                 });
    }
    b.merge_regs(chosen, own);
  }
}

Binding allocate(const dfg::Dfg& g, const sched::Schedule& s,
                 const AllocOptions& options) {
  HLTS_REQUIRE(s.respects_data_deps(g), "allocate: invalid schedule");
  Binding b = Binding::default_binding(g);
  bind_modules_first_fit(g, s, b);
  allocate_registers_left_edge(g, s, b, options.lee_rules);
  b.validate(g);
  return b;
}

}  // namespace hlts::alloc
