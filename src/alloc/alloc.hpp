// Post-scheduling allocation algorithms for the baseline flows.
//
// Approach 1 (FDS) and Approach 2 (mobility-path) both allocate *after*
// scheduling: functional modules by first-fit over control steps (the
// tables show identical module allocations for both approaches) and
// registers by the left-edge algorithm -- plain for Approach 1, modified
// with Lee's testability rules for Approach 2:
//
//   rule 1: whenever possible, allocate a register to at least one primary
//           input or primary output variable;
//   rule 2: reduce the sequential depth from a controllable register to an
//           observable register.
#pragma once

#include "dfg/dfg.hpp"
#include "etpn/binding.hpp"
#include "sched/lifetime.hpp"
#include "sched/schedule.hpp"

namespace hlts::alloc {

struct AllocOptions {
  /// Apply Lee's testability rules when packing registers (Approach 2);
  /// false gives the plain left-edge packing (Approach 1).
  bool lee_rules = false;
};

/// Builds a complete binding for a scheduled DFG: first-fit module binding
/// plus (modified) left-edge register allocation.  The result is expressed
/// as a sequence of mergers applied to the default binding, so all Binding
/// invariants hold.
[[nodiscard]] etpn::Binding allocate(const dfg::Dfg& g,
                                     const sched::Schedule& s,
                                     const AllocOptions& options = {});

/// Module binding only: merges operations of compatible classes scheduled
/// in distinct control steps, first-fit in step order.
void bind_modules_first_fit(const dfg::Dfg& g, const sched::Schedule& s,
                            etpn::Binding& b);

/// Register allocation only: left-edge packing of variable lifetimes.
void allocate_registers_left_edge(const dfg::Dfg& g, const sched::Schedule& s,
                                  etpn::Binding& b, bool lee_rules);

}  // namespace hlts::alloc
