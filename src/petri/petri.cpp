#include "petri/petri.hpp"

#include <algorithm>
#include <bit>
#include <deque>
#include <sstream>
#include <unordered_map>

#include "util/error.hpp"

namespace hlts::petri {

std::size_t Marking::count() const {
  std::size_t n = 0;
  for (std::uint64_t w : bits_) n += static_cast<std::size_t>(std::popcount(w));
  return n;
}

std::size_t Marking::hash() const {
  // FNV-1a over the words; good enough for the visited-set map.
  std::size_t h = 1469598103934665603ULL;
  for (std::uint64_t w : bits_) {
    h ^= w;
    h *= 1099511628211ULL;
  }
  return h;
}

PlaceId PetriNet::add_place(const std::string& name, int delay,
                            bool initially_marked) {
  HLTS_REQUIRE(delay >= 0, "place delay must be non-negative");
  Place p;
  p.name = name;
  p.delay = delay;
  p.initially_marked = initially_marked;
  return places_.push_back(std::move(p));
}

TransId PetriNet::add_transition(const std::string& name,
                                 const std::vector<PlaceId>& inputs,
                                 const std::vector<PlaceId>& outputs,
                                 int guard_group, bool guard_polarity) {
  HLTS_REQUIRE(!inputs.empty() && !outputs.empty(),
               "transition " + name + " must have inputs and outputs");
  for (PlaceId p : inputs) {
    HLTS_REQUIRE(places_.contains(p), "transition " + name + ": bad input place");
  }
  for (PlaceId p : outputs) {
    HLTS_REQUIRE(places_.contains(p), "transition " + name + ": bad output place");
  }
  Transition t;
  t.name = name;
  t.inputs = inputs;
  t.outputs = outputs;
  t.guard_group = guard_group;
  t.guard_polarity = guard_polarity;
  TransId id = transitions_.push_back(std::move(t));
  for (PlaceId p : inputs) places_[p].out_transitions.push_back(id);
  for (PlaceId p : outputs) places_[p].in_transitions.push_back(id);
  return id;
}

Marking PetriNet::initial_marking() const {
  Marking m(places_.size());
  for (PlaceId p : place_ids()) {
    if (places_[p].initially_marked) m.set(p);
  }
  return m;
}

bool PetriNet::enabled(TransId t, const Marking& m) const {
  for (PlaceId p : transitions_[t].inputs) {
    if (!m.has(p)) return false;
  }
  return true;
}

Marking PetriNet::fire(TransId t, const Marking& m) const {
  Marking next = m;
  for (PlaceId p : transitions_[t].inputs) next.clear(p);
  for (PlaceId p : transitions_[t].outputs) {
    HLTS_REQUIRE(!next.has(p),
                 "net is not 1-safe: double token in place " + places_[p].name);
    next.set(p);
  }
  return next;
}

std::vector<PlaceId> PetriNet::sink_places() const {
  std::vector<PlaceId> out;
  for (PlaceId p : place_ids()) {
    if (places_[p].out_transitions.empty()) out.push_back(p);
  }
  return out;
}

std::vector<PlaceId> PetriNet::source_places() const {
  std::vector<PlaceId> out;
  for (PlaceId p : place_ids()) {
    if (places_[p].initially_marked) out.push_back(p);
  }
  return out;
}

void PetriNet::validate() const {
  for (TransId t : trans_ids()) {
    const Transition& tr = transitions_[t];
    HLTS_REQUIRE(!tr.inputs.empty(), "transition " + tr.name + " has no inputs");
    HLTS_REQUIRE(!tr.outputs.empty(), "transition " + tr.name + " has no outputs");
  }
}

std::string PetriNet::to_dot() const {
  std::ostringstream os;
  os << "digraph \"" << name_ << "\" {\n";
  for (PlaceId p : place_ids()) {
    os << "  p" << p.value() << " [label=\"" << places_[p].name
       << (places_[p].initially_marked ? " *" : "") << "\" shape=circle];\n";
  }
  for (TransId t : trans_ids()) {
    os << "  t" << t.value() << " [label=\"" << transitions_[t].name
       << "\" shape=box height=0.1];\n";
    for (PlaceId p : transitions_[t].inputs) {
      os << "  p" << p.value() << " -> t" << t.value() << ";\n";
    }
    for (PlaceId p : transitions_[t].outputs) {
      os << "  t" << t.value() << " -> p" << p.value() << ";\n";
    }
  }
  os << "}\n";
  return os.str();
}

ReachabilityTree::ReachabilityTree(const PetriNet& net, std::size_t max_nodes)
    : net_(net) {
  struct MarkingHash {
    std::size_t operator()(const Marking& m) const { return m.hash(); }
  };
  std::unordered_map<Marking, int, MarkingHash> seen;

  ReachNode root;
  root.marking = net.initial_marking();
  nodes_.push_back(root);
  seen.emplace(nodes_[0].marking, 0);

  std::deque<int> frontier{0};
  while (!frontier.empty()) {
    int idx = frontier.front();
    frontier.pop_front();
    // Copy the marking: nodes_ may reallocate while we expand.
    const Marking m = nodes_[idx].marking;
    for (TransId t : net.trans_ids()) {
      if (!net.enabled(t, m)) continue;
      Marking next = net.fire(t, m);
      auto [it, inserted] = seen.emplace(next, static_cast<int>(nodes_.size()));
      if (inserted) {
        HLTS_REQUIRE(nodes_.size() < max_nodes,
                     "reachability tree exceeded node bound");
        ReachNode n;
        n.marking = std::move(next);
        n.parent = idx;
        n.via = t;
        nodes_.push_back(std::move(n));
        frontier.push_back(it->second);
      }
      nodes_[idx].children.push_back(it->second);
    }
  }
}

bool ReachabilityTree::has_deadlock() const {
  for (const ReachNode& n : nodes_) {
    if (n.marking.count() == 0) continue;  // empty marking: net terminated
    bool any_enabled = false;
    for (TransId t : net_.trans_ids()) {
      if (net_.enabled(t, n.marking)) {
        any_enabled = true;
        break;
      }
    }
    // A marking consisting solely of sink places is normal termination.
    if (!any_enabled) {
      bool all_sinks = true;
      for (PlaceId p : net_.place_ids()) {
        if (n.marking.has(p) && !net_.place(p).out_transitions.empty()) {
          all_sinks = false;
          break;
        }
      }
      if (!all_sinks) return true;
    }
  }
  return false;
}

bool ReachabilityTree::reaches(const Marking& m) const {
  return std::any_of(nodes_.begin(), nodes_.end(),
                     [&](const ReachNode& n) { return n.marking == m; });
}

namespace {

/// Place-to-place adjacency with back edges (w.r.t. a DFS from the sources)
/// removed, so loops contribute one traversal to the critical path.
struct PlaceDag {
  std::vector<std::vector<std::uint32_t>> succs;
  std::vector<std::uint32_t> topo;  // topological order of reachable places
};

PlaceDag build_place_dag(const PetriNet& net) {
  const std::size_t n = net.num_places();
  std::vector<std::vector<std::uint32_t>> all_succs(n);
  for (TransId t : net.trans_ids()) {
    const Transition& tr = net.transition(t);
    for (PlaceId in : tr.inputs) {
      for (PlaceId out : tr.outputs) {
        all_succs[in.index()].push_back(out.value());
      }
    }
  }

  PlaceDag dag;
  dag.succs.assign(n, {});
  // Iterative DFS from all sources; classify edges, keep tree/forward/cross.
  enum class Color : unsigned char { White, Grey, Black };
  std::vector<Color> color(n, Color::White);
  struct Frame {
    std::uint32_t place;
    std::size_t next_child = 0;
  };
  std::vector<Frame> stack;
  for (PlaceId src : net.source_places()) {
    if (color[src.index()] != Color::White) continue;
    stack.push_back({src.value()});
    color[src.index()] = Color::Grey;
    while (!stack.empty()) {
      Frame& f = stack.back();
      if (f.next_child < all_succs[f.place].size()) {
        std::uint32_t child = all_succs[f.place][f.next_child++];
        if (color[child] == Color::Grey) {
          continue;  // back edge: drop to break the cycle
        }
        dag.succs[f.place].push_back(child);
        if (color[child] == Color::White) {
          color[child] = Color::Grey;
          stack.push_back({child});
        }
      } else {
        color[f.place] = Color::Black;
        dag.topo.push_back(f.place);
        stack.pop_back();
      }
    }
  }
  // topo currently holds reverse-postorder reversed; fix direction.
  std::reverse(dag.topo.begin(), dag.topo.end());
  return dag;
}

}  // namespace

CriticalPathResult critical_path(const PetriNet& net) {
  CriticalPathResult result;
  if (net.num_places() == 0) return result;

  PlaceDag dag = build_place_dag(net);
  const std::size_t n = net.num_places();
  constexpr int kUnreached = -1;
  std::vector<int> dist(n, kUnreached);
  std::vector<int> pred(n, -1);
  for (PlaceId src : net.source_places()) {
    dist[src.index()] = net.place(src).delay;
  }
  for (std::uint32_t p : dag.topo) {
    if (dist[p] == kUnreached) continue;
    for (std::uint32_t q : dag.succs[p]) {
      int cand = dist[p] + net.place(PlaceId{q}).delay;
      if (cand > dist[q]) {
        dist[q] = cand;
        pred[q] = static_cast<int>(p);
      }
    }
  }

  // Prefer ending at a sink place; fall back to the globally longest path
  // (purely cyclic nets have no sinks).
  int best = -1;
  std::vector<PlaceId> sinks = net.sink_places();
  const auto consider = [&](std::uint32_t p) {
    if (dist[p] != kUnreached && (best < 0 || dist[p] > dist[best])) {
      best = static_cast<int>(p);
    }
  };
  if (!sinks.empty()) {
    for (PlaceId p : sinks) consider(p.value());
  }
  if (best < 0) {
    for (std::uint32_t p = 0; p < n; ++p) consider(p);
  }
  if (best < 0) return result;

  result.length = dist[best];
  for (int p = best; p >= 0; p = pred[p]) {
    result.places.push_back(PlaceId{static_cast<std::uint32_t>(p)});
  }
  std::reverse(result.places.begin(), result.places.end());
  return result;
}

IncrementalCriticalPath::Signature IncrementalCriticalPath::signature_of(
    const PetriNet& net) {
  Signature sig;
  sig.place_delays.reserve(net.num_places());
  sig.place_marked.reserve(net.num_places());
  for (PlaceId p : net.place_ids()) {
    sig.place_delays.push_back(net.place(p).delay);
    sig.place_marked.push_back(net.place(p).initially_marked);
  }
  sig.trans_inputs.reserve(net.num_transitions());
  sig.trans_outputs.reserve(net.num_transitions());
  sig.trans_guards.reserve(net.num_transitions());
  for (TransId t : net.trans_ids()) {
    const Transition& tr = net.transition(t);
    std::vector<std::uint32_t> ins, outs;
    for (PlaceId p : tr.inputs) ins.push_back(p.value());
    for (PlaceId p : tr.outputs) outs.push_back(p.value());
    sig.trans_inputs.push_back(std::move(ins));
    sig.trans_outputs.push_back(std::move(outs));
    sig.trans_guards.emplace_back(tr.guard_group, tr.guard_polarity);
  }
  return sig;
}

const CriticalPathResult& IncrementalCriticalPath::recompute(const PetriNet& net) {
  Signature sig = signature_of(net);
  if (sig_ && *sig_ == sig) {
    ++hits_;
    return cached_;
  }
  ++misses_;
  cached_ = critical_path(net);
  sig_ = std::move(sig);
  return cached_;
}

}  // namespace hlts::petri
