// Timed Petri net engine.
//
// The control part of an ETPN design is a timed Petri net with restricted
// firing rules [Peng & Kuchcinski 1994; Peterson 1981].  Places correspond
// to control steps (a marked place activates the data transfers it guards);
// transitions move the token(s) between steps.  The paper uses the net for
// execution-time estimation: "the minimum execution time E is equal to the
// length of the critical path ... The method to detect the critical path is
// based on the reachability tree of the Petri net model."
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/ids.hpp"

namespace hlts::petri {

struct PlaceTag {};
struct TransTag {};
using PlaceId = Id<PlaceTag>;
using TransId = Id<TransTag>;

/// A place holds a token for `delay` time units before its output
/// transitions may consume it (timed-place semantics).
struct Place {
  std::string name;
  int delay = 1;
  bool initially_marked = false;
  std::vector<TransId> out_transitions;
  std::vector<TransId> in_transitions;
};

/// A transition fires when every input place is marked; firing is atomic
/// and takes no time itself.
struct Transition {
  std::string name;
  std::vector<PlaceId> inputs;
  std::vector<PlaceId> outputs;
  /// Guarded transitions model condition signals from the data path; two
  /// transitions with the same nonzero guard group and opposite polarity are
  /// mutually exclusive (only one can fire for a given condition value).
  int guard_group = 0;
  bool guard_polarity = true;
};

/// A marking of a (1-safe) net: a bitset over places.
class Marking {
 public:
  Marking() = default;
  explicit Marking(std::size_t num_places)
      : bits_((num_places + 63) / 64, 0), num_places_(num_places) {}

  [[nodiscard]] bool has(PlaceId p) const {
    return (bits_[p.index() / 64] >> (p.index() % 64)) & 1u;
  }
  void set(PlaceId p) { bits_[p.index() / 64] |= (std::uint64_t{1} << (p.index() % 64)); }
  void clear(PlaceId p) {
    bits_[p.index() / 64] &= ~(std::uint64_t{1} << (p.index() % 64));
  }
  [[nodiscard]] std::size_t count() const;
  [[nodiscard]] std::size_t num_places() const { return num_places_; }

  friend bool operator==(const Marking&, const Marking&) = default;
  [[nodiscard]] std::size_t hash() const;

 private:
  std::vector<std::uint64_t> bits_;
  std::size_t num_places_ = 0;
};

/// The Petri net structure.
class PetriNet {
 public:
  explicit PetriNet(std::string name = "control") : name_(std::move(name)) {}

  PlaceId add_place(const std::string& name, int delay = 1,
                    bool initially_marked = false);
  TransId add_transition(const std::string& name,
                         const std::vector<PlaceId>& inputs,
                         const std::vector<PlaceId>& outputs,
                         int guard_group = 0, bool guard_polarity = true);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::size_t num_places() const { return places_.size(); }
  [[nodiscard]] std::size_t num_transitions() const { return transitions_.size(); }
  [[nodiscard]] const Place& place(PlaceId p) const { return places_[p]; }
  [[nodiscard]] const Transition& transition(TransId t) const {
    return transitions_[t];
  }
  [[nodiscard]] IdRange<PlaceId> place_ids() const {
    return id_range<PlaceId>(places_.size());
  }
  [[nodiscard]] IdRange<TransId> trans_ids() const {
    return id_range<TransId>(transitions_.size());
  }

  [[nodiscard]] Marking initial_marking() const;
  [[nodiscard]] bool enabled(TransId t, const Marking& m) const;
  /// Fires `t` in `m` (precondition: enabled); returns successor marking.
  [[nodiscard]] Marking fire(TransId t, const Marking& m) const;

  /// Places with no outgoing transitions (final places).
  [[nodiscard]] std::vector<PlaceId> sink_places() const;
  /// Places that are initially marked.
  [[nodiscard]] std::vector<PlaceId> source_places() const;

  /// Structural check used by tests: every transition has >=1 input and
  /// >=1 output place.
  void validate() const;

  [[nodiscard]] std::string to_dot() const;

 private:
  std::string name_;
  IndexVec<PlaceId, Place> places_;
  IndexVec<TransId, Transition> transitions_;
};

/// One node of the reachability tree (really a reachability *graph*: visited
/// markings are shared, as in Peterson's "reachability set").
struct ReachNode {
  Marking marking;
  int parent = -1;           ///< index of predecessor node, -1 for root
  TransId via;               ///< transition fired to reach this node
  std::vector<int> children; ///< successor node indices
};

/// Reachability analysis of a 1-safe net.
class ReachabilityTree {
 public:
  /// Explores from the initial marking, up to `max_nodes` distinct markings.
  /// Throws hlts::Error if the bound is exceeded or 1-safety is violated.
  ReachabilityTree(const PetriNet& net, std::size_t max_nodes = 100000);

  [[nodiscard]] std::size_t size() const { return nodes_.size(); }
  [[nodiscard]] const ReachNode& node(std::size_t i) const { return nodes_[i]; }

  /// True if some reachable marking enables no transition at all.
  [[nodiscard]] bool has_deadlock() const;
  /// True if every reachable marking marks each place at most once (always
  /// true when construction succeeded; kept for test readability).
  [[nodiscard]] bool is_safe() const { return true; }
  /// True if `m` is reachable.
  [[nodiscard]] bool reaches(const Marking& m) const;

 private:
  const PetriNet& net_;
  std::vector<ReachNode> nodes_;
};

/// Critical-path (minimum-execution-time) analysis.
///
/// Computes the time for a token to flow from the initially marked places to
/// the sink places: the longest place-delay-weighted path through the net,
/// with back arcs (loops) traversed at most once.  For the chain-structured
/// control parts generated from schedules this equals the number of control
/// steps times the step delay; the general algorithm follows the paper's
/// reachability-tree formulation for nets with parallelism.
struct CriticalPathResult {
  int length = 0;                   ///< total delay along the critical path
  std::vector<PlaceId> places;      ///< places on one critical path, in order
};

[[nodiscard]] CriticalPathResult critical_path(const PetriNet& net);

/// Caching wrapper around critical_path for the incremental synthesis loop.
///
/// The control part of an ETPN is regenerated after every committed merger,
/// but its *structure* only changes when the rescheduled design's length
/// changes -- most commits keep the chain identical.  recompute() compares a
/// full structural signature of the net (place delays and markings,
/// transition arcs and guards) against the previous call and reruns the
/// reachability-based analysis only on a mismatch, so the cached result is
/// exactly what critical_path would return.
class IncrementalCriticalPath {
 public:
  const CriticalPathResult& recompute(const PetriNet& net);

  [[nodiscard]] std::int64_t hits() const { return hits_; }
  [[nodiscard]] std::int64_t misses() const { return misses_; }

 private:
  struct Signature {
    std::vector<int> place_delays;
    std::vector<bool> place_marked;
    std::vector<std::vector<std::uint32_t>> trans_inputs;
    std::vector<std::vector<std::uint32_t>> trans_outputs;
    std::vector<std::pair<int, bool>> trans_guards;
    friend bool operator==(const Signature&, const Signature&) = default;
  };
  [[nodiscard]] static Signature signature_of(const PetriNet& net);

  std::optional<Signature> sig_;
  CriticalPathResult cached_;
  std::int64_t hits_ = 0;
  std::int64_t misses_ = 0;
};

}  // namespace hlts::petri
