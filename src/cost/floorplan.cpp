#include "cost/floorplan.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <set>
#include <vector>

namespace hlts::cost {

double Floorplan::distance(etpn::DpNodeId a, etpn::DpNodeId b) const {
  const auto [ax, ay] = position[a];
  const auto [bx, by] = position[b];
  return pitch * (std::abs(ax - bx) + std::abs(ay - by));
}

namespace {

double node_area(const etpn::DpNode& node, const ModuleLibrary& lib, int bits) {
  switch (node.kind) {
    case etpn::DpNodeKind::Register:
      return lib.register_area(bits);
    case etpn::DpNodeKind::Module:
      return lib.module_area(node.op_class, bits);
    case etpn::DpNodeKind::InPort:
    case etpn::DpNodeKind::OutPort:
      return 0.0;  // pads; excluded from core area
  }
  return 0.0;
}

}  // namespace

Floorplan floorplan(const etpn::DataPath& dp, const ModuleLibrary& lib,
                    int bits) {
  Floorplan plan;
  plan.position.assign(dp.num_nodes(), {0, 0});
  if (dp.num_nodes() == 0) return plan;

  // Pitch: side of the average cell footprint.
  double total_area = 0;
  for (etpn::DpNodeId n : dp.node_ids()) {
    total_area += node_area(dp.node(n), lib, bits);
  }
  plan.pitch =
      std::sqrt(std::max(total_area, 1e-9) / static_cast<double>(dp.num_nodes()));

  // Connectivity (number of arcs) per node, and neighbour lists.
  std::vector<int> connectivity(dp.num_nodes(), 0);
  std::vector<std::vector<std::uint32_t>> neighbours(dp.num_nodes());
  for (etpn::DpArcId a : dp.arc_ids()) {
    const etpn::DpArc& arc = dp.arc(a);
    ++connectivity[arc.from.index()];
    ++connectivity[arc.to.index()];
    neighbours[arc.from.index()].push_back(arc.to.value());
    neighbours[arc.to.index()].push_back(arc.from.value());
  }

  std::vector<std::uint32_t> order(dp.num_nodes());
  for (std::uint32_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return connectivity[a] > connectivity[b];
                   });

  std::set<std::pair<int, int>> occupied;
  std::vector<bool> placed(dp.num_nodes(), false);
  // Spiral candidate positions around the origin, enough for all nodes.
  std::vector<std::pair<int, int>> spiral;
  const int radius =
      static_cast<int>(std::ceil(std::sqrt(dp.num_nodes()))) + 2;
  for (int r = 0; r <= radius; ++r) {
    for (int x = -r; x <= r; ++x) {
      for (int y = -r; y <= r; ++y) {
        if (std::max(std::abs(x), std::abs(y)) == r) spiral.push_back({x, y});
      }
    }
  }

  for (std::uint32_t idx : order) {
    etpn::DpNodeId n{idx};
    std::pair<int, int> best_pos{0, 0};
    double best_cost = 1e300;
    for (const auto& pos : spiral) {
      if (occupied.count(pos)) continue;
      double cost = 0;
      for (std::uint32_t nb : neighbours[idx]) {
        if (!placed[nb]) continue;
        const auto [nx, ny] = plan.position[etpn::DpNodeId{nb}];
        cost += std::abs(pos.first - nx) + std::abs(pos.second - ny);
      }
      // Light pull toward the origin keeps unconnected nodes compact.
      cost += 0.01 * (std::abs(pos.first) + std::abs(pos.second));
      if (cost < best_cost) {
        best_cost = cost;
        best_pos = pos;
      }
    }
    plan.position[n] = best_pos;
    occupied.insert(best_pos);
    placed[idx] = true;
  }
  return plan;
}

}  // namespace hlts::cost
