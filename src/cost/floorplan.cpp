#include "cost/floorplan.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

namespace hlts::cost {

double Floorplan::distance(etpn::DpNodeId a, etpn::DpNodeId b) const {
  const auto [ax, ay] = position[a];
  const auto [bx, by] = position[b];
  return pitch * (std::abs(ax - bx) + std::abs(ay - by));
}

namespace {

double node_area(const etpn::DpNode& node, const ModuleLibrary& lib, int bits) {
  switch (node.kind) {
    case etpn::DpNodeKind::Register:
      return lib.register_area(bits);
    case etpn::DpNodeKind::Module:
      return lib.module_area(node.op_class, bits);
    case etpn::DpNodeKind::InPort:
    case etpn::DpNodeKind::OutPort:
      return 0.0;  // pads; excluded from core area
  }
  return 0.0;
}

}  // namespace

Floorplan floorplan(const etpn::DataPath& dp, const ModuleLibrary& lib,
                    int bits) {
  Floorplan plan;
  FloorplanScratch scratch;
  floorplan(dp, lib, bits, plan, scratch);
  return plan;
}

void floorplan(const etpn::DataPath& dp, const ModuleLibrary& lib, int bits,
               Floorplan& plan, FloorplanScratch& scratch) {
  plan.position.assign(dp.num_nodes(), {0, 0});
  plan.pitch = 0.0;
  const std::size_t alive = dp.num_alive_nodes();
  if (alive == 0) return;

  // Pitch: side of the average cell footprint.
  double total_area = 0;
  for (etpn::DpNodeId n : dp.node_ids()) {
    if (!dp.alive(n)) continue;
    total_area += node_area(dp.node(n), lib, bits);
  }
  plan.pitch =
      std::sqrt(std::max(total_area, 1e-9) / static_cast<double>(alive));

  // Connectivity (number of arcs) per node, and neighbour lists.
  scratch.connectivity.assign(dp.num_nodes(), 0);
  scratch.neighbours.resize(dp.num_nodes());
  for (auto& nb : scratch.neighbours) nb.clear();
  for (etpn::DpArcId a : dp.arc_ids()) {
    if (!dp.alive(a)) continue;
    const etpn::DpArc& arc = dp.arc(a);
    ++scratch.connectivity[arc.from.index()];
    ++scratch.connectivity[arc.to.index()];
    scratch.neighbours[arc.from.index()].push_back(arc.to.value());
    scratch.neighbours[arc.to.index()].push_back(arc.from.value());
  }

  scratch.order.clear();
  for (etpn::DpNodeId n : dp.node_ids()) {
    if (dp.alive(n)) scratch.order.push_back(n.value());
  }
  std::stable_sort(scratch.order.begin(), scratch.order.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return scratch.connectivity[a] > scratch.connectivity[b];
                   });

  scratch.occupied.clear();
  scratch.placed.assign(dp.num_nodes(), false);
  // Spiral candidate positions around the origin, enough for all nodes.
  scratch.spiral.clear();
  const int radius =
      static_cast<int>(std::ceil(std::sqrt(static_cast<double>(alive)))) + 2;
  for (int r = 0; r <= radius; ++r) {
    for (int x = -r; x <= r; ++x) {
      for (int y = -r; y <= r; ++y) {
        if (std::max(std::abs(x), std::abs(y)) == r) {
          scratch.spiral.push_back({x, y});
        }
      }
    }
  }

  for (std::uint32_t idx : scratch.order) {
    etpn::DpNodeId n{idx};
    std::pair<int, int> best_pos{0, 0};
    double best_cost = 1e300;
    for (const auto& pos : scratch.spiral) {
      if (scratch.occupied.count(pos)) continue;
      double cost = 0;
      for (std::uint32_t nb : scratch.neighbours[idx]) {
        if (!scratch.placed[nb]) continue;
        const auto [nx, ny] = plan.position[etpn::DpNodeId{nb}];
        cost += std::abs(pos.first - nx) + std::abs(pos.second - ny);
      }
      // Light pull toward the origin keeps unconnected nodes compact.
      cost += 0.01 * (std::abs(pos.first) + std::abs(pos.second));
      if (cost < best_cost) {
        best_cost = cost;
        best_pos = pos;
      }
    }
    plan.position[n] = best_pos;
    scratch.occupied.insert(best_pos);
    scratch.placed[idx] = true;
  }
}

}  // namespace hlts::cost
