#include "cost/cost.hpp"

namespace hlts::cost {

HardwareCost estimate_cost(const etpn::DataPath& dp, const ModuleLibrary& lib,
                           int bits) {
  CostScratch scratch;
  return estimate_cost(dp, lib, bits, scratch);
}

HardwareCost estimate_cost(const etpn::DataPath& dp, const ModuleLibrary& lib,
                           int bits, CostScratch& scratch) {
  HardwareCost cost;

  for (etpn::DpNodeId n : dp.node_ids()) {
    if (!dp.alive(n)) continue;
    const etpn::DpNode& node = dp.node(n);
    switch (node.kind) {
      case etpn::DpNodeKind::Register:
        cost.register_area += lib.register_area(bits);
        break;
      case etpn::DpNodeKind::Module:
        cost.module_area += lib.module_area(node.op_class, bits);
        break;
      default:
        break;
    }
    // Multiplexers: a port with s >= 2 sources needs (s - 1) two-to-one
    // muxes.
    for (int port = 0; port < dp.num_ports(n); ++port) {
      const int sources = dp.num_port_sources(n, port);
      if (sources >= 2) {
        cost.mux_area += (static_cast<double>(sources) - 1.0) *
                         lib.mux_area(bits);
      }
    }
  }

  floorplan(dp, lib, bits, scratch.plan, scratch.floorplan);
  for (etpn::DpArcId a : dp.arc_ids()) {
    if (!dp.alive(a)) continue;
    const etpn::DpArc& arc = dp.arc(a);
    const double len = scratch.plan.distance(arc.from, arc.to);
    const double wid = static_cast<double>(bits) * lib.wire_pitch();
    cost.wire_area += len * wid;
  }
  return cost;
}

}  // namespace hlts::cost
