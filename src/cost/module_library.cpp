#include "cost/module_library.hpp"

namespace hlts::cost {

ModuleLibrary ModuleLibrary::standard() { return ModuleLibrary{}; }

double ModuleLibrary::module_area(dfg::OpKind kind, int bits) const {
  using dfg::OpKind;
  const double b = bits;
  switch (kind) {
    case OpKind::Mul:
      return mul_per_bit2 * b * b;
    case OpKind::Div:
      return div_per_bit2 * b * b;
    case OpKind::Less:
    case OpKind::Greater:
    case OpKind::Equal:
      return cmp_per_bit * b;
    case OpKind::And:
    case OpKind::Or:
    case OpKind::Xor:
    case OpKind::Not:
      return logic_per_bit * b;
    case OpKind::ShiftLeft:
    case OpKind::ShiftRight:
      return shift_per_bit * b;
    case OpKind::Move:
      return 0.0;
    case OpKind::Add:
    case OpKind::Sub:
      return alu_per_bit * b;
  }
  return alu_per_bit * b;
}

double ModuleLibrary::register_area(int bits) const { return reg_per_bit * bits; }

double ModuleLibrary::mux_area(int bits) const { return mux_per_bit * bits; }

}  // namespace hlts::cost
