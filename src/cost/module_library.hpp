// Module library: area parameters for data path units.
//
// "The cost of data path units which performs logic, arithmetic, or storage
// operations is given by the corresponding module parameters stored in the
// module library."  Areas are in mm^2, calibrated so that the synthesized
// benchmark designs land in the magnitude range of the paper's Tables 2-3
// (0.5-3.3 mm^2 for 4..16-bit data paths in the 1998 technology).
#pragma once

#include "dfg/dfg.hpp"

namespace hlts::cost {

class ModuleLibrary {
 public:
  /// The default library used throughout the repo.
  [[nodiscard]] static ModuleLibrary standard();

  /// Area of a functional module implementing `kind`'s module class at the
  /// given bit width.  Adders/subtracters/comparators are linear in width;
  /// multipliers and dividers are quadratic (array implementations).
  [[nodiscard]] double module_area(dfg::OpKind kind, int bits) const;

  /// Area of one `bits`-wide register (with load-enable).
  [[nodiscard]] double register_area(int bits) const;

  /// Area of one 2-to-1 multiplexer of the given width.
  [[nodiscard]] double mux_area(int bits) const;

  /// Wire pitch: area cost per unit length per bit of connection width
  /// ("the bit width of the connection multiplied by a given weighted
  /// factor").
  [[nodiscard]] double wire_pitch() const { return wire_pitch_; }

  /// Per-class base coefficients (exposed for ablation benches).
  double alu_per_bit = 0.0080;
  double cmp_per_bit = 0.0060;
  double logic_per_bit = 0.0040;
  double shift_per_bit = 0.0050;
  double mul_per_bit2 = 0.0030;
  double div_per_bit2 = 0.0035;
  double reg_per_bit = 0.0040;
  double mux_per_bit = 0.0030;  // a 2:1 mux bit is nearly a flip-flop bit

 private:
  double wire_pitch_ = 0.00020;
};

}  // namespace hlts::cost
