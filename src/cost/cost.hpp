// Hardware cost estimation (paper §4.2).
//
//   H = sum_i Area(V_i) + sum_j Len(A_j) x Wid(A_j)
//
// where Area comes from the module library, Len from the floorplan, and Wid
// is the connection bit width times a weighting factor (the wire pitch).
// Multiplexers implied by multi-source ports are costed explicitly.
#pragma once

#include "cost/floorplan.hpp"
#include "cost/module_library.hpp"
#include "etpn/datapath.hpp"

namespace hlts::cost {

struct HardwareCost {
  double module_area = 0;
  double register_area = 0;
  double mux_area = 0;
  double wire_area = 0;
  [[nodiscard]] double total() const {
    return module_area + register_area + mux_area + wire_area;
  }
};

/// Reusable buffers for repeated cost estimation (one per trial worker).
struct CostScratch {
  Floorplan plan;
  FloorplanScratch floorplan;
};

/// Estimates the hardware cost of a data path at the given bit width,
/// running the floorplanner internally.  Tombstoned nodes and arcs are
/// skipped, so a merge-patched graph costs exactly like a fresh build.
[[nodiscard]] HardwareCost estimate_cost(const etpn::DataPath& dp,
                                         const ModuleLibrary& lib, int bits);
/// As above, reusing `scratch`'s buffers across calls (bit-identical).
[[nodiscard]] HardwareCost estimate_cost(const etpn::DataPath& dp,
                                         const ModuleLibrary& lib, int bits,
                                         CostScratch& scratch);

}  // namespace hlts::cost
