// Connectivity-driven floorplanning heuristic (after Peng & Kuchcinski
// [14]): estimates wire lengths for the hardware cost model.
//
// Nodes are placed one by one, most-connected first, each at the free grid
// position minimizing the connection-width-weighted Manhattan distance to
// its already-placed neighbours.  The physical pitch of a grid cell is
// derived from the average cell footprint, so wire length contributions
// scale correctly with bit width.
//
// Tombstoned (dead) nodes and arcs are skipped throughout, so a patched
// graph floorplans exactly like a freshly built compact one: the same alive
// nodes in the same relative order compete for the same spiral positions.
#pragma once

#include <cstdint>
#include <set>
#include <utility>
#include <vector>

#include "cost/module_library.hpp"
#include "etpn/datapath.hpp"
#include "util/ids.hpp"

namespace hlts::cost {

struct Floorplan {
  /// Grid position of every data path node.
  IndexVec<etpn::DpNodeId, std::pair<int, int>> position;
  /// Physical side length of one grid cell in mm.
  double pitch = 0.0;

  /// Manhattan wire length between two nodes in mm.
  [[nodiscard]] double distance(etpn::DpNodeId a, etpn::DpNodeId b) const;
};

/// Reusable buffers for repeated floorplan runs.  Trial evaluation calls the
/// floorplanner once per candidate merger; keeping one scratch per worker
/// removes the per-trial allocation churn without changing any result (the
/// scratch-taking overloads produce bit-identical output to the plain ones).
struct FloorplanScratch {
  std::vector<int> connectivity;
  std::vector<std::vector<std::uint32_t>> neighbours;
  std::vector<std::uint32_t> order;
  std::vector<bool> placed;
  std::vector<std::pair<int, int>> spiral;
  std::set<std::pair<int, int>> occupied;
};

[[nodiscard]] Floorplan floorplan(const etpn::DataPath& dp,
                                  const ModuleLibrary& lib, int bits);

/// As above, writing into `plan` and reusing `scratch`'s buffers.
void floorplan(const etpn::DataPath& dp, const ModuleLibrary& lib, int bits,
               Floorplan& plan, FloorplanScratch& scratch);

}  // namespace hlts::cost
