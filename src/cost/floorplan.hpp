// Connectivity-driven floorplanning heuristic (after Peng & Kuchcinski
// [14]): estimates wire lengths for the hardware cost model.
//
// Nodes are placed one by one, most-connected first, each at the free grid
// position minimizing the connection-width-weighted Manhattan distance to
// its already-placed neighbours.  The physical pitch of a grid cell is
// derived from the average cell footprint, so wire length contributions
// scale correctly with bit width.
#pragma once

#include <utility>

#include "cost/module_library.hpp"
#include "etpn/datapath.hpp"
#include "util/ids.hpp"

namespace hlts::cost {

struct Floorplan {
  /// Grid position of every data path node.
  IndexVec<etpn::DpNodeId, std::pair<int, int>> position;
  /// Physical side length of one grid cell in mm.
  double pitch = 0.0;

  /// Manhattan wire length between two nodes in mm.
  [[nodiscard]] double distance(etpn::DpNodeId a, etpn::DpNodeId b) const;
};

[[nodiscard]] Floorplan floorplan(const etpn::DataPath& dp,
                                  const ModuleLibrary& lib, int bits);

}  // namespace hlts::cost
