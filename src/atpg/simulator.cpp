#include "atpg/simulator.hpp"

#include "util/error.hpp"

namespace hlts::atpg {

using gates::GateId;
using gates::GateKind;

ParallelSimulator::ParallelSimulator(const gates::Netlist& nl) : nl_(nl) {
  nl.validate();
  one_.assign(nl.num_gates(), 0);
  zero_.assign(nl.num_gates(), 0);
  state_one_.assign(nl.num_gates(), 0);
  state_zero_.assign(nl.num_gates(), 0);
  sa1_mask_.assign(nl.num_gates(), 0);
  sa0_mask_.assign(nl.num_gates(), 0);
}

void ParallelSimulator::inject(int lane, const Fault& fault) {
  HLTS_REQUIRE(lane >= 1 && lane < 64, "fault lane must be 1..63");
  const std::uint64_t bit = std::uint64_t{1} << lane;
  if (fault.stuck_at_one) {
    sa1_mask_[fault.gate] |= bit;
  } else {
    sa0_mask_[fault.gate] |= bit;
  }
  masked_gates_.push_back(fault.gate);
}

void ParallelSimulator::clear_faults() {
  for (GateId g : masked_gates_) {
    sa1_mask_[g] = 0;
    sa0_mask_[g] = 0;
  }
  masked_gates_.clear();
}

void ParallelSimulator::reset_state() {
  for (GateId d : nl_.dffs()) {
    state_one_[d] = 0;
    state_zero_[d] = 0;  // X: neither plane set
  }
}

inline void ParallelSimulator::apply_mask(GateId g) {
  const std::uint64_t s1 = sa1_mask_[g];
  const std::uint64_t s0 = sa0_mask_[g];
  if ((s1 | s0) == 0) return;
  one_[g] = (one_[g] | s1) & ~s0;
  zero_[g] = (zero_[g] | s0) & ~s1;
}

std::uint64_t ParallelSimulator::step(const TestVector& inputs) {
  HLTS_REQUIRE(inputs.size() == nl_.inputs().size(),
               "test vector width mismatch");

  // Sources.
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    GateId g = nl_.inputs()[i];
    one_[g] = inputs[i] ? ~std::uint64_t{0} : 0;
    zero_[g] = ~one_[g];
    apply_mask(g);
  }
  for (GateId g : nl_.gate_ids()) {
    const GateKind kind = nl_.gate(g).kind;
    if (kind == GateKind::Const0) {
      one_[g] = 0;
      zero_[g] = ~std::uint64_t{0};
      apply_mask(g);
    } else if (kind == GateKind::Const1) {
      one_[g] = ~std::uint64_t{0};
      zero_[g] = 0;
      apply_mask(g);
    }
  }
  for (GateId d : nl_.dffs()) {
    one_[d] = state_one_[d];
    zero_[d] = state_zero_[d];
    apply_mask(d);
  }

  // Combinational evaluation (two-plane three-valued logic).
  for (GateId g : nl_.levelized()) {
    const gates::Gate& gate = nl_.gate(g);
    std::uint64_t v1 = 0;
    std::uint64_t v0 = 0;
    switch (gate.kind) {
      case GateKind::Buf:
      case GateKind::Output:
        v1 = one_[gate.inputs[0]];
        v0 = zero_[gate.inputs[0]];
        break;
      case GateKind::Not:
        v1 = zero_[gate.inputs[0]];
        v0 = one_[gate.inputs[0]];
        break;
      case GateKind::And:
      case GateKind::Nand: {
        v1 = ~std::uint64_t{0};
        v0 = 0;
        for (GateId in : gate.inputs) {
          v1 &= one_[in];
          v0 |= zero_[in];
        }
        if (gate.kind == GateKind::Nand) std::swap(v1, v0);
        break;
      }
      case GateKind::Or:
      case GateKind::Nor: {
        v1 = 0;
        v0 = ~std::uint64_t{0};
        for (GateId in : gate.inputs) {
          v1 |= one_[in];
          v0 &= zero_[in];
        }
        if (gate.kind == GateKind::Nor) std::swap(v1, v0);
        break;
      }
      case GateKind::Xor:
      case GateKind::Xnor: {
        const std::uint64_t a1 = one_[gate.inputs[0]];
        const std::uint64_t a0 = zero_[gate.inputs[0]];
        const std::uint64_t b1 = one_[gate.inputs[1]];
        const std::uint64_t b0 = zero_[gate.inputs[1]];
        v1 = (a1 & b0) | (a0 & b1);
        v0 = (a1 & b1) | (a0 & b0);
        if (gate.kind == GateKind::Xnor) std::swap(v1, v0);
        break;
      }
      case GateKind::Mux: {
        const std::uint64_t s1 = one_[gate.inputs[0]];
        const std::uint64_t s0 = zero_[gate.inputs[0]];
        const std::uint64_t a1 = one_[gate.inputs[1]];
        const std::uint64_t a0 = zero_[gate.inputs[1]];
        const std::uint64_t b1 = one_[gate.inputs[2]];
        const std::uint64_t b0 = zero_[gate.inputs[2]];
        v1 = (s0 & a1) | (s1 & b1) | (a1 & b1);
        v0 = (s0 & a0) | (s1 & b0) | (a0 & b0);
        break;
      }
      default:
        continue;  // sources handled above
    }
    one_[g] = v1;
    zero_[g] = v0;
    apply_mask(g);
  }

  // Detection: good and faulty both binary and different.
  std::uint64_t diff = 0;
  for (GateId o : nl_.outputs()) {
    const std::uint64_t g1 = (one_[o] & 1) ? ~std::uint64_t{0} : 0;
    const std::uint64_t g0 = (zero_[o] & 1) ? ~std::uint64_t{0} : 0;
    diff |= (g1 & zero_[o]) | (g0 & one_[o]);
  }

  // Clock edge.
  for (GateId d : nl_.dffs()) {
    state_one_[d] = one_[nl_.gate(d).inputs[0]];
    state_zero_[d] = zero_[nl_.gate(d).inputs[0]];
  }
  return diff & ~std::uint64_t{1};
}

}  // namespace hlts::atpg
