#include "atpg/bist.hpp"

#include "util/error.hpp"

namespace hlts::atpg {

BistResult run_bist(const gates::Netlist& nl, int cycles, int simd_width) {
  HLTS_REQUIRE(cycles >= 1, "BIST session needs at least one cycle");
  int reset_index = -1;
  int bist_index = -1;
  for (std::size_t i = 0; i < nl.inputs().size(); ++i) {
    const std::string& name = nl.gate(nl.inputs()[i]).name;
    if (name == "reset") reset_index = static_cast<int>(i);
    if (name == "bist_mode") bist_index = static_cast<int>(i);
  }
  HLTS_REQUIRE(reset_index >= 0 && bist_index >= 0,
               "netlist was not elaborated with BIST support");

  TestSequence session;
  for (int c = 0; c <= cycles; ++c) {
    TestVector v(nl.inputs().size(), false);
    v[static_cast<std::size_t>(reset_index)] = (c == 0);
    v[static_cast<std::size_t>(bist_index)] = true;
    session.push_back(std::move(v));
  }

  FaultUniverse universe = FaultUniverse::collapsed(nl);
  std::vector<Fault> remaining = universe.faults();
  FaultSimulator fsim(nl, /*num_threads=*/0, simd_width);
  fsim.drop_detected(session, remaining);

  BistResult result;
  result.total_faults = universe.size();
  result.detected = universe.size() - remaining.size();
  result.coverage = result.total_faults == 0
                        ? 1.0
                        : static_cast<double>(result.detected) /
                              static_cast<double>(result.total_faults);
  result.cycles = cycles;
  return result;
}

}  // namespace hlts::atpg
