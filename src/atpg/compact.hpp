// Static test-set compaction: reverse-order fault simulation.
//
// Sequences generated late in an ATPG run (deterministic, targeted) tend to
// fortuitously cover the faults that earlier random sequences were kept
// for; simulating the test set in reverse order of generation and keeping
// only sequences that detect a not-yet-covered fault shrinks the test
// length ("test generated cycle") without losing coverage -- the classic
// static compaction every production flow applies.
#pragma once

#include <vector>

#include "atpg/fault_sim.hpp"

namespace hlts::atpg {

struct CompactionResult {
  /// Indices (into the input test set) of the kept sequences, in original
  /// order.
  std::vector<std::size_t> kept;
  std::size_t faults_covered_before = 0;
  std::size_t faults_covered_after = 0;
  long cycles_before = 0;
  long cycles_after = 0;
};

/// Compacts `sequences` against `faults` (typically the full collapsed
/// universe).  Coverage is preserved by construction: a sequence is dropped
/// only if every fault it detects is also detected by a kept sequence.
/// `simd_width` selects the fault-simulation packet width (see
/// atpg::resolve_simd_width); the result is width-independent.
[[nodiscard]] CompactionResult compact_test_set(
    const gates::Netlist& nl, const std::vector<TestSequence>& sequences,
    const std::vector<Fault>& faults, int simd_width = 0);

}  // namespace hlts::atpg
