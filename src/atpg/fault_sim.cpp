#include "atpg/fault_sim.hpp"

#include <algorithm>
#include <cstdlib>

#include "util/error.hpp"
#include "util/failpoint.hpp"
#include "util/knobs.hpp"

namespace hlts::atpg {

namespace {

/// Runs faults [base, base + batch) through `sim` and appends the detected
/// indices (into the full fault list) to `out`, in ascending order.
template <int W>
void run_batch(WideSimulator<W>& sim, const TestSequence& sequence,
               const std::vector<Fault>& faults, std::size_t base,
               std::size_t batch, std::vector<std::size_t>& out) {
  sim.clear_faults();
  for (std::size_t i = 0; i < batch; ++i) {
    sim.inject(static_cast<int>(i + 1), faults[base + i]);
  }
  sim.reset_state();
  // Lanes 1..batch carry faults; lane 0 is the fault-free reference.
  Packet<W> all_lanes = Packet<W>::zero();
  for (std::size_t i = 0; i < batch; ++i) {
    all_lanes.set_lane(static_cast<int>(i + 1));
  }
  Packet<W> caught = Packet<W>::zero();
  for (const TestVector& v : sequence) {
    caught |= sim.step(v);
    // All injected lanes of this batch already detected: stop early.
    if ((caught & all_lanes) == all_lanes) break;
  }
  for (std::size_t i = 0; i < batch; ++i) {
    if (caught.lane(static_cast<int>(i + 1))) {
      out.push_back(base + i);
    }
  }
}

}  // namespace

int resolve_simd_width(int requested) {
  if (requested == 0) {
    // Registry-audited read; unsupported widths fall back to the default
    // (the knob's documented Ignore policy).
    if (const std::optional<long long> v =
            util::knobs::read_int("HLTS_SIMD_WIDTH");
        v && (*v == 64 || *v == 256 || *v == 512)) {
      return static_cast<int>(*v);
    }
    return 256;
  }
  HLTS_REQUIRE(requested == 64 || requested == 256 || requested == 512,
               "simd width must be 64, 256 or 512 lanes");
  return requested;
}

FaultSimulator::FaultSimulator(const gates::Netlist& nl, int num_threads,
                               int simd_width)
    : nl_(nl), width_(resolve_simd_width(simd_width)) {
  switch (width_) {
    case 64:
      sim64_ = std::make_unique<WideSimulator<1>>(nl);
      break;
    case 256:
      sim256_ = std::make_unique<WideSimulator<4>>(nl);
      break;
    default:
      sim512_ = std::make_unique<WideSimulator<8>>(nl);
      break;
  }
  const std::size_t threads =
      num_threads > 0 ? static_cast<std::size_t>(num_threads)
                      : util::ThreadPool::default_threads();
  if (threads > 1) pool_ = std::make_unique<util::ThreadPool>(threads);
}

template <int W>
std::vector<std::size_t> FaultSimulator::detect(
    WideSimulator<W>& persistent, const TestSequence& sequence,
    const std::vector<Fault>& faults) {
  // One batch per packet: 64*W - 1 faults (lane 0 is the good machine).
  constexpr std::size_t kCap =
      static_cast<std::size_t>(WideSimulator<W>::kLanes) - 1;
  const std::size_t num_batches = (faults.size() + kCap - 1) / kCap;
  if (!pool_ || num_batches < 2) {
    std::vector<std::size_t> detected;
    const std::uint64_t before = persistent.gate_lane_evals();
    for (std::size_t base = 0; base < faults.size(); base += kCap) {
      const std::size_t batch = std::min(kCap, faults.size() - base);
      run_batch(persistent, sequence, faults, base, batch, detected);
    }
    lane_evals_ += persistent.gate_lane_evals() - before;
    return detected;
  }

  // Batches are independent: fan them out, each on a private simulator, and
  // concatenate in batch order so the result matches the serial path.
  std::vector<std::vector<std::size_t>> per_batch(num_batches);
  std::vector<std::uint64_t> per_batch_evals(num_batches, 0);
  pool_->parallel_for(num_batches, [&](std::size_t bi) {
    const std::size_t base = bi * kCap;
    const std::size_t batch = std::min(kCap, faults.size() - base);
    WideSimulator<W> sim(nl_);
    run_batch(sim, sequence, faults, base, batch, per_batch[bi]);
    per_batch_evals[bi] = sim.gate_lane_evals();
  });
  std::vector<std::size_t> detected;
  for (std::size_t bi = 0; bi < num_batches; ++bi) {
    detected.insert(detected.end(), per_batch[bi].begin(),
                    per_batch[bi].end());
    lane_evals_ += per_batch_evals[bi];
  }
  return detected;
}

std::vector<std::size_t> FaultSimulator::detected_by(
    const TestSequence& sequence, const std::vector<Fault>& faults) {
  HLTS_FAILPOINT("atpg.fault_sim");
  if (sim64_) return detect(*sim64_, sequence, faults);
  if (sim256_) return detect(*sim256_, sequence, faults);
  return detect(*sim512_, sequence, faults);
}

std::size_t FaultSimulator::drop_detected(const TestSequence& sequence,
                                          std::vector<Fault>& faults,
                                          std::vector<Fault>* dropped) {
  std::vector<std::size_t> hit = detected_by(sequence, faults);
  if (hit.empty()) return 0;
  if (dropped != nullptr) {
    for (const std::size_t i : hit) dropped->push_back(faults[i]);
  }
  // Erase by index, back to front (indices are ascending).
  for (auto it = hit.rbegin(); it != hit.rend(); ++it) {
    faults.erase(faults.begin() + static_cast<std::ptrdiff_t>(*it));
  }
  return hit.size();
}

}  // namespace hlts::atpg
