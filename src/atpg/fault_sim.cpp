#include "atpg/fault_sim.hpp"

#include <algorithm>

#include "util/failpoint.hpp"

namespace hlts::atpg {

namespace {

/// Runs faults [base, base + batch) through `sim` and appends the detected
/// indices (into the full fault list) to `out`, in ascending order.
void run_batch(ParallelSimulator& sim, const TestSequence& sequence,
               const std::vector<Fault>& faults, std::size_t base,
               std::size_t batch, std::vector<std::size_t>& out) {
  sim.clear_faults();
  for (std::size_t i = 0; i < batch; ++i) {
    sim.inject(static_cast<int>(i + 1), faults[base + i]);
  }
  sim.reset_state();
  // Lanes 1..batch carry faults; lane 0 is the fault-free reference.
  const std::uint64_t all_lanes =
      batch == 63 ? ~std::uint64_t{1}
                  : ((std::uint64_t{1} << (batch + 1)) - 2);
  std::uint64_t caught = 0;
  for (const TestVector& v : sequence) {
    caught |= sim.step(v);
    // All injected lanes of this batch already detected: stop early.
    if ((caught & all_lanes) == all_lanes) break;
  }
  for (std::size_t i = 0; i < batch; ++i) {
    if (caught & (std::uint64_t{1} << (i + 1))) {
      out.push_back(base + i);
    }
  }
}

}  // namespace

FaultSimulator::FaultSimulator(const gates::Netlist& nl, int num_threads)
    : nl_(nl), sim_(nl) {
  const std::size_t threads =
      num_threads > 0 ? static_cast<std::size_t>(num_threads)
                      : util::ThreadPool::default_threads();
  if (threads > 1) pool_ = std::make_unique<util::ThreadPool>(threads);
}

std::vector<std::size_t> FaultSimulator::detected_by(
    const TestSequence& sequence, const std::vector<Fault>& faults) {
  HLTS_FAILPOINT("atpg.fault_sim");
  const std::size_t num_batches = (faults.size() + 62) / 63;
  if (!pool_ || num_batches < 2) {
    std::vector<std::size_t> detected;
    for (std::size_t base = 0; base < faults.size(); base += 63) {
      const std::size_t batch = std::min<std::size_t>(63, faults.size() - base);
      run_batch(sim_, sequence, faults, base, batch, detected);
    }
    return detected;
  }

  // Batches are independent: fan them out, each on a private simulator, and
  // concatenate in batch order so the result matches the serial path.
  std::vector<std::vector<std::size_t>> per_batch(num_batches);
  pool_->parallel_for(num_batches, [&](std::size_t bi) {
    const std::size_t base = bi * 63;
    const std::size_t batch = std::min<std::size_t>(63, faults.size() - base);
    ParallelSimulator sim(nl_);
    run_batch(sim, sequence, faults, base, batch, per_batch[bi]);
  });
  std::vector<std::size_t> detected;
  for (const std::vector<std::size_t>& d : per_batch) {
    detected.insert(detected.end(), d.begin(), d.end());
  }
  return detected;
}

std::size_t FaultSimulator::drop_detected(const TestSequence& sequence,
                                          std::vector<Fault>& faults) {
  std::vector<std::size_t> hit = detected_by(sequence, faults);
  if (hit.empty()) return 0;
  // Erase by index, back to front (indices are ascending).
  for (auto it = hit.rbegin(); it != hit.rend(); ++it) {
    faults.erase(faults.begin() + static_cast<std::ptrdiff_t>(*it));
  }
  return hit.size();
}

}  // namespace hlts::atpg
