#include "atpg/fault_sim.hpp"

#include <algorithm>

namespace hlts::atpg {

std::vector<std::size_t> FaultSimulator::detected_by(
    const TestSequence& sequence, const std::vector<Fault>& faults) {
  std::vector<std::size_t> detected;
  for (std::size_t base = 0; base < faults.size(); base += 63) {
    const std::size_t batch = std::min<std::size_t>(63, faults.size() - base);
    sim_.clear_faults();
    for (std::size_t i = 0; i < batch; ++i) {
      sim_.inject(static_cast<int>(i + 1), faults[base + i]);
    }
    sim_.reset_state();
    std::uint64_t caught = 0;
    for (const TestVector& v : sequence) {
      caught |= sim_.step(v);
      // All lanes of this batch already detected: stop early.
      if (batch == 63 && caught == (~std::uint64_t{0} & ~std::uint64_t{1})) {
        break;
      }
    }
    for (std::size_t i = 0; i < batch; ++i) {
      if (caught & (std::uint64_t{1} << (i + 1))) {
        detected.push_back(base + i);
      }
    }
  }
  return detected;
}

std::size_t FaultSimulator::drop_detected(const TestSequence& sequence,
                                          std::vector<Fault>& faults) {
  std::vector<std::size_t> hit = detected_by(sequence, faults);
  if (hit.empty()) return 0;
  // Erase by index, back to front (indices are ascending).
  for (auto it = hit.rbegin(); it != hit.rend(); ++it) {
    faults.erase(faults.begin() + static_cast<std::ptrdiff_t>(*it));
  }
  return hit.size();
}

}  // namespace hlts::atpg
