#include "atpg/faults.hpp"

#include "util/error.hpp"

namespace hlts::atpg {

std::string fault_name(const gates::Netlist& nl, const Fault& f) {
  const gates::Gate& g = nl.gate(f.gate);
  std::string base = g.name.empty()
                         ? std::string(gates::gate_kind_name(g.kind)) + "#" +
                               std::to_string(f.gate.value())
                         : g.name;
  return base + (f.stuck_at_one ? "/sa1" : "/sa0");
}

bool FaultUniverse::is_fault_site(const gates::Netlist& nl,
                                  gates::GateId id) {
  switch (nl.gate(id).kind) {
    case gates::GateKind::Output:  // equivalent to the driver stem
    case gates::GateKind::Buf:     // equivalent to the driver stem
    case gates::GateKind::Not:     // equivalent with flipped polarity
    case gates::GateKind::Const0:  // tied nets are untestable by definition
    case gates::GateKind::Const1:
      return false;
    default:
      return true;
  }
}

FaultUniverse FaultUniverse::collapsed(const gates::Netlist& nl) {
  FaultUniverse u;
  for (gates::GateId id : nl.gate_ids()) {
    if (!is_fault_site(nl, id)) continue;
    u.faults_.push_back({id, false});
    u.faults_.push_back({id, true});
  }
  return u;
}

FaultLedger::FaultLedger(const gates::Netlist& nl, const FaultUniverse& u)
    : universe_(u),
      status_(2 * nl.num_gates(),
              static_cast<std::uint8_t>(FaultStatus::Undetected)) {
  counts_[static_cast<std::size_t>(FaultStatus::Undetected)] = u.size();
}

std::size_t FaultLedger::key(const Fault& f) const {
  const std::size_t k = 2 * f.gate.index() + (f.stuck_at_one ? 1 : 0);
  HLTS_REQUIRE(k < status_.size(), "fault ledger: fault outside the netlist");
  return k;
}

void FaultLedger::mark(const Fault& f, FaultStatus status) {
  const std::size_t k = key(f);
  const auto current = static_cast<FaultStatus>(status_[k]);
  // Promotion rule: the first detection is final.  Untestable and Aborted
  // can still be promoted to Detected* -- the PODEM backend's untestable
  // claims come from its unrolled model, and a later sequence the
  // *sequential* simulator runs can contradict them (the simulator is
  // always the referee).  The SAT backend's proofs cannot be contradicted
  // this way by construction, which the sat test suite asserts.
  if (current == FaultStatus::DetectedRandom ||
      current == FaultStatus::DetectedDeterministic) {
    return;
  }
  if (current == FaultStatus::Untestable &&
      !(status == FaultStatus::DetectedRandom ||
        status == FaultStatus::DetectedDeterministic)) {
    return;
  }
  --counts_[static_cast<std::size_t>(current)];
  status_[k] = static_cast<std::uint8_t>(status);
  ++counts_[static_cast<std::size_t>(status)];
}

FaultStatus FaultLedger::status(const Fault& f) const {
  return static_cast<FaultStatus>(status_[key(f)]);
}

std::size_t FaultLedger::count(FaultStatus status) const {
  return counts_[static_cast<std::size_t>(status)];
}

std::vector<Fault> FaultLedger::unresolved() const {
  std::vector<Fault> out;
  for (const Fault& f : universe_.faults()) {
    const FaultStatus s = status(f);
    if (s == FaultStatus::Undetected || s == FaultStatus::Aborted) {
      out.push_back(f);
    }
  }
  return out;
}

}  // namespace hlts::atpg
