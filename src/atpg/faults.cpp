#include "atpg/faults.hpp"

namespace hlts::atpg {

std::string fault_name(const gates::Netlist& nl, const Fault& f) {
  const gates::Gate& g = nl.gate(f.gate);
  std::string base = g.name.empty()
                         ? std::string(gates::gate_kind_name(g.kind)) + "#" +
                               std::to_string(f.gate.value())
                         : g.name;
  return base + (f.stuck_at_one ? "/sa1" : "/sa0");
}

FaultUniverse FaultUniverse::collapsed(const gates::Netlist& nl) {
  FaultUniverse u;
  for (gates::GateId id : nl.gate_ids()) {
    switch (nl.gate(id).kind) {
      case gates::GateKind::Output:  // equivalent to the driver stem
      case gates::GateKind::Buf:     // equivalent to the driver stem
      case gates::GateKind::Not:     // equivalent with flipped polarity
      case gates::GateKind::Const0:  // tied nets are untestable by definition
      case gates::GateKind::Const1:
        break;
      default:
        u.faults_.push_back({id, false});
        u.faults_.push_back({id, true});
    }
  }
  return u;
}

}  // namespace hlts::atpg
