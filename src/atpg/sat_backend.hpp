// SAT deterministic backend: CNF time-frame unrolling + CDCL.
//
// One TimeFrameCnf instance (gates/cnf.hpp) encodes the good-machine
// unrolling once; each generate() call adds the target fault's miter cone
// under a fresh activation literal, solves under that single assumption
// with the per-fault conflict budget, and retires the activation literal
// afterwards.  Learned clauses therefore persist across the whole fault
// list -- the assumption-based incremental idiom -- which is what makes
// per-fault SAT affordable on the benchmark netlists.
//
// Retiring a fault deactivates its detection clause but leaves the faulty
// cone's definition clauses in the database, so unit propagation would
// slow down linearly in the number of targets processed (quadratic over a
// run).  The backend therefore rebuilds the encoding from scratch whenever
// the clause count exceeds twice the good-machine baseline, bounding the
// garbage carried into any solve by one baseline's worth of clauses.  The
// trigger depends only on clause counts, so runs stay deterministic.
//
// Outcome mapping: Sat -> Detected with the model's extracted input
// sequence (confirmable by the fault simulator by construction of the
// dual-rail encoding); Unsat -> Untestable within the frame bound (the
// same bound the PODEM backend searches, but a complete proof rather than
// a search-exhaustion claim); Unknown (budget) -> Aborted.
#pragma once

#include <memory>

#include "atpg/backend.hpp"
#include "gates/cnf.hpp"

namespace hlts::atpg {

class SatBackend final : public DeterministicBackend {
 public:
  SatBackend(const gates::Netlist& nl, const BackendConfig& config);

  [[nodiscard]] const char* name() const override { return "sat"; }
  [[nodiscard]] BackendResult generate(const Fault& fault) override;
  [[nodiscard]] const BackendStats& stats() const override { return stats_; }

  /// The underlying encoding, for tests (literal numbering, DIMACS dump).
  [[nodiscard]] gates::TimeFrameCnf& cnf() { return *cnf_; }

 private:
  /// Replaces cnf_ with a fresh good-machine encoding once retired fault
  /// cones have doubled the clause count (see the header comment).
  void maybe_rebuild();

  const gates::Netlist& nl_;
  std::unique_ptr<gates::TimeFrameCnf> cnf_;
  std::int64_t conflict_budget_;
  std::string dump_dir_;
  int frames_;
  int reset_index_;
  std::size_t base_clauses_ = 0;   ///< clause count of the fault-free encoding
  std::uint64_t carried_conflicts_ = 0;  ///< stats from discarded solvers
  std::uint64_t carried_decisions_ = 0;
  std::uint64_t carried_propagations_ = 0;
  std::uint64_t carried_learned_ = 0;
  BackendStats stats_;
};

}  // namespace hlts::atpg
