#include "atpg/compact.hpp"

#include <algorithm>

namespace hlts::atpg {

CompactionResult compact_test_set(const gates::Netlist& nl,
                                  const std::vector<TestSequence>& sequences,
                                  const std::vector<Fault>& faults,
                                  int simd_width) {
  CompactionResult result;
  FaultSimulator fsim(nl, /*num_threads=*/0, simd_width);

  // Baseline coverage and length.
  std::vector<Fault> remaining = faults;
  for (const TestSequence& seq : sequences) {
    fsim.drop_detected(seq, remaining);
    result.cycles_before += static_cast<long>(seq.size());
  }
  result.faults_covered_before = faults.size() - remaining.size();

  // Reverse-order pass: keep a sequence only if it detects something not
  // yet covered by the sequences kept after it.
  remaining = faults;
  std::vector<std::size_t> kept_reversed;
  for (std::size_t i = sequences.size(); i-- > 0;) {
    const std::size_t dropped = fsim.drop_detected(sequences[i], remaining);
    if (dropped > 0) {
      kept_reversed.push_back(i);
      result.cycles_after += static_cast<long>(sequences[i].size());
    }
  }
  result.kept.assign(kept_reversed.rbegin(), kept_reversed.rend());

  // Confirm preserved coverage (the kept set re-simulated from scratch).
  remaining = faults;
  for (std::size_t i : result.kept) {
    fsim.drop_detected(sequences[i], remaining);
  }
  result.faults_covered_after = faults.size() - remaining.size();
  return result;
}

}  // namespace hlts::atpg
