#include "atpg/backend.hpp"

#include <algorithm>
#include <map>

#include "atpg/podem.hpp"
#include "atpg/sat_backend.hpp"
#include "util/error.hpp"

namespace hlts::atpg {

const char* backend_kind_name(BackendKind kind) {
  switch (kind) {
    case BackendKind::TimeFrame: return "timeframe";
    case BackendKind::Sat: return "sat";
  }
  return "?";
}

namespace {

/// The pre-seam deterministic path, verbatim: TimeFramePodem with a
/// per-fault backtrack budget.  Wrapping it keeps run_atpg's default mode
/// bit-identical to the monolithic orchestrator.
class TimeFrameBackend final : public DeterministicBackend {
 public:
  TimeFrameBackend(const gates::Netlist& nl, const BackendConfig& config)
      : podem_(nl, config.frames), backtrack_limit_(config.backtrack_limit) {}

  [[nodiscard]] const char* name() const override { return "timeframe"; }

  [[nodiscard]] BackendResult generate(const Fault& fault) override {
    const PodemResult pr = podem_.generate(fault, backtrack_limit_);
    BackendResult r;
    switch (pr.status) {
      case PodemStatus::Detected:
        r.status = BackendStatus::Detected;
        r.sequence = pr.sequence;
        break;
      case PodemStatus::Untestable:
        r.status = BackendStatus::Untestable;
        break;
      case PodemStatus::Aborted:
        r.status = BackendStatus::Aborted;
        break;
    }
    r.effort = pr.backtracks;
    ++stats_.targets;
    stats_.effort += static_cast<std::uint64_t>(pr.backtracks);
    if (r.status == BackendStatus::Detected) ++stats_.detected;
    if (r.status == BackendStatus::Untestable) ++stats_.untestable;
    if (r.status == BackendStatus::Aborted) ++stats_.aborted;
    return r;
  }

  [[nodiscard]] const BackendStats& stats() const override { return stats_; }

 private:
  TimeFramePodem podem_;
  int backtrack_limit_;
  BackendStats stats_;
};

using Registry = std::map<std::string, BackendFactory>;

Registry& registry() {
  static Registry r = [] {
    Registry init;
    init["timeframe"] = [](const gates::Netlist& nl,
                           const BackendConfig& config) {
      return std::unique_ptr<DeterministicBackend>(
          new TimeFrameBackend(nl, config));
    };
    init["sat"] = [](const gates::Netlist& nl, const BackendConfig& config) {
      return std::unique_ptr<DeterministicBackend>(
          new SatBackend(nl, config));
    };
    return init;
  }();
  return r;
}

}  // namespace

void register_backend(const std::string& name, BackendFactory factory) {
  HLTS_REQUIRE_INPUT(!name.empty(), "backend name must be non-empty");
  registry()[name] = std::move(factory);
}

std::vector<std::string> backend_names() {
  std::vector<std::string> names;
  names.reserve(registry().size());
  for (const auto& [name, factory] : registry()) names.push_back(name);
  return names;  // std::map iteration is already sorted
}

std::unique_ptr<DeterministicBackend> make_backend(const std::string& name,
                                                   const gates::Netlist& nl,
                                                   const BackendConfig& config) {
  const auto it = registry().find(name);
  HLTS_REQUIRE_INPUT(it != registry().end(),
                     "unknown ATPG backend '" + name + "'");
  HLTS_REQUIRE_INPUT(config.frames >= 1, "backend needs >= 1 time frames");
  return it->second(nl, config);
}

}  // namespace hlts::atpg
