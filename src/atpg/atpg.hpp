// ATPG orchestrator: random-phase test generation with fault dropping,
// followed by a pluggable deterministic backend for the stragglers.
//
// Mirrors the paper's assumption that "many ATPG's start by using random
// test generation to cover as many faults as possible and then switch to
// deterministic test generation."  Reports the quantities the paper's
// tables compare: fault coverage, test generation time, and test length in
// clock cycles ("test generated cycle").
//
// The deterministic phase runs behind the atpg::DeterministicBackend seam
// (backend.hpp).  AtpgOptions::backend selects the orchestration mode:
//
//   "timeframe" (default) -- random phase, then BackendKind::TimeFrame
//       (PODEM over the unrolled netlist).  Bit-identical to the
//       pre-backend-seam orchestrator for every option combination.
//   "sat"    -- no random phase; BackendKind::Sat (CNF + in-repo CDCL)
//       targets the *entire* collapsed universe deterministically.  The
//       pure-SAT reference mode: slowest, but classifies every targeted
//       fault as detected or proved-untestable unless the conflict budget
//       aborts it.
//   "hybrid" -- random phase, then BackendKind::Sat on the survivors, and
//       a time-frame (PODEM) retry for any target the SAT conflict budget
//       aborts.  The escalation order is cheapest-first: random vectors
//       cover the easy bulk, SAT resolves the hard tail completely within
//       the frame bound, and the PODEM rescue pass picks up faults whose
//       structural search is cheap but whose CNF happens to be hard for
//       the budgeted CDCL.  The hybrid target loop therefore resolves a
//       superset of what the timeframe mode resolves, which is what makes
//       its coverage dominate per benchmark.  An unconfirmed rescue
//       candidate counts as Aborted, so hybrid keeps the SAT path's
//       unconfirmed == 0 guarantee; a rescue Untestable verdict is a
//       search-exhaustion claim (PODEM-grade), not a proof.
//
// Every deterministic candidate sequence -- from either backend -- is
// validated by the sequential fault simulator before it counts: a fault is
// only ever classified "detected" off the simulator's detected-set, which
// keeps coverage accounting bit-identical across backends, packet widths
// and thread counts.  Untestable means proved untestable *within the frame
// bound* (no test of <= frames cycles from the X power-up state); the
// frame bound is the same for both backends, so the classifications are
// comparable fault by fault.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "atpg/backend.hpp"
#include "atpg/fault_sim.hpp"
#include "atpg/faults.hpp"

namespace hlts::atpg {

// Default effort budgets are deliberately modest, mirroring the bounded
// search of 1990s sequential ATPG: a short random warm-up, then a
// deterministic pass with a small per-fault allowance.  With saturating
// budgets every synthesizable design converges to its functional
// testability limit and the flows stop differentiating; with bounded
// budgets coverage and TG time reflect how *easy* the synthesis made each
// fault -- which is what the paper measures.
struct AtpgOptions {
  std::uint64_t seed = 1;
  /// Cycles per random sequence; 0 = two controller periods.
  int sequence_cycles = 0;
  /// Random sequences generated per round.
  int sequences_per_round = 2;
  /// Stop the random phase after this many consecutive rounds without a new
  /// detection.
  int max_idle_rounds = 1;
  int max_rounds = 3;
  /// Run the deterministic backend on the faults the random phase left.
  bool deterministic_phase = true;
  /// Time frames for the unrolled deterministic model; 0 = two periods.
  int podem_frames = 0;
  int podem_backtrack_limit = 64;
  /// At most this many deterministic targets per run (0 = unlimited); the
  /// 1998-style "give up" budget that keeps wide designs tractable.
  int podem_max_targets = 600;
  /// Apply reverse-order static compaction to the generated test set.
  bool compact = true;
  /// Fault-simulation packet width in lanes (64, 256 or 512); 0 resolves
  /// the HLTS_SIMD_WIDTH environment variable.  The detected fault sets --
  /// and hence every ATPG result -- are bit-identical at every width.
  int simd_width = 0;

  /// Orchestration mode: "timeframe", "sat" or "hybrid" (see the header
  /// comment for the escalation order).  Empty resolves the
  /// HLTS_ATPG_BACKEND environment knob and falls back to "timeframe".
  std::string backend;
  /// Time frames for the SAT backend's CNF unrolling; 0 resolves
  /// HLTS_SAT_FRAMES, then falls back to two controller periods (the same
  /// default depth as the PODEM unrolling, keeping proofs comparable).
  int sat_frames = 0;
  /// Per-fault CDCL conflict budget before the SAT backend aborts a
  /// target; 0 resolves HLTS_SAT_CONFLICT_BUDGET, then defaults to 20000.
  std::int64_t sat_conflict_budget = 0;
  /// When non-empty: dump each SAT target's CNF into this directory in
  /// DIMACS format with a comment-line var map (offline unsat/abort
  /// debugging; hlts_batch --dump-cnf).
  std::string dump_cnf_dir;
};

struct AtpgResult {
  std::size_t total_faults = 0;
  std::size_t detected_random = 0;
  std::size_t detected_deterministic = 0;
  std::size_t untestable_proved = 0;  ///< proved untestable in the frame bound
  std::size_t aborted = 0;    ///< deterministic targets abandoned on budget
  double fault_coverage = 0;  ///< detected / total
  /// (detected + untestable_proved) / total: credit for resolved faults.
  double fault_efficiency = 0;
  double tg_time_ms = 0;      ///< measured wall time of generation
  long test_cycles = 0;       ///< total cycles of the final (compacted) set
  long uncompacted_cycles = 0;  ///< total cycles before static compaction
  int num_sequences = 0;        ///< sequences in the final set
  std::string backend;          ///< resolved orchestration mode
  /// Deterministic-backend candidates the fault simulator did NOT confirm.
  /// Zero for the SAT backend by construction (the dual-rail encoding);
  /// a frame-bound artifact is possible for the PODEM backend.
  std::size_t unconfirmed = 0;
  BackendStats backend_stats;          ///< deterministic-phase counters
  std::vector<Fault> undetected;       ///< the faults no phase covered
  /// Final per-fault classifications, in universe order: targets the
  /// deterministic backend gave up on (and nothing later covered), and
  /// faults proved untestable (and never fortuitously detected).  The
  /// backend-equivalence tests compare these fault-by-fault across modes.
  std::vector<Fault> aborted_faults;
  std::vector<Fault> untestable_faults;
  std::vector<TestSequence> test_set;  ///< the final test sequences

  [[nodiscard]] std::size_t detected() const {
    return detected_random + detected_deterministic;
  }
};

/// Runs ATPG on a netlist.  `period` is the controller period in cycles
/// (steps + 1); it sizes random sequences and the deterministic unrolling
/// depth.
[[nodiscard]] AtpgResult run_atpg(const gates::Netlist& nl, int period,
                                  const AtpgOptions& options = {});

}  // namespace hlts::atpg
