// ATPG orchestrator: random-phase test generation with fault dropping,
// followed by deterministic time-frame PODEM for the stragglers.
//
// Mirrors the paper's assumption that "many ATPG's start by using random
// test generation to cover as many faults as possible and then switch to
// deterministic test generation."  Reports the three quantities the
// paper's tables compare: fault coverage, test generation time, and test
// length in clock cycles ("test generated cycle").
#pragma once

#include <cstdint>
#include <vector>

#include "atpg/fault_sim.hpp"
#include "atpg/faults.hpp"

namespace hlts::atpg {

// Default effort budgets are deliberately modest, mirroring the bounded
// search of 1990s sequential ATPG: a short random warm-up, then
// deterministic PODEM with a small backtrack allowance.  With saturating
// budgets every synthesizable design converges to its functional
// testability limit and the flows stop differentiating; with bounded
// budgets coverage and TG time reflect how *easy* the synthesis made each
// fault -- which is what the paper measures.
struct AtpgOptions {
  std::uint64_t seed = 1;
  /// Cycles per random sequence; 0 = two controller periods.
  int sequence_cycles = 0;
  /// Random sequences generated per round.
  int sequences_per_round = 2;
  /// Stop the random phase after this many consecutive rounds without a new
  /// detection.
  int max_idle_rounds = 1;
  int max_rounds = 3;
  /// Run deterministic PODEM on the faults the random phase left.
  bool deterministic_phase = true;
  /// Time frames for the unrolled deterministic model; 0 = two periods.
  int podem_frames = 0;
  int podem_backtrack_limit = 64;
  /// At most this many deterministic targets per run (0 = unlimited); the
  /// 1998-style "give up" budget that keeps wide designs tractable.
  int podem_max_targets = 600;
  /// Apply reverse-order static compaction to the generated test set.
  bool compact = true;
  /// Fault-simulation packet width in lanes (64, 256 or 512); 0 resolves
  /// the HLTS_SIMD_WIDTH environment variable.  The detected fault sets --
  /// and hence every ATPG result -- are bit-identical at every width.
  int simd_width = 0;
};

struct AtpgResult {
  std::size_t total_faults = 0;
  std::size_t detected_random = 0;
  std::size_t detected_deterministic = 0;
  std::size_t untestable_proved = 0;  ///< PODEM exhausted the search space
  double fault_coverage = 0;          ///< detected / total
  double tg_time_ms = 0;              ///< measured wall time of generation
  long test_cycles = 0;       ///< total cycles of the final (compacted) set
  long uncompacted_cycles = 0;  ///< total cycles before static compaction
  int num_sequences = 0;        ///< sequences in the final set
  std::vector<Fault> undetected;       ///< the faults no phase covered
  std::vector<TestSequence> test_set;  ///< the final test sequences

  [[nodiscard]] std::size_t detected() const {
    return detected_random + detected_deterministic;
  }
};

/// Runs ATPG on a netlist.  `period` is the controller period in cycles
/// (steps + 1); it sizes random sequences and the PODEM unrolling depth.
[[nodiscard]] AtpgResult run_atpg(const gates::Netlist& nl, int period,
                                  const AtpgOptions& options = {});

}  // namespace hlts::atpg
