// Single-stuck-at fault model with structural equivalence collapsing.
//
// "The testability definition assumes that a stuck-at fault model is used
// and ATPG is random and/or deterministic" (paper §2).  The fault universe
// is the collapsed set of stem (gate-output) faults: faults on buffers,
// inverters and output pads are equivalent (modulo polarity) to faults on
// their driver stems and are dropped.
//
// FaultUniverse::is_fault_site is the single collapse predicate: the
// universe builder, both deterministic backends, and the coverage
// accounting all consult it, so they agree on the fault set by
// construction instead of by parallel copies of the kind switch.
//
// FaultLedger carries the per-fault classification the orchestrator
// accumulates across phases (random drops, deterministic detections,
// untestability proofs, budget aborts); AtpgResult's coverage and
// efficiency numbers are derived from its counts, which makes the
// detected-set accounting identical for every backend by construction.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gates/netlist.hpp"

namespace hlts::atpg {

struct Fault {
  gates::GateId gate;
  bool stuck_at_one = false;

  friend bool operator==(const Fault&, const Fault&) = default;
};

[[nodiscard]] std::string fault_name(const gates::Netlist& nl, const Fault& f);

class FaultUniverse {
 public:
  /// The one collapse rule: true when stuck-at faults on `id`'s output are
  /// part of the collapsed universe (Output/Buf/Not collapse onto their
  /// driver stems, tied constants are untestable by definition).
  [[nodiscard]] static bool is_fault_site(const gates::Netlist& nl,
                                          gates::GateId id);

  /// Collapsed stem-fault universe of a netlist.
  [[nodiscard]] static FaultUniverse collapsed(const gates::Netlist& nl);

  [[nodiscard]] const std::vector<Fault>& faults() const { return faults_; }
  [[nodiscard]] std::size_t size() const { return faults_.size(); }

 private:
  std::vector<Fault> faults_;
};

/// What happened to a fault over the whole ATPG run.
enum class FaultStatus : std::uint8_t {
  Undetected,             ///< no phase covered it, nothing proved
  DetectedRandom,         ///< dropped by a random-phase sequence
  DetectedDeterministic,  ///< dropped by a deterministic-phase sequence
  Untestable,             ///< proved untestable within the frame bound
  Aborted,                ///< a deterministic backend gave up on budget
};

/// Per-fault status book-keeping over a FaultUniverse.  Faults are keyed
/// by (gate, polarity); marking follows a promotion rule -- a fault
/// already Detected* keeps its first detection; Aborted and Untestable
/// may later be promoted to Detected* (the sequential fault simulator is
/// the referee, and the PODEM backend's untestable claims come from an
/// unrolled model the simulator can contradict).
class FaultLedger {
 public:
  explicit FaultLedger(const gates::Netlist& nl, const FaultUniverse& u);

  void mark(const Fault& f, FaultStatus status);
  [[nodiscard]] FaultStatus status(const Fault& f) const;

  [[nodiscard]] std::size_t count(FaultStatus status) const;
  [[nodiscard]] std::size_t detected() const {
    return count(FaultStatus::DetectedRandom) +
           count(FaultStatus::DetectedDeterministic);
  }
  /// The faults still Undetected or Aborted, in universe order.
  [[nodiscard]] std::vector<Fault> unresolved() const;

 private:
  [[nodiscard]] std::size_t key(const Fault& f) const;

  const FaultUniverse& universe_;
  std::vector<std::uint8_t> status_;  ///< indexed 2*gate + polarity
  std::size_t counts_[5] = {0, 0, 0, 0, 0};
};

}  // namespace hlts::atpg
