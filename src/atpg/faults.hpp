// Single-stuck-at fault model with structural equivalence collapsing.
//
// "The testability definition assumes that a stuck-at fault model is used
// and ATPG is random and/or deterministic" (paper §2).  The fault universe
// is the collapsed set of stem (gate-output) faults: faults on buffers,
// inverters and output pads are equivalent (modulo polarity) to faults on
// their driver stems and are dropped.
#pragma once

#include <string>
#include <vector>

#include "gates/netlist.hpp"

namespace hlts::atpg {

struct Fault {
  gates::GateId gate;
  bool stuck_at_one = false;

  friend bool operator==(const Fault&, const Fault&) = default;
};

[[nodiscard]] std::string fault_name(const gates::Netlist& nl, const Fault& f);

class FaultUniverse {
 public:
  /// Collapsed stem-fault universe of a netlist.
  [[nodiscard]] static FaultUniverse collapsed(const gates::Netlist& nl);

  [[nodiscard]] const std::vector<Fault>& faults() const { return faults_; }
  [[nodiscard]] std::size_t size() const { return faults_.size(); }

 private:
  std::vector<Fault> faults_;
};

}  // namespace hlts::atpg
