#include "atpg/podem.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <deque>

#include "util/error.hpp"
#include "util/knobs.hpp"
#include "util/rng.hpp"

namespace hlts::atpg {

using gates::GateId;
using gates::GateKind;

namespace {

constexpr std::uint8_t V0 = 0;
constexpr std::uint8_t V1 = 1;
constexpr std::uint8_t VX = 2;

std::uint8_t not3(std::uint8_t a) { return a == VX ? VX : (a ^ 1); }

std::uint8_t and3(std::uint8_t a, std::uint8_t b) {
  if (a == V0 || b == V0) return V0;
  if (a == V1 && b == V1) return V1;
  return VX;
}

std::uint8_t or3(std::uint8_t a, std::uint8_t b) {
  if (a == V1 || b == V1) return V1;
  if (a == V0 && b == V0) return V0;
  return VX;
}

std::uint8_t xor3(std::uint8_t a, std::uint8_t b) {
  if (a == VX || b == VX) return VX;
  return a ^ b;
}

std::uint8_t mux3(std::uint8_t s, std::uint8_t a, std::uint8_t b) {
  if (s == V0) return a;
  if (s == V1) return b;
  // Select unknown: output known only if both data inputs agree.
  if (a != VX && a == b) return a;
  return VX;
}

}  // namespace

/// All PODEM state lives here; rebuilt per TimeFramePodem instance and
/// reused (reset) across target faults.
class TimeFramePodem::Impl {
 public:
  Impl(const gates::Netlist& nl, int frames, int reset_index,
       std::uint64_t seed)
      : nl_(nl), frames_(frames), reset_index_(reset_index), rng_(seed) {
    const std::size_t n = total_nodes();
    good_.assign(n, VX);
    faulty_.assign(n, VX);
    compute_justifiable();
  }

  PodemResult run(const Fault& fault, int backtrack_limit);

  bool run_sequence_check(const Fault& fault, const TestSequence& sequence) {
    fault_ = fault;
    compute_cone();
    trail_.clear();
    std::fill(good_.begin(), good_.end(), VX);
    std::fill(faulty_.begin(), faulty_.end(), VX);
    for (int frame = 0; frame < frames_; ++frame) {
      if (frame >= static_cast<int>(sequence.size())) break;
      for (std::size_t i = 0; i < nl_.inputs().size(); ++i) {
        const std::size_t n = node(frame, nl_.inputs()[i]);
        const std::uint8_t v = sequence[frame][i] ? V1 : V0;
        good_[n] = v;
        faulty_[n] =
            nl_.inputs()[i] == fault_.gate ? (fault_.stuck_at_one ? V1 : V0) : v;
      }
    }
    imply_all();
    return detected();
  }

 private:
  std::size_t total_nodes() const { return nl_.num_gates() * frames_; }
  std::size_t node(int frame, GateId g) const {
    return static_cast<std::size_t>(frame) * nl_.num_gates() + g.index();
  }
  int frame_of(std::size_t n) const {
    return static_cast<int>(n / nl_.num_gates());
  }
  GateId gate_of(std::size_t n) const {
    return GateId{static_cast<std::uint32_t>(n % nl_.num_gates())};
  }

  void set_value(std::size_t n, std::uint8_t g, std::uint8_t f) {
    if (good_[n] == g && faulty_[n] == f) return;
    trail_.push_back({n, good_[n], faulty_[n]});
    good_[n] = g;
    faulty_[n] = f;
  }

  /// Computes the value of a node from its inputs; applies the fault mask.
  std::pair<std::uint8_t, std::uint8_t> eval(std::size_t n) const;

  /// Event-driven forward implication starting at `n`.
  void propagate_from(std::size_t n);

  /// Full forward implication (used once per fault for the initial state).
  void imply_all();

  void undo_to(std::size_t mark) {
    while (trail_.size() > mark) {
      const Change& c = trail_.back();
      good_[c.node] = c.good;
      faulty_[c.node] = c.faulty;
      trail_.pop_back();
    }
  }

  [[nodiscard]] bool detected() const;
  [[nodiscard]] bool excited() const;
  /// First frame where the fault site's good value is still X; -1 if none.
  [[nodiscard]] int excitable_frame() const;
  /// D-frontier: nodes with a D on some input and X on the output.
  [[nodiscard]] std::vector<std::size_t> d_frontier() const;
  /// True if some D-frontier gate reaches a PO through X-valued nodes.
  [[nodiscard]] bool x_path_exists(const std::vector<std::size_t>& frontier) const;

  struct Objective {
    std::size_t node = 0;
    std::uint8_t value = VX;
    bool valid = false;
  };
  /// All candidate objectives, best-first: excitation objectives per frame
  /// while the fault is unexcited, otherwise one propagation objective per
  /// D-frontier gate.
  [[nodiscard]] std::vector<Objective> objectives() const;
  /// Walks from an objective to an assignable PI; invalid if stuck.
  [[nodiscard]] Objective backtrace(Objective obj);

  /// Static analysis: an unrolled node is justifiable when an assignable
  /// primary input lies in its transitive fan-in.  Power-up X values
  /// (frame-0 DFFs) are not justifiable; backtracing into such a cone can
  /// never reach a decision variable.
  void compute_justifiable();

  [[nodiscard]] bool is_assignable_pi(std::size_t n) const {
    const gates::Gate& g = nl_.gate(gate_of(n));
    if (g.kind != GateKind::Input) return false;
    // The reset input is forced (1 in frame 0, 0 after).
    if (reset_index_ >= 0 &&
        gate_of(n) == nl_.inputs()[static_cast<std::size_t>(reset_index_)]) {
      return false;
    }
    return true;
  }

  TestSequence extract_sequence() const;

  /// Static forward cone of the fault across all frames: the only nodes
  /// where good and faulty values can ever differ.  Restricting the
  /// D-frontier / detection / X-path scans to it is the key PODEM speedup
  /// (the cone is typically a small fraction of the unrolled model).
  void compute_cone();

  struct Change {
    std::size_t node;
    std::uint8_t good, faulty;
  };

  const gates::Netlist& nl_;
  int frames_;
  int reset_index_;
  Rng rng_;
  Fault fault_{};
  std::vector<std::uint8_t> good_, faulty_;
  std::vector<bool> justifiable_;
  std::vector<std::size_t> cone_;       // sorted node ids in the fault cone
  std::vector<std::size_t> cone_outputs_;  // PO nodes within the cone
  std::vector<Change> trail_;
};

void TimeFramePodem::Impl::compute_cone() {
  cone_.clear();
  cone_outputs_.clear();
  std::vector<bool> in_cone(total_nodes(), false);
  std::vector<std::size_t> queue;
  for (int frame = 0; frame < frames_; ++frame) {
    const std::size_t n = node(frame, fault_.gate);
    if (!in_cone[n]) {
      in_cone[n] = true;
      queue.push_back(n);
    }
  }
  for (std::size_t i = 0; i < queue.size(); ++i) {
    const std::size_t n = queue[i];
    const int frame = frame_of(n);
    const gates::Gate& g = nl_.gate(gate_of(n));
    for (GateId fo : g.fanouts) {
      const bool crosses = nl_.gate(fo).kind == GateKind::Dff;
      const int tf = frame + (crosses ? 1 : 0);
      if (tf >= frames_) continue;
      const std::size_t t = node(tf, fo);
      if (!in_cone[t]) {
        in_cone[t] = true;
        queue.push_back(t);
      }
    }
  }
  cone_ = std::move(queue);
  std::sort(cone_.begin(), cone_.end());
  for (std::size_t n : cone_) {
    if (nl_.gate(gate_of(n)).kind == GateKind::Output) {
      cone_outputs_.push_back(n);
    }
  }
}

void TimeFramePodem::Impl::compute_justifiable() {
  justifiable_.assign(total_nodes(), false);
  for (int frame = 0; frame < frames_; ++frame) {
    for (GateId g : nl_.gate_ids()) {
      const gates::Gate& gate = nl_.gate(g);
      const std::size_t n = node(frame, g);
      switch (gate.kind) {
        case GateKind::Input:
          justifiable_[n] = is_assignable_pi(n);
          break;
        case GateKind::Const0:
        case GateKind::Const1:
          break;
        case GateKind::Dff:
          justifiable_[n] =
              frame > 0 && justifiable_[node(frame - 1, gate.inputs[0])];
          break;
        default:
          break;  // combinational: below, in levelized order
      }
    }
    for (GateId g : nl_.levelized()) {
      const gates::Gate& gate = nl_.gate(g);
      const std::size_t n = node(frame, g);
      for (GateId in : gate.inputs) {
        if (justifiable_[node(frame, in)]) {
          justifiable_[n] = true;
          break;
        }
      }
    }
  }
}

std::pair<std::uint8_t, std::uint8_t> TimeFramePodem::Impl::eval(
    std::size_t n) const {
  const int frame = frame_of(n);
  const GateId gid = gate_of(n);
  const gates::Gate& g = nl_.gate(gid);
  std::uint8_t gv = VX;
  std::uint8_t fv = VX;
  auto in = [&](std::size_t i) { return node(frame, g.inputs[i]); };

  switch (g.kind) {
    case GateKind::Input:
      // Assigned externally; keep the current value.
      gv = good_[n];
      fv = faulty_[n];
      break;
    case GateKind::Const0:
      gv = fv = V0;
      break;
    case GateKind::Const1:
      gv = fv = V1;
      break;
    case GateKind::Dff:
      if (frame == 0) {
        gv = fv = VX;  // power-up state is unknown
      } else {
        const std::size_t src = node(frame - 1, g.inputs[0]);
        gv = good_[src];
        fv = faulty_[src];
      }
      break;
    case GateKind::Buf:
    case GateKind::Output:
      gv = good_[in(0)];
      fv = faulty_[in(0)];
      break;
    case GateKind::Not:
      gv = not3(good_[in(0)]);
      fv = not3(faulty_[in(0)]);
      break;
    case GateKind::And:
    case GateKind::Nand: {
      gv = V1;
      fv = V1;
      for (std::size_t i = 0; i < g.inputs.size(); ++i) {
        gv = and3(gv, good_[in(i)]);
        fv = and3(fv, faulty_[in(i)]);
      }
      if (g.kind == GateKind::Nand) {
        gv = not3(gv);
        fv = not3(fv);
      }
      break;
    }
    case GateKind::Or:
    case GateKind::Nor: {
      gv = V0;
      fv = V0;
      for (std::size_t i = 0; i < g.inputs.size(); ++i) {
        gv = or3(gv, good_[in(i)]);
        fv = or3(fv, faulty_[in(i)]);
      }
      if (g.kind == GateKind::Nor) {
        gv = not3(gv);
        fv = not3(fv);
      }
      break;
    }
    case GateKind::Xor:
      gv = xor3(good_[in(0)], good_[in(1)]);
      fv = xor3(faulty_[in(0)], faulty_[in(1)]);
      break;
    case GateKind::Xnor:
      gv = not3(xor3(good_[in(0)], good_[in(1)]));
      fv = not3(xor3(faulty_[in(0)], faulty_[in(1)]));
      break;
    case GateKind::Mux:
      gv = mux3(good_[in(0)], good_[in(1)], good_[in(2)]);
      fv = mux3(faulty_[in(0)], faulty_[in(1)], faulty_[in(2)]);
      break;
  }
  if (gid == fault_.gate) {
    fv = fault_.stuck_at_one ? V1 : V0;
  }
  return {gv, fv};
}

void TimeFramePodem::Impl::propagate_from(std::size_t start) {
  std::deque<std::size_t> queue{start};
  while (!queue.empty()) {
    const std::size_t n = queue.front();
    queue.pop_front();
    const int frame = frame_of(n);
    const gates::Gate& g = nl_.gate(gate_of(n));
    for (GateId fo : g.fanouts) {
      const bool crosses = nl_.gate(fo).kind == GateKind::Dff;
      const int target_frame = frame + (crosses ? 1 : 0);
      if (target_frame >= frames_) continue;
      const std::size_t t = node(target_frame, fo);
      auto [gv, fv] = eval(t);
      if (gv != good_[t] || fv != faulty_[t]) {
        set_value(t, gv, fv);
        queue.push_back(t);
      }
    }
  }
}

void TimeFramePodem::Impl::imply_all() {
  for (int frame = 0; frame < frames_; ++frame) {
    // Sources first (DFFs read the previous frame), then levelized comb.
    for (GateId g : nl_.gate_ids()) {
      const GateKind kind = nl_.gate(g).kind;
      if (kind == GateKind::Const0 || kind == GateKind::Const1 ||
          kind == GateKind::Dff || kind == GateKind::Input) {
        const std::size_t n = node(frame, g);
        auto [gv, fv] = eval(n);
        set_value(n, gv, fv);
      }
    }
    for (GateId g : nl_.levelized()) {
      const std::size_t n = node(frame, g);
      auto [gv, fv] = eval(n);
      set_value(n, gv, fv);
    }
  }
}

bool TimeFramePodem::Impl::detected() const {
  for (std::size_t n : cone_outputs_) {
    if (good_[n] != VX && faulty_[n] != VX && good_[n] != faulty_[n]) {
      return true;
    }
  }
  return false;
}

bool TimeFramePodem::Impl::excited() const {
  for (int frame = 0; frame < frames_; ++frame) {
    const std::size_t n = node(frame, fault_.gate);
    if (good_[n] != VX && good_[n] != faulty_[n]) return true;
  }
  return false;
}

int TimeFramePodem::Impl::excitable_frame() const {
  for (int frame = 0; frame < frames_; ++frame) {
    if (good_[node(frame, fault_.gate)] == VX) return frame;
  }
  return -1;
}

std::vector<std::size_t> TimeFramePodem::Impl::d_frontier() const {
  // Only nodes in the fault's forward cone can carry a D.
  std::vector<std::size_t> frontier;
  for (std::size_t n : cone_) {
    const gates::Gate& gate = nl_.gate(gate_of(n));
    if (gate.inputs.empty()) continue;
    // Unresolved output: at least one machine still X (covers the
    // composite 1/X and 0/X cases, where fixing a side input can still
    // turn the output into a definite D).
    if (good_[n] != VX && faulty_[n] != VX) continue;
    // An input carries a D when both values are binary and differ.  DFFs
    // read the previous frame.
    const int frame = frame_of(n);
    const int in_frame = gate.kind == GateKind::Dff ? frame - 1 : frame;
    if (in_frame < 0) continue;
    for (GateId in : gate.inputs) {
      const std::size_t m = node(in_frame, in);
      if (good_[m] != VX && faulty_[m] != VX && good_[m] != faulty_[m]) {
        frontier.push_back(n);
        break;
      }
    }
  }
  return frontier;
}

bool TimeFramePodem::Impl::x_path_exists(
    const std::vector<std::size_t>& frontier) const {
  // DFS through X-valued nodes (on either machine) toward any PO.
  std::vector<bool> visited(total_nodes(), false);
  std::vector<std::size_t> stack(frontier);
  for (std::size_t n : stack) visited[n] = true;
  while (!stack.empty()) {
    const std::size_t n = stack.back();
    stack.pop_back();
    const gates::Gate& g = nl_.gate(gate_of(n));
    if (g.kind == GateKind::Output) return true;
    const int frame = frame_of(n);
    for (GateId fo : g.fanouts) {
      const bool crosses = nl_.gate(fo).kind == GateKind::Dff;
      const int tf = frame + (crosses ? 1 : 0);
      if (tf >= frames_) continue;
      const std::size_t t = node(tf, fo);
      if (visited[t]) continue;
      if (good_[t] != VX && faulty_[t] != VX && good_[t] == faulty_[t]) {
        continue;  // fully determined and fault-free: no path through here
      }
      visited[t] = true;
      stack.push_back(t);
    }
  }
  return false;
}

std::vector<TimeFramePodem::Impl::Objective>
TimeFramePodem::Impl::objectives() const {
  std::vector<Objective> out;
  // Propagation objectives: drive each D-frontier gate's X side inputs to
  // non-controlling values.
  for (std::size_t n : d_frontier()) {
    const gates::Gate& g = nl_.gate(gate_of(n));
    const int frame = frame_of(n);
    const int in_frame = g.kind == GateKind::Dff ? frame - 1 : frame;
    auto add = [&](std::size_t m, std::uint8_t v) {
      if (good_[m] != VX || !justifiable_[m]) return;
      Objective obj;
      obj.node = m;
      obj.value = v;
      obj.valid = true;
      out.push_back(obj);
    };
    switch (g.kind) {
      case GateKind::And:
      case GateKind::Nand:
        for (GateId in : g.inputs) add(node(in_frame, in), V1);
        break;
      case GateKind::Or:
      case GateKind::Nor:
      case GateKind::Xor:
      case GateKind::Xnor:
        for (GateId in : g.inputs) add(node(in_frame, in), V0);
        break;
      case GateKind::Mux: {
        const std::size_t sel = node(in_frame, g.inputs[0]);
        const std::size_t a = node(in_frame, g.inputs[1]);
        const std::size_t b = node(in_frame, g.inputs[2]);
        auto is_d = [&](std::size_t m) {
          return good_[m] != VX && faulty_[m] != VX && good_[m] != faulty_[m];
        };
        if (good_[sel] == VX) {
          add(sel, is_d(b) ? V1 : V0);
        } else {
          // Select is known; make the chosen data leg non-X.
          const std::size_t chosen = good_[sel] == V1 ? b : a;
          add(chosen, V1);
          add(chosen, V0);
        }
        break;
      }
      default:
        for (GateId in : g.inputs) add(node(in_frame, in), V1);
        break;
    }
  }
  // Excitation objectives: frames where the fault site's good value is
  // still open.  Appended even when a D-frontier exists -- a D stuck at an
  // unpropagatable spot must not block exciting the fault in a frame from
  // which it *can* reach an output.
  for (int frame = 0; frame < frames_; ++frame) {
    const std::size_t n = node(frame, fault_.gate);
    if (good_[n] != VX || !justifiable_[n]) continue;
    Objective obj;
    obj.node = n;
    obj.value = fault_.stuck_at_one ? V0 : V1;
    obj.valid = true;
    out.push_back(obj);
  }
  return out;
}

TimeFramePodem::Impl::Objective TimeFramePodem::Impl::backtrace(
    Objective obj) {
  int guard = static_cast<int>(total_nodes()) + 8;
  while (obj.valid && guard-- > 0) {
    const GateId gid = gate_of(obj.node);
    const gates::Gate& g = nl_.gate(gid);
    const int frame = frame_of(obj.node);
    if (g.kind == GateKind::Input) {
      if (!is_assignable_pi(obj.node)) {
        obj.valid = false;
      }
      return obj;
    }
    const int in_frame = g.kind == GateKind::Dff ? frame - 1 : frame;
    if (in_frame < 0 || g.inputs.empty()) {
      obj.valid = false;
      return obj;
    }
    // Inversion parity.
    switch (g.kind) {
      case GateKind::Not:
      case GateKind::Nand:
      case GateKind::Nor:
        obj.value = not3(obj.value);
        break;
      default:
        break;
    }
    // Follow an X-valued input whose cone contains an assignable primary
    // input; X values coming only from the unknown power-up state can
    // never be justified.  The choice among eligible inputs is randomized:
    // together with restarts this diversifies the search tree, the
    // standard remedy for PODEM's myopic backtrace on sequential models.
    std::vector<std::size_t> eligible;
    for (GateId in : g.inputs) {
      const std::size_t m = node(in_frame, in);
      if (good_[m] == VX && justifiable_[m]) eligible.push_back(m);
    }
    if (eligible.empty()) {
      obj.valid = false;
      return obj;
    }
    obj.node = eligible.size() == 1
                   ? eligible[0]
                   : eligible[rng_.next_below(eligible.size())];
  }
  if (guard <= 0) obj.valid = false;
  return obj;
}

TestSequence TimeFramePodem::Impl::extract_sequence() const {
  TestSequence seq;
  for (int frame = 0; frame < frames_; ++frame) {
    TestVector v(nl_.inputs().size(), false);
    for (std::size_t i = 0; i < nl_.inputs().size(); ++i) {
      if (reset_index_ >= 0 && static_cast<int>(i) == reset_index_) {
        v[i] = (frame == 0);
        continue;
      }
      const std::size_t n = node(frame, nl_.inputs()[i]);
      v[i] = good_[n] == V1;
    }
    seq.push_back(std::move(v));
  }
  return seq;
}

PodemResult TimeFramePodem::Impl::run(const Fault& fault, int backtrack_limit) {
  PodemResult result;
  fault_ = fault;
  compute_cone();
  trail_.clear();
  std::fill(good_.begin(), good_.end(), VX);
  std::fill(faulty_.begin(), faulty_.end(), VX);

  // Forced values: reset high in frame 0, low afterwards.
  if (reset_index_ >= 0) {
    const GateId rst = nl_.inputs()[static_cast<std::size_t>(reset_index_)];
    for (int frame = 0; frame < frames_; ++frame) {
      const std::size_t n = node(frame, rst);
      const std::uint8_t v = frame == 0 ? V1 : V0;
      good_[n] = v;
      faulty_[n] = v;
    }
  }
  imply_all();
  trail_.clear();  // the base state is permanent

  struct Decision {
    std::size_t pi;
    std::uint8_t value;
    bool flipped;
    std::size_t mark;
  };
  std::vector<Decision> stack;

  const auto assign = [&](std::size_t pi, std::uint8_t v) {
    set_value(pi, v, gate_of(pi) == fault_.gate
                         ? (fault_.stuck_at_one ? V1 : V0)
                         : v);
    propagate_from(pi);
  };

  const bool debug =
      util::knobs::read_flag("HLTS_PODEM_DEBUG").value_or(false);
  while (true) {
    if (detected()) {
      result.status = PodemStatus::Detected;
      result.sequence = extract_sequence();
      return result;
    }

    // The search is alive while either an existing D can still reach an
    // output (live frontier) or the fault can still be excited in a frame
    // whose site value is open.  A dead D in one frame must not end the
    // search: excitation in another frame may propagate.
    const auto frontier = d_frontier();
    const bool frontier_alive = !frontier.empty() && x_path_exists(frontier);
    const bool excitable = excitable_frame() >= 0;
    bool dead = !frontier_alive && !excitable;
    if (debug) {
      std::fprintf(stderr,
                   "[podem] frontier=%zu alive=%d excitable=%d stack=%zu bt=%d\n",
                   frontier.size(), frontier_alive ? 1 : 0, excitable ? 1 : 0,
                   stack.size(), result.backtracks);
    }

    Objective target;
    if (!dead) {
      // Try every candidate objective until one backtraces to an
      // assignable primary input.
      target.valid = false;
      for (const Objective& cand : objectives()) {
        Objective traced = backtrace(cand);
        if (traced.valid) {
          target = traced;
          break;
        }
      }
      if (!target.valid) dead = true;
    }

    if (dead) {
      // Dead before any decision: the initial implication alone shows the
      // fault cannot be excited or propagated within the frame bound --
      // a sound (bounded) untestability claim.  Exhaustion after decisions
      // is NOT a proof here (the randomized backtrace explores one tree of
      // many), so it reports Aborted and the caller may restart.
      if (stack.empty() && result.backtracks == 0) {
        result.status = PodemStatus::Untestable;
        return result;
      }
      // Backtrack.
      while (!stack.empty() && stack.back().flipped) {
        undo_to(stack.back().mark);
        stack.pop_back();
      }
      if (stack.empty()) {
        result.status = PodemStatus::Aborted;
        return result;
      }
      if (++result.backtracks > backtrack_limit) {
        result.status = PodemStatus::Aborted;
        return result;
      }
      Decision& d = stack.back();
      undo_to(d.mark);
      d.value = d.value == V1 ? V0 : V1;
      d.flipped = true;
      assign(d.pi, d.value);
      continue;
    }

    Decision d;
    d.pi = target.node;
    d.value = target.value;
    d.flipped = false;
    d.mark = trail_.size();
    stack.push_back(d);
    assign(d.pi, d.value);
  }
}

TimeFramePodem::TimeFramePodem(const gates::Netlist& nl, int frames)
    : nl_(nl), frames_(frames) {
  HLTS_REQUIRE(frames >= 1, "PODEM needs at least one frame");
  for (std::size_t i = 0; i < nl.inputs().size(); ++i) {
    if (nl.gate(nl.inputs()[i]).name == "reset") {
      reset_index_ = static_cast<int>(i);
    }
  }
}

PodemResult TimeFramePodem::generate(const Fault& fault, int backtrack_limit) {
  // Restarts with different backtrace randomization; the per-call budget is
  // split across attempts.
  constexpr int kRestarts = 3;
  const int per_attempt = std::max(1, backtrack_limit / kRestarts);
  PodemResult last;
  int total_backtracks = 0;
  for (int attempt = 0; attempt < kRestarts; ++attempt) {
    const std::uint64_t seed =
        (0x9E3779B97F4A7C15ULL * static_cast<std::uint64_t>(attempt + 1)) ^
        (static_cast<std::uint64_t>(fault.gate.value()) * 2 +
         (fault.stuck_at_one ? 1 : 0));
    Impl impl(nl_, frames_, reset_index_, seed);
    last = impl.run(fault, per_attempt);
    total_backtracks += last.backtracks;
    if (last.status == PodemStatus::Detected ||
        last.status == PodemStatus::Untestable) {
      break;
    }
  }
  last.backtracks = total_backtracks;
  return last;
}

bool TimeFramePodem::check_sequence(const Fault& fault,
                                    const TestSequence& sequence) {
  Impl impl(nl_, frames_, reset_index_, /*seed=*/1);
  return impl.run_sequence_check(fault, sequence);
}

}  // namespace hlts::atpg
