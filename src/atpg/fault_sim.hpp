// Sequential fault simulation with fault dropping.
//
// Faults are simulated in batches sized by the simulator's packet width:
// a packet of 64*W lanes carries 64*W - 1 faults per batch (lane 0 is the
// good machine), so the supported widths 64 / 256 / 512 give batch
// capacities of 63 / 255 / 511 faults.  Wider packets amortize the
// per-gate traversal cost (gate fetch, kind dispatch, levelized walk)
// over more fault lanes and autovectorize; the detected fault set is
// bit-identical at every width, thread count, and batch partition,
// because each lane is evaluated independently and detected indices are
// emitted in ascending order.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "atpg/wide_sim.hpp"
#include "util/thread_pool.hpp"

namespace hlts::atpg {

/// Resolves a requested packet width in lanes to one of the supported
/// values {64, 256, 512}.  0 consults the HLTS_SIMD_WIDTH environment
/// variable and falls back to 256 when it is absent or invalid; any other
/// value must already be one of the supported widths.
[[nodiscard]] int resolve_simd_width(int requested);

class FaultSimulator {
 public:
  /// `num_threads` is the concurrency of detected_by's batch fan-out:
  /// 0 means util::ThreadPool::default_threads() (HLTS_THREADS, else
  /// hardware_concurrency), 1 forces the serial path.  `simd_width` is the
  /// packet width in lanes (see resolve_simd_width).  Results are
  /// identical for every combination -- batches are independent and
  /// detected indices are concatenated in batch order.
  explicit FaultSimulator(const gates::Netlist& nl, int num_threads = 0,
                          int simd_width = 0);

  /// Simulates `sequence` (from power-up/reset) against `faults`, one
  /// packet-width batch at a time, and returns the indices (into `faults`)
  /// of detected faults, ascending.
  [[nodiscard]] std::vector<std::size_t> detected_by(
      const TestSequence& sequence, const std::vector<Fault>& faults);

  /// Convenience: runs `sequence`, erases detected faults from `faults`
  /// in place, and returns how many were dropped.  When `dropped` is
  /// non-null the erased faults are appended to it (in ascending-index
  /// order), so callers keeping per-fault ledgers can attribute the drops.
  std::size_t drop_detected(const TestSequence& sequence,
                            std::vector<Fault>& faults,
                            std::vector<Fault>* dropped = nullptr);

  /// The resolved packet width in lanes (64, 256 or 512).
  [[nodiscard]] int simd_width() const { return width_; }
  /// Cumulative gate-lane evaluations across all detected_by calls,
  /// including the parallel path's per-batch simulators; feeds the
  /// Mgate-lane-evals/s throughput metric in the benches.
  [[nodiscard]] std::uint64_t gate_lane_evals() const { return lane_evals_; }

 private:
  template <int W>
  [[nodiscard]] std::vector<std::size_t> detect(WideSimulator<W>& persistent,
                                                const TestSequence& sequence,
                                                const std::vector<Fault>& faults);

  const gates::Netlist& nl_;
  int width_;
  /// Exactly one of these is non-null, matching width_; the persistent
  /// instance serves the serial path (the parallel path builds a private
  /// simulator per batch).
  std::unique_ptr<WideSimulator<1>> sim64_;
  std::unique_ptr<WideSimulator<4>> sim256_;
  std::unique_ptr<WideSimulator<8>> sim512_;
  /// Present only when num_threads resolved to > 1.
  std::unique_ptr<util::ThreadPool> pool_;
  std::uint64_t lane_evals_ = 0;
};

}  // namespace hlts::atpg
