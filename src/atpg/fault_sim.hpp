// Sequential fault simulation with fault dropping.
#pragma once

#include <cstddef>
#include <vector>

#include "atpg/simulator.hpp"

namespace hlts::atpg {

class FaultSimulator {
 public:
  explicit FaultSimulator(const gates::Netlist& nl) : sim_(nl) {}

  /// Simulates `sequence` (from power-up/reset) against `faults`, 63 at a
  /// time, and returns the indices (into `faults`) of detected faults.
  [[nodiscard]] std::vector<std::size_t> detected_by(
      const TestSequence& sequence, const std::vector<Fault>& faults);

  /// Convenience: runs `sequence`, erases detected faults from `faults`
  /// in place, and returns how many were dropped.
  std::size_t drop_detected(const TestSequence& sequence,
                            std::vector<Fault>& faults);

 private:
  ParallelSimulator sim_;
};

}  // namespace hlts::atpg
