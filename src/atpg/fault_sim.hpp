// Sequential fault simulation with fault dropping.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "atpg/simulator.hpp"
#include "util/thread_pool.hpp"

namespace hlts::atpg {

class FaultSimulator {
 public:
  /// `num_threads` is the concurrency of detected_by's 63-fault batches:
  /// 0 means util::ThreadPool::default_threads() (HLTS_THREADS, else
  /// hardware_concurrency), 1 forces the serial path.  Results are
  /// identical for every value -- batches are independent and detected
  /// indices are concatenated in batch order.
  explicit FaultSimulator(const gates::Netlist& nl, int num_threads = 0);

  /// Simulates `sequence` (from power-up/reset) against `faults`, 63 at a
  /// time, and returns the indices (into `faults`) of detected faults.
  [[nodiscard]] std::vector<std::size_t> detected_by(
      const TestSequence& sequence, const std::vector<Fault>& faults);

  /// Convenience: runs `sequence`, erases detected faults from `faults`
  /// in place, and returns how many were dropped.
  std::size_t drop_detected(const TestSequence& sequence,
                            std::vector<Fault>& faults);

 private:
  const gates::Netlist& nl_;
  ParallelSimulator sim_;
  /// Present only when num_threads resolved to > 1.
  std::unique_ptr<util::ThreadPool> pool_;
};

}  // namespace hlts::atpg
