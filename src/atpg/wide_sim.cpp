#include "atpg/wide_sim.hpp"

#include "util/error.hpp"

namespace hlts::atpg {

using gates::GateId;
using gates::GateKind;

template <int W>
WideSimulator<W>::WideSimulator(const gates::Netlist& nl) : nl_(nl) {
  nl.validate();
  one_.assign(nl.num_gates(), Packet<W>::zero());
  zero_.assign(nl.num_gates(), Packet<W>::zero());
  state_one_.assign(nl.num_gates(), Packet<W>::zero());
  state_zero_.assign(nl.num_gates(), Packet<W>::zero());
  sa1_mask_.assign(nl.num_gates(), Packet<W>::zero());
  sa0_mask_.assign(nl.num_gates(), Packet<W>::zero());
}

template <int W>
void WideSimulator<W>::inject(int lane, const Fault& fault) {
  HLTS_REQUIRE(lane >= 1 && lane < kLanes,
               "fault lane out of range for this packet width");
  if (fault.stuck_at_one) {
    sa1_mask_[fault.gate].set_lane(lane);
  } else {
    sa0_mask_[fault.gate].set_lane(lane);
  }
  masked_gates_.push_back(fault.gate);
}

template <int W>
void WideSimulator<W>::clear_faults() {
  for (GateId g : masked_gates_) {
    sa1_mask_[g] = Packet<W>::zero();
    sa0_mask_[g] = Packet<W>::zero();
  }
  masked_gates_.clear();
}

template <int W>
void WideSimulator<W>::reset_state() {
  for (GateId d : nl_.dffs()) {
    state_one_[d] = Packet<W>::zero();
    state_zero_[d] = Packet<W>::zero();  // X: neither plane set
  }
}

template <int W>
inline void WideSimulator<W>::apply_mask(GateId g) {
  const Packet<W>& s1 = sa1_mask_[g];
  const Packet<W>& s0 = sa0_mask_[g];
  if (!(s1 | s0).any()) return;
  one_[g] = (one_[g] | s1) & ~s0;
  zero_[g] = (zero_[g] | s0) & ~s1;
}

template <int W>
Packet<W> WideSimulator<W>::step(const TestVector& inputs) {
  HLTS_REQUIRE(inputs.size() == nl_.inputs().size(),
               "test vector width mismatch");

  // Sources.
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    GateId g = nl_.inputs()[i];
    one_[g] = Packet<W>::broadcast(inputs[i]);
    zero_[g] = ~one_[g];
    apply_mask(g);
  }
  for (GateId g : nl_.gate_ids()) {
    const GateKind kind = nl_.gate(g).kind;
    if (kind == GateKind::Const0) {
      one_[g] = Packet<W>::zero();
      zero_[g] = Packet<W>::ones();
      apply_mask(g);
    } else if (kind == GateKind::Const1) {
      one_[g] = Packet<W>::ones();
      zero_[g] = Packet<W>::zero();
      apply_mask(g);
    }
  }
  for (GateId d : nl_.dffs()) {
    one_[d] = state_one_[d];
    zero_[d] = state_zero_[d];
    apply_mask(d);
  }

  // Combinational evaluation (two-plane three-valued logic).
  for (GateId g : nl_.levelized()) {
    const gates::Gate& gate = nl_.gate(g);
    Packet<W> v1 = Packet<W>::zero();
    Packet<W> v0 = Packet<W>::zero();
    switch (gate.kind) {
      case GateKind::Buf:
      case GateKind::Output:
        v1 = one_[gate.inputs[0]];
        v0 = zero_[gate.inputs[0]];
        break;
      case GateKind::Not:
        v1 = zero_[gate.inputs[0]];
        v0 = one_[gate.inputs[0]];
        break;
      case GateKind::And:
      case GateKind::Nand: {
        v1 = Packet<W>::ones();
        v0 = Packet<W>::zero();
        for (GateId in : gate.inputs) {
          v1 &= one_[in];
          v0 |= zero_[in];
        }
        if (gate.kind == GateKind::Nand) std::swap(v1, v0);
        break;
      }
      case GateKind::Or:
      case GateKind::Nor: {
        v1 = Packet<W>::zero();
        v0 = Packet<W>::ones();
        for (GateId in : gate.inputs) {
          v1 |= one_[in];
          v0 &= zero_[in];
        }
        if (gate.kind == GateKind::Nor) std::swap(v1, v0);
        break;
      }
      case GateKind::Xor:
      case GateKind::Xnor: {
        const Packet<W>& a1 = one_[gate.inputs[0]];
        const Packet<W>& a0 = zero_[gate.inputs[0]];
        const Packet<W>& b1 = one_[gate.inputs[1]];
        const Packet<W>& b0 = zero_[gate.inputs[1]];
        v1 = (a1 & b0) | (a0 & b1);
        v0 = (a1 & b1) | (a0 & b0);
        if (gate.kind == GateKind::Xnor) std::swap(v1, v0);
        break;
      }
      case GateKind::Mux: {
        const Packet<W>& s1 = one_[gate.inputs[0]];
        const Packet<W>& s0 = zero_[gate.inputs[0]];
        const Packet<W>& a1 = one_[gate.inputs[1]];
        const Packet<W>& a0 = zero_[gate.inputs[1]];
        const Packet<W>& b1 = one_[gate.inputs[2]];
        const Packet<W>& b0 = zero_[gate.inputs[2]];
        v1 = (s0 & a1) | (s1 & b1) | (a1 & b1);
        v0 = (s0 & a0) | (s1 & b0) | (a0 & b0);
        break;
      }
      default:
        continue;  // sources handled above
    }
    one_[g] = v1;
    zero_[g] = v0;
    apply_mask(g);
    lane_evals_ += static_cast<std::uint64_t>(kLanes);
  }

  // Detection: good and faulty both binary and different.  The good value
  // is lane 0 = bit 0 of word 0, broadcast across the packet.
  Packet<W> diff = Packet<W>::zero();
  for (GateId o : nl_.outputs()) {
    const Packet<W> g1 = Packet<W>::broadcast(one_[o].w[0] & 1);
    const Packet<W> g0 = Packet<W>::broadcast(zero_[o].w[0] & 1);
    diff |= (g1 & zero_[o]) | (g0 & one_[o]);
  }

  // Clock edge.
  for (GateId d : nl_.dffs()) {
    state_one_[d] = one_[nl_.gate(d).inputs[0]];
    state_zero_[d] = zero_[nl_.gate(d).inputs[0]];
  }
  diff.w[0] &= ~std::uint64_t{1};  // never report the good machine
  return diff;
}

template class WideSimulator<1>;
template class WideSimulator<4>;
template class WideSimulator<8>;

}  // namespace hlts::atpg
