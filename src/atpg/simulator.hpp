// 64-lane parallel three-valued gate-level simulator.
//
// The historical single-word interface, kept for the testbench, PODEM
// confirmation and the unit tests: a thin wrapper over WideSimulator<1>
// (see wide_sim.hpp for the simulation model and the two-plane encoding).
// Lane 0 carries the fault-free machine; lanes 1..63 carry faulty copies.
// Wider packets (256/512 lanes) are reached through WideSimulator<W>
// directly, or via FaultSimulator's HLTS_SIMD_WIDTH dispatch.
#pragma once

#include <cstdint>

#include "atpg/wide_sim.hpp"

namespace hlts::atpg {

class ParallelSimulator {
 public:
  explicit ParallelSimulator(const gates::Netlist& nl) : sim_(nl) {}

  /// Injects `fault` into lane `lane` (1..63).  Lane 0 must stay fault-free.
  void inject(int lane, const Fault& fault) { sim_.inject(lane, fault); }
  /// Removes all injected faults.
  void clear_faults() { sim_.clear_faults(); }

  /// Returns all flip-flops to the unknown (X) power-up state.
  void reset_state() { sim_.reset_state(); }

  /// Applies one input vector, evaluates the combinational logic and clocks
  /// the flip-flops.  Returns the set of lanes detected this cycle: a
  /// primary output where both the good and the faulty value are binary
  /// and differ.
  std::uint64_t step(const TestVector& inputs) { return sim_.step(inputs).w[0]; }

  /// Value planes of a gate after the last evaluation.
  [[nodiscard]] std::uint64_t plane_one(gates::GateId g) const {
    return sim_.plane_one(g).w[0];
  }
  [[nodiscard]] std::uint64_t plane_zero(gates::GateId g) const {
    return sim_.plane_zero(g).w[0];
  }

  [[nodiscard]] const gates::Netlist& netlist() const { return sim_.netlist(); }

 private:
  WideSimulator<1> sim_;
};

}  // namespace hlts::atpg
