// 64-lane parallel three-valued gate-level simulator.
//
// Lane 0 carries the fault-free machine; lanes 1..63 carry faulty copies
// (parallel-fault simulation).  Values are three-valued (0 / 1 / X) in the
// classic two-plane encoding -- for each gate, plane `one` has a lane bit
// set when that lane's value is 1, plane `zero` when it is 0; neither set
// means X.  Flip-flops power up X: data-path registers have no reset, so a
// test must *initialize* the machine through functional paths before it
// can detect anything -- the sequential-ATPG reality the paper's
// testability metrics (SC/SO) model.
//
// A fault is detected only by the conservative criterion: some primary
// output where the good machine and the faulty machine both have binary
// values and they differ.
#pragma once

#include <cstdint>
#include <vector>

#include "atpg/faults.hpp"
#include "gates/netlist.hpp"

namespace hlts::atpg {

/// Primary-input values for one clock cycle, in gates::Netlist::inputs()
/// order.  Primary inputs are always binary (the tester drives them).
using TestVector = std::vector<bool>;
/// A clocked test sequence, applied from power-up (all state X).
using TestSequence = std::vector<TestVector>;

class ParallelSimulator {
 public:
  explicit ParallelSimulator(const gates::Netlist& nl);

  /// Injects `fault` into lane `lane` (1..63).  Lane 0 must stay fault-free.
  void inject(int lane, const Fault& fault);
  /// Removes all injected faults.
  void clear_faults();

  /// Returns all flip-flops to the unknown (X) power-up state.
  void reset_state();

  /// Applies one input vector, evaluates the combinational logic and clocks
  /// the flip-flops.  Returns the set of lanes detected this cycle: a
  /// primary output where both the good and the faulty value are binary
  /// and differ.
  std::uint64_t step(const TestVector& inputs);

  /// Value planes of a gate after the last evaluation.
  [[nodiscard]] std::uint64_t plane_one(gates::GateId g) const { return one_[g]; }
  [[nodiscard]] std::uint64_t plane_zero(gates::GateId g) const {
    return zero_[g];
  }

  [[nodiscard]] const gates::Netlist& netlist() const { return nl_; }

 private:
  void apply_mask(gates::GateId g);

  const gates::Netlist& nl_;
  IndexVec<gates::GateId, std::uint64_t> one_, zero_;          // comb values
  IndexVec<gates::GateId, std::uint64_t> state_one_, state_zero_;  // DFFs
  IndexVec<gates::GateId, std::uint64_t> sa1_mask_, sa0_mask_;
  std::vector<gates::GateId> masked_gates_;
};

}  // namespace hlts::atpg
