#include "atpg/sat_backend.hpp"

#include <fstream>

#include "util/error.hpp"
#include "util/log.hpp"

namespace hlts::atpg {

namespace {

int find_reset_index(const gates::Netlist& nl) {
  for (std::size_t i = 0; i < nl.inputs().size(); ++i) {
    if (nl.gate(nl.inputs()[i]).name == "reset") return static_cast<int>(i);
  }
  return -1;
}

/// fault_name with the path-hostile characters ('/', '#') replaced, for
/// use as a DIMACS dump file name.
std::string dump_file_name(const gates::Netlist& nl, const Fault& f) {
  std::string s = nl.name() + "-" + fault_name(nl, f) + ".cnf";
  for (char& c : s) {
    if (c == '/' || c == '#' || c == ' ') c = '_';
  }
  return s;
}

}  // namespace

SatBackend::SatBackend(const gates::Netlist& nl, const BackendConfig& config)
    : nl_(nl),
      cnf_(std::make_unique<gates::TimeFrameCnf>(nl, config.frames,
                                                 find_reset_index(nl))),
      conflict_budget_(config.conflict_budget),
      dump_dir_(config.dump_cnf_dir),
      frames_(config.frames),
      reset_index_(find_reset_index(nl)) {
  base_clauses_ = cnf_->solver().num_clauses();
  stats_.cnf_vars = cnf_->solver().num_vars();
  stats_.cnf_clauses = cnf_->solver().num_clauses();
}

void SatBackend::maybe_rebuild() {
  if (cnf_->solver().num_clauses() <= 2 * base_clauses_) return;
  const util::cdcl::Stats& ss = cnf_->solver().stats();
  carried_conflicts_ += ss.conflicts;
  carried_decisions_ += ss.decisions;
  carried_propagations_ += ss.propagations;
  carried_learned_ += ss.learned;
  cnf_ = std::make_unique<gates::TimeFrameCnf>(nl_, frames_, reset_index_);
}

BackendResult SatBackend::generate(const Fault& fault) {
  HLTS_REQUIRE(FaultUniverse::is_fault_site(nl_, fault.gate),
               "sat backend: target is not a collapsed fault site");
  maybe_rebuild();
  const util::cdcl::Lit act = cnf_->add_fault(fault.gate, fault.stuck_at_one);
  if (!dump_dir_.empty()) {
    const std::string path = dump_dir_ + "/" + dump_file_name(nl_, fault);
    std::ofstream os(path);
    if (os) {
      cnf_->dump_dimacs(os, act);
    } else {
      HLTS_WARN("sat backend: cannot write CNF dump " << path);
    }
  }

  const std::uint64_t conflicts_before = cnf_->solver().stats().conflicts;
  const util::cdcl::Status status =
      cnf_->solver().solve({act}, conflict_budget_);

  BackendResult r;
  switch (status) {
    case util::cdcl::Status::Sat:
      r.status = BackendStatus::Detected;
      r.sequence = cnf_->extract_sequence();
      break;
    case util::cdcl::Status::Unsat:
      r.status = BackendStatus::Untestable;
      break;
    case util::cdcl::Status::Unknown:
      r.status = BackendStatus::Aborted;
      break;
  }
  r.effort =
      static_cast<long>(cnf_->solver().stats().conflicts - conflicts_before);
  cnf_->retire_fault(act);

  ++stats_.targets;
  stats_.effort += static_cast<std::uint64_t>(r.effort);
  if (r.status == BackendStatus::Detected) ++stats_.detected;
  if (r.status == BackendStatus::Untestable) ++stats_.untestable;
  if (r.status == BackendStatus::Aborted) ++stats_.aborted;
  const util::cdcl::Stats& ss = cnf_->solver().stats();
  stats_.sat_conflicts = carried_conflicts_ + ss.conflicts;
  stats_.sat_decisions = carried_decisions_ + ss.decisions;
  stats_.sat_propagations = carried_propagations_ + ss.propagations;
  stats_.sat_learned = carried_learned_ + ss.learned;
  stats_.cnf_vars = cnf_->solver().num_vars();
  stats_.cnf_clauses = cnf_->solver().num_clauses();
  return r;
}

}  // namespace hlts::atpg
