#include "atpg/atpg.hpp"

#include <algorithm>
#include <chrono>

#include "atpg/compact.hpp"
#include "atpg/podem.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/trace.hpp"

namespace hlts::atpg {

namespace {

/// DFT control inputs are driven deliberately, not with random data: a
/// random `hold` would freeze the controller half the time and a random
/// `test_mode`/`bist_mode` would corrupt functional operation.  The random
/// phase idles them (asserting them only rarely, to exercise their own
/// logic); the deterministic phase may still assign them freely.
bool is_dft_control(const std::string& name) {
  return name == "hold" || name == "test_mode" || name == "bist_mode";
}

/// A random sequence: reset in cycle 0, then random data inputs (reset and
/// the DFT controls are re-asserted only with small probability).
TestSequence random_sequence(const gates::Netlist& nl, int cycles, Rng& rng,
                             int reset_index) {
  TestSequence seq;
  for (int c = 0; c < cycles; ++c) {
    TestVector v(nl.inputs().size());
    for (std::size_t i = 0; i < v.size(); ++i) {
      if (static_cast<int>(i) == reset_index) {
        v[i] = (c == 0) || rng.next_bool(0.02);
      } else if (is_dft_control(nl.gate(nl.inputs()[i]).name)) {
        v[i] = rng.next_bool(0.05);
      } else {
        v[i] = rng.next_bool(0.5);
      }
    }
    seq.push_back(std::move(v));
  }
  return seq;
}

int find_reset(const gates::Netlist& nl) {
  for (std::size_t i = 0; i < nl.inputs().size(); ++i) {
    if (nl.gate(nl.inputs()[i]).name == "reset") return static_cast<int>(i);
  }
  return -1;
}

}  // namespace

AtpgResult run_atpg(const gates::Netlist& nl, int period,
                    const AtpgOptions& options) {
  HLTS_REQUIRE(period >= 1, "controller period must be >= 1");
  HLTS_SPAN("atpg.run");
  const auto t0 = std::chrono::steady_clock::now();

  AtpgResult result;
  FaultUniverse universe = FaultUniverse::collapsed(nl);
  std::vector<Fault> remaining = universe.faults();
  result.total_faults = remaining.size();

  const int reset_index = find_reset(nl);
  const int seq_cycles =
      options.sequence_cycles > 0 ? options.sequence_cycles : 2 * period;
  Rng rng(options.seed);
  FaultSimulator fsim(nl, /*num_threads=*/0, options.simd_width);

  util::count("atpg.faults_total",
              static_cast<std::int64_t>(result.total_faults));

  // --- random phase ----------------------------------------------------------
  int idle_rounds = 0;
  for (int round = 0; round < options.max_rounds && !remaining.empty();
       ++round) {
    std::size_t dropped_this_round = 0;
    for (int s = 0; s < options.sequences_per_round && !remaining.empty();
         ++s) {
      TestSequence seq = random_sequence(nl, seq_cycles, rng, reset_index);
      const std::size_t dropped = fsim.drop_detected(seq, remaining);
      if (dropped > 0) {
        dropped_this_round += dropped;
        result.test_set.push_back(std::move(seq));
      }
    }
    if (dropped_this_round == 0) {
      if (++idle_rounds >= options.max_idle_rounds) break;
    } else {
      idle_rounds = 0;
    }
  }
  result.detected_random = result.total_faults - remaining.size();
  util::count("atpg.detected_random",
              static_cast<std::int64_t>(result.detected_random));

  // --- deterministic phase ----------------------------------------------------
  if (options.deterministic_phase && !remaining.empty()) {
    HLTS_SPAN("atpg.podem_phase");
    const int frames =
        options.podem_frames > 0 ? options.podem_frames : 2 * period;
    TimeFramePodem podem(nl, frames);
    // Walk a snapshot; fault-simulating each generated sequence drops
    // fortuitously-detected faults from `remaining` as we go.
    const std::vector<Fault> worklist = remaining;
    int targets = 0;
    for (const Fault& target : worklist) {
      if (options.podem_max_targets > 0 &&
          targets >= options.podem_max_targets) {
        break;
      }
      if (std::find(remaining.begin(), remaining.end(), target) ==
          remaining.end()) {
        continue;  // already detected by an earlier deterministic sequence
      }
      ++targets;
      PodemResult pr = podem.generate(target, options.podem_backtrack_limit);
      if (pr.status == PodemStatus::Detected) {
        fsim.drop_detected(pr.sequence, remaining);
        result.test_set.push_back(pr.sequence);
        if (std::find(remaining.begin(), remaining.end(), target) !=
            remaining.end()) {
          // The unrolled model predicted a detection the sequential fault
          // simulator did not confirm (frame-bound artifact).
          HLTS_WARN("PODEM detection not confirmed for "
                    << fault_name(nl, target));
        }
      } else if (pr.status == PodemStatus::Untestable) {
        ++result.untestable_proved;
      }
    }
    result.detected_deterministic =
        result.total_faults - result.detected_random - remaining.size();
    util::count("atpg.detected_deterministic",
                static_cast<std::int64_t>(result.detected_deterministic));
  }

  // --- static compaction -------------------------------------------------------
  for (const TestSequence& seq : result.test_set) {
    result.uncompacted_cycles += static_cast<long>(seq.size());
  }
  if (options.compact && !result.test_set.empty()) {
    HLTS_SPAN("atpg.compaction");
    CompactionResult c = compact_test_set(nl, result.test_set,
                                          universe.faults(), options.simd_width);
    std::vector<TestSequence> kept;
    for (std::size_t i : c.kept) kept.push_back(std::move(result.test_set[i]));
    result.test_set = std::move(kept);
  }
  for (const TestSequence& seq : result.test_set) {
    result.test_cycles += static_cast<long>(seq.size());
  }
  result.num_sequences = static_cast<int>(result.test_set.size());

  result.undetected = remaining;
  result.fault_coverage =
      result.total_faults == 0
          ? 1.0
          : static_cast<double>(result.detected()) /
                static_cast<double>(result.total_faults);
  result.tg_time_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                t0)
          .count();
  return result;
}

}  // namespace hlts::atpg
