#include "atpg/atpg.hpp"

#include <algorithm>
#include <chrono>

#include "atpg/compact.hpp"
#include "util/error.hpp"
#include "util/knobs.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/trace.hpp"

namespace hlts::atpg {

namespace {

/// DFT control inputs are driven deliberately, not with random data: a
/// random `hold` would freeze the controller half the time and a random
/// `test_mode`/`bist_mode` would corrupt functional operation.  The random
/// phase idles them (asserting them only rarely, to exercise their own
/// logic); the deterministic phase may still assign them freely.
bool is_dft_control(const std::string& name) {
  return name == "hold" || name == "test_mode" || name == "bist_mode";
}

/// A random sequence: reset in cycle 0, then random data inputs (reset and
/// the DFT controls are re-asserted only with small probability).
TestSequence random_sequence(const gates::Netlist& nl, int cycles, Rng& rng,
                             int reset_index) {
  TestSequence seq;
  for (int c = 0; c < cycles; ++c) {
    TestVector v(nl.inputs().size());
    for (std::size_t i = 0; i < v.size(); ++i) {
      if (static_cast<int>(i) == reset_index) {
        v[i] = (c == 0) || rng.next_bool(0.02);
      } else if (is_dft_control(nl.gate(nl.inputs()[i]).name)) {
        v[i] = rng.next_bool(0.05);
      } else {
        v[i] = rng.next_bool(0.5);
      }
    }
    seq.push_back(std::move(v));
  }
  return seq;
}

int find_reset(const gates::Netlist& nl) {
  for (std::size_t i = 0; i < nl.inputs().size(); ++i) {
    if (nl.gate(nl.inputs()[i]).name == "reset") return static_cast<int>(i);
  }
  return -1;
}

/// Resolves AtpgOptions::backend through the HLTS_ATPG_BACKEND knob to one
/// of the three orchestration modes.
std::string resolve_mode(const AtpgOptions& options) {
  std::string mode = options.backend;
  if (mode.empty()) {
    mode = util::knobs::read_string("HLTS_ATPG_BACKEND").value_or("timeframe");
  }
  HLTS_REQUIRE_INPUT(
      mode == "timeframe" || mode == "sat" || mode == "hybrid",
      "AtpgOptions::backend must be timeframe, sat or hybrid (got '" + mode +
          "')");
  return mode;
}

std::int64_t resolve_conflict_budget(const AtpgOptions& options) {
  if (options.sat_conflict_budget > 0) return options.sat_conflict_budget;
  const auto knob = util::knobs::read_int("HLTS_SAT_CONFLICT_BUDGET");
  if (knob.has_value() && *knob > 0) return *knob;
  return 20000;
}

int resolve_sat_frames(const AtpgOptions& options, int period) {
  if (options.sat_frames > 0) return options.sat_frames;
  const auto knob = util::knobs::read_int("HLTS_SAT_FRAMES");
  if (knob.has_value() && *knob > 0) return static_cast<int>(*knob);
  return 2 * period;
}

}  // namespace

AtpgResult run_atpg(const gates::Netlist& nl, int period,
                    const AtpgOptions& options) {
  HLTS_REQUIRE(period >= 1, "controller period must be >= 1");
  HLTS_SPAN("atpg.run");
  const auto t0 = std::chrono::steady_clock::now();

  AtpgResult result;
  result.backend = resolve_mode(options);
  const bool sat_backend = result.backend != "timeframe";
  const bool random_phase = result.backend != "sat";

  FaultUniverse universe = FaultUniverse::collapsed(nl);
  FaultLedger ledger(nl, universe);
  std::vector<Fault> remaining = universe.faults();
  result.total_faults = remaining.size();

  const int reset_index = find_reset(nl);
  const int seq_cycles =
      options.sequence_cycles > 0 ? options.sequence_cycles : 2 * period;
  Rng rng(options.seed);
  FaultSimulator fsim(nl, /*num_threads=*/0, options.simd_width);

  util::count("atpg.faults_total",
              static_cast<std::int64_t>(result.total_faults));

  // --- random phase ----------------------------------------------------------
  if (random_phase) {
    std::vector<Fault> dropped;
    int idle_rounds = 0;
    for (int round = 0; round < options.max_rounds && !remaining.empty();
         ++round) {
      std::size_t dropped_this_round = 0;
      for (int s = 0; s < options.sequences_per_round && !remaining.empty();
           ++s) {
        TestSequence seq = random_sequence(nl, seq_cycles, rng, reset_index);
        dropped.clear();
        const std::size_t n = fsim.drop_detected(seq, remaining, &dropped);
        for (const Fault& f : dropped) {
          ledger.mark(f, FaultStatus::DetectedRandom);
        }
        if (n > 0) {
          dropped_this_round += n;
          result.test_set.push_back(std::move(seq));
        }
      }
      if (dropped_this_round == 0) {
        if (++idle_rounds >= options.max_idle_rounds) break;
      } else {
        idle_rounds = 0;
      }
    }
  }
  result.detected_random = ledger.count(FaultStatus::DetectedRandom);
  util::count("atpg.detected_random",
              static_cast<std::int64_t>(result.detected_random));

  // --- deterministic phase ----------------------------------------------------
  if (options.deterministic_phase && !remaining.empty()) {
    HLTS_SPAN("atpg.deterministic_phase");
    BackendConfig config;
    config.backtrack_limit = options.podem_backtrack_limit;
    config.conflict_budget = resolve_conflict_budget(options);
    config.dump_cnf_dir = options.dump_cnf_dir;
    config.frames = sat_backend
                        ? resolve_sat_frames(options, period)
                        : (options.podem_frames > 0 ? options.podem_frames
                                                    : 2 * period);
    std::unique_ptr<DeterministicBackend> backend =
        make_backend(sat_backend ? BackendKind::Sat : BackendKind::TimeFrame,
                     nl, config);

    // Hybrid escalation: a target the SAT conflict budget aborts is retried
    // on the time-frame backend before it counts as Aborted.  PODEM's
    // structural search resolves some faults cheaply that are hard for
    // bounded CDCL, so the hybrid target loop resolves a superset of what
    // either backend resolves alone.
    std::unique_ptr<DeterministicBackend> rescue;
    if (result.backend == "hybrid") {
      BackendConfig rescue_config;
      rescue_config.backtrack_limit = options.podem_backtrack_limit;
      rescue_config.frames =
          options.podem_frames > 0 ? options.podem_frames : 2 * period;
      rescue = make_backend(BackendKind::TimeFrame, nl, rescue_config);
    }

    // Walk a snapshot; fault-simulating each generated sequence drops
    // fortuitously-detected faults from `remaining` as we go.
    std::vector<Fault> dropped;
    const std::vector<Fault> worklist = remaining;
    int targets = 0;
    for (const Fault& target : worklist) {
      if (options.podem_max_targets > 0 &&
          targets >= options.podem_max_targets) {
        break;
      }
      if (std::find(remaining.begin(), remaining.end(), target) ==
          remaining.end()) {
        continue;  // already detected by an earlier deterministic sequence
      }
      ++targets;
      BackendResult br = backend->generate(target);
      bool rescued = false;
      if (br.status == BackendStatus::Aborted && rescue) {
        br = rescue->generate(target);
        rescued = true;
      }
      if (br.status == BackendStatus::Detected) {
        // A candidate only: the sequential fault simulator is the referee.
        dropped.clear();
        fsim.drop_detected(br.sequence, remaining, &dropped);
        for (const Fault& f : dropped) {
          ledger.mark(f, FaultStatus::DetectedDeterministic);
        }
        result.test_set.push_back(br.sequence);
        if (std::find(remaining.begin(), remaining.end(), target) !=
            remaining.end()) {
          // The unrolled model predicted a detection the sequential fault
          // simulator did not confirm.  A frame-bound artifact of the
          // PODEM search; impossible for the SAT backend by construction
          // of the dual-rail encoding (asserted by the sat test suite).
          // An unconfirmed PODEM *rescue* candidate (hybrid mode) counts
          // as Aborted -- the escalation did not resolve the target -- so
          // hybrid keeps the unconfirmed == 0 guarantee of the SAT path.
          if (rescued) {
            ledger.mark(target, FaultStatus::Aborted);
          } else {
            ++result.unconfirmed;
            HLTS_WARN(backend->name()
                      << " detection not confirmed for "
                      << fault_name(nl, target));
          }
        }
      } else if (br.status == BackendStatus::Untestable) {
        // Verdict counter, not a final-state count: a PODEM untestable
        // claim can later be contradicted by a fortuitous detection (the
        // ledger then reports the fault as detected, not untestable).
        ++result.untestable_proved;
        ledger.mark(target, FaultStatus::Untestable);
      } else {
        ledger.mark(target, FaultStatus::Aborted);
      }
    }
    result.backend_stats = backend->stats();
    if (rescue) {
      result.backend_stats.fallback_targets = rescue->stats().targets;
      result.backend_stats.fallback_detected = rescue->stats().detected;
    }
  }
  result.detected_deterministic =
      ledger.count(FaultStatus::DetectedDeterministic);
  result.aborted = ledger.count(FaultStatus::Aborted);
  util::count("atpg.detected_deterministic",
              static_cast<std::int64_t>(result.detected_deterministic));

  // The ledger and the drop-based bookkeeping must agree by construction:
  // every classification above came off the simulator's detected-set.
  HLTS_REQUIRE(ledger.detected() == result.total_faults - remaining.size(),
               "atpg: fault ledger diverged from the remaining-set");

  // --- static compaction -------------------------------------------------------
  for (const TestSequence& seq : result.test_set) {
    result.uncompacted_cycles += static_cast<long>(seq.size());
  }
  if (options.compact && !result.test_set.empty()) {
    HLTS_SPAN("atpg.compaction");
    CompactionResult c = compact_test_set(nl, result.test_set,
                                          universe.faults(), options.simd_width);
    std::vector<TestSequence> kept;
    for (std::size_t i : c.kept) kept.push_back(std::move(result.test_set[i]));
    result.test_set = std::move(kept);
  }
  for (const TestSequence& seq : result.test_set) {
    result.test_cycles += static_cast<long>(seq.size());
  }
  result.num_sequences = static_cast<int>(result.test_set.size());

  result.undetected = remaining;
  for (const Fault& f : universe.faults()) {
    const FaultStatus s = ledger.status(f);
    if (s == FaultStatus::Aborted) result.aborted_faults.push_back(f);
    if (s == FaultStatus::Untestable) result.untestable_faults.push_back(f);
  }
  result.fault_coverage =
      result.total_faults == 0
          ? 1.0
          : static_cast<double>(result.detected()) /
                static_cast<double>(result.total_faults);
  result.fault_efficiency =
      result.total_faults == 0
          ? 1.0
          : static_cast<double>(result.detected() + result.untestable_proved) /
                static_cast<double>(result.total_faults);
  result.tg_time_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                t0)
          .count();
  return result;
}

}  // namespace hlts::atpg
