// Fixed-width bit packet for wide parallel-fault simulation.
//
// A Packet<W> is W machine words (64*W lanes) treated as one flat bit
// vector.  The simulator's two-plane gate equations are pure bitwise
// AND/OR/NOT, so widening a lane word to a packet of W words turns every
// gate evaluation into W independent word operations over contiguous
// storage -- a loop GCC/Clang autovectorize to 256-bit (W=4) or 512-bit
// (W=8) SIMD at -O2 without any intrinsics or target-specific code.
//
// Lane numbering is little-endian across words: lane L lives in bit
// (L % 64) of word L/64, so word 0 bit 0 is lane 0 (the good machine) at
// every width, and the W=1 packet is bit-for-bit the historical plain
// uint64_t lane word.
#pragma once

#include <cstdint>

namespace hlts::atpg {

template <int W>
struct Packet {
  static_assert(W >= 1, "packet must have at least one word");
  static constexpr int kWords = W;
  static constexpr int kLanes = 64 * W;

  std::uint64_t w[W];

  static constexpr Packet zero() {
    Packet p{};
    return p;
  }
  static constexpr Packet ones() {
    Packet p{};
    for (int i = 0; i < W; ++i) p.w[i] = ~std::uint64_t{0};
    return p;
  }
  /// All-ones when `bit` is set, all-zeros otherwise -- the broadcast the
  /// detection step uses to smear the good machine's lane-0 value.
  static constexpr Packet broadcast(bool bit) {
    return bit ? ones() : zero();
  }

  constexpr void set_lane(int lane) {
    w[lane >> 6] |= std::uint64_t{1} << (lane & 63);
  }
  [[nodiscard]] constexpr bool lane(int lane) const {
    return (w[lane >> 6] >> (lane & 63)) & 1;
  }
  [[nodiscard]] constexpr bool any() const {
    std::uint64_t acc = 0;
    for (int i = 0; i < W; ++i) acc |= w[i];
    return acc != 0;
  }

  constexpr Packet& operator&=(const Packet& o) {
    for (int i = 0; i < W; ++i) w[i] &= o.w[i];
    return *this;
  }
  constexpr Packet& operator|=(const Packet& o) {
    for (int i = 0; i < W; ++i) w[i] |= o.w[i];
    return *this;
  }
  constexpr Packet& operator^=(const Packet& o) {
    for (int i = 0; i < W; ++i) w[i] ^= o.w[i];
    return *this;
  }

  friend constexpr Packet operator&(Packet a, const Packet& b) {
    a &= b;
    return a;
  }
  friend constexpr Packet operator|(Packet a, const Packet& b) {
    a |= b;
    return a;
  }
  friend constexpr Packet operator^(Packet a, const Packet& b) {
    a ^= b;
    return a;
  }
  friend constexpr Packet operator~(Packet a) {
    for (int i = 0; i < W; ++i) a.w[i] = ~a.w[i];
    return a;
  }
  friend constexpr bool operator==(const Packet& a, const Packet& b) {
    std::uint64_t diff = 0;
    for (int i = 0; i < W; ++i) diff |= a.w[i] ^ b.w[i];
    return diff == 0;
  }
  friend constexpr bool operator!=(const Packet& a, const Packet& b) {
    return !(a == b);
  }
};

}  // namespace hlts::atpg
