// Deterministic sequential ATPG: PODEM over a bounded time-frame expansion.
//
// The sequential circuit is unrolled for F frames starting from the
// unknown power-up state (all flip-flops X) with the reset input forced
// high in frame 0 and low afterwards, making the unrolled model purely
// combinational.  The target fault is present in every frame.  Values are
// good/faulty 3-valued pairs (the D-calculus: D = good 1 / faulty 0); a
// test must justify register initialization through functional paths
// before it can excite and propagate the fault.
//
// Classic PODEM search: pick an objective (fault excitation, then D-drive
// through the D-frontier), backtrace through X-valued nets to an
// assignable primary input, imply, and branch with a bounded backtrack
// budget.
#pragma once

#include <cstdint>
#include <vector>

#include "atpg/faults.hpp"
#include "atpg/simulator.hpp"

namespace hlts::atpg {

enum class PodemStatus {
  Detected,    ///< a test sequence was generated
  Untestable,  ///< search space exhausted within the frame bound
  Aborted,     ///< backtrack limit hit
};

struct PodemResult {
  PodemStatus status = PodemStatus::Aborted;
  /// Valid when Detected: per-frame primary-input vectors (unassigned
  /// inputs filled with zeros).
  TestSequence sequence;
  int backtracks = 0;
};

class TimeFramePodem {
 public:
  /// Builds the unrolled model.  `frames` >= 1.
  TimeFramePodem(const gates::Netlist& nl, int frames);

  /// Attempts to generate a test for `fault`.
  [[nodiscard]] PodemResult generate(const Fault& fault, int backtrack_limit);

  /// Validation hook (used by tests): implies the primary-input values of
  /// `sequence` into the unrolled model and reports whether the fault is
  /// detected there.  Must agree with the sequential fault simulator
  /// whenever the sequence fits in the frame bound.
  [[nodiscard]] bool check_sequence(const Fault& fault,
                                    const TestSequence& sequence);

 private:
  struct Node;  // defined in the .cpp
  class Impl;

  const gates::Netlist& nl_;
  int frames_;
  int reset_index_ = -1;  ///< position of the "reset" input, -1 if absent
};

}  // namespace hlts::atpg
