// Width-templated parallel three-valued gate-level simulator.
//
// WideSimulator<W> carries 64*W lanes per gate: lane 0 is the fault-free
// machine, lanes 1..64*W-1 carry faulty copies (parallel-fault
// simulation).  Values are three-valued (0 / 1 / X) in the classic
// two-plane encoding -- for each gate, plane `one` has a lane bit set when
// that lane's value is 1, plane `zero` when it is 0; neither set means X.
// Flip-flops power up X: data-path registers have no reset, so a test must
// *initialize* the machine through functional paths before it can detect
// anything -- the sequential-ATPG reality the paper's testability metrics
// (SC/SO) model.
//
// A fault is detected only by the conservative criterion: some primary
// output where the good machine and the faulty machine both have binary
// values and they differ.
//
// The gate equations are identical at every width (each lane is evaluated
// independently), so the detected-lane packet of WideSimulator<W> restricted
// to any lane equals WideSimulator<1>'s result for a batch containing just
// that lane's fault -- the bit-identity contract fault_sim.cpp builds on.
// W=1 is the historical 64-lane simulator; W=4 and W=8 evaluate 256/512
// lanes per gate as flat uint64_t loops the compiler autovectorizes.
#pragma once

#include <cstdint>
#include <vector>

#include "atpg/faults.hpp"
#include "atpg/packet.hpp"
#include "gates/netlist.hpp"

namespace hlts::atpg {

/// Primary-input values for one clock cycle, in gates::Netlist::inputs()
/// order.  Primary inputs are always binary (the tester drives them).
using TestVector = std::vector<bool>;
/// A clocked test sequence, applied from power-up (all state X).
using TestSequence = std::vector<TestVector>;

template <int W>
class WideSimulator {
 public:
  static constexpr int kLanes = Packet<W>::kLanes;

  explicit WideSimulator(const gates::Netlist& nl);

  /// Injects `fault` into lane `lane` (1..kLanes-1).  Lane 0 must stay
  /// fault-free.
  void inject(int lane, const Fault& fault);
  /// Removes all injected faults.
  void clear_faults();

  /// Returns all flip-flops to the unknown (X) power-up state.
  void reset_state();

  /// Applies one input vector, evaluates the combinational logic and clocks
  /// the flip-flops.  Returns the set of lanes detected this cycle: a
  /// primary output where both the good and the faulty value are binary
  /// and differ.  Lane 0 is never reported.
  Packet<W> step(const TestVector& inputs);

  /// Value planes of a gate after the last evaluation.
  [[nodiscard]] const Packet<W>& plane_one(gates::GateId g) const {
    return one_[g];
  }
  [[nodiscard]] const Packet<W>& plane_zero(gates::GateId g) const {
    return zero_[g];
  }

  /// Cumulative gate-lane evaluations: every levelized-gate evaluation in
  /// step() counts kLanes lane-evals.  Feeds the fault-sim throughput
  /// metric (Mgate-lane-evals/s) in the benches.
  [[nodiscard]] std::uint64_t gate_lane_evals() const { return lane_evals_; }

  [[nodiscard]] const gates::Netlist& netlist() const { return nl_; }

 private:
  void apply_mask(gates::GateId g);

  const gates::Netlist& nl_;
  IndexVec<gates::GateId, Packet<W>> one_, zero_;              // comb values
  IndexVec<gates::GateId, Packet<W>> state_one_, state_zero_;  // DFFs
  IndexVec<gates::GateId, Packet<W>> sa1_mask_, sa0_mask_;
  std::vector<gates::GateId> masked_gates_;
  std::uint64_t lane_evals_ = 0;
};

// Instantiated in wide_sim.cpp for the supported HLTS_SIMD_WIDTH values
// (64, 256, 512 lanes).
extern template class WideSimulator<1>;
extern template class WideSimulator<4>;
extern template class WideSimulator<8>;

}  // namespace hlts::atpg
