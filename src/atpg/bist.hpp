// Built-in self-test session evaluation.
//
// For a netlist elaborated with ElaborateOptions::bist, runs the BIST
// session -- reset, then `cycles` clocks with bist_mode high while the
// on-chip LFSRs pump patterns and the MISR compacts responses -- and
// fault-simulates it.  A fault counts as detected when any primary output
// (including the exposed MISR word) shows a definite difference at any
// cycle, which subsumes the end-of-session signature comparison.
#pragma once

#include "atpg/fault_sim.hpp"

namespace hlts::atpg {

struct BistResult {
  std::size_t total_faults = 0;
  std::size_t detected = 0;
  double coverage = 0.0;
  int cycles = 0;
};

/// Runs a BIST session of the given length against the collapsed fault
/// universe.  The netlist must have `reset` and `bist_mode` inputs.
/// `simd_width` selects the fault-simulation packet width (see
/// atpg::resolve_simd_width); the result is width-independent.
[[nodiscard]] BistResult run_bist(const gates::Netlist& nl, int cycles,
                                  int simd_width = 0);

}  // namespace hlts::atpg
