// Self-checking Verilog testbench generation for an ATPG test set.
//
// Applies every sequence from power-up (all state X in a 4-state
// simulator), drives the primary inputs cycle by cycle, and compares each
// primary output against the good-machine response computed by the in-repo
// three-valued simulator (X responses are not checked).  Together with
// gates::to_structural_verilog this lets the generated tests be replayed in
// any external Verilog simulator.
#pragma once

#include <string>
#include <vector>

#include "atpg/simulator.hpp"

namespace hlts::atpg {

/// Renders a testbench module `<dut_name>_tb` instantiating `dut_name`.
[[nodiscard]] std::string to_verilog_testbench(
    const gates::Netlist& nl, const std::string& dut_name,
    const std::vector<TestSequence>& tests);

}  // namespace hlts::atpg
