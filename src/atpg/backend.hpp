// Pluggable deterministic-ATPG backends.
//
// The orchestrator (atpg.cpp) used to call the time-frame PODEM search
// directly; DeterministicBackend is the seam extracted from that monolith
// so alternative engines can slot in behind the same contract:
//
//   target fault in  ->  test sequence | untestable proof | abort out,
//
// with a per-fault effort budget fixed at construction and cumulative
// stats per backend instance.  Two backends ship in-tree:
//
//   BackendKind::TimeFrame -- the classic PODEM-style branch-and-bound
//       over the unrolled netlist (atpg/podem.hpp), budgeted in
//       backtracks.  The default, and bit-identical to the pre-seam
//       orchestrator.
//   BackendKind::Sat -- the netlist lowered to CNF over k time frames
//       (gates/cnf.hpp) and decided by the in-repo CDCL solver
//       (util/cdcl.hpp), budgeted in conflicts.  One shared good-machine
//       unrolling is reused across faults (assumption-based incremental
//       solving), so learned clauses accumulate over the whole fault list.
//
// Both backends classify against the *same frame bound*: Untestable means
// "no test of <= frames cycles from the X power-up state exists".  The
// PODEM backend only claims it when its search space is exhausted; the SAT
// backend proves it whenever the CNF is unsatisfiable, which is strictly
// more often.  Detected sequences from either backend are validated by the
// sequential fault simulator before they count toward coverage (the
// orchestrator enforces this; the SAT encoding makes it hold by
// construction).
//
// Backends register by name in a process-wide registry (make_backend /
// backend_names); run_atpg resolves its mode string through it, so an
// out-of-tree engine can be added without touching the orchestrator.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "atpg/faults.hpp"
#include "atpg/wide_sim.hpp"

namespace hlts::atpg {

enum class BackendKind {
  TimeFrame,  ///< PODEM over the time-frame expansion (the classic path)
  Sat,        ///< CNF unrolling decided by the in-repo CDCL solver
};

[[nodiscard]] const char* backend_kind_name(BackendKind kind);

enum class BackendStatus {
  Detected,    ///< a candidate test sequence was generated
  Untestable,  ///< proved: no test within the frame bound exists
  Aborted,     ///< per-fault effort budget exhausted
};

struct BackendResult {
  BackendStatus status = BackendStatus::Aborted;
  /// Valid when Detected: per-frame primary-input vectors.  A *candidate*
  /// until the fault simulator confirms it.
  TestSequence sequence;
  /// Effort this target consumed, in the backend's own unit (backtracks
  /// for TimeFrame, CDCL conflicts for Sat).
  long effort = 0;
};

/// Cumulative per-instance counters.  The generic block applies to every
/// backend; the sat_* block stays zero for non-SAT backends.
struct BackendStats {
  std::size_t targets = 0;
  std::size_t detected = 0;
  std::size_t untestable = 0;
  std::size_t aborted = 0;
  std::uint64_t effort = 0;  ///< summed BackendResult::effort

  std::uint64_t sat_conflicts = 0;
  std::uint64_t sat_decisions = 0;
  std::uint64_t sat_propagations = 0;
  std::uint64_t sat_learned = 0;
  /// Hybrid orchestration only: targets the SAT conflict budget aborted
  /// that were retried on the time-frame backend, and how many of those
  /// retries produced a candidate test.
  std::size_t fallback_targets = 0;
  std::size_t fallback_detected = 0;
  int cnf_vars = 0;            ///< solver variables after the last target
  std::size_t cnf_clauses = 0; ///< problem clauses after the last target
};

/// Construction-time parameters shared by every backend.
struct BackendConfig {
  /// Time frames of the unrolled model (>= 1).
  int frames = 1;
  /// TimeFrame: per-fault backtrack budget.
  int backtrack_limit = 64;
  /// Sat: per-fault CDCL conflict budget (<= 0: unbounded).
  std::int64_t conflict_budget = 20000;
  /// Sat: when non-empty, each target's CNF is dumped to
  /// `<dir>/<netlist>-<fault>.cnf` in DIMACS with a comment var map.
  std::string dump_cnf_dir;
};

class DeterministicBackend {
 public:
  virtual ~DeterministicBackend() = default;
  [[nodiscard]] virtual const char* name() const = 0;
  /// Attempts the target fault within the per-fault budget.
  [[nodiscard]] virtual BackendResult generate(const Fault& fault) = 0;
  [[nodiscard]] virtual const BackendStats& stats() const = 0;
};

using BackendFactory = std::function<std::unique_ptr<DeterministicBackend>(
    const gates::Netlist&, const BackendConfig&)>;

/// Registers `factory` under `name`, replacing any previous registration.
/// "timeframe" and "sat" are pre-registered.
void register_backend(const std::string& name, BackendFactory factory);

/// Registered backend names, sorted.
[[nodiscard]] std::vector<std::string> backend_names();

/// Instantiates a registered backend; throws hlts::Error(Input) for an
/// unknown name.
[[nodiscard]] std::unique_ptr<DeterministicBackend> make_backend(
    const std::string& name, const gates::Netlist& nl,
    const BackendConfig& config);

[[nodiscard]] inline std::unique_ptr<DeterministicBackend> make_backend(
    BackendKind kind, const gates::Netlist& nl, const BackendConfig& config) {
  return make_backend(backend_kind_name(kind), nl, config);
}

}  // namespace hlts::atpg
