// Structural Verilog netlist writer.
//
// Emits the gate-level netlist as primitive-instantiating Verilog so the
// synthesized designs (and their DFT variants) can be taken to external
// simulators/ATPG tools.  Pure structural output: one wire per gate, one
// primitive (or always_ff for DFFs) per gate.
#pragma once

#include <string>

#include "gates/netlist.hpp"

namespace hlts::gates {

/// Writes `nl` as a structural Verilog module named `module_name`.
[[nodiscard]] std::string to_structural_verilog(const Netlist& nl,
                                                const std::string& module_name);

}  // namespace hlts::gates
