// Netlist simplification: constant propagation, buffer collapsing,
// structural CSE and dead-logic sweeping.
//
// Naive bit-blasting leaves constant-fed gates everywhere (zero partial-
// product rows in the multiplier, zero carries into ripple chains, zero
// operand legs in steering networks).  A stuck-at fault on an always-
// constant net is undetectable by definition; commercial ATPG flows fold
// these away before fault-list generation, so we do the same -- otherwise
// fault coverage measures the bit-blaster instead of the design.
#pragma once

#include "gates/netlist.hpp"

namespace hlts::gates {

struct SimplifyResult {
  Netlist netlist;
  /// Old gate id -> new gate id (invalid if the gate was swept).
  IndexVec<GateId, GateId> remap;
};

/// Simplifies `in`.  Primary inputs are preserved in order (even if dead);
/// primary outputs are preserved in order; flip-flops are kept wherever
/// still live.
[[nodiscard]] SimplifyResult simplify(const Netlist& in);

}  // namespace hlts::gates
