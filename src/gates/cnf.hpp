// Netlist -> CNF time-frame lowering for the SAT ATPG backend.
//
// TimeFrameCnf unrolls a sequential gate netlist over k time frames into
// CNF for the util::cdcl solver, using the *same dual-rail (two-plane)
// three-valued encoding* as the wide fault simulator (atpg/wide_sim.hpp):
// every signal s in frame t is a pair of literals (one, zero) with
//
//   one=1,zero=0  ->  s = 1        one=0,zero=1  ->  s = 0
//   one=0,zero=0  ->  s = X        one=1,zero=1  ->  (unreachable)
//
// and every gate's plane equations are the simulator's equations verbatim
// (AND: v1 = AND of input one-planes, v0 = OR of input zero-planes; XOR:
// v1 = a1 b0 | a0 b1; MUX: v1 = s0 a1 | s1 b1 | a1 b1; ...).  Primary
// inputs are binary (one plane a free variable x, zero plane its negation),
// constants are fixed, flip-flops power up X in frame 0 (both planes false)
// and chain to their data input's planes of the previous frame, and the
// "reset" input -- when present -- is forced 1 in frame 0 and 0 afterwards,
// exactly the base state the time-frame PODEM uses.  Because the planes are
// then *functions* of the per-frame PI variables, every model corresponds
// to a concrete simulation run: a SAT model's extracted input sequence is
// confirmed by the fault simulator by construction, and UNSAT is a proof
// that no k-frame test from the X power-up state exists (the same frame
// bound the PODEM backend searches under).
//
// Faults are added incrementally on top of the one shared good-machine
// unrolling (the expensive part, encoded once in the constructor):
// add_fault() re-encodes only the fanout cone of the fault site -- within a
// frame combinationally, across frames through flip-flops -- against fresh
// variables, with the site's planes tied to the stuck value (the dual-rail
// form of fault injection: the simulator's sa-masks collapse to constants
// in a single-fault lane).  Detection terms ((good one & faulty zero) |
// (good zero & faulty one) at an observed output, the simulator's
// detection expression) feed one clause guarded by a fresh activation
// literal; the caller solves under that assumption and retires the fault
// with a unit clause afterwards, so learned clauses carry over from fault
// to fault.
//
// Variable numbering is stable and deterministic: good-machine planes are
// allocated frame-major in gate-id order, per-fault cone variables in
// frame-major levelized order, so identical inputs produce an identical
// CNF bit for bit (dump_dimacs emits it with a comment-line var map).
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "gates/netlist.hpp"
#include "util/cdcl.hpp"

namespace hlts::gates {

class TimeFrameCnf {
 public:
  /// Encodes the good-machine unrolling of `nl` over `frames` >= 1 frames.
  /// `reset_index` is the PI position forced 1-then-0 (-1: no reset input).
  TimeFrameCnf(const Netlist& nl, int frames, int reset_index = -1);

  [[nodiscard]] util::cdcl::Solver& solver() { return solver_; }
  [[nodiscard]] const util::cdcl::Solver& solver() const { return solver_; }
  [[nodiscard]] int frames() const { return frames_; }

  /// Encodes the faulty cone + guarded detection clause for a stuck-at
  /// fault on `site`'s output.  Returns the activation literal: solve under
  /// {act} to search for a test, Unsat under {act} proves the fault has no
  /// k-frame test.  A structurally unobservable cone yields an activation
  /// literal that is immediately refutable (clause [~act]).
  util::cdcl::Lit add_fault(GateId site, bool stuck_at_one);

  /// Permanently deactivates a fault's detection clause so later solves
  /// are not burdened by it.  (Its cone definitions stay; they are
  /// satisfiable definitions of otherwise-unconstrained variables.)
  void retire_fault(util::cdcl::Lit act);

  /// After solver().solve({act}) returned Sat: the per-frame PI vectors of
  /// the model, in TestSequence shape (frames x num_inputs).
  [[nodiscard]] std::vector<std::vector<bool>> extract_sequence() const;

  /// Good-machine plane literals of gate `g` in `frame` (for tests and the
  /// var-map dump).
  [[nodiscard]] util::cdcl::Lit one_lit(GateId g, int frame) const;
  [[nodiscard]] util::cdcl::Lit zero_lit(GateId g, int frame) const;

  /// Writes the current clause set in DIMACS format, prefixed by a
  /// comment-line variable map ("c v <dimacs-var> <role>") and -- when
  /// `assume` is a real literal -- the assumption the solve ran under.
  void dump_dimacs(std::ostream& os,
                   util::cdcl::Lit assume = util::cdcl::Lit()) const;

 private:
  using Lit = util::cdcl::Lit;

  [[nodiscard]] std::size_t slot(GateId g, int frame) const {
    return static_cast<std::size_t>(frame) * nl_.num_gates() + g.index();
  }
  Lit fresh(std::string note);
  [[nodiscard]] Lit make_and(std::vector<Lit> lits);
  [[nodiscard]] Lit make_or(std::vector<Lit> lits);
  /// Encodes one combinational gate's planes from the given input planes.
  void encode_gate(const Gate& gate, const std::vector<Lit>& in_one,
                   const std::vector<Lit>& in_zero, Lit& out_one,
                   Lit& out_zero);

  const Netlist& nl_;
  int frames_;
  int reset_index_;
  util::cdcl::Solver solver_;
  Lit true_lit_;  ///< a literal fixed true (its negation is fixed false)

  // Good-machine plane literals, indexed by slot(g, frame).
  std::vector<Lit> good_one_;
  std::vector<Lit> good_zero_;

  // Scratch for add_fault: faulty plane literals of the *current* fault
  // (slot-indexed, defaulting to the good literals) plus the cone marks.
  std::vector<Lit> faulty_one_;
  std::vector<Lit> faulty_zero_;
  std::vector<std::uint8_t> in_cone_;

  // The PI sequence literals of the last encoded machine, for extraction.
  std::string note_context_;
  std::vector<std::string> var_notes_;  ///< per solver var, for the dump
};

}  // namespace hlts::gates
