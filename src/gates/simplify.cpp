#include "gates/simplify.hpp"

#include <algorithm>
#include <deque>
#include <map>

#include "util/error.hpp"

namespace hlts::gates {

namespace {

/// Constant lattice: Bottom (unreached) < {Zero, One} < Top (varies).
enum class CV : unsigned char { Bottom, Zero, One, Top };

CV cv_join(CV a, CV b) {
  if (a == CV::Bottom) return b;
  if (b == CV::Bottom) return a;
  if (a == b) return a;
  return CV::Top;
}

CV cv_not(CV a) {
  switch (a) {
    case CV::Zero: return CV::One;
    case CV::One: return CV::Zero;
    default: return a;
  }
}

/// Whole-netlist constant analysis to fixpoint, treating every DFF as
/// powering up at zero (matching the simulator and PODEM).
IndexVec<GateId, CV> constant_analysis(const Netlist& nl) {
  IndexVec<GateId, CV> value(nl.num_gates(), CV::Bottom);
  bool changed = true;
  while (changed) {
    changed = false;
    for (GateId id : nl.gate_ids()) {
      const Gate& g = nl.gate(id);
      CV v = CV::Bottom;
      auto in = [&](std::size_t i) { return value[g.inputs[i]]; };
      switch (g.kind) {
        case GateKind::Input:
          v = CV::Top;
          break;
        case GateKind::Const0:
          v = CV::Zero;
          break;
        case GateKind::Const1:
          v = CV::One;
          break;
        case GateKind::Dff:
          // Flip-flops power up unknown (X), so a DFF is never a constant
          // even when its data input is.
          v = CV::Top;
          break;
        case GateKind::Buf:
        case GateKind::Output:
          v = in(0);
          break;
        case GateKind::Not:
          v = cv_not(in(0));
          break;
        case GateKind::And:
        case GateKind::Nand: {
          v = CV::One;
          for (std::size_t i = 0; i < g.inputs.size(); ++i) {
            CV x = in(i);
            if (x == CV::Zero) {
              v = CV::Zero;
              break;
            }
            if (x == CV::Bottom) v = CV::Bottom;
            if (x == CV::Top && v != CV::Bottom) v = CV::Top;
          }
          if (v == CV::Top) {
            // refine: all-One means One
            bool all_one = true;
            for (std::size_t i = 0; i < g.inputs.size(); ++i) {
              if (in(i) != CV::One) all_one = false;
            }
            if (all_one) v = CV::One;
          }
          if (g.kind == GateKind::Nand) v = cv_not(v);
          break;
        }
        case GateKind::Or:
        case GateKind::Nor: {
          v = CV::Zero;
          for (std::size_t i = 0; i < g.inputs.size(); ++i) {
            CV x = in(i);
            if (x == CV::One) {
              v = CV::One;
              break;
            }
            if (x == CV::Bottom) v = CV::Bottom;
            if (x == CV::Top && v != CV::Bottom) v = CV::Top;
          }
          if (g.kind == GateKind::Nor) v = cv_not(v);
          break;
        }
        case GateKind::Xor:
        case GateKind::Xnor: {
          CV a = in(0);
          CV b = in(1);
          if (a == CV::Bottom || b == CV::Bottom) {
            v = CV::Bottom;
          } else if (a == CV::Top || b == CV::Top) {
            v = CV::Top;
          } else {
            v = (a == b) ? CV::Zero : CV::One;
          }
          if (g.kind == GateKind::Xnor) v = cv_not(v);
          break;
        }
        case GateKind::Mux: {
          CV s = in(0);
          CV a = in(1);
          CV b = in(2);
          if (s == CV::Zero) {
            v = a;
          } else if (s == CV::One) {
            v = b;
          } else if (s == CV::Bottom) {
            v = CV::Bottom;
          } else {
            v = cv_join(a, b);
          }
          break;
        }
      }
      if (v != value[id]) {
        value[id] = v;
        changed = true;
      }
    }
  }
  return value;
}

/// Gate construction with local algebraic folding and structural CSE.
class Builder {
 public:
  explicit Builder(Netlist& nl) : nl_(nl) {}

  GateId c0() { return nl_.const0(); }
  GateId c1() { return nl_.const1(); }

  bool is_c0(GateId g) const { return nl_.gate(g).kind == GateKind::Const0; }
  bool is_c1(GateId g) const { return nl_.gate(g).kind == GateKind::Const1; }

  GateId mk_not(GateId a) {
    if (is_c0(a)) return c1();
    if (is_c1(a)) return c0();
    if (nl_.gate(a).kind == GateKind::Not) return nl_.gate(a).inputs[0];
    return cse(GateKind::Not, {a});
  }

  GateId mk_nary(GateKind kind, std::vector<GateId> ins) {
    const bool is_and = kind == GateKind::And || kind == GateKind::Nand;
    const bool invert = kind == GateKind::Nand || kind == GateKind::Nor;
    const GateId absorbing = is_and ? c0() : c1();
    const GateId identity = is_and ? c1() : c0();

    std::vector<GateId> keep;
    for (GateId g : ins) {
      if (g == absorbing) return invert ? mk_not(absorbing) : absorbing;
      if (g == identity) continue;
      keep.push_back(g);
    }
    std::sort(keep.begin(), keep.end());
    keep.erase(std::unique(keep.begin(), keep.end()), keep.end());
    // x & ~x = 0;  x | ~x = 1.
    for (GateId g : keep) {
      if (nl_.gate(g).kind == GateKind::Not) {
        GateId inner = nl_.gate(g).inputs[0];
        if (std::binary_search(keep.begin(), keep.end(), inner)) {
          return invert ? mk_not(absorbing) : absorbing;
        }
      }
    }
    if (keep.empty()) return invert ? mk_not(identity) : identity;
    if (keep.size() == 1) return invert ? mk_not(keep[0]) : keep[0];
    return cse(is_and ? GateKind::And : GateKind::Or, keep, invert);
  }

  GateId mk_xor(GateId a, GateId b, bool invert) {
    if (a == b) return invert ? c1() : c0();
    if (is_c0(a)) return invert ? mk_not(b) : b;
    if (is_c0(b)) return invert ? mk_not(a) : a;
    if (is_c1(a)) return invert ? b : mk_not(b);
    if (is_c1(b)) return invert ? a : mk_not(a);
    if (a > b) std::swap(a, b);
    return cse(invert ? GateKind::Xnor : GateKind::Xor, {a, b});
  }

  GateId mk_mux(GateId s, GateId a, GateId b) {
    if (is_c0(s)) return a;
    if (is_c1(s)) return b;
    if (a == b) return a;
    if (is_c0(a) && is_c1(b)) return s;
    if (is_c1(a) && is_c0(b)) return mk_not(s);
    if (is_c0(a)) return mk_nary(GateKind::And, {s, b});
    if (is_c1(b)) return mk_nary(GateKind::Or, {s, a});
    return cse(GateKind::Mux, {s, a, b});
  }

 private:
  GateId cse(GateKind kind, std::vector<GateId> ins, bool invert = false) {
    auto key = std::make_pair(kind, ins);
    auto it = memo_.find(key);
    GateId out;
    if (it != memo_.end()) {
      out = it->second;
    } else {
      out = nl_.add_gate(kind, ins);
      memo_.emplace(std::move(key), out);
    }
    return invert ? mk_not(out) : out;
  }

  Netlist& nl_;
  std::map<std::pair<GateKind, std::vector<GateId>>, GateId> memo_;
};

/// Liveness: outputs are live; a live DFF makes its data cone live.
IndexVec<GateId, bool> liveness(const Netlist& nl) {
  IndexVec<GateId, bool> live(nl.num_gates(), false);
  std::deque<GateId> queue;
  auto mark = [&](GateId g) {
    if (!live[g]) {
      live[g] = true;
      queue.push_back(g);
    }
  };
  for (GateId o : nl.outputs()) mark(o);
  while (!queue.empty()) {
    GateId g = queue.front();
    queue.pop_front();
    for (GateId in : nl.gate(g).inputs) mark(in);
  }
  return live;
}

}  // namespace

SimplifyResult simplify(const Netlist& in) {
  in.validate();
  const IndexVec<GateId, CV> cv = constant_analysis(in);

  // --- pass 1: folded rebuild -----------------------------------------------
  Netlist folded(in.name());
  Builder build(folded);
  IndexVec<GateId, GateId> map1(in.num_gates());

  // Primary inputs first (order preserved).
  for (GateId g : in.inputs()) {
    map1[g] = folded.add_input(in.gate(g).name);
  }
  // Constant sources.
  for (GateId g : in.gate_ids()) {
    if (in.gate(g).kind == GateKind::Const0) map1[g] = build.c0();
    if (in.gate(g).kind == GateKind::Const1) map1[g] = build.c1();
  }
  // Non-constant DFF shells.
  for (GateId g : in.dffs()) {
    if (cv[g] == CV::Zero || cv[g] == CV::One) {
      map1[g] = cv[g] == CV::Zero ? build.c0() : build.c1();
    } else {
      map1[g] = folded.add_dff(in.gate(g).name);
    }
  }
  // Combinational gates in level order.
  for (GateId g : in.levelized()) {
    const Gate& gate = in.gate(g);
    if (gate.kind == GateKind::Output) continue;  // handled last
    if (cv[g] == CV::Zero) {
      map1[g] = build.c0();
      continue;
    }
    if (cv[g] == CV::One) {
      map1[g] = build.c1();
      continue;
    }
    std::vector<GateId> ins;
    for (GateId i : gate.inputs) ins.push_back(map1[i]);
    switch (gate.kind) {
      case GateKind::Buf:
        map1[g] = ins[0];
        break;
      case GateKind::Not:
        map1[g] = build.mk_not(ins[0]);
        break;
      case GateKind::And:
      case GateKind::Or:
        map1[g] = build.mk_nary(gate.kind, ins);
        break;
      case GateKind::Nand:
        map1[g] = build.mk_not(build.mk_nary(GateKind::And, ins));
        break;
      case GateKind::Nor:
        map1[g] = build.mk_not(build.mk_nary(GateKind::Or, ins));
        break;
      case GateKind::Xor:
        map1[g] = build.mk_xor(ins[0], ins[1], false);
        break;
      case GateKind::Xnor:
        map1[g] = build.mk_xor(ins[0], ins[1], true);
        break;
      case GateKind::Mux:
        map1[g] = build.mk_mux(ins[0], ins[1], ins[2]);
        break;
      default:
        throw Error("simplify: unexpected combinational gate", ErrorKind::Internal);
    }
  }
  // Constant-valued gates that never appeared in the levelized order (e.g.
  // constant sources) are already mapped; connect DFFs.
  for (GateId g : in.dffs()) {
    if (folded.gate(map1[g]).kind == GateKind::Dff) {
      folded.connect_dff(map1[g], map1[in.gate(g).inputs[0]]);
    }
  }
  for (GateId g : in.outputs()) {
    map1[g] = folded.add_output(map1[in.gate(g).inputs[0]], in.gate(g).name);
  }

  // --- pass 2: dead-logic sweep ----------------------------------------------
  const IndexVec<GateId, bool> live = liveness(folded);
  SimplifyResult result;
  result.netlist = Netlist(in.name());
  Netlist& out = result.netlist;
  IndexVec<GateId, GateId> map2(folded.num_gates());

  for (GateId g : folded.inputs()) {
    map2[g] = out.add_input(folded.gate(g).name);  // PIs always survive
  }
  for (GateId g : folded.dffs()) {
    if (live[g]) map2[g] = out.add_dff(folded.gate(g).name);
  }
  for (GateId g : folded.gate_ids()) {
    const Gate& gate = folded.gate(g);
    if (gate.kind == GateKind::Const0 && live[g]) map2[g] = out.const0();
    if (gate.kind == GateKind::Const1 && live[g]) map2[g] = out.const1();
  }
  for (GateId g : folded.levelized()) {
    if (!live[g]) continue;
    const Gate& gate = folded.gate(g);
    if (gate.kind == GateKind::Output) continue;
    std::vector<GateId> ins;
    for (GateId i : gate.inputs) ins.push_back(map2[i]);
    map2[g] = out.add_gate(gate.kind, ins, gate.name);
  }
  for (GateId g : folded.dffs()) {
    if (live[g]) out.connect_dff(map2[g], map2[folded.gate(g).inputs[0]]);
  }
  for (GateId g : folded.outputs()) {
    map2[g] = out.add_output(map2[folded.gate(g).inputs[0]], folded.gate(g).name);
  }

  // Compose the remap.
  result.remap.resize(in.num_gates());
  for (GateId g : in.gate_ids()) {
    GateId mid = map1[g];
    result.remap[g] = mid.valid() && live.raw().size() > mid.index() &&
                              live[mid] && map2[mid].valid()
                          ? map2[mid]
                          : GateId::invalid();
  }
  out.validate();
  return result;
}

}  // namespace hlts::gates
