// Gate-level netlist: the substrate the ATPG engine works on.
//
// The paper evaluated its synthesized data paths with a commercial
// (MentorGraphics) gate-level ATPG; we elaborate the RTL designs into this
// netlist and run the in-repo ATPG instead (DESIGN.md §2).
//
// Primitives: standard cells (BUF/NOT/AND/OR/NAND/NOR/XOR/XNOR), a 2:1 MUX
// (inputs: sel, a, b -> sel ? b : a), D flip-flops with synchronous reset-
// to-zero, constants, primary inputs and primary outputs.
#pragma once

#include <string>
#include <vector>

#include "util/ids.hpp"

namespace hlts::gates {

struct GateTag {};
using GateId = Id<GateTag>;

enum class GateKind {
  Input,   ///< primary input (no gate inputs)
  Output,  ///< primary output (one input; transparent)
  Const0,
  Const1,
  Buf,
  Not,
  And,
  Or,
  Nand,
  Nor,
  Xor,
  Xnor,
  Mux,  ///< inputs[0]=sel, inputs[1]=a (sel==0), inputs[2]=b (sel==1)
  Dff,  ///< inputs[0]=d; output is the state; synchronous reset to 0
};

[[nodiscard]] const char* gate_kind_name(GateKind kind);
/// Number of inputs the kind requires; -1 for variadic (And/Or/Nand/Nor
/// accept >= 2, Xor/Xnor exactly 2).
[[nodiscard]] int gate_arity(GateKind kind);

struct Gate {
  GateKind kind = GateKind::Buf;
  std::string name;
  std::vector<GateId> inputs;
  std::vector<GateId> fanouts;  ///< gates reading this gate's output
};

class Netlist {
 public:
  explicit Netlist(std::string name = "netlist") : name_(std::move(name)) {}

  /// --- construction -------------------------------------------------------

  GateId add_input(const std::string& name);
  GateId add_output(GateId src, const std::string& name);
  GateId add_gate(GateKind kind, const std::vector<GateId>& inputs,
                  const std::string& name = "");
  /// Creates a DFF whose data input is connected later (registers in a data
  /// path form cycles through combinational logic).
  GateId add_dff(const std::string& name = "");
  void connect_dff(GateId dff, GateId d);

  [[nodiscard]] GateId const0();
  [[nodiscard]] GateId const1();

  /// --- queries ------------------------------------------------------------

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::size_t num_gates() const { return gates_.size(); }
  [[nodiscard]] const Gate& gate(GateId id) const { return gates_[id]; }
  [[nodiscard]] IdRange<GateId> gate_ids() const {
    return id_range<GateId>(gates_.size());
  }
  [[nodiscard]] const std::vector<GateId>& inputs() const { return inputs_; }
  [[nodiscard]] const std::vector<GateId>& outputs() const { return outputs_; }
  [[nodiscard]] const std::vector<GateId>& dffs() const { return dffs_; }

  /// Topological order of the combinational gates (DFF/Input/Const outputs
  /// are sources; DFF data inputs and Outputs are sinks).  Throws on
  /// combinational cycles.  Cached after the first call; construction after
  /// levelization invalidates the cache.
  [[nodiscard]] const std::vector<GateId>& levelized() const;

  struct Stats {
    std::size_t gates = 0;        ///< total, including IO/const
    std::size_t combinational = 0;
    std::size_t flip_flops = 0;
    std::size_t primary_inputs = 0;
    std::size_t primary_outputs = 0;
  };
  [[nodiscard]] Stats stats() const;

  /// Every DFF connected, arities correct, no combinational cycles.
  void validate() const;

 private:
  std::string name_;
  IndexVec<GateId, Gate> gates_;
  std::vector<GateId> inputs_;
  std::vector<GateId> outputs_;
  std::vector<GateId> dffs_;
  GateId const0_;
  GateId const1_;
  mutable std::vector<GateId> levelized_;
};

}  // namespace hlts::gates
