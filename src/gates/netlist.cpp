#include "gates/netlist.hpp"

#include <algorithm>
#include <deque>

#include "util/error.hpp"

namespace hlts::gates {

const char* gate_kind_name(GateKind kind) {
  switch (kind) {
    case GateKind::Input: return "input";
    case GateKind::Output: return "output";
    case GateKind::Const0: return "const0";
    case GateKind::Const1: return "const1";
    case GateKind::Buf: return "buf";
    case GateKind::Not: return "not";
    case GateKind::And: return "and";
    case GateKind::Or: return "or";
    case GateKind::Nand: return "nand";
    case GateKind::Nor: return "nor";
    case GateKind::Xor: return "xor";
    case GateKind::Xnor: return "xnor";
    case GateKind::Mux: return "mux";
    case GateKind::Dff: return "dff";
  }
  return "?";
}

int gate_arity(GateKind kind) {
  switch (kind) {
    case GateKind::Input:
    case GateKind::Const0:
    case GateKind::Const1:
      return 0;
    case GateKind::Output:
    case GateKind::Buf:
    case GateKind::Not:
    case GateKind::Dff:
      return 1;
    case GateKind::Xor:
    case GateKind::Xnor:
      return 2;
    case GateKind::Mux:
      return 3;
    case GateKind::And:
    case GateKind::Or:
    case GateKind::Nand:
    case GateKind::Nor:
      return -1;  // variadic, >= 2
  }
  return -1;
}

GateId Netlist::add_input(const std::string& name) {
  GateId id = add_gate(GateKind::Input, {}, name);
  inputs_.push_back(id);
  return id;
}

GateId Netlist::add_output(GateId src, const std::string& name) {
  GateId id = add_gate(GateKind::Output, {src}, name);
  outputs_.push_back(id);
  return id;
}

GateId Netlist::add_gate(GateKind kind, const std::vector<GateId>& inputs,
                         const std::string& name) {
  const int arity = gate_arity(kind);
  if (arity >= 0) {
    HLTS_REQUIRE(static_cast<int>(inputs.size()) == arity,
                 std::string("gate arity mismatch for ") + gate_kind_name(kind));
  } else {
    HLTS_REQUIRE(inputs.size() >= 2, "variadic gate needs >= 2 inputs");
  }
  for (GateId in : inputs) {
    HLTS_REQUIRE(gates_.contains(in), "gate input id out of range");
  }
  Gate g;
  g.kind = kind;
  g.name = name;
  g.inputs = inputs;
  GateId id = gates_.push_back(std::move(g));
  for (GateId in : inputs) gates_[in].fanouts.push_back(id);
  if (kind == GateKind::Dff) dffs_.push_back(id);
  levelized_.clear();
  return id;
}

GateId Netlist::add_dff(const std::string& name) {
  Gate g;
  g.kind = GateKind::Dff;
  g.name = name;
  GateId id = gates_.push_back(std::move(g));
  dffs_.push_back(id);
  levelized_.clear();
  return id;
}

void Netlist::connect_dff(GateId dff, GateId d) {
  HLTS_REQUIRE(gates_[dff].kind == GateKind::Dff, "connect_dff on non-DFF");
  HLTS_REQUIRE(gates_[dff].inputs.empty(), "DFF already connected");
  gates_[dff].inputs.push_back(d);
  gates_[d].fanouts.push_back(dff);
  levelized_.clear();
}

GateId Netlist::const0() {
  if (!const0_.valid()) const0_ = add_gate(GateKind::Const0, {}, "tie0");
  return const0_;
}

GateId Netlist::const1() {
  if (!const1_.valid()) const1_ = add_gate(GateKind::Const1, {}, "tie1");
  return const1_;
}

const std::vector<GateId>& Netlist::levelized() const {
  if (!levelized_.empty() || gates_.empty()) return levelized_;
  // Kahn over combinational edges only: a DFF's output is a source, its
  // data input a sink.
  std::vector<int> pending(gates_.size(), 0);
  std::size_t comb_count = 0;
  for (GateId id : gate_ids()) {
    const Gate& g = gates_[id];
    if (g.kind == GateKind::Input || g.kind == GateKind::Const0 ||
        g.kind == GateKind::Const1 || g.kind == GateKind::Dff) {
      continue;  // sources: not part of the combinational order
    }
    ++comb_count;
    pending[id.index()] = static_cast<int>(g.inputs.size());
  }
  std::deque<GateId> ready;
  for (GateId id : gate_ids()) {
    const Gate& g = gates_[id];
    const bool source = g.kind == GateKind::Input ||
                        g.kind == GateKind::Const0 ||
                        g.kind == GateKind::Const1 || g.kind == GateKind::Dff;
    if (source) {
      for (GateId f : g.fanouts) {
        if (gates_[f].kind != GateKind::Dff && --pending[f.index()] == 0) {
          ready.push_back(f);
        }
      }
    } else if (g.inputs.empty()) {
      ready.push_back(id);
    }
  }
  while (!ready.empty()) {
    GateId id = ready.front();
    ready.pop_front();
    levelized_.push_back(id);
    for (GateId f : gates_[id].fanouts) {
      if (gates_[f].kind != GateKind::Dff && --pending[f.index()] == 0) {
        ready.push_back(f);
      }
    }
  }
  HLTS_REQUIRE(levelized_.size() == comb_count,
               "netlist has a combinational cycle");
  return levelized_;
}

Netlist::Stats Netlist::stats() const {
  Stats s;
  s.gates = gates_.size();
  s.flip_flops = dffs_.size();
  s.primary_inputs = inputs_.size();
  s.primary_outputs = outputs_.size();
  for (GateId id : gate_ids()) {
    switch (gates_[id].kind) {
      case GateKind::Input:
      case GateKind::Output:
      case GateKind::Const0:
      case GateKind::Const1:
      case GateKind::Dff:
        break;
      default:
        ++s.combinational;
    }
  }
  return s;
}

void Netlist::validate() const {
  for (GateId id : gate_ids()) {
    const Gate& g = gates_[id];
    if (g.kind == GateKind::Dff) {
      HLTS_REQUIRE(g.inputs.size() == 1,
                   "DFF " + g.name + " left unconnected");
    }
  }
  (void)levelized();  // throws on combinational cycles
}

}  // namespace hlts::gates
