#include "gates/cnf.hpp"

#include <algorithm>
#include <deque>
#include <utility>

#include "util/error.hpp"

namespace hlts::gates {

using util::cdcl::Lit;
using util::cdcl::Var;

TimeFrameCnf::TimeFrameCnf(const Netlist& nl, int frames, int reset_index)
    : nl_(nl), frames_(frames), reset_index_(reset_index) {
  HLTS_REQUIRE_INPUT(frames >= 1, "cnf: need at least one time frame");
  HLTS_REQUIRE_INPUT(
      reset_index < static_cast<int>(nl.inputs().size()),
      "cnf: reset index out of range");
  nl.validate();

  // A shared constant-true literal; constants and stuck values reuse it.
  note_context_ = "const";
  true_lit_ = fresh("true");
  solver_.add_clause(true_lit_);
  const Lit false_lit = ~true_lit_;

  const std::size_t slots =
      static_cast<std::size_t>(frames) * nl.num_gates();
  good_one_.assign(slots, false_lit);
  good_zero_.assign(slots, false_lit);
  faulty_one_.assign(slots, false_lit);
  faulty_zero_.assign(slots, false_lit);
  in_cone_.assign(slots, 0);

  // Good machine, frame-major.  Mirrors WideSimulator<W>::step exactly:
  // sources first (PIs binary, constants fixed, DFFs chained / X at power
  // up), then the combinational gates in levelized order.
  for (int t = 0; t < frames_; ++t) {
    const std::string frame_tag = "f" + std::to_string(t);
    for (std::size_t i = 0; i < nl.inputs().size(); ++i) {
      const GateId g = nl.inputs()[i];
      note_context_ = frame_tag + ":pi:" + nl.gate(g).name;
      const Lit x = fresh("value");
      good_one_[slot(g, t)] = x;
      good_zero_[slot(g, t)] = ~x;
      if (static_cast<int>(i) == reset_index_) {
        // Forced base state: reset high in frame 0, low afterwards.
        solver_.add_clause(t == 0 ? x : ~x);
      }
    }
    for (const GateId g : nl.gate_ids()) {
      const GateKind kind = nl.gate(g).kind;
      if (kind == GateKind::Const0) {
        good_one_[slot(g, t)] = false_lit;
        good_zero_[slot(g, t)] = true_lit_;
      } else if (kind == GateKind::Const1) {
        good_one_[slot(g, t)] = true_lit_;
        good_zero_[slot(g, t)] = false_lit;
      }
    }
    for (const GateId d : nl.dffs()) {
      if (t == 0) {
        // Power-up X: neither plane set.
        good_one_[slot(d, 0)] = false_lit;
        good_zero_[slot(d, 0)] = false_lit;
      } else {
        const GateId src = nl.gate(d).inputs[0];
        good_one_[slot(d, t)] = good_one_[slot(src, t - 1)];
        good_zero_[slot(d, t)] = good_zero_[slot(src, t - 1)];
      }
    }
    for (const GateId g : nl.levelized()) {
      const Gate& gate = nl.gate(g);
      note_context_ = frame_tag + ":" + gate_kind_name(gate.kind) + ":" +
                      (gate.name.empty() ? std::to_string(g.index())
                                         : gate.name);
      std::vector<Lit> in_one;
      std::vector<Lit> in_zero;
      in_one.reserve(gate.inputs.size());
      in_zero.reserve(gate.inputs.size());
      for (const GateId in : gate.inputs) {
        in_one.push_back(good_one_[slot(in, t)]);
        in_zero.push_back(good_zero_[slot(in, t)]);
      }
      encode_gate(gate, in_one, in_zero, good_one_[slot(g, t)],
                  good_zero_[slot(g, t)]);
    }
  }
}

Lit TimeFrameCnf::fresh(std::string note) {
  const Var v = solver_.new_var();
  var_notes_.push_back(note_context_ + ":" + std::move(note));
  return util::cdcl::mk_lit(v);
}

Lit TimeFrameCnf::make_and(std::vector<Lit> lits) {
  // Constant folding keeps the unrolling small: Const0/Const1 gates and
  // stuck fault sites feed fixed literals into half the plane equations.
  std::vector<Lit> kept;
  kept.reserve(lits.size());
  for (const Lit l : lits) {
    if (l == true_lit_) continue;
    if (l == ~true_lit_) return ~true_lit_;
    kept.push_back(l);
  }
  if (kept.empty()) return true_lit_;
  if (kept.size() == 1) return kept[0];
  const Lit y = fresh("and");
  std::vector<Lit> big;
  big.reserve(kept.size() + 1);
  big.push_back(y);
  for (const Lit l : kept) {
    solver_.add_clause(~y, l);  // y -> l
    big.push_back(~l);
  }
  solver_.add_clause(big);  // (AND of l) -> y
  return y;
}

Lit TimeFrameCnf::make_or(std::vector<Lit> lits) {
  for (Lit& l : lits) l = ~l;
  return ~make_and(std::move(lits));
}

void TimeFrameCnf::encode_gate(const Gate& gate,
                               const std::vector<Lit>& in_one,
                               const std::vector<Lit>& in_zero, Lit& out_one,
                               Lit& out_zero) {
  switch (gate.kind) {
    case GateKind::Buf:
    case GateKind::Output:
      out_one = in_one[0];
      out_zero = in_zero[0];
      break;
    case GateKind::Not:
      out_one = in_zero[0];
      out_zero = in_one[0];
      break;
    case GateKind::And:
    case GateKind::Nand: {
      Lit v1 = make_and(in_one);
      Lit v0 = make_or(in_zero);
      if (gate.kind == GateKind::Nand) std::swap(v1, v0);
      out_one = v1;
      out_zero = v0;
      break;
    }
    case GateKind::Or:
    case GateKind::Nor: {
      Lit v1 = make_or(in_one);
      Lit v0 = make_and(in_zero);
      if (gate.kind == GateKind::Nor) std::swap(v1, v0);
      out_one = v1;
      out_zero = v0;
      break;
    }
    case GateKind::Xor:
    case GateKind::Xnor: {
      const Lit a1 = in_one[0];
      const Lit a0 = in_zero[0];
      const Lit b1 = in_one[1];
      const Lit b0 = in_zero[1];
      Lit v1 = make_or({make_and({a1, b0}), make_and({a0, b1})});
      Lit v0 = make_or({make_and({a1, b1}), make_and({a0, b0})});
      if (gate.kind == GateKind::Xnor) std::swap(v1, v0);
      out_one = v1;
      out_zero = v0;
      break;
    }
    case GateKind::Mux: {
      const Lit s1 = in_one[0];
      const Lit s0 = in_zero[0];
      const Lit a1 = in_one[1];
      const Lit a0 = in_zero[1];
      const Lit b1 = in_one[2];
      const Lit b0 = in_zero[2];
      out_one = make_or(
          {make_and({s0, a1}), make_and({s1, b1}), make_and({a1, b1})});
      out_zero = make_or(
          {make_and({s0, a0}), make_and({s1, b0}), make_and({a0, b0})});
      break;
    }
    default:
      HLTS_REQUIRE(false, "cnf: source gate reached combinational encoding");
  }
}

Lit TimeFrameCnf::add_fault(GateId site, bool stuck_at_one) {
  HLTS_REQUIRE_INPUT(site.index() < nl_.num_gates(),
                     "cnf: fault site out of range");
  const std::string fault_tag =
      std::string("fault:") +
      (nl_.gate(site).name.empty() ? std::to_string(site.index())
                                   : nl_.gate(site).name) +
      (stuck_at_one ? ":sa1" : ":sa0");

  // Fanout cone of the (permanent) fault: the site in every frame, closed
  // combinationally within a frame and through DFFs into the next frame.
  std::fill(in_cone_.begin(), in_cone_.end(), 0);
  std::deque<std::pair<int, GateId>> work;
  for (int t = 0; t < frames_; ++t) {
    in_cone_[slot(site, t)] = 1;
    work.emplace_back(t, site);
  }
  while (!work.empty()) {
    const auto [t, g] = work.front();
    work.pop_front();
    for (const GateId out : nl_.gate(g).fanouts) {
      const bool through_dff = nl_.gate(out).kind == GateKind::Dff;
      const int ot = through_dff ? t + 1 : t;
      if (ot >= frames_) continue;
      if (in_cone_[slot(out, ot)] != 0) continue;
      in_cone_[slot(out, ot)] = 1;
      work.emplace_back(ot, out);
    }
  }

  // Faulty planes: default to the good literals, override inside the cone.
  // The site itself is tied to the stuck value -- the dual-rail image of
  // the simulator's sa-mask (one = (one|s1)&~s0 collapses to a constant).
  faulty_one_ = good_one_;
  faulty_zero_ = good_zero_;
  const Lit false_lit = ~true_lit_;
  const Lit stuck_one = stuck_at_one ? true_lit_ : false_lit;
  const Lit stuck_zero = stuck_at_one ? false_lit : true_lit_;
  for (int t = 0; t < frames_; ++t) {
    const std::string frame_tag = fault_tag + ":f" + std::to_string(t);
    for (const GateId d : nl_.dffs()) {
      if (d == site || t == 0 || in_cone_[slot(d, t)] == 0) continue;
      const GateId src = nl_.gate(d).inputs[0];
      faulty_one_[slot(d, t)] = faulty_one_[slot(src, t - 1)];
      faulty_zero_[slot(d, t)] = faulty_zero_[slot(src, t - 1)];
    }
    faulty_one_[slot(site, t)] = stuck_one;
    faulty_zero_[slot(site, t)] = stuck_zero;
    for (const GateId g : nl_.levelized()) {
      if (g == site || in_cone_[slot(g, t)] == 0) continue;
      const Gate& gate = nl_.gate(g);
      note_context_ = frame_tag + ":" + gate_kind_name(gate.kind) + ":" +
                      (gate.name.empty() ? std::to_string(g.index())
                                         : gate.name);
      std::vector<Lit> in_one;
      std::vector<Lit> in_zero;
      in_one.reserve(gate.inputs.size());
      in_zero.reserve(gate.inputs.size());
      for (const GateId in : gate.inputs) {
        in_one.push_back(faulty_one_[slot(in, t)]);
        in_zero.push_back(faulty_zero_[slot(in, t)]);
      }
      encode_gate(gate, in_one, in_zero, faulty_one_[slot(g, t)],
                  faulty_zero_[slot(g, t)]);
    }
  }

  // Detection: some observed output differs with a binary good value --
  // (good1 & faulty0) | (good0 & faulty1), the simulator's expression.
  // Only cone outputs can differ; everything else aliases the good planes.
  note_context_ = fault_tag + ":detect";
  std::vector<Lit> detect;
  for (int t = 0; t < frames_; ++t) {
    for (const GateId o : nl_.outputs()) {
      if (in_cone_[slot(o, t)] == 0) continue;
      const Lit g1 = good_one_[slot(o, t)];
      const Lit g0 = good_zero_[slot(o, t)];
      const Lit f1 = faulty_one_[slot(o, t)];
      const Lit f0 = faulty_zero_[slot(o, t)];
      const Lit d = make_or({make_and({g1, f0}), make_and({g0, f1})});
      if (d == ~true_lit_) continue;
      detect.push_back(d);
    }
  }
  const Lit act = fresh("act");
  std::vector<Lit> clause;
  clause.reserve(detect.size() + 1);
  clause.push_back(~act);
  for (const Lit d : detect) clause.push_back(d);
  solver_.add_clause(clause);  // act -> some output differs somewhere
  return act;
}

void TimeFrameCnf::retire_fault(Lit act) { solver_.add_clause(~act); }

std::vector<std::vector<bool>> TimeFrameCnf::extract_sequence() const {
  std::vector<std::vector<bool>> seq;
  seq.reserve(static_cast<std::size_t>(frames_));
  for (int t = 0; t < frames_; ++t) {
    std::vector<bool> v(nl_.inputs().size(), false);
    for (std::size_t i = 0; i < nl_.inputs().size(); ++i) {
      v[i] = solver_.model_true(good_one_[slot(nl_.inputs()[i], t)]);
    }
    seq.push_back(std::move(v));
  }
  return seq;
}

Lit TimeFrameCnf::one_lit(GateId g, int frame) const {
  HLTS_REQUIRE(frame >= 0 && frame < frames_, "cnf: frame out of range");
  return good_one_[slot(g, frame)];
}

Lit TimeFrameCnf::zero_lit(GateId g, int frame) const {
  HLTS_REQUIRE(frame >= 0 && frame < frames_, "cnf: frame out of range");
  return good_zero_[slot(g, frame)];
}

void TimeFrameCnf::dump_dimacs(std::ostream& os, Lit assume) const {
  const auto dimacs = [](Lit l) {
    const int v = l.var() + 1;
    return l.sign() ? -v : v;
  };
  os << "c hlts time-frame CNF: netlist=" << nl_.name()
     << " frames=" << frames_ << "\n";
  if (assume.x >= 0) os << "c assume " << dimacs(assume) << "\n";
  for (std::size_t v = 0; v < var_notes_.size(); ++v) {
    os << "c v " << (v + 1) << " " << var_notes_[v] << "\n";
  }
  const std::size_t units = solver_.root_literals().size();
  os << "p cnf " << solver_.num_vars() << " "
     << (solver_.num_clauses() + units) << "\n";
  for (const Lit l : solver_.root_literals()) {
    os << dimacs(l) << " 0\n";
  }
  solver_.for_each_problem_clause([&](const int* codes, int size) {
    for (int i = 0; i < size; ++i) {
      Lit l;
      l.x = codes[i];
      os << dimacs(l) << " ";
    }
    os << "0\n";
  });
}

}  // namespace hlts::gates
