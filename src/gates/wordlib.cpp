#include "gates/wordlib.hpp"

#include "util/error.hpp"

namespace hlts::gates {

namespace {

/// Full adder: returns {sum, carry}.
std::pair<GateId, GateId> full_adder(Netlist& nl, GateId a, GateId b, GateId c) {
  GateId axb = nl.add_gate(GateKind::Xor, {a, b});
  GateId sum = nl.add_gate(GateKind::Xor, {axb, c});
  GateId ab = nl.add_gate(GateKind::And, {a, b});
  GateId axbc = nl.add_gate(GateKind::And, {axb, c});
  GateId carry = nl.add_gate(GateKind::Or, {ab, axbc});
  return {sum, carry};
}

void check_same_width(const Word& a, const Word& b) {
  HLTS_REQUIRE(a.size() == b.size() && !a.empty(), "word width mismatch");
}

}  // namespace

Word add_input_word(Netlist& nl, const std::string& name, int bits) {
  Word w(bits);
  for (int i = 0; i < bits; ++i) {
    w[i] = nl.add_input(name + "[" + std::to_string(i) + "]");
  }
  return w;
}

void add_output_word(Netlist& nl, const Word& w, const std::string& name) {
  for (std::size_t i = 0; i < w.size(); ++i) {
    nl.add_output(w[i], name + "[" + std::to_string(i) + "]");
  }
}

Word zero_word(Netlist& nl, int bits) {
  return Word(static_cast<std::size_t>(bits), nl.const0());
}

Word ripple_add(Netlist& nl, const Word& a, const Word& b) {
  check_same_width(a, b);
  Word sum(a.size());
  GateId carry = nl.const0();
  for (std::size_t i = 0; i < a.size(); ++i) {
    auto [s, c] = full_adder(nl, a[i], b[i], carry);
    sum[i] = s;
    carry = c;
  }
  return sum;
}

Word ripple_sub(Netlist& nl, const Word& a, const Word& b) {
  // a - b = a + ~b + 1.
  check_same_width(a, b);
  Word sum(a.size());
  GateId carry = nl.const1();
  for (std::size_t i = 0; i < a.size(); ++i) {
    GateId nb = nl.add_gate(GateKind::Not, {b[i]});
    auto [s, c] = full_adder(nl, a[i], nb, carry);
    sum[i] = s;
    carry = c;
  }
  return sum;
}

Word array_multiply(Netlist& nl, const Word& a, const Word& b) {
  check_same_width(a, b);
  const std::size_t n = a.size();
  // Row accumulation of partial products, truncated to n bits.
  Word acc = zero_word(nl, static_cast<int>(n));
  for (std::size_t j = 0; j < n; ++j) {
    Word partial = zero_word(nl, static_cast<int>(n));
    for (std::size_t i = 0; i + j < n; ++i) {
      partial[i + j] = nl.add_gate(GateKind::And, {a[i], b[j]});
    }
    acc = (j == 0) ? partial : ripple_add(nl, acc, partial);
  }
  return acc;
}

namespace {

/// Kogge-Stone carry computation: returns the carry *into* each bit
/// position given per-bit generate/propagate and a carry-in.
Word kogge_stone_carries(Netlist& nl, const Word& g, const Word& p,
                         GateId carry_in) {
  const std::size_t n = g.size();
  // Prefix (G, P) pairs; after log2(n) levels, G[i] = carry out of bit i
  // assuming zero carry-in.
  Word G = g;
  Word P = p;
  for (std::size_t dist = 1; dist < n; dist *= 2) {
    Word G2 = G;
    Word P2 = P;
    for (std::size_t i = dist; i < n; ++i) {
      GateId t = nl.add_gate(GateKind::And, {P[i], G[i - dist]});
      G2[i] = nl.add_gate(GateKind::Or, {G[i], t});
      P2[i] = nl.add_gate(GateKind::And, {P[i], P[i - dist]});
    }
    G = std::move(G2);
    P = std::move(P2);
  }
  // carry_in propagates through the group propagate of each prefix.
  Word carries(n);
  carries[0] = carry_in;
  for (std::size_t i = 1; i < n; ++i) {
    GateId through = nl.add_gate(GateKind::And, {P[i - 1], carry_in});
    carries[i] = nl.add_gate(GateKind::Or, {G[i - 1], through});
  }
  return carries;
}

Word kogge_stone_sum(Netlist& nl, const Word& a, const Word& b_eff,
                     GateId carry_in) {
  const std::size_t n = a.size();
  Word g(n), p(n);
  for (std::size_t i = 0; i < n; ++i) {
    g[i] = nl.add_gate(GateKind::And, {a[i], b_eff[i]});
    p[i] = nl.add_gate(GateKind::Xor, {a[i], b_eff[i]});
  }
  Word carries = kogge_stone_carries(nl, g, p, carry_in);
  Word sum(n);
  for (std::size_t i = 0; i < n; ++i) {
    sum[i] = nl.add_gate(GateKind::Xor, {p[i], carries[i]});
  }
  return sum;
}

}  // namespace

Word kogge_stone_add(Netlist& nl, const Word& a, const Word& b) {
  check_same_width(a, b);
  return kogge_stone_sum(nl, a, b, nl.const0());
}

Word kogge_stone_sub(Netlist& nl, const Word& a, const Word& b) {
  check_same_width(a, b);
  Word nb = word_not(nl, b);
  return kogge_stone_sum(nl, a, nb, nl.const1());
}

Word wallace_multiply(Netlist& nl, const Word& a, const Word& b) {
  check_same_width(a, b);
  const std::size_t n = a.size();
  // Column-wise partial-product collection (truncated to n bits).
  std::vector<std::vector<GateId>> columns(n);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i + j < n; ++i) {
      columns[i + j].push_back(nl.add_gate(GateKind::And, {a[i], b[j]}));
    }
  }
  // 3:2 (full adder) and 2:2 (half adder) compression until every column
  // has at most two entries.
  bool compressing = true;
  while (compressing) {
    compressing = false;
    std::vector<std::vector<GateId>> next(n);
    for (std::size_t c = 0; c < n; ++c) {
      auto& col = columns[c];
      std::size_t i = 0;
      while (col.size() - i >= 3) {
        auto [s, carry] = full_adder(nl, col[i], col[i + 1], col[i + 2]);
        next[c].push_back(s);
        if (c + 1 < n) next[c + 1].push_back(carry);
        i += 3;
        compressing = true;
      }
      if (col.size() - i == 2 && columns[c].size() > 2) {
        GateId s = nl.add_gate(GateKind::Xor, {col[i], col[i + 1]});
        GateId carry = nl.add_gate(GateKind::And, {col[i], col[i + 1]});
        next[c].push_back(s);
        if (c + 1 < n) next[c + 1].push_back(carry);
        i += 2;
        compressing = true;
      }
      for (; i < col.size(); ++i) next[c].push_back(col[i]);
    }
    columns = std::move(next);
  }
  // Final two rows through the fast adder.
  Word row0 = zero_word(nl, static_cast<int>(n));
  Word row1 = zero_word(nl, static_cast<int>(n));
  for (std::size_t c = 0; c < n; ++c) {
    if (!columns[c].empty()) row0[c] = columns[c][0];
    if (columns[c].size() > 1) row1[c] = columns[c][1];
  }
  return kogge_stone_add(nl, row0, row1);
}

Word array_divide(Netlist& nl, const Word& a, const Word& b) {
  // Restoring array divider: for each quotient bit from MSB down, try to
  // subtract b from the running remainder (shifted in one dividend bit);
  // keep the difference when it does not borrow.
  check_same_width(a, b);
  const std::size_t n = a.size();
  Word rem = zero_word(nl, static_cast<int>(n));
  Word quot(n);
  for (std::size_t step = 0; step < n; ++step) {
    const std::size_t bit = n - 1 - step;
    // rem = (rem << 1) | a[bit]
    Word shifted(n);
    shifted[0] = a[bit];
    for (std::size_t i = 1; i < n; ++i) shifted[i] = rem[i - 1];
    // trial = shifted - b, with borrow-out detection: borrow-out is the
    // complement of the final carry of the two's-complement subtraction.
    Word trial(n);
    GateId carry = nl.const1();
    for (std::size_t i = 0; i < n; ++i) {
      GateId nb = nl.add_gate(GateKind::Not, {b[i]});
      auto [s, c] = full_adder(nl, shifted[i], nb, carry);
      trial[i] = s;
      carry = c;
    }
    GateId no_borrow = carry;  // 1 when shifted >= b
    quot[bit] = no_borrow;
    rem = mux_word(nl, no_borrow, shifted, trial);
  }
  return quot;
}

GateId less_than(Netlist& nl, const Word& a, const Word& b) {
  // a < b iff a - b borrows.
  check_same_width(a, b);
  GateId carry = nl.const1();
  for (std::size_t i = 0; i < a.size(); ++i) {
    GateId nb = nl.add_gate(GateKind::Not, {b[i]});
    auto [s, c] = full_adder(nl, a[i], nb, carry);
    (void)s;
    carry = c;
  }
  return nl.add_gate(GateKind::Not, {carry});
}

GateId greater_than(Netlist& nl, const Word& a, const Word& b) {
  return less_than(nl, b, a);
}

GateId equal(Netlist& nl, const Word& a, const Word& b) {
  check_same_width(a, b);
  std::vector<GateId> eq_bits;
  for (std::size_t i = 0; i < a.size(); ++i) {
    eq_bits.push_back(nl.add_gate(GateKind::Xnor, {a[i], b[i]}));
  }
  if (eq_bits.size() == 1) return eq_bits[0];
  return nl.add_gate(GateKind::And, eq_bits);
}

Word word_and(Netlist& nl, const Word& a, const Word& b) {
  check_same_width(a, b);
  Word out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    out[i] = nl.add_gate(GateKind::And, {a[i], b[i]});
  }
  return out;
}

Word word_or(Netlist& nl, const Word& a, const Word& b) {
  check_same_width(a, b);
  Word out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    out[i] = nl.add_gate(GateKind::Or, {a[i], b[i]});
  }
  return out;
}

Word word_xor(Netlist& nl, const Word& a, const Word& b) {
  check_same_width(a, b);
  Word out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    out[i] = nl.add_gate(GateKind::Xor, {a[i], b[i]});
  }
  return out;
}

Word word_not(Netlist& nl, const Word& a) {
  Word out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    out[i] = nl.add_gate(GateKind::Not, {a[i]});
  }
  return out;
}

Word mux_word(Netlist& nl, GateId sel, const Word& a, const Word& b) {
  check_same_width(a, b);
  Word out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    out[i] = nl.add_gate(GateKind::Mux, {sel, a[i], b[i]});
  }
  return out;
}

Word onehot_select(Netlist& nl, const std::vector<GateId>& enables,
                   const std::vector<Word>& values, int bits) {
  HLTS_REQUIRE(enables.size() == values.size(), "onehot_select size mismatch");
  if (enables.empty()) return zero_word(nl, bits);
  std::vector<Word> gated;
  for (std::size_t i = 0; i < enables.size(); ++i) {
    HLTS_REQUIRE(static_cast<int>(values[i].size()) == bits,
                 "onehot_select width mismatch");
    Word g(values[i].size());
    for (std::size_t j = 0; j < values[i].size(); ++j) {
      g[j] = nl.add_gate(GateKind::And, {enables[i], values[i][j]});
    }
    gated.push_back(std::move(g));
  }
  Word acc = gated[0];
  for (std::size_t i = 1; i < gated.size(); ++i) {
    acc = word_or(nl, acc, gated[i]);
  }
  return acc;
}

Word bit_to_word(Netlist& nl, GateId g, int bits) {
  Word out = zero_word(nl, bits);
  out[0] = g;
  return out;
}

}  // namespace hlts::gates
