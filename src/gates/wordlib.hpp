// Word-level construction helpers: bit-blast arithmetic and steering logic
// into the gate netlist.
//
// Implementations mirror the module library the cost model assumes: ripple-
// carry adders/subtracters (linear), array multiplier and restoring array
// divider (quadratic), magnitude comparator, AND-OR operand selection
// networks.  All words are little-endian: word[0] is the LSB.
#pragma once

#include <vector>

#include "gates/netlist.hpp"

namespace hlts::gates {

using Word = std::vector<GateId>;

/// `bits` fresh primary inputs named name[0..bits).
[[nodiscard]] Word add_input_word(Netlist& nl, const std::string& name, int bits);
/// Primary outputs for each bit of `w`.
void add_output_word(Netlist& nl, const Word& w, const std::string& name);
/// `bits` constant-zero word.
[[nodiscard]] Word zero_word(Netlist& nl, int bits);

/// sum = a + b (mod 2^bits); ripple-carry.
[[nodiscard]] Word ripple_add(Netlist& nl, const Word& a, const Word& b);
/// diff = a - b (mod 2^bits); ripple-borrow.
[[nodiscard]] Word ripple_sub(Netlist& nl, const Word& a, const Word& b);
/// prod = a * b truncated to the operand width; unsigned array multiplier.
[[nodiscard]] Word array_multiply(Netlist& nl, const Word& a, const Word& b);

/// Log-depth alternatives (speed-oriented module library): Kogge-Stone
/// carry-lookahead adder/subtracter and Wallace-tree multiplier.  Same
/// functions as the ripple/array versions -- tests check exhaustive
/// equivalence -- but a very different gate-level structure, which the
/// implementation-style ablation bench probes for testability impact.
[[nodiscard]] Word kogge_stone_add(Netlist& nl, const Word& a, const Word& b);
[[nodiscard]] Word kogge_stone_sub(Netlist& nl, const Word& a, const Word& b);
[[nodiscard]] Word wallace_multiply(Netlist& nl, const Word& a, const Word& b);
/// quot = a / b (unsigned restoring array divider; x/0 yields all-ones).
[[nodiscard]] Word array_divide(Netlist& nl, const Word& a, const Word& b);

/// 1-bit results of unsigned comparisons.
[[nodiscard]] GateId less_than(Netlist& nl, const Word& a, const Word& b);
[[nodiscard]] GateId greater_than(Netlist& nl, const Word& a, const Word& b);
[[nodiscard]] GateId equal(Netlist& nl, const Word& a, const Word& b);

/// Bitwise word operations.
[[nodiscard]] Word word_and(Netlist& nl, const Word& a, const Word& b);
[[nodiscard]] Word word_or(Netlist& nl, const Word& a, const Word& b);
[[nodiscard]] Word word_xor(Netlist& nl, const Word& a, const Word& b);
[[nodiscard]] Word word_not(Netlist& nl, const Word& a);

/// sel ? b : a, per bit.
[[nodiscard]] Word mux_word(Netlist& nl, GateId sel, const Word& a, const Word& b);

/// AND-OR one-hot selection: out = OR_i (enable[i] & value[i]).  Used for
/// operand steering keyed on the controller's one-hot state.  All values
/// must share a width; an empty list yields a zero word.
[[nodiscard]] Word onehot_select(Netlist& nl, const std::vector<GateId>& enables,
                                 const std::vector<Word>& values, int bits);

/// Widens a 1-bit gate to a word (bit 0 = g, rest zero).
[[nodiscard]] Word bit_to_word(Netlist& nl, GateId g, int bits);

}  // namespace hlts::gates
