// Fixed-width table rendering for the bench executables that regenerate
// the paper's tables.
#pragma once

#include <string>
#include <vector>

namespace hlts::report {

/// A simple left-aligned-first-column table with a header row and optional
/// horizontal separators between row groups.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a data row (must match the header arity).
  void add_row(std::vector<std::string> cells);
  /// Inserts a horizontal separator before the next row.
  void add_separator();

  [[nodiscard]] std::string render() const;

 private:
  std::size_t columns_;
  std::vector<std::string> header_;
  struct Row {
    bool separator = false;
    std::vector<std::string> cells;
  };
  std::vector<Row> rows_;
};

/// Helpers used by the benches.
[[nodiscard]] std::string fmt_percent(double fraction, int digits = 2);
[[nodiscard]] std::string fmt_double(double value, int digits = 3);
[[nodiscard]] std::string fmt_int(long value);

}  // namespace hlts::report
