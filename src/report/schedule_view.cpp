#include "report/schedule_view.hpp"

#include <sstream>

namespace hlts::report {

std::string render_schedule(const dfg::Dfg& g, const sched::Schedule& s,
                            const etpn::Binding& b) {
  std::ostringstream os;
  const int length = s.length();
  os << "schedule (" << length << " control steps):\n";
  os << "  S0: load primary inputs\n";
  for (int step = 1; step <= length; ++step) {
    os << "  S" << step << ":";
    for (dfg::OpId op : s.ops_in_step(g, step)) {
      const dfg::Operation& o = g.op(op);
      os << "  " << o.name << "(" << dfg::op_symbol(o.kind) << ")->"
         << g.var(o.output).name;
    }
    os << "\n";
  }
  os << "shared functional modules:\n";
  for (etpn::ModuleId m : b.alive_modules()) {
    if (b.module_ops(m).size() > 1) {
      os << "  " << b.module_label(g, m) << "\n";
    }
  }
  os << "shared registers:\n";
  for (etpn::RegId r : b.alive_regs()) {
    if (b.reg_vars(r).size() > 1) {
      os << "  " << b.reg_label(g, r) << "\n";
    }
  }
  return os.str();
}

}  // namespace hlts::report
