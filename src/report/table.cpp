#include "report/table.hpp"

#include <algorithm>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace hlts::report {

Table::Table(std::vector<std::string> header)
    : columns_(header.size()), header_(std::move(header)) {
  HLTS_REQUIRE(columns_ > 0, "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  HLTS_REQUIRE(cells.size() == columns_, "table row arity mismatch");
  rows_.push_back({false, std::move(cells)});
}

void Table::add_separator() { rows_.push_back({true, {}}); }

std::string Table::render() const {
  std::vector<std::size_t> width(columns_);
  for (std::size_t c = 0; c < columns_; ++c) width[c] = header_[c].size();
  for (const Row& row : rows_) {
    if (row.separator) continue;
    for (std::size_t c = 0; c < columns_; ++c) {
      width[c] = std::max(width[c], row.cells[c].size());
    }
  }

  std::ostringstream os;
  auto hline = [&] {
    for (std::size_t c = 0; c < columns_; ++c) {
      os << "+" << std::string(width[c] + 2, '-');
    }
    os << "+\n";
  };
  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < columns_; ++c) {
      const std::string& s = cells[c];
      os << "| "
         << (c == 0 ? pad_right(s, width[c]) : pad_left(s, width[c])) << " ";
    }
    os << "|\n";
  };

  hline();
  line(header_);
  hline();
  for (const Row& row : rows_) {
    if (row.separator) {
      hline();
    } else {
      line(row.cells);
    }
  }
  hline();
  return os.str();
}

std::string fmt_percent(double fraction, int digits) {
  return format_percent(fraction, digits);
}

std::string fmt_double(double value, int digits) {
  return format_fixed(value, digits);
}

std::string fmt_int(long value) { return std::to_string(value); }

}  // namespace hlts::report
