// Text rendering of a scheduled, bound design -- the benches use this to
// regenerate the paper's schedule figures (Figs. 2 and 3).
#pragma once

#include <string>

#include "dfg/dfg.hpp"
#include "etpn/binding.hpp"
#include "sched/schedule.hpp"

namespace hlts::report {

/// Renders the schedule as one line per control step listing the
/// operations executed (with their kind symbols), followed by the shared
/// module and register groups.
[[nodiscard]] std::string render_schedule(const dfg::Dfg& g,
                                          const sched::Schedule& s,
                                          const etpn::Binding& b);

}  // namespace hlts::report
