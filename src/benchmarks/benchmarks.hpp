// The six HLS benchmarks the paper evaluates on.
//
// The exact source-level benchmarks (Lee's Ex [6,7], the 8-point DCT portion
// [5], HAL's Diffeq [12], EWF [6,7], Paulin [12], Tseng [16]) are not
// published as machine-readable netlists; we reconstruct DFGs with the same
// operation mix, the paper's node names (N21..N44) and variable names
// (a..z, p1..p4, q2..q4, u1, x1, y1, ...), and dependence shapes that admit
// the schedules shown in the paper's Figures 2 and 3.  DESIGN.md §2 records
// this substitution.
#pragma once

#include <string>
#include <vector>

#include "dfg/dfg.hpp"

namespace hlts::benchmarks {

/// Lee's Ex benchmark: 4 multiplications (N21, N22, N24, N28), 3
/// subtractions (N25, N27, N29), 1 addition (N30); variables a..f (primary
/// inputs) and u..z (Table 1 / Figure 2).
[[nodiscard]] dfg::Dfg make_ex();

/// Portion of an 8-point DCT signal flow graph: 5 multiplications (N31, N33,
/// N35, N38, N40), 6 additions (N27, N29, N37, N42, N43, N44), 2
/// subtractions (N28, N30); inputs a..j, intermediates p1..p4, q2..q4
/// (Table 2 / Figure 3a).
[[nodiscard]] dfg::Dfg make_dct();

/// HAL differential-equation benchmark: 6 multiplications (N26, N27, N29,
/// N31, N33, N35), 2 additions (N25, N36), 2 subtractions (N30, N34), 1
/// comparison (N24); variables x, y, u, dx, a, 3 and temporaries a1, b..g,
/// u1, x1, y1 (Table 3 / Figure 3b).
[[nodiscard]] dfg::Dfg make_diffeq();

/// Fifth-order elliptic wave filter: 26 additions, 8 multiplications
/// (the classic EWF benchmark of [6, 7]).
[[nodiscard]] dfg::Dfg make_ewf();

/// Paulin's second example from the HAL system [12]: a small second-order
/// IIR-filter-like kernel (4 multiplications, 2 additions, 2 subtractions).
[[nodiscard]] dfg::Dfg make_paulin();

/// Tseng and Siewiorek's FACET example [16]: 3 additions, 1 subtraction,
/// 1 multiplication, 1 division, 1 bitwise or, 1 bitwise and.
[[nodiscard]] dfg::Dfg make_tseng();

/// All six benchmarks, keyed by the names used in the paper's §5.
[[nodiscard]] std::vector<std::string> benchmark_names();

/// Builds a benchmark by name ("ex", "dct", "diffeq", "ewf", "paulin",
/// "tseng"); throws hlts::Error for unknown names.
[[nodiscard]] dfg::Dfg make_benchmark(const std::string& name);

}  // namespace hlts::benchmarks
