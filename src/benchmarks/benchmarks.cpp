#include "benchmarks/benchmarks.hpp"

#include "util/error.hpp"

namespace hlts::benchmarks {

using dfg::Dfg;
using dfg::OpKind;
using dfg::VarId;

Dfg make_ex() {
  Dfg g("ex");
  VarId a = g.add_input("a");
  VarId b = g.add_input("b");
  VarId c = g.add_input("c");
  VarId d = g.add_input("d");
  VarId e = g.add_input("e");
  VarId f = g.add_input("f");

  VarId u = g.add_variable("u");
  VarId v = g.add_variable("v");
  VarId w = g.add_variable("w");
  VarId x = g.add_variable("x");
  VarId y = g.add_variable("y");
  VarId z = g.add_variable("z");

  g.add_op("N21", OpKind::Mul, {a, b}, u);
  g.add_op("N22", OpKind::Mul, {c, d}, v);
  g.add_op("N24", OpKind::Mul, {e, f}, w);
  g.add_op("N28", OpKind::Mul, {a, d}, x);
  g.add_op("N25", OpKind::Sub, {u, v}, y);
  g.add_op("N27", OpKind::Sub, {w, x}, z);
  g.add_op_new_var("N29", OpKind::Sub, {y, z}, "s");
  g.add_op_new_var("N30", OpKind::Add, {y, w}, "t");

  g.mark_output(*g.find_var("s"));
  g.mark_output(*g.find_var("t"));
  g.validate();
  return g;
}

Dfg make_dct() {
  Dfg g("dct");
  VarId a = g.add_input("a");
  VarId b = g.add_input("b");
  VarId c = g.add_input("c");
  VarId d = g.add_input("d");
  VarId e = g.add_input("e");
  VarId f = g.add_input("f");
  VarId gg = g.add_input("g");
  VarId h = g.add_input("h");
  VarId i = g.add_input("i");  // cosine coefficient port
  VarId j = g.add_input("j");  // cosine coefficient port

  VarId p1 = g.add_variable("p1");
  VarId p2 = g.add_variable("p2");
  VarId p3 = g.add_variable("p3");
  VarId p4 = g.add_variable("p4");
  VarId q2 = g.add_variable("q2");
  VarId q3 = g.add_variable("q3");
  VarId q4 = g.add_variable("q4");

  // Butterfly stage: sums and differences of mirrored sample pairs.
  g.add_op("N27", OpKind::Add, {a, h}, p1);
  g.add_op("N28", OpKind::Sub, {b, gg}, p2);
  g.add_op("N29", OpKind::Add, {c, f}, p3);
  g.add_op("N30", OpKind::Sub, {d, e}, p4);
  // Coefficient multiplications.
  g.add_op("N31", OpKind::Mul, {p1, i}, q2);
  g.add_op("N33", OpKind::Mul, {p2, j}, q3);
  g.add_op("N35", OpKind::Mul, {p3, i}, q4);
  // Output stage; these values feed output ports directly, so they never
  // occupy a register (matching Table 2, which allocates registers only for
  // a..j, p1..p4 and q2..q4).
  g.add_op_new_var("N37", OpKind::Add, {q2, q3}, "s0");
  g.add_op_new_var("N38", OpKind::Mul, {p4, j}, "s1");
  g.add_op_new_var("N40", OpKind::Mul, {p1, j}, "s2");
  g.add_op_new_var("N42", OpKind::Add, {q4, p4}, "s3");
  g.add_op_new_var("N43", OpKind::Add, {q2, q4}, "s4");
  g.add_op_new_var("N44", OpKind::Add, {q3, p3}, "s5");

  for (const char* out : {"s0", "s1", "s2", "s3", "s4", "s5"}) {
    g.mark_output(*g.find_var(out));
  }
  g.validate();
  return g;
}

Dfg make_diffeq() {
  Dfg g("diffeq");
  // Solves y'' + 3xy' + 3y = 0 by forward Euler: one loop-body iteration.
  VarId x = g.add_input("x");
  VarId y = g.add_input("y");
  VarId u = g.add_input("u");
  VarId dx = g.add_input("dx");
  VarId a = g.add_input("a");
  VarId three = g.add_input("3");

  VarId a1 = g.add_variable("a1");
  VarId b = g.add_variable("b");
  VarId c = g.add_variable("c");
  VarId d = g.add_variable("d");
  VarId e = g.add_variable("e");
  VarId f = g.add_variable("f");
  VarId gv = g.add_variable("g");
  VarId u1 = g.add_variable("u1");
  VarId x1 = g.add_variable("x1");
  VarId y1 = g.add_variable("y1");

  g.add_op("N26", OpKind::Mul, {three, x}, a1);  // 3*x
  g.add_op("N27", OpKind::Mul, {u, dx}, b);      // u*dx
  g.add_op("N29", OpKind::Mul, {a1, b}, c);      // 3*x*u*dx
  g.add_op("N31", OpKind::Mul, {three, y}, d);   // 3*y
  g.add_op("N33", OpKind::Mul, {d, dx}, e);      // 3*y*dx
  g.add_op("N35", OpKind::Mul, {u, dx}, f);      // u*dx (recomputed for y1)
  g.add_op("N30", OpKind::Sub, {u, c}, gv);      // u - 3*x*u*dx
  g.add_op("N34", OpKind::Sub, {gv, e}, u1);     // u1 = g - 3*y*dx
  g.add_op("N25", OpKind::Add, {x, dx}, x1);     // x1 = x + dx
  g.add_op("N36", OpKind::Add, {y, f}, y1);      // y1 = y + u*dx
  g.add_op_new_var("N24", OpKind::Less, {x1, a}, "cond");  // loop exit test

  // u1/x1/y1 are loop state and must be registered (Table 3 allocates them);
  // the condition signal feeds the controller, not a register.
  g.mark_output(u1, /*registered=*/true);
  g.mark_output(x1, /*registered=*/true);
  g.mark_output(y1, /*registered=*/true);
  g.mark_output(*g.find_var("cond"));
  g.validate();
  return g;
}

Dfg make_ewf() {
  Dfg g("ewf");
  // Fifth-order elliptic wave filter: two input ladders feeding a merge
  // ladder; 26 additions and 8 coefficient multiplications.
  VarId inp = g.add_input("inp");
  VarId sv2 = g.add_input("sv2");
  VarId sv13 = g.add_input("sv13");
  VarId sv18 = g.add_input("sv18");
  VarId sv26 = g.add_input("sv26");
  VarId sv33 = g.add_input("sv33");
  VarId sv38 = g.add_input("sv38");
  VarId sv39 = g.add_input("sv39");
  VarId c1 = g.add_input("c1");
  VarId c2 = g.add_input("c2");

  auto add = [&](const char* op, VarId l, VarId r, const char* out) {
    return g.add_op_new_var(op, OpKind::Add, {l, r}, out);
  };
  auto mul = [&](const char* op, VarId l, VarId r, const char* out) {
    return g.add_op_new_var(op, OpKind::Mul, {l, r}, out);
  };
  auto v = [&](const char* name) { return *g.find_var(name); };

  // Ladder A.
  add("A1", inp, sv2, "a1");
  mul("M1", v("a1"), c1, "a2");
  add("A2", v("a2"), sv13, "a3");
  add("A3", v("a3"), v("a1"), "a4");
  mul("M2", v("a4"), c2, "a5");
  add("A4", v("a5"), sv18, "a6");
  add("A5", v("a6"), v("a3"), "a7");
  mul("M3", v("a7"), c1, "a8");
  add("A6", v("a8"), v("a4"), "a9");
  add("A7", v("a9"), v("a6"), "a10");
  add("A8", v("a10"), v("a7"), "a11");
  add("A9", v("a11"), v("a9"), "a12");
  add("A10", v("a12"), v("a10"), "a13");
  // Ladder B.
  add("A11", sv26, sv33, "b1");
  mul("M4", v("b1"), c2, "b2");
  add("A12", v("b2"), sv38, "b3");
  add("A13", v("b3"), v("b1"), "b4");
  mul("M5", v("b4"), c1, "b5");
  add("A14", v("b5"), sv39, "b6");
  add("A15", v("b6"), v("b3"), "b7");
  mul("M6", v("b7"), c2, "b8");
  add("A16", v("b8"), v("b4"), "b9");
  add("A17", v("b9"), v("b6"), "b10");
  add("A18", v("b10"), v("b7"), "b11");
  add("A19", v("b11"), v("b9"), "b12");
  add("A20", v("b12"), v("b10"), "b13");
  // Merge ladder.
  add("A21", v("a13"), v("b13"), "m1");
  mul("M7", v("m1"), c1, "m2");
  add("A22", v("m2"), v("a12"), "m3");
  add("A23", v("m3"), v("b12"), "m4");
  mul("M8", v("m4"), c2, "m5");
  add("A24", v("m5"), v("m1"), "m6");
  add("A25", v("m6"), v("m3"), "m7");
  add("A26", v("m7"), v("m4"), "m8");

  // Filter state updates are held in registers across samples.
  for (const char* out : {"a11", "a13", "b11", "b13", "m8"}) {
    g.mark_output(v(out), /*registered=*/true);
  }
  g.validate();
  return g;
}

Dfg make_paulin() {
  Dfg g("paulin");
  // Second HAL example: a small second-order IIR-like kernel.
  VarId xp = g.add_input("xp");
  VarId yp = g.add_input("yp");
  VarId c3 = g.add_input("c3");
  VarId c4 = g.add_input("c4");

  g.add_op_new_var("P1", OpKind::Mul, {xp, c3}, "t1");
  g.add_op_new_var("P2", OpKind::Mul, {yp, c4}, "t2");
  g.add_op_new_var("P3", OpKind::Mul, {xp, yp}, "t3");
  g.add_op_new_var("P4", OpKind::Mul,
                   {*g.find_var("t1"), *g.find_var("t2")}, "t4");
  g.add_op_new_var("P5", OpKind::Add,
                   {*g.find_var("t1"), *g.find_var("t3")}, "t5");
  g.add_op_new_var("P6", OpKind::Add,
                   {*g.find_var("t2"), *g.find_var("t4")}, "t6");
  g.add_op_new_var("P7", OpKind::Sub,
                   {*g.find_var("t5"), *g.find_var("t6")}, "o1");
  g.add_op_new_var("P8", OpKind::Sub,
                   {*g.find_var("t5"), *g.find_var("t4")}, "o2");

  g.mark_output(*g.find_var("o1"));
  g.mark_output(*g.find_var("o2"));
  g.validate();
  return g;
}

Dfg make_tseng() {
  Dfg g("tseng");
  VarId r1 = g.add_input("r1");
  VarId r2 = g.add_input("r2");
  VarId r3 = g.add_input("r3");
  VarId r4 = g.add_input("r4");
  VarId r5 = g.add_input("r5");
  VarId r6 = g.add_input("r6");

  g.add_op_new_var("T1", OpKind::Add, {r1, r2}, "t1");
  g.add_op_new_var("T2", OpKind::Add, {r3, r4}, "t2");
  g.add_op_new_var("T3", OpKind::Sub, {*g.find_var("t1"), r5}, "t3");
  g.add_op_new_var("T4", OpKind::Div, {*g.find_var("t2"), r6}, "t4");
  g.add_op_new_var("T5", OpKind::Mul,
                   {*g.find_var("t3"), *g.find_var("t4")}, "t5");
  g.add_op_new_var("T6", OpKind::Or,
                   {*g.find_var("t1"), *g.find_var("t2")}, "t6");
  g.add_op_new_var("T7", OpKind::And,
                   {*g.find_var("t5"), *g.find_var("t6")}, "t7");
  g.add_op_new_var("T8", OpKind::Add,
                   {*g.find_var("t6"), *g.find_var("t3")}, "t8");

  g.mark_output(*g.find_var("t7"));
  g.mark_output(*g.find_var("t8"));
  g.validate();
  return g;
}

std::vector<std::string> benchmark_names() {
  return {"ex", "dct", "diffeq", "ewf", "paulin", "tseng"};
}

Dfg make_benchmark(const std::string& name) {
  if (name == "ex") return make_ex();
  if (name == "dct") return make_dct();
  if (name == "diffeq") return make_diffeq();
  if (name == "ewf") return make_ewf();
  if (name == "paulin") return make_paulin();
  if (name == "tseng") return make_tseng();
  throw Error("unknown benchmark: " + name, ErrorKind::Input);
}

}  // namespace hlts::benchmarks
