// Asynchronous batch synthesis engine.
//
// The paper's evaluation (§5) is itself a batch workload -- four flows on
// four benchmarks -- and the ROADMAP north star is a service that
// synthesizes many designs concurrently.  The engine accepts batches of
// FlowRequest jobs (DFG or DSL source + FlowKind + FlowParams), runs them
// over a fixed set of job workers, and hands back Job handles with:
//
//   - per-iteration progress streaming (Algorithm-1 IterationRecords),
//   - cooperative cancellation, bounded to one Algorithm-1 iteration,
//   - a wall-clock timeout enforced at the same iteration granularity,
//   - a per-job trace/metrics snapshot (util::Trace spans + counters
//     covering frontend -> scheduling -> iterations -> ETPN rebuild ->
//     cost), exportable as JSON.
//
// Two-level threading model: the engine fans jobs out over
// `max_concurrent_jobs` job workers, and each job's Algorithm-1 trial
// evaluation still parallelizes internally over util::ThreadPool with
// `threads_per_job` threads.  The defaults divide
// util::ThreadPool::default_threads() (which honours HLTS_THREADS) between
// the two levels so a full batch never oversubscribes the machine.
// Precedence for a job's inner thread count: FlowParams::num_threads when
// positive > EngineOptions::threads_per_job > default_threads() / jobs.
//
// Determinism contract: a job's FlowResult is bit-identical to a direct
// `core::run_flow(kind, dfg, params)` call for every engine configuration
// -- PR 1 made synthesis results invariant under the trial thread count,
// and the engine changes nothing else about the computation.
//
// Failure contract: no exception crosses a thread boundary.  Parse errors
// (via frontend::compile_or_error) and synthesis errors become the job's
// error() string and a Failed state; sibling jobs are unaffected.  Failures
// are classified by hlts::ErrorKind: Transient failures (injected faults,
// bad_alloc) are retried up to EngineOptions::max_retries times with
// exponential backoff and deterministic jitter, and a job whose flow
// degraded to a Partial result keeps the best checkpoint across attempts;
// Input and Internal errors fail the job immediately (including non-
// std::exception throwables, which map to an Internal diagnostic).  An
// optional watchdog (EngineOptions::stall_deadline) flags running jobs
// whose iteration heartbeat has gone quiet.
//
// Durability contract (EngineOptions::journal_dir): every accepted job is
// written ahead to the journal before submit() returns, its Algorithm-1
// checkpoint is persisted every `checkpoint_every` committed mergers, and
// a completion marker retires it.  Engine::recover(dir) replays an
// interrupted journal: unfinished jobs are re-admitted (bypassing
// admission control -- they were admitted before the crash) and resume
// from their last checkpoint with a FlowResult bit-identical to the
// uninterrupted run.  Checkpoint/done write failures never affect the
// computation: they are absorbed as journal lag (EngineHealth).
//
// Overload contract (EngineOptions::queue_capacity): the pending queue
// never exceeds the configured capacity.  When full, submit() applies
// OverloadPolicy -- Block (wait for space), Reject (fail the new job with
// JobState::Rejected), or ShedOldest (evict pending jobs, expired
// JobOptions::queue_deadline first, then FIFO order, to make room).  A
// pending job whose queue_deadline expires is shed at dispatch time even
// when the queue never filled.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "api/api.hpp"
#include "core/flows.hpp"
#include "dfg/dfg.hpp"
#include "engine/codel.hpp"
#include "engine/journal.hpp"
#include "util/json.hpp"
#include "util/trace.hpp"

namespace hlts::engine {

/// One unit of work: which flow to run on which design, with which knobs.
/// Provide either a pre-built DFG or DSL `source` the engine compiles
/// (a per-job parse failure fails only that job).
struct FlowRequest {
  std::string name{};  ///< report label; auto-generated when empty
  core::FlowKind kind = core::FlowKind::Ours;
  std::optional<dfg::Dfg> dfg{};
  std::string source{};  ///< compiled with compile_or_error when dfg is empty
  core::FlowParams params{};
};

enum class JobState {
  Pending,    ///< queued, not yet picked up by a worker
  Running,
  Succeeded,
  Failed,     ///< parse or synthesis error; see Job::error()
  Cancelled,  ///< Job::cancel() took effect
  TimedOut,   ///< the JobOptions::timeout deadline passed
  Rejected,   ///< refused or shed by admission control; see Job::error()
};

[[nodiscard]] const char* job_state_name(JobState state);

/// Per-job run options (the algorithmic knobs live in FlowRequest::params).
struct JobOptions {
  /// Called on the job's worker thread after every committed Algorithm-1
  /// merger.  Must be thread-safe against the submitting thread.
  std::function<void(const core::IterationRecord&)> on_iteration = nullptr;
  /// Wall-clock budget measured from the moment the job starts running;
  /// zero means unlimited.  Enforced at Algorithm-1 iteration boundaries
  /// (the same cooperative hook cancellation uses).
  std::chrono::milliseconds timeout{0};
  /// Freshness budget measured from submission: a job still *pending* past
  /// this deadline is shed (JobState::Rejected) instead of run -- checked
  /// when the queue overflows under OverloadPolicy::ShedOldest and again
  /// when a worker picks the job up.  Zero means the job never expires.
  /// A job that started running is never shed by this deadline.
  std::chrono::milliseconds queue_deadline{0};
};

class Engine;

/// Handle to one submitted job.  All accessors are thread-safe; the
/// result/error/trace accessors require finished() (they fail a contract
/// check otherwise, since the fields are still being written).
class Job {
 public:
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] core::FlowKind kind() const { return request_.kind; }
  /// The parameters the job was submitted (or recovered) with -- a
  /// --recover replay reads journaled per-job settings (e.g. the ATPG
  /// backend) from here rather than from the new command line.
  [[nodiscard]] const core::FlowParams& params() const {
    return request_.params;
  }
  /// Engine-assigned id; also the job's journal filename key.
  [[nodiscard]] std::uint64_t id() const { return id_; }

  [[nodiscard]] JobState state() const;
  [[nodiscard]] bool finished() const;

  /// Requests cooperative cancellation: a pending job never starts, a
  /// running Algorithm-1 flow stops within one iteration.  Idempotent;
  /// cancelling a finished job is a no-op.
  void cancel();

  /// Blocks until the job reaches a terminal state.
  void wait() const;
  /// Bounded wait; true when the job finished within `timeout`.
  [[nodiscard]] bool wait_for(std::chrono::milliseconds timeout) const;

  /// The synthesized design.  Engaged for Succeeded jobs; a Cancelled or
  /// TimedOut Algorithm-1 job keeps the partial (but fully consistent)
  /// design it had committed so far, when it got far enough to have one.
  [[nodiscard]] const std::optional<core::FlowResult>& result() const;
  /// Diagnostic for Failed jobs ("" otherwise).
  [[nodiscard]] const std::string& error() const;
  /// Spans + counters recorded while the job ran.
  [[nodiscard]] const util::TraceSnapshot& trace() const;
  /// Wall-clock duration of the run (0 for jobs cancelled while pending).
  [[nodiscard]] double wall_ms() const;

  /// Snapshot of the streamed iteration records; callable at any time.
  [[nodiscard]] std::vector<core::IterationRecord> progress() const;

  /// Times the engine has started (or restarted) this job; a value above 1
  /// means Transient failures were retried.  Callable at any time.
  [[nodiscard]] int attempts() const {
    return attempts_.load(std::memory_order_relaxed);
  }
  /// True once the watchdog flagged this job's iteration heartbeat as
  /// older than EngineOptions::stall_deadline.  Sticky; callable at any
  /// time.
  [[nodiscard]] bool stalled() const {
    return stalled_.load(std::memory_order_relaxed);
  }

 private:
  friend class Engine;
  Job(FlowRequest request, JobOptions options, std::string name);

  void finish(JobState state);

  FlowRequest request_;
  JobOptions options_;
  std::string name_;
  std::uint64_t id_ = 0;
  /// steady_clock nanoseconds of submission; queue_deadline counts from it.
  std::int64_t enqueue_ns_ = 0;
  /// Raw journal checkpoint for a recovered job; decoded against the
  /// compiled DFG by the worker (a corrupt document demotes the job to a
  /// from-scratch restart).
  std::optional<util::JsonValue> resume_raw_;
  /// True when this job's record lives in the owning engine's journal
  /// directory -- checkpoints are persisted and a done marker retires it.
  bool journaled_ = false;
  /// True for jobs re-admitted by Engine::recover(): they bypassed
  /// admission control once and the CoDel controller must not shed them --
  /// durable work is never lost to overload.
  bool recovered_ = false;

  mutable std::mutex mutex_;
  mutable std::condition_variable cv_;
  JobState state_ = JobState::Pending;
  std::atomic<bool> cancel_{false};
  std::atomic<bool> timed_out_{false};
  std::atomic<int> attempts_{0};
  std::atomic<bool> stalled_{false};
  /// steady_clock nanoseconds of the last sign of life (attempt start or
  /// committed iteration); 0 until the job first runs.
  std::atomic<std::int64_t> heartbeat_ns_{0};
  std::optional<core::FlowResult> result_;
  std::string error_;
  util::TraceSnapshot trace_;
  double wall_ms_ = 0;
  std::vector<core::IterationRecord> progress_;
};

using JobPtr = std::shared_ptr<Job>;

/// What submit() does when the pending queue is at capacity.
enum class OverloadPolicy {
  Block,      ///< wait until a worker frees a slot (needs capacity >= 1)
  Reject,     ///< fail the new job immediately with JobState::Rejected
  ShedOldest, ///< evict pending jobs (expired deadlines first, then FIFO)
};

[[nodiscard]] const char* overload_policy_name(OverloadPolicy policy);

struct EngineOptions {
  /// Jobs running concurrently; 0 = min(util::ThreadPool::default_threads(),
  /// 4).  Further submissions queue in FIFO order.
  int max_concurrent_jobs = 0;
  /// Inner trial-evaluation threads given to each job whose
  /// FlowParams::num_threads is 0 (auto); 0 = default_threads() divided by
  /// the job workers, never below 1 -- i.e. a loaded engine uses about
  /// default_threads() threads in total across both levels.
  int threads_per_job = 0;
  /// Extra runs granted to a job that fails with a Transient error
  /// (ErrorKind::Transient: injected fault, bad_alloc) or degrades to a
  /// Partial result mid-flow.  0 disables retries.
  int max_retries = 2;
  /// Base delay before a retry; doubles per attempt, plus a deterministic
  /// jitter derived from the job name so a batch of retries de-clusters
  /// the same way on every run.
  std::chrono::milliseconds retry_backoff{25};
  /// Watchdog deadline: a Running job whose last heartbeat (attempt start
  /// or committed iteration) is older than this is flagged via
  /// Job::stalled() and the "jobs.stall_flagged" metrics counter.  The
  /// job is not killed -- Algorithm-1 iterations vary widely in length, so
  /// the flag is a diagnostic, not an abort.  0 disables the watchdog
  /// thread entirely.
  std::chrono::milliseconds stall_deadline{0};

  // --- durability ----------------------------------------------------------
  /// Journal directory; empty disables journaling.  When set, submit()
  /// writes the job ahead (and refuses FlowParams::trial_cache, whose
  /// cross-iteration state is not checkpointed), workers persist
  /// checkpoints at the cadence below, and Engine::recover() can replay
  /// the directory after a crash.
  std::string journal_dir{};
  /// Checkpoint cadence in committed Algorithm-1 mergers, applied to
  /// journaled jobs whose FlowParams::checkpoint_every is 0.  Must be >= 1
  /// when journaling is enabled (a cadence of 0 would journal admission
  /// but never persist progress -- the constructor rejects it).
  int checkpoint_every = 25;

  // --- overload ------------------------------------------------------------
  /// Upper bound on *pending* jobs (running jobs have left the queue).
  /// The default is effectively unbounded.  A capacity of 0 admits work
  /// only via Reject/ShedOldest semantics and is rejected with Block,
  /// which could never unblock.
  std::size_t queue_capacity = static_cast<std::size_t>(-1);
  OverloadPolicy overload_policy = OverloadPolicy::Block;
  /// Default FlowParams::memory_budget_bytes for jobs that do not set one:
  /// the Algorithm-1 loop stops before an iteration whose trial working
  /// set would exceed the budget and returns the design committed so far
  /// as a Partial result (enforced at iteration boundaries, no OOM kill).
  /// 0 = unlimited.
  std::size_t memory_budget_bytes = 0;
  /// CoDel-style adaptive shedding at dispatch (engine/codel.hpp): when
  /// target_ms > 0, a pending job whose dispatch-time sojourn has stayed
  /// above the target for a full interval is shed (JobState::Rejected,
  /// "sheds" counter), at a rate that ramps with persistence and returns
  /// to zero as sojourns recover.  Recovered (journal-replayed) jobs are
  /// exempt -- durable work is never shed.  Default off.
  CoDelConfig codel{};

  /// Applies the environment knobs on top of `base`: HLTS_JOURNAL_DIR
  /// (journal_dir), HLTS_QUEUE_CAP (queue_capacity, >= 0), HLTS_MEM_BUDGET
  /// (memory_budget_bytes, >= 0), HLTS_CODEL_TARGET_MS /
  /// HLTS_CODEL_INTERVAL_MS (codel).  Explicitly set fields in `base` win
  /// over the environment.  Malformed or negative values throw
  /// hlts::Error(ErrorKind::Input).  Deliberately opt-in (the Engine
  /// constructor does not read the environment) so tests stay hermetic.
  [[nodiscard]] static EngineOptions from_env(EngineOptions base);
  [[nodiscard]] static EngineOptions from_env() {
    return from_env(EngineOptions{});
  }
};

/// Point-in-time health snapshot for monitoring and load shedding
/// decisions; every field is also exportable as JSON.
struct EngineHealth {
  std::size_t queue_depth = 0;     ///< pending jobs (never > queue_capacity)
  std::size_t queue_capacity = 0;
  std::size_t in_flight = 0;       ///< accepted and not yet finished
  int running = 0;                 ///< jobs currently executing
  std::uint64_t submitted = 0;     ///< submit() calls (accepted + rejected)
  std::uint64_t retries = 0;       ///< transient-failure re-runs
  std::uint64_t stalls = 0;        ///< watchdog heartbeat flags
  std::uint64_t sheds = 0;         ///< pending jobs evicted (overflow/deadline)
  std::uint64_t rejected = 0;      ///< submissions refused under Reject
  std::uint64_t recovered = 0;     ///< jobs re-admitted by recover()
  std::uint64_t journal_lag = 0;   ///< swallowed checkpoint/done write failures
  bool journaling = false;

  [[nodiscard]] std::string to_json() const;
  /// The snapshot as the versioned wire DTO, tagged with a shard id (the
  /// serving layer's per-worker health unit).
  [[nodiscard]] api::HealthV1 to_api(int shard) const;
};

/// A finished job as the versioned wire DTO: state/error/wall-clock always,
/// plus the full bit-identity design block when the job produced one.
/// Requires job.finished().
[[nodiscard]] api::FlowResultV1 job_result_to_api(const Job& job);

class Engine {
 public:
  explicit Engine(EngineOptions options = {});
  /// Drains: waits for every submitted job (cancel first for a fast exit),
  /// then joins all workers -- no thread outlives the engine.
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  [[nodiscard]] JobPtr submit(FlowRequest request, JobOptions options = {});
  /// Submission from the versioned wire DTO (the serving layer's entry
  /// point): the DTO's timeout/queue-deadline become the JobOptions.
  [[nodiscard]] JobPtr submit(const api::FlowRequestV1& request);
  [[nodiscard]] std::vector<JobPtr> submit_batch(
      std::vector<FlowRequest> requests, const JobOptions& options = {});

  /// Blocks until every job submitted so far is finished.
  void wait_all();

  /// Replays an interrupted journal directory: completes cleanups, sweeps
  /// orphans, and re-admits every unfinished job -- resuming from its last
  /// persisted checkpoint when one exists.  Re-admission bypasses
  /// admission control (the jobs were admitted before the crash) and
  /// preserves the original job ids, so an engine journaling into the same
  /// directory keeps writing the same files.  `errors` lists skipped
  /// malformed files; a missing directory is an empty (not error) replay.
  struct RecoveryReport {
    std::vector<JobPtr> jobs;
    std::vector<std::string> errors;
  };
  [[nodiscard]] RecoveryReport recover(const std::string& dir);

  /// Integrity audit of a journal directory without replaying anything:
  /// classifies every file, CRC-verifies committed documents, and (with
  /// `quarantine`) moves corrupt files and temp leftovers into
  /// `<dir>/quarantine/` so a subsequent recover() sees only trustworthy
  /// state.  Static because it must be usable on a dead engine's directory
  /// (the hlts_fsck CLI, the chaos grid's post-cell audit).
  [[nodiscard]] static Journal::ScrubReport scrub(const std::string& dir,
                                                  bool quarantine = false);

  [[nodiscard]] int max_concurrent_jobs() const { return num_workers_; }
  [[nodiscard]] int threads_per_job() const { return threads_per_job_; }

  /// Engine-level metrics: job-state counters plus one span per executed
  /// job (named "job.<name>").
  [[nodiscard]] util::TraceSnapshot metrics() const;

  /// Current health snapshot (queue depth, in-flight, shed/retry/stall/
  /// journal-lag counters).  Thread-safe, callable at any time.
  [[nodiscard]] EngineHealth health() const;

 private:
  void worker_loop();
  void run_job(const JobPtr& job);
  void watchdog_loop();
  /// Marks a never-run job terminal (Rejected/shed) with a diagnostic.
  void finish_rejected(const JobPtr& job, const std::string& why,
                       const char* counter);
  /// Writes the job's done marker (journaled jobs only); a failing write
  /// is absorbed as journal lag, never propagated.
  void retire_journal(const JobPtr& job, const char* state);
  /// Evicts pending jobs until the queue has room for one more entry:
  /// expired queue_deadline jobs first, then FIFO order.  Caller holds
  /// queue_mutex_; evicted jobs are returned for finishing outside it.
  std::vector<JobPtr> shed_for_space();
  /// True when the job sat pending past its queue_deadline.
  static bool queue_deadline_expired(const JobPtr& job, std::int64_t now);

  int num_workers_ = 1;
  int threads_per_job_ = 1;
  EngineOptions options_;  ///< retry/watchdog knobs (thread counts resolved above)
  std::optional<Journal> journal_;  ///< engaged when journal_dir is set

  mutable std::mutex queue_mutex_;
  std::condition_variable queue_cv_;   // workers wait for work / stop
  std::condition_variable drain_cv_;   // wait_all waits for in-flight == 0
  std::condition_variable watchdog_cv_;  // watchdog sleeps, woken on stop
  std::condition_variable space_cv_;   // Block-policy submitters wait for room
  std::deque<JobPtr> queue_;
  std::size_t in_flight_ = 0;  ///< submitted and not yet finished
  std::uint64_t next_id_ = 0;
  bool stop_ = false;

  mutable std::mutex running_mutex_;
  std::vector<JobPtr> running_;  ///< jobs currently inside run_job()

  /// Adaptive dispatch-time shedding; its own mutex so the controller's
  /// state machine is serialized across workers without holding
  /// queue_mutex_ through finish_rejected.
  std::mutex codel_mutex_;
  CoDelController codel_{CoDelConfig{}};

  // Health counters (lock-free so health() never contends with workers).
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> retries_{0};
  std::atomic<std::uint64_t> stalls_{0};
  std::atomic<std::uint64_t> sheds_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> recovered_{0};
  std::atomic<std::uint64_t> journal_lag_{0};

  util::Trace trace_;  ///< engine-level spans/counters (thread-safe)
  std::vector<std::thread> workers_;
  std::thread watchdog_;
};

}  // namespace hlts::engine
