#include "engine/codel.hpp"

#include <cmath>

namespace hlts::engine {

namespace {

/// next_drop spacing: interval / sqrt(count), floored at 1ms so a long
/// episode still sheds at a bounded (not unbounded) rate.
std::int64_t control_law(std::int64_t interval_ms, std::uint64_t count) {
  if (count == 0) return interval_ms;
  const double spaced =
      static_cast<double>(interval_ms) / std::sqrt(static_cast<double>(count));
  return spaced < 1.0 ? 1 : static_cast<std::int64_t>(spaced);
}

}  // namespace

bool CoDelController::should_drop(std::int64_t sojourn_ms,
                                  std::int64_t now_ms) {
  if (!enabled()) return false;
  if (sojourn_ms < config_.target_ms) {
    // Recovery: any dispatch under target ends the excursion and, when
    // dropping, the episode -- the shed rate returns to zero immediately.
    first_above_ms_ = -1;
    if (dropping_) {
      dropping_ = false;
      episode_drops_ = 0;
    }
    return false;
  }
  if (first_above_ms_ < 0) {
    // First sample above target: start the persistence window.  Not a drop
    // -- bursts shorter than interval_ms are legitimate.
    first_above_ms_ = now_ms;
    return false;
  }
  if (!dropping_) {
    if (now_ms - first_above_ms_ < config_.interval_ms) return false;
    // Sojourn has been above target for a full interval: overload is
    // persistent, enter the dropping episode.
    dropping_ = true;
    episode_drops_ = 1;
    ++total_drops_;
    drop_next_ms_ = now_ms + control_law(config_.interval_ms, episode_drops_);
    return true;
  }
  if (now_ms < drop_next_ms_) return false;
  ++episode_drops_;
  ++total_drops_;
  drop_next_ms_ = now_ms + control_law(config_.interval_ms, episode_drops_);
  return true;
}

}  // namespace hlts::engine
