#include "engine/engine.hpp"

#include <algorithm>

#include "frontend/parser.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace hlts::engine {

namespace {

bool is_terminal(JobState state) {
  return state != JobState::Pending && state != JobState::Running;
}

}  // namespace

const char* job_state_name(JobState state) {
  switch (state) {
    case JobState::Pending: return "pending";
    case JobState::Running: return "running";
    case JobState::Succeeded: return "succeeded";
    case JobState::Failed: return "failed";
    case JobState::Cancelled: return "cancelled";
    case JobState::TimedOut: return "timed_out";
  }
  return "?";
}

// --- Job -------------------------------------------------------------------

Job::Job(FlowRequest request, JobOptions options, std::string name)
    : request_(std::move(request)),
      options_(std::move(options)),
      name_(std::move(name)) {}

JobState Job::state() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return state_;
}

bool Job::finished() const { return is_terminal(state()); }

void Job::cancel() { cancel_.store(true, std::memory_order_relaxed); }

void Job::wait() const {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [&] { return is_terminal(state_); });
}

bool Job::wait_for(std::chrono::milliseconds timeout) const {
  std::unique_lock<std::mutex> lock(mutex_);
  return cv_.wait_for(lock, timeout, [&] { return is_terminal(state_); });
}

// The post-completion accessors return references without holding the lock:
// every write to these fields happens-before the terminal state store that
// finished() observes, and nothing writes them afterwards.
const std::optional<core::FlowResult>& Job::result() const {
  HLTS_REQUIRE(finished(), "Job::result() before the job finished");
  return result_;
}

const std::string& Job::error() const {
  HLTS_REQUIRE(finished(), "Job::error() before the job finished");
  return error_;
}

const util::TraceSnapshot& Job::trace() const {
  HLTS_REQUIRE(finished(), "Job::trace() before the job finished");
  return trace_;
}

double Job::wall_ms() const {
  HLTS_REQUIRE(finished(), "Job::wall_ms() before the job finished");
  return wall_ms_;
}

std::vector<core::IterationRecord> Job::progress() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return progress_;
}

void Job::finish(JobState state) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    state_ = state;
  }
  cv_.notify_all();
}

// --- Engine ----------------------------------------------------------------

Engine::Engine(EngineOptions options) {
  const int total = static_cast<int>(util::ThreadPool::default_threads());
  num_workers_ = options.max_concurrent_jobs > 0 ? options.max_concurrent_jobs
                                                 : std::min(total, 4);
  num_workers_ = std::max(num_workers_, 1);
  threads_per_job_ = options.threads_per_job > 0
                         ? options.threads_per_job
                         : std::max(1, total / num_workers_);
  workers_.reserve(static_cast<std::size_t>(num_workers_));
  for (int i = 0; i < num_workers_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

Engine::~Engine() {
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    stop_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

JobPtr Engine::submit(FlowRequest request, JobOptions options) {
  JobPtr job;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    HLTS_REQUIRE(!stop_, "Engine::submit during shutdown");
    const std::uint64_t id = ++next_id_;
    std::string name = std::move(request.name);
    if (name.empty()) {
      name = "job" + std::to_string(id) + "." + core::flow_name(request.kind);
    }
    job.reset(new Job(std::move(request), std::move(options), std::move(name)));
    queue_.push_back(job);
    ++in_flight_;
  }
  trace_.add_counter("jobs.submitted");
  queue_cv_.notify_one();
  return job;
}

std::vector<JobPtr> Engine::submit_batch(std::vector<FlowRequest> requests,
                                         const JobOptions& options) {
  std::vector<JobPtr> jobs;
  jobs.reserve(requests.size());
  for (FlowRequest& request : requests) {
    jobs.push_back(submit(std::move(request), options));
  }
  return jobs;
}

void Engine::wait_all() {
  std::unique_lock<std::mutex> lock(queue_mutex_);
  drain_cv_.wait(lock, [&] { return in_flight_ == 0; });
}

util::TraceSnapshot Engine::metrics() const { return trace_.snapshot(); }

void Engine::worker_loop() {
  for (;;) {
    JobPtr job;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop requested and queue drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    run_job(job);
    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      --in_flight_;
    }
    drain_cv_.notify_all();
  }
}

void Engine::run_job(const JobPtr& job) {
  if (job->cancel_.load(std::memory_order_relaxed)) {
    trace_.add_counter("jobs.cancelled");
    job->finish(JobState::Cancelled);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(job->mutex_);
    job->state_ = JobState::Running;
  }

  const auto t0 = std::chrono::steady_clock::now();
  const bool has_deadline = job->options_.timeout.count() > 0;
  const auto deadline = t0 + job->options_.timeout;
  const std::uint64_t span_start = trace_.now_us();

  // The job's own trace, installed for this worker thread: every
  // instrumented phase the flow passes through records into it.
  util::Trace trace;
  util::Trace::Scope scope(&trace);

  std::optional<core::FlowResult> result;
  std::string error;
  try {
    const dfg::Dfg* g = nullptr;
    std::optional<dfg::Dfg> compiled;
    if (job->request_.dfg) {
      g = &*job->request_.dfg;
    } else {
      frontend::CompileResult cr =
          frontend::compile_or_error(job->request_.source);
      if (!cr) {
        error = cr.error.message;
      } else {
        compiled = std::move(cr.dfg);
        g = &*compiled;
      }
    }
    if (g != nullptr) {
      core::FlowParams params = job->request_.params;
      if (params.num_threads == 0) params.num_threads = threads_per_job_;
      params.cancel = &job->cancel_;
      // Chain rather than replace a hook the caller put in the request.
      const auto chained = params.on_iteration;
      params.on_iteration = [&](const core::IterationRecord& rec) {
        {
          std::lock_guard<std::mutex> lock(job->mutex_);
          job->progress_.push_back(rec);
        }
        if (job->options_.on_iteration) job->options_.on_iteration(rec);
        if (chained) chained(rec);
        if (has_deadline && std::chrono::steady_clock::now() >= deadline) {
          job->timed_out_.store(true, std::memory_order_relaxed);
          job->cancel_.store(true, std::memory_order_relaxed);
        }
      };
      result = core::run_flow(job->request_.kind, *g, params);
    }
  } catch (const std::exception& e) {
    // Nothing may cross the thread boundary: synthesis contract violations
    // become this job's diagnostic, siblings keep running.
    error = e.what();
    result.reset();
  }

  const double wall_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                t0)
          .count();
  JobState final_state;
  if (!error.empty()) {
    final_state = JobState::Failed;
  } else if (job->timed_out_.load(std::memory_order_relaxed)) {
    final_state = JobState::TimedOut;
  } else if (job->cancel_.load(std::memory_order_relaxed)) {
    final_state = JobState::Cancelled;
  } else {
    final_state = JobState::Succeeded;
  }

  {
    std::lock_guard<std::mutex> lock(job->mutex_);
    job->result_ = std::move(result);
    job->error_ = std::move(error);
    job->trace_ = trace.snapshot();
    job->wall_ms_ = wall_ms;
  }
  trace_.add_span("job." + job->name_, span_start,
                  trace_.now_us() - span_start);
  trace_.add_counter(std::string("jobs.") + job_state_name(final_state));
  job->finish(final_state);
}

}  // namespace hlts::engine
