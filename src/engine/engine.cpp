#include "engine/engine.hpp"

#include <algorithm>

#include "frontend/parser.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"
#include "util/thread_pool.hpp"

namespace hlts::engine {

namespace {

bool is_terminal(JobState state) {
  return state != JobState::Pending && state != JobState::Running;
}

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Exponential backoff with a deterministic jitter: hashing the job name
/// and attempt number (FNV-1a) de-clusters a batch of simultaneous retries
/// identically on every run, keeping failure tests reproducible.
std::chrono::milliseconds retry_delay(const std::string& job_name, int attempt,
                                      std::chrono::milliseconds base) {
  if (base.count() <= 0) return std::chrono::milliseconds{0};
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : job_name) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  h ^= static_cast<std::uint64_t>(attempt);
  h *= 1099511628211ull;
  const std::int64_t exp = base.count() << std::min(attempt - 1, 6);
  const std::int64_t jitter =
      static_cast<std::int64_t>(h % static_cast<std::uint64_t>(base.count() + 1));
  return std::chrono::milliseconds(exp + jitter);
}

}  // namespace

const char* job_state_name(JobState state) {
  switch (state) {
    case JobState::Pending: return "pending";
    case JobState::Running: return "running";
    case JobState::Succeeded: return "succeeded";
    case JobState::Failed: return "failed";
    case JobState::Cancelled: return "cancelled";
    case JobState::TimedOut: return "timed_out";
  }
  return "?";
}

// --- Job -------------------------------------------------------------------

Job::Job(FlowRequest request, JobOptions options, std::string name)
    : request_(std::move(request)),
      options_(std::move(options)),
      name_(std::move(name)) {}

JobState Job::state() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return state_;
}

bool Job::finished() const { return is_terminal(state()); }

void Job::cancel() { cancel_.store(true, std::memory_order_relaxed); }

void Job::wait() const {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [&] { return is_terminal(state_); });
}

bool Job::wait_for(std::chrono::milliseconds timeout) const {
  std::unique_lock<std::mutex> lock(mutex_);
  return cv_.wait_for(lock, timeout, [&] { return is_terminal(state_); });
}

// The post-completion accessors return references without holding the lock:
// every write to these fields happens-before the terminal state store that
// finished() observes, and nothing writes them afterwards.
const std::optional<core::FlowResult>& Job::result() const {
  HLTS_REQUIRE(finished(), "Job::result() before the job finished");
  return result_;
}

const std::string& Job::error() const {
  HLTS_REQUIRE(finished(), "Job::error() before the job finished");
  return error_;
}

const util::TraceSnapshot& Job::trace() const {
  HLTS_REQUIRE(finished(), "Job::trace() before the job finished");
  return trace_;
}

double Job::wall_ms() const {
  HLTS_REQUIRE(finished(), "Job::wall_ms() before the job finished");
  return wall_ms_;
}

std::vector<core::IterationRecord> Job::progress() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return progress_;
}

void Job::finish(JobState state) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    state_ = state;
  }
  cv_.notify_all();
}

// --- Engine ----------------------------------------------------------------

Engine::Engine(EngineOptions options) : options_(options) {
  const int total = static_cast<int>(util::ThreadPool::default_threads());
  num_workers_ = options.max_concurrent_jobs > 0 ? options.max_concurrent_jobs
                                                 : std::min(total, 4);
  num_workers_ = std::max(num_workers_, 1);
  threads_per_job_ = options.threads_per_job > 0
                         ? options.threads_per_job
                         : std::max(1, total / num_workers_);
  options_.max_retries = std::max(0, options_.max_retries);
  workers_.reserve(static_cast<std::size_t>(num_workers_));
  for (int i = 0; i < num_workers_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  if (options_.stall_deadline.count() > 0) {
    watchdog_ = std::thread([this] { watchdog_loop(); });
  }
}

Engine::~Engine() {
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    stop_ = true;
  }
  queue_cv_.notify_all();
  watchdog_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
  if (watchdog_.joinable()) watchdog_.join();
}

JobPtr Engine::submit(FlowRequest request, JobOptions options) {
  JobPtr job;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    HLTS_REQUIRE(!stop_, "Engine::submit during shutdown");
    const std::uint64_t id = ++next_id_;
    std::string name = std::move(request.name);
    if (name.empty()) {
      name = "job" + std::to_string(id) + "." + core::flow_name(request.kind);
    }
    job.reset(new Job(std::move(request), std::move(options), std::move(name)));
    queue_.push_back(job);
    ++in_flight_;
  }
  trace_.add_counter("jobs.submitted");
  queue_cv_.notify_one();
  return job;
}

std::vector<JobPtr> Engine::submit_batch(std::vector<FlowRequest> requests,
                                         const JobOptions& options) {
  std::vector<JobPtr> jobs;
  jobs.reserve(requests.size());
  for (FlowRequest& request : requests) {
    jobs.push_back(submit(std::move(request), options));
  }
  return jobs;
}

void Engine::wait_all() {
  std::unique_lock<std::mutex> lock(queue_mutex_);
  drain_cv_.wait(lock, [&] { return in_flight_ == 0; });
}

util::TraceSnapshot Engine::metrics() const { return trace_.snapshot(); }

void Engine::worker_loop() {
  for (;;) {
    JobPtr job;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop requested and queue drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    run_job(job);
    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      --in_flight_;
    }
    drain_cv_.notify_all();
  }
}

void Engine::run_job(const JobPtr& job) {
  if (job->cancel_.load(std::memory_order_relaxed)) {
    trace_.add_counter("jobs.cancelled");
    job->finish(JobState::Cancelled);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(job->mutex_);
    job->state_ = JobState::Running;
  }
  {
    std::lock_guard<std::mutex> lock(running_mutex_);
    running_.push_back(job);
  }

  const auto t0 = std::chrono::steady_clock::now();
  const bool has_deadline = job->options_.timeout.count() > 0;
  const auto deadline = t0 + job->options_.timeout;
  const std::uint64_t span_start = trace_.now_us();

  // The job's own trace, installed for this worker thread: every
  // instrumented phase the flow passes through records into it.
  util::Trace trace;
  util::Trace::Scope scope(&trace);

  // Attempt loop: Transient failures (ErrorKind::Transient exceptions and
  // flows that degraded to a Partial checkpoint) are retried with backoff
  // up to options_.max_retries extra times; the best checkpoint (most
  // committed iterations) survives across attempts.  Input/Internal errors
  // fail the job on the spot.
  std::optional<core::FlowResult> result;
  std::string error;
  bool error_transient = false;
  for (int attempt = 1;; ++attempt) {
    job->attempts_.store(attempt, std::memory_order_relaxed);
    job->heartbeat_ns_.store(now_ns(), std::memory_order_relaxed);

    std::optional<core::FlowResult> attempt_result;
    std::string attempt_error;
    bool transient = false;
    try {
      HLTS_FAILPOINT("engine.worker");
      const dfg::Dfg* g = nullptr;
      std::optional<dfg::Dfg> compiled;
      if (job->request_.dfg) {
        g = &*job->request_.dfg;
      } else {
        frontend::CompileResult cr =
            frontend::compile_or_error(job->request_.source);
        if (!cr) {
          attempt_error = cr.error.message;  // malformed input: never retried
        } else {
          compiled = std::move(cr.dfg);
          g = &*compiled;
        }
      }
      if (g != nullptr) {
        core::FlowParams params = job->request_.params;
        if (params.num_threads == 0) params.num_threads = threads_per_job_;
        params.cancel = &job->cancel_;
        // Chain rather than replace a hook the caller put in the request.
        const auto chained = params.on_iteration;
        params.on_iteration = [&](const core::IterationRecord& rec) {
          job->heartbeat_ns_.store(now_ns(), std::memory_order_relaxed);
          {
            std::lock_guard<std::mutex> lock(job->mutex_);
            job->progress_.push_back(rec);
          }
          if (job->options_.on_iteration) job->options_.on_iteration(rec);
          if (chained) chained(rec);
          if (has_deadline && std::chrono::steady_clock::now() >= deadline) {
            job->timed_out_.store(true, std::memory_order_relaxed);
            job->cancel_.store(true, std::memory_order_relaxed);
          }
        };
        attempt_result = core::run_flow(job->request_.kind, *g, params);
      }
    } catch (const std::exception& e) {
      // Nothing may cross the thread boundary: synthesis contract
      // violations become this job's diagnostic, siblings keep running.
      attempt_error = e.what();
      transient = classify_exception(e) == ErrorKind::Transient;
    }

    if (attempt_result) {
      error.clear();
      error_transient = false;
      const bool degraded =
          attempt_result->completeness == core::Completeness::Partial &&
          attempt_result->stop_reason.rfind("degraded", 0) == 0;
      if (!result || attempt_result->iterations >= result->iterations) {
        result = std::move(attempt_result);
      }
      if (!degraded) break;  // Full, or a deliberate Partial (cancel/budget)
      transient = true;      // an absorbed fault cut the run short: retry
      attempt_error = result->stop_reason;
    } else if (!attempt_error.empty()) {
      error = attempt_error;
      error_transient = transient;
    } else {
      break;  // defensive: no result and no diagnostic
    }

    if (!transient || attempt > options_.max_retries ||
        job->cancel_.load(std::memory_order_relaxed)) {
      break;
    }
    trace_.add_counter("jobs.retries");
    std::this_thread::sleep_for(
        retry_delay(job->name_, attempt, options_.retry_backoff));
  }
  // A best-effort checkpoint beats a transient diagnostic; an Input or
  // Internal error still fails the job even when an earlier attempt left a
  // partial result behind (a possibly broken invariant must fail loudly).
  if (result && error_transient) {
    error.clear();
    error_transient = false;
  }
  if (!error.empty()) result.reset();

  const double wall_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                t0)
          .count();
  JobState final_state;
  if (!error.empty()) {
    final_state = JobState::Failed;
  } else if (job->timed_out_.load(std::memory_order_relaxed)) {
    final_state = JobState::TimedOut;
  } else if (job->cancel_.load(std::memory_order_relaxed)) {
    final_state = JobState::Cancelled;
  } else {
    final_state = JobState::Succeeded;
  }

  {
    std::lock_guard<std::mutex> lock(job->mutex_);
    job->result_ = std::move(result);
    job->error_ = std::move(error);
    job->trace_ = trace.snapshot();
    job->wall_ms_ = wall_ms;
  }
  {
    std::lock_guard<std::mutex> lock(running_mutex_);
    running_.erase(std::find(running_.begin(), running_.end(), job));
  }
  trace_.add_span("job." + job->name_, span_start,
                  trace_.now_us() - span_start);
  trace_.add_counter(std::string("jobs.") + job_state_name(final_state));
  job->finish(final_state);
}

void Engine::watchdog_loop() {
  const auto deadline_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                               options_.stall_deadline)
                               .count();
  const auto period = std::max(options_.stall_deadline / 4,
                               std::chrono::milliseconds{5});
  std::unique_lock<std::mutex> lock(queue_mutex_);
  while (!stop_) {
    watchdog_cv_.wait_for(lock, period);
    if (stop_) break;
    std::vector<JobPtr> running;
    {
      std::lock_guard<std::mutex> rlock(running_mutex_);
      running = running_;
    }
    const std::int64_t now = now_ns();
    for (const JobPtr& job : running) {
      const std::int64_t hb = job->heartbeat_ns_.load(std::memory_order_relaxed);
      if (hb != 0 && now - hb > deadline_ns &&
          !job->stalled_.exchange(true, std::memory_order_relaxed)) {
        trace_.add_counter("jobs.stall_flagged");
      }
    }
  }
}

}  // namespace hlts::engine
