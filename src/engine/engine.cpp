#include "engine/engine.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdlib>

#include "core/checkpoint.hpp"
#include "frontend/parser.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"
#include "util/json.hpp"
#include "util/knobs.hpp"
#include "util/thread_pool.hpp"

namespace hlts::engine {

namespace {

bool is_terminal(JobState state) {
  return state != JobState::Pending && state != JobState::Running;
}

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Exponential backoff with a deterministic jitter: hashing the job name
/// and attempt number (FNV-1a) de-clusters a batch of simultaneous retries
/// identically on every run, keeping failure tests reproducible.
std::chrono::milliseconds retry_delay(const std::string& job_name, int attempt,
                                      std::chrono::milliseconds base) {
  if (base.count() <= 0) return std::chrono::milliseconds{0};
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : job_name) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  h ^= static_cast<std::uint64_t>(attempt);
  h *= 1099511628211ull;
  const std::int64_t exp = base.count() << std::min(attempt - 1, 6);
  const std::int64_t jitter =
      static_cast<std::int64_t>(h % static_cast<std::uint64_t>(base.count() + 1));
  return std::chrono::milliseconds(exp + jitter);
}

}  // namespace

const char* job_state_name(JobState state) {
  switch (state) {
    case JobState::Pending: return "pending";
    case JobState::Running: return "running";
    case JobState::Succeeded: return "succeeded";
    case JobState::Failed: return "failed";
    case JobState::Cancelled: return "cancelled";
    case JobState::TimedOut: return "timed_out";
    case JobState::Rejected: return "rejected";
  }
  return "?";
}

const char* overload_policy_name(OverloadPolicy policy) {
  switch (policy) {
    case OverloadPolicy::Block: return "block";
    case OverloadPolicy::Reject: return "reject";
    case OverloadPolicy::ShedOldest: return "shed_oldest";
  }
  return "?";
}

EngineOptions EngineOptions::from_env(EngineOptions base) {
  // All three reads go through the audited knob registry (util/knobs):
  // malformed or negative values throw Error(Input), per the knobs' Throw
  // policy; explicitly set fields in `base` still win over the environment.
  if (base.journal_dir.empty()) {
    if (const std::optional<std::string> dir =
            util::knobs::read_string("HLTS_JOURNAL_DIR")) {
      base.journal_dir = *dir;
    }
  }
  if (base.queue_capacity == static_cast<std::size_t>(-1)) {
    if (const std::optional<std::size_t> v =
            util::knobs::read_size("HLTS_QUEUE_CAP")) {
      base.queue_capacity = *v;
    }
  }
  if (base.memory_budget_bytes == 0) {
    if (const std::optional<std::size_t> v =
            util::knobs::read_size("HLTS_MEM_BUDGET")) {
      base.memory_budget_bytes = *v;
    }
  }
  if (base.codel.target_ms == 0) {
    if (const std::optional<long long> v =
            util::knobs::read_int("HLTS_CODEL_TARGET_MS")) {
      base.codel.target_ms = static_cast<std::int64_t>(*v);
    }
  }
  if (base.codel.interval_ms == 100) {
    if (const std::optional<long long> v =
            util::knobs::read_int("HLTS_CODEL_INTERVAL_MS")) {
      base.codel.interval_ms = static_cast<std::int64_t>(*v);
    }
  }
  return base;
}

std::string EngineHealth::to_json() const {
  util::JsonWriter w;
  w.begin_object();
  w.key("queue_depth").value(static_cast<std::int64_t>(queue_depth));
  if (queue_capacity == static_cast<std::size_t>(-1)) {
    w.key("queue_capacity").null_value();  // unbounded
  } else {
    w.key("queue_capacity").value(static_cast<std::int64_t>(queue_capacity));
  }
  w.key("in_flight").value(static_cast<std::int64_t>(in_flight));
  w.key("running").value(running);
  w.key("submitted").value(static_cast<std::int64_t>(submitted));
  w.key("retries").value(static_cast<std::int64_t>(retries));
  w.key("stalls").value(static_cast<std::int64_t>(stalls));
  w.key("sheds").value(static_cast<std::int64_t>(sheds));
  w.key("rejected").value(static_cast<std::int64_t>(rejected));
  w.key("recovered").value(static_cast<std::int64_t>(recovered));
  w.key("journal_lag").value(static_cast<std::int64_t>(journal_lag));
  w.key("journaling").value(journaling);
  w.end_object();
  return w.str();
}

api::HealthV1 EngineHealth::to_api(int shard) const {
  api::HealthV1 h;
  h.shard = shard;
  h.queue_depth = static_cast<std::int64_t>(queue_depth);
  h.queue_capacity = queue_capacity == static_cast<std::size_t>(-1)
                         ? -1
                         : static_cast<std::int64_t>(queue_capacity);
  h.in_flight = static_cast<std::int64_t>(in_flight);
  h.running = running;
  h.submitted = static_cast<std::int64_t>(submitted);
  h.retries = static_cast<std::int64_t>(retries);
  h.stalls = static_cast<std::int64_t>(stalls);
  h.sheds = static_cast<std::int64_t>(sheds);
  h.rejected = static_cast<std::int64_t>(rejected);
  h.recovered = static_cast<std::int64_t>(recovered);
  h.journal_lag = static_cast<std::int64_t>(journal_lag);
  h.journaling = journaling;
  return h;
}

api::FlowResultV1 job_result_to_api(const Job& job) {
  api::FlowResultV1 out;
  if (job.result().has_value()) {
    out = api::FlowResultV1::from_result(job.name(), *job.result());
  } else {
    out.name = job.name();
    out.kind = job.kind();
  }
  out.state = job_state_name(job.state());
  out.error = job.error();
  out.wall_ms = job.wall_ms();
  return out;
}

// --- Job -------------------------------------------------------------------

Job::Job(FlowRequest request, JobOptions options, std::string name)
    : request_(std::move(request)),
      options_(std::move(options)),
      name_(std::move(name)) {}

JobState Job::state() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return state_;
}

bool Job::finished() const { return is_terminal(state()); }

void Job::cancel() { cancel_.store(true, std::memory_order_relaxed); }

void Job::wait() const {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [&] { return is_terminal(state_); });
}

bool Job::wait_for(std::chrono::milliseconds timeout) const {
  std::unique_lock<std::mutex> lock(mutex_);
  return cv_.wait_for(lock, timeout, [&] { return is_terminal(state_); });
}

// The post-completion accessors return references without holding the lock:
// every write to these fields happens-before the terminal state store that
// finished() observes, and nothing writes them afterwards.
const std::optional<core::FlowResult>& Job::result() const {
  HLTS_REQUIRE(finished(), "Job::result() before the job finished");
  return result_;
}

const std::string& Job::error() const {
  HLTS_REQUIRE(finished(), "Job::error() before the job finished");
  return error_;
}

const util::TraceSnapshot& Job::trace() const {
  HLTS_REQUIRE(finished(), "Job::trace() before the job finished");
  return trace_;
}

double Job::wall_ms() const {
  HLTS_REQUIRE(finished(), "Job::wall_ms() before the job finished");
  return wall_ms_;
}

std::vector<core::IterationRecord> Job::progress() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return progress_;
}

void Job::finish(JobState state) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    state_ = state;
  }
  cv_.notify_all();
}

// --- Engine ----------------------------------------------------------------

Engine::Engine(EngineOptions options) : options_(options) {
  // Option audit: configurations that could never make progress are
  // refused up front instead of deadlocking or silently journaling
  // nothing.  (Negative counts/budgets cannot be expressed -- the size_t
  // fields reject them at the from_env parsing layer.)
  HLTS_REQUIRE_INPUT(
      !(options_.queue_capacity == 0 &&
        options_.overload_policy == OverloadPolicy::Block),
      "engine options: queue_capacity 0 with the Block policy would block "
      "every submit forever");
  HLTS_REQUIRE_INPUT(options_.checkpoint_every >= 0,
                     "engine options: checkpoint_every must be >= 0");
  HLTS_REQUIRE_INPUT(
      options_.journal_dir.empty() || options_.checkpoint_every > 0,
      "engine options: journaling enabled with checkpoint cadence 0 would "
      "never persist progress");
  HLTS_REQUIRE_INPUT(options_.codel.target_ms >= 0 &&
                         options_.codel.interval_ms > 0,
                     "engine options: codel target must be >= 0 and the "
                     "interval positive");
  codel_ = CoDelController(options_.codel);
  if (!options_.journal_dir.empty()) {
    journal_.emplace(options_.journal_dir);
  }

  const int total = static_cast<int>(util::ThreadPool::default_threads());
  num_workers_ = options.max_concurrent_jobs > 0 ? options.max_concurrent_jobs
                                                 : std::min(total, 4);
  num_workers_ = std::max(num_workers_, 1);
  threads_per_job_ = options.threads_per_job > 0
                         ? options.threads_per_job
                         : std::max(1, total / num_workers_);
  options_.max_retries = std::max(0, options_.max_retries);
  workers_.reserve(static_cast<std::size_t>(num_workers_));
  for (int i = 0; i < num_workers_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  if (options_.stall_deadline.count() > 0) {
    watchdog_ = std::thread([this] { watchdog_loop(); });
  }
}

Engine::~Engine() {
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    stop_ = true;
  }
  queue_cv_.notify_all();
  watchdog_cv_.notify_all();
  space_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
  if (watchdog_.joinable()) watchdog_.join();
}

bool Engine::queue_deadline_expired(const JobPtr& job, std::int64_t now) {
  const auto deadline = job->options_.queue_deadline;
  if (deadline.count() <= 0) return false;
  return now - job->enqueue_ns_ >
         std::chrono::duration_cast<std::chrono::nanoseconds>(deadline).count();
}

void Engine::retire_journal(const JobPtr& job, const char* state) {
  if (!journal_ || !job->journaled_) return;
  try {
    journal_->write_done(job->id_, state);
  } catch (const std::exception&) {
    // Durability lag, not a job failure: at worst the next recover()
    // re-runs a finished job, which is idempotent by the determinism
    // contract.
    journal_lag_.fetch_add(1, std::memory_order_relaxed);
    trace_.add_counter("journal.lag");
  }
}

void Engine::finish_rejected(const JobPtr& job, const std::string& why,
                             const char* counter) {
  retire_journal(job, "rejected");
  {
    std::lock_guard<std::mutex> lock(job->mutex_);
    job->error_ = why;
  }
  trace_.add_counter(counter);
  job->finish(JobState::Rejected);
}

std::vector<JobPtr> Engine::shed_for_space() {
  std::vector<JobPtr> shed;
  const std::int64_t now = now_ns();
  // Expired-deadline jobs go first: they would be shed at dispatch anyway,
  // so evicting them costs nothing the caller would ever have gotten.
  for (auto it = queue_.begin();
       it != queue_.end() && queue_.size() >= options_.queue_capacity;) {
    if (queue_deadline_expired(*it, now)) {
      shed.push_back(std::move(*it));
      it = queue_.erase(it);
      --in_flight_;
    } else {
      ++it;
    }
  }
  while (!queue_.empty() && queue_.size() >= options_.queue_capacity) {
    shed.push_back(std::move(queue_.front()));
    queue_.pop_front();
    --in_flight_;
  }
  return shed;
}

JobPtr Engine::submit(FlowRequest request, JobOptions options) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  if (journal_) {
    // The trial cache's cross-iteration memory is not part of a checkpoint;
    // resuming such a run could rank a near-tie differently.  Journaling
    // promises bit-identical recovery, so the combination is refused.
    HLTS_REQUIRE_INPUT(!request.params.trial_cache,
                       "engine: journaling requires trial_cache off (its "
                       "cross-iteration state is not checkpointed)");
  }
  JobPtr job;
  std::vector<JobPtr> shed;
  bool rejected = false;
  {
    std::unique_lock<std::mutex> lock(queue_mutex_);
    HLTS_REQUIRE(!stop_, "Engine::submit during shutdown");
    if (queue_.size() >= options_.queue_capacity) {
      switch (options_.overload_policy) {
        case OverloadPolicy::Block:
          space_cv_.wait(lock, [&] {
            return stop_ || queue_.size() < options_.queue_capacity;
          });
          HLTS_REQUIRE(!stop_, "Engine::submit during shutdown");
          break;
        case OverloadPolicy::Reject:
          rejected = true;
          break;
        case OverloadPolicy::ShedOldest:
          shed = shed_for_space();
          // Only a capacity of 0 leaves the queue still "full" here; the
          // incoming job itself is the one that cannot be admitted.
          rejected = queue_.size() >= options_.queue_capacity;
          break;
      }
    }
    const std::uint64_t id = ++next_id_;
    std::string name = std::move(request.name);
    if (name.empty()) {
      name = "job" + std::to_string(id) + "." + core::flow_name(request.kind);
    }
    job.reset(new Job(std::move(request), std::move(options), std::move(name)));
    job->id_ = id;
    job->enqueue_ns_ = now_ns();
    if (!rejected) {
      if (journal_) {
        // Write-ahead: a submission is either durable and queued or it
        // throws (Transient fs error) without side effects.  Holding
        // queue_mutex_ across the write serializes journal appends with id
        // assignment; submit is not the latency-critical path.
        JournalRecord rec;
        rec.id = id;
        rec.name = job->name_;
        rec.kind = job->request_.kind;
        rec.dfg = job->request_.dfg;
        rec.source = job->request_.source;
        rec.params = job->request_.params;
        rec.timeout_ms = job->options_.timeout.count();
        journal_->write_job(rec);
        job->journaled_ = true;
      }
      queue_.push_back(job);
      ++in_flight_;
    }
  }
  trace_.add_counter("jobs.submitted");
  for (const JobPtr& victim : shed) {
    sheds_.fetch_add(1, std::memory_order_relaxed);
    finish_rejected(victim,
                    queue_deadline_expired(victim, now_ns())
                        ? "shed: queue deadline exceeded under overload"
                        : "shed: queue overloaded (ShedOldest)",
                    "jobs.shed");
  }
  if (!shed.empty()) drain_cv_.notify_all();
  if (rejected) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    finish_rejected(job, "rejected: queue at capacity", "jobs.rejected");
    return job;
  }
  queue_cv_.notify_one();
  return job;
}

JobPtr Engine::submit(const api::FlowRequestV1& request) {
  FlowRequest req;
  req.name = request.name;
  req.kind = request.kind;
  req.dfg = request.dfg;
  req.source = request.source;
  req.params = request.params;
  JobOptions options;
  options.timeout = std::chrono::milliseconds(request.timeout_ms);
  options.queue_deadline = std::chrono::milliseconds(request.queue_deadline_ms);
  return submit(std::move(req), std::move(options));
}

std::vector<JobPtr> Engine::submit_batch(std::vector<FlowRequest> requests,
                                         const JobOptions& options) {
  std::vector<JobPtr> jobs;
  jobs.reserve(requests.size());
  for (FlowRequest& request : requests) {
    jobs.push_back(submit(std::move(request), options));
  }
  return jobs;
}

void Engine::wait_all() {
  std::unique_lock<std::mutex> lock(queue_mutex_);
  drain_cv_.wait(lock, [&] { return in_flight_ == 0; });
}

Engine::RecoveryReport Engine::recover(const std::string& dir) {
  RecoveryReport report;
  Journal::ScanResult scan = Journal::scan(dir);
  report.errors = std::move(scan.errors);
  // Re-journaling (checkpoints, done markers) continues only when this
  // engine journals into the *same* directory -- then the on-disk record
  // the job resumes from is also the one its new checkpoints update.
  // Otherwise the replay is one-shot: the job runs, but the old directory
  // keeps its record (at-least-once semantics on a later recover).
  const bool rejournal = journal_ && options_.journal_dir == dir;
  for (Journal::Recovered& rec : scan.jobs) {
    JobPtr job;
    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      HLTS_REQUIRE(!stop_, "Engine::recover during shutdown");
      next_id_ = std::max(next_id_, rec.record.id);
      FlowRequest request;
      request.name = rec.record.name;
      request.kind = rec.record.kind;
      request.dfg = std::move(rec.record.dfg);
      request.source = std::move(rec.record.source);
      request.params = rec.record.params;
      JobOptions options;
      options.timeout = std::chrono::milliseconds(rec.record.timeout_ms);
      job.reset(new Job(std::move(request), std::move(options),
                        std::move(rec.record.name)));
      job->id_ = rec.record.id;
      job->enqueue_ns_ = now_ns();
      job->journaled_ = rejournal;
      job->recovered_ = true;
      job->resume_raw_ = std::move(rec.checkpoint);
      // Deliberately bypasses capacity/overload admission: these jobs were
      // admitted (and journaled) before the crash; recovery must not shed
      // durable work.
      queue_.push_back(job);
      ++in_flight_;
    }
    recovered_.fetch_add(1, std::memory_order_relaxed);
    trace_.add_counter("jobs.recovered");
    queue_cv_.notify_one();
    report.jobs.push_back(std::move(job));
  }
  return report;
}

Journal::ScrubReport Engine::scrub(const std::string& dir, bool quarantine) {
  return Journal::scrub(dir, quarantine);
}

util::TraceSnapshot Engine::metrics() const { return trace_.snapshot(); }

EngineHealth Engine::health() const {
  EngineHealth h;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    h.queue_depth = queue_.size();
    h.in_flight = in_flight_;
  }
  {
    std::lock_guard<std::mutex> lock(running_mutex_);
    h.running = static_cast<int>(running_.size());
  }
  h.queue_capacity = options_.queue_capacity;
  h.submitted = submitted_.load(std::memory_order_relaxed);
  h.retries = retries_.load(std::memory_order_relaxed);
  h.stalls = stalls_.load(std::memory_order_relaxed);
  h.sheds = sheds_.load(std::memory_order_relaxed);
  h.rejected = rejected_.load(std::memory_order_relaxed);
  h.recovered = recovered_.load(std::memory_order_relaxed);
  h.journal_lag = journal_lag_.load(std::memory_order_relaxed);
  h.journaling = journal_.has_value();
  return h;
}

void Engine::worker_loop() {
  for (;;) {
    JobPtr job;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop requested and queue drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    space_cv_.notify_one();  // a Block-policy submitter may take the slot
    const std::int64_t dispatch_ns = now_ns();
    bool codel_shed = false;
    if (codel_.enabled()) {
      // CoDel controller: feed the dispatch-time sojourn of every head job
      // (recovered ones too -- they measure queueing delay like any other)
      // but never actually shed durable recovered work.
      const std::int64_t sojourn_ms =
          (dispatch_ns - job->enqueue_ns_) / 1'000'000;
      std::lock_guard<std::mutex> lock(codel_mutex_);
      codel_shed = codel_.should_drop(sojourn_ms, dispatch_ns / 1'000'000) &&
                   !job->recovered_;
    }
    if (queue_deadline_expired(job, dispatch_ns)) {
      // Deadline-aware shedding at dispatch: the caller wanted freshness,
      // not a stale answer computed long after they stopped waiting.
      sheds_.fetch_add(1, std::memory_order_relaxed);
      finish_rejected(job, "shed: queue deadline exceeded", "jobs.shed");
    } else if (codel_shed) {
      sheds_.fetch_add(1, std::memory_order_relaxed);
      finish_rejected(job, "shed: codel sojourn above target", "jobs.shed");
    } else {
      run_job(job);
    }
    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      --in_flight_;
    }
    drain_cv_.notify_all();
  }
}

void Engine::run_job(const JobPtr& job) {
  if (job->cancel_.load(std::memory_order_relaxed)) {
    retire_journal(job, "cancelled");
    trace_.add_counter("jobs.cancelled");
    job->finish(JobState::Cancelled);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(job->mutex_);
    job->state_ = JobState::Running;
  }
  {
    std::lock_guard<std::mutex> lock(running_mutex_);
    running_.push_back(job);
  }

  const auto t0 = std::chrono::steady_clock::now();
  const bool has_deadline = job->options_.timeout.count() > 0;
  const auto deadline = t0 + job->options_.timeout;
  const std::uint64_t span_start = trace_.now_us();

  // The job's own trace, installed for this worker thread: every
  // instrumented phase the flow passes through records into it.
  util::Trace trace;
  util::Trace::Scope scope(&trace);

  // Attempt loop: Transient failures (ErrorKind::Transient exceptions and
  // flows that degraded to a Partial checkpoint) are retried with backoff
  // up to options_.max_retries extra times; the best checkpoint (most
  // committed iterations) survives across attempts.  Input/Internal errors
  // fail the job on the spot.
  std::optional<core::FlowResult> result;
  std::string error;
  bool error_transient = false;
  for (int attempt = 1;; ++attempt) {
    job->attempts_.store(attempt, std::memory_order_relaxed);
    job->heartbeat_ns_.store(now_ns(), std::memory_order_relaxed);

    std::optional<core::FlowResult> attempt_result;
    std::string attempt_error;
    bool transient = false;
    try {
      HLTS_FAILPOINT("engine.worker");
      const dfg::Dfg* g = nullptr;
      std::optional<dfg::Dfg> compiled;
      std::optional<core::Checkpoint> resume;  // outlives run_flow below
      if (job->request_.dfg) {
        g = &*job->request_.dfg;
      } else {
        frontend::CompileResult cr =
            frontend::compile_or_error(job->request_.source);
        if (!cr) {
          attempt_error = cr.error.message;  // malformed input: never retried
        } else {
          compiled = std::move(cr.dfg);
          g = &*compiled;
        }
      }
      if (g != nullptr) {
        core::FlowParams params = job->request_.params;
        if (params.num_threads == 0) params.num_threads = threads_per_job_;
        if (params.memory_budget_bytes == 0) {
          params.memory_budget_bytes = options_.memory_budget_bytes;
        }
        params.cancel = &job->cancel_;
        // Recovered job: decode the journal checkpoint against the (now
        // available) graph and resume from it.  A corrupt or incompatible
        // document demotes the job to a from-scratch restart -- the
        // checkpoint buys restart latency, never correctness.
        if (job->resume_raw_) {
          try {
            resume = core::checkpoint_from_json(*job->resume_raw_, *g);
          } catch (const Error&) {
            trace_.add_counter("journal.checkpoint_invalid");
            job->resume_raw_.reset();
          }
        }
        if (resume) params.resume_from = &*resume;
        if (journal_ && job->journaled_) {
          if (params.checkpoint_every == 0) {
            params.checkpoint_every = options_.checkpoint_every;
          }
          // chained_ckpt is local to this block but the hook runs later,
          // inside run_flow -- capture it by value, not by reference.
          const auto chained_ckpt = params.on_checkpoint;
          params.on_checkpoint = [&, chained_ckpt](const core::Checkpoint& c) {
            try {
              journal_->write_checkpoint(job->id_, c);
            } catch (const std::exception& e) {
              // A failing disk must not fail (or alter) the computation:
              // Transient write errors degrade durability, visible as
              // journal lag.  Anything else is a real bug -- rethrow.
              if (classify_exception(e) != ErrorKind::Transient) throw;
              journal_lag_.fetch_add(1, std::memory_order_relaxed);
              trace_.add_counter("journal.lag");
            }
            if (chained_ckpt) chained_ckpt(c);
          };
        }
        // Chain rather than replace a hook the caller put in the request.
        const auto chained = params.on_iteration;
        params.on_iteration = [&](const core::IterationRecord& rec) {
          job->heartbeat_ns_.store(now_ns(), std::memory_order_relaxed);
          {
            std::lock_guard<std::mutex> lock(job->mutex_);
            job->progress_.push_back(rec);
          }
          if (job->options_.on_iteration) job->options_.on_iteration(rec);
          if (chained) chained(rec);
          if (has_deadline && std::chrono::steady_clock::now() >= deadline) {
            job->timed_out_.store(true, std::memory_order_relaxed);
            job->cancel_.store(true, std::memory_order_relaxed);
          }
        };
        attempt_result = core::run_flow(job->request_.kind, *g, params);
      }
    } catch (const std::exception& e) {
      // Nothing may cross the thread boundary: synthesis contract
      // violations become this job's diagnostic, siblings keep running.
      attempt_error = e.what();
      transient = classify_exception(e) == ErrorKind::Transient;
    } catch (...) {
      // A non-std::exception throwable (a throw of an int, a foreign
      // library type) would previously have escaped the worker and
      // terminated the process.  Map it to an Internal-style failure:
      // never retried, fails this job only.
      attempt_error =
          "non-standard exception escaped the flow (treated as internal "
          "error)";
      transient = false;
    }

    if (attempt_result) {
      error.clear();
      error_transient = false;
      const bool degraded =
          attempt_result->completeness == core::Completeness::Partial &&
          attempt_result->stop_reason.rfind("degraded", 0) == 0;
      if (!result || attempt_result->iterations >= result->iterations) {
        result = std::move(attempt_result);
      }
      if (!degraded) break;  // Full, or a deliberate Partial (cancel/budget)
      transient = true;      // an absorbed fault cut the run short: retry
      attempt_error = result->stop_reason;
    } else if (!attempt_error.empty()) {
      error = attempt_error;
      error_transient = transient;
    } else {
      break;  // defensive: no result and no diagnostic
    }

    if (!transient || attempt > options_.max_retries ||
        job->cancel_.load(std::memory_order_relaxed)) {
      break;
    }
    retries_.fetch_add(1, std::memory_order_relaxed);
    trace_.add_counter("jobs.retries");
    std::this_thread::sleep_for(
        retry_delay(job->name_, attempt, options_.retry_backoff));
  }
  // A best-effort checkpoint beats a transient diagnostic; an Input or
  // Internal error still fails the job even when an earlier attempt left a
  // partial result behind (a possibly broken invariant must fail loudly).
  if (result && error_transient) {
    error.clear();
    error_transient = false;
  }
  if (!error.empty()) result.reset();

  const double wall_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                t0)
          .count();
  JobState final_state;
  if (!error.empty()) {
    final_state = JobState::Failed;
  } else if (job->timed_out_.load(std::memory_order_relaxed)) {
    final_state = JobState::TimedOut;
  } else if (job->cancel_.load(std::memory_order_relaxed)) {
    final_state = JobState::Cancelled;
  } else {
    final_state = JobState::Succeeded;
  }

  {
    std::lock_guard<std::mutex> lock(job->mutex_);
    job->result_ = std::move(result);
    job->error_ = std::move(error);
    job->trace_ = trace.snapshot();
    job->wall_ms_ = wall_ms;
  }
  {
    std::lock_guard<std::mutex> lock(running_mutex_);
    running_.erase(std::find(running_.begin(), running_.end(), job));
  }
  retire_journal(job, job_state_name(final_state));
  trace_.add_span("job." + job->name_, span_start,
                  trace_.now_us() - span_start);
  trace_.add_counter(std::string("jobs.") + job_state_name(final_state));
  job->finish(final_state);
}

void Engine::watchdog_loop() {
  const auto deadline_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                               options_.stall_deadline)
                               .count();
  const auto period = std::max(options_.stall_deadline / 4,
                               std::chrono::milliseconds{5});
  std::unique_lock<std::mutex> lock(queue_mutex_);
  while (!stop_) {
    watchdog_cv_.wait_for(lock, period);
    if (stop_) break;
    std::vector<JobPtr> running;
    {
      std::lock_guard<std::mutex> rlock(running_mutex_);
      running = running_;
    }
    const std::int64_t now = now_ns();
    for (const JobPtr& job : running) {
      const std::int64_t hb = job->heartbeat_ns_.load(std::memory_order_relaxed);
      if (hb != 0 && now - hb > deadline_ns &&
          !job->stalled_.exchange(true, std::memory_order_relaxed)) {
        stalls_.fetch_add(1, std::memory_order_relaxed);
        trace_.add_counter("jobs.stall_flagged");
      }
    }
  }
}

}  // namespace hlts::engine
