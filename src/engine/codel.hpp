// CoDel-style adaptive admission controller for the engine's pending queue.
//
// The fixed queue cap (EngineOptions::queue_capacity) bounds *depth*; it
// says nothing about *staleness*.  Under sustained overload a bounded FIFO
// converges to every admitted job waiting the full drain time of the queue
// -- the classic "standing queue" bufferbloat failure, here measured in
// synthesis jobs instead of packets.  CoDel (Nichols & Jacobson, "Controlling
// Queue Delay") attacks the standing queue directly: it watches the
// *sojourn time* of the job about to dispatch, and only intervenes when
// sojourn has stayed above `target_ms` for a full `interval_ms` window --
// a transient burst above target is left alone, a persistent one is real
// overload.  Once in the dropping state, jobs are shed at dispatch with the
// control law
//
//     next_drop = now + interval / sqrt(drops_this_episode)
//
// so the shed rate ramps gently and backs off the moment a dispatched job's
// sojourn falls back under target (recovery: the controller leaves the
// dropping state and the shed rate returns to zero).  This is the
// "tightening queue_deadline" the serving layer needs: instead of a static
// per-request freshness bound, the effective deadline contracts as measured
// queueing delay climbs and relaxes as it recovers.
//
// Determinism: the controller is a pure state machine over the timestamps
// it is fed -- no clock reads, no randomness -- so unit tests drive it with
// synthetic time and the same input sequence always sheds the same jobs.
//
// Off by default (target_ms == 0): an engine without the knob behaves
// exactly as before this controller existed.
#pragma once

#include <cstdint>

namespace hlts::engine {

struct CoDelConfig {
  /// Acceptable standing sojourn in ms; 0 disables the controller.
  std::int64_t target_ms = 0;
  /// Sliding window a sojourn excursion must persist for before the
  /// controller starts shedding; also the base period of the control law.
  std::int64_t interval_ms = 100;
};

class CoDelController {
 public:
  explicit CoDelController(CoDelConfig config) : config_(config) {}

  [[nodiscard]] bool enabled() const { return config_.target_ms > 0; }

  /// Feeds the sojourn of the job about to dispatch; true means shed it
  /// (head drop) instead of running it.  `now_ms` must be monotone.
  [[nodiscard]] bool should_drop(std::int64_t sojourn_ms, std::int64_t now_ms);

  /// True while the controller is in its dropping episode.
  [[nodiscard]] bool dropping() const { return dropping_; }
  /// Jobs shed across all episodes.
  [[nodiscard]] std::uint64_t total_drops() const { return total_drops_; }

 private:
  CoDelConfig config_;
  /// First instant the dispatch-time sojourn exceeded target with no dip
  /// since; -1 = currently under target.  (-1, not 0: feeding a clock that
  /// starts at zero must still register the excursion.)
  std::int64_t first_above_ms_ = -1;
  bool dropping_ = false;
  std::int64_t drop_next_ms_ = 0;
  std::uint64_t episode_drops_ = 0;
  std::uint64_t total_drops_ = 0;
};

}  // namespace hlts::engine
