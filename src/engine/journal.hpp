// Write-ahead job journal: the engine's durability layer.
//
// One directory holds the whole persistent state, three files per job, all
// committed with util::fs::write_file_atomic (temp + rename -- a reader
// never sees a torn final file):
//
//   job-<id>.json       the write-ahead record, written at submit() before
//                       the job enters the queue: name, flow kind, the
//                       input (DSL source or serialized DFG), the
//                       serializable FlowParams knobs, and the timeout.
//   job-<id>.ckpt.json  the latest Algorithm-1 checkpoint (iteration +
//                       schedule + binding, core/checkpoint.hpp), rewritten
//                       in place every EngineOptions::checkpoint_every
//                       committed mergers.
//   job-<id>.done.json  the completion marker, written after the job
//                       reaches a terminal state and *before* the record
//                       and checkpoint are deleted.
//
// Recovery protocol (scan): a done marker means the job finished -- its
// files are garbage from an interrupted cleanup and are removed.  A record
// without a done marker is an unfinished job: it is re-admitted, resuming
// from its checkpoint when one exists and parses (a torn or corrupt
// checkpoint demotes the job to a from-scratch restart -- correctness never
// depends on the checkpoint, only restart latency does).  Orphan
// checkpoints and markers are swept.  Malformed record files are reported
// and left in place for inspection; they are never half-replayed.
//
// Crash-safety argument, by crash point:
//   - mid record write: torn job-<id>.json.tmp only; scan ignores .tmp ->
//     the submit never happened (submit() had not returned).
//   - after record, any time before done: record (+ maybe checkpoint) is
//     intact -> job re-runs; Algorithm 1 resumed from checkpoint k is
//     bit-identical to the uninterrupted run (see core/checkpoint.hpp).
//   - mid checkpoint rewrite: rename keeps the previous checkpoint ->
//     resume just replays a few more iterations.
//   - mid cleanup: done marker survives first -> scan finishes the cleanup.
//
// Integrity framing (version 3): every journal document -- record,
// checkpoint, done marker -- carries a "crc32c" member holding the CRC-32C
// of the document's canonical serialization *without* that member.  The
// scan and the scrubber recompute it on read, so a bit flip, a truncation
// that still parses, or a duplicated/garbled tail is detected instead of
// replayed: recovery refuses corrupt state (the record stays on disk, the
// job is not resurrected from lies).  Version-2 documents (pre-checksum)
// are still readable; they simply have no integrity proof, which the
// scrubber reports as `legacy_v2`.
//
// Failpoint sites: `journal.checkpoint` fires on entry of
// write_checkpoint and `journal.done` on entry of write_done (their kill
// mode is the crash-soak hook); `journal.write` / `journal.commit` fire
// inside write_file_atomic and model torn writes.
//
// The RNG question: Algorithm 1 is fully deterministic (candidate ranking,
// wave evaluation and the dC reduction are all tie-broken by rank), so a
// checkpoint needs no RNG state; util::Rng::state()/set_state() exist for
// callers that do randomize inputs and want to journal their own stream.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "api/api.hpp"
#include "core/checkpoint.hpp"
#include "core/flows.hpp"
#include "dfg/dfg.hpp"
#include "util/json.hpp"

namespace hlts::engine {

/// The durable image of one submitted job -- everything needed to re-create
/// its FlowRequest in a fresh process.  Run hooks (on_iteration etc.) are
/// process-local and deliberately absent.  On disk the payload is an
/// api::FlowRequestV1 document (the journal shares the wire schema); the
/// flat fields here are the engine-side view of the same data.
struct JournalRecord {
  std::uint64_t id = 0;  ///< engine job id; also the journal filename key
  std::string name;
  core::FlowKind kind = core::FlowKind::Ours;
  std::optional<dfg::Dfg> dfg;  ///< engaged when the request carried a DFG
  std::string source;           ///< otherwise the DSL source text
  core::FlowParams params;      ///< serializable knobs only
  std::int64_t timeout_ms = 0;  ///< JobOptions::timeout

  /// The record as the versioned DTO the journal persists.
  [[nodiscard]] api::FlowRequestV1 to_request() const;
  /// Rebuilds the engine-side view from a decoded DTO.
  [[nodiscard]] static JournalRecord from_request(std::uint64_t id,
                                                  api::FlowRequestV1 req);
};

class Journal {
 public:
  /// Opens (creating if needed) the journal directory.  Throws
  /// hlts::Error(ErrorKind::Transient) when the directory cannot be made.
  explicit Journal(std::string dir);

  [[nodiscard]] const std::string& dir() const { return dir_; }

  /// Persists the write-ahead record.  Called before the job is queued;
  /// a throw (Transient fs error) means the submission is not durable and
  /// the engine refuses it.
  void write_job(const JournalRecord& rec) const;

  /// Rewrites the job's checkpoint in place (atomic).  Concurrency-safe
  /// across jobs: each job owns its own file and checkpoints are written
  /// from the job's single worker thread.
  void write_checkpoint(std::uint64_t id, const core::Checkpoint& c) const;

  /// Marks the job finished and removes its record + checkpoint.  The
  /// marker is committed first, so a crash mid-cleanup is finished by the
  /// next scan instead of resurrecting the job.
  void write_done(std::uint64_t id, const std::string& state) const;

  /// One unfinished job found by scan().
  struct Recovered {
    JournalRecord record;
    /// Raw checkpoint document; decoded against the (possibly still to be
    /// compiled) DFG by the worker that re-runs the job.  Disengaged when
    /// no checkpoint existed or it was corrupt.
    std::optional<util::JsonValue> checkpoint;
  };

  struct ScanResult {
    std::vector<Recovered> jobs;       ///< unfinished jobs, ascending id
    std::vector<std::string> errors;   ///< "file: what was wrong" notes
  };

  /// Replays the directory: completes interrupted cleanups, sweeps orphan
  /// files, returns every unfinished job.  Corrupt record files are
  /// reported in `errors` and left on disk; corrupt checkpoints are
  /// reported, removed, and their job returned without a resume point.
  /// A missing directory yields an empty result.
  [[nodiscard]] static ScanResult scan(const std::string& dir);

  /// One file's verdict from scrub().
  struct ScrubFinding {
    std::string file;    ///< name inside the journal directory
    std::string kind;    ///< record | checkpoint | done | temp | unknown
    /// ok | legacy_v2 | zero_length | torn | trailing_garbage |
    /// checksum_mismatch | unsupported_version | id_mismatch |
    /// invalid_record | orphan_checkpoint | temp_leftover | unknown_file |
    /// unreadable
    std::string status;
    std::string detail;       ///< human-readable evidence
    bool corrupt = false;     ///< the file's content cannot be trusted
    bool quarantined = false; ///< moved to <dir>/quarantine/
  };

  /// Read-only (unless quarantining) integrity audit of a journal
  /// directory: every file is classified, committed records/checkpoints/
  /// markers are CRC-verified, and nothing is replayed or repaired.
  struct ScrubReport {
    std::string dir;
    std::vector<ScrubFinding> findings;  ///< one per file, sorted by name
    std::int64_t files = 0;
    std::int64_t ok = 0;             ///< intact v3 files
    std::int64_t legacy = 0;         ///< intact pre-checksum v2 files
    std::int64_t corrupt = 0;        ///< torn/bit-flipped/duplicated/...
    std::int64_t orphans = 0;        ///< checkpoints with no record
    std::int64_t temp_leftovers = 0; ///< interrupted-commit .tmp files
    std::int64_t unknown = 0;        ///< files the journal never writes

    /// No corruption and no debris: what a retired or healthy journal
    /// directory looks like.
    [[nodiscard]] bool clean() const {
      return corrupt == 0 && orphans == 0 && temp_leftovers == 0 &&
             unknown == 0;
    }
    [[nodiscard]] util::JsonValue to_json() const;
  };

  /// Audits `dir` without replaying anything (recovery's preflight and the
  /// hlts_fsck CLI).  With `quarantine`, corrupt files and temp leftovers
  /// are moved into `<dir>/quarantine/` so a subsequent recovery scan sees
  /// only trustworthy state.  A missing directory yields an empty, clean
  /// report.
  [[nodiscard]] static ScrubReport scrub(const std::string& dir,
                                         bool quarantine = false);

 private:
  std::string dir_;
};

}  // namespace hlts::engine
