#include "engine/journal.hpp"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <set>
#include <utility>

#include "api/api.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"
#include "util/fs.hpp"

namespace hlts::engine {

namespace {

using util::JsonValue;

// Version 2: the job payload is an api::FlowRequestV1 document under
// "request" -- the journal shares the wire schema instead of keeping a
// private record shape.  (Version 1 spelled the same fields out inline;
// no deployed journal outlives its process fleet, so v1 is not read back.)
constexpr int kVersion = 2;

std::string record_path(const std::string& dir, std::uint64_t id) {
  return dir + "/job-" + std::to_string(id) + ".json";
}
std::string ckpt_path(const std::string& dir, std::uint64_t id) {
  return dir + "/job-" + std::to_string(id) + ".ckpt.json";
}
std::string done_path(const std::string& dir, std::uint64_t id) {
  return dir + "/job-" + std::to_string(id) + ".done.json";
}

JsonValue record_to_json(const JournalRecord& r) {
  return JsonValue::make_object({
      {"version", JsonValue::make_int(kVersion)},
      {"id", JsonValue::make_int(static_cast<std::int64_t>(r.id))},
      {"request", r.to_request().to_json()},
  });
}

JournalRecord record_from_json(const JsonValue& v) {
  if (!v.is_object()) {
    throw Error("journal record: not a JSON object", ErrorKind::Input);
  }
  if (v.get_int("version", -1) != kVersion) {
    throw Error("journal record: unsupported version", ErrorKind::Input);
  }
  const std::int64_t id = v.get_int("id", -1);
  if (id < 1) throw Error("journal record: bad id", ErrorKind::Input);
  const JsonValue* request = v.find("request");
  if (request == nullptr) {
    throw Error("journal record: missing request", ErrorKind::Input);
  }
  return JournalRecord::from_request(static_cast<std::uint64_t>(id),
                                     api::FlowRequestV1::from_json(*request));
}

/// Parses "job-<id><suffix>" and returns the id; nullopt when `name` does
/// not have exactly that shape.
std::optional<std::uint64_t> parse_id(const std::string& name,
                                      const std::string& suffix) {
  const std::string prefix = "job-";
  if (name.size() <= prefix.size() + suffix.size()) return std::nullopt;
  if (name.compare(0, prefix.size(), prefix) != 0) return std::nullopt;
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return std::nullopt;
  }
  const std::string digits =
      name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
  if (digits.empty() ||
      digits.find_first_not_of("0123456789") != std::string::npos) {
    return std::nullopt;
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long id = std::strtoull(digits.c_str(), &end, 10);
  if (errno != 0 || end == nullptr || *end != '\0') return std::nullopt;
  return static_cast<std::uint64_t>(id);
}

}  // namespace

api::FlowRequestV1 JournalRecord::to_request() const {
  api::FlowRequestV1 req;
  req.name = name;
  req.kind = kind;
  req.dfg = dfg;
  req.source = source;
  req.params = params;
  req.timeout_ms = timeout_ms;
  return req;
}

JournalRecord JournalRecord::from_request(std::uint64_t id,
                                          api::FlowRequestV1 req) {
  JournalRecord r;
  r.id = id;
  r.name = std::move(req.name);
  r.kind = req.kind;
  r.dfg = std::move(req.dfg);
  r.source = std::move(req.source);
  r.params = req.params;
  if (req.timeout_ms < 0) {
    throw Error("journal record: negative timeout", ErrorKind::Input);
  }
  r.timeout_ms = req.timeout_ms;
  return r;
}

Journal::Journal(std::string dir) : dir_(std::move(dir)) {
  util::fs::create_directories(dir_);
}

void Journal::write_job(const JournalRecord& rec) const {
  util::fs::write_file_atomic(record_path(dir_, rec.id),
                              util::json_dump(record_to_json(rec)) + "\n");
}

void Journal::write_checkpoint(std::uint64_t id,
                               const core::Checkpoint& c) const {
  // The crash-soak hook: kill mode here models a process death at a
  // checkpoint boundary; error mode models a failing disk (the engine
  // absorbs it as journal lag).
  HLTS_FAILPOINT("journal.checkpoint");
  const JsonValue doc = JsonValue::make_object({
      {"version", JsonValue::make_int(kVersion)},
      {"id", JsonValue::make_int(static_cast<std::int64_t>(id))},
      {"checkpoint", core::checkpoint_to_json(c)},
  });
  util::fs::write_file_atomic(ckpt_path(dir_, id),
                              util::json_dump(doc) + "\n");
}

void Journal::write_done(std::uint64_t id, const std::string& state) const {
  HLTS_FAILPOINT("journal.done");
  const JsonValue doc = JsonValue::make_object({
      {"version", JsonValue::make_int(kVersion)},
      {"id", JsonValue::make_int(static_cast<std::int64_t>(id))},
      {"state", JsonValue::make_string(state)},
  });
  // Marker first: once it is durable the job can never be resurrected, and
  // an interrupted cleanup below is finished by the next scan.
  util::fs::write_file_atomic(done_path(dir_, id), util::json_dump(doc) + "\n");
  util::fs::remove_file(ckpt_path(dir_, id));
  util::fs::remove_file(record_path(dir_, id));
  util::fs::remove_file(done_path(dir_, id));
}

Journal::ScanResult Journal::scan(const std::string& dir) {
  ScanResult out;
  std::map<std::uint64_t, std::string> records;  // id -> filename
  std::set<std::uint64_t> ckpts;
  std::set<std::uint64_t> dones;
  for (const std::string& name : util::fs::list_files(dir)) {
    if (auto id = parse_id(name, ".ckpt.json")) {
      ckpts.insert(*id);
    } else if (auto id2 = parse_id(name, ".done.json")) {
      dones.insert(*id2);
    } else if (auto id3 = parse_id(name, ".json")) {
      records.emplace(*id3, name);
    } else {
      out.errors.push_back(name + ": unrecognized journal file (ignored)");
    }
  }

  // Finished jobs: complete the interrupted cleanup (marker is removed
  // last, so a re-crash here just repeats this block).
  for (const std::uint64_t id : dones) {
    util::fs::remove_file(ckpt_path(dir, id));
    util::fs::remove_file(record_path(dir, id));
    util::fs::remove_file(done_path(dir, id));
    records.erase(id);
    ckpts.erase(id);
  }
  // Orphan checkpoints (record cleanup that died between the two removes,
  // or a hand-deleted record): no job to attach them to.
  for (const std::uint64_t id : ckpts) {
    if (records.count(id) == 0) {
      util::fs::remove_file(ckpt_path(dir, id));
    }
  }

  for (const auto& [id, filename] : records) {
    const std::optional<std::string> text =
        util::fs::read_file(record_path(dir, id));
    if (!text) {
      out.errors.push_back(filename + ": unreadable (left in place)");
      continue;
    }
    std::string parse_error;
    const std::optional<JsonValue> doc = util::json_parse(*text, &parse_error);
    Recovered rec;
    if (!doc) {
      out.errors.push_back(filename + ": " + parse_error + " (left in place)");
      continue;
    }
    try {
      rec.record = record_from_json(*doc);
    } catch (const Error& e) {
      out.errors.push_back(filename + ": " + e.what() + " (left in place)");
      continue;
    }
    if (rec.record.id != id) {
      out.errors.push_back(filename + ": id mismatch (left in place)");
      continue;
    }

    if (ckpts.count(id) != 0) {
      const std::optional<std::string> ctext =
          util::fs::read_file(ckpt_path(dir, id));
      std::string cerr;
      std::optional<JsonValue> cdoc =
          ctext ? util::json_parse(*ctext, &cerr) : std::nullopt;
      const JsonValue* payload =
          cdoc && cdoc->get_int("version", -1) == kVersion &&
                  cdoc->get_int("id", -1) == static_cast<std::int64_t>(id)
              ? cdoc->find("checkpoint")
              : nullptr;
      if (payload != nullptr) {
        rec.checkpoint = *payload;
      } else {
        // A corrupt checkpoint only costs restart latency, never
        // correctness: drop it and restart the job from scratch.
        out.errors.push_back("job-" + std::to_string(id) +
                             ".ckpt.json: corrupt checkpoint (removed; job "
                             "restarts from scratch)");
        util::fs::remove_file(ckpt_path(dir, id));
      }
    }
    out.jobs.push_back(std::move(rec));
  }
  // std::map iteration already yields ascending ids.
  return out;
}

}  // namespace hlts::engine
