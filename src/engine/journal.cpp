#include "engine/journal.hpp"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <set>
#include <utility>

#include "api/api.hpp"
#include "util/crc32c.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"
#include "util/fs.hpp"

namespace hlts::engine {

namespace {

using util::JsonValue;

// Version 3: the version-2 shape (the job payload is an api::FlowRequestV1
// document under "request" -- the journal shares the wire schema) plus a
// "crc32c" integrity member covering the rest of the document.  Version 2
// is still read back; version 1 spelled the fields out inline and is not.
constexpr int kVersion = 3;
constexpr int kLegacyVersion = 2;

std::string record_path(const std::string& dir, std::uint64_t id) {
  return dir + "/job-" + std::to_string(id) + ".json";
}
std::string ckpt_path(const std::string& dir, std::uint64_t id) {
  return dir + "/job-" + std::to_string(id) + ".ckpt.json";
}
std::string done_path(const std::string& dir, std::uint64_t id) {
  return dir + "/job-" + std::to_string(id) + ".done.json";
}

/// Serializes `members` with a trailing "crc32c" member sealing everything
/// before it.  The CRC is over the canonical json_dump of the object
/// *without* the member, which is exactly what verify_seal() recomputes.
std::string seal(JsonValue::Object members) {
  const std::string body =
      util::json_dump(JsonValue::make_object(JsonValue::Object(members)));
  members.emplace_back(
      "crc32c", JsonValue::make_string(util::crc32c_hex(util::crc32c(body))));
  return util::json_dump(JsonValue::make_object(std::move(members))) + "\n";
}

/// Checks a parsed v3 document's seal: rebuilds the object without the
/// "crc32c" member, re-serializes canonically and compares CRCs.  Returns
/// false (with a human-readable reason) on a missing/malformed/mismatched
/// seal.  Canonical re-serialization is sound because every v3 file is
/// produced by json_dump: parse-then-dump is byte-identical for them, so
/// any byte damage that changes a value changes the CRC.
bool verify_seal(const JsonValue& doc, std::string* why) {
  if (!doc.is_object()) {
    *why = "not a JSON object";
    return false;
  }
  const JsonValue* crc = doc.find("crc32c");
  if (crc == nullptr || !crc->is_string()) {
    *why = "missing crc32c";
    return false;
  }
  JsonValue::Object without;
  without.reserve(doc.as_object().size());
  for (const auto& [key, value] : doc.as_object()) {
    if (key != "crc32c") without.emplace_back(key, value);
  }
  const std::string body =
      util::json_dump(JsonValue::make_object(std::move(without)));
  const std::string expect = util::crc32c_hex(util::crc32c(body));
  if (crc->as_string() != expect) {
    *why = "checksum mismatch (stored " + crc->as_string() + ", computed " +
           expect + ")";
    return false;
  }
  return true;
}

/// Version gate shared by records and checkpoints: v3 must carry a valid
/// seal, v2 is accepted unsealed (legacy), anything else is refused.
bool version_ok(const JsonValue& doc, std::string* why) {
  const std::int64_t version = doc.get_int("version", -1);
  if (version == kLegacyVersion) return true;
  if (version != kVersion) {
    *why = "unsupported version";
    return false;
  }
  return verify_seal(doc, why);
}

JsonValue record_to_json(const JournalRecord& r) {
  return JsonValue::make_object({
      {"version", JsonValue::make_int(kVersion)},
      {"id", JsonValue::make_int(static_cast<std::int64_t>(r.id))},
      {"request", r.to_request().to_json()},
  });
}

JournalRecord record_from_json(const JsonValue& v) {
  if (!v.is_object()) {
    throw Error("journal record: not a JSON object", ErrorKind::Input);
  }
  std::string why;
  if (!version_ok(v, &why)) {
    throw Error("journal record: " + why, ErrorKind::Input);
  }
  const std::int64_t id = v.get_int("id", -1);
  if (id < 1) throw Error("journal record: bad id", ErrorKind::Input);
  const JsonValue* request = v.find("request");
  if (request == nullptr) {
    throw Error("journal record: missing request", ErrorKind::Input);
  }
  return JournalRecord::from_request(static_cast<std::uint64_t>(id),
                                     api::FlowRequestV1::from_json(*request));
}

/// Parses "job-<id><suffix>" and returns the id; nullopt when `name` does
/// not have exactly that shape.
std::optional<std::uint64_t> parse_id(const std::string& name,
                                      const std::string& suffix) {
  const std::string prefix = "job-";
  if (name.size() <= prefix.size() + suffix.size()) return std::nullopt;
  if (name.compare(0, prefix.size(), prefix) != 0) return std::nullopt;
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return std::nullopt;
  }
  const std::string digits =
      name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
  if (digits.empty() ||
      digits.find_first_not_of("0123456789") != std::string::npos) {
    return std::nullopt;
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long id = std::strtoull(digits.c_str(), &end, 10);
  if (errno != 0 || end == nullptr || *end != '\0') return std::nullopt;
  return static_cast<std::uint64_t>(id);
}

}  // namespace

api::FlowRequestV1 JournalRecord::to_request() const {
  api::FlowRequestV1 req;
  req.name = name;
  req.kind = kind;
  req.dfg = dfg;
  req.source = source;
  req.params = params;
  req.timeout_ms = timeout_ms;
  return req;
}

JournalRecord JournalRecord::from_request(std::uint64_t id,
                                          api::FlowRequestV1 req) {
  JournalRecord r;
  r.id = id;
  r.name = std::move(req.name);
  r.kind = req.kind;
  r.dfg = std::move(req.dfg);
  r.source = std::move(req.source);
  r.params = req.params;
  if (req.timeout_ms < 0) {
    throw Error("journal record: negative timeout", ErrorKind::Input);
  }
  r.timeout_ms = req.timeout_ms;
  return r;
}

Journal::Journal(std::string dir) : dir_(std::move(dir)) {
  util::fs::create_directories(dir_);
}

void Journal::write_job(const JournalRecord& rec) const {
  const JsonValue doc = record_to_json(rec);
  util::fs::write_file_atomic(record_path(dir_, rec.id),
                              seal(JsonValue::Object(doc.as_object())));
}

void Journal::write_checkpoint(std::uint64_t id,
                               const core::Checkpoint& c) const {
  // The crash-soak hook: kill mode here models a process death at a
  // checkpoint boundary; error mode models a failing disk (the engine
  // absorbs it as journal lag).
  HLTS_FAILPOINT("journal.checkpoint");
  util::fs::write_file_atomic(
      ckpt_path(dir_, id),
      seal({
          {"version", JsonValue::make_int(kVersion)},
          {"id", JsonValue::make_int(static_cast<std::int64_t>(id))},
          {"checkpoint", core::checkpoint_to_json(c)},
      }));
}

void Journal::write_done(std::uint64_t id, const std::string& state) const {
  HLTS_FAILPOINT("journal.done");
  // Marker first: once it is durable the job can never be resurrected, and
  // an interrupted cleanup below is finished by the next scan.
  util::fs::write_file_atomic(
      done_path(dir_, id),
      seal({
          {"version", JsonValue::make_int(kVersion)},
          {"id", JsonValue::make_int(static_cast<std::int64_t>(id))},
          {"state", JsonValue::make_string(state)},
      }));
  util::fs::remove_file(ckpt_path(dir_, id));
  util::fs::remove_file(record_path(dir_, id));
  util::fs::remove_file(done_path(dir_, id));
}

Journal::ScanResult Journal::scan(const std::string& dir) {
  ScanResult out;
  std::map<std::uint64_t, std::string> records;  // id -> filename
  std::set<std::uint64_t> ckpts;
  std::set<std::uint64_t> dones;
  for (const std::string& name : util::fs::list_files(dir)) {
    if (auto id = parse_id(name, ".ckpt.json")) {
      ckpts.insert(*id);
    } else if (auto id2 = parse_id(name, ".done.json")) {
      dones.insert(*id2);
    } else if (auto id3 = parse_id(name, ".json")) {
      records.emplace(*id3, name);
    } else {
      out.errors.push_back(name + ": unrecognized journal file (ignored)");
    }
  }

  // Finished jobs: complete the interrupted cleanup (marker is removed
  // last, so a re-crash here just repeats this block).
  for (const std::uint64_t id : dones) {
    util::fs::remove_file(ckpt_path(dir, id));
    util::fs::remove_file(record_path(dir, id));
    util::fs::remove_file(done_path(dir, id));
    records.erase(id);
    ckpts.erase(id);
  }
  // Orphan checkpoints (record cleanup that died between the two removes,
  // or a hand-deleted record): no job to attach them to.
  for (const std::uint64_t id : ckpts) {
    if (records.count(id) == 0) {
      util::fs::remove_file(ckpt_path(dir, id));
    }
  }

  for (const auto& [id, filename] : records) {
    const std::optional<std::string> text =
        util::fs::read_file(record_path(dir, id));
    if (!text) {
      out.errors.push_back(filename + ": unreadable (left in place)");
      continue;
    }
    std::string parse_error;
    const std::optional<JsonValue> doc = util::json_parse(*text, &parse_error);
    Recovered rec;
    if (!doc) {
      out.errors.push_back(filename + ": " + parse_error + " (left in place)");
      continue;
    }
    try {
      rec.record = record_from_json(*doc);
    } catch (const Error& e) {
      out.errors.push_back(filename + ": " + e.what() + " (left in place)");
      continue;
    }
    if (rec.record.id != id) {
      out.errors.push_back(filename + ": id mismatch (left in place)");
      continue;
    }

    if (ckpts.count(id) != 0) {
      const std::optional<std::string> ctext =
          util::fs::read_file(ckpt_path(dir, id));
      std::string cerr;
      std::optional<JsonValue> cdoc =
          ctext ? util::json_parse(*ctext, &cerr) : std::nullopt;
      std::string why;
      const JsonValue* payload =
          cdoc && cdoc->is_object() && version_ok(*cdoc, &why) &&
                  cdoc->get_int("id", -1) == static_cast<std::int64_t>(id)
              ? cdoc->find("checkpoint")
              : nullptr;
      if (payload != nullptr) {
        rec.checkpoint = *payload;
      } else {
        // A corrupt checkpoint only costs restart latency, never
        // correctness: drop it and restart the job from scratch.
        out.errors.push_back("job-" + std::to_string(id) +
                             ".ckpt.json: corrupt checkpoint (removed; job "
                             "restarts from scratch)");
        util::fs::remove_file(ckpt_path(dir, id));
      }
    }
    out.jobs.push_back(std::move(rec));
  }
  // std::map iteration already yields ascending ids.
  return out;
}

namespace {

/// Classifies the *content* of one committed journal document (record,
/// checkpoint or done marker) for the scrubber.  Fills status/detail/
/// corrupt; `id` is the id parsed from the filename.
void scrub_content(const std::string& path, std::uint64_t id,
                   bool is_record, Journal::ScrubFinding* f) {
  const std::optional<std::string> text = util::fs::read_file(path);
  if (!text) {
    f->status = "unreadable";
    f->detail = "cannot read file";
    f->corrupt = true;
    return;
  }
  if (text->empty()) {
    f->status = "zero_length";
    f->detail = "file is empty";
    f->corrupt = true;
    return;
  }
  std::string parse_error;
  const std::optional<JsonValue> doc = util::json_parse(*text, &parse_error);
  if (!doc) {
    // Distinguish a duplicated/garbled tail (the first line still parses)
    // from a torn prefix (it does not): journal files are one JSON
    // document plus '\n', so anything after the first line is foreign.
    const std::size_t nl = text->find('\n');
    if (nl != std::string::npos && nl + 1 < text->size()) {
      if (util::json_parse(text->substr(0, nl))) {
        f->status = "trailing_garbage";
        f->detail = "valid document followed by " +
                    std::to_string(text->size() - nl - 1) +
                    " extra bytes (duplicated record?)";
        f->corrupt = true;
        return;
      }
    }
    f->status = "torn";
    f->detail = parse_error;
    f->corrupt = true;
    return;
  }
  if (!doc->is_object()) {
    f->status = "torn";
    f->detail = "not a JSON object";
    f->corrupt = true;
    return;
  }
  const std::int64_t version = doc->get_int("version", -1);
  if (version == kLegacyVersion) {
    f->status = "legacy_v2";
    f->detail = "pre-checksum document (no integrity proof)";
  } else if (version != kVersion) {
    f->status = "unsupported_version";
    f->detail = "version " + std::to_string(version);
    f->corrupt = true;
    return;
  } else {
    std::string why;
    if (!verify_seal(*doc, &why)) {
      f->status = "checksum_mismatch";
      f->detail = why;
      f->corrupt = true;
      return;
    }
    f->status = "ok";
  }
  if (doc->get_int("id", -1) != static_cast<std::int64_t>(id)) {
    f->status = "id_mismatch";
    f->detail = "document id " + std::to_string(doc->get_int("id", -1)) +
                " != filename id " + std::to_string(id);
    f->corrupt = true;
    return;
  }
  if (is_record) {
    try {
      (void)record_from_json(*doc);
    } catch (const Error& e) {
      f->status = "invalid_record";
      f->detail = e.what();
      f->corrupt = true;
    }
  }
}

}  // namespace

util::JsonValue Journal::ScrubReport::to_json() const {
  JsonValue::Array entries;
  entries.reserve(findings.size());
  for (const ScrubFinding& f : findings) {
    entries.push_back(JsonValue::make_object({
        {"file", JsonValue::make_string(f.file)},
        {"kind", JsonValue::make_string(f.kind)},
        {"status", JsonValue::make_string(f.status)},
        {"detail", JsonValue::make_string(f.detail)},
        {"corrupt", JsonValue::make_bool(f.corrupt)},
        {"quarantined", JsonValue::make_bool(f.quarantined)},
    }));
  }
  return JsonValue::make_object({
      {"dir", JsonValue::make_string(dir)},
      {"files", JsonValue::make_int(files)},
      {"ok", JsonValue::make_int(ok)},
      {"legacy_v2", JsonValue::make_int(legacy)},
      {"corrupt", JsonValue::make_int(corrupt)},
      {"orphan_checkpoints", JsonValue::make_int(orphans)},
      {"temp_leftovers", JsonValue::make_int(temp_leftovers)},
      {"unknown", JsonValue::make_int(unknown)},
      {"clean", JsonValue::make_bool(clean())},
      {"findings", JsonValue::make_array(std::move(entries))},
  });
}

Journal::ScrubReport Journal::scrub(const std::string& dir, bool quarantine) {
  ScrubReport report;
  report.dir = dir;

  // First pass: what exists?  (Needed to tell an orphan checkpoint from a
  // live one without replaying anything.)
  std::set<std::uint64_t> record_ids;
  std::set<std::uint64_t> done_ids;
  const std::vector<std::string> names = util::fs::list_all_files(dir);
  for (const std::string& name : names) {
    if (name.ends_with(util::fs::kTempSuffix)) continue;
    if (parse_id(name, ".ckpt.json") || parse_id(name, ".done.json")) continue;
    if (const auto id = parse_id(name, ".json")) record_ids.insert(*id);
  }
  for (const std::string& name : names) {
    if (const auto id = parse_id(name, ".done.json")) done_ids.insert(*id);
  }

  for (const std::string& name : names) {
    ScrubFinding f;
    f.file = name;
    if (name.ends_with(util::fs::kTempSuffix)) {
      f.kind = "temp";
      f.status = "temp_leftover";
      f.detail = "interrupted atomic commit (recovery ignores it)";
      ++report.temp_leftovers;
    } else if (const auto cid = parse_id(name, ".ckpt.json")) {
      f.kind = "checkpoint";
      scrub_content(dir + "/" + name, *cid, /*is_record=*/false, &f);
      // A checkpoint whose record is gone (and whose job is not mid-
      // retirement) has nothing to resume: recovery sweeps it, scrub
      // reports it.
      if (!f.corrupt && record_ids.count(*cid) == 0 &&
          done_ids.count(*cid) == 0) {
        f.status = "orphan_checkpoint";
        f.detail = "no job-" + std::to_string(*cid) + ".json record";
        ++report.orphans;
      }
    } else if (const auto did = parse_id(name, ".done.json")) {
      f.kind = "done";
      scrub_content(dir + "/" + name, *did, /*is_record=*/false, &f);
    } else if (const auto rid = parse_id(name, ".json")) {
      f.kind = "record";
      scrub_content(dir + "/" + name, *rid, /*is_record=*/true, &f);
    } else {
      f.kind = "unknown";
      f.status = "unknown_file";
      f.detail = "not a journal filename";
      ++report.unknown;
    }
    ++report.files;
    if (f.corrupt) ++report.corrupt;
    if (f.status == "ok") ++report.ok;
    if (f.status == "legacy_v2") ++report.legacy;
    if (quarantine && (f.corrupt || f.kind == "temp" ||
                       f.status == "unknown_file")) {
      util::fs::create_directories(dir + "/quarantine");
      util::fs::rename_file(dir + "/" + name, dir + "/quarantine/" + name);
      f.quarantined = true;
    }
    report.findings.push_back(std::move(f));
  }
  return report;
}

}  // namespace hlts::engine
