#include "rtl/elaborate.hpp"

#include <algorithm>
#include <map>

#include "gates/simplify.hpp"
#include "gates/wordlib.hpp"
#include "util/error.hpp"

namespace hlts::rtl {

using gates::GateId;
using gates::GateKind;
using gates::Netlist;
using gates::Word;

namespace {

/// The combinational core of one FU for one operation kind.
Word fu_core(Netlist& nl, dfg::OpKind kind, const Word& a, const Word& b,
             int bits, ArithStyle style) {
  using dfg::OpKind;
  const bool fast = style == ArithStyle::Fast;
  switch (kind) {
    case OpKind::Add:
      return fast ? gates::kogge_stone_add(nl, a, b)
                  : gates::ripple_add(nl, a, b);
    case OpKind::Sub:
      return fast ? gates::kogge_stone_sub(nl, a, b)
                  : gates::ripple_sub(nl, a, b);
    case OpKind::Mul:
      return fast ? gates::wallace_multiply(nl, a, b)
                  : gates::array_multiply(nl, a, b);
    case OpKind::Div:
      return gates::array_divide(nl, a, b);
    case OpKind::Less:
      return gates::bit_to_word(nl, gates::less_than(nl, a, b), bits);
    case OpKind::Greater:
      return gates::bit_to_word(nl, gates::greater_than(nl, a, b), bits);
    case OpKind::Equal:
      return gates::bit_to_word(nl, gates::equal(nl, a, b), bits);
    case OpKind::And:
      return gates::word_and(nl, a, b);
    case OpKind::Or:
      return gates::word_or(nl, a, b);
    case OpKind::Xor:
      return gates::word_xor(nl, a, b);
    case OpKind::Not:
      return gates::word_not(nl, a);
    case OpKind::ShiftLeft: {
      // Shift by one (the DFG kinds are shift-by-constant placeholders).
      Word out = gates::zero_word(nl, bits);
      for (int i = 1; i < bits; ++i) out[i] = a[i - 1];
      return out;
    }
    case OpKind::ShiftRight: {
      Word out = gates::zero_word(nl, bits);
      for (int i = 0; i + 1 < bits; ++i) out[i] = a[i + 1];
      return out;
    }
    case OpKind::Move:
      return a;
  }
  throw Error("fu_core: unhandled op kind", ErrorKind::Internal);
}

/// Fibonacci-LFSR feedback taps (bit indices) for common widths; the
/// fallback pair still cycles, just with a shorter period.
std::vector<int> lfsr_taps(int bits) {
  switch (bits) {
    case 2: return {1, 0};
    case 3: return {2, 1};
    case 4: return {3, 2};
    case 5: return {4, 2};
    case 6: return {5, 4};
    case 7: return {6, 5};
    case 8: return {7, 5, 4, 3};
    case 10: return {9, 6};
    case 12: return {11, 10, 9, 3};
    case 16: return {15, 14, 12, 3};
    default: return {bits - 1, bits - 2};
  }
}

/// One per-port LFSR: DFF word, shifted with XOR feedback, loaded with a
/// port-specific nonzero seed while reset is high.
Word make_lfsr(Netlist& nl, GateId reset, int bits, unsigned seed,
               const std::string& name) {
  Word state(bits);
  for (int i = 0; i < bits; ++i) {
    state[i] = nl.add_dff(name + "[" + std::to_string(i) + "]");
  }
  std::vector<GateId> tap_bits;
  for (int t : lfsr_taps(bits)) tap_bits.push_back(state[t]);
  GateId fb = tap_bits[0];
  for (std::size_t i = 1; i < tap_bits.size(); ++i) {
    fb = nl.add_gate(GateKind::Xor, {fb, tap_bits[i]});
  }
  for (int i = 0; i < bits; ++i) {
    GateId shifted = i == 0 ? fb : state[i - 1];
    GateId seed_bit = ((seed >> i) & 1) ? nl.const1() : nl.const0();
    nl.connect_dff(state[i],
                   nl.add_gate(GateKind::Mux, {reset, shifted, seed_bit}));
  }
  return state;
}

}  // namespace

Elaboration elaborate(const RtlDesign& design, const ElaborateOptions& options) {
  design.validate();
  Elaboration e;
  Netlist& nl = e.netlist;
  const int bits = design.bits();
  const int steps = design.steps();

  // --- primary inputs --------------------------------------------------------
  e.reset = nl.add_input("reset");
  if (options.test_hold) {
    e.hold = nl.add_input("hold");
  }
  const bool any_control_point =
      std::any_of(options.test_points.begin(), options.test_points.end(),
                  [](const RtlTestPoint& tp) { return tp.control; });
  GateId test_mode;
  Word tp_in;
  if (any_control_point) {
    test_mode = nl.add_input("test_mode");
    tp_in = gates::add_input_word(nl, "tp_in", bits);
  }
  GateId bist_mode;
  if (options.bist) {
    bist_mode = nl.add_input("bist_mode");
  }
  for (std::size_t i = 0; i < design.inports().size(); ++i) {
    const RtlPort& p = design.inports()[i];
    Word external = gates::add_input_word(nl, "in_" + p.name, bits);
    if (options.bist) {
      // In BIST mode the port is driven by its own seeded LFSR.
      Word lfsr = make_lfsr(nl, e.reset, bits,
                            static_cast<unsigned>(i * 37 + 11),
                            "lfsr_" + p.name);
      external = gates::mux_word(nl, bist_mode, external, lfsr);
    }
    e.inport_words.push_back(std::move(external));
  }

  // --- controller: one-hot ring counter with synchronous reset ---------------
  GateId not_reset = nl.add_gate(GateKind::Not, {e.reset}, "not_reset");
  std::vector<GateId> state_dffs;
  for (int i = 0; i <= steps; ++i) {
    state_dffs.push_back(nl.add_dff("state" + std::to_string(i)));
    e.state.push_back(state_dffs.back());
  }
  for (int i = 0; i <= steps; ++i) {
    const GateId prev = state_dffs[(i + steps) % (steps + 1)];
    GateId advanced = prev;
    if (options.test_hold) {
      // Test plan: hold=1 freezes the controller in its current step.
      advanced = nl.add_gate(GateKind::Mux, {e.hold, prev, state_dffs[i]});
    }
    GateId next = nl.add_gate(GateKind::And, {not_reset, advanced});
    if (i == 0) {
      next = nl.add_gate(GateKind::Or, {e.reset, next});
    }
    nl.connect_dff(state_dffs[i], next);
  }

  // --- register words (created first: FUs read them) ------------------------
  e.reg_words.resize(design.regs().size());
  for (RtlRegId r : id_range<RtlRegId>(design.regs().size())) {
    Word w(bits);
    for (int i = 0; i < bits; ++i) {
      w[i] = nl.add_dff("r" + std::to_string(r.value()) + "[" +
                        std::to_string(i) + "]");
    }
    e.reg_words[r] = w;
  }

  // --- functional units -------------------------------------------------------
  IndexVec<RtlFuId, Word> fu_out(design.fus().size());
  auto operand_word = [&](const Operand& o) -> const Word& {
    if (o.kind == Operand::Kind::Port) return e.inport_words[o.port_index];
    return e.reg_words[o.reg];
  };

  for (RtlFuId f : id_range<RtlFuId>(design.fus().size())) {
    const RtlFu& fu = design.fus()[f];
    // Operand steering per port.
    std::vector<GateId> enables;
    std::vector<Word> port0, port1;
    for (const FuOp& op : fu.ops) {
      enables.push_back(e.state[op.step]);
      port0.push_back(operand_word(op.in0));
      port1.push_back(dfg::op_arity(op.kind) > 1 ? operand_word(op.in1)
                                                 : gates::zero_word(nl, bits));
    }
    Word a = gates::onehot_select(nl, enables, port0, bits);
    Word b = gates::onehot_select(nl, enables, port1, bits);

    // One core per distinct kind used on this FU, selected by step group.
    std::map<dfg::OpKind, std::vector<GateId>> kind_steps;
    for (const FuOp& op : fu.ops) {
      kind_steps[op.kind].push_back(e.state[op.step]);
    }
    if (kind_steps.size() == 1) {
      fu_out[f] = fu_core(nl, kind_steps.begin()->first, a, b, bits, options.arith);
    } else {
      std::vector<GateId> kind_enable;
      std::vector<Word> kind_result;
      for (const auto& [kind, states] : kind_steps) {
        GateId en = states.size() == 1 ? states[0]
                                       : nl.add_gate(GateKind::Or, states);
        kind_enable.push_back(en);
        kind_result.push_back(fu_core(nl, kind, a, b, bits, options.arith));
      }
      fu_out[f] = gates::onehot_select(nl, kind_enable, kind_result, bits);
    }
  }

  // --- register write steering ------------------------------------------------
  for (RtlRegId r : id_range<RtlRegId>(design.regs().size())) {
    const RtlReg& reg = design.regs()[r];
    std::vector<GateId> enables;
    std::vector<Word> values;
    for (const RegWrite& w : reg.writes) {
      enables.push_back(e.state[w.step]);
      values.push_back(w.from_port ? e.inport_words[w.port_index]
                                   : fu_out[w.fu]);
    }
    GateId write_any = enables.size() == 1 ? enables[0]
                                           : nl.add_gate(GateKind::Or, enables);
    Word selected = gates::onehot_select(nl, enables, values, bits);
    // No reset on data-path registers (as in real area-conscious data
    // paths): they power up unknown and are initialized through functional
    // writes only.
    Word held = gates::mux_word(nl, write_any, e.reg_words[r], selected);
    // DFT control point: in test mode the register loads the test bus.
    const bool is_control_point = std::any_of(
        options.test_points.begin(), options.test_points.end(),
        [&](const RtlTestPoint& tp) { return tp.control && tp.reg == r; });
    if (is_control_point) {
      held = gates::mux_word(nl, test_mode, held, tp_in);
    }
    for (int i = 0; i < bits; ++i) {
      nl.connect_dff(e.reg_words[r][i], held[i]);
    }
  }

  // --- DFT observation points ---------------------------------------------------
  for (std::size_t i = 0; i < options.test_points.size(); ++i) {
    const RtlTestPoint& tp = options.test_points[i];
    if (tp.control) continue;
    gates::add_output_word(nl, e.reg_words[tp.reg],
                           "tp_obs" + std::to_string(i));
  }

  // --- primary outputs ---------------------------------------------------------
  std::vector<bool> port_driven(design.outports().size(), false);
  std::vector<Word> po_words;
  for (RtlRegId r : id_range<RtlRegId>(design.regs().size())) {
    const RtlReg& reg = design.regs()[r];
    if (reg.outport_index < 0) continue;
    gates::add_output_word(nl, e.reg_words[r],
                           "out_" + design.outports()[reg.outport_index].name);
    po_words.push_back(e.reg_words[r]);
    port_driven[reg.outport_index] = true;
  }
  for (RtlFuId f : id_range<RtlFuId>(design.fus().size())) {
    for (const FuOp& op : design.fus()[f].ops) {
      if (op.outport_index < 0) continue;
      // Port-direct result: valid (and observed) only during its step.
      Word gated(bits);
      for (int i = 0; i < bits; ++i) {
        gated[i] = nl.add_gate(GateKind::And, {e.state[op.step], fu_out[f][i]});
      }
      gates::add_output_word(
          nl, gated, "out_" + design.outports()[op.outport_index].name);
      po_words.push_back(gated);
      port_driven[op.outport_index] = true;
    }
  }

  // --- BIST response compaction (MISR) -----------------------------------------
  if (options.bist) {
    Word folded = po_words.empty() ? gates::zero_word(nl, bits) : po_words[0];
    for (std::size_t i = 1; i < po_words.size(); ++i) {
      folded = gates::word_xor(nl, folded, po_words[i]);
    }
    Word misr(bits);
    for (int i = 0; i < bits; ++i) {
      misr[i] = nl.add_dff("misr[" + std::to_string(i) + "]");
    }
    std::vector<GateId> tap_bits;
    for (int t : lfsr_taps(bits)) tap_bits.push_back(misr[t]);
    GateId fb = tap_bits[0];
    for (std::size_t i = 1; i < tap_bits.size(); ++i) {
      fb = nl.add_gate(GateKind::Xor, {fb, tap_bits[i]});
    }
    GateId not_rst = nl.add_gate(GateKind::Not, {e.reset});
    for (int i = 0; i < bits; ++i) {
      GateId shifted = i == 0 ? fb : misr[i - 1];
      GateId next = nl.add_gate(GateKind::Xor, {shifted, folded[i]});
      // Reset clears the signature register so sessions are deterministic.
      nl.connect_dff(misr[i], nl.add_gate(GateKind::And, {not_rst, next}));
    }
    gates::add_output_word(nl, misr, "misr");
  }
  for (std::size_t i = 0; i < port_driven.size(); ++i) {
    HLTS_REQUIRE(port_driven[i], "output port " + design.outports()[i].name +
                                     " has no driver");
  }

  nl.validate();

  // Constant propagation + CSE + dead-logic sweep: commercial ATPG flows
  // never see the bit-blaster's redundant gates, so neither should ours.
  gates::SimplifyResult simplified = gates::simplify(nl);
  auto remap_gate = [&](GateId g) { return simplified.remap[g]; };
  e.reset = remap_gate(e.reset);
  if (e.hold.valid()) e.hold = remap_gate(e.hold);
  for (GateId& s : e.state) s = remap_gate(s);
  for (Word& w : e.inport_words) {
    for (GateId& g : w) g = remap_gate(g);
  }
  for (Word& w : e.reg_words) {
    for (GateId& g : w) g = remap_gate(g);
  }
  e.netlist = std::move(simplified.netlist);
  return e;
}

}  // namespace hlts::rtl
