#include "rtl/rtl.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "util/error.hpp"

namespace hlts::rtl {

RtlDesign RtlDesign::from_synthesis(const dfg::Dfg& g, const sched::Schedule& s,
                                    const etpn::Binding& b, int bits) {
  HLTS_REQUIRE_INPUT(bits >= 1, "RTL width must be >= 1");
  RtlDesign d;
  d.name_ = g.name();
  d.bits_ = bits;
  d.steps_ = s.length();

  // Ports.
  std::map<std::uint32_t, int> inport_of_var;   // VarId -> inport index
  std::map<std::uint32_t, int> outport_of_var;  // VarId -> outport index
  for (dfg::VarId v : g.var_ids()) {
    const dfg::Variable& var = g.var(v);
    if (var.is_primary_input) {
      inport_of_var[v.value()] = static_cast<int>(d.inports_.size());
      d.inports_.push_back({var.name, bits});
    }
    if (var.is_primary_output) {
      outport_of_var[v.value()] = static_cast<int>(d.outports_.size());
      d.outports_.push_back({var.name, bits});
    }
  }

  // Registers.
  IndexVec<etpn::RegId, RtlRegId> rtl_reg_of(b.num_reg_slots());
  for (etpn::RegId r : b.alive_regs()) {
    RtlReg reg;
    reg.name = b.reg_label(g, r);
    for (dfg::VarId v : b.reg_vars(r)) {
      const dfg::Variable& var = g.var(v);
      if (var.is_primary_input) {
        reg.writes.push_back(
            {/*step=*/0, /*from_port=*/true, inport_of_var.at(v.value()), {}});
      }
      if (var.is_primary_output && var.po_registered) {
        HLTS_REQUIRE(reg.outport_index < 0,
                     "register drives two output ports");
        reg.outport_index = outport_of_var.at(v.value());
      }
    }
    rtl_reg_of[r] = d.regs_.push_back(std::move(reg));
  }

  // Functional units and the FU-sourced register writes.
  IndexVec<etpn::ModuleId, RtlFuId> rtl_fu_of(b.num_module_slots());
  for (etpn::ModuleId m : b.alive_modules()) {
    RtlFu fu;
    fu.name = b.module_label(g, m);
    rtl_fu_of[m] = d.fus_.push_back(std::move(fu));
  }
  for (dfg::OpId op_id : g.op_ids()) {
    const dfg::Operation& op = g.op(op_id);
    RtlFuId fu = rtl_fu_of[b.module_of(op_id)];
    FuOp fop;
    fop.step = s.step(op_id);
    fop.kind = op.kind;
    fop.op_name = op.name;
    auto make_operand = [&](dfg::VarId v) {
      Operand o;
      etpn::RegId r = b.reg_of(v);
      HLTS_REQUIRE(r.valid(), "operand variable not register-resident");
      o.kind = Operand::Kind::Reg;
      o.reg = rtl_reg_of[r];
      return o;
    };
    fop.in0 = make_operand(op.inputs[0]);
    if (op.inputs.size() > 1) fop.in1 = make_operand(op.inputs[1]);

    const dfg::Variable& out = g.var(op.output);
    etpn::RegId dst = b.reg_of(op.output);
    if (dst.valid()) {
      fop.writes_reg = true;
      fop.dst = rtl_reg_of[dst];
      d.regs_[fop.dst].writes.push_back(
          {fop.step, /*from_port=*/false, -1, fu});
    } else {
      HLTS_REQUIRE(out.is_primary_output, "dangling operation output");
      fop.outport_index = outport_of_var.at(op.output.value());
    }
    d.fus_[fu].ops.push_back(fop);
  }
  for (RtlFu& fu : d.fus_) {
    std::sort(fu.ops.begin(), fu.ops.end(),
              [](const FuOp& a, const FuOp& b2) { return a.step < b2.step; });
  }

  d.validate();
  return d;
}

void RtlDesign::validate() const {
  for (const RtlReg& r : regs_) {
    HLTS_REQUIRE(!r.writes.empty(), "register " + r.name + " never written");
    for (const RegWrite& w : r.writes) {
      HLTS_REQUIRE(w.step >= 0 && w.step <= steps_, "write step out of range");
      if (w.from_port) {
        HLTS_REQUIRE(w.port_index >= 0 &&
                         w.port_index < static_cast<int>(inports_.size()),
                     "bad inport index");
      } else {
        HLTS_REQUIRE(fus_.contains(w.fu), "bad FU reference");
      }
    }
    HLTS_REQUIRE(r.outport_index < static_cast<int>(outports_.size()),
                 "bad outport index");
  }
  for (const RtlFu& fu : fus_) {
    HLTS_REQUIRE(!fu.ops.empty(), "FU " + fu.name + " executes nothing");
    for (std::size_t i = 0; i + 1 < fu.ops.size(); ++i) {
      HLTS_REQUIRE(fu.ops[i].step != fu.ops[i + 1].step,
                   "FU " + fu.name + " double-booked in one step");
    }
    for (const FuOp& op : fu.ops) {
      HLTS_REQUIRE(op.step >= 1 && op.step <= steps_, "op step out of range");
    }
  }
}

namespace {

std::string operand_verilog(const RtlDesign& d, const Operand& o) {
  if (o.kind == Operand::Kind::Port) {
    return "in_" + d.inports()[o.port_index].name;
  }
  return "r" + std::to_string(o.reg.value());
}

const char* verilog_op(dfg::OpKind kind) {
  using dfg::OpKind;
  switch (kind) {
    case OpKind::Add: return "+";
    case OpKind::Sub: return "-";
    case OpKind::Mul: return "*";
    case OpKind::Div: return "/";
    case OpKind::Less: return "<";
    case OpKind::Greater: return ">";
    case OpKind::Equal: return "==";
    case OpKind::And: return "&";
    case OpKind::Or: return "|";
    case OpKind::Xor: return "^";
    case OpKind::Not: return "~";
    case OpKind::ShiftLeft: return "<<";
    case OpKind::ShiftRight: return ">>";
    case OpKind::Move: return "";
  }
  return "?";
}

}  // namespace

std::string RtlDesign::to_verilog() const {
  std::ostringstream os;
  os << "// generated by hlts from benchmark '" << name_ << "'\n";
  os << "module " << name_ << " (\n  input  wire clk,\n  input  wire reset";
  for (const RtlPort& p : inports_) {
    os << ",\n  input  wire [" << bits_ - 1 << ":0] in_" << p.name;
  }
  for (const RtlPort& p : outports_) {
    os << ",\n  output wire [" << bits_ - 1 << ":0] out_" << p.name;
  }
  os << "\n);\n\n";

  os << "  // one-hot controller: S0 = input load, S1..S" << steps_
     << " = execution\n";
  os << "  reg [" << steps_ << ":0] state;\n";
  os << "  always @(posedge clk)\n"
     << "    if (reset) state <= " << steps_ + 1 << "'d1;\n"
     << "    else       state <= {state[" << steps_ - 1 << ":0], state["
     << steps_ << "]};\n\n";

  for (RtlRegId r : id_range<RtlRegId>(regs_.size())) {
    os << "  reg [" << bits_ - 1 << ":0] r" << r.value() << ";  // "
       << regs_[r].name << "\n";
  }
  os << "\n";

  for (RtlFuId f : id_range<RtlFuId>(fus_.size())) {
    const RtlFu& fu = fus_[f];
    os << "  // FU " << fu.name << "\n";
    os << "  reg [" << bits_ - 1 << ":0] fu" << f.value() << ";\n";
    os << "  always @* begin\n    fu" << f.value() << " = " << bits_
       << "'d0;\n    case (1'b1)\n";
    for (const FuOp& op : fu.ops) {
      os << "      state[" << op.step << "]: fu" << f.value() << " = ";
      if (dfg::op_arity(op.kind) == 1) {
        os << verilog_op(op.kind) << operand_verilog(*this, op.in0);
      } else {
        os << operand_verilog(*this, op.in0) << " " << verilog_op(op.kind)
           << " " << operand_verilog(*this, op.in1);
      }
      os << ";  // " << op.op_name << "\n";
    }
    os << "      default: ;\n    endcase\n  end\n\n";
  }

  for (RtlRegId r : id_range<RtlRegId>(regs_.size())) {
    const RtlReg& reg = regs_[r];
    os << "  // " << reg.name << "\n";
    os << "  always @(posedge clk)\n";
    os << "    if (reset) r" << r.value() << " <= " << bits_ << "'d0;\n";
    for (const RegWrite& w : reg.writes) {
      os << "    else if (state[" << w.step << "]) r" << r.value() << " <= ";
      if (w.from_port) {
        os << "in_" << inports_[w.port_index].name;
      } else {
        os << "fu" << w.fu.value();
      }
      os << ";\n";
    }
    os << "\n";
  }

  for (RtlRegId r : id_range<RtlRegId>(regs_.size())) {
    if (regs_[r].outport_index >= 0) {
      os << "  assign out_" << outports_[regs_[r].outport_index].name << " = r"
         << r.value() << ";\n";
    }
  }
  for (RtlFuId f : id_range<RtlFuId>(fus_.size())) {
    for (const FuOp& op : fus_[f].ops) {
      if (op.outport_index >= 0) {
        os << "  assign out_" << outports_[op.outport_index].name
           << " = state[" << op.step << "] ? fu" << f.value() << " : " << bits_
           << "'d0;\n";
      }
    }
  }
  os << "\nendmodule\n";
  return os.str();
}

}  // namespace hlts::rtl
