// Register-transfer-level design: the bridge between a synthesis result
// (DFG + schedule + binding) and the gate-level netlist the ATPG runs on.
//
// The RTL consists of registers with per-step write events, functional
// units with per-step operations, input/output ports, and an implicit
// one-hot controller with states S0 (primary-input load) .. S<steps>.
#pragma once

#include <string>
#include <vector>

#include "dfg/dfg.hpp"
#include "etpn/binding.hpp"
#include "sched/schedule.hpp"
#include "util/ids.hpp"

namespace hlts::rtl {

struct RtlRegTag {};
struct RtlFuTag {};
using RtlRegId = Id<RtlRegTag>;
using RtlFuId = Id<RtlFuTag>;

/// An operand read by a functional unit: a register or an input port.
struct Operand {
  enum class Kind { Reg, Port } kind = Kind::Reg;
  RtlRegId reg;
  int port_index = -1;
};

/// One scheduled operation executed on a functional unit.
struct FuOp {
  int step = 1;
  dfg::OpKind kind = dfg::OpKind::Add;
  std::string op_name;  ///< source operation (N21, ...), for reports
  Operand in0, in1;     ///< in1 ignored for unary kinds
  bool writes_reg = false;
  RtlRegId dst;          ///< valid when writes_reg
  int outport_index = -1;  ///< >= 0 when this op drives an output port
};

struct RtlFu {
  std::string name;
  std::vector<FuOp> ops;
};

struct RegWrite {
  int step = 0;
  bool from_port = false;  ///< primary-input load (step 0)
  int port_index = -1;     ///< valid when from_port
  RtlFuId fu;              ///< valid when !from_port
};

struct RtlReg {
  std::string name;
  std::vector<RegWrite> writes;
  int outport_index = -1;  ///< >= 0 when this register drives an output port
};

struct RtlPort {
  std::string name;
  int width = 0;
};

/// The complete RTL design.
class RtlDesign {
 public:
  /// Builds the RTL from a synthesized design.  `bits` is the data path
  /// width; the controller gets steps+1 one-hot states.
  [[nodiscard]] static RtlDesign from_synthesis(const dfg::Dfg& g,
                                                const sched::Schedule& s,
                                                const etpn::Binding& b,
                                                int bits);

  [[nodiscard]] int bits() const { return bits_; }
  [[nodiscard]] int steps() const { return steps_; }
  [[nodiscard]] const std::vector<RtlPort>& inports() const { return inports_; }
  [[nodiscard]] const std::vector<RtlPort>& outports() const { return outports_; }
  [[nodiscard]] const IndexVec<RtlRegId, RtlReg>& regs() const { return regs_; }
  [[nodiscard]] const IndexVec<RtlFuId, RtlFu>& fus() const { return fus_; }
  [[nodiscard]] const std::string& name() const { return name_; }

  /// Structural checks: every register written at least once, operand
  /// references in range, steps within [0, steps].
  void validate() const;

  /// Human-readable synthesizable-style Verilog dump (documentation and
  /// golden-file tests; the ATPG path uses elaborate() instead).
  [[nodiscard]] std::string to_verilog() const;

 private:
  std::string name_ = "design";
  int bits_ = 8;
  int steps_ = 0;
  std::vector<RtlPort> inports_;
  std::vector<RtlPort> outports_;
  IndexVec<RtlRegId, RtlReg> regs_;
  IndexVec<RtlFuId, RtlFu> fus_;
};

}  // namespace hlts::rtl
