// Elaboration: RTL design -> gate-level netlist.
//
// Produces the circuit the ATPG engine tests:
//   - a one-hot ring-counter controller (steps+1 DFF states, synchronous
//     reset into S0),
//   - one DFF word per register with AND-OR write-select steering and hold
//     path,
//   - one functional unit per RTL FU: operand steering keyed on the one-hot
//     state, one arithmetic core per operation kind used by the FU, result
//     selection across kinds,
//   - primary inputs: reset + one word per input port; primary outputs: one
//     word per output port (registered outputs wired from their register;
//     port-direct outputs gated by their control step).
#pragma once

#include "gates/netlist.hpp"
#include "gates/wordlib.hpp"
#include "rtl/rtl.hpp"

namespace hlts::rtl {

/// Gate-level implementation style of the arithmetic cores.
enum class ArithStyle {
  /// Ripple-carry adders/subtracters, array multiplier (area-oriented; the
  /// default, matching the quadratic/linear area model in cost::ModuleLibrary).
  Ripple,
  /// Kogge-Stone adders/subtracters, Wallace-tree multiplier
  /// (speed-oriented); same function, different structure.
  Fast,
};

/// A DFT test point on a register.  RtlRegId indices follow the order of
/// etpn::Binding::alive_regs() at RtlDesign::from_synthesis time, so
/// testability::TestPointSuggestion results map positionally.
struct RtlTestPoint {
  RtlRegId reg;
  /// true: control point (test-mode mux feeding the register from the
  /// shared `tp_in` test bus); false: observation point (register tapped to
  /// an extra output).
  bool control = false;
};

struct ElaborateOptions {
  /// Test-plan support (paper §1: "assuming that the controller can be
  /// modified to support the test plan"): adds a `hold` primary input that
  /// freezes the one-hot controller in its current step, so a tester can
  /// park the machine in any control step and apply multi-cycle
  /// justification through the data path.
  bool test_hold = false;
  ArithStyle arith = ArithStyle::Ripple;
  /// DFT test points to realize (see testability::suggest_test_points).
  /// Any control point adds a `test_mode` primary input and a `tp_in` data
  /// word shared by all control points.
  std::vector<RtlTestPoint> test_points;
  /// Built-in self-test wrapper (the BIST alternative of the paper's
  /// related work, Papachristou et al. [10]): adds a `bist_mode` input; in
  /// BIST mode every input port is driven by its own LFSR (seeded at
  /// reset) and all primary-output words are folded into a MISR whose
  /// state is exposed as the extra output word `misr`.
  bool bist = false;
};

struct Elaboration {
  gates::Netlist netlist;
  gates::GateId reset;
  gates::GateId hold;  ///< valid when ElaborateOptions::test_hold
  /// One-hot state bits, index 0..steps.
  std::vector<gates::GateId> state;
  /// Input port words (index matches RtlDesign::inports()).
  std::vector<gates::Word> inport_words;
  /// Register output words.
  IndexVec<RtlRegId, gates::Word> reg_words;
};

[[nodiscard]] Elaboration elaborate(const RtlDesign& design,
                                    const ElaborateOptions& options = {});

}  // namespace hlts::rtl
