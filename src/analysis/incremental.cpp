#include "analysis/incremental.hpp"

#include <string>
#include <utility>

#include "util/error.hpp"
#include "util/failpoint.hpp"
#include "util/trace.hpp"

namespace hlts::analysis {

DesignDelta::DesignDelta(const dfg::Dfg& g, TrialWorkspace& ws,
                         const testability::MergeCandidate& cand)
    : ws_(ws), cand_(cand) {
  into_old_size_ = cand.is_modules()
                       ? ws.binding.module_ops(cand.module_a).size()
                       : ws.binding.reg_vars(cand.reg_a).size();
  // The binding merge's failpoint fires before any mutation, so a throw
  // here leaves the workspace untouched.
  cand.apply(g, ws.binding);
  const auto [into, from] = cand.nodes(ws.etpn);
  try {
    patch_ = etpn::apply_merge_patch(ws.etpn.data_path, ws.arena, into, from);
  } catch (...) {
    // The failed patch's arena carves are orphaned; rewind them.
    ws_.arena.reset();
    // apply_merge_patch rolled the data path back (strong guarantee); undo
    // the binding half too.  If *that* also fails, the copy is inconsistent:
    // mark it stale so the next checkout re-syncs instead of reusing it.
    try {
      if (cand_.is_modules()) {
        ws_.binding.undo_merge_modules(cand_.module_a, cand_.module_b,
                                       into_old_size_);
      } else {
        ws_.binding.undo_merge_regs(cand_.reg_a, cand_.reg_b, into_old_size_);
      }
    } catch (...) {
      ws_.epoch = 0;
    }
    throw;
  }
}

DesignDelta::~DesignDelta() {
  etpn::revert_merge_patch(ws_.etpn.data_path, patch_);
  if (cand_.is_modules()) {
    ws_.binding.undo_merge_modules(cand_.module_a, cand_.module_b,
                                   into_old_size_);
  } else {
    ws_.binding.undo_merge_regs(cand_.reg_a, cand_.reg_b, into_old_size_);
  }
  // The undo log lived in the workspace arena and the patch is now fully
  // reverted; rewind the arena for the next trial (blocks retained).
  ws_.arena.reset();
}

IncrementalContext::IncrementalContext(const dfg::Dfg& g,
                                       const cost::ModuleLibrary& lib,
                                       int bits)
    : g_(g), lib_(lib), bits_(bits) {}

void IncrementalContext::attach(const sched::Schedule& s,
                                const etpn::Binding& b) {
  HLTS_REQUIRE(!poisoned_, "incremental context is poisoned");
  b_ = b;
  s_ = s;
  analysis_.reset();  // holds a reference into *e_; drop before replacing
  e_ = std::make_unique<etpn::Etpn>(etpn::build_etpn(g_, s_, b_));
  analysis_.emplace(e_->data_path);
  ++epoch_;
}

IncrementalContext::CommitResult IncrementalContext::commit(
    const testability::MergeCandidate& cand, const etpn::Binding& b_after,
    const sched::Schedule& s_after) {
  HLTS_REQUIRE(!poisoned_, "incremental context is poisoned");
  HLTS_REQUIRE(e_ != nullptr, "commit before attach");
  HLTS_FAILPOINT("analysis.commit");
  try {
    const auto [into, from] = cand.nodes(*e_);
    const std::string label = cand.merged_label(g_, b_after);
    commit_arena_.reset();  // the previous commit's patch is long dead
    const etpn::MergePatch patch = etpn::apply_merge_patch(
        e_->data_path, commit_arena_, into, from, &label);
    etpn::refresh_etpn_steps(*e_, g_, s_after, b_after);

    // dE: the control part is a chain of unit-delay step places, so the
    // (cached, signature-checked) Petri-net critical path must equal the
    // schedule length the caller measured -- a cheap cross-check that the
    // patched control part agrees with the reschedule.
    const petri::CriticalPathResult& cp = critical_path_.recompute(e_->control);
    HLTS_REQUIRE(cp.length == s_after.length(),
                 "incremental critical path diverged from schedule length");

    CommitResult out;
    out.stats = analysis_->update({into});
    out.cost = cost::estimate_cost(e_->data_path, lib_, bits_, cost_scratch_);
    b_ = b_after;
    s_ = s_after;
    ++epoch_;
    util::count("analysis.commits");
    util::count("analysis.patch_saved_arcs",
                static_cast<std::int64_t>(patch.saved_arcs.size()));
    return out;
  } catch (...) {
    poisoned_ = true;
    throw;
  }
}

void IncrementalContext::refresh(TrialWorkspace& ws) const {
  if (ws.epoch == epoch_) return;
  ws.binding = b_;
  ws.etpn = *e_;
  ws.epoch = epoch_;
}

std::unique_ptr<TrialWorkspace> IncrementalContext::checkout() {
  HLTS_REQUIRE(!poisoned_, "incremental context is poisoned");
  HLTS_REQUIRE(e_ != nullptr, "checkout before attach");
  std::unique_ptr<TrialWorkspace> ws;
  {
    const std::lock_guard<std::mutex> lock(pool_mutex_);
    if (!pool_.empty()) {
      ws = std::move(pool_.back());
      pool_.pop_back();
    }
  }
  if (!ws) ws = std::make_unique<TrialWorkspace>();
  refresh(*ws);
  return ws;
}

void IncrementalContext::checkin(std::unique_ptr<TrialWorkspace> ws) {
  if (!ws) return;
  const std::lock_guard<std::mutex> lock(pool_mutex_);
  pool_.push_back(std::move(ws));
}

}  // namespace hlts::analysis
