// Incremental analysis layer for Algorithm 1's per-trial evaluation.
//
// The synthesis loop evaluates hundreds of candidate mergers per iteration;
// historically every trial rebuilt the full ETPN and re-ran every analysis
// from scratch.  This layer replaces that with explicit dirty-set
// propagation over a persistent design state:
//
//   - TrialWorkspace: a per-worker binding + ETPN copy of the committed
//     design that candidate mergers are applied to in place;
//   - DesignDelta: RAII application of one candidate (copy-on-write
//     binding merge + etpn::apply_merge_patch), undone on destruction;
//   - IncrementalContext: owner of the committed design's persistent ETPN,
//     testability fixpoint, Petri-net critical path and floorplan cost,
//     each re-derived at commit time only over the merger's dirty cone.
//
// Bit-identity contract: every number this layer produces (trial costs,
// schedules, testability measures, balance indices, critical paths) is
// bit-identical to the from-scratch pipeline it replaces, for every
// benchmark, thread count and flow configuration.  The from-scratch path
// stays compiled and selectable (HLTS_INCREMENTAL=0) as the reference.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "cost/cost.hpp"
#include "etpn/binding.hpp"
#include "etpn/etpn.hpp"
#include "etpn/patch.hpp"
#include "petri/petri.hpp"
#include "sched/schedule.hpp"
#include "testability/balance.hpp"
#include "testability/testability.hpp"
#include "util/arena.hpp"

namespace hlts::analysis {

/// Per-worker trial state: a private copy of the committed design that
/// merge patches are applied to and undone from, plus reusable cost
/// buffers.  Copies are refreshed lazily (epoch check) on checkout, so the
/// steady-state cost of a trial is one merge patch, not one design copy.
struct TrialWorkspace {
  etpn::Binding binding;
  etpn::Etpn etpn;
  cost::CostScratch cost;
  /// Backs the trial's merge-patch undo log and worklists; reset (not
  /// freed) when the DesignDelta comes off, so a steady-state trial carves
  /// from retained blocks and performs zero heap allocations.
  util::Arena arena;
  /// Committed-design epoch this copy mirrors; 0 = never synchronized
  /// (also the stale sentinel set when a failed trial may have left the
  /// copy inconsistent).
  std::uint64_t epoch = 0;
};

/// RAII application of one candidate merger onto a workspace: the binding
/// merge and the data-path merge patch go on in the constructor and come
/// off, in reverse order, in the destructor.  While alive, ws.binding and
/// ws.etpn *are* the merged design -- with stale step annotations, which
/// no structural consumer (rescheduling, cost, testability) reads; see
/// etpn/patch.hpp.
class DesignDelta {
 public:
  /// Strong guarantee: on throw the workspace is unchanged (or marked
  /// stale for re-sync when the underlying merge could not roll back).
  DesignDelta(const dfg::Dfg& g, TrialWorkspace& ws,
              const testability::MergeCandidate& cand);
  ~DesignDelta();
  DesignDelta(const DesignDelta&) = delete;
  DesignDelta& operator=(const DesignDelta&) = delete;

  [[nodiscard]] const etpn::MergePatch& patch() const { return patch_; }

 private:
  TrialWorkspace& ws_;
  testability::MergeCandidate cand_;
  std::size_t into_old_size_ = 0;
  etpn::MergePatch patch_;
};

/// Owner of the committed design's analysis state, updated incrementally
/// at every committed merger instead of rebuilt from scratch.
///
/// Lifecycle: attach() performs the one full build (ETPN + testability
/// fixpoint + cost); each commit() then patches the persistent ETPN in
/// place, re-stamps its step annotations from the post-merge schedule,
/// re-checks the Petri-net critical path (cached on the control part's
/// structural signature), cone-updates the testability fixpoint and
/// re-costs the tombstoned graph.  A commit that throws poisons the
/// context: the design state may be half-patched, and every subsequent
/// call fails fast -- callers absorb the fault at an iteration boundary
/// and never touch the context again.
class IncrementalContext {
 public:
  IncrementalContext(const dfg::Dfg& g, const cost::ModuleLibrary& lib,
                     int bits);
  IncrementalContext(const IncrementalContext&) = delete;
  IncrementalContext& operator=(const IncrementalContext&) = delete;

  /// Full (non-incremental) build of the analysis state for a committed
  /// design; the one place build_etpn + the full fixpoint still run.
  void attach(const sched::Schedule& s, const etpn::Binding& b);

  /// The persistent ETPN of the committed design.  Merged-away nodes and
  /// arcs are tombstones (etpn::DataPath::alive); all consumers skip them.
  [[nodiscard]] const etpn::Etpn& etpn() const { return *e_; }
  /// The committed design's testability fixpoint, maintained by cone
  /// updates; equals a from-scratch TestabilityAnalysis of etpn().
  [[nodiscard]] const testability::TestabilityAnalysis& analysis() const {
    return *analysis_;
  }
  [[nodiscard]] const etpn::Binding& binding() const { return b_; }
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }

  struct CommitResult {
    cost::HardwareCost cost;  ///< hardware cost of the post-merge design
    testability::TestabilityAnalysis::UpdateStats stats;
  };

  /// Applies the winning merger to the persistent state.  `b_after` and
  /// `s_after` are the already-merged binding and its reschedule; the
  /// caller commits them to its own result only after this returns, so a
  /// throw here leaves the caller's checkpoint intact (and this context
  /// poisoned).
  CommitResult commit(const testability::MergeCandidate& cand,
                      const etpn::Binding& b_after,
                      const sched::Schedule& s_after);

  /// Checks a workspace out of the reuse pool (or creates one), synced to
  /// the current epoch.  Thread-safe; called from trial-pool workers.
  [[nodiscard]] std::unique_ptr<TrialWorkspace> checkout();
  /// Returns a workspace to the pool for reuse.
  void checkin(std::unique_ptr<TrialWorkspace> ws);

 private:
  void refresh(TrialWorkspace& ws) const;

  const dfg::Dfg& g_;
  const cost::ModuleLibrary& lib_;
  int bits_;
  std::uint64_t epoch_ = 0;  ///< bumped by attach() and every commit()
  bool poisoned_ = false;
  etpn::Binding b_;
  sched::Schedule s_;
  std::unique_ptr<etpn::Etpn> e_;  ///< stable address for analysis_'s ref
  std::optional<testability::TestabilityAnalysis> analysis_;
  petri::IncrementalCriticalPath critical_path_;
  cost::CostScratch cost_scratch_;
  util::Arena commit_arena_;  ///< backs commit()'s (never-reverted) patch
  std::mutex pool_mutex_;
  std::vector<std::unique_ptr<TrialWorkspace>> pool_;
};

}  // namespace hlts::analysis
