// Umbrella header: the public API of the hlts library.
//
// Typical use:
//
//   #include "hlts.hpp"
//
//   hlts::dfg::Dfg g = hlts::frontend::compile(spec_source);
//   hlts::core::FlowResult r =
//       hlts::core::run_flow(hlts::core::FlowKind::Ours, g, {.bits = 8});
//   hlts::rtl::RtlDesign rtl =
//       hlts::rtl::RtlDesign::from_synthesis(g, r.schedule, r.binding, 8);
//   hlts::rtl::Elaboration elab = hlts::rtl::elaborate(rtl);
//   hlts::atpg::AtpgResult test = hlts::atpg::run_atpg(elab.netlist,
//                                                      rtl.steps() + 1);
//
// Individual subsystem headers can of course be included directly; this
// header simply pulls in every public entry point.
#pragma once

// Behavioral level.
#include "benchmarks/benchmarks.hpp"
#include "dfg/dfg.hpp"
#include "frontend/parser.hpp"

// Scheduling and allocation.
#include "alloc/alloc.hpp"
#include "sched/constraint_graph.hpp"
#include "sched/fds.hpp"
#include "sched/lifetime.hpp"
#include "sched/list_sched.hpp"
#include "sched/mobility_path.hpp"
#include "sched/schedule.hpp"

// Design representation and analysis.
#include "etpn/binding.hpp"
#include "etpn/datapath.hpp"
#include "etpn/etpn.hpp"
#include "petri/petri.hpp"
#include "testability/balance.hpp"
#include "testability/test_points.hpp"
#include "testability/testability.hpp"

// Cost model and the integrated synthesis algorithm.
#include "core/flows.hpp"
#include "core/resched.hpp"
#include "core/synthesis.hpp"
#include "cost/cost.hpp"

// Hardware and test generation.
#include "atpg/atpg.hpp"
#include "atpg/bist.hpp"
#include "atpg/compact.hpp"
#include "atpg/testbench.hpp"
#include "gates/netlist.hpp"
#include "gates/simplify.hpp"
#include "gates/verilog.hpp"
#include "gates/wordlib.hpp"
#include "rtl/elaborate.hpp"
#include "rtl/rtl.hpp"

// Reporting.
#include "report/schedule_view.hpp"
#include "report/table.hpp"
