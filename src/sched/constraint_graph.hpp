// Scheduling-constraint graph.
//
// Merging two modules imposes "these operations execute in different control
// steps, in this order"; merging two registers imposes "this variable's last
// use precedes that variable's definition".  Both become weighted precedence
// arcs over operations:
//
//   weight 1  -- strict ordering (consumer runs in a later step than
//                producer; module-sharing ops occupy distinct steps),
//   weight 0  -- same-step-allowed ordering (a register may be written at
//                the clock edge that ends the step in which its previous
//                value is last read).
//
// The rescheduler then derives a schedule by longest-path (constrained
// ASAP).  A cycle in the graph means the constraint set is infeasible.
#pragma once

#include <optional>
#include <vector>

#include "dfg/dfg.hpp"
#include "sched/schedule.hpp"
#include "util/ids.hpp"

namespace hlts::sched {

/// A weighted precedence arc: step(to) >= step(from) + weight.
struct ConstraintArc {
  dfg::OpId from;
  dfg::OpId to;
  int weight = 1;
};

class ConstraintGraph {
 public:
  /// Builds a graph seeded with the data-dependence arcs of `g` (weight 1).
  explicit ConstraintGraph(const dfg::Dfg& g);

  /// Adds step(to) >= step(from) + weight.  Duplicate arcs are kept; they
  /// are harmless for longest-path.
  void add_arc(dfg::OpId from, dfg::OpId to, int weight);

  [[nodiscard]] std::size_t num_ops() const { return num_ops_; }
  [[nodiscard]] const std::vector<ConstraintArc>& arcs() const { return arcs_; }

  /// Constrained-ASAP schedule: the componentwise-minimal schedule with all
  /// steps >= 1 satisfying every arc.  Returns nullopt if the constraints
  /// are cyclic (infeasible).
  [[nodiscard]] std::optional<Schedule> solve() const;

  /// Shorthand for solve()->length(); nullopt when infeasible.
  [[nodiscard]] std::optional<int> schedule_length() const;

 private:
  std::size_t num_ops_;
  std::vector<ConstraintArc> arcs_;
};

}  // namespace hlts::sched
