// Force-directed scheduling (Paulin & Knight, 1989).
//
// The paper's "Approach 1" baseline: schedule for a fixed latency while
// balancing the concurrency of each module class, with no testability
// consideration.  Distribution graphs accumulate the probability of each
// unscheduled operation executing in each control step; assignments are
// chosen to minimize total force (self force plus predecessor/successor
// forces).
#pragma once

#include "dfg/dfg.hpp"
#include "sched/schedule.hpp"

namespace hlts::sched {

struct FdsOptions {
  /// Target latency; 0 means "critical path length".
  int latency = 0;
};

/// Runs force-directed scheduling.  The result respects data dependences
/// and has length <= max(latency, critical path).
[[nodiscard]] Schedule force_directed_schedule(const dfg::Dfg& g,
                                               const FdsOptions& options = {});

}  // namespace hlts::sched
