// Resource-constrained list scheduling.
//
// Not used by the paper's flows directly (they are latency-driven), but a
// standard substrate: given per-module-class resource bounds, produce the
// shortest schedule a greedy priority list achieves.  Used by tests and by
// the extra-benchmark exploration bench.
#pragma once

#include <map>

#include "dfg/dfg.hpp"
#include "sched/schedule.hpp"

namespace hlts::sched {

/// Module-class index shared with FDS: 0=mul, 1=div, 2=add/sub/cmp ALU,
/// 3=logic, 4=shift, 5=move.
[[nodiscard]] int module_class_of(dfg::OpKind kind);

struct ListSchedOptions {
  /// Max operations of each module class per step; classes absent from the
  /// map are unconstrained.
  std::map<int, int> class_limits;
};

[[nodiscard]] Schedule list_schedule(const dfg::Dfg& g,
                                     const ListSchedOptions& options = {});

}  // namespace hlts::sched
