// Mobility-path scheduling (Lee, Wolf & Jha, ICCAD'92) -- the paper's
// "Approach 2" scheduler.
//
// Lee's algorithm schedules operations in order of increasing mobility
// (critical paths first) and, for off-critical operations, picks the control
// step that best supports the two testability allocation rules:
//
//   rule 1: whenever possible allocate a register to at least one primary
//           input or primary output variable, and
//   rule 2: reduce the sequential depth from a controllable register to an
//           observable register.
//
// The original paper gives the rules but not a full pseudo-code listing; we
// reconstruct the scheduler as a window-based greedy that scores each
// feasible step by (a) how well the operation's operand/result lifetimes can
// be packed with primary-input/-output variable lifetimes (rule 1) and (b)
// the depth of the operation measured from primary inputs (rule 2), with
// register pressure as the tie-breaker.  DESIGN.md §2 records this
// substitution.
#pragma once

#include "dfg/dfg.hpp"
#include "sched/schedule.hpp"

namespace hlts::sched {

struct MobilityPathOptions {
  /// Target latency; 0 means "critical path length".
  int latency = 0;
};

[[nodiscard]] Schedule mobility_path_schedule(
    const dfg::Dfg& g, const MobilityPathOptions& options = {});

}  // namespace hlts::sched
