#include "sched/mobility_path.hpp"

#include <algorithm>
#include <vector>

#include "sched/lifetime.hpp"
#include "util/error.hpp"

namespace hlts::sched {
namespace {

struct Window {
  int lo = 1;
  int hi = 1;
};

/// Shrinks every window so data dependences stay satisfiable.
void propagate(const dfg::Dfg& g, IndexVec<dfg::OpId, Window>& windows) {
  bool changed = true;
  while (changed) {
    changed = false;
    for (dfg::OpId op : g.op_ids()) {
      Window& w = windows[op];
      for (dfg::OpId p : g.preds(op)) {
        if (windows[p].lo + 1 > w.lo) {
          w.lo = windows[p].lo + 1;
          changed = true;
        }
      }
      for (dfg::OpId q : g.succs(op)) {
        if (windows[q].hi - 1 < w.hi) {
          w.hi = windows[q].hi - 1;
          changed = true;
        }
      }
      HLTS_REQUIRE(w.lo <= w.hi, "mobility-path window collapsed");
    }
  }
}

}  // namespace

Schedule mobility_path_schedule(const dfg::Dfg& g,
                                const MobilityPathOptions& options) {
  const int latency = std::max(options.latency, g.critical_path_ops());
  Schedule early = asap(g);
  Schedule late = alap(g, latency);

  IndexVec<dfg::OpId, Window> windows(g.num_ops());
  for (dfg::OpId op : g.op_ids()) {
    windows[op] = {early.step(op), late.step(op)};
  }

  // Depth from primary inputs: operations whose inputs are all primary
  // inputs have depth 1 (rule 2 wants short sequential paths from
  // controllable registers, which the PI registers are).
  IndexVec<dfg::OpId, int> depth(g.num_ops(), 1);
  for (dfg::OpId op : g.topo_order()) {
    for (dfg::OpId p : g.preds(op)) {
      depth[op] = std::max(depth[op], depth[p] + 1);
    }
  }

  // Order: mobility ascending (critical path first), then depth ascending
  // so values flowing out of PI registers are consumed early, then id.
  std::vector<dfg::OpId> order(g.topo_order());
  std::stable_sort(order.begin(), order.end(), [&](dfg::OpId a, dfg::OpId b) {
    const int ma = windows[a].hi - windows[a].lo;
    const int mb = windows[b].hi - windows[b].lo;
    if (ma != mb) return ma < mb;
    return depth[a] < depth[b];
  });

  Schedule result(g.num_ops());
  IndexVec<dfg::OpId, bool> fixed(g.num_ops(), false);

  // Live-interval pressure per step (steps 0..latency+1), updated as ops
  // are fixed; used to score rule-1 packing.
  auto var_pressure = [&](int step) {
    int live = 0;
    for (dfg::VarId v : g.var_ids()) {
      if (!g.needs_register(v)) continue;
      const dfg::Variable& var = g.var(v);
      int birth;
      if (var.is_primary_input) {
        birth = 0;
      } else if (fixed[var.def]) {
        birth = result.step(var.def);
      } else {
        continue;  // unplaced producer: no contribution yet
      }
      int death = birth;
      for (dfg::OpId use : var.uses) {
        if (fixed[use]) death = std::max(death, result.step(use));
      }
      if (var.is_primary_output && var.po_registered) death = latency + 1;
      if (birth < step && step <= death) ++live;
    }
    return live;
  };

  // Same-module-class concurrency at a step (among already-fixed ops):
  // spreading a class across steps is what lets the later allocation share
  // modules at all.
  auto class_pressure = [&](dfg::OpId op, int step) {
    int n = 0;
    for (dfg::OpId other : g.op_ids()) {
      if (other == op || !fixed[other]) continue;
      if (result.step(other) != step) continue;
      if (dfg::ops_module_compatible(g.op(other).kind, g.op(op).kind)) ++n;
    }
    return n;
  };

  for (dfg::OpId op : order) {
    const Window& w = windows[op];
    int best_step = w.lo;
    double best_score = 1e18;
    for (int s = w.lo; s <= w.hi; ++s) {
      // Rule 1 proxy: consuming a primary-input operand *late* stretches the
      // PI variable's lifetime and blocks other variables from sharing the
      // PI register; consuming it early frees the register.
      double rule1 = 0;
      for (dfg::VarId in : g.op(op).inputs) {
        if (g.var(in).is_primary_input) rule1 += static_cast<double>(s);
      }
      // Rule 2 proxy: keep an op's distance from its depth level small
      // (scheduling a depth-d op far beyond step d lengthens the sequential
      // path its result takes toward an observable register).
      const double rule2 = static_cast<double>(s - depth[op]);
      // Tie-break by register pressure at the step where the result is born.
      const double pressure = var_pressure(s + 1);
      const double score = 1.0 * rule1 + 1.5 * rule2 + 0.5 * pressure +
                           8.0 * class_pressure(op, s);
      if (score < best_score - 1e-12) {
        best_score = score;
        best_step = s;
      }
    }
    result.set_step(op, best_step);
    fixed[op] = true;
    windows[op] = {best_step, best_step};
    propagate(g, windows);
  }

  HLTS_REQUIRE(result.respects_data_deps(g),
               "mobility-path scheduler produced an invalid schedule");
  return result;
}

}  // namespace hlts::sched
