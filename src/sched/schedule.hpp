// Operation schedules and the classic window analyses (ASAP / ALAP /
// mobility) that every scheduler in the repo builds on.
//
// Control steps are 1-based: step 0 is reserved for loading primary inputs
// from the input ports into their registers; operations execute in steps
// 1..length().
#pragma once

#include <vector>

#include "dfg/dfg.hpp"
#include "util/ids.hpp"

namespace hlts::sched {

/// A complete schedule: one control step per operation.
class Schedule {
 public:
  Schedule() = default;
  explicit Schedule(std::size_t num_ops) : steps_(num_ops, 0) {}

  [[nodiscard]] int step(dfg::OpId op) const { return steps_[op]; }
  void set_step(dfg::OpId op, int step) { steps_[op] = step; }

  [[nodiscard]] std::size_t num_ops() const { return steps_.size(); }

  /// Largest assigned control step (the schedule length / latency).
  [[nodiscard]] int length() const;

  /// True when every operation is scheduled strictly after all of its data
  /// predecessors (single-cycle operations, no chaining).
  [[nodiscard]] bool respects_data_deps(const dfg::Dfg& g) const;

  /// Operations scheduled in `step`, in id order.
  [[nodiscard]] std::vector<dfg::OpId> ops_in_step(const dfg::Dfg& g,
                                                   int step) const;

  friend bool operator==(const Schedule&, const Schedule&) = default;

 private:
  IndexVec<dfg::OpId, int> steps_;
};

/// As-soon-as-possible schedule (steps 1..critical path length).
[[nodiscard]] Schedule asap(const dfg::Dfg& g);

/// As-late-as-possible schedule within `latency` steps.  Throws hlts::Error
/// if `latency` is below the critical path length.
[[nodiscard]] Schedule alap(const dfg::Dfg& g, int latency);

/// Per-op mobility: alap step - asap step, for the given latency.
[[nodiscard]] IndexVec<dfg::OpId, int> mobility(const dfg::Dfg& g, int latency);

}  // namespace hlts::sched
