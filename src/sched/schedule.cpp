#include "sched/schedule.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace hlts::sched {

int Schedule::length() const {
  int best = 0;
  for (int s : steps_) best = std::max(best, s);
  return best;
}

bool Schedule::respects_data_deps(const dfg::Dfg& g) const {
  for (dfg::OpId op : g.op_ids()) {
    for (dfg::OpId p : g.preds(op)) {
      if (step(op) <= step(p)) return false;
    }
    if (step(op) < 1) return false;
  }
  return true;
}

std::vector<dfg::OpId> Schedule::ops_in_step(const dfg::Dfg& g, int step) const {
  std::vector<dfg::OpId> out;
  for (dfg::OpId op : g.op_ids()) {
    if (steps_[op] == step) out.push_back(op);
  }
  return out;
}

Schedule asap(const dfg::Dfg& g) {
  Schedule s(g.num_ops());
  for (dfg::OpId op : g.topo_order()) {
    int step = 1;
    for (dfg::OpId p : g.preds(op)) {
      step = std::max(step, s.step(p) + 1);
    }
    s.set_step(op, step);
  }
  return s;
}

Schedule alap(const dfg::Dfg& g, int latency) {
  HLTS_REQUIRE_INPUT(latency >= g.critical_path_ops(),
                     "alap: latency below critical path length");
  Schedule s(g.num_ops());
  std::vector<dfg::OpId> order = g.topo_order();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    int step = latency;
    for (dfg::OpId q : g.succs(*it)) {
      step = std::min(step, s.step(q) - 1);
    }
    s.set_step(*it, step);
  }
  return s;
}

IndexVec<dfg::OpId, int> mobility(const dfg::Dfg& g, int latency) {
  Schedule early = asap(g);
  Schedule late = alap(g, latency);
  IndexVec<dfg::OpId, int> mob(g.num_ops(), 0);
  for (dfg::OpId op : g.op_ids()) {
    mob[op] = late.step(op) - early.step(op);
  }
  return mob;
}

}  // namespace hlts::sched
