#include "sched/fds.hpp"

#include <algorithm>
#include <map>
#include <vector>

#include "util/error.hpp"

namespace hlts::sched {
namespace {

/// Module-class index used for the distribution graphs; mirrors
/// dfg::ops_module_compatible.
int module_class(dfg::OpKind k) {
  using dfg::OpKind;
  switch (k) {
    case OpKind::Mul: return 0;
    case OpKind::Div: return 1;
    case OpKind::And:
    case OpKind::Or:
    case OpKind::Xor:
    case OpKind::Not:
      return 3;
    case OpKind::ShiftLeft:
    case OpKind::ShiftRight:
      return 4;
    case OpKind::Move:
      return 5;
    default:
      return 2;  // add/sub/compare ALU class
  }
}

struct Window {
  int lo = 1;
  int hi = 1;
  [[nodiscard]] int width() const { return hi - lo + 1; }
};

class FdsState {
 public:
  FdsState(const dfg::Dfg& g, int latency)
      : g_(g),
        latency_(latency),
        windows_(g.num_ops()),
        fixed_(g.num_ops(), false) {
    Schedule early = asap(g);
    Schedule late = alap(g, latency);
    for (dfg::OpId op : g.op_ids()) {
      windows_[op] = {early.step(op), late.step(op)};
    }
    rebuild_dg();
  }

  [[nodiscard]] bool all_fixed() const {
    return std::all_of(fixed_.begin(), fixed_.end(), [](bool b) { return b; });
  }

  /// Distribution graph value for `cls` at `step`.  Looked up from a table
  /// rebuilt after every window change: force evaluation probes dg() for
  /// every (candidate op, step, window step) triple, and summing over all
  /// ops per probe made FDS cubic-and-worse on large graphs.  The rebuild
  /// accumulates in ascending op order -- the same order the per-probe loop
  /// used -- so the cached sums are bit-identical to the naive ones.
  [[nodiscard]] double dg(int cls, int step) const {
    return dg_[static_cast<std::size_t>(cls)][static_cast<std::size_t>(step)];
  }

  /// Self force of fixing `op` at `step` (standard Paulin-Knight formula).
  [[nodiscard]] double self_force(dfg::OpId op, int step) const {
    const Window& w = windows_[op];
    const int cls = module_class(g_.op(op).kind);
    double force = 0;
    for (int t = w.lo; t <= w.hi; ++t) {
      const double delta = (t == step ? 1.0 : 0.0) - 1.0 / w.width();
      force += dg(cls, t) * delta;
    }
    return force;
  }

  /// Force contribution of the implied window shrink of a neighbour whose
  /// window becomes [lo, hi].
  [[nodiscard]] double neighbour_force(dfg::OpId op, int lo, int hi) const {
    const Window& w = windows_[op];
    if (lo == w.lo && hi == w.hi) return 0;
    const int cls = module_class(g_.op(op).kind);
    const int new_width = hi - lo + 1;
    double force = 0;
    for (int t = w.lo; t <= w.hi; ++t) {
      const double p_new = (t >= lo && t <= hi) ? 1.0 / new_width : 0.0;
      force += dg(cls, t) * (p_new - 1.0 / w.width());
    }
    return force;
  }

  /// Total force of fixing `op` at `step`, including direct predecessor and
  /// successor window shrinks.
  [[nodiscard]] double total_force(dfg::OpId op, int step) const {
    double force = self_force(op, step);
    for (dfg::OpId p : g_.preds(op)) {
      if (fixed_[p]) continue;
      const Window& w = windows_[p];
      force += neighbour_force(p, w.lo, std::min(w.hi, step - 1));
    }
    for (dfg::OpId q : g_.succs(op)) {
      if (fixed_[q]) continue;
      const Window& w = windows_[q];
      force += neighbour_force(q, std::max(w.lo, step + 1), w.hi);
    }
    return force;
  }

  /// Fixes `op` at `step` and propagates window shrinks transitively.
  void fix(dfg::OpId op, int step) {
    windows_[op] = {step, step};
    fixed_[op] = true;
    propagate();
    rebuild_dg();
  }

  [[nodiscard]] const Window& window(dfg::OpId op) const { return windows_[op]; }
  [[nodiscard]] bool is_fixed(dfg::OpId op) const { return fixed_[op]; }

 private:
  void propagate() {
    bool changed = true;
    while (changed) {
      changed = false;
      for (dfg::OpId op : g_.op_ids()) {
        Window& w = windows_[op];
        for (dfg::OpId p : g_.preds(op)) {
          if (windows_[p].lo + 1 > w.lo) {
            w.lo = windows_[p].lo + 1;
            changed = true;
          }
        }
        for (dfg::OpId q : g_.succs(op)) {
          if (windows_[q].hi - 1 < w.hi) {
            w.hi = windows_[q].hi - 1;
            changed = true;
          }
        }
        HLTS_REQUIRE(w.lo <= w.hi, "FDS window collapsed; latency infeasible");
      }
    }
  }

  void rebuild_dg() {
    // 6 module classes (see module_class); steps are 1-based so the rows
    // span [0, latency] inclusive.
    dg_.assign(6, std::vector<double>(static_cast<std::size_t>(latency_) + 1,
                                      0.0));
    for (dfg::OpId op : g_.op_ids()) {
      const int cls = module_class(g_.op(op).kind);
      const Window& w = windows_[op];
      const double p = 1.0 / w.width();
      for (int t = w.lo; t <= w.hi; ++t) {
        dg_[static_cast<std::size_t>(cls)][static_cast<std::size_t>(t)] += p;
      }
    }
  }

  const dfg::Dfg& g_;
  int latency_;
  IndexVec<dfg::OpId, Window> windows_;
  IndexVec<dfg::OpId, bool> fixed_;
  std::vector<std::vector<double>> dg_;
};

}  // namespace

Schedule force_directed_schedule(const dfg::Dfg& g, const FdsOptions& options) {
  const int latency = std::max(options.latency, g.critical_path_ops());
  FdsState state(g, latency);

  while (!state.all_fixed()) {
    dfg::OpId best_op;
    int best_step = 0;
    double best_force = 0;
    bool found = false;
    for (dfg::OpId op : g.op_ids()) {
      if (state.is_fixed(op)) continue;
      const auto& w = state.window(op);
      for (int s = w.lo; s <= w.hi; ++s) {
        const double f = state.total_force(op, s);
        if (!found || f < best_force - 1e-12) {
          found = true;
          best_force = f;
          best_op = op;
          best_step = s;
        }
      }
    }
    HLTS_REQUIRE(found, "FDS: no assignable operation (internal error)");
    state.fix(best_op, best_step);
  }

  Schedule result(g.num_ops());
  for (dfg::OpId op : g.op_ids()) {
    result.set_step(op, state.window(op).lo);
  }
  HLTS_REQUIRE(result.respects_data_deps(g), "FDS produced an invalid schedule");
  return result;
}

}  // namespace hlts::sched
