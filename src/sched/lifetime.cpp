#include "sched/lifetime.hpp"

#include <algorithm>

namespace hlts::sched {

LifetimeTable LifetimeTable::compute(const dfg::Dfg& g, const Schedule& s) {
  LifetimeTable t;
  t.table_.assign(g.num_vars(), Lifetime{});
  const int length = s.length();
  for (dfg::VarId v : g.var_ids()) {
    if (!g.needs_register(v)) continue;
    const dfg::Variable& var = g.var(v);
    Lifetime lt;
    lt.birth = var.is_primary_input ? 0 : s.step(var.def);
    lt.death = lt.birth;
    for (dfg::OpId use : var.uses) {
      lt.death = std::max(lt.death, s.step(use));
    }
    if (var.is_primary_output && var.po_registered) {
      lt.death = std::max(lt.death, length + 1);
    }
    t.table_[v] = lt;
  }
  return t;
}

bool LifetimeTable::disjoint(dfg::VarId a, dfg::VarId b) const {
  const Lifetime& la = table_[a];
  const Lifetime& lb = table_[b];
  if (la.empty() || lb.empty()) return true;
  return la.death <= lb.birth || lb.death <= la.birth;
}

int LifetimeTable::max_live() const {
  int latest = 0;
  for (const Lifetime& lt : table_) latest = std::max(latest, lt.death);
  int best = 0;
  // A variable is live during steps (birth, death]; sample each step.
  for (int step = 0; step <= latest; ++step) {
    int live = 0;
    for (const Lifetime& lt : table_) {
      if (!lt.empty() && lt.birth < step && step <= lt.death) ++live;
    }
    best = std::max(best, live);
  }
  return best;
}

}  // namespace hlts::sched
