#include "sched/list_sched.hpp"

#include <algorithm>
#include <vector>

#include "util/error.hpp"

namespace hlts::sched {

int module_class_of(dfg::OpKind k) {
  using dfg::OpKind;
  switch (k) {
    case OpKind::Mul: return 0;
    case OpKind::Div: return 1;
    case OpKind::And:
    case OpKind::Or:
    case OpKind::Xor:
    case OpKind::Not:
      return 3;
    case OpKind::ShiftLeft:
    case OpKind::ShiftRight:
      return 4;
    case OpKind::Move:
      return 5;
    default:
      return 2;
  }
}

Schedule list_schedule(const dfg::Dfg& g, const ListSchedOptions& options) {
  // Priority: longest path to a sink (classic list-scheduling slack metric).
  IndexVec<dfg::OpId, int> height(g.num_ops(), 1);
  std::vector<dfg::OpId> order = g.topo_order();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    for (dfg::OpId q : g.succs(*it)) {
      height[*it] = std::max(height[*it], height[q] + 1);
    }
  }

  Schedule s(g.num_ops());
  IndexVec<dfg::OpId, bool> placed(g.num_ops(), false);
  std::size_t remaining = g.num_ops();
  int step = 0;
  while (remaining > 0) {
    ++step;
    HLTS_REQUIRE(step <= static_cast<int>(g.num_ops()) + 1,
                 "list scheduling failed to converge");
    // Ready ops: all preds placed in earlier steps.
    std::vector<dfg::OpId> ready;
    for (dfg::OpId op : g.op_ids()) {
      if (placed[op]) continue;
      bool ok = true;
      for (dfg::OpId p : g.preds(op)) {
        if (!placed[p] || s.step(p) >= step) {
          ok = false;
          break;
        }
      }
      if (ok) ready.push_back(op);
    }
    std::stable_sort(ready.begin(), ready.end(), [&](dfg::OpId a, dfg::OpId b) {
      return height[a] > height[b];
    });
    std::map<int, int> used;
    for (dfg::OpId op : ready) {
      const int cls = module_class_of(g.op(op).kind);
      auto limit = options.class_limits.find(cls);
      if (limit != options.class_limits.end() && used[cls] >= limit->second) {
        continue;
      }
      ++used[cls];
      s.set_step(op, step);
      placed[op] = true;
      --remaining;
    }
  }
  HLTS_REQUIRE(s.respects_data_deps(g), "list scheduler produced invalid schedule");
  return s;
}

}  // namespace hlts::sched
