#include "sched/constraint_graph.hpp"

#include <algorithm>
#include <queue>

#include "util/error.hpp"

namespace hlts::sched {

ConstraintGraph::ConstraintGraph(const dfg::Dfg& g) : num_ops_(g.num_ops()) {
  for (dfg::OpId op : g.op_ids()) {
    for (dfg::OpId p : g.preds(op)) {
      add_arc(p, op, 1);
    }
  }
}

void ConstraintGraph::add_arc(dfg::OpId from, dfg::OpId to, int weight) {
  HLTS_REQUIRE(from.index() < num_ops_ && to.index() < num_ops_,
               "constraint arc references unknown operation");
  HLTS_REQUIRE(weight >= 0, "constraint arc weight must be non-negative");
  arcs_.push_back({from, to, weight});
}

std::optional<Schedule> ConstraintGraph::solve() const {
  // Kahn's algorithm over the arc multigraph; zero-weight arcs still count
  // for ordering, so any directed cycle (even all-zero-weight) is rejected.
  // All-zero-weight cycles would actually be satisfiable, but they only
  // arise from contradictory lifetime orders, which we want to reject.
  std::vector<std::vector<std::pair<std::uint32_t, int>>> succs(num_ops_);
  std::vector<int> indegree(num_ops_, 0);
  for (const ConstraintArc& a : arcs_) {
    succs[a.from.index()].push_back({a.to.value(), a.weight});
    ++indegree[a.to.index()];
  }

  std::priority_queue<std::uint32_t, std::vector<std::uint32_t>, std::greater<>>
      ready;
  for (std::uint32_t i = 0; i < num_ops_; ++i) {
    if (indegree[i] == 0) ready.push(i);
  }

  Schedule s(num_ops_);
  std::vector<int> step(num_ops_, 1);
  std::size_t done = 0;
  while (!ready.empty()) {
    std::uint32_t u = ready.top();
    ready.pop();
    ++done;
    s.set_step(dfg::OpId{u}, step[u]);
    for (auto [v, w] : succs[u]) {
      step[v] = std::max(step[v], step[u] + w);
      if (--indegree[v] == 0) ready.push(v);
    }
  }
  if (done != num_ops_) return std::nullopt;  // cycle
  return s;
}

std::optional<int> ConstraintGraph::schedule_length() const {
  auto s = solve();
  if (!s) return std::nullopt;
  return s->length();
}

}  // namespace hlts::sched
