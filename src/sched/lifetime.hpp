// Variable lifetime analysis (Algorithm 1, step 13).
//
// A value is written into its register at the *end* of the control step of
// its defining operation (primary inputs at the end of step 0, the load
// step) and must be held until the end of the last step in which it is read.
// Registered primary outputs are held to the end of the schedule.  Two
// variables may share a register iff their lifetime intervals are disjoint.
#pragma once

#include "dfg/dfg.hpp"
#include "sched/schedule.hpp"
#include "util/ids.hpp"

namespace hlts::sched {

/// Half-open interval semantics: the value occupies the register during
/// (birth, death], i.e. from just after step `birth` to the end of `death`.
/// An interval with death == birth is empty (value produced but never held).
struct Lifetime {
  int birth = 0;
  int death = 0;
  [[nodiscard]] bool empty() const { return death <= birth; }
};

/// Lifetimes of every register-resident variable under a schedule.
class LifetimeTable {
 public:
  LifetimeTable() = default;

  /// Computes lifetimes; variables with !g.needs_register() get an empty
  /// interval and never conflict.
  static LifetimeTable compute(const dfg::Dfg& g, const Schedule& s);

  [[nodiscard]] Lifetime lifetime(dfg::VarId v) const { return table_[v]; }

  /// True when the two variables can share one register.
  [[nodiscard]] bool disjoint(dfg::VarId a, dfg::VarId b) const;

  /// Maximum number of simultaneously live variables; a lower bound on the
  /// register count of any allocation.
  [[nodiscard]] int max_live() const;

 private:
  IndexVec<dfg::VarId, Lifetime> table_;
};

}  // namespace hlts::sched
