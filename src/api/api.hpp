// The versioned request/response surface shared by every job path.
//
// Before this layer, the CLI handed engine::FlowRequest structs to the
// engine, the journal serialized its own ad-hoc record shape, and nothing
// could cross a process boundary: there was no stable contract for what a
// "job" or a "result" looks like as bytes.  src/api is that contract --
// plain DTO structs with explicit JSON encode/decode on util::JsonValue:
//
//   api::FlowRequestV1  one unit of synthesis work (flow kind, DSL source
//                       or serialized DFG, the serializable knob set,
//                       timeout/deadline) -- what hlts_batch submits, what
//                       the journal writes ahead, what the wire protocol
//                       carries;
//   api::FlowResultV1   the uniform result record (state, counts, cost
//                       bits, schedule steps, allocation strings) --
//                       everything the bit-identity contract compares;
//   api::HealthV1       one shard's EngineHealth snapshot, the unit the
//                       serving layer merges into a cluster view.
//
// Versioning rules (DESIGN.md section 13):
//   - every document carries "schema_version"; readers accept any version
//     >= their own major and *ignore unknown fields*, so a V1 reader keeps
//     working when a V1.x writer adds fields (forward compatibility);
//   - removing or re-typing a field requires a new DTO struct (V2) and a
//     new schema_version -- existing fields never change meaning;
//   - decode treats input as untrusted bytes: structural problems throw
//     hlts::Error(ErrorKind::Input) with a descriptive message, never
//     crash, and numbers that must be exact round-trip through int64.
//
// Layering: api depends only on core/dfg/util (the DTOs embed the
// serializable AlgorithmOptions knob set and reuse core/checkpoint's
// params/dfg JSON round-trip).  The engine and the serving layer depend on
// api, never the other way around.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/flows.hpp"
#include "dfg/dfg.hpp"
#include "util/json.hpp"

namespace hlts::api {

inline constexpr int kSchemaVersion = 1;

/// Stable lowercase wire tokens for the four flows ("camad", "approach1",
/// "approach2", "ours"); the report-facing names (core::flow_name) have
/// spaces and capitals and are NOT part of the wire contract.
[[nodiscard]] const char* flow_token(core::FlowKind kind);
/// Inverse of flow_token; throws Error(Input) on an unknown token.
[[nodiscard]] core::FlowKind flow_from_token(const std::string& token);

/// One unit of synthesis work as it crosses a process boundary.  Exactly
/// one of `dfg` / `source` is set; run hooks (callbacks, cancel flags) are
/// process-local and deliberately not representable.
struct FlowRequestV1 {
  int schema_version = kSchemaVersion;
  std::string name;
  core::FlowKind kind = core::FlowKind::Ours;
  std::optional<dfg::Dfg> dfg;
  std::string source;
  core::FlowParams params{};  ///< serializable knobs only
  std::int64_t timeout_ms = 0;
  std::int64_t queue_deadline_ms = 0;
  /// Optional idempotency key: retries of one logical request carry the
  /// same token, and the serving layer answers every token exactly once
  /// (a duplicate gets the original, bit-identical reply).  Empty = no
  /// dedup.  Added in V1.1; V1 readers ignore it (unknown-field rule).
  std::string flow_token;

  [[nodiscard]] util::JsonValue to_json() const;
  [[nodiscard]] static FlowRequestV1 from_json(const util::JsonValue& v);
};

/// The uniform result record: terminal state plus (when a design exists)
/// every field of the bit-identity contract -- the schedule steps, the
/// allocation strings and the exact cost/balance doubles, all of which
/// round-trip bitwise through the JSON encoding.
struct FlowResultV1 {
  int schema_version = kSchemaVersion;
  std::string name;
  core::FlowKind kind = core::FlowKind::Ours;
  std::string state;  ///< engine::job_state_name token ("succeeded", ...)
  std::string error;  ///< diagnostic for failed/rejected jobs
  double wall_ms = 0;

  bool has_design = false;  ///< the fields below are meaningful
  std::string completeness = "full";
  std::string stop_reason;
  int iterations = 0;
  int exec_time = 0;
  int registers = 0;
  int modules = 0;
  int muxes = 0;
  int self_loops = 0;
  double area = 0;
  double balance_index = 0;
  std::vector<int> schedule_steps;  ///< per-op control step, id order
  std::vector<std::string> module_allocation;
  std::vector<std::string> register_allocation;

  [[nodiscard]] util::JsonValue to_json() const;
  [[nodiscard]] static FlowResultV1 from_json(const util::JsonValue& v);
  /// Builds the DTO from a finished core::FlowResult.
  [[nodiscard]] static FlowResultV1 from_result(std::string name,
                                               const core::FlowResult& r);

  /// True when both describe the same design bit for bit (the cross-process
  /// determinism check: doubles compared by bit pattern, schedules and
  /// allocations exactly).
  [[nodiscard]] bool design_identical(const FlowResultV1& other) const;
};

/// One shard's engine health snapshot.  All counters are monotone over a
/// shard's lifetime except the three gauges (queue_depth, in_flight,
/// running), which the cluster aggregation treats as last-observed values.
struct HealthV1 {
  int schema_version = kSchemaVersion;
  int shard = 0;
  std::int64_t queue_depth = 0;
  std::int64_t queue_capacity = -1;  ///< -1 = unbounded
  std::int64_t in_flight = 0;
  std::int64_t running = 0;
  std::int64_t submitted = 0;
  std::int64_t retries = 0;
  std::int64_t stalls = 0;
  std::int64_t sheds = 0;
  std::int64_t rejected = 0;
  std::int64_t recovered = 0;
  std::int64_t journal_lag = 0;
  bool journaling = false;

  // Lifecycle fields (V1.1, additive).  respawns / hedges_won /
  // hedges_cancelled are monotone counters; breaker / quarantined /
  // uptime_ms are last-observed state.  The supervisor overlays its own
  // lifecycle bookkeeping onto each worker-reported snapshot; a v1 parser
  // that predates these fields ignores them, and from_json defaults each
  // when missing, so mixed-version clusters keep merging health.
  std::int64_t respawns = 0;         ///< times this shard was respawned
  std::int64_t hedges_won = 0;       ///< hedged submits that beat the primary
  std::int64_t hedges_cancelled = 0; ///< hedges cancelled after a primary win
  std::string breaker = "closed";    ///< circuit breaker: closed|open|half_open
  bool quarantined = false;          ///< crash-looping, no further respawns
  std::int64_t uptime_ms = 0;        ///< current worker process uptime

  [[nodiscard]] util::JsonValue to_json() const;
  [[nodiscard]] static HealthV1 from_json(const util::JsonValue& v);
};

}  // namespace hlts::api
