#include "api/api.hpp"

#include <cstring>
#include <limits>
#include <utility>

#include "core/checkpoint.hpp"
#include "util/error.hpp"
#include "util/ids.hpp"

namespace hlts::api {

namespace {

using util::JsonValue;

[[noreturn]] void bad(const std::string& doc, const std::string& what) {
  throw Error("api: " + doc + ": " + what, ErrorKind::Input);
}

/// Shared envelope checks: every DTO document is an object whose
/// schema_version is a positive int no newer than this reader understands
/// plus its forward-compatibility window (same major: any version >= 1 is
/// accepted, unknown fields are ignored).
void check_envelope(const JsonValue& v, const std::string& doc) {
  if (!v.is_object()) bad(doc, "not a JSON object");
  const JsonValue* ver = v.find("schema_version");
  if (ver == nullptr || !ver->is_int()) bad(doc, "missing schema_version");
  if (ver->as_int() < 1) bad(doc, "schema_version must be >= 1");
}

std::int64_t require_nonneg(const JsonValue& v, const std::string& doc,
                            const std::string& key, std::int64_t fallback) {
  const JsonValue* m = v.find(key);
  if (m == nullptr) return fallback;
  if (!m->is_int() || m->as_int() < 0) bad(doc, "'" + key + "' must be >= 0");
  return m->as_int();
}

int require_int32(const JsonValue& v, const std::string& doc,
                  const std::string& key) {
  const JsonValue* m = v.find(key);
  if (m == nullptr) return 0;
  if (!m->is_int() || m->as_int() < std::numeric_limits<int>::min() ||
      m->as_int() > std::numeric_limits<int>::max()) {
    bad(doc, "'" + key + "' must be a 32-bit integer");
  }
  return static_cast<int>(m->as_int());
}

std::vector<std::string> string_array(const JsonValue& v,
                                      const std::string& doc,
                                      const std::string& key) {
  std::vector<std::string> out;
  const JsonValue* m = v.find(key);
  if (m == nullptr) return out;
  if (!m->is_array()) bad(doc, "'" + key + "' must be an array");
  out.reserve(m->as_array().size());
  for (const JsonValue& e : m->as_array()) {
    if (!e.is_string()) bad(doc, "'" + key + "' must hold strings");
    out.push_back(e.as_string());
  }
  return out;
}

bool bits_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

}  // namespace

const char* flow_token(core::FlowKind kind) {
  switch (kind) {
    case core::FlowKind::Camad: return "camad";
    case core::FlowKind::Approach1: return "approach1";
    case core::FlowKind::Approach2: return "approach2";
    case core::FlowKind::Ours: return "ours";
  }
  return "?";
}

core::FlowKind flow_from_token(const std::string& token) {
  for (core::FlowKind k :
       {core::FlowKind::Camad, core::FlowKind::Approach1,
        core::FlowKind::Approach2, core::FlowKind::Ours}) {
    if (token == flow_token(k)) return k;
  }
  throw Error("api: unknown flow '" + token + "'", ErrorKind::Input);
}

// --- FlowRequestV1 ----------------------------------------------------------

util::JsonValue FlowRequestV1::to_json() const {
  JsonValue::Object o{
      {"schema_version", JsonValue::make_int(schema_version)},
      {"name", JsonValue::make_string(name)},
      {"flow", JsonValue::make_string(api::flow_token(kind))},
      {"timeout_ms", JsonValue::make_int(timeout_ms)},
      {"queue_deadline_ms", JsonValue::make_int(queue_deadline_ms)},
      {"params", core::params_to_json(params)},
  };
  if (!flow_token.empty()) {
    o.emplace_back("flow_token", JsonValue::make_string(flow_token));
  }
  if (dfg) {
    o.emplace_back("dfg", core::dfg_to_json(*dfg));
  } else {
    o.emplace_back("source", JsonValue::make_string(source));
  }
  return JsonValue::make_object(std::move(o));
}

FlowRequestV1 FlowRequestV1::from_json(const util::JsonValue& v) {
  const std::string doc = "FlowRequestV1";
  check_envelope(v, doc);
  FlowRequestV1 r;
  r.schema_version = static_cast<int>(v.get_int("schema_version", 1));
  r.name = v.get_string("name");
  if (r.name.empty()) bad(doc, "missing name");
  r.kind = flow_from_token(v.get_string("flow"));
  r.timeout_ms = require_nonneg(v, doc, "timeout_ms", 0);
  r.queue_deadline_ms = require_nonneg(v, doc, "queue_deadline_ms", 0);
  if (const JsonValue* token = v.find("flow_token")) {
    if (!token->is_string()) bad(doc, "'flow_token' must be a string");
    r.flow_token = token->as_string();
  }
  const JsonValue* params = v.find("params");
  if (params == nullptr) bad(doc, "missing params");
  r.params = core::params_from_json(*params);
  const JsonValue* dfg = v.find("dfg");
  const JsonValue* source = v.find("source");
  if ((dfg == nullptr) == (source == nullptr)) {
    bad(doc, "exactly one of 'dfg'/'source' required");
  }
  if (dfg != nullptr) {
    r.dfg = core::dfg_from_json(*dfg);
  } else {
    if (!source->is_string()) bad(doc, "'source' must be a string");
    r.source = source->as_string();
  }
  return r;
}

// --- FlowResultV1 -----------------------------------------------------------

util::JsonValue FlowResultV1::to_json() const {
  JsonValue::Object o{
      {"schema_version", JsonValue::make_int(schema_version)},
      {"name", JsonValue::make_string(name)},
      {"flow", JsonValue::make_string(api::flow_token(kind))},
      {"state", JsonValue::make_string(state)},
      {"wall_ms", JsonValue::make_number(wall_ms)},
  };
  if (!error.empty()) o.emplace_back("error", JsonValue::make_string(error));
  if (has_design) {
    JsonValue::Array steps;
    steps.reserve(schedule_steps.size());
    for (const int s : schedule_steps) steps.push_back(JsonValue::make_int(s));
    JsonValue::Array mods;
    mods.reserve(module_allocation.size());
    for (const std::string& m : module_allocation) {
      mods.push_back(JsonValue::make_string(m));
    }
    JsonValue::Array regs;
    regs.reserve(register_allocation.size());
    for (const std::string& m : register_allocation) {
      regs.push_back(JsonValue::make_string(m));
    }
    o.emplace_back("completeness", JsonValue::make_string(completeness));
    o.emplace_back("stop_reason", JsonValue::make_string(stop_reason));
    o.emplace_back("iterations", JsonValue::make_int(iterations));
    o.emplace_back("exec_time", JsonValue::make_int(exec_time));
    o.emplace_back("registers", JsonValue::make_int(registers));
    o.emplace_back("modules", JsonValue::make_int(modules));
    o.emplace_back("muxes", JsonValue::make_int(muxes));
    o.emplace_back("self_loops", JsonValue::make_int(self_loops));
    o.emplace_back("area", JsonValue::make_number(area));
    o.emplace_back("balance_index", JsonValue::make_number(balance_index));
    o.emplace_back("schedule", JsonValue::make_array(std::move(steps)));
    o.emplace_back("module_allocation", JsonValue::make_array(std::move(mods)));
    o.emplace_back("register_allocation",
                   JsonValue::make_array(std::move(regs)));
  }
  return JsonValue::make_object(std::move(o));
}

FlowResultV1 FlowResultV1::from_json(const util::JsonValue& v) {
  const std::string doc = "FlowResultV1";
  check_envelope(v, doc);
  FlowResultV1 r;
  r.schema_version = static_cast<int>(v.get_int("schema_version", 1));
  r.name = v.get_string("name");
  r.kind = flow_from_token(v.get_string("flow"));
  r.state = v.get_string("state");
  if (r.state.empty()) bad(doc, "missing state");
  r.error = v.get_string("error");
  r.wall_ms = v.get_double("wall_ms");
  // The design block is present exactly when a schedule was serialized.
  r.has_design = v.find("schedule") != nullptr;
  if (!r.has_design) return r;
  r.completeness = v.get_string("completeness", "full");
  r.stop_reason = v.get_string("stop_reason");
  r.iterations = require_int32(v, doc, "iterations");
  r.exec_time = require_int32(v, doc, "exec_time");
  r.registers = require_int32(v, doc, "registers");
  r.modules = require_int32(v, doc, "modules");
  r.muxes = require_int32(v, doc, "muxes");
  r.self_loops = require_int32(v, doc, "self_loops");
  r.area = v.get_double("area");
  r.balance_index = v.get_double("balance_index");
  const JsonValue* steps = v.find("schedule");
  if (!steps->is_array()) bad(doc, "'schedule' must be an array");
  r.schedule_steps.reserve(steps->as_array().size());
  for (const JsonValue& s : steps->as_array()) {
    if (!s.is_int() || s.as_int() < 0 ||
        s.as_int() > std::numeric_limits<int>::max()) {
      bad(doc, "schedule step out of range");
    }
    r.schedule_steps.push_back(static_cast<int>(s.as_int()));
  }
  r.module_allocation = string_array(v, doc, "module_allocation");
  r.register_allocation = string_array(v, doc, "register_allocation");
  return r;
}

FlowResultV1 FlowResultV1::from_result(std::string name,
                                       const core::FlowResult& r) {
  FlowResultV1 out;
  out.name = std::move(name);
  out.kind = r.kind;
  out.has_design = true;
  out.completeness = core::completeness_name(r.completeness);
  out.stop_reason = r.stop_reason;
  out.iterations = r.iterations;
  out.exec_time = r.exec_time;
  out.registers = r.registers;
  out.modules = r.modules;
  out.muxes = r.muxes;
  out.self_loops = r.self_loops;
  out.area = r.cost.total();
  out.balance_index = r.balance_index;
  out.schedule_steps.reserve(r.schedule.num_ops());
  for (dfg::OpId op : id_range<dfg::OpId>(r.schedule.num_ops())) {
    out.schedule_steps.push_back(r.schedule.step(op));
  }
  out.module_allocation = r.module_allocation;
  out.register_allocation = r.register_allocation;
  return out;
}

bool FlowResultV1::design_identical(const FlowResultV1& other) const {
  return has_design == other.has_design && exec_time == other.exec_time &&
         registers == other.registers && modules == other.modules &&
         muxes == other.muxes && self_loops == other.self_loops &&
         bits_equal(area, other.area) &&
         bits_equal(balance_index, other.balance_index) &&
         schedule_steps == other.schedule_steps &&
         module_allocation == other.module_allocation &&
         register_allocation == other.register_allocation;
}

// --- HealthV1 ---------------------------------------------------------------

util::JsonValue HealthV1::to_json() const {
  return JsonValue::make_object({
      {"schema_version", JsonValue::make_int(schema_version)},
      {"shard", JsonValue::make_int(shard)},
      {"queue_depth", JsonValue::make_int(queue_depth)},
      {"queue_capacity", JsonValue::make_int(queue_capacity)},
      {"in_flight", JsonValue::make_int(in_flight)},
      {"running", JsonValue::make_int(running)},
      {"submitted", JsonValue::make_int(submitted)},
      {"retries", JsonValue::make_int(retries)},
      {"stalls", JsonValue::make_int(stalls)},
      {"sheds", JsonValue::make_int(sheds)},
      {"rejected", JsonValue::make_int(rejected)},
      {"recovered", JsonValue::make_int(recovered)},
      {"journal_lag", JsonValue::make_int(journal_lag)},
      {"journaling", JsonValue::make_bool(journaling)},
      {"respawns", JsonValue::make_int(respawns)},
      {"hedges_won", JsonValue::make_int(hedges_won)},
      {"hedges_cancelled", JsonValue::make_int(hedges_cancelled)},
      {"breaker", JsonValue::make_string(breaker)},
      {"quarantined", JsonValue::make_bool(quarantined)},
      {"uptime_ms", JsonValue::make_int(uptime_ms)},
  });
}

HealthV1 HealthV1::from_json(const util::JsonValue& v) {
  const std::string doc = "HealthV1";
  check_envelope(v, doc);
  HealthV1 h;
  h.schema_version = static_cast<int>(v.get_int("schema_version", 1));
  h.shard = require_int32(v, doc, "shard");
  h.queue_depth = require_nonneg(v, doc, "queue_depth", 0);
  const JsonValue* cap = v.find("queue_capacity");
  if (cap != nullptr) {
    if (!cap->is_int() || cap->as_int() < -1) {
      bad(doc, "'queue_capacity' must be an int >= -1");
    }
    h.queue_capacity = cap->as_int();
  }
  h.in_flight = require_nonneg(v, doc, "in_flight", 0);
  h.running = require_nonneg(v, doc, "running", 0);
  h.submitted = require_nonneg(v, doc, "submitted", 0);
  h.retries = require_nonneg(v, doc, "retries", 0);
  h.stalls = require_nonneg(v, doc, "stalls", 0);
  h.sheds = require_nonneg(v, doc, "sheds", 0);
  h.rejected = require_nonneg(v, doc, "rejected", 0);
  h.recovered = require_nonneg(v, doc, "recovered", 0);
  h.journal_lag = require_nonneg(v, doc, "journal_lag", 0);
  h.journaling = v.get_bool("journaling");
  // V1.1 lifecycle fields: absent in documents from older writers, so each
  // falls back to its in-struct default instead of failing the parse.
  h.respawns = require_nonneg(v, doc, "respawns", 0);
  h.hedges_won = require_nonneg(v, doc, "hedges_won", 0);
  h.hedges_cancelled = require_nonneg(v, doc, "hedges_cancelled", 0);
  h.breaker = v.get_string("breaker", "closed");
  h.quarantined = v.get_bool("quarantined");
  h.uptime_ms = require_nonneg(v, doc, "uptime_ms", 0);
  return h;
}

}  // namespace hlts::api
