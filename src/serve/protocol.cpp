#include "serve/protocol.hpp"

#include <cstdlib>

#include "util/error.hpp"

namespace hlts::serve::proto {

namespace {

using util::JsonValue;

std::string dump_line(JsonValue::Object members) {
  return util::json_dump(JsonValue::make_object(std::move(members))) + "\n";
}

JsonValue tag_value(std::uint64_t tag) {
  return JsonValue::make_int(static_cast<std::int64_t>(tag));
}

}  // namespace

std::string submit_line(std::uint64_t tag, const util::JsonValue& request) {
  return dump_line({{"op", JsonValue::make_string("submit")},
                    {"tag", tag_value(tag)},
                    {"request", request}});
}

std::string health_line(std::uint64_t tag) {
  return dump_line(
      {{"op", JsonValue::make_string("health")}, {"tag", tag_value(tag)}});
}

std::string adopt_line(std::uint64_t tag, const std::string& dir) {
  return dump_line({{"op", JsonValue::make_string("adopt")},
                    {"tag", tag_value(tag)},
                    {"dir", JsonValue::make_string(dir)}});
}

std::string cancel_line(std::uint64_t tag) {
  return dump_line(
      {{"op", JsonValue::make_string("cancel")}, {"tag", tag_value(tag)}});
}

std::string quit_line() {
  return dump_line({{"op", JsonValue::make_string("quit")}});
}

std::string result_frame(std::uint64_t tag, const api::FlowResultV1& result) {
  return dump_line({{"kind", JsonValue::make_string("result")},
                    {"tag", tag_value(tag)},
                    {"result", result.to_json()}});
}

std::string health_frame(std::uint64_t tag, const api::HealthV1& health) {
  return dump_line({{"kind", JsonValue::make_string("health")},
                    {"tag", tag_value(tag)},
                    {"health", health.to_json()}});
}

std::string adopted_frame(std::uint64_t tag,
                          const std::vector<std::uint64_t>& tags) {
  JsonValue::Array arr;
  arr.reserve(tags.size());
  for (const std::uint64_t t : tags) arr.push_back(tag_value(t));
  return dump_line({{"kind", JsonValue::make_string("adopted")},
                    {"tag", tag_value(tag)},
                    {"tags", JsonValue::make_array(std::move(arr))}});
}

std::string ready_frame(const std::vector<std::uint64_t>& tags) {
  JsonValue::Array arr;
  arr.reserve(tags.size());
  for (const std::uint64_t t : tags) arr.push_back(tag_value(t));
  return dump_line({{"kind", JsonValue::make_string("ready")},
                    {"tags", JsonValue::make_array(std::move(arr))}});
}

std::string ok_result_line(const util::JsonValue& result) {
  return dump_line({{"ok", JsonValue::make_bool(true)}, {"result", result}});
}

std::string ok_health_line(const util::JsonValue& health) {
  return dump_line({{"ok", JsonValue::make_bool(true)}, {"health", health}});
}

std::string ok_line() { return dump_line({{"ok", JsonValue::make_bool(true)}}); }

std::string error_line(const std::string& message) {
  return dump_line({{"ok", JsonValue::make_bool(false)},
                    {"error", JsonValue::make_string(message)}});
}

std::string embed_tag(std::uint64_t tag, const std::string& name) {
  return "t" + std::to_string(tag) + "|" + name;
}

std::optional<TaggedName> split_tag(const std::string& name) {
  if (name.size() < 3 || name[0] != 't') return std::nullopt;
  const std::size_t bar = name.find('|');
  if (bar == std::string::npos || bar < 2) return std::nullopt;
  const std::string digits = name.substr(1, bar - 1);
  if (digits.find_first_not_of("0123456789") != std::string::npos) {
    return std::nullopt;
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long tag = std::strtoull(digits.c_str(), &end, 10);
  if (errno != 0 || end == nullptr || *end != '\0') return std::nullopt;
  return TaggedName{static_cast<std::uint64_t>(tag), name.substr(bar + 1)};
}

}  // namespace hlts::serve::proto
