#include "serve/client.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <utility>

#include "util/error.hpp"
#include "util/knobs.hpp"

namespace hlts::serve {

namespace {
using util::JsonValue;
}  // namespace

ClientOptions ClientOptions::from_env(ClientOptions base) {
  if (const auto v = util::knobs::read_int("HLTS_CLIENT_CONNECT_TIMEOUT_MS");
      v && *v >= 0) {
    base.connect_timeout_ms = static_cast<int>(*v);
  }
  if (const auto v = util::knobs::read_int("HLTS_CLIENT_READ_TIMEOUT_MS");
      v && *v >= 0) {
    base.read_timeout_ms = static_cast<int>(*v);
  }
  if (const auto v = util::knobs::read_int("HLTS_CLIENT_WRITE_TIMEOUT_MS");
      v && *v >= 0) {
    base.write_timeout_ms = static_cast<int>(*v);
  }
  if (const auto v = util::knobs::read_int("HLTS_CLIENT_RETRIES");
      v && *v >= 0) {
    base.retries = static_cast<int>(*v);
  }
  return base;
}

Client::Client(int port, std::size_t max_line_bytes,
               const ClientOptions& options)
    : chaos_(options.chaos),
      fd_(util::net::connect_local(port, options.connect_timeout_ms,
                                   options.chaos)),
      reader_(fd_.get(), max_line_bytes) {
  if (options.read_timeout_ms > 0) {
    reader_.set_read_timeout_ms(options.read_timeout_ms);
  }
  if (options.write_timeout_ms > 0) {
    util::net::set_send_timeout_ms(fd_.get(), options.write_timeout_ms);
  }
  if (options.chaos) reader_.enable_chaos();
}

void Client::send_submit(const api::FlowRequestV1& request) {
  const JsonValue doc = JsonValue::make_object({
      {"op", JsonValue::make_string("submit")},
      {"request", request.to_json()},
  });
  util::net::write_all(fd_.get(), util::json_dump(doc) + "\n", chaos_);
}

std::optional<Client::Response> Client::read_response() {
  const auto line = reader_.read_line();
  if (!line) return std::nullopt;
  const auto doc = util::json_parse(*line);
  Response r;
  if (!doc || !doc->is_object()) {
    r.error = "malformed response line";
    return r;
  }
  r.ok = doc->get_bool("ok");
  r.error = doc->get_string("error");
  if (const JsonValue* result = doc->find("result")) {
    r.result = api::FlowResultV1::from_json(*result);
  }
  if (const JsonValue* health = doc->find("health")) r.health = *health;
  return r;
}

Client::Response Client::submit(const api::FlowRequestV1& request) {
  send_submit(request);
  auto r = read_response();
  if (!r) {
    Response dead;
    dead.error = "connection closed";
    return dead;
  }
  return *r;
}

Client::Response Client::health() {
  util::net::write_all(fd_.get(), "{\"op\":\"health\"}\n", chaos_);
  auto r = read_response();
  if (!r) {
    Response dead;
    dead.error = "connection closed";
    return dead;
  }
  return *r;
}

bool Client::kill_shard(int shard) {
  const JsonValue doc = JsonValue::make_object({
      {"op", JsonValue::make_string("kill")},
      {"shard", JsonValue::make_int(shard)},
  });
  util::net::write_all(fd_.get(), util::json_dump(doc) + "\n", chaos_);
  const auto r = read_response();
  return r && r->ok;
}

bool Client::shutdown() {
  util::net::write_all(fd_.get(), "{\"op\":\"shutdown\"}\n", chaos_);
  const auto r = read_response();
  return r && r->ok;
}

// --- RetryClient ------------------------------------------------------------

RetryClient::RetryClient(int port, ClientOptions options,
                         std::size_t max_line_bytes)
    : port_(port), options_(options), max_line_bytes_(max_line_bytes) {}

Client::Response RetryClient::submit(api::FlowRequestV1 request) {
  if (request.flow_token.empty()) {
    // Unique per process + request; retries below reuse it, which is the
    // whole point.  The counter is process-global on purpose: an
    // instance-local counter keyed by the client's address collides when a
    // short-lived RetryClient is destroyed and a new one lands on the same
    // (stack or heap) address with its counter back at zero -- the server
    // would then replay the dead client's memoized result.
    static std::atomic<std::uint64_t> counter{0};
    request.flow_token =
        "tok-" + std::to_string(::getpid()) + "-" +
        std::to_string(counter.fetch_add(1, std::memory_order_relaxed) + 1);
  }
  Client::Response last;
  last.error = "no attempt made";
  int backoff_ms = options_.backoff_ms;
  const int attempts = options_.retries + 1;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
      backoff_ms = std::min(backoff_ms * 2, options_.backoff_cap_ms);
    }
    try {
      if (!client_) {
        client_.emplace(port_, max_line_bytes_, options_);
      }
      last = client_->submit(request);
    } catch (const Error& e) {
      // Connect refusal/timeout, send timeout, read timeout, injected
      // reset: drop the connection and retry with the same token.
      last = Client::Response{};
      last.error = e.what();
      client_.reset();
      ++reconnects_;
      continue;
    }
    const bool transport_failure =
        !last.ok && !last.result &&
        (last.error == "connection closed" ||
         last.error == "malformed response line");
    if (transport_failure) {
      client_.reset();
      ++reconnects_;
      continue;
    }
    const bool rejected =
        last.result && last.result->state == "rejected";
    if (rejected && options_.retry_rejected) {
      // An explicit refusal (admission control, journal write failure
      // under injected disk faults).  The job never executed -- the
      // supervisor does not memoize refusals -- so resubmitting the same
      // token is safe.
      continue;
    }
    return last;
  }
  return last;
}

}  // namespace hlts::serve
