#include "serve/client.hpp"

#include <utility>

#include "util/error.hpp"

namespace hlts::serve {

namespace {
using util::JsonValue;
}  // namespace

Client::Client(int port, std::size_t max_line_bytes)
    : fd_(util::net::connect_local(port)),
      reader_(fd_.get(), max_line_bytes) {}

void Client::send_submit(const api::FlowRequestV1& request) {
  const JsonValue doc = JsonValue::make_object({
      {"op", JsonValue::make_string("submit")},
      {"request", request.to_json()},
  });
  util::net::write_all(fd_.get(), util::json_dump(doc) + "\n");
}

std::optional<Client::Response> Client::read_response() {
  const auto line = reader_.read_line();
  if (!line) return std::nullopt;
  const auto doc = util::json_parse(*line);
  Response r;
  if (!doc || !doc->is_object()) {
    r.error = "malformed response line";
    return r;
  }
  r.ok = doc->get_bool("ok");
  r.error = doc->get_string("error");
  if (const JsonValue* result = doc->find("result")) {
    r.result = api::FlowResultV1::from_json(*result);
  }
  if (const JsonValue* health = doc->find("health")) r.health = *health;
  return r;
}

Client::Response Client::submit(const api::FlowRequestV1& request) {
  send_submit(request);
  auto r = read_response();
  if (!r) {
    Response dead;
    dead.error = "connection closed";
    return dead;
  }
  return *r;
}

Client::Response Client::health() {
  util::net::write_all(fd_.get(), "{\"op\":\"health\"}\n");
  auto r = read_response();
  if (!r) {
    Response dead;
    dead.error = "connection closed";
    return dead;
  }
  return *r;
}

bool Client::kill_shard(int shard) {
  const JsonValue doc = JsonValue::make_object({
      {"op", JsonValue::make_string("kill")},
      {"shard", JsonValue::make_int(shard)},
  });
  util::net::write_all(fd_.get(), util::json_dump(doc) + "\n");
  const auto r = read_response();
  return r && r->ok;
}

bool Client::shutdown() {
  util::net::write_all(fd_.get(), "{\"op\":\"shutdown\"}\n");
  const auto r = read_response();
  return r && r->ok;
}

}  // namespace hlts::serve
