#include "serve/worker.hpp"

#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "serve/protocol.hpp"
#include "util/error.hpp"
#include "util/json.hpp"
#include "util/socket.hpp"

namespace hlts::serve {

namespace {

using util::JsonValue;

/// A failed-before-running submission still answers with a FlowResultV1 so
/// the supervisor/client sees a uniform result stream.
api::FlowResultV1 refusal(const std::string& name, const std::string& error) {
  api::FlowResultV1 r;
  r.name = name;
  r.state = "rejected";
  r.error = error;
  return r;
}

}  // namespace

void run_worker(int fd, const WorkerConfig& config) {
  const auto start = std::chrono::steady_clock::now();
  engine::EngineOptions opts = config.engine;
  opts.journal_dir = config.journal_dir;
  engine::Engine engine(opts);

  std::mutex write_mutex;
  std::vector<std::thread> waiters;

  // In-flight jobs by supervisor tag, for the best-effort cancel op (the
  // losing side of a hedged request).  Entries are removed by the waiter
  // once the result frame is flushed.
  std::mutex inflight_mutex;
  std::map<std::uint64_t, engine::JobPtr> inflight;

  auto send = [&](const std::string& frame) {
    std::lock_guard<std::mutex> lock(write_mutex);
    try {
      util::net::write_all(fd, frame);
    } catch (const Error&) {
      // Supervisor gone; the protocol loop will see EOF and drain.
    }
  };

  // One waiter per job: blocks until the job finishes, then flushes its
  // result frame.  The job name carries the supervisor's tag.
  auto deliver = [&](const engine::JobPtr& job) {
    std::uint64_t tag = 0;
    if (const auto tagged = proto::split_tag(job->name())) tag = tagged->tag;
    if (tag != 0) {
      std::lock_guard<std::mutex> lock(inflight_mutex);
      inflight[tag] = job;
    }
    waiters.emplace_back([&send, &inflight_mutex, &inflight, job, tag] {
      job->wait();
      api::FlowResultV1 result = engine::job_result_to_api(*job);
      if (const auto tagged = proto::split_tag(result.name)) {
        result.name = tagged->name;
      }
      send(proto::result_frame(tag, result));
      if (tag != 0) {
        std::lock_guard<std::mutex> lock(inflight_mutex);
        inflight.erase(tag);
      }
    });
  };

  // A restarted worker first replays its own journal (re-journaling mode:
  // same directory, so checkpoints and done markers keep flowing), then
  // announces readiness with the recovered tags so a respawn-aware
  // supervisor can rejoin this shard and re-point those requests here.
  {
    std::vector<std::uint64_t> recovered;
    const engine::Engine::RecoveryReport report = engine.recover(config.journal_dir);
    recovered.reserve(report.jobs.size());
    for (const engine::JobPtr& job : report.jobs) {
      if (const auto tagged = proto::split_tag(job->name())) {
        recovered.push_back(tagged->tag);
      }
      deliver(job);
    }
    send(proto::ready_frame(recovered));
  }

  util::net::LineReader reader(fd, config.max_line_bytes);
  try {
    while (const auto line = reader.read_line()) {
      std::string parse_error;
      const auto doc = util::json_parse(*line, &parse_error);
      if (!doc || !doc->is_object()) continue;  // trusted link; skip noise
      const std::string op = doc->get_string("op");
      const std::uint64_t tag =
          static_cast<std::uint64_t>(doc->get_int("tag", 0));
      if (op == "quit") break;
      if (op == "health") {
        api::HealthV1 h = engine.health().to_api(config.shard);
        h.uptime_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                          std::chrono::steady_clock::now() - start)
                          .count();
        send(proto::health_frame(tag, h));
      } else if (op == "cancel") {
        engine::JobPtr job;
        {
          std::lock_guard<std::mutex> lock(inflight_mutex);
          const auto it = inflight.find(tag);
          if (it != inflight.end()) job = it->second;
        }
        // Best-effort: a queued job is cancelled outright, a running one
        // stops at its next iteration boundary.  No response frame -- the
        // job's own result frame (state "cancelled") closes the loop, and
        // the supervisor drops it as an orphan tag.
        if (job) job->cancel();
      } else if (op == "submit") {
        const JsonValue* request = doc->find("request");
        if (request == nullptr) {
          send(proto::result_frame(tag, refusal("", "submit: missing request")));
          continue;
        }
        try {
          api::FlowRequestV1 req = api::FlowRequestV1::from_json(*request);
          req.name = proto::embed_tag(tag, req.name);
          deliver(engine.submit(req));
        } catch (const Error& e) {
          send(proto::result_frame(
              tag, refusal(request->get_string("name"), e.what())));
        }
      } else if (op == "adopt") {
        // Replay a dead peer's journal.  One-shot mode (foreign directory):
        // recovered jobs resume from their checkpoints and complete here.
        const std::string dir = doc->get_string("dir");
        std::vector<std::uint64_t> adopted;
        try {
          const engine::Engine::RecoveryReport report = engine.recover(dir);
          adopted.reserve(report.jobs.size());
          for (const engine::JobPtr& job : report.jobs) {
            if (const auto tagged = proto::split_tag(job->name())) {
              adopted.push_back(tagged->tag);
            }
            deliver(job);
          }
        } catch (const Error&) {
          // Unreadable directory: adopted stays empty; the supervisor
          // resubmits every affected request from its own copy.
        }
        send(proto::adopted_frame(tag, adopted));
      }
    }
  } catch (const Error&) {
    // Oversized/poisoned frame on the trusted link: treat as EOF and drain.
  }

  // Drain: every accepted job runs to completion and its result frame is
  // flushed before the process exits (graceful shutdown loses nothing).
  for (std::thread& t : waiters) t.join();
}

}  // namespace hlts::serve
