#include "serve/worker.hpp"

#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "serve/protocol.hpp"
#include "util/error.hpp"
#include "util/json.hpp"
#include "util/socket.hpp"

namespace hlts::serve {

namespace {

using util::JsonValue;

/// A failed-before-running submission still answers with a FlowResultV1 so
/// the supervisor/client sees a uniform result stream.
api::FlowResultV1 refusal(const std::string& name, const std::string& error) {
  api::FlowResultV1 r;
  r.name = name;
  r.state = "rejected";
  r.error = error;
  return r;
}

}  // namespace

void run_worker(int fd, const WorkerConfig& config) {
  engine::EngineOptions opts = config.engine;
  opts.journal_dir = config.journal_dir;
  engine::Engine engine(opts);

  std::mutex write_mutex;
  std::vector<std::thread> waiters;

  auto send = [&](const std::string& frame) {
    std::lock_guard<std::mutex> lock(write_mutex);
    try {
      util::net::write_all(fd, frame);
    } catch (const Error&) {
      // Supervisor gone; the protocol loop will see EOF and drain.
    }
  };

  // One waiter per job: blocks until the job finishes, then flushes its
  // result frame.  The job name carries the supervisor's tag.
  auto deliver = [&](const engine::JobPtr& job) {
    waiters.emplace_back([&send, job] {
      job->wait();
      api::FlowResultV1 result = engine::job_result_to_api(*job);
      std::uint64_t tag = 0;
      if (const auto tagged = proto::split_tag(result.name)) {
        tag = tagged->tag;
        result.name = tagged->name;
      }
      send(proto::result_frame(tag, result));
    });
  };

  // A restarted worker first replays its own journal (re-journaling mode:
  // same directory, so checkpoints and done markers keep flowing).
  {
    const engine::Engine::RecoveryReport report = engine.recover(config.journal_dir);
    for (const engine::JobPtr& job : report.jobs) deliver(job);
  }

  util::net::LineReader reader(fd, config.max_line_bytes);
  try {
    while (const auto line = reader.read_line()) {
      std::string parse_error;
      const auto doc = util::json_parse(*line, &parse_error);
      if (!doc || !doc->is_object()) continue;  // trusted link; skip noise
      const std::string op = doc->get_string("op");
      const std::uint64_t tag =
          static_cast<std::uint64_t>(doc->get_int("tag", 0));
      if (op == "quit") break;
      if (op == "health") {
        send(proto::health_frame(tag, engine.health().to_api(config.shard)));
      } else if (op == "submit") {
        const JsonValue* request = doc->find("request");
        if (request == nullptr) {
          send(proto::result_frame(tag, refusal("", "submit: missing request")));
          continue;
        }
        try {
          api::FlowRequestV1 req = api::FlowRequestV1::from_json(*request);
          req.name = proto::embed_tag(tag, req.name);
          deliver(engine.submit(req));
        } catch (const Error& e) {
          send(proto::result_frame(
              tag, refusal(request->get_string("name"), e.what())));
        }
      } else if (op == "adopt") {
        // Replay a dead peer's journal.  One-shot mode (foreign directory):
        // recovered jobs resume from their checkpoints and complete here.
        const std::string dir = doc->get_string("dir");
        std::vector<std::uint64_t> adopted;
        try {
          const engine::Engine::RecoveryReport report = engine.recover(dir);
          adopted.reserve(report.jobs.size());
          for (const engine::JobPtr& job : report.jobs) {
            if (const auto tagged = proto::split_tag(job->name())) {
              adopted.push_back(tagged->tag);
            }
            deliver(job);
          }
        } catch (const Error&) {
          // Unreadable directory: adopted stays empty; the supervisor
          // resubmits every affected request from its own copy.
        }
        send(proto::adopted_frame(tag, adopted));
      }
    }
  } catch (const Error&) {
    // Oversized/poisoned frame on the trusted link: treat as EOF and drain.
  }

  // Drain: every accepted job runs to completion and its result frame is
  // flushed before the process exits (graceful shutdown loses nothing).
  for (std::thread& t : waiters) t.join();
}

}  // namespace hlts::serve
