// The shard worker: one forked process, one engine::Engine, one journal dir.
//
// run_worker() is the child side of a supervisor socketpair.  It owns a
// private Engine journaling into this shard's directory, speaks the
// NDJSON frames of serve/protocol.hpp, and never shares memory with the
// supervisor -- a SIGKILL at any instant loses nothing the journal has not
// already made durable.
//
// Protocol thread: reads supervisor frames (submit / health / adopt /
// quit).  Each accepted job gets a small waiter thread that blocks on the
// job and writes the result frame back (a write mutex serializes the
// socketpair).  On `adopt` the worker replays a *dead peer's* journal
// directory through Engine::recover -- a one-shot replay (see
// engine.cpp): the jobs resume from their checkpoints, and the response
// lists the tags recovered so the supervisor can tell adopted requests
// from ones that died before their write-ahead record (those it
// resubmits).  On `quit` (or supervisor EOF) the worker stops reading,
// joins the waiters -- i.e. drains every in-flight job and flushes its
// result -- and returns.
#pragma once

#include <cstddef>
#include <string>

#include "engine/engine.hpp"

namespace hlts::serve {

struct WorkerConfig {
  int shard = 0;
  std::string journal_dir;  ///< this shard's private journal directory
  engine::EngineOptions engine{};  ///< journal_dir is overwritten
  std::size_t max_line_bytes = 4u << 20;
};

/// Runs the worker protocol loop on `fd` until quit/EOF; returns when the
/// engine has drained.  The caller (the forked child) then _exit()s.
void run_worker(int fd, const WorkerConfig& config);

}  // namespace hlts::serve
