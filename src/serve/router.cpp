#include "serve/router.hpp"

#include "util/error.hpp"

namespace hlts::serve {

std::uint64_t fnv1a64(const std::string& s) {
  std::uint64_t h = 14695981039346656037ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

ShardRouter::ShardRouter(int shards) : shards_(shards) {
  HLTS_REQUIRE_INPUT(shards >= 1, "ShardRouter: need at least one shard");
  alive_.assign(static_cast<std::size_t>(shards), true);
}

int ShardRouter::live_count() const {
  int n = 0;
  for (const bool a : alive_) n += a ? 1 : 0;
  return n;
}

int ShardRouter::route(const std::string& name) const {
  std::vector<int> live;
  live.reserve(alive_.size());
  for (int s = 0; s < shards_; ++s) {
    if (alive_[s]) live.push_back(s);
  }
  if (live.empty()) return -1;
  return live[fnv1a64(name) % live.size()];
}

int ShardRouter::peer_of(int shard) const {
  for (int step = 1; step < shards_; ++step) {
    const int s = (shard + step) % shards_;
    if (alive_[s]) return s;
  }
  return -1;
}

}  // namespace hlts::serve
