#include "serve/router.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace hlts::serve {

std::uint64_t fnv1a64(const std::string& s) {
  std::uint64_t h = 14695981039346656037ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

ShardRouter::ShardRouter(int shards) : shards_(shards) {
  HLTS_REQUIRE_INPUT(shards >= 1, "ShardRouter: need at least one shard");
  alive_.assign(static_cast<std::size_t>(shards), true);
}

int ShardRouter::live_count() const {
  int n = 0;
  for (const bool a : alive_) n += a ? 1 : 0;
  return n;
}

int ShardRouter::route(const std::string& name) const {
  std::vector<int> live;
  live.reserve(alive_.size());
  for (int s = 0; s < shards_; ++s) {
    if (alive_[s]) live.push_back(s);
  }
  if (live.empty()) return -1;
  return live[fnv1a64(name) % live.size()];
}

int ShardRouter::route_ranked(const std::string& name,
                              const std::vector<double>& scores,
                              const std::vector<bool>& allowed,
                              double tolerance) const {
  HLTS_REQUIRE_INPUT(scores.size() == alive_.size() &&
                         allowed.size() == alive_.size(),
                     "route_ranked: scores/allowed must cover every shard");
  std::vector<int> candidates;
  candidates.reserve(alive_.size());
  for (int s = 0; s < shards_; ++s) {
    if (alive_[s] && allowed[s]) candidates.push_back(s);
  }
  if (candidates.empty()) {
    // Every breaker open: degrade to plain liveness routing rather than
    // refusing outright -- an open breaker is a prediction, not a death.
    return route(name);
  }
  double best = scores[static_cast<std::size_t>(candidates[0])];
  for (const int s : candidates) {
    best = std::min(best, scores[static_cast<std::size_t>(s)]);
  }
  // Keep shards within the tolerance band of the best score; among those,
  // highest-random-weight (rendezvous) hashing makes the pick sticky per
  // name yet uniformly spread across the band.
  const double cutoff = best <= 0.0 ? 0.0 : best * tolerance;
  int pick = -1;
  std::uint64_t pick_weight = 0;
  for (const int s : candidates) {
    if (scores[static_cast<std::size_t>(s)] > cutoff) continue;
    const std::uint64_t w = fnv1a64(name + "#" + std::to_string(s));
    if (pick < 0 || w > pick_weight || (w == pick_weight && s < pick)) {
      pick = s;
      pick_weight = w;
    }
  }
  return pick;
}

int ShardRouter::peer_of(int shard) const {
  for (int step = 1; step < shards_; ++step) {
    const int s = (shard + step) % shards_;
    if (alive_[s]) return s;
  }
  return -1;
}

}  // namespace hlts::serve
