// Deterministic job-name -> shard routing.
//
// The supervisor shards incoming jobs across its worker processes by
// hashing the job name (FNV-1a 64) over the set of *live* shards.  Two
// properties matter:
//
//   - determinism: the same (name, live set) always routes to the same
//     shard, on every platform and every run -- no RNG, no std::hash
//     (whose value is implementation-defined);
//   - liveness masking: when a shard dies it simply leaves the candidate
//     set; names redistribute over the survivors without any state.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hlts::serve {

/// FNV-1a 64-bit -- the fixed, platform-independent name hash.
[[nodiscard]] std::uint64_t fnv1a64(const std::string& s);

class ShardRouter {
 public:
  explicit ShardRouter(int shards);

  [[nodiscard]] int shards() const { return shards_; }
  [[nodiscard]] bool alive(int shard) const { return alive_[shard]; }
  [[nodiscard]] int live_count() const;
  void mark_dead(int shard) { alive_[shard] = false; }
  /// Rejoin: a respawned worker reported ready and takes traffic again.
  void mark_alive(int shard) { alive_[shard] = true; }

  /// The live shard `name` routes to; -1 when no shard is alive.
  [[nodiscard]] int route(const std::string& name) const;

  /// Health-aware routing.  Candidates are the live shards with
  /// `allowed[s]` true (circuit breaker not open) whose load `scores[s]`
  /// (supervisor-maintained, e.g. EWMA latency scaled by queue depth) is
  /// within `tolerance` times the best candidate's score; ties inside the
  /// band break deterministically by highest-random-weight hash of
  /// "name#shard", so the same (name, candidate set, scores) always picks
  /// the same shard and distinct names still spread across near-equal
  /// shards.  Falls back over all live shards when every breaker is open
  /// (serving degraded beats serving nothing), and returns -1 only when no
  /// shard is alive.
  [[nodiscard]] int route_ranked(const std::string& name,
                                 const std::vector<double>& scores,
                                 const std::vector<bool>& allowed,
                                 double tolerance = 1.5) const;

  /// The failover peer for a dead shard: the next live shard after it in
  /// ring order (-1 when none remain).
  [[nodiscard]] int peer_of(int shard) const;

 private:
  int shards_;
  std::vector<bool> alive_;
};

}  // namespace hlts::serve
