#include "serve/lifecycle.hpp"

#include <algorithm>
#include <cmath>

namespace hlts::serve {

// --- CircuitBreaker ---------------------------------------------------------

bool CircuitBreaker::allow(std::int64_t now_ms) {
  switch (state_) {
    case State::Closed:
      return true;
    case State::Open:
      if (now_ms - opened_ms_ < cooldown_ms_) return false;
      state_ = State::HalfOpen;
      probe_in_flight_ = true;
      return true;  // the single half-open probe
    case State::HalfOpen:
      if (probe_in_flight_) return false;
      probe_in_flight_ = true;
      return true;
  }
  return false;
}

bool CircuitBreaker::would_allow(std::int64_t now_ms) const {
  switch (state_) {
    case State::Closed: return true;
    case State::Open: return now_ms - opened_ms_ >= cooldown_ms_;
    case State::HalfOpen: return !probe_in_flight_;
  }
  return false;
}

void CircuitBreaker::record_success() {
  failures_ = 0;
  probe_in_flight_ = false;
  state_ = State::Closed;
}

void CircuitBreaker::record_failure(std::int64_t now_ms) {
  probe_in_flight_ = false;
  if (state_ == State::HalfOpen) {
    // The probe failed: reopen and restart the cooldown.
    state_ = State::Open;
    opened_ms_ = now_ms;
    return;
  }
  if (++failures_ >= threshold_ && state_ == State::Closed) {
    state_ = State::Open;
    opened_ms_ = now_ms;
  }
}

void CircuitBreaker::reset() {
  state_ = State::Closed;
  failures_ = 0;
  opened_ms_ = 0;
  probe_in_flight_ = false;
}

const char* CircuitBreaker::state_name() const {
  switch (state_) {
    case State::Closed: return "closed";
    case State::Open: return "open";
    case State::HalfOpen: return "half_open";
  }
  return "?";
}

// --- RespawnPolicy ----------------------------------------------------------

std::int64_t RespawnPolicy::on_death(std::int64_t now_ms) {
  if (quarantined_) return -1;
  deaths_.push_back(now_ms);
  // Slide the flap window: only deaths inside it count.
  deaths_.erase(std::remove_if(deaths_.begin(), deaths_.end(),
                               [&](std::int64_t t) {
                                 return now_ms - t > flap_window_ms_;
                               }),
                deaths_.end());
  if (static_cast<int>(deaths_.size()) > flap_limit_) {
    quarantined_ = true;
    return -1;
  }
  // Capped exponential ladder: backoff * 2^attempt, saturating (shift by
  // more than 62 would overflow, and the cap clamps far earlier anyway).
  std::int64_t delay = backoff_cap_ms_;
  if (attempt_ < 62) {
    const std::int64_t raw = backoff_ms_ << attempt_;
    delay = std::min(raw, backoff_cap_ms_);
  }
  ++attempt_;
  return now_ms + delay;
}

void RespawnPolicy::on_ready() { attempt_ = 0; }

// --- LatencyWindow ----------------------------------------------------------

void LatencyWindow::observe(std::int64_t latency_ms) {
  if (capacity_ == 0) return;
  if (ring_.size() < capacity_) {
    ring_.push_back(latency_ms);
  } else {
    ring_[next_] = latency_ms;
  }
  next_ = (next_ + 1) % capacity_;
}

std::int64_t LatencyWindow::percentile(double q) const {
  if (ring_.empty()) return 0;
  std::vector<std::int64_t> sorted(ring_);
  std::sort(sorted.begin(), sorted.end());
  const double clamped = std::min(1.0, std::max(0.0, q));
  // Nearest-rank: ceil(q * n), 1-indexed.
  std::size_t rank = static_cast<std::size_t>(
      std::ceil(clamped * static_cast<double>(sorted.size())));
  if (rank == 0) rank = 1;
  return sorted[rank - 1];
}

std::int64_t LatencyWindow::hedge_delay_ms(std::int64_t min_ms,
                                           double factor) const {
  if (ring_.size() < kMinSamples) return min_ms;
  const double scaled = factor * static_cast<double>(percentile(0.99));
  const std::int64_t derived = static_cast<std::int64_t>(scaled);
  return std::max(min_ms, derived);
}

}  // namespace hlts::serve
