#include "serve/supervisor.hpp"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "serve/protocol.hpp"
#include "serve/worker.hpp"
#include "util/error.hpp"
#include "util/knobs.hpp"

namespace hlts::serve {

namespace {

using util::JsonValue;

std::string http_response(const std::string& body, const char* status) {
  return std::string("HTTP/1.1 ") + status +
         "\r\nContent-Type: application/json\r\nContent-Length: " +
         std::to_string(body.size()) + "\r\nConnection: close\r\n\r\n" + body;
}

std::int64_t now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Fixed-width pid line the zygote writes after each SCM_RIGHTS descriptor:
/// 16 decimal digits + '\n', so the supervisor can read it with one exact-
/// length read and never desynchronize the control stream.
constexpr std::size_t kPidLineBytes = 17;

bool read_exact(int fd, char* buf, std::size_t n) {
  std::size_t off = 0;
  while (off < n) {
    const ssize_t r = ::read(fd, buf + off, n - off);
    if (r > 0) {
      off += static_cast<std::size_t>(r);
      continue;
    }
    if (r < 0 && errno == EINTR) continue;
    return false;  // EOF or hard error: the zygote is gone
  }
  return true;
}

/// The zygote: a single-threaded child forked by the Server constructor
/// before any thread exists, so it can keep fork()ing safely forever.  It
/// reads "spawn <shard>" lines, forks a worker per request, and hands the
/// supervisor end of the worker socketpair back over SCM_RIGHTS followed by
/// a fixed-width pid line.  SIGCHLD is ignored so exited workers are reaped
/// by the kernel; the zygote itself exits on control-socket EOF.
void run_zygote(int control_fd, const ServerOptions& options) {
  ::signal(SIGCHLD, SIG_IGN);
  util::net::LineReader reader(control_fd, 1u << 10);
  try {
    while (const auto line = reader.read_line()) {
      if (line->rfind("spawn ", 0) != 0) continue;
      const int shard = std::atoi(line->c_str() + 6);
      if (shard < 0 || shard >= options.shards) continue;
      auto [parent_end, child_end] = util::net::socket_pair();
      const pid_t pid = ::fork();
      if (pid < 0) std::_Exit(1);  // supervisor sees EOF, spawn fails clean
      if (pid == 0) {
        ::close(control_fd);
        parent_end.close();
        ::signal(SIGCHLD, SIG_DFL);
        WorkerConfig config;
        config.shard = shard;
        config.journal_dir =
            options.journal_root + "/shard-" + std::to_string(shard);
        config.engine = options.engine;
        config.max_line_bytes = options.max_request_bytes + (1u << 20);
        run_worker(child_end.get(), config);
        std::_Exit(0);
      }
      child_end.close();
      util::net::send_fd(control_fd, parent_end.get(), 'W');
      char pid_line[kPidLineBytes + 1];
      std::snprintf(pid_line, sizeof pid_line, "%016lld\n",
                    static_cast<long long>(pid));
      util::net::write_all(control_fd, std::string(pid_line, kPidLineBytes));
    }
  } catch (const Error&) {
    // Supervisor died mid-exchange; nothing left to serve.
  }
}

}  // namespace

ServerOptions ServerOptions::from_env(ServerOptions base) {
  if (const auto v = util::knobs::read_int("HLTS_SERVE_SHARDS"); v && *v >= 1) {
    base.shards = static_cast<int>(*v);
  }
  if (const auto v = util::knobs::read_int("HLTS_SERVE_PORT"); v && *v >= 0) {
    base.port = static_cast<int>(*v);
  }
  if (const auto v = util::knobs::read_size("HLTS_SERVE_MAX_REQUEST_BYTES")) {
    base.max_request_bytes = *v;
  }
  if (const auto v = util::knobs::read_flag("HLTS_SERVE_RESPAWN")) {
    base.lifecycle.respawn = *v;
  }
  if (const auto v = util::knobs::read_int("HLTS_SERVE_BREAKER_FAILURES");
      v && *v >= 1) {
    base.lifecycle.breaker_failures = static_cast<int>(*v);
  }
  if (const auto v = util::knobs::read_flag("HLTS_SERVE_HEDGE")) {
    base.lifecycle.hedge = *v;
  }
  return base;
}

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      listener_(options_.port),
      router_(options_.shards) {
  HLTS_REQUIRE_INPUT(!options_.journal_root.empty(),
                     "Server: journal_root is required");
  // Serving default: overload control on.  An engine that was not given an
  // explicit queue capacity gets a bounded queue, and -- only when the
  // policy was also left at its default -- ShedOldest, because a Block
  // submit would wedge the worker's protocol thread.  Explicit settings
  // always win; /health flags any shard still running unbounded.
  if (options_.engine.queue_capacity == static_cast<std::size_t>(-1)) {
    options_.engine.queue_capacity = 256;
    if (options_.engine.overload_policy == engine::OverloadPolicy::Block) {
      options_.engine.overload_policy = engine::OverloadPolicy::ShedOldest;
    }
  }
  // Fork the zygote before any thread exists in this process (a fork after
  // run() starts threads would clone locked mutexes into the child).  The
  // zygote stays single-threaded forever, so every worker -- initial or
  // respawned -- forks through it safely.
  {
    auto [sup_end, zyg_end] = util::net::socket_pair();
    const pid_t zpid = ::fork();
    HLTS_REQUIRE(zpid >= 0, "Server: fork failed");
    if (zpid == 0) {
      listener_.close_now();
      sup_end.close();
      run_zygote(zyg_end.get(), options_);
      // Skip global destructors: this child shares no state worth tearing
      // down.
      std::_Exit(0);
    }
    zyg_end.close();
    zygote_fd_ = std::move(sup_end);
    zygote_pid_ = zpid;
  }
  workers_.reserve(static_cast<std::size_t>(options_.shards));
  for (int shard = 0; shard < options_.shards; ++shard) {
    auto w = std::make_unique<Worker>();
    w->shard = shard;
    w->journal_dir = options_.journal_root + "/shard-" + std::to_string(shard);
    w->breaker = std::make_unique<CircuitBreaker>(
        options_.lifecycle.breaker_failures,
        options_.lifecycle.breaker_cooldown_ms);
    w->respawn = std::make_unique<RespawnPolicy>(
        options_.lifecycle.respawn_backoff_ms,
        options_.lifecycle.respawn_backoff_cap_ms,
        options_.lifecycle.flap_window_ms, options_.lifecycle.flap_limit);
    HLTS_REQUIRE(spawn_via_zygote(shard, &w->fd, &w->pid),
                 "Server: zygote failed to spawn worker");
    workers_.push_back(std::move(w));
  }
}

Server::~Server() {
  stop();
  if (lifecycle_.joinable()) lifecycle_.join();
  for (const auto& w : workers_) {
    if (w->reader.joinable()) w->reader.join();
  }
  for (const auto& w : workers_) {
    (void)::waitpid(w->pid, nullptr, 0);  // ECHILD: the zygote reaps workers
  }
  {
    // Control-socket EOF tells the zygote to exit; then reap it (it is our
    // direct child).
    std::lock_guard<std::mutex> lock(zygote_mutex_);
    zygote_fd_.close();
  }
  if (zygote_pid_ > 0) (void)::waitpid(zygote_pid_, nullptr, 0);
  {
    std::lock_guard<std::mutex> lock(conns_mutex_);
    for (const ConnPtr& c : conns_) util::net::shutdown_fd(c->fd.get());
  }
  for (std::thread& t : conn_threads_) {
    if (t.joinable()) t.join();
  }
}

bool Server::spawn_via_zygote(int shard, util::net::Fd* fd, pid_t* pid) {
  std::lock_guard<std::mutex> lock(zygote_mutex_);
  if (!zygote_fd_.valid()) return false;
  try {
    util::net::write_all(zygote_fd_.get(),
                         "spawn " + std::to_string(shard) + "\n");
    auto got = util::net::recv_fd(zygote_fd_.get());
    if (!got) {
      zygote_fd_.close();
      return false;
    }
    char pid_line[kPidLineBytes];
    if (!read_exact(zygote_fd_.get(), pid_line, kPidLineBytes)) {
      zygote_fd_.close();
      return false;
    }
    *pid = static_cast<pid_t>(
        std::strtoll(std::string(pid_line, kPidLineBytes - 1).c_str(), nullptr,
                     10));
    *fd = std::move(got->first);
    return true;
  } catch (const Error&) {
    zygote_fd_.close();  // desynchronized control stream: respawns are over
    return false;
  }
}

void Server::run() {
  for (const auto& w : workers_) {
    w->reader = std::thread(&Server::worker_reader_loop, this, w->shard);
  }
  lifecycle_ = std::thread(&Server::lifecycle_loop, this);
  while (true) {
    util::net::Fd client = listener_.accept();
    if (!client.valid()) break;  // shutdown_now(): orderly shutdown
    auto conn = std::make_shared<Conn>();
    conn->fd = std::move(client);
    std::lock_guard<std::mutex> lock(conns_mutex_);
    conns_.push_back(conn);
    conn_threads_.emplace_back(&Server::client_loop, this, conn);
  }
  // The lifecycle ticker owns reader-thread replacement, so it must stop
  // before the readers are joined.
  lifecycle_cv_.notify_all();
  if (lifecycle_.joinable()) lifecycle_.join();
  // Workers drain (finish + flush every accepted job) before their EOF.
  for (const auto& w : workers_) {
    if (w->reader.joinable()) w->reader.join();
  }
  std::lock_guard<std::mutex> lock(conns_mutex_);
  for (const ConnPtr& c : conns_) util::net::shutdown_fd(c->fd.get());
  for (std::thread& t : conn_threads_) {
    if (t.joinable()) t.join();
  }
  conn_threads_.clear();
}

void Server::stop() {
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    if (stopping_) return;
    stopping_ = true;
  }
  lifecycle_cv_.notify_all();
  // Quit goes to every worker fd, not just the ones marked alive: a
  // respawned worker that has not sent `ready` yet is live on the wire but
  // not in the router, and skipping it would leave its reader blocked
  // forever.  Writes to an actually-dead fd fail silently.
  for (const auto& w : workers_) {
    send_to_worker(w->shard, proto::quit_line());
  }
  listener_.shutdown_now();
}

void Server::send_to_worker(int shard, const std::string& frame) {
  Worker& w = *workers_[static_cast<std::size_t>(shard)];
  std::lock_guard<std::mutex> lock(w.write_mutex);
  try {
    util::net::write_all(w.fd.get(), frame);
  } catch (const Error&) {
    // Worker just died: its reader thread's EOF runs the failover machine,
    // which re-covers everything this frame carried (pending table).
  }
}

void Server::reply(const ConnPtr& conn, const std::string& line) {
  std::lock_guard<std::mutex> lock(conn->write_mutex);
  try {
    util::net::write_all(conn->fd.get(), line);
  } catch (const Error&) {
    // Client gone; results for its tags are dropped on arrival.
  }
}

std::map<int, bool> Server::alive_map_locked() const {
  std::map<int, bool> alive;
  for (const auto& w : workers_) alive[w->shard] = w->alive;
  return alive;
}

void Server::erase_pending_locked(
    std::map<std::uint64_t, Pending>::iterator it) {
  if (!it->second.token.empty()) token_inflight_.erase(it->second.token);
  pending_.erase(it);
}

void Server::remember_token_locked(const std::string& token,
                                   const std::string& line, bool memoize) {
  if (token.empty()) return;
  token_inflight_.erase(token);
  if (!memoize) return;  // refusals re-execute on retry, never replay
  if (token_done_.emplace(token, line).second) {
    token_done_order_.push_back(token);
    while (token_done_order_.size() > kTokenCacheCap) {
      token_done_.erase(token_done_order_.front());
      token_done_order_.pop_front();
    }
  }
}

void Server::forward_locked(std::uint64_t tag) {
  auto it = pending_.find(tag);
  if (it == pending_.end()) return;
  // Health-aware routing: candidates are live shards whose breaker admits
  // traffic, scored by EWMA latency scaled with their in-flight depth; the
  // router keeps everything within tolerance of the best and tie-breaks
  // deterministically (rendezvous hash).  With no latency history yet all
  // scores are 0 and this degrades to pure deterministic hashing.
  const std::int64_t now = now_ms();
  std::vector<int> depth(workers_.size(), 0);
  for (const auto& [t, p] : pending_) {
    if (t != tag && p.shard >= 0) ++depth[static_cast<std::size_t>(p.shard)];
  }
  std::vector<double> scores(workers_.size(), 0.0);
  std::vector<bool> allowed(workers_.size(), true);
  for (const auto& w : workers_) {
    const auto s = static_cast<std::size_t>(w->shard);
    allowed[s] = w->breaker->would_allow(now);
    const double lat = w->latency_ewma.primed() ? w->latency_ewma.value() : 0.0;
    scores[s] = lat * (1.0 + depth[s]);
  }
  const int shard = router_.route_ranked(it->second.name, scores, allowed);
  if (shard < 0) {
    const ConnPtr conn = it->second.conn;
    erase_pending_locked(it);
    reply(conn, proto::error_line("no live shard"));
    return;
  }
  // Consume the half-open probe slot if that is what admitted this shard.
  (void)workers_[static_cast<std::size_t>(shard)]->breaker->allow(now);
  it->second.shard = shard;
  it->second.sent_ms = now;
  send_to_worker(shard, proto::submit_line(tag, it->second.request));
}

void Server::handle_submit(const ConnPtr& conn, const util::JsonValue& doc) {
  const JsonValue* request = doc.find("request");
  if (request == nullptr) {
    reply(conn, proto::error_line("submit: missing request"));
    return;
  }
  std::string name;
  std::string token;
  try {
    // Full schema validation at the boundary; the worker re-validates on
    // its trusted link but never sees a malformed document.
    api::FlowRequestV1 parsed = api::FlowRequestV1::from_json(*request);
    name = std::move(parsed.name);
    token = std::move(parsed.flow_token);
  } catch (const Error& e) {
    reply(conn, proto::error_line(e.what()));
    return;
  }
  const std::uint64_t tag = next_tag();
  std::lock_guard<std::mutex> lock(state_mutex_);
  if (!token.empty()) {
    // Idempotent retry protocol: a token already answered replays the
    // exact reply line; a token still in flight re-attaches this (newer)
    // connection to the outstanding job instead of executing it twice.
    if (const auto done = token_done_.find(token); done != token_done_.end()) {
      reply(conn, done->second);
      return;
    }
    if (const auto fly = token_inflight_.find(token);
        fly != token_inflight_.end()) {
      const auto p = pending_.find(fly->second);
      if (p != pending_.end()) {
        p->second.conn = conn;
        if (p->second.partner != 0) {
          // A hedged pair answers whichever copy wins; both must point at
          // the retrying client's live connection.
          const auto h = pending_.find(p->second.partner);
          if (h != pending_.end()) h->second.conn = conn;
        }
        return;
      }
      token_inflight_.erase(fly);  // stale index row; fall through
    }
  }
  if (stopping_) {
    reply(conn, proto::error_line("server is shutting down"));
    return;
  }
  pending_[tag] = Pending{-1, std::move(name), *request, conn, token};
  if (!token.empty()) token_inflight_[token] = tag;
  forward_locked(tag);
}

void Server::handle_health(const ConnPtr& conn, bool http) {
  std::vector<int> live;
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    for (const auto& w : workers_) {
      if (w->alive) live.push_back(w->shard);
    }
    if (live.empty()) {
      const std::string body = util::json_dump(view_.to_json(alive_map_locked()));
      reply(conn, http ? http_response(body, "200 OK")
                       : proto::ok_health_line(util::json_parse(body).value()));
      if (http) util::net::shutdown_fd(conn->fd.get());
      return;
    }
    auto query = std::make_shared<HealthQuery>();
    query->conn = conn;
    query->http = http;
    std::vector<std::pair<std::uint64_t, int>> probes;
    probes.reserve(live.size());
    for (const int shard : live) {
      const std::uint64_t tag = next_tag();
      query->outstanding.insert(tag);
      health_probes_[tag] = ProbeEntry{query, shard};
      probes.emplace_back(tag, shard);
    }
    for (const auto& [tag, shard] : probes) {
      send_to_worker(shard, proto::health_line(tag));
    }
  }
}

void Server::finish_health_probe(std::uint64_t tag) {
  // state_mutex_ held by caller.
  const auto it = health_probes_.find(tag);
  if (it == health_probes_.end()) return;
  const std::shared_ptr<HealthQuery> query = it->second.query;
  health_probes_.erase(it);
  query->outstanding.erase(tag);
  if (!query->outstanding.empty()) return;
  const std::string body = util::json_dump(view_.to_json(alive_map_locked()));
  if (query->http) {
    reply(query->conn, http_response(body, "200 OK"));
    util::net::shutdown_fd(query->conn->fd.get());
  } else {
    reply(query->conn, proto::ok_health_line(util::json_parse(body).value()));
  }
}

void Server::worker_reader_loop(int shard) {
  Worker& w = *workers_[static_cast<std::size_t>(shard)];
  util::net::LineReader reader(w.fd.get(),
                               options_.max_request_bytes + (2u << 20));
  try {
    while (const auto line = reader.read_line()) {
      const auto doc = util::json_parse(*line);
      if (!doc || !doc->is_object()) continue;
      const std::string kind = doc->get_string("kind");
      const std::uint64_t tag =
          static_cast<std::uint64_t>(doc->get_int("tag", 0));
      if (kind == "result") {
        const JsonValue* result = doc->find("result");
        if (result == nullptr) continue;
        ConnPtr conn;
        const std::string reply_line = proto::ok_result_line(*result);
        {
          std::lock_guard<std::mutex> lock(state_mutex_);
          const auto it = pending_.find(tag);
          if (it == pending_.end()) continue;  // duplicate / orphan replay
          conn = it->second.conn;
          // This shard answered: success for its breaker, a sample for its
          // EWMA score and the cluster-wide hedge-delay window.
          const std::int64_t latency = now_ms() - it->second.sent_ms;
          w.breaker->record_success();
          w.latency_ewma.observe(static_cast<double>(latency));
          latency_window_.observe(latency);
          const bool was_hedge = it->second.is_hedge;
          const std::uint64_t partner = it->second.partner;
          // Memoize the exact reply line under the flow token so a retry
          // gets the bit-identical answer -- unless the worker refused the
          // job ("rejected": it never executed), which must stay retryable.
          remember_token_locked(it->second.token, reply_line,
                                result->get_string("state") != "rejected");
          pending_.erase(it);
          if (partner != 0) {
            // First result of a hedged pair wins; erasing the loser's
            // pending entry guarantees exactly one reply, and a best-effort
            // cancel stops it burning cycles (its eventual result frame is
            // an orphan tag, dropped above).
            const auto loser = pending_.find(partner);
            if (loser != pending_.end()) {
              const int loser_shard = loser->second.shard;
              pending_.erase(loser);
              if (was_hedge) w.hedges_won += 1;
              if (loser_shard >= 0) {
                auto& lw = *workers_[static_cast<std::size_t>(loser_shard)];
                lw.hedges_cancelled += 1;
                if (lw.alive) {
                  send_to_worker(loser_shard, proto::cancel_line(partner));
                }
              }
            }
          }
        }
        reply(conn, reply_line);
      } else if (kind == "health") {
        const JsonValue* health = doc->find("health");
        if (health == nullptr) continue;
        std::lock_guard<std::mutex> lock(state_mutex_);
        try {
          api::HealthV1 h = api::HealthV1::from_json(*health);
          // Overlay supervisor-side lifecycle state: the worker cannot know
          // how often it was respawned or what its breaker looks like.
          h.respawns = w.respawns;
          h.hedges_won = w.hedges_won;
          h.hedges_cancelled = w.hedges_cancelled;
          h.breaker = w.breaker->state_name();
          h.quarantined = w.respawn->quarantined();
          view_.observe(h);
        } catch (const Error&) {
          // Malformed snapshot: still resolve the probe.
        }
        finish_health_probe(tag);
      } else if (kind == "ready") {
        std::set<std::uint64_t> recovered;
        if (const JsonValue* tags = doc->find("tags");
            tags && tags->is_array()) {
          for (const JsonValue& t : tags->as_array()) {
            if (t.is_int()) {
              recovered.insert(static_cast<std::uint64_t>(t.as_int()));
            }
          }
        }
        on_worker_ready(shard, recovered);
      } else if (kind == "adopted") {
        std::set<std::uint64_t> adopted;
        if (const JsonValue* tags = doc->find("tags"); tags && tags->is_array()) {
          for (const JsonValue& t : tags->as_array()) {
            if (t.is_int()) adopted.insert(static_cast<std::uint64_t>(t.as_int()));
          }
        }
        std::lock_guard<std::mutex> lock(state_mutex_);
        const auto it = adoptions_.find(tag);
        if (it == adoptions_.end()) continue;
        const Adoption adoption = it->second;
        adoptions_.erase(it);
        for (const std::uint64_t t : adoption.owned) {
          const auto p = pending_.find(t);
          if (p == pending_.end()) continue;  // result arrived meanwhile
          if (adopted.count(t) != 0) {
            // Journaled before the crash: resumes on the peer from its
            // last checkpoint.
            p->second.shard = adoption.peer;
          } else {
            // Died before its write-ahead record: replay the supervisor's
            // copy onto a live shard.
            forward_locked(t);
          }
        }
      }
    }
  } catch (const Error&) {
    // Poisoned frame from the worker: treat as a dead worker.
  }
  on_worker_death(shard);
}

void Server::on_worker_death(int shard) {
  Worker& w = *workers_[static_cast<std::size_t>(shard)];
  (void)::waitpid(w.pid, nullptr, 0);  // ECHILD: the zygote reaps workers

  std::vector<std::pair<ConnPtr, std::string>> replies;
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    // w.alive may already be false: a respawned worker that died before its
    // `ready` frame was never marked alive.  The machinery below still runs
    // -- its pending requests and journal need an owner either way.
    w.alive = false;
    router_.mark_dead(shard);

    // Health fan-outs waiting on this shard would hang forever: strike its
    // probes and complete any query that only waited on it.
    std::vector<std::uint64_t> dead_probes;
    for (const auto& [tag, entry] : health_probes_) {
      if (entry.shard == shard) dead_probes.push_back(tag);
    }
    for (const std::uint64_t tag : dead_probes) finish_health_probe(tag);

    if (stopping_) return;  // orderly drain, nothing to fail over

    w.breaker->record_failure(now_ms());

    if (options_.lifecycle.respawn) {
      const std::int64_t at = w.respawn->on_death(now_ms());
      if (at >= 0) {
        // Self-healing path: schedule the respawn and leave this shard's
        // pending requests pointed at it -- the respawned worker replays
        // its journal and the `ready` frame sorts recovered from lost.
        w.respawn_at_ms = at;
        lifecycle_cv_.notify_all();
        return;
      }
      // Crash loop: the flap window overflowed and the shard is now
      // quarantined.  Record that in the cluster view (it will never answer
      // a health probe again) and hand its journal to a peer below.
      api::HealthV1 q;
      q.shard = shard;
      q.quarantined = true;
      q.breaker = w.breaker->state_name();
      q.respawns = w.respawns;
      view_.observe(q);
    }

    fail_over_locked(shard, &replies);
  }
  for (const auto& [conn, line] : replies) reply(conn, line);
}

void Server::fail_over_locked(
    int shard, std::vector<std::pair<ConnPtr, std::string>>* replies) {
  Worker& w = *workers_[static_cast<std::size_t>(shard)];
  // Requests the dead shard owned, plus requests from adoptions it had
  // accepted but not yet answered (their journal state is unknown: replay
  // them from the pending table -- duplicate execution is benign, the
  // first result wins and results are bit-identical anyway).
  std::set<std::uint64_t> owned;
  for (const auto& [tag, p] : pending_) {
    if (p.shard == shard) owned.insert(tag);
  }
  std::set<std::uint64_t> resubmit;
  std::vector<std::uint64_t> stale_adopts;
  for (auto& [tag, adoption] : adoptions_) {
    if (adoption.peer != shard) continue;
    for (const std::uint64_t t : adoption.owned) {
      if (pending_.count(t) != 0) resubmit.insert(t);
    }
    stale_adopts.push_back(tag);
  }
  for (const std::uint64_t tag : stale_adopts) adoptions_.erase(tag);

  const int peer = router_.peer_of(shard);
  if (peer < 0) {
    for (const std::uint64_t t : owned) {
      const auto it = pending_.find(t);
      if (it == pending_.end()) continue;
      replies->emplace_back(it->second.conn,
                            proto::error_line("all shards dead"));
      erase_pending_locked(it);
    }
    for (const std::uint64_t t : resubmit) {
      const auto it = pending_.find(t);
      if (it == pending_.end()) continue;
      replies->emplace_back(it->second.conn,
                            proto::error_line("all shards dead"));
      erase_pending_locked(it);
    }
  } else {
    const std::uint64_t adopt_tag = next_tag();
    adoptions_[adopt_tag] = Adoption{shard, peer, owned};
    send_to_worker(peer, proto::adopt_line(adopt_tag, w.journal_dir));
    for (const std::uint64_t t : resubmit) forward_locked(t);
  }
}

void Server::on_worker_ready(int shard,
                             const std::set<std::uint64_t>& recovered) {
  std::lock_guard<std::mutex> lock(state_mutex_);
  Worker& w = *workers_[static_cast<std::size_t>(shard)];
  // The initial boot of each worker also sends `ready`; the shard is
  // already alive then and there is nothing to rejoin.
  if (w.alive || stopping_) return;
  w.alive = true;
  router_.mark_alive(shard);
  w.breaker->reset();
  w.respawn->on_ready();
  w.respawns += 1;
  // Requests this shard owned at death time: the recovered ones resume here
  // from their checkpoints (their result frames are already on the way);
  // the rest died before their write-ahead record and are resubmitted.
  std::vector<std::uint64_t> resubmit;
  const std::int64_t now = now_ms();
  for (auto& [t, p] : pending_) {
    if (p.shard != shard) continue;
    if (recovered.count(t) != 0) {
      p.sent_ms = now;  // restart the latency/hedge clock
    } else {
      resubmit.push_back(t);
    }
  }
  for (const std::uint64_t t : resubmit) forward_locked(t);
  // Make the rejoin visible in the cluster view even before the next
  // health fan-out reaches this shard.
  api::HealthV1 h;
  h.shard = shard;
  h.respawns = w.respawns;
  h.breaker = w.breaker->state_name();
  view_.observe(h);
}

void Server::lifecycle_loop() {
  std::unique_lock<std::mutex> lock(state_mutex_);
  while (!stopping_) {
    lifecycle_cv_.wait_for(lock, std::chrono::milliseconds(20));
    if (stopping_) break;
    const std::int64_t now = now_ms();

    if (options_.lifecycle.respawn) {
      for (auto& wp : workers_) {
        Worker& w = *wp;
        if (w.alive || w.respawn_at_ms < 0 || now < w.respawn_at_ms) continue;
        w.respawn_at_ms = -1;
        // The spawn exchange does IO and the old reader must be joined (it
        // has exited -- its EOF is what scheduled this respawn): drop the
        // state lock for both.
        lock.unlock();
        if (w.reader.joinable()) w.reader.join();
        util::net::Fd fd;
        pid_t pid = -1;
        const bool ok = spawn_via_zygote(w.shard, &fd, &pid);
        lock.lock();
        if (!ok) continue;  // zygote gone; the shard stays dead
        if (stopping_) {
          (void)::kill(pid, SIGKILL);
          continue;
        }
        {
          std::lock_guard<std::mutex> wl(w.write_mutex);
          w.fd = std::move(fd);
        }
        w.pid = pid;
        w.reader = std::thread(&Server::worker_reader_loop, this, w.shard);
        // Not alive yet: the `ready` frame after journal replay rejoins it.
      }
    }

    if (options_.lifecycle.hedge) {
      const std::int64_t delay = latency_window_.hedge_delay_ms(
          options_.lifecycle.hedge_min_ms, options_.lifecycle.hedge_factor);
      std::vector<std::uint64_t> stragglers;
      for (const auto& [t, p] : pending_) {
        if (p.is_hedge || p.partner != 0 || p.shard < 0) continue;
        if (now - p.sent_ms < delay) continue;
        stragglers.push_back(t);
      }
      for (const std::uint64_t t : stragglers) {
        const auto it = pending_.find(t);
        if (it == pending_.end()) continue;
        Pending& p = it->second;
        const int alt = router_.peer_of(p.shard);
        if (alt < 0 || alt == p.shard) continue;
        const std::uint64_t htag = next_tag();
        Pending hedge;
        hedge.shard = alt;
        hedge.name = p.name;
        hedge.request = p.request;
        hedge.conn = p.conn;
        hedge.token = p.token;  // shared: whichever copy wins memoizes it
        hedge.sent_ms = now;
        hedge.is_hedge = true;
        hedge.partner = t;
        p.partner = htag;
        pending_[htag] = std::move(hedge);
        send_to_worker(alt, proto::submit_line(htag, pending_[htag].request));
      }
    }
  }
}

void Server::client_loop(ConnPtr conn) {
  util::net::LineReader reader(conn->fd.get(), options_.max_request_bytes);
  while (true) {
    std::optional<std::string> line;
    try {
      line = reader.read_line();
    } catch (const Error& e) {
      // The server-boundary document cap: refuse and drop the connection
      // (the reader cannot resynchronize inside an oversized line).
      reply(conn, proto::error_line(e.what()));
      util::net::shutdown_fd(conn->fd.get());
      return;
    }
    if (!line) return;
    if (line->rfind("GET ", 0) == 0) {
      // Minimal HTTP probe support.  Drain the request head, then serve.
      while (const auto header = reader.read_line()) {
        if (header->empty() || *header == "\r") break;
      }
      if (line->rfind("GET /health", 0) == 0) {
        handle_health(conn, /*http=*/true);
      } else {
        reply(conn, http_response("{\"error\":\"not found\"}\n", "404 Not Found"));
        util::net::shutdown_fd(conn->fd.get());
      }
      return;
    }
    const auto doc = util::json_parse(*line);
    if (!doc || !doc->is_object()) {
      reply(conn, proto::error_line("malformed request line"));
      continue;
    }
    const std::string op = doc->get_string("op");
    if (op == "submit") {
      handle_submit(conn, *doc);
    } else if (op == "health") {
      handle_health(conn, /*http=*/false);
    } else if (op == "kill") {
      const int shard = static_cast<int>(doc->get_int("shard", -1));
      bool ok = false;
      {
        std::lock_guard<std::mutex> lock(state_mutex_);
        if (shard >= 0 && shard < options_.shards &&
            workers_[static_cast<std::size_t>(shard)]->alive) {
          ok = ::kill(workers_[static_cast<std::size_t>(shard)]->pid,
                      SIGKILL) == 0;
        }
      }
      reply(conn, ok ? proto::ok_line()
                     : proto::error_line("kill: no such live shard"));
    } else if (op == "shutdown") {
      reply(conn, proto::ok_line());
      stop();
      return;
    } else {
      reply(conn, proto::error_line("unknown op '" + op + "'"));
    }
  }
}

}  // namespace hlts::serve
